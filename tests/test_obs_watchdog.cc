/**
 * @file
 * Stall watchdog tests: a hand-built livelock (events keep firing,
 * progress counter frozen) must trip the watchdog with a diagnostic
 * naming the stuck (tile, VPN); forward progress and naturally
 * draining queues must not.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/audit.hh"
#include "obs/watchdog.hh"
#include "sim/engine.hh"

namespace hdpat
{
namespace
{

TEST(WatchdogTest, TripsOnLivelockAndNamesStuckSpan)
{
    Engine engine;

    // The auditor knows one translation is stuck on tile 3.
    Auditor auditor;
    auditor.opIssued(3, 0x42, 0);

    // Hand-built livelock: an event chain that reschedules itself
    // forever without retiring anything (a retry loop that re-stalls
    // every time). `stalled` is the off switch the handler flips.
    bool stalled = false;
    std::function<void()> livelock = [&] {
        if (!stalled)
            engine.scheduleIn(10, [&] { livelock(); });
    };
    engine.scheduleIn(0, [&] { livelock(); });

    Watchdog dog(
        engine, 1000, [] { return std::uint64_t{0}; },
        [&] { return auditor.diagnostic(); });
    std::string message;
    dog.setStallHandler([&](const std::string &msg) {
        stalled = true;
        message = msg;
    });
    dog.start();
    engine.run();

    ASSERT_TRUE(dog.triggered());
    EXPECT_NE(message.find("no memop retired for 1000 ticks"),
              std::string::npos)
        << message;
    // The diagnostic names the stuck (tile, VPN).
    EXPECT_NE(message.find("tile 3 vpn 0x42"), std::string::npos)
        << message;
    EXPECT_NE(message.find("stuck spans: 1"), std::string::npos)
        << message;
}

TEST(WatchdogTest, DefaultHandlerAborts)
{
    Engine engine;
    // Unbounded in principle, but the default handler aborts at the
    // first check, so the death-test child never runs further.
    std::function<void()> livelock = [&] {
        engine.scheduleIn(5, [&] { livelock(); });
    };
    engine.scheduleIn(0, [&] { livelock(); });

    Watchdog dog(engine, 100, [] { return std::uint64_t{0}; });
    dog.start();
    EXPECT_DEATH(engine.run(), "no memop retired");
}

TEST(WatchdogTest, ForwardProgressNeverTrips)
{
    Engine engine;
    std::uint64_t retired = 0;

    // An op retires every 400 ticks, slower than the watch interval
    // fires but fast enough that every interval sees progress.
    std::function<void()> worker = [&] {
        if (++retired < 20)
            engine.scheduleIn(400, [&] { worker(); });
    };
    engine.scheduleIn(0, [&] { worker(); });

    Watchdog dog(engine, 1000, [&] { return retired; });
    std::string message;
    dog.setStallHandler(
        [&](const std::string &msg) { message = msg; });
    dog.start();
    engine.run();

    EXPECT_FALSE(dog.triggered()) << message;
    EXPECT_GT(dog.checks(), 0u);
}

TEST(WatchdogTest, QuietDrainDoesNotTrip)
{
    // A queue that empties naturally: the watchdog must not flag the
    // tail where only its own event remains.
    Engine engine;
    engine.scheduleIn(50, [] {});
    engine.scheduleIn(2500, [] {});

    Watchdog dog(engine, 1000, [] { return std::uint64_t{0}; });
    dog.setStallHandler([](const std::string &) {});
    dog.start();
    engine.run();

    EXPECT_FALSE(dog.triggered());
    EXPECT_FALSE(dog.running()); // Stopped itself with the queue.
}

TEST(WatchdogTest, StopCancelsPendingCheck)
{
    Engine engine;
    engine.scheduleIn(5000, [] {});

    Watchdog dog(engine, 1000, [] { return std::uint64_t{0}; });
    dog.start();
    dog.stop();
    engine.run();

    EXPECT_FALSE(dog.triggered());
    EXPECT_EQ(dog.checks(), 0u);
}

TEST(WatchdogTest, RejectsZeroInterval)
{
    Engine engine;
    EXPECT_DEATH(
        Watchdog(engine, 0, [] { return std::uint64_t{0}; }),
        "interval");
}

} // namespace
} // namespace hdpat
