/**
 * @file
 * Tests for the experiment helpers (runSuite / speedups / geomean) and
 * the Runner's scaling knobs.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 3;
    cfg.meshHeight = 3;
    cfg.name = "tiny-3x3";
    return cfg;
}

TEST(ExperimentTest, RunSuiteDefaultsToAllWorkloads)
{
    const auto results = runSuite(tinyConfig(),
                                  TranslationPolicy::baseline(), 200);
    const auto abbrs = workloadAbbrs();
    ASSERT_EQ(results.size(), abbrs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].workload, abbrs[i]);
        EXPECT_GT(results[i].totalTicks, 0u);
    }
}

TEST(ExperimentTest, RunSuiteHonorsSubset)
{
    const std::vector<std::string> subset = {"AES", "PR"};
    const auto results = runSuite(tinyConfig(),
                                  TranslationPolicy::baseline(), 200,
                                  subset);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].workload, "AES");
    EXPECT_EQ(results[1].workload, "PR");
}

TEST(ExperimentTest, SpeedupsAlignByWorkload)
{
    const std::vector<std::string> subset = {"AES", "KM"};
    const auto base = runSuite(tinyConfig(),
                               TranslationPolicy::baseline(), 300,
                               subset);
    const auto hdpat = runSuite(tinyConfig(),
                                TranslationPolicy::hdpat(), 300,
                                subset);
    const auto sp = speedups(base, hdpat);
    ASSERT_EQ(sp.size(), 2u);
    for (double s : sp)
        EXPECT_GT(s, 0.0);
    EXPECT_NEAR(geomeanSpeedup(base, hdpat),
                geomean(sp), 1e-12);
}

TEST(ExperimentTest, MismatchedSweepsPanic)
{
    const std::vector<std::string> one = {"AES"};
    const std::vector<std::string> two = {"AES", "KM"};
    const auto a = runSuite(tinyConfig(),
                            TranslationPolicy::baseline(), 200, one);
    const auto b = runSuite(tinyConfig(),
                            TranslationPolicy::baseline(), 200, two);
    EXPECT_DEATH(speedups(a, b), "mismatched");
}

TEST(RunnerTest, DefaultOpsArePositiveAndScaled)
{
    EXPECT_GT(defaultOpsPerGpm(), 0u);
    EXPECT_GT(benchScale(), 0.0);
}

TEST(RunnerTest, ZeroOpsSpecUsesDefault)
{
    RunSpec spec;
    spec.config = tinyConfig();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "AES";
    spec.opsPerGpm = 100; // explicit, keep the test fast
    const RunResult r = runOnce(spec);
    EXPECT_EQ(r.opsTotal, 100u * spec.config.numGpms());
    EXPECT_EQ(r.config, "tiny-3x3");
    EXPECT_EQ(r.policy, "baseline");
}

TEST(RunnerTest, FootprintScalePropagates)
{
    RunSpec spec;
    spec.config = tinyConfig();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "SPMV";
    spec.opsPerGpm = 400;

    spec.footprintScale = 1.0;
    const RunResult full = runOnce(spec);
    spec.footprintScale = 0.125;
    const RunResult small = runOnce(spec);
    // Different footprints change the gather domain, so the runs must
    // differ observably in timing or traffic.
    const bool differs = full.totalTicks != small.totalTicks ||
                         full.noc.packets != small.noc.packets ||
                         full.iommu.requestsReceived !=
                             small.iommu.requestsReceived;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace hdpat
