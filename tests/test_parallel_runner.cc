/**
 * @file
 * Tests for the parallel experiment runner: run-index suffixing of
 * observability outputs, jobs resolution, and the central determinism
 * guarantee -- runMany() with N workers produces results bitwise
 * identical to serial execution, including metrics-JSON dumps.
 */

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "driver/parallel.hh"
#include "driver/runner.hh"

namespace hdpat
{
namespace
{

TEST(WithRunIndexSuffixTest, SplicesBeforeExtension)
{
    EXPECT_EQ(withRunIndexSuffix("metrics.json", 3), "metrics-3.json");
    EXPECT_EQ(withRunIndexSuffix("out/trace.json", 0),
              "out/trace-0.json");
    EXPECT_EQ(withRunIndexSuffix("a/b.d/x.json", 12),
              "a/b.d/x-12.json");
}

TEST(WithRunIndexSuffixTest, AppendsWhenNoExtension)
{
    EXPECT_EQ(withRunIndexSuffix("metrics", 1), "metrics-1");
    // A dot in a parent directory is not an extension.
    EXPECT_EQ(withRunIndexSuffix("dir.d/file", 2), "dir.d/file-2");
    // A leading dot is a hidden file, not an extension.
    EXPECT_EQ(withRunIndexSuffix(".hidden", 4), ".hidden-4");
    EXPECT_EQ(withRunIndexSuffix("out/.hidden", 5), "out/.hidden-5");
}

TEST(DefaultJobsTest, OverrideWinsAndClears)
{
    setDefaultJobs(3);
    EXPECT_EQ(defaultJobs(), 3u);
    setDefaultJobs(0); // Back to HDPAT_JOBS / hardware concurrency.
    EXPECT_GE(defaultJobs(), 1u);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing file: " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
expectSameSummary(const SummaryStat &a, const SummaryStat &b,
                  const std::string &what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
}

void
expectSameSeries(const TimeSeries &a, const TimeSeries &b,
                 const std::string &what)
{
    ASSERT_EQ(a.windows(), b.windows()) << what;
    for (std::size_t w = 0; w < a.windows(); ++w) {
        EXPECT_EQ(a.windowSum(w), b.windowSum(w)) << what << " w" << w;
        EXPECT_EQ(a.windowMax(w), b.windowMax(w)) << what << " w" << w;
        EXPECT_EQ(a.windowCount(w), b.windowCount(w))
            << what << " w" << w;
    }
}

/** Every field of @p a equals @p b (bitwise for the float stats). */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    SCOPED_TRACE("workload " + a.workload);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.gpmFinish, b.gpmFinish);
    EXPECT_EQ(a.opsTotal, b.opsTotal);
    EXPECT_EQ(a.l1TlbHits, b.l1TlbHits);
    EXPECT_EQ(a.l2TlbHits, b.l2TlbHits);
    EXPECT_EQ(a.llTlbHits, b.llTlbHits);
    EXPECT_EQ(a.localWalks, b.localWalks);
    EXPECT_EQ(a.cuckooFalsePositives, b.cuckooFalsePositives);
    EXPECT_EQ(a.remoteOps, b.remoteOps);
    EXPECT_EQ(a.remoteResolutions, b.remoteResolutions);
    EXPECT_EQ(a.sourceCounts, b.sourceCounts);
    expectSameSummary(a.remoteRtt, b.remoteRtt, "remoteRtt");
    EXPECT_EQ(a.probesSentTotal, b.probesSentTotal);
    EXPECT_EQ(a.probesReceivedTotal, b.probesReceivedTotal);
    EXPECT_EQ(a.probeHitsTotal, b.probeHitsTotal);
    EXPECT_EQ(a.pushesReceivedTotal, b.pushesReceivedTotal);
    EXPECT_EQ(a.auditIssued, b.auditIssued);
    EXPECT_EQ(a.auditRetired, b.auditRetired);
    EXPECT_EQ(a.auditPfnChecks, b.auditPfnChecks);
    EXPECT_EQ(a.auditRetireCensusHash, b.auditRetireCensusHash);

    EXPECT_EQ(a.iommu.requestsReceived, b.iommu.requestsReceived);
    EXPECT_EQ(a.iommu.redirectsSent, b.iommu.redirectsSent);
    EXPECT_EQ(a.iommu.redirectBounces, b.iommu.redirectBounces);
    EXPECT_EQ(a.iommu.staleRedirectsSkipped,
              b.iommu.staleRedirectsSkipped);
    EXPECT_EQ(a.iommu.tlbHits, b.iommu.tlbHits);
    EXPECT_EQ(a.iommu.mshrMerges, b.iommu.mshrMerges);
    EXPECT_EQ(a.iommu.ingressStalls, b.iommu.ingressStalls);
    EXPECT_EQ(a.iommu.walksStarted, b.iommu.walksStarted);
    EXPECT_EQ(a.iommu.walksCompleted, b.iommu.walksCompleted);
    EXPECT_EQ(a.iommu.revisitCompletions, b.iommu.revisitCompletions);
    EXPECT_EQ(a.iommu.prefetchedPtes, b.iommu.prefetchedPtes);
    EXPECT_EQ(a.iommu.pushesSent, b.iommu.pushesSent);
    EXPECT_EQ(a.iommu.responsesSent, b.iommu.responsesSent);
    EXPECT_EQ(a.iommu.delegationsSent, b.iommu.delegationsSent);
    EXPECT_EQ(a.iommu.delegationReturns, b.iommu.delegationReturns);
    expectSameSummary(a.iommu.preQueueLatency, b.iommu.preQueueLatency,
                      "preQueueLatency");
    expectSameSummary(a.iommu.pwQueueLatency, b.iommu.pwQueueLatency,
                      "pwQueueLatency");
    expectSameSummary(a.iommu.walkLatency, b.iommu.walkLatency,
                      "walkLatency");
    expectSameSeries(a.iommu.bufferDepth, b.iommu.bufferDepth,
                     "bufferDepth");
    EXPECT_EQ(a.iommu.maxBufferDepth, b.iommu.maxBufferDepth);
    expectSameSeries(a.iommu.servedPerWindow, b.iommu.servedPerWindow,
                     "servedPerWindow");
    EXPECT_EQ(a.iommu.trace, b.iommu.trace);

    EXPECT_EQ(a.noc.packets, b.noc.packets);
    EXPECT_EQ(a.noc.totalBytes, b.noc.totalBytes);
    EXPECT_EQ(a.noc.byteHops, b.noc.byteHops);
    EXPECT_EQ(a.noc.totalHops, b.noc.totalHops);
    EXPECT_EQ(a.noc.totalLatency, b.noc.totalLatency);
    expectSameSummary(a.noc.linkWait, b.noc.linkWait, "linkWait");
}

std::vector<RunSpec>
fullSuiteSpecs(const std::string &metrics_path)
{
    // The full 14-workload Table II suite under the full HDPAT policy
    // (the policy that exercises the most machinery), with trace
    // capture on so trace equality is checked too.
    std::vector<RunSpec> specs = suiteSpecs(
        SystemConfig::mi100(), TranslationPolicy::hdpat(), 250);
    for (RunSpec &spec : specs) {
        spec.captureIommuTrace = true;
        spec.obs.metricsJsonPath = metrics_path;
    }
    return specs;
}

TEST(RunManyTest, ParallelIsBitwiseIdenticalToSerial)
{
    const std::string dir = ::testing::TempDir();
    const std::string serial_path = dir + "hdpat-serial.json";
    const std::string parallel_path = dir + "hdpat-parallel.json";

    const std::vector<RunResult> serial =
        runMany(fullSuiteSpecs(serial_path), 1);
    const std::vector<RunResult> parallel =
        runMany(fullSuiteSpecs(parallel_path), 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(serial[i], parallel[i]);

    // The metrics dumps must also match byte for byte. Both batches
    // are multi-spec, so both get the same per-run suffixes.
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const std::string s =
            slurp(withRunIndexSuffix(serial_path, i));
        const std::string p =
            slurp(withRunIndexSuffix(parallel_path, i));
        EXPECT_FALSE(s.empty()) << "run " << i;
        EXPECT_EQ(s, p) << "metrics dump differs for run " << i;
    }
}

TEST(RunManyTest, ResultsComeBackInSpecOrder)
{
    std::vector<RunSpec> specs = suiteSpecs(
        SystemConfig::mi100(), TranslationPolicy::baseline(), 200,
        {"SPMV", "PR", "MT", "FWS"});
    const std::vector<RunResult> results = runMany(std::move(specs), 4);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].workload, "SPMV");
    EXPECT_EQ(results[1].workload, "PR");
    EXPECT_EQ(results[2].workload, "MT");
    EXPECT_EQ(results[3].workload, "FWS");
}

TEST(RunManyTest, SingleSpecKeepsExactObsPath)
{
    const std::string path =
        ::testing::TempDir() + "hdpat-single.json";
    RunSpec spec;
    spec.config = SystemConfig::mcm4();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "SPMV";
    spec.opsPerGpm = 200;
    spec.obs.metricsJsonPath = path;
    runMany({spec}, 4);
    EXPECT_FALSE(slurp(path).empty());
}

TEST(RunManyTest, EmptyBatchIsFine)
{
    EXPECT_TRUE(runMany({}, 8).empty());
}

} // namespace
} // namespace hdpat
