/**
 * @file
 * Property tests for NoC congestion behaviour: hot-spot serialization,
 * conservation of delivered packets, and geometry-dependent latency —
 * the characteristics §III says dominate wafer-scale communication.
 */

#include <gtest/gtest.h>

#include "noc/network.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

TEST(NocCongestionTest, HotSpotSerializesByBandwidth)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    Network net(engine, topo, NocParams{});

    // Every GPM fires a large packet at the CPU at t=0. The CPU has
    // only 4 inbound links, so the last arrival must reflect the
    // serialization of all that traffic through them.
    const std::size_t bytes = 768 * 2; // 2 cycles per link traversal.
    Tick last = 0;
    for (TileId gpm : topo.gpmTiles())
        last = std::max(last, net.computeArrival(0, gpm, topo.cpuTile(),
                                                 bytes));
    // 48 packets x 2 cycles over 4 links = >= 24 cycles of pure
    // serialization at the hot spot, beyond the base hop latency.
    const Tick base = 6 * 32 + 12; // Farthest corner, uncontended.
    EXPECT_GT(last, base + 10);
    EXPECT_EQ(net.stats().packets, topo.numGpms());
}

TEST(NocCongestionTest, DisjointPathsDoNotInterfere)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    Network net(engine, topo, NocParams{});

    // Two flows in opposite corners share no links under XY routing.
    const Tick a1 = net.computeArrival(0, topo.tileAt({0, 0}),
                                       topo.tileAt({1, 0}), 768 * 8);
    const Tick b1 = net.computeArrival(0, topo.tileAt({6, 6}),
                                       topo.tileAt({5, 6}), 768 * 8);
    EXPECT_EQ(a1, b1); // Identical, independent timing.
}

TEST(NocCongestionTest, LatencyGrowsWithDistance)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    Network net(engine, topo, NocParams{});

    const TileId cpu = topo.cpuTile();
    Tick prev = 0;
    for (int d = 1; d <= 3; ++d) {
        const TileId src = topo.tileAt({3 - d, 3});
        const Tick arrive = net.computeArrival(0, src, cpu, 32);
        EXPECT_GT(arrive, prev);
        prev = arrive;
    }
}

TEST(NocCongestionTest, BacklogDrainsAtLinkRate)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    NocParams params;
    params.bytesPerTick = 64.0; // Slow link: 1 line per cycle.
    Network net(engine, topo, params);

    const TileId a = topo.tileAt({0, 3});
    const TileId b = topo.tileAt({1, 3});
    std::vector<Tick> arrivals;
    for (int i = 0; i < 16; ++i)
        arrivals.push_back(net.computeArrival(0, a, b, 64));
    // Each 64-byte packet holds the link for exactly 1 cycle.
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_EQ(arrivals[i], arrivals[i - 1] + 1);
}

TEST(NocCongestionTest, LinkWaitStatCapturesQueueing)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    Network net(engine, topo, NocParams{});

    const TileId a = topo.tileAt({2, 2});
    const TileId b = topo.tileAt({3, 2});
    net.computeArrival(0, a, b, 768 * 4);
    EXPECT_EQ(net.stats().linkWait.max(), 0.0);
    net.computeArrival(0, a, b, 768 * 4);
    EXPECT_GT(net.stats().linkWait.max(), 0.0);
}

/** Randomized conservation: every sent packet arrives exactly once. */
TEST(NocCongestionTest, AllPacketsDeliverUnderRandomTraffic)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(5, 5);
    Network net(engine, topo, NocParams{});
    Rng rng(99);

    int delivered = 0;
    const int total = 500;
    const auto &gpms = topo.gpmTiles();
    for (int i = 0; i < total; ++i) {
        const TileId src = gpms[rng.uniformInt(gpms.size())];
        const TileId dst = gpms[rng.uniformInt(gpms.size())];
        net.send(src, dst, 32 + rng.uniformInt(128),
                 [&delivered] { ++delivered; });
    }
    engine.run();
    EXPECT_EQ(delivered, total);
    EXPECT_EQ(net.stats().packets, static_cast<std::uint64_t>(total));
}

} // namespace
} // namespace hdpat
