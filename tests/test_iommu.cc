/**
 * @file
 * Component tests for the IOMMU pipeline, driven with fake peer
 * endpoints: walk latency, queue backpressure, PW-queue revisit,
 * redirection, proactive delivery pushes, and the Fig 19 TLB mode.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "hdpat/cluster_map.hh"
#include "iommu/iommu.hh"
#include "mem/page_table.hh"
#include "noc/network.hh"
#include "sim/engine.hh"

namespace hdpat
{
namespace
{

/** Records everything the IOMMU delivers to a tile. */
class FakePeer : public PeerEndpoint
{
  public:
    struct Response
    {
        Vpn vpn;
        Pfn pfn;
        TranslationSource source;
        Tick when;
    };
    struct Push
    {
        Vpn vpn;
        Pfn pfn;
        bool prefetched;
    };

    explicit FakePeer(Engine &engine) : engine_(engine) {}

    void
    receivePtePush(Vpn vpn, Pfn pfn, bool prefetched) override
    {
        pushes.push_back({vpn, pfn, prefetched});
    }

    void
    receiveRedirectedRequest(const RemoteRequest &req) override
    {
        redirected.push_back(req);
    }

    void
    receiveTranslationResponse(Vpn vpn, Pfn pfn,
                               TranslationSource source) override
    {
        responses.push_back({vpn, pfn, source, engine_.now()});
    }

    void
    receiveDelegatedWalk(const RemoteRequest &req) override
    {
        delegated.push_back(req);
    }

    std::vector<Response> responses;
    std::vector<Push> pushes;
    std::vector<RemoteRequest> redirected;
    std::vector<RemoteRequest> delegated;

  private:
    Engine &engine_;
};

class IommuTestBench
{
  public:
    IommuTestBench(TranslationPolicy pol,
                   SystemConfig cfg = SystemConfig::mi100())
        : cfg_(std::move(cfg)), pol_(std::move(pol)),
          topo_(MeshTopology::wafer(cfg_.meshWidth, cfg_.meshHeight)),
          net_(engine_, topo_, cfg_.noc), pt_(cfg_.pageShift),
          layers_(topo_, pol_.concentricLayers),
          clusterMap_(layers_, 4, true)
    {
        buffer_ = pt_.allocate(4096 * pt_.pageBytes(), topo_.gpmTiles());

        iommu_ = std::make_unique<Iommu>(engine_, net_, pt_, cfg_, pol_,
                                         topo_.cpuTile());
        peers_.resize(static_cast<std::size_t>(topo_.numTiles()));
        std::vector<PeerEndpoint *> raw(peers_.size(), nullptr);
        for (TileId t : topo_.gpmTiles()) {
            peers_[static_cast<std::size_t>(t)] =
                std::make_unique<FakePeer>(engine_);
            raw[static_cast<std::size_t>(t)] =
                peers_[static_cast<std::size_t>(t)].get();
        }
        iommu_->setPeers(std::move(raw));
        if (pol_.usesPeerCaching())
            iommu_->setClusterMap(&clusterMap_);
    }

    FakePeer &peer(TileId tile)
    {
        return *peers_[static_cast<std::size_t>(tile)];
    }

    /** First mapped VPN of the test buffer. */
    Vpn vpn(std::size_t index = 0) const
    {
        return pt_.vpnOf(buffer_.baseVa) + index;
    }

    void
    request(Vpn vpn, TileId requester)
    {
        RemoteRequest req;
        req.vpn = vpn;
        req.requester = requester;
        req.issuedAt = engine_.now();
        iommu_->receiveRequest(req);
    }

    SystemConfig cfg_;
    TranslationPolicy pol_;
    Engine engine_;
    MeshTopology topo_;
    Network net_;
    GlobalPageTable pt_;
    ConcentricLayers layers_;
    ClusterMap clusterMap_;
    std::unique_ptr<Iommu> iommu_;
    std::vector<std::unique_ptr<FakePeer>> peers_;
    BufferHandle buffer_;
};

TEST(IommuTest, SingleRequestWalksAndResponds)
{
    IommuTestBench bench(TranslationPolicy::baseline());
    const TileId requester = bench.topo_.gpmTiles().front();
    bench.request(bench.vpn(), requester);
    bench.engine_.run();

    const auto &responses = bench.peer(requester).responses;
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].vpn, bench.vpn());
    EXPECT_EQ(responses[0].source, TranslationSource::IommuWalk);
    EXPECT_EQ(responses[0].pfn,
              bench.pt_.translate(bench.vpn())->pfn);
    // Walk latency plus the response's mesh traversal.
    EXPECT_GE(responses[0].when, bench.cfg_.iommuWalkLatency);
    EXPECT_EQ(bench.iommu_->stats().walksCompleted, 1u);
}

TEST(IommuTest, WalkBumpsAccessCount)
{
    IommuTestBench bench(TranslationPolicy::baseline());
    const TileId requester = bench.topo_.gpmTiles().front();
    bench.request(bench.vpn(), requester);
    bench.engine_.run();
    EXPECT_EQ(bench.pt_.translate(bench.vpn())->accessCount, 1u);
}

TEST(IommuTest, QueueBackpressureGrowsLatency)
{
    IommuTestBench bench(TranslationPolicy::baseline());
    const TileId requester = bench.topo_.gpmTiles().front();
    // 10x the walker count of distinct VPNs at once.
    const std::size_t n = bench.cfg_.iommuWalkers * 10;
    for (std::size_t i = 0; i < n; ++i)
        bench.request(bench.vpn(i), requester);
    bench.engine_.run();

    ASSERT_EQ(bench.peer(requester).responses.size(), n);
    EXPECT_EQ(bench.iommu_->stats().walksCompleted, n);
    // Later requests wait multiple walk rounds.
    const auto &s = bench.iommu_->stats();
    EXPECT_GT(s.preQueueLatency.max() + s.pwQueueLatency.max(),
              static_cast<double>(3 * bench.cfg_.iommuWalkLatency));
    EXPECT_GT(s.maxBufferDepth, bench.cfg_.iommuWalkers);
}

TEST(IommuTest, RevisitCompletesIdenticalPending)
{
    IommuTestBench bench(TranslationPolicy::barre());
    const TileId requester = bench.topo_.gpmTiles().front();
    // Saturate the walkers with distinct VPNs, then enqueue more
    // duplicates of one VPN than there are walkers: when the first
    // duplicate's walk completes, the remaining queued duplicates are
    // finished by the revisit instead of walking again.
    const std::size_t walkers = bench.cfg_.iommuWalkers;
    const std::size_t dups = walkers + 4;
    for (std::size_t i = 0; i < walkers; ++i)
        bench.request(bench.vpn(100 + i), requester);
    for (std::size_t i = 0; i < dups; ++i)
        bench.request(bench.vpn(7), requester);
    bench.engine_.run();

    EXPECT_GT(bench.iommu_->stats().revisitCompletions, 0u);
    // Fewer walks spent than one per duplicate.
    EXPECT_LT(bench.iommu_->stats().walksCompleted, walkers + dups);
    std::size_t dup_responses = 0;
    for (const auto &r : bench.peer(requester).responses)
        dup_responses += (r.vpn == bench.vpn(7));
    EXPECT_EQ(dup_responses, dups);
}

TEST(IommuTest, BaselineNeverRevisits)
{
    IommuTestBench bench(TranslationPolicy::baseline());
    const TileId requester = bench.topo_.gpmTiles().front();
    for (std::size_t i = 0; i < bench.cfg_.iommuWalkers; ++i)
        bench.request(bench.vpn(100 + i), requester);
    for (int i = 0; i < 8; ++i)
        bench.request(bench.vpn(7), requester);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().revisitCompletions, 0u);
    // Every duplicate pays its own walk.
    EXPECT_EQ(bench.iommu_->stats().walksCompleted,
              bench.cfg_.iommuWalkers + 8);
}

TEST(IommuTest, SelectivePushAfterThreshold)
{
    TranslationPolicy pol = TranslationPolicy::withRedirection();
    pol.auxPushThreshold = 2;
    IommuTestBench bench(pol);
    const TileId requester = bench.topo_.gpmTiles().front();

    // First walk: below threshold, no push, no RT entry.
    bench.request(bench.vpn(), requester);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().pushesSent, 0u);

    // Second walk of the same VPN: pushes to one tile per layer and
    // installs the redirection entry.
    bench.request(bench.vpn(), requester);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().pushesSent, 2u);

    const TileId aux0 = bench.clusterMap_.auxTileFor(bench.vpn(), 0);
    const TileId aux1 = bench.clusterMap_.auxTileFor(bench.vpn(), 1);
    ASSERT_EQ(bench.peer(aux0).pushes.size(), 1u);
    ASSERT_EQ(bench.peer(aux1).pushes.size(), 1u);
    EXPECT_FALSE(bench.peer(aux0).pushes[0].prefetched);

    // Third request from a different GPM: redirected to the inner aux.
    const TileId other = bench.topo_.gpmTiles().back();
    bench.request(bench.vpn(), other);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().redirectsSent, 1u);
    ASSERT_EQ(bench.peer(aux0).redirected.size(), 1u);
    EXPECT_EQ(bench.peer(aux0).redirected[0].requester, other);
}

TEST(IommuTest, RedirectToRequesterFallsBackToWalk)
{
    TranslationPolicy pol = TranslationPolicy::withRedirection();
    pol.auxPushThreshold = 1;
    IommuTestBench bench(pol);
    const TileId aux0 = bench.clusterMap_.auxTileFor(bench.vpn(), 0);

    // Prime the RT (one walk from some other tile).
    bench.request(bench.vpn(), bench.topo_.gpmTiles().back());
    bench.engine_.run();

    // The registered holder itself asks: it must NOT be redirected to
    // itself; the stale entry is dropped and a walk happens.
    bench.request(bench.vpn(), aux0);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().staleRedirectsSkipped, 1u);
    EXPECT_EQ(bench.peer(aux0).redirected.size(), 0u);
    ASSERT_FALSE(bench.peer(aux0).responses.empty());
}

TEST(IommuTest, PrefetchPushesNeighbours)
{
    TranslationPolicy pol = TranslationPolicy::hdpat();
    pol.auxPushThreshold = 100; // Isolate prefetch pushes.
    IommuTestBench bench(pol);
    const TileId requester = bench.topo_.gpmTiles().front();

    bench.request(bench.vpn(10), requester);
    bench.engine_.run();

    // Degree 4: VPN+1..+3 prefetched, each pushed to both layers.
    EXPECT_EQ(bench.iommu_->stats().prefetchedPtes, 3u);
    EXPECT_EQ(bench.iommu_->stats().pushesSent, 6u);
    for (int d = 1; d < 4; ++d) {
        const Vpn pv = bench.vpn(10) + static_cast<Vpn>(d);
        const TileId aux = bench.clusterMap_.auxTileFor(pv, 0);
        bool found = false;
        for (const auto &push : bench.peer(aux).pushes)
            found |= (push.vpn == pv && push.prefetched);
        EXPECT_TRUE(found) << "prefetched vpn " << pv;
    }
}

TEST(IommuTest, PrefetchSkipsUnmappedPages)
{
    TranslationPolicy pol = TranslationPolicy::hdpat();
    pol.auxPushThreshold = 100;
    IommuTestBench bench(pol);
    const TileId requester = bench.topo_.gpmTiles().front();
    // Last mapped page: its +1..+3 neighbours do not exist.
    bench.request(bench.vpn(4095), requester);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().prefetchedPtes, 0u);
}

TEST(IommuTest, TlbModeHitsAfterFill)
{
    IommuTestBench bench(TranslationPolicy::hdpatWithIommuTlb());
    const TileId requester = bench.topo_.gpmTiles().front();

    bench.request(bench.vpn(), requester);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().walksCompleted, 1u);

    bench.request(bench.vpn(), requester);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().tlbHits, 1u);
    EXPECT_EQ(bench.iommu_->stats().walksCompleted, 1u); // No 2nd walk.

    const auto &responses = bench.peer(requester).responses;
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[1].source, TranslationSource::IommuTlb);
}

TEST(IommuTest, TlbModeMergesConcurrentMisses)
{
    IommuTestBench bench(TranslationPolicy::hdpatWithIommuTlb());
    const TileId a = bench.topo_.gpmTiles().front();
    const TileId b = bench.topo_.gpmTiles().back();
    bench.request(bench.vpn(3), a);
    bench.request(bench.vpn(3), b);
    bench.engine_.run();
    EXPECT_EQ(bench.iommu_->stats().walksCompleted, 1u);
    EXPECT_EQ(bench.iommu_->stats().mshrMerges, 1u);
    EXPECT_EQ(bench.peer(a).responses.size(), 1u);
    EXPECT_EQ(bench.peer(b).responses.size(), 1u);
}

TEST(IommuTest, TransFwDelegatesToHome)
{
    IommuTestBench bench(TranslationPolicy::transFw());
    const TileId requester = bench.topo_.gpmTiles().front();
    const Vpn v = bench.vpn(2000);
    const TileId home = bench.pt_.homeOf(v);
    ASSERT_NE(home, kInvalidTile);

    bench.request(v, requester);
    bench.engine_.run();

    EXPECT_EQ(bench.iommu_->stats().walksCompleted, 0u);
    EXPECT_EQ(bench.iommu_->stats().delegationsSent, 1u);
    ASSERT_EQ(bench.peer(home).delegated.size(), 1u);
    EXPECT_EQ(bench.peer(home).delegated[0].vpn, v);
}

TEST(IommuTest, TraceCaptureRecordsArrivals)
{
    IommuTestBench bench(TranslationPolicy::baseline());
    bench.iommu_->setCaptureTrace(true);
    const TileId requester = bench.topo_.gpmTiles().front();
    bench.request(bench.vpn(1), requester);
    bench.request(bench.vpn(2), requester);
    bench.engine_.run();
    ASSERT_EQ(bench.iommu_->stats().trace.size(), 2u);
    EXPECT_EQ(bench.iommu_->stats().trace[0].second, bench.vpn(1));
    EXPECT_EQ(bench.iommu_->stats().trace[1].second, bench.vpn(2));
}

TEST(IommuTest, ServedPerWindowCountsRequests)
{
    IommuTestBench bench(TranslationPolicy::baseline());
    const TileId requester = bench.topo_.gpmTiles().front();
    for (int i = 0; i < 5; ++i)
        bench.request(bench.vpn(static_cast<std::size_t>(i)),
                      requester);
    bench.engine_.run();
    double total = 0;
    const auto &series = bench.iommu_->stats().servedPerWindow;
    for (std::size_t w = 0; w < series.windows(); ++w)
        total += series.windowSum(w);
    EXPECT_DOUBLE_EQ(total, 5.0);
}

} // namespace
} // namespace hdpat
