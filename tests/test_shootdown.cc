/**
 * @file
 * Tests for TLB shootdown (memory free, §II-A) and the sequential
 * probe-dispatch ablation knob.
 */

#include <gtest/gtest.h>

#include "driver/runner.hh"
#include "driver/system.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

class OnePageWorkload : public Workload
{
  public:
    OnePageWorkload() : Workload({"ONE", "one shared page", 1, 1 << 20})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        buffer_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t, std::size_t, std::size_t,
              std::uint64_t) const override
    {
        class OneShot : public AddressStream
        {
          public:
            explicit OneShot(Addr a) : addr_(a) {}
            std::optional<Addr>
            next() override
            {
                if (done_)
                    return std::nullopt;
                done_ = true;
                return addr_;
            }

          private:
            Addr addr_;
            bool done_ = false;
        };
        return std::make_unique<OneShot>(buffer_.baseVa);
    }

    const BufferHandle &buffer() const { return buffer_; }

  private:
    BufferHandle buffer_;
};

TEST(ShootdownTest, DropsEveryCachedCopy)
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    System sys(cfg, TranslationPolicy::hdpat());
    OnePageWorkload wl;
    sys.loadWorkload(wl, 0, 1);
    sys.run();

    const Vpn vpn = sys.pageTable().vpnOf(wl.buffer().baseVa);
    ASSERT_NE(sys.pageTable().translate(vpn), nullptr);

    // Every GPM touched the page, so many copies exist.
    const std::size_t dropped = sys.shootdown(vpn);
    EXPECT_GT(dropped, 0u);

    // The mapping is gone and no structure still holds the page.
    EXPECT_EQ(sys.pageTable().translate(vpn), nullptr);
    for (std::size_t i = 0; i < sys.numGpms(); ++i) {
        EXPECT_FALSE(sys.gpm(i).l2Tlb().peek(vpn).has_value());
        EXPECT_FALSE(sys.gpm(i).lastLevelTlb().peek(vpn).has_value());
        EXPECT_FALSE(sys.gpm(i).cuckooFilter().contains(vpn))
            << "gpm " << i;
    }

    // Idempotent.
    EXPECT_EQ(sys.shootdown(vpn), 0u);
}

TEST(ShootdownTest, HomeGpmLosesItsPermanentFilterEntry)
{
    SystemConfig cfg = SystemConfig::mcm4();
    System sys(cfg, TranslationPolicy::baseline());
    OnePageWorkload wl;
    sys.loadWorkload(wl, 0, 1);

    const Vpn vpn = sys.pageTable().vpnOf(wl.buffer().baseVa);
    const TileId home = sys.pageTable().homeOf(vpn);
    Gpm *home_gpm = sys.gpmAtTile(home);
    ASSERT_NE(home_gpm, nullptr);
    ASSERT_TRUE(home_gpm->cuckooFilter().contains(vpn));

    sys.run();
    sys.shootdown(vpn);
    EXPECT_FALSE(home_gpm->cuckooFilter().contains(vpn));
}

TEST(ShootdownTest, UnmapOnBarePageTable)
{
    GlobalPageTable pt(12);
    const std::array<TileId, 2> homes = {1, 2};
    const BufferHandle buf = pt.allocate(4 * pt.pageBytes(), homes);
    const Vpn vpn = pt.vpnOf(buf.baseVa);

    EXPECT_EQ(pt.pagesHomedOn(1), 2u);
    EXPECT_TRUE(pt.unmap(vpn));
    EXPECT_EQ(pt.translate(vpn), nullptr);
    EXPECT_EQ(pt.pagesHomedOn(1), 1u);
    EXPECT_FALSE(pt.unmap(vpn));
    EXPECT_EQ(pt.size(), 3u);
}

TEST(SequentialProbesTest, ResolvesAndClassifiesCorrectly)
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    TranslationPolicy pol = TranslationPolicy::hdpat();
    pol.concurrentProbes = false;

    RunSpec spec;
    spec.config = cfg;
    spec.policy = pol;
    spec.workload = "SPMV";
    spec.opsPerGpm = 1000;
    const RunResult r = runOnce(spec);

    EXPECT_EQ(r.opsTotal, 1000u * 24u);
    std::uint64_t classified = 0;
    for (std::uint64_t c : r.sourceCounts)
        classified += c;
    EXPECT_EQ(classified, r.remoteResolutions);
    // Peer caching still works through the sequential chain.
    EXPECT_GT(r.offloadedFraction(), 0.0);
}

TEST(ClusterKnobsTest, RotationOffAndClusterCountRun)
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    for (const int clusters : {2, 8}) {
        TranslationPolicy pol = TranslationPolicy::hdpat();
        pol.rotation = false;
        pol.numClusters = clusters;

        RunSpec spec;
        spec.config = cfg;
        spec.policy = pol;
        spec.workload = "PR";
        spec.opsPerGpm = 800;
        const RunResult r = runOnce(spec);
        EXPECT_EQ(r.opsTotal, 800u * 24u) << clusters;
    }
}

} // namespace
} // namespace hdpat
