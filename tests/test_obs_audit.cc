/**
 * @file
 * Conservation auditor tests: injected faults (lost packet, double
 * retire, leaked MSHR, unbalanced TLB, undrained queue) must each be
 * caught with a diagnostic naming the culprit, a clean full-system
 * run must audit green, and turning the auditor on must not perturb
 * the simulation (bitwise-identical results).
 */

#include <gtest/gtest.h>

#include <string>

#include "driver/runner.hh"
#include "driver/system.hh"
#include "driver/tenancy.hh"
#include "obs/audit.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    cfg.name = "audit-5x5";
    return cfg;
}

std::string
joined(const Auditor::Report &report)
{
    std::string all;
    for (const std::string &v : report.violations)
        all += v + "\n";
    return all;
}

TEST(AuditorTest, CleanLedgerPasses)
{
    Auditor auditor;
    auditor.opIssued(3, 0x42, 100);
    auditor.packetSent(32);
    auditor.packetDelivered(32);
    auditor.mshrAllocated(3);
    auditor.mshrFreed(3);
    auditor.opRetired(3, 0x42, 500);

    const Auditor::Report report = auditor.finalize();
    EXPECT_TRUE(report.ok) << joined(report);
    EXPECT_TRUE(report.violations.empty());
    EXPECT_EQ(auditor.issued(), 1u);
    EXPECT_EQ(auditor.retired(), 1u);
    EXPECT_EQ(auditor.inFlight(), 0u);
}

TEST(AuditorTest, CatchesLostPacket)
{
    Auditor auditor;
    auditor.packetSent(32); // Control-plane packet never delivered.
    auditor.packetSent(64);
    auditor.packetDelivered(64);

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    EXPECT_NE(joined(report).find("control-plane"), std::string::npos)
        << joined(report);
    EXPECT_NE(joined(report).find("1 sent but 0 delivered"),
              std::string::npos)
        << joined(report);
}

TEST(AuditorTest, CatchesDoubleRetire)
{
    Auditor auditor;
    auditor.opIssued(7, 0xabc, 10);
    auditor.opRetired(7, 0xabc, 20);
    auditor.opRetired(7, 0xabc, 30); // Fault: retires twice.

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    const std::string all = joined(report);
    EXPECT_NE(all.find("retire without matching issue"),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("tile 7"), std::string::npos) << all;
}

TEST(AuditorTest, CatchesStuckTranslationWithDiagnostic)
{
    Auditor auditor;
    auditor.opIssued(2, 0x1000, 40);
    auditor.opIssued(2, 0x1000, 45); // Two ops on the same page.
    auditor.opIssued(5, 0x2000, 50);
    auditor.opRetired(2, 0x1000, 90);

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    EXPECT_EQ(auditor.inFlight(), 2u);

    // The diagnostic names every stuck (tile, VPN) span and the
    // per-tile in-flight counts.
    EXPECT_NE(report.diagnostic.find("stuck spans: 2"),
              std::string::npos)
        << report.diagnostic;
    EXPECT_NE(report.diagnostic.find("tile 2 vpn 0x1000"),
              std::string::npos)
        << report.diagnostic;
    EXPECT_NE(report.diagnostic.find("tile 5 vpn 0x2000"),
              std::string::npos)
        << report.diagnostic;
    EXPECT_NE(report.diagnostic.find("t2=1"), std::string::npos)
        << report.diagnostic;
}

TEST(AuditorTest, CatchesMshrLeak)
{
    Auditor auditor;
    auditor.mshrAllocated(4);
    auditor.mshrAllocated(4);
    auditor.mshrFreed(4);

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    const std::string all = joined(report);
    EXPECT_NE(all.find("MSHR"), std::string::npos) << all;
    EXPECT_NE(all.find("tile 4"), std::string::npos) << all;
}

TEST(AuditorTest, CatchesTlbImbalance)
{
    Auditor auditor;
    auditor.tlbFilled(6);
    auditor.tlbFilled(6);
    auditor.tlbEvicted(6);
    // Occupancy probe claims zero resident entries, so one fill is
    // unaccounted for.
    auditor.setTlbOccupancyProbe(6, [] { return std::size_t{0}; });

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    EXPECT_NE(joined(report).find("TLB"), std::string::npos)
        << joined(report);
}

TEST(AuditorTest, CatchesUndrainedQueue)
{
    Auditor auditor;
    auditor.addQueueProbe("gpm.t1.stalled_remote",
                          [] { return std::size_t{3}; });

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    const std::string all = joined(report);
    EXPECT_NE(all.find("gpm.t1.stalled_remote"), std::string::npos)
        << all;
    EXPECT_NE(all.find("3"), std::string::npos) << all;
}

TEST(AuditorTest, ShootdownRoundClosesAfterExactlyOneAckPerTile)
{
    Auditor auditor;
    auditor.shootdownIssued(0x40, 3, 100);
    auditor.invalidationAcked(0x40, 1, 110);
    auditor.invalidationAcked(0x40, 2, 120);
    auditor.invalidationAcked(0x40, 3, 130);

    const Auditor::Report report = auditor.finalize();
    EXPECT_TRUE(report.ok) << joined(report);
    EXPECT_EQ(auditor.shootdownRounds(), 1u);
    EXPECT_EQ(auditor.shootdownRoundsClosed(), 1u);
    EXPECT_EQ(auditor.invalidationAcks(), 3u);

    // A closed round permits a new one for the same key.
    auditor.shootdownIssued(0x40, 1, 200);
    auditor.invalidationAcked(0x40, 1, 210);
    EXPECT_TRUE(auditor.finalize().ok);
    EXPECT_EQ(auditor.shootdownRoundsClosed(), 2u);
}

TEST(AuditorTest, CatchesDuplicateInvalidationAck)
{
    Auditor auditor;
    auditor.shootdownIssued(0x40, 2, 100);
    auditor.invalidationAcked(0x40, 1, 110);
    auditor.invalidationAcked(0x40, 1, 120); // Fault: same tile twice.

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    EXPECT_NE(joined(report).find("duplicate invalidation ack"),
              std::string::npos)
        << joined(report);
}

TEST(AuditorTest, CatchesAckWithoutOpenRound)
{
    Auditor auditor;
    auditor.invalidationAcked(0x50, 4, 100);

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    EXPECT_NE(joined(report).find("no open shootdown round"),
              std::string::npos)
        << joined(report);
}

TEST(AuditorTest, CatchesOverlappingShootdownRounds)
{
    Auditor auditor;
    auditor.shootdownIssued(0x60, 2, 100);
    auditor.shootdownIssued(0x60, 2, 150); // Fault: round still open.

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    EXPECT_NE(joined(report).find("still awaiting"), std::string::npos)
        << joined(report);
}

TEST(AuditorTest, CatchesRoundNeverClosed)
{
    Auditor auditor;
    auditor.shootdownIssued(0x70, 3, 100);
    auditor.invalidationAcked(0x70, 1, 110); // Two acks lost.

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    const std::string all = joined(report);
    EXPECT_NE(all.find("never closed"), std::string::npos) << all;
    EXPECT_NE(all.find("1 of 3 acks"), std::string::npos) << all;
    EXPECT_EQ(auditor.shootdownRoundsClosed(), 0u);
}

TEST(AuditorTest, ZeroTargetRoundClosesImmediately)
{
    // An empty wafer (no holder tiles) is a degenerate but legal round.
    Auditor auditor;
    auditor.shootdownIssued(0x80, 0, 100);
    EXPECT_TRUE(auditor.finalize().ok);
    EXPECT_EQ(auditor.shootdownRoundsClosed(), 1u);
}

TEST(AuditorTest, CatchesStaleResidentTranslation)
{
    Auditor auditor;
    auditor.staleResident(6, 0x90, 0xabc);

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    const std::string all = joined(report);
    EXPECT_NE(all.find("stale TLB entry resident at tile 6"),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("survived its shootdown"), std::string::npos)
        << all;
    EXPECT_EQ(auditor.staleResidents(), 1u);
}

TEST(AuditorTest, PpnOracleCatchesWrongTranslation)
{
    Auditor auditor;
    auditor.setReferenceTranslator([](Vpn vpn) -> std::optional<Pfn> {
        if (vpn == 0x30) // Unmapped: the oracle must abstain.
            return std::nullopt;
        return vpn + 0x1000;
    });

    auditor.pfnResolved(2, 0x10, 0x1010, 100); // Correct.
    auditor.pfnResolved(2, 0x30, 0xdead, 150); // Unmapped: no verdict.
    auditor.pfnResolved(5, 0x20, 0xbeef, 200); // Wrong.
    EXPECT_EQ(auditor.pfnChecks(), 3u);
    EXPECT_EQ(auditor.pfnMismatches(), 1u);

    const Auditor::Report report = auditor.finalize();
    ASSERT_FALSE(report.ok);
    const std::string all = joined(report);
    EXPECT_NE(all.find("wrong PPN installed at tile 5"),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("vpn 0x20"), std::string::npos) << all;
}

TEST(AuditorTest, PpnOracleSilentWithoutReference)
{
    Auditor auditor;
    auditor.pfnResolved(1, 0x10, 0xdead, 50);
    EXPECT_EQ(auditor.pfnChecks(), 0u);
    EXPECT_TRUE(auditor.finalize().ok);
}

TEST(AuditorTest, RetireCensusHashIsOrderIndependent)
{
    // Same multiset of (tile, vpn) retires in two different orders,
    // including a repeated retire of the same page, must digest
    // identically; a different multiset must not.
    Auditor a;
    a.opIssued(1, 0x10, 0);
    a.opIssued(2, 0x20, 0);
    a.opIssued(1, 0x10, 0);
    a.opRetired(1, 0x10, 10);
    a.opRetired(2, 0x20, 20);
    a.opRetired(1, 0x10, 30);

    Auditor b;
    b.opIssued(2, 0x20, 0);
    b.opIssued(1, 0x10, 0);
    b.opIssued(1, 0x10, 0);
    b.opRetired(2, 0x20, 5);
    b.opRetired(1, 0x10, 15);
    b.opRetired(1, 0x10, 25);

    EXPECT_EQ(a.retireCensusHash(), b.retireCensusHash());
    EXPECT_NE(a.retireCensusHash(), 0u);

    Auditor c; // One fewer retire of (1, 0x10).
    c.opIssued(1, 0x10, 0);
    c.opIssued(2, 0x20, 0);
    c.opRetired(1, 0x10, 10);
    c.opRetired(2, 0x20, 20);
    EXPECT_NE(a.retireCensusHash(), c.retireCensusHash());

    // Swapping which tile retired a page is a routing bug the plain
    // issued/retired totals would miss; the census must see it.
    Auditor d;
    d.opIssued(1, 0x20, 0);
    d.opIssued(2, 0x10, 0);
    d.opIssued(1, 0x10, 0);
    d.opRetired(1, 0x20, 10);
    d.opRetired(2, 0x10, 20);
    d.opRetired(1, 0x10, 30);
    EXPECT_NE(a.retireCensusHash(), d.retireCensusHash());
}

TEST(AuditorSystemTest, FullRunAuditsGreen)
{
    System sys(smallConfig(), TranslationPolicy::hdpat());
    sys.enableAudit();
    auto wl = makeWorkload("SPMV");
    sys.loadWorkload(*wl, 1500, 42);
    sys.run(); // Panics internally on any violation.

    ASSERT_NE(sys.auditor(), nullptr);
    const Auditor::Report report = sys.auditor()->finalize();
    EXPECT_TRUE(report.ok) << joined(report);
    EXPECT_GT(sys.auditor()->issued(), 0u);
    EXPECT_EQ(sys.auditor()->issued(), sys.auditor()->retired());
    EXPECT_GT(
        sys.auditor()->packetsSent(Auditor::Plane::Control), 0u);
}

TEST(AuditorSystemTest, BaselinePolicyAuditsGreen)
{
    // The baseline policy exercises the IOMMU path (every remote
    // translation walks at the CPU tile).
    System sys(smallConfig(), TranslationPolicy::baseline());
    sys.enableAudit();
    auto wl = makeWorkload("MM");
    sys.loadWorkload(*wl, 1200, 7);
    sys.run();
    EXPECT_TRUE(sys.auditor()->finalize().ok);
}

TEST(AuditorSystemTest, TenantChurnDrainsMergedMshrs)
{
    // Churn aimed at hot pages: MSHRs holding ops merged onto a VPN
    // that gets invalidated mid-flight must drain (the ops re-fault
    // and retire), never leak. finalize() checks the per-tile MSHR
    // alloc/free balance, the shootdown-ack ledger, and the end-of-run
    // stale-resident sweep; run() panics on any of them.
    for (const auto &pol :
         {TranslationPolicy::baseline(), TranslationPolicy::hdpat()}) {
        SCOPED_TRACE(pol.name);
        System sys(smallConfig(), pol);
        TenancySpec tenancy;
        tenancy.asidCount = 2;
        tenancy.switchRatePerMTicks = 400;
        tenancy.churnRatePerMTicks = 600;
        sys.enableTenancy(tenancy);
        sys.enableAudit();
        auto wl = makeWorkload("PR");
        sys.loadWorkload(*wl, 1000, 11);
        const RunResult r = sys.run();

        ASSERT_NE(sys.auditor(), nullptr);
        const Auditor::Report report = sys.auditor()->finalize();
        EXPECT_TRUE(report.ok) << joined(report);
        EXPECT_EQ(sys.auditor()->issued(), sys.auditor()->retired());
        EXPECT_EQ(sys.auditor()->staleResidents(), 0u);
        EXPECT_GT(r.pagesChurned, 0u);
        EXPECT_EQ(sys.auditor()->shootdownRounds(),
                  sys.auditor()->shootdownRoundsClosed());
        // Exactly one ack per GPM tile per round, by construction of
        // the broadcast -- and by the ledger, which would have flagged
        // duplicates or strays live.
        EXPECT_EQ(sys.auditor()->invalidationAcks(),
                  sys.auditor()->shootdownRounds() * sys.numGpms());
    }
}

TEST(AuditorSystemTest, AuditDoesNotPerturbSimulation)
{
    const auto run = [](bool audit) {
        System sys(smallConfig(), TranslationPolicy::hdpat());
        if (audit)
            sys.enableAudit();
        auto wl = makeWorkload("PR");
        sys.loadWorkload(*wl, 1000, 99);
        return sys.run();
    };
    const RunResult with = run(true);
    const RunResult without = run(false);

    // Auditing must be pure observation: identical timing and counts.
    EXPECT_EQ(with.totalTicks, without.totalTicks);
    EXPECT_EQ(with.opsTotal, without.opsTotal);
    EXPECT_EQ(with.remoteOps, without.remoteOps);
    EXPECT_EQ(with.noc.packets, without.noc.packets);
    EXPECT_EQ(with.gpmFinish, without.gpmFinish);
}

TEST(AuditorSystemTest, RunnerHonorsAuditOption)
{
    RunSpec spec;
    spec.config = smallConfig();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 800;
    spec.obs = ObsOptions{};
    spec.obs.audit = true;
    const RunResult r = runOnce(spec); // Must not panic.
    EXPECT_GT(r.opsTotal, 0u);
}

} // namespace
} // namespace hdpat
