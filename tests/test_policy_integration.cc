/**
 * @file
 * Parameterized integration tests: every translation policy runs every
 * check, so no scheme can silently deadlock or violate accounting.
 */

#include <string>

#include <gtest/gtest.h>

#include "driver/runner.hh"

namespace hdpat
{
namespace
{

TranslationPolicy
policyByName(const std::string &name)
{
    if (name == "baseline")
        return TranslationPolicy::baseline();
    if (name == "route-based")
        return TranslationPolicy::routeCaching();
    if (name == "concentric")
        return TranslationPolicy::concentricCaching();
    if (name == "distributed")
        return TranslationPolicy::distributedCaching();
    if (name == "cluster+rotation")
        return TranslationPolicy::clusterRotation();
    if (name == "redirection")
        return TranslationPolicy::withRedirection();
    if (name == "prefetch")
        return TranslationPolicy::withPrefetch();
    if (name == "hdpat")
        return TranslationPolicy::hdpat();
    if (name == "hdpat-iommu-tlb")
        return TranslationPolicy::hdpatWithIommuTlb();
    if (name == "trans-fw")
        return TranslationPolicy::transFw();
    if (name == "valkyrie")
        return TranslationPolicy::valkyrie();
    return TranslationPolicy::barre();
}

class PolicyIntegrationTest : public testing::TestWithParam<std::string>
{
  protected:
    RunResult
    runSmall(const std::string &workload) const
    {
        RunSpec spec;
        spec.config = SystemConfig::mi100();
        spec.config.meshWidth = 5;
        spec.config.meshHeight = 5;
        spec.config.name = "ptest-5x5";
        spec.policy = policyByName(GetParam());
        spec.workload = workload;
        spec.opsPerGpm = 1000;
        return runOnce(spec);
    }
};

TEST_P(PolicyIntegrationTest, CompletesAllOps)
{
    const RunResult r = runSmall("SPMV");
    EXPECT_EQ(r.opsTotal, 1000u * 24u);
    EXPECT_GT(r.totalTicks, 0u);
    for (const auto &[tile, tick] : r.gpmFinish)
        EXPECT_LE(tick, r.totalTicks);
}

TEST_P(PolicyIntegrationTest, AccountingInvariantsHold)
{
    const RunResult r = runSmall("SPMV");
    // Every unique remote resolution got exactly one classification.
    std::uint64_t classified = 0;
    for (std::uint64_t c : r.sourceCounts)
        classified += c;
    EXPECT_EQ(classified, r.remoteResolutions);
    // Resolutions never exceed remote ops (MSHR coalescing only
    // merges).
    EXPECT_LE(r.remoteResolutions, r.remoteOps);
    // Offload fraction is a fraction.
    EXPECT_GE(r.offloadedFraction(), 0.0);
    EXPECT_LE(r.offloadedFraction(), 1.0);
    // RTT stats exist whenever remote work happened.
    if (r.remoteResolutions > 0) {
        EXPECT_GT(r.remoteRtt.mean(), 0.0);
    }
}

TEST_P(PolicyIntegrationTest, NoPolicyLosesToBaselineBadly)
{
    // Sanity: no scheme should be catastrophically slower than the
    // naive baseline on a mixed workload.
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "FWT";
    spec.opsPerGpm = 1000;
    const RunResult base = runOnce(spec);

    spec.policy = policyByName(GetParam());
    const RunResult variant = runOnce(spec);
    EXPECT_GT(speedupOver(base, variant), 0.7) << GetParam();
}

TEST_P(PolicyIntegrationTest, DeterministicAcrossRepeats)
{
    const RunResult a = runSmall("KM");
    const RunResult b = runSmall("KM");
    EXPECT_EQ(a.totalTicks, b.totalTicks);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyIntegrationTest,
    testing::Values("baseline", "route-based", "concentric",
                    "distributed", "cluster+rotation", "redirection",
                    "prefetch", "hdpat", "hdpat-iommu-tlb", "trans-fw",
                    "valkyrie", "barre"),
    [](const testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace hdpat
