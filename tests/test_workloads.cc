/**
 * @file
 * Tests for the 14-benchmark suite: Table II metadata, determinism,
 * address validity (every generated VPN is mapped), and the per-
 * benchmark locality characteristics DESIGN.md promises.
 */

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mem/page_table.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

std::vector<TileId>
fakeGpms(std::size_t n)
{
    std::vector<TileId> gpms;
    for (std::size_t i = 0; i < n; ++i)
        gpms.push_back(static_cast<TileId>(i + 1));
    return gpms;
}

TEST(WorkloadSuiteTest, TableTwoMatchesPaper)
{
    const auto &table = workloadTable();
    ASSERT_EQ(table.size(), 14u);

    struct Row
    {
        const char *abbr;
        std::size_t workgroups;
        std::size_t footprint_mb;
    };
    const Row rows[] = {
        {"AES", 4096, 8},      {"BT", 16384, 16},
        {"FWT", 16384, 64},    {"FFT", 32768, 256},
        {"FIR", 65536, 256},   {"FWS", 65536, 72},
        {"I2C", 16384, 32},    {"KM", 32768, 40},
        {"MM", 16384, 256},    {"MT", 524288, 2048},
        {"PR", 524288, 14},    {"RELU", 1310720, 1280},
        {"SC", 262465, 256},   {"SPMV", 81920, 120},
    };
    for (std::size_t i = 0; i < 14; ++i) {
        EXPECT_EQ(table[i].abbr, rows[i].abbr);
        EXPECT_EQ(table[i].workgroups, rows[i].workgroups);
        EXPECT_EQ(table[i].footprintBytes,
                  rows[i].footprint_mb * 1024 * 1024)
            << rows[i].abbr;
    }
}

TEST(WorkloadSuiteTest, UnknownAbbrIsFatal)
{
    EXPECT_EXIT(makeWorkload("NOPE"), testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(WorkloadSuiteTest, FootprintScaleShrinksBuffers)
{
    GlobalPageTable big(12), small(12);
    const auto gpms = fakeGpms(8);
    makeWorkload("FWT", 1.0)->allocate(big, gpms);
    makeWorkload("FWT", 0.25)->allocate(small, gpms);
    EXPECT_GT(big.size(), small.size());
    EXPECT_NEAR(static_cast<double>(big.size()) / small.size(), 4.0,
                0.5);
}

TEST(WorkloadSuiteTest, SliceOfMatchesAllocatorSplit)
{
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(7);
    const BufferHandle buf = pt.allocate(100 * pt.pageBytes(), gpms);
    // Slices tile the buffer exactly, in order, and agree with homes.
    Addr expected_base = buf.baseVa;
    for (std::size_t g = 0; g < 7; ++g) {
        const SliceView slice = sliceOf(buf, g, 7);
        EXPECT_EQ(slice.base, expected_base);
        expected_base += slice.bytes;
        for (Addr a = slice.base; a < slice.base + slice.bytes;
             a += pt.pageBytes()) {
            EXPECT_EQ(pt.homeOf(pt.vpnOf(a)), gpms[g]);
        }
    }
    EXPECT_EQ(expected_base, buf.endVa());
}

/** Every workload, every GPM: streams are valid and deterministic. */
class WorkloadParamTest : public testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadParamTest, AddressesAreMappedAndDeterministic)
{
    const std::string abbr = GetParam();
    // Scale big footprints down to keep the test fast.
    auto wl = makeWorkload(abbr, 0.125);
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(12);
    wl->allocate(pt, gpms);

    for (std::size_t g : {std::size_t(0), std::size_t(7)}) {
        auto s1 = wl->streamFor(g, 12, 500, 42);
        auto s2 = wl->streamFor(g, 12, 500, 42);
        std::size_t count = 0;
        while (auto a1 = s1->next()) {
            const auto a2 = s2->next();
            ASSERT_TRUE(a2.has_value());
            EXPECT_EQ(*a1, *a2); // Deterministic for a fixed seed.
            EXPECT_NE(pt.translate(pt.vpnOf(*a1)), nullptr)
                << abbr << " generated unmapped address " << *a1;
            ++count;
        }
        EXPECT_EQ(count, 500u) << abbr;
        EXPECT_FALSE(s2->next().has_value());
    }
}

TEST_P(WorkloadParamTest, GpmsGetDistinctStreams)
{
    const std::string abbr = GetParam();
    auto wl = makeWorkload(abbr, 0.125);
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(12);
    wl->allocate(pt, gpms);

    auto s0 = wl->streamFor(0, 12, 200, 42);
    auto s1 = wl->streamFor(1, 12, 200, 42);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += (*s0->next() == *s1->next());
    EXPECT_LT(same, 150) << abbr; // Different slices/chunks/seeds.
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadParamTest,
                         testing::Values("AES", "BT", "FWT", "FFT",
                                         "FIR", "FWS", "I2C", "KM",
                                         "MM", "MT", "PR", "RELU",
                                         "SC", "SPMV"));

TEST(WorkloadCharacterTest, StreamingBenchmarksAreMostlyLocal)
{
    // AES touches mostly its own slice (small shared T-table aside).
    auto wl = makeWorkload("AES");
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(12);
    wl->allocate(pt, gpms);

    auto stream = wl->streamFor(3, 12, 2000, 7);
    int local = 0, total = 0;
    while (auto a = stream->next()) {
        local += (pt.homeOf(pt.vpnOf(*a)) == gpms[3]);
        ++total;
    }
    EXPECT_GT(static_cast<double>(local) / total, 0.6);
}

TEST(WorkloadCharacterTest, GatherBenchmarksAreMostlyRemote)
{
    // SPMV's x-gather plus partitioning makes a large remote share.
    auto wl = makeWorkload("SPMV");
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(12);
    wl->allocate(pt, gpms);

    auto stream = wl->streamFor(3, 12, 3000, 7);
    int remote = 0, total = 0;
    while (auto a = stream->next()) {
        remote += (pt.homeOf(pt.vpnOf(*a)) != gpms[3]);
        ++total;
    }
    EXPECT_GT(static_cast<double>(remote) / total, 0.2);
}

TEST(WorkloadCharacterTest, PageRankConcentratesOnHubs)
{
    auto wl = makeWorkload("PR");
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(12);
    wl->allocate(pt, gpms);

    std::map<Vpn, int> counts;
    auto stream = wl->streamFor(0, 12, 8000, 7);
    while (auto a = stream->next())
        ++counts[pt.vpnOf(*a)];
    // The hottest page must take a clearly outsized share.
    int hottest = 0, total = 0;
    for (const auto &[vpn, c] : counts) {
        hottest = std::max(hottest, c);
        total += c;
    }
    EXPECT_GT(static_cast<double>(hottest) * counts.size() / total,
              5.0);
}

TEST(WorkloadCharacterTest, MatrixTransposeHasLongReuseDistance)
{
    auto wl = makeWorkload("MT", 0.25);
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(12);
    wl->allocate(pt, gpms);

    // The scatter half of MT must touch many distinct pages without
    // revisiting them quickly.
    std::set<Vpn> pages;
    auto stream = wl->streamFor(0, 12, 4000, 7);
    while (auto a = stream->next())
        pages.insert(pt.vpnOf(*a));
    EXPECT_GT(pages.size(), 200u);
}

TEST(WorkloadCharacterTest, FirIsPageSequential)
{
    // O4's spatial locality: FIR's in-stream frequently moves to the
    // adjacent page (prefetch-friendly).
    auto wl = makeWorkload("FIR", 0.25);
    GlobalPageTable pt(12);
    const auto gpms = fakeGpms(12);
    wl->allocate(pt, gpms);

    // Channels interleave, so measure spatial locality on the
    // first-touch order of distinct pages: FIR's chunked input walk
    // makes most newly touched pages adjacent to the previous one.
    auto stream = wl->streamFor(0, 12, 4000, 7);
    std::set<Vpn> seen;
    std::vector<Vpn> first_touch_order;
    while (auto a = stream->next()) {
        const Vpn vpn = pt.vpnOf(*a);
        if (seen.insert(vpn).second)
            first_touch_order.push_back(vpn);
    }
    ASSERT_GT(first_touch_order.size(), 10u);
    int adjacent = 0;
    for (std::size_t i = 1; i < first_touch_order.size(); ++i)
        adjacent += (first_touch_order[i] == first_touch_order[i - 1] + 1);
    EXPECT_GT(static_cast<double>(adjacent) /
                  (first_touch_order.size() - 1),
              0.2); // O4 reports 10-30% proximity.
}

} // namespace
} // namespace hdpat
