/**
 * @file
 * Unit tests for the simulation engine: time advance, relative
 * scheduling, bounded runs, and reset.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hh"

namespace hdpat
{
namespace
{

TEST(EngineTest, TimeAdvancesWithEvents)
{
    Engine engine;
    EXPECT_EQ(engine.now(), 0u);

    Tick seen = 0;
    engine.scheduleAt(100, [&] { seen = engine.now(); });
    engine.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(engine.now(), 100u);
}

TEST(EngineTest, ScheduleInIsRelative)
{
    Engine engine;
    std::vector<Tick> ticks;
    engine.scheduleAt(10, [&] {
        engine.scheduleIn(5, [&] { ticks.push_back(engine.now()); });
    });
    engine.run();
    ASSERT_EQ(ticks.size(), 1u);
    EXPECT_EQ(ticks[0], 15u);
}

TEST(EngineTest, SchedulingNowFromEventWorks)
{
    Engine engine;
    int fired = 0;
    engine.scheduleAt(3, [&] {
        engine.scheduleIn(0, [&] { ++fired; });
    });
    engine.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(engine.now(), 3u);
}

TEST(EngineTest, SchedulingInThePastPanics)
{
    Engine engine;
    engine.scheduleAt(10, [] {});
    engine.run();
    EXPECT_DEATH(engine.scheduleAt(5, [] {}), "past");
}

TEST(EngineTest, RunUntilStopsAtLimit)
{
    Engine engine;
    int fired = 0;
    engine.scheduleAt(10, [&] { ++fired; });
    engine.scheduleAt(20, [&] { ++fired; });
    engine.scheduleAt(30, [&] { ++fired; });

    engine.runUntil(20);
    EXPECT_EQ(fired, 2); // Events exactly at the limit still run.
    EXPECT_EQ(engine.now(), 20u);
    EXPECT_EQ(engine.pendingEvents(), 1u);

    engine.run();
    EXPECT_EQ(fired, 3);
}

TEST(EngineTest, RunUntilAdvancesTimeWhenIdle)
{
    Engine engine;
    engine.runUntil(500);
    EXPECT_EQ(engine.now(), 500u);
}

TEST(EngineTest, StepReturnsFalseWhenEmpty)
{
    Engine engine;
    EXPECT_FALSE(engine.step());
    engine.scheduleAt(1, [] {});
    EXPECT_TRUE(engine.step());
    EXPECT_FALSE(engine.step());
}

TEST(EngineTest, ExecutedEventsCounts)
{
    Engine engine;
    for (int i = 0; i < 7; ++i)
        engine.scheduleAt(static_cast<Tick>(i), [] {});
    engine.run();
    EXPECT_EQ(engine.executedEvents(), 7u);
}

TEST(EngineTest, ResetRewindsEverything)
{
    Engine engine;
    engine.scheduleAt(10, [] {});
    engine.run();
    engine.scheduleAt(99, [] {});
    engine.reset();
    EXPECT_EQ(engine.now(), 0u);
    EXPECT_EQ(engine.pendingEvents(), 0u);
    EXPECT_EQ(engine.executedEvents(), 0u);
    // Scheduling at tick 0 must be legal again.
    int fired = 0;
    engine.scheduleAt(0, [&] { ++fired; });
    engine.run();
    EXPECT_EQ(fired, 1);
}

/** Cascading events model a pipeline: each stage schedules the next. */
TEST(EngineTest, CascadedEventsRunToCompletion)
{
    Engine engine;
    int depth = 0;
    std::function<void()> stage = [&] {
        if (++depth < 1000)
            engine.scheduleIn(1, stage);
    };
    engine.scheduleAt(0, stage);
    engine.run();
    EXPECT_EQ(depth, 1000);
    EXPECT_EQ(engine.now(), 999u);
}

} // namespace
} // namespace hdpat
