/**
 * @file
 * Workload stream cache: replayed tables must be bit-identical to
 * direct generation (including against a page table with real wafer
 * tile homes, which is the soundness claim behind building on a
 * scratch table), hits must share one build, the LRU bound must hold,
 * and a cached run must equal an uncached run end to end.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "driver/runner.hh"
#include "mem/page_table.hh"
#include "noc/mesh_topology.hh"
#include "workloads/stream_cache.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

/**
 * For every Table II workload: generate streams the way System does --
 * against a page table whose pages are homed on real wafer tiles --
 * and compare with the cache's table, which was built on a scratch
 * page table with synthetic tile ids. Bit-identical streams prove the
 * addresses do not depend on page homes.
 */
TEST(StreamCacheTest, ReplayMatchesDirectGenerationForWholeSuite)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const std::size_t num_gpms = topo.gpmTiles().size();
    constexpr std::size_t kOps = 400;
    constexpr std::uint64_t kSeed = 0x5eed;

    WorkloadStreamCache cache;
    for (const std::string &abbr : workloadAbbrs()) {
        SCOPED_TRACE(abbr);
        const auto table = cache.get(
            StreamKey{abbr, 1.0, kOps, kSeed, num_gpms, 12});
        ASSERT_EQ(table->numGpms(), num_gpms);

        GlobalPageTable pt(12);
        const auto workload = makeWorkload(abbr);
        workload->allocate(pt, topo.gpmTiles());
        for (std::size_t i = 0; i < num_gpms; ++i) {
            const auto direct =
                workload->streamFor(i, num_gpms, kOps, kSeed);
            std::vector<Addr> expect;
            while (const auto addr = direct->next())
                expect.push_back(*addr);
            ASSERT_EQ(table->gpm(i), expect) << "gpm " << i;

            ReplayStream replay(table, i);
            for (const Addr want : expect) {
                const auto got = replay.next();
                ASSERT_TRUE(got.has_value());
                ASSERT_EQ(*got, want);
            }
            EXPECT_FALSE(replay.next().has_value());
            EXPECT_FALSE(replay.next().has_value()); // Stays drained.
        }
    }
}

TEST(StreamCacheTest, HitsShareOneBuild)
{
    WorkloadStreamCache cache;
    const StreamKey key{"SPMV", 1.0, 100, 1, 8, 12};
    const auto a = cache.get(key);
    const auto b = cache.get(key);
    EXPECT_EQ(a.get(), b.get()); // Same immutable table.
    EXPECT_EQ(cache.builds(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    StreamKey other = key;
    other.seed = 2;
    const auto c = cache.get(other);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.builds(), 2u);
}

TEST(StreamCacheTest, DistinctKeysAreDistinctStreams)
{
    // SPMV's zipf gather makes the stream seed-sensitive (MM's pure
    // sequential channels would not be).
    WorkloadStreamCache cache;
    const StreamKey base{"SPMV", 1.0, 200, 7, 8, 12};
    const auto table = cache.get(base);

    StreamKey scaled = base;
    scaled.footprintScale = 2.0;
    EXPECT_NE(cache.get(scaled)->gpm(0), table->gpm(0));

    StreamKey reseeded = base;
    reseeded.seed = 8;
    EXPECT_NE(cache.get(reseeded)->gpm(0), table->gpm(0));
}

TEST(StreamCacheTest, LruBoundEvictsOldest)
{
    WorkloadStreamCache cache(2);
    StreamKey key{"SPMV", 1.0, 50, 1, 4, 12};
    const auto first = cache.get(key); // Keeps the table alive.
    key.seed = 2;
    cache.get(key);
    key.seed = 3;
    cache.get(key);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.builds(), 3u);

    // The evicted (oldest) key rebuilds; the shared_ptr we held is
    // still valid and unchanged.
    key.seed = 1;
    const auto rebuilt = cache.get(key);
    EXPECT_EQ(cache.builds(), 4u);
    EXPECT_EQ(first->gpm(0), rebuilt->gpm(0));
}

TEST(StreamCacheTest, ConcurrentGetsBuildOnce)
{
    WorkloadStreamCache cache;
    const StreamKey key{"PR", 1.0, 150, 9, 8, 12};
    std::vector<std::shared_ptr<const StreamTable>> results(8);
    {
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < results.size(); ++t)
            threads.emplace_back(
                [&, t] { results[t] = cache.get(key); });
        for (std::thread &th : threads)
            th.join();
    }
    for (const auto &r : results)
        EXPECT_EQ(r.get(), results[0].get());
    EXPECT_EQ(cache.builds(), 1u);
    EXPECT_EQ(cache.hits(), 7u);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** End to end: cached and uncached runs are the same simulation. */
TEST(StreamCacheTest, RunnerEquivalentWithAndWithoutCache)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "FFT";
    spec.opsPerGpm = 300;
    spec.obs.audit = true;

    const std::string dir = ::testing::TempDir();
    spec.obs.metricsJsonPath = dir + "cache-on.json";
    ASSERT_EQ(setenv("HDPAT_STREAM_CACHE", "1", 1), 0);
    const RunResult cached = runOnce(spec);

    spec.obs.metricsJsonPath = dir + "cache-off.json";
    ASSERT_EQ(setenv("HDPAT_STREAM_CACHE", "0", 1), 0);
    const RunResult uncached = runOnce(spec);
    ASSERT_EQ(unsetenv("HDPAT_STREAM_CACHE"), 0);

    EXPECT_EQ(cached.totalTicks, uncached.totalTicks);
    EXPECT_EQ(cached.opsTotal, uncached.opsTotal);
    EXPECT_EQ(cached.gpmFinish, uncached.gpmFinish);
    EXPECT_EQ(cached.auditRetireCensusHash,
              uncached.auditRetireCensusHash);
    EXPECT_EQ(slurp(dir + "cache-on.json"),
              slurp(dir + "cache-off.json"));
}

TEST(StreamCacheTest, AsidCountIsPartOfTheKey)
{
    // A 2-tenant run allocates the workload once per ASID, so the
    // workload's final buffer handles -- and thus the generated
    // streams -- can differ from the single-tenant build. The key must
    // keep the entries apart, and the 2-tenant table must match direct
    // generation that mirrors System::loadWorkload's per-ASID
    // allocation loop.
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const std::size_t num_gpms = topo.gpmTiles().size();
    constexpr std::size_t kOps = 300;
    constexpr std::uint64_t kSeed = 0x5eed;

    WorkloadStreamCache cache;
    StreamKey one{"SPMV", 1.0, kOps, kSeed, num_gpms, 12};
    StreamKey two = one;
    two.asidCount = 2;
    const auto table_one = cache.get(one);
    const auto table_two = cache.get(two);
    EXPECT_NE(table_one.get(), table_two.get());
    EXPECT_EQ(cache.builds(), 2u);

    GlobalPageTable pt(12);
    const auto workload = makeWorkload("SPMV");
    for (Asid asid = 0; asid < 2; ++asid) {
        pt.setActiveAsid(asid);
        workload->allocate(pt, topo.gpmTiles());
    }
    pt.setActiveAsid(0);
    for (std::size_t i = 0; i < num_gpms; ++i) {
        const auto direct =
            workload->streamFor(i, num_gpms, kOps, kSeed);
        std::vector<Addr> expect;
        while (const auto addr = direct->next())
            expect.push_back(*addr);
        ASSERT_EQ(table_two->gpm(i), expect) << "gpm " << i;
    }
}

/** Satellite of the tenancy PR: 2-tenant runs, cached vs uncached. */
TEST(StreamCacheTest, TwoTenantRunnerEquivalentWithAndWithoutCache)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "FFT";
    spec.opsPerGpm = 300;
    spec.obs.audit = true;
    spec.tenancy = TenancySpec{};
    spec.tenancy.asidCount = 2;
    spec.tenancy.switchRatePerMTicks = 400;
    spec.tenancy.churnRatePerMTicks = 200;

    const std::string dir = ::testing::TempDir();
    spec.obs.metricsJsonPath = dir + "tenant-cache-on.json";
    ASSERT_EQ(setenv("HDPAT_STREAM_CACHE", "1", 1), 0);
    const RunResult cached = runOnce(spec);

    spec.obs.metricsJsonPath = dir + "tenant-cache-off.json";
    ASSERT_EQ(setenv("HDPAT_STREAM_CACHE", "0", 1), 0);
    const RunResult uncached = runOnce(spec);
    ASSERT_EQ(unsetenv("HDPAT_STREAM_CACHE"), 0);

    EXPECT_EQ(cached.totalTicks, uncached.totalTicks);
    EXPECT_EQ(cached.opsTotal, uncached.opsTotal);
    EXPECT_EQ(cached.gpmFinish, uncached.gpmFinish);
    EXPECT_EQ(cached.contextSwitches, uncached.contextSwitches);
    EXPECT_EQ(cached.pagesChurned, uncached.pagesChurned);
    EXPECT_EQ(cached.pageFaults, uncached.pageFaults);
    EXPECT_EQ(cached.auditRetireCensusHash,
              uncached.auditRetireCensusHash);
    EXPECT_EQ(slurp(dir + "tenant-cache-on.json"),
              slurp(dir + "tenant-cache-off.json"));
}

TEST(StreamCacheTest, EnvKillSwitch)
{
    ASSERT_EQ(unsetenv("HDPAT_STREAM_CACHE"), 0);
    EXPECT_TRUE(streamCacheEnabled()); // Default on.
    ASSERT_EQ(setenv("HDPAT_STREAM_CACHE", "0", 1), 0);
    EXPECT_FALSE(streamCacheEnabled());
    ASSERT_EQ(setenv("HDPAT_STREAM_CACHE", "off", 1), 0);
    EXPECT_FALSE(streamCacheEnabled());
    ASSERT_EQ(setenv("HDPAT_STREAM_CACHE", "1", 1), 0);
    EXPECT_TRUE(streamCacheEnabled());
    ASSERT_EQ(unsetenv("HDPAT_STREAM_CACHE"), 0);
}

} // namespace
} // namespace hdpat
