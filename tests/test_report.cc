/**
 * @file
 * Tests for the CSV export module.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "driver/report.hh"
#include "driver/runner.hh"

namespace hdpat
{
namespace
{

RunResult
smallRun()
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 3;
    spec.config.meshHeight = 3;
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 300;
    spec.captureIommuTrace = true;
    return runOnce(spec);
}

TEST(ReportTest, RunCsvHasHeaderAndRows)
{
    const RunResult r = smallRun();
    std::ostringstream os;
    writeRunCsv(os, {r, r});
    const std::string out = os.str();

    // Header plus two data rows.
    int lines = 0;
    for (char c : out)
        lines += (c == '\n');
    EXPECT_EQ(lines, 3);
    EXPECT_EQ(out.find("workload,policy,config,cycles"), 0u);
    EXPECT_NE(out.find("SPMV,hdpat,"), std::string::npos);
    EXPECT_NE(out.find(std::to_string(r.totalTicks)),
              std::string::npos);
}

TEST(ReportTest, RunCsvColumnCountMatchesHeader)
{
    const RunResult r = smallRun();
    std::ostringstream os;
    writeRunCsv(os, {r});
    std::istringstream lines(os.str());
    std::string header, row;
    std::getline(lines, header);
    std::getline(lines, row);

    auto commas = [](const std::string &s) {
        int n = 0;
        for (char c : s)
            n += (c == ',');
        return n;
    };
    EXPECT_EQ(commas(header), commas(row));
}

TEST(ReportTest, TraceCsvRoundTrips)
{
    const RunResult r = smallRun();
    ASSERT_FALSE(r.iommu.trace.empty());

    std::ostringstream os;
    writeTraceCsv(os, r.iommu.trace);
    std::istringstream lines(os.str());
    std::string header;
    std::getline(lines, header);
    EXPECT_EQ(header, "tick,vpn");

    std::size_t rows = 0;
    std::string row;
    while (std::getline(lines, row))
        ++rows;
    EXPECT_EQ(rows, r.iommu.trace.size());
}

TEST(ReportTest, EmptyInputsProduceHeadersOnly)
{
    std::ostringstream os;
    writeRunCsv(os, {});
    EXPECT_EQ(os.str().find('\n'), os.str().size() - 1);

    std::ostringstream os2;
    writeTraceCsv(os2, {});
    EXPECT_EQ(os2.str(), "tick,vpn\n");
}

} // namespace
} // namespace hdpat
