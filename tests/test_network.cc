/**
 * @file
 * Unit tests for the analytical mesh network: XY routing, latency
 * arithmetic, link contention, and traffic accounting.
 */

#include <gtest/gtest.h>

#include "noc/network.hh"
#include "sim/engine.hh"

namespace hdpat
{
namespace
{

class NetworkTest : public testing::Test
{
  protected:
    NetworkTest() : topo_(MeshTopology::wafer(7, 7)), net_(makeNet()) {}

    Network makeNet()
    {
        NocParams params;
        params.linkLatency = 32;
        params.bytesPerTick = 768.0;
        params.localLatency = 1;
        return Network(engine_, topo_, params);
    }

    Engine engine_;
    MeshTopology topo_;
    Network net_;
};

TEST_F(NetworkTest, RouteIsDimensionOrdered)
{
    const TileId src = topo_.tileAt({0, 0});
    const TileId dst = topo_.tileAt({2, 2});
    const auto path = net_.route(src, dst);
    // X first, then Y: (0,0) (1,0) (2,0) (2,1) (2,2).
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(path[0], topo_.tileAt({0, 0}));
    EXPECT_EQ(path[1], topo_.tileAt({1, 0}));
    EXPECT_EQ(path[2], topo_.tileAt({2, 0}));
    EXPECT_EQ(path[3], topo_.tileAt({2, 1}));
    EXPECT_EQ(path[4], topo_.tileAt({2, 2}));
}

TEST_F(NetworkTest, RouteLengthMatchesManhattan)
{
    for (TileId a : topo_.gpmTiles()) {
        for (TileId b : {topo_.cpuTile(), topo_.gpmTiles().front(),
                         topo_.gpmTiles().back()}) {
            const auto path = net_.route(a, b);
            EXPECT_EQ(static_cast<int>(path.size()) - 1,
                      topo_.hopDistance(a, b));
        }
    }
}

TEST_F(NetworkTest, UncontendedLatencyIsHopsTimesLinkLatency)
{
    const TileId src = topo_.tileAt({0, 3});
    const TileId dst = topo_.tileAt({3, 3}); // 3 hops.
    const Tick arrive = net_.computeArrival(0, src, dst, 32);
    // 3 links x (32 + 32/768) cycles, rounded up.
    EXPECT_GE(arrive, 96u);
    EXPECT_LE(arrive, 98u);
}

TEST_F(NetworkTest, LocalDeliveryUsesLocalLatency)
{
    const TileId t = topo_.gpmTiles().front();
    EXPECT_EQ(net_.computeArrival(10, t, t, 64), 11u);
}

TEST_F(NetworkTest, SendSchedulesCallbackAtArrival)
{
    const TileId src = topo_.tileAt({3, 0});
    const TileId dst = topo_.tileAt({3, 3});
    Tick delivered = 0;
    net_.send(src, dst, 32, [&] { delivered = engine_.now(); });
    engine_.run();
    EXPECT_GE(delivered, 96u);
    EXPECT_LE(delivered, 98u);
}

TEST_F(NetworkTest, ContentionSerializesLargePackets)
{
    // Two full-cycle-size packets on the same first link: the second
    // departs only after the first's serialization slot.
    const TileId src = topo_.tileAt({0, 0});
    const TileId dst = topo_.tileAt({1, 0});
    const std::size_t big = 768 * 4; // 4 cycles of link time.
    const Tick first = net_.computeArrival(0, src, dst, big);
    const Tick second = net_.computeArrival(0, src, dst, big);
    EXPECT_EQ(first, 36u);  // 4 serialize + 32 latency.
    EXPECT_EQ(second, 40u); // Waits 4 cycles behind the first.
}

TEST_F(NetworkTest, SmallPacketsShareACycle)
{
    const TileId src = topo_.tileAt({0, 0});
    const TileId dst = topo_.tileAt({1, 0});
    // 768 B/cycle: 24 32-byte packets fit into one cycle.
    Tick last = 0;
    for (int i = 0; i < 24; ++i)
        last = net_.computeArrival(0, src, dst, 32);
    EXPECT_LE(last, 34u);
}

TEST_F(NetworkTest, OppositeDirectionsDoNotContend)
{
    const TileId a = topo_.tileAt({0, 0});
    const TileId b = topo_.tileAt({1, 0});
    const std::size_t big = 768 * 8;
    const Tick ab = net_.computeArrival(0, a, b, big);
    const Tick ba = net_.computeArrival(0, b, a, big);
    EXPECT_EQ(ab, ba); // Separate directed links.
}

TEST_F(NetworkTest, TrafficAccounting)
{
    const TileId src = topo_.tileAt({0, 3});
    const TileId dst = topo_.tileAt({3, 3});
    net_.computeArrival(0, src, dst, 100);
    EXPECT_EQ(net_.stats().packets, 1u);
    EXPECT_EQ(net_.stats().totalBytes, 100u);
    EXPECT_EQ(net_.stats().totalHops, 3u);
    EXPECT_EQ(net_.stats().byteHops, 300u);
}

TEST_F(NetworkTest, McmRoutesThroughCenter)
{
    Engine engine;
    const MeshTopology mcm = MeshTopology::mcm4();
    Network net(engine, mcm, NocParams{});
    const auto gpms = mcm.gpmTiles();
    // GPM-to-GPM traffic crosses the CPU tile (2 hops).
    const auto path = net.route(gpms[0], gpms[3]);
    EXPECT_EQ(path.size(), 3u);
    EXPECT_EQ(path[1], mcm.cpuTile());
}

} // namespace
} // namespace hdpat
