/**
 * @file
 * Backpressure anatomy tests: Resource transition arithmetic (the
 * occupancy integral, peaks, time-at-capacity, windowed splits), the
 * Little's-law dual-path identity as an exact invariant across the
 * full workload suite, ranked-report determinism, and the
 * bitwise-invisibility promise (an unobserved run is unaffected by
 * the subsystem existing).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "obs/backpressure.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

// --- Resource transition arithmetic -------------------------------

TEST(BackpressureResourceTest, IntegralPeakAndSaturation)
{
    BackpressureCollector bp;
    Resource *q = bp.add("q", ResourceKind::Queue, 2);

    q->arrive(10);
    q->arrive(20); // At capacity from t=20.
    q->depart(30);
    q->arrive(30); // Same-tick churn: still at capacity.
    q->reject();
    q->depart(40);
    q->depart(50);

    const BackpressureSnapshot snap = bp.snapshot(60);
    ASSERT_EQ(snap.resources.size(), 1u);
    const ResourcePressure &p = snap.resources[0];

    EXPECT_EQ(p.arrivals, 3u);
    EXPECT_EQ(p.departures, 3u);
    EXPECT_EQ(p.rejections, 1u);
    EXPECT_EQ(p.occupancy, 0u);
    EXPECT_EQ(p.peak, 2u);
    // 1*[10,20) + 2*[20,40) + 1*[40,50) = 10 + 40 + 10.
    EXPECT_EQ(p.occIntegral, 60u);
    // occupancy >= 2 over [20,40).
    EXPECT_EQ(p.atCapacityTicks, 20u);
    EXPECT_DOUBLE_EQ(p.meanOccupancy(60), 1.0);
    EXPECT_DOUBLE_EQ(p.saturationFraction(60), 20.0 / 60.0);
    EXPECT_DOUBLE_EQ(p.meanResidency(), 20.0);
    EXPECT_TRUE(p.littleHolds(60));
    EXPECT_EQ(snap.littleViolations, 0u);
}

TEST(BackpressureResourceTest, LittleIdentityWithResidualOccupancy)
{
    BackpressureCollector bp;
    Resource *r = bp.add("cache", ResourceKind::Residency, 0);
    r->arrive(5);
    r->arrive(10);
    r->depart(20);
    // One item still resident at snapshot time.
    const BackpressureSnapshot snap = bp.snapshot(100);
    const ResourcePressure &p = snap.resources[0];
    EXPECT_EQ(p.occupancy, 1u);
    // 1*[5,10) + 2*[10,20) + 1*[20,100) = 5 + 20 + 80 = 105, and the
    // timestamp path: 20 + 1*100 - (5 + 10) = 105.
    EXPECT_EQ(p.occIntegral, 105u);
    EXPECT_TRUE(p.littleHolds(100));
    EXPECT_EQ(snap.littleViolations, 0u);
    // Unbounded resources never report saturation.
    EXPECT_DOUBLE_EQ(p.saturationFraction(100), 0.0);
}

TEST(BackpressureResourceTest, WindowedHistorySplitsTheIntegral)
{
    BackpressureCollector bp(25);
    Resource *q = bp.add("q", ResourceKind::Queue, 2);
    q->arrive(10);
    q->arrive(20);
    q->depart(30);
    q->arrive(30);
    q->depart(40);
    q->depart(50);

    const BackpressureSnapshot snap = bp.snapshot(60);
    const ResourcePressure &p = snap.resources[0];
    ASSERT_GE(p.windows.size(), 2u);
    // Window 0 covers [0,25): 1*[10,20) + 2*[20,25) = 20.
    EXPECT_EQ(p.windows[0].occIntegral, 20u);
    EXPECT_EQ(p.windows[0].peak, 2u);
    EXPECT_EQ(p.windows[0].atCapacityTicks, 5u);
    // Window 1 covers [25,50): 2*[25,40) + 1*[40,50) = 40.
    EXPECT_EQ(p.windows[1].occIntegral, 40u);
    EXPECT_EQ(p.windows[1].atCapacityTicks, 15u);
    // The split must be lossless.
    std::uint64_t windowed = 0;
    for (const ResourceWindow &w : p.windows)
        windowed += w.occIntegral;
    EXPECT_EQ(windowed, p.occIntegral);
}

TEST(BackpressureResourceTest, LinksAreAnalyticAndOracleExempt)
{
    BackpressureCollector bp;
    Resource *link = bp.add("noc.link.t0.e", ResourceKind::Link, 0);
    link->linkTraversed(4.0, 1.5);
    link->linkTraversed(4.0, 0.0);
    const BackpressureSnapshot snap = bp.snapshot(100);
    const ResourcePressure &p = snap.resources[0];
    EXPECT_EQ(p.arrivals, 2u);
    EXPECT_EQ(p.departures, 2u);
    EXPECT_DOUBLE_EQ(p.busyTicks, 8.0);
    EXPECT_DOUBLE_EQ(p.waitTicks, 1.5);
    EXPECT_DOUBLE_EQ(p.meanOccupancy(100), 0.08);
    EXPECT_DOUBLE_EQ(p.saturationFraction(100), 0.08);
    EXPECT_DOUBLE_EQ(p.meanResidency(), 4.75);
    EXPECT_TRUE(p.littleHolds(100));
    EXPECT_EQ(snap.littleViolations, 0u);
}

// --- Ranking and the report ---------------------------------------

TEST(BackpressureSnapshotTest, RankedOrderIsSaturationThenOccupancy)
{
    BackpressureSnapshot snap;
    snap.totalTicks = 100;
    const auto make = [](const char *name, std::uint64_t capacity,
                         std::uint64_t at_cap,
                         std::uint64_t integral) {
        ResourcePressure p;
        p.name = name;
        p.kind = ResourceKind::Queue;
        p.capacity = capacity;
        p.atCapacityTicks = at_cap;
        p.occIntegral = integral;
        p.arrivals = 1;
        return p;
    };
    snap.resources.push_back(make("idle", 4, 0, 10));
    snap.resources.push_back(make("hot", 4, 90, 300));
    snap.resources.push_back(make("busy-unbounded", 0, 0, 700));
    snap.resources.push_back(make("warm", 4, 50, 200));

    const std::vector<std::size_t> order = snap.ranked();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(snap.resources[order[0]].name, "hot");
    EXPECT_EQ(snap.resources[order[1]].name, "warm");
    // Saturation ties (both 0) break on mean occupancy.
    EXPECT_EQ(snap.resources[order[2]].name, "busy-unbounded");
    EXPECT_EQ(snap.resources[order[3]].name, "idle");

    const std::string report = bottleneckReport(snap);
    EXPECT_NE(report.find("4 resources"), std::string::npos);
    EXPECT_LT(report.find("hot"), report.find("warm"));
    EXPECT_LT(report.find("warm"), report.find("idle"));
    EXPECT_EQ(report.find("WARNING"), std::string::npos);

    snap.littleViolations = 2;
    EXPECT_NE(bottleneckReport(snap).find("WARNING"),
              std::string::npos);

    // top_k truncation keeps the header and notes the remainder.
    const std::string top = bottleneckReport(snap, 2);
    EXPECT_NE(top.find("hot"), std::string::npos);
    EXPECT_EQ(top.find("idle"), std::string::npos);
    EXPECT_NE(top.find("2 more"), std::string::npos);
}

TEST(BackpressureSnapshotTest, KindNamesAreStable)
{
    EXPECT_STREQ(resourceKindName(ResourceKind::Queue), "queue");
    EXPECT_STREQ(resourceKindName(ResourceKind::Pool), "pool");
    EXPECT_STREQ(resourceKindName(ResourceKind::Mshr), "mshr");
    EXPECT_STREQ(resourceKindName(ResourceKind::Residency),
                 "residency");
    EXPECT_STREQ(resourceKindName(ResourceKind::Link), "link");
}

// --- Full-system properties ---------------------------------------

RunSpec
backpressureSpec(const std::string &workload, std::int64_t window = 0)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "backpressure-5x5";
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = workload;
    spec.opsPerGpm = 400;
    spec.seed = 0x5eed;
    spec.obs = ObsOptions{};
    spec.obs.backpressure = true;
    spec.obs.backpressureWindow = window;
    spec.obs.heartbeatInterval = 0;
    return spec;
}

TEST(BackpressurePropertyTest, LittlesLawHoldsAcrossTheSuite)
{
    // Satellite 3: the dual-path identity -- the incrementally
    // accumulated occupancy integral against the timestamp-sum
    // derivation -- must hold exactly for every resource in every
    // workload. Any missed or double-counted transition anywhere in
    // the simulator breaks it.
    for (const std::string &workload : workloadAbbrs()) {
        const RunResult r = runOnce(backpressureSpec(workload));
        const BackpressureSnapshot &bp = r.backpressure;
        EXPECT_FALSE(bp.empty()) << workload;
        EXPECT_EQ(bp.littleViolations, 0u) << workload;
        EXPECT_GE(bp.totalTicks, r.totalTicks) << workload;
        for (const ResourcePressure &p : bp.resources) {
            EXPECT_TRUE(p.littleHolds(bp.totalTicks))
                << workload << ": " << p.name;
            EXPECT_LE(p.departures, p.arrivals)
                << workload << ": " << p.name;
            // A completed run drains every transient structure;
            // only cache residency legitimately retains occupancy.
            if (p.kind != ResourceKind::Residency) {
                EXPECT_EQ(p.occupancy, 0u)
                    << workload << ": " << p.name;
                EXPECT_EQ(p.arrivals, p.departures)
                    << workload << ": " << p.name;
            }
        }
    }
}

TEST(BackpressurePropertyTest, CoreResourcesSeeTraffic)
{
    const RunResult r = runOnce(backpressureSpec("SPMV"));
    const auto pressureOf =
        [&](const std::string &name) -> const ResourcePressure * {
        for (const ResourcePressure &p : r.backpressure.resources)
            if (p.name == name)
                return &p;
        return nullptr;
    };
    for (const char *name :
         {"iommu.ingress", "iommu.pw_queue", "iommu.walkers",
          "gpm.t6.gmmu.queue", "gpm.t6.gmmu.walkers",
          "gpm.t6.ll_tlb"}) {
        const ResourcePressure *p = pressureOf(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_GT(p->arrivals, 0u) << name;
    }
    // The remote-MSHR peak can never exceed its capacity (the
    // evict-then-fill ordering guarantees the same for the LL-TLB).
    for (const ResourcePressure &p : r.backpressure.resources) {
        if (p.capacity != 0 && p.kind != ResourceKind::Link) {
            EXPECT_LE(p.peak, p.capacity) << p.name;
        }
    }
}

TEST(BackpressurePropertyTest, WindowedHistoriesSumToTotals)
{
    const RunResult r =
        runOnce(backpressureSpec("SPMV", 50'000));
    const BackpressureSnapshot &bp = r.backpressure;
    EXPECT_EQ(bp.windowTicks, 50'000u);
    EXPECT_EQ(bp.littleViolations, 0u);
    bool any_windows = false;
    for (const ResourcePressure &p : bp.resources) {
        if (p.kind == ResourceKind::Link)
            continue;
        std::uint64_t integral = 0;
        std::uint64_t at_capacity = 0;
        std::uint64_t peak = 0;
        for (const ResourceWindow &w : p.windows) {
            integral += w.occIntegral;
            at_capacity += w.atCapacityTicks;
            peak = std::max(peak, w.peak);
            any_windows = true;
        }
        EXPECT_EQ(integral, p.occIntegral) << p.name;
        EXPECT_EQ(at_capacity, p.atCapacityTicks) << p.name;
        EXPECT_LE(peak, p.peak) << p.name;
    }
    EXPECT_TRUE(any_windows);
}

TEST(BackpressurePropertyTest, AccountingIsDeterministic)
{
    const RunResult a = runOnce(backpressureSpec("MT"));
    const RunResult b = runOnce(backpressureSpec("MT"));
    ASSERT_EQ(a.backpressure.resources.size(),
              b.backpressure.resources.size());
    EXPECT_EQ(a.backpressure.totalTicks, b.backpressure.totalTicks);
    for (std::size_t i = 0; i < a.backpressure.resources.size();
         ++i) {
        const ResourcePressure &pa = a.backpressure.resources[i];
        const ResourcePressure &pb = b.backpressure.resources[i];
        EXPECT_EQ(pa.name, pb.name);
        EXPECT_EQ(pa.arrivals, pb.arrivals);
        EXPECT_EQ(pa.rejections, pb.rejections);
        EXPECT_EQ(pa.occIntegral, pb.occIntegral);
        EXPECT_EQ(pa.atCapacityTicks, pb.atCapacityTicks);
        EXPECT_DOUBLE_EQ(pa.busyTicks, pb.busyTicks);
    }
    EXPECT_EQ(bottleneckReport(a.backpressure),
              bottleneckReport(b.backpressure));
}

TEST(BackpressurePropertyTest, ObservationDoesNotPerturbTheRun)
{
    // The subsystem's core promise: attaching the observer changes
    // nothing about the simulation itself. (CI additionally holds
    // whole figure harnesses to byte-identical output.)
    RunSpec plain = backpressureSpec("PR");
    plain.obs.backpressure = false;
    const RunResult off = runOnce(plain);
    const RunResult on = runOnce(backpressureSpec("PR"));
    EXPECT_TRUE(off.backpressure.empty());
    EXPECT_FALSE(on.backpressure.empty());
    EXPECT_EQ(off.totalTicks, on.totalTicks);
    EXPECT_EQ(off.opsTotal, on.opsTotal);
    EXPECT_EQ(off.l1TlbHits, on.l1TlbHits);
    EXPECT_EQ(off.llTlbHits, on.llTlbHits);
    EXPECT_EQ(off.localWalks, on.localWalks);
    EXPECT_EQ(off.remoteResolutions, on.remoteResolutions);
    EXPECT_EQ(off.iommu.walksCompleted, on.iommu.walksCompleted);
    EXPECT_EQ(off.gpmFinish, on.gpmFinish);
}

} // namespace
} // namespace hdpat
