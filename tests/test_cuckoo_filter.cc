/**
 * @file
 * Unit + property tests for the cuckoo filter: the no-false-negative
 * guarantee HDPAT's translation path depends on (§II-B), deletion
 * support, and bounded false-positive rates.
 */

#include <vector>

#include <gtest/gtest.h>

#include "mem/cuckoo_filter.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

TEST(CuckooFilterTest, InsertedItemsAreFound)
{
    CuckooFilter filter(1024);
    for (Vpn v = 100; v < 600; ++v)
        ASSERT_TRUE(filter.insert(v));
    for (Vpn v = 100; v < 600; ++v)
        EXPECT_TRUE(filter.contains(v)) << "vpn " << v;
    EXPECT_EQ(filter.size(), 500u);
}

TEST(CuckooFilterTest, EraseRemovesExactlyOneCopy)
{
    CuckooFilter filter(256);
    ASSERT_TRUE(filter.insert(42));
    ASSERT_TRUE(filter.insert(42));
    EXPECT_EQ(filter.size(), 2u);

    EXPECT_TRUE(filter.erase(42));
    EXPECT_TRUE(filter.contains(42)); // One copy remains.
    EXPECT_TRUE(filter.erase(42));
    EXPECT_EQ(filter.size(), 0u);
}

TEST(CuckooFilterTest, EraseMissingReturnsFalse)
{
    CuckooFilter filter(256);
    filter.insert(1);
    EXPECT_FALSE(filter.erase(999999));
    EXPECT_EQ(filter.size(), 1u);
}

TEST(CuckooFilterTest, FalsePositiveRateIsSmall)
{
    CuckooFilter filter(4096, 12);
    for (Vpn v = 0; v < 4000; ++v)
        ASSERT_TRUE(filter.insert(v));

    int false_positives = 0;
    const int probes = 100000;
    for (int i = 0; i < probes; ++i) {
        const Vpn v = 1000000 + static_cast<Vpn>(i);
        false_positives += filter.contains(v);
    }
    // 12-bit fingerprints, 4-slot buckets: expected rate ~2*4/2^12 < 1%.
    EXPECT_LT(static_cast<double>(false_positives) / probes, 0.01);
}

TEST(CuckooFilterTest, NoFalseNegativesUnderChurn)
{
    CuckooFilter filter(2048);
    Rng rng(55);
    std::vector<Vpn> present;
    for (int round = 0; round < 5000; ++round) {
        if (present.size() < 1500 && rng.chance(0.6)) {
            const Vpn v = rng.uniformInt(1u << 20);
            if (filter.insert(v))
                present.push_back(v);
        } else if (!present.empty()) {
            const std::size_t idx = rng.uniformInt(present.size());
            ASSERT_TRUE(filter.erase(present[idx]));
            present[idx] = present.back();
            present.pop_back();
        }
    }
    for (Vpn v : present)
        EXPECT_TRUE(filter.contains(v));
}

TEST(CuckooFilterTest, OverloadEventuallyFails)
{
    CuckooFilter filter(64);
    std::size_t inserted = 0;
    bool failed = false;
    for (Vpn v = 0; v < 100000 && !failed; ++v) {
        if (filter.insert(v))
            ++inserted;
        else
            failed = true;
    }
    EXPECT_TRUE(failed);
    EXPECT_GT(filter.stats().insertFailures, 0u);
    // Must still have achieved a healthy load before failing.
    EXPECT_GT(filter.loadFactor(), 0.7);
}

TEST(CuckooFilterTest, StatsAreTracked)
{
    CuckooFilter filter(128);
    filter.insert(5);
    filter.contains(5);
    filter.contains(6);
    filter.erase(5);
    EXPECT_EQ(filter.stats().inserts, 1u);
    EXPECT_EQ(filter.stats().lookups, 2u);
    EXPECT_GE(filter.stats().positives, 1u);
    EXPECT_EQ(filter.stats().deletes, 1u);
}

TEST(CuckooFilterTest, DeterministicAcrossInstances)
{
    CuckooFilter a(512, 12, 99), b(512, 12, 99);
    for (Vpn v = 0; v < 300; ++v) {
        EXPECT_EQ(a.insert(v), b.insert(v));
    }
    for (Vpn v = 0; v < 1000; ++v)
        EXPECT_EQ(a.contains(v), b.contains(v));
}

TEST(CuckooFilterTest, BadFingerprintWidthIsFatal)
{
    EXPECT_EXIT(CuckooFilter(64, 0), testing::ExitedWithCode(1),
                "fingerprint");
    EXPECT_EXIT(CuckooFilter(64, 17), testing::ExitedWithCode(1),
                "fingerprint");
}

/** Parameterized: the no-false-negative property holds at any size. */
class CuckooSizeTest : public testing::TestWithParam<std::size_t>
{
};

TEST_P(CuckooSizeTest, FillToEightyPercentNoFalseNegatives)
{
    const std::size_t capacity = GetParam();
    CuckooFilter filter(capacity);
    const std::size_t n = capacity * 8 / 10;
    for (Vpn v = 0; v < n; ++v)
        ASSERT_TRUE(filter.insert(v * 7919 + 13));
    for (Vpn v = 0; v < n; ++v)
        EXPECT_TRUE(filter.contains(v * 7919 + 13));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CuckooSizeTest,
                         testing::Values(64, 256, 1024, 16384, 131072));

/** Parameterized: false-positive rate shrinks with fingerprint width. */
class CuckooFpBitsTest : public testing::TestWithParam<unsigned>
{
};

TEST_P(CuckooFpBitsTest, FalsePositiveRateBounded)
{
    const unsigned bits = GetParam();
    CuckooFilter filter(4096, bits);
    for (Vpn v = 0; v < 3000; ++v)
        filter.insert(v);
    int fp = 0;
    const int probes = 50000;
    for (int i = 0; i < probes; ++i)
        fp += filter.contains(500000 + static_cast<Vpn>(i));
    // Expected bound ~ 8 / 2^bits, with generous slack.
    const double bound = 3.0 * 8.0 / static_cast<double>(1u << bits);
    EXPECT_LT(static_cast<double>(fp) / probes, bound + 0.002)
        << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(FingerprintBits, CuckooFpBitsTest,
                         testing::Values(8u, 10u, 12u, 16u));

// ---- Fuzz-found extremes -------------------------------------------------

TEST(CuckooExtremesTest, TinyCapacitiesGetTwoBuckets)
{
    // Capacities 0..3 used to size down to a single bucket, where the
    // alternate index equals the primary for every key and relocation
    // kicks are futile. The floor of two buckets keeps the two-choice
    // invariant; everything >= 4 is sized as before.
    for (std::size_t capacity : {0u, 1u, 2u, 3u}) {
        CuckooFilter filter(capacity);
        EXPECT_EQ(filter.slotCount(),
                  2 * CuckooFilter::kSlotsPerBucket)
            << "capacity=" << capacity;
        EXPECT_EQ(filter.size(), 0u);
        EXPECT_FALSE(filter.contains(0x42));
    }
    EXPECT_EQ(CuckooFilter(4).slotCount(),
              2 * CuckooFilter::kSlotsPerBucket);
    // The default build (1 << 17 items) must be sized exactly as it
    // always was: 65536 buckets of 4 slots.
    EXPECT_EQ(CuckooFilter(std::size_t{1} << 17).slotCount(),
              std::size_t{65536} * CuckooFilter::kSlotsPerBucket);
}

TEST(CuckooExtremesTest, CapacityZeroStillRoundTrips)
{
    CuckooFilter filter(0);
    EXPECT_TRUE(filter.insert(0x1234));
    EXPECT_TRUE(filter.contains(0x1234));
    EXPECT_TRUE(filter.erase(0x1234));
    EXPECT_FALSE(filter.erase(0x1234));
    EXPECT_EQ(filter.size(), 0u);
}

TEST(CuckooExtremesTest, CapacityOneOverloadFailsCleanly)
{
    // 8 slots total; flooding far past that must eventually report
    // insert failure (never crash or loop), and every item the filter
    // accepted must still be found: a failed insert unwinds its kick
    // path, so no previously accepted item is ever displaced out.
    CuckooFilter filter(1);
    bool sawFailure = false;
    std::vector<Vpn> accepted;
    for (Vpn v = 1; v <= 64; ++v) {
        if (filter.insert(v))
            accepted.push_back(v);
        else
            sawFailure = true;
    }
    EXPECT_TRUE(sawFailure);
    EXPECT_LE(filter.size(), filter.slotCount());
    EXPECT_GT(filter.stats().insertFailures, 0u);
    for (Vpn v : accepted)
        EXPECT_TRUE(filter.contains(v)) << "vpn " << v;
}

TEST(CuckooExtremesTest, FailedInsertLeavesTableUnchanged)
{
    // Regression for the erase-path corruption chain: a failed insert
    // used to drop its final homeless kick victim (a false negative
    // for an accepted item) while leaving the requested key stored, so
    // a later erase() of the "rejected" key could delete another
    // entry's shared fingerprint. The kick path must now unwind to the
    // exact pre-call table.
    CuckooFilter a(1, 12, 7);
    CuckooFilter b(1, 12, 7); // Mirror, fed only the accepted items.
    std::vector<Vpn> accepted;
    Vpn rejected = 0;
    for (Vpn v = 1; v <= 4096 && rejected == 0; ++v) {
        if (a.insert(v))
            accepted.push_back(v);
        else
            rejected = v;
    }
    ASSERT_NE(rejected, 0u) << "overload never failed an insert";

    // Identical seed, identical successful-insert sequence: the
    // mirror never saw the failed insert, so if the undo restored the
    // table exactly, the two filters answer identically on every key.
    for (Vpn v : accepted)
        ASSERT_TRUE(b.insert(v));
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.size(), accepted.size());
    for (Vpn v = 1; v <= 4096; ++v)
        ASSERT_EQ(a.contains(v), b.contains(v)) << "vpn " << v;

    // Erasing the rejected key must behave exactly as on the mirror:
    // in particular it must not delete another entry's shared
    // fingerprint that the old code left behind for it.
    EXPECT_EQ(a.erase(rejected), b.erase(rejected));
    for (Vpn v : accepted)
        EXPECT_EQ(a.contains(v), b.contains(v)) << "post-erase " << v;
}

TEST(CuckooExtremesTest, OneBitFingerprintsDegradeToOccupancyCheck)
{
    // At 1 bit the fp==0 -> 1 remap makes every stored fingerprint 1:
    // the filter degenerates into "is either candidate bucket
    // non-empty?". Still no false negatives, and erase of a never-
    // inserted key can succeed only by design (shared fingerprints),
    // never crash.
    CuckooFilter filter(256, 1);
    for (Vpn v = 0; v < 100; ++v)
        ASSERT_TRUE(filter.insert(v));
    for (Vpn v = 0; v < 100; ++v)
        EXPECT_TRUE(filter.contains(v));
    // With 100 of 64+ buckets occupied, false positives are rampant --
    // that is the documented 1-bit bound, not a bug. Measure that the
    // rate is sane rather than asserting an exact value.
    int positives = 0;
    for (Vpn v = 1000; v < 2000; ++v)
        positives += filter.contains(v);
    EXPECT_GT(positives, 0);
}

TEST(CuckooExtremesTest, SixteenBitFingerprintsMaskCorrectly)
{
    // fpBits_=16 exercises the full uint16 range: inserts must
    // round-trip and the empty-slot sentinel (0) must never collide
    // with a stored fingerprint.
    CuckooFilter filter(4096, 16);
    for (Vpn v = 0; v < 3000; ++v)
        ASSERT_TRUE(filter.insert(v));
    for (Vpn v = 0; v < 3000; ++v)
        ASSERT_TRUE(filter.contains(v));
    for (Vpn v = 0; v < 3000; ++v)
        ASSERT_TRUE(filter.erase(v));
    EXPECT_EQ(filter.size(), 0u);
    for (Vpn v = 0; v < 3000; ++v)
        EXPECT_FALSE(filter.contains(v))
            << "residue after erase at vpn " << v;
}

TEST(CuckooExtremesTest, FingerprintOneBiasIsBoundedAndDocumented)
{
    // The fp==0 -> 1 remap doubles fingerprint 1's share of the key
    // space (2 of 2^bits hash values). Verify the doubled-but-bounded
    // claim empirically at 8 bits: a filter holding items should see a
    // false-positive rate under ~3x the nominal 8/2^bits bound even
    // with the bias folded in (the biased fingerprint is only one of
    // 255).
    CuckooFilter filter(4096, 8);
    for (Vpn v = 0; v < 3000; ++v)
        filter.insert(v);
    int fp = 0;
    const int probes = 50000;
    for (int i = 0; i < probes; ++i)
        fp += filter.contains(1000000 + static_cast<Vpn>(i));
    const double rate = static_cast<double>(fp) / probes;
    const double nominal = 8.0 / 256.0;
    EXPECT_LT(rate, 3.0 * nominal) << "rate=" << rate;
}

} // namespace
} // namespace hdpat
