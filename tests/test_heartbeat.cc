/**
 * @file
 * Tests for the run heartbeat: periodic firing while work remains,
 * self-termination when the queue drains, and parameter validation.
 */

#include <gtest/gtest.h>

#include "obs/heartbeat.hh"
#include "sim/engine.hh"

namespace hdpat
{
namespace
{

TEST(HeartbeatTest, BeatsWhileEventsArePending)
{
    Engine engine;
    // A workload that stays busy until tick 1000.
    for (Tick t = 50; t <= 1000; t += 50)
        engine.scheduleAt(t, [] {});

    Heartbeat hb(engine, 100);
    hb.start();
    EXPECT_TRUE(hb.running());
    engine.run();

    // Beats at 100, 200, ..., 900 see pending work; the beat at 1000
    // runs after the tick-1000 workload event and finds an empty
    // queue, so it stops without counting.
    EXPECT_EQ(hb.beats(), 9u);
    EXPECT_FALSE(hb.running());
}

TEST(HeartbeatTest, NeverKeepsTheRunAliveAlone)
{
    Engine engine;
    engine.scheduleAt(10, [] {});

    Heartbeat hb(engine, 5);
    hb.start();
    engine.run();

    // The run ends shortly after the real workload drains instead of
    // re-arming forever.
    EXPECT_FALSE(hb.running());
    EXPECT_LE(engine.now(), 20u);
    EXPECT_EQ(engine.pendingEvents(), 0u);
}

TEST(HeartbeatTest, StopIsHonoured)
{
    Engine engine;
    for (Tick t = 10; t <= 100; t += 10)
        engine.scheduleAt(t, [] {});

    Heartbeat hb(engine, 25);
    hb.start();
    hb.stop();
    engine.run();
    EXPECT_EQ(hb.beats(), 0u);
}

TEST(HeartbeatTest, StartIsIdempotentWhileRunning)
{
    Engine engine;
    for (Tick t = 10; t <= 100; t += 10)
        engine.scheduleAt(t, [] {});

    Heartbeat hb(engine, 30);
    hb.start();
    hb.start(); // Must not double-schedule.
    engine.run();
    // Beats at 30, 60, 90 only -- one chain, not two.
    EXPECT_EQ(hb.beats(), 3u);
}

TEST(HeartbeatTest, ZeroIntervalPanics)
{
    Engine engine;
    EXPECT_DEATH(Heartbeat(engine, 0), "interval");
}

} // namespace
} // namespace hdpat
