/**
 * @file
 * Property-based tests on cross-module invariants, using TEST_P
 * sweeps: routing geometry, cluster-map totality, page-table
 * partitioning, and engine causality under random event storms.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "hdpat/cluster_map.hh"
#include "mem/page_table.hh"
#include "noc/network.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

// ---------------------------------------------------------------------
// Routing properties across mesh shapes
// ---------------------------------------------------------------------

class MeshPropertyTest
    : public testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshPropertyTest, RoutesAreMinimalAndConnected)
{
    const auto [w, h] = GetParam();
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(w, h);
    Network net(engine, topo, NocParams{});
    Rng rng(2024);

    for (int trial = 0; trial < 300; ++trial) {
        const TileId a = static_cast<TileId>(
            rng.uniformInt(static_cast<std::uint64_t>(topo.numTiles())));
        const TileId b = static_cast<TileId>(
            rng.uniformInt(static_cast<std::uint64_t>(topo.numTiles())));
        const auto path = net.route(a, b);
        // Minimal length.
        ASSERT_EQ(static_cast<int>(path.size()) - 1,
                  topo.hopDistance(a, b));
        // Each step is one mesh hop.
        for (std::size_t i = 1; i < path.size(); ++i) {
            EXPECT_EQ(manhattan(topo.coordOf(path[i - 1]),
                                topo.coordOf(path[i])),
                      1);
        }
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
    }
}

TEST_P(MeshPropertyTest, ArrivalNeverBeforeMinimumLatency)
{
    const auto [w, h] = GetParam();
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(w, h);
    NocParams params;
    Network net(engine, topo, params);
    Rng rng(7);

    for (int trial = 0; trial < 300; ++trial) {
        const TileId a = static_cast<TileId>(rng.uniformInt(
            static_cast<std::uint64_t>(topo.numTiles())));
        const TileId b = static_cast<TileId>(rng.uniformInt(
            static_cast<std::uint64_t>(topo.numTiles())));
        if (a == b)
            continue;
        const Tick now = rng.uniformInt(10000);
        const Tick arrive = net.computeArrival(now, a, b, 64);
        const Tick min_latency =
            static_cast<Tick>(topo.hopDistance(a, b)) *
            params.linkLatency;
        EXPECT_GE(arrive, now + min_latency);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshPropertyTest,
    testing::Values(std::pair<int, int>{3, 3}, std::pair<int, int>{5, 5},
                    std::pair<int, int>{7, 7}, std::pair<int, int>{12, 7},
                    std::pair<int, int>{9, 9}));

// ---------------------------------------------------------------------
// Cluster-map totality across mesh shapes and layer counts
// ---------------------------------------------------------------------

struct ClusterParam
{
    int width;
    int height;
    int layers;
};

class ClusterPropertyTest : public testing::TestWithParam<ClusterParam>
{
};

TEST_P(ClusterPropertyTest, EveryVpnHasOneValidTilePerLayer)
{
    const ClusterParam p = GetParam();
    const MeshTopology topo = MeshTopology::wafer(p.width, p.height);
    const ConcentricLayers layers(topo, p.layers);
    const ClusterMap map(layers, 4, true);

    for (Vpn vpn = 0; vpn < 5000; ++vpn) {
        std::set<TileId> assigned;
        for (int layer = 0; layer < map.numLayers(); ++layer) {
            const TileId aux = map.auxTileFor(vpn, layer);
            ASSERT_TRUE(topo.isGpm(aux));
            ASSERT_EQ(layers.layerOf(aux), layer);
            EXPECT_TRUE(assigned.insert(aux).second)
                << "same tile used for two layers";
        }
    }
}

TEST_P(ClusterPropertyTest, LayerLoadIsNearUniform)
{
    const ClusterParam p = GetParam();
    const MeshTopology topo = MeshTopology::wafer(p.width, p.height);
    const ConcentricLayers layers(topo, p.layers);
    const ClusterMap map(layers, 4, true);

    for (int layer = 0; layer < map.numLayers(); ++layer) {
        std::map<TileId, int> counts;
        const int n = 20000;
        for (Vpn vpn = 0; vpn < static_cast<Vpn>(n); ++vpn)
            ++counts[map.auxTileFor(vpn, layer)];
        const std::size_t tiles = layers.layerTiles(layer).size();
        EXPECT_EQ(counts.size(), tiles);
        const double expected = static_cast<double>(n) / tiles;
        for (const auto &[tile, count] : counts) {
            EXPECT_GT(count, expected * 0.5);
            EXPECT_LT(count, expected * 2.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterPropertyTest,
    testing::Values(ClusterParam{7, 7, 2}, ClusterParam{7, 7, 3},
                    ClusterParam{12, 7, 2}, ClusterParam{9, 9, 3},
                    ClusterParam{5, 5, 1}));

// ---------------------------------------------------------------------
// Page-table partitioning across GPM counts
// ---------------------------------------------------------------------

class PartitionPropertyTest : public testing::TestWithParam<int>
{
};

TEST_P(PartitionPropertyTest, BlocksAreContiguousAndBalanced)
{
    const int num_gpms = GetParam();
    GlobalPageTable pt(12);
    std::vector<TileId> homes;
    for (int i = 0; i < num_gpms; ++i)
        homes.push_back(i + 1);

    const std::size_t pages = 997; // Prime: exercises remainders.
    const BufferHandle buf = pt.allocate(pages * pt.pageBytes(), homes);

    // Homes appear in contiguous runs, in GPM order.
    const Vpn base = pt.vpnOf(buf.baseVa);
    TileId prev = pt.homeOf(base);
    int transitions = 0;
    for (std::size_t i = 1; i < pages; ++i) {
        const TileId home = pt.homeOf(base + i);
        if (home != prev) {
            EXPECT_GT(home, prev) << "homes out of order";
            ++transitions;
            prev = home;
        }
    }
    EXPECT_EQ(transitions, num_gpms - 1);

    // Balance within one page.
    std::size_t min_pages = pages, max_pages = 0;
    for (TileId h : homes) {
        min_pages = std::min(min_pages, pt.pagesHomedOn(h));
        max_pages = std::max(max_pages, pt.pagesHomedOn(h));
    }
    EXPECT_LE(max_pages - min_pages, 1u);
}

INSTANTIATE_TEST_SUITE_P(GpmCounts, PartitionPropertyTest,
                         testing::Values(1, 4, 24, 48, 83));

// ---------------------------------------------------------------------
// Engine causality under random event storms
// ---------------------------------------------------------------------

class EngineStormTest : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineStormTest, EventsObserveMonotonicTime)
{
    Engine engine;
    Rng rng(GetParam());
    Tick last = 0;
    int executed = 0;

    std::function<void(int)> spawn = [&](int depth) {
        EXPECT_GE(engine.now(), last);
        last = engine.now();
        ++executed;
        if (depth <= 0)
            return;
        const int children = 1 + static_cast<int>(rng.uniformInt(2));
        for (int c = 0; c < children; ++c) {
            engine.scheduleIn(rng.uniformInt(100),
                              [&spawn, depth] { spawn(depth - 1); });
        }
    };

    for (int root = 0; root < 20; ++root) {
        engine.scheduleAt(rng.uniformInt(50),
                          [&spawn] { spawn(6); });
    }
    engine.run();
    EXPECT_GT(executed, 20);
    EXPECT_EQ(engine.pendingEvents(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStormTest,
                         testing::Values(1u, 42u, 0xdeadu, 77777u));

} // namespace
} // namespace hdpat
