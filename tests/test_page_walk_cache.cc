/**
 * @file
 * Unit tests for the page-walk cache extension.
 */

#include <gtest/gtest.h>

#include "mem/page_walk_cache.hh"

namespace hdpat
{
namespace
{

TEST(PageWalkCacheTest, DisabledPaysFullLatency)
{
    PageWalkCache pwc(0, 5, 100);
    EXPECT_FALSE(pwc.enabled());
    EXPECT_EQ(pwc.walkLatency(0x12345), 500u);
    pwc.fill(0x12345); // No-op.
    EXPECT_EQ(pwc.walkLatency(0x12345), 500u);
}

TEST(PageWalkCacheTest, ColdWalkPaysFullLatency)
{
    PageWalkCache pwc(64, 5, 100);
    ASSERT_TRUE(pwc.enabled());
    EXPECT_EQ(pwc.walkLatency(0x12345), 500u);
}

TEST(PageWalkCacheTest, RepeatWalkSkipsAllButLeaf)
{
    PageWalkCache pwc(64, 5, 100);
    pwc.fill(0x12345);
    // Levels 1..4 cached; only the leaf level walks.
    EXPECT_EQ(pwc.walkLatency(0x12345), 100u);
}

TEST(PageWalkCacheTest, NeighbourSharesUpperLevels)
{
    PageWalkCache pwc(64, 5, 100, 9);
    pwc.fill(0x12345);
    // Same 512-page leaf region: all upper levels shared.
    EXPECT_EQ(pwc.walkLatency(0x12346), 100u);
    // Same level-3 region but different leaf table (bit 9 flipped):
    // one extra level must walk.
    EXPECT_EQ(pwc.walkLatency(0x12345 ^ (1u << 9)), 200u);
}

TEST(PageWalkCacheTest, DistantVpnMissesEverything)
{
    PageWalkCache pwc(64, 5, 100, 9);
    pwc.fill(0x12345);
    EXPECT_EQ(pwc.walkLatency(Vpn(1) << 40), 500u);
}

TEST(PageWalkCacheTest, StatsTrackSkippedLevels)
{
    PageWalkCache pwc(64, 5, 100);
    pwc.walkLatency(7);
    pwc.fill(7);
    pwc.walkLatency(7);
    EXPECT_EQ(pwc.stats().walksServed, 2u);
    EXPECT_EQ(pwc.stats().levelsSkipped, 4u);
}

TEST(PageWalkCacheTest, CapacityEvictionRestoresFullWalks)
{
    PageWalkCache pwc(8, 5, 100, 9);
    pwc.fill(1);
    // Flood the level-4 cache with distant leaf regions.
    for (Vpn v = 0; v < 64; ++v)
        pwc.fill((v + 2) << 20);
    // VPN 1's deepest levels were evicted; some latency returns.
    EXPECT_GT(pwc.walkLatency(1), 100u);
}

TEST(PageWalkCacheTest, TooFewLevelsIsFatal)
{
    EXPECT_EXIT(PageWalkCache(64, 1, 100), testing::ExitedWithCode(1),
                "levels");
}

} // namespace
} // namespace hdpat
