/**
 * @file
 * Latency anatomy tests: the stage-attribution function, timeline
 * reconstruction through a synthetic tracer, the conservation
 * invariant (sum of stage ticks == end-to-end latency) across the
 * full workload suite, reservoir-vs-histogram quantile agreement, and
 * determinism of the whole pipeline across repeat and parallel runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/parallel.hh"
#include "driver/runner.hh"
#include "obs/latency.hh"
#include "obs/trace.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

TraceRecord
rec(std::uint64_t span, Tick tick, SpanEvent event, TileId at,
    TileId owner, std::uint64_t arg = 0)
{
    TraceRecord r;
    r.span = span;
    r.tick = tick;
    r.vpn = 42;
    r.arg = arg;
    r.owner = owner;
    r.at = at;
    r.event = event;
    return r;
}

// --- Stage attribution --------------------------------------------

TEST(LatencyStageTest, AttributionIsAPureFunctionOfTheRecord)
{
    // Issue opens the TLB probe.
    EXPECT_EQ(latencyStageAfter(rec(1, 0, SpanEvent::Issue, 3, 3)),
              LatencyStage::TlbProbe);
    // A hit ends the lookup; what follows is fill bookkeeping.
    EXPECT_EQ(latencyStageAfter(rec(1, 4, SpanEvent::L1TlbHit, 3, 3)),
              LatencyStage::Fill);
    // IOMMU ingress: arrive -> pre-queue, admit -> walker queue.
    EXPECT_EQ(
        latencyStageAfter(rec(1, 9, SpanEvent::IommuArrive, 24, 3)),
        LatencyStage::PreQueue);
    EXPECT_EQ(
        latencyStageAfter(rec(1, 15, SpanEvent::IommuAdmit, 24, 3)),
        LatencyStage::QueueWait);
    EXPECT_EQ(
        latencyStageAfter(rec(1, 20, SpanEvent::IommuWalkStart, 24, 3)),
        LatencyStage::PageWalk);
    // NetSend direction depends on whether the reply is headed back
    // to the owner (arg == owner) or the request is still outbound.
    EXPECT_EQ(
        latencyStageAfter(rec(1, 5, SpanEvent::NetSend, 24, 3, 3)),
        LatencyStage::NocReply);
    EXPECT_EQ(
        latencyStageAfter(rec(1, 5, SpanEvent::NetSend, 3, 3, 24)),
        LatencyStage::NocRequest);
    // NetArrive at the owner is the fill; elsewhere it's a peer
    // lookup in progress.
    EXPECT_EQ(
        latencyStageAfter(rec(1, 8, SpanEvent::NetArrive, 3, 3)),
        LatencyStage::Fill);
    EXPECT_EQ(
        latencyStageAfter(rec(1, 8, SpanEvent::NetArrive, 24, 3)),
        LatencyStage::PeerLookup);
    EXPECT_EQ(
        latencyStageAfter(rec(1, 30, SpanEvent::DataAccess, 3, 3)),
        LatencyStage::DataRetire);
}

TEST(LatencyStageTest, EveryStageHasAStableName)
{
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        const char *name =
            latencyStageName(static_cast<LatencyStage>(s));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

// --- Synthetic collection -----------------------------------------

TEST(LatencyCollectorTest, ReconstructsTimelineFromSink)
{
    // A local-hit span: issue @100, L1 hit @104, data access @110,
    // complete @130. Stage ticks: TlbProbe 4, Fill 6, DataRetire 20.
    Tracer t(64, 1);
    LatencyCollector collector(1, 4);
    t.setSink(&collector);

    ASSERT_TRUE(t.begin(5, 42, 100));
    t.record(5, 42, 104, SpanEvent::L1TlbHit, 5);
    t.record(5, 42, 110, SpanEvent::DataAccess, 5);
    t.end(5, 42, 130);

    EXPECT_EQ(collector.spansCompleted(), 1u);
    EXPECT_EQ(collector.conservationViolations(), 0u);

    const LatencySnapshot snap = collector.snapshot();
    EXPECT_EQ(snap.spans, 1u);
    EXPECT_EQ(snap.endToEnd.count(), 1u);
    EXPECT_DOUBLE_EQ(snap.endToEnd.sum(), 30.0);

    const auto stage = [&](LatencyStage s) -> const LatencyStageStats & {
        return snap.stages[static_cast<std::size_t>(s)];
    };
    EXPECT_DOUBLE_EQ(stage(LatencyStage::TlbProbe).stat.sum(), 4.0);
    EXPECT_DOUBLE_EQ(stage(LatencyStage::Fill).stat.sum(), 6.0);
    EXPECT_DOUBLE_EQ(stage(LatencyStage::DataRetire).stat.sum(), 20.0);
    EXPECT_EQ(stage(LatencyStage::PageWalk).stat.count(), 0u);

    ASSERT_EQ(snap.slowest.size(), 1u);
    const LatencySpanTimeline &tl = snap.slowest[0];
    EXPECT_EQ(tl.owner, 5);
    EXPECT_EQ(tl.vpn, 42u);
    EXPECT_EQ(tl.issueTick, 100u);
    EXPECT_EQ(tl.total, 30u);
    ASSERT_EQ(tl.steps.size(), 4u);
    EXPECT_EQ(tl.steps[0].offset, 0u);
    EXPECT_EQ(tl.steps[0].ticks, 4u);
    EXPECT_EQ(tl.steps[1].offset, 4u);
    EXPECT_EQ(tl.steps[2].offset, 10u);
    EXPECT_EQ(tl.steps[3].offset, 30u);
    EXPECT_EQ(tl.steps[3].ticks, 0u);

    ASSERT_EQ(snap.reservoir.size(), 1u);
    EXPECT_EQ(snap.reservoir[0], 30u);
    EXPECT_EQ(snap.exactQuantile(0.5), 30u);
    EXPECT_EQ(snap.exactQuantile(0.999), 30u);

    // The report carries the span's identity and stage totals.
    const std::string report = criticalPathReport(snap);
    EXPECT_NE(report.find("critical path"), std::string::npos);
    EXPECT_NE(report.find("vpn 0x2a"), std::string::npos);
    EXPECT_NE(report.find("total 30 ticks"), std::string::npos);
}

TEST(LatencyCollectorTest, KeepsSlowestKInOrder)
{
    Tracer t(64, 1);
    LatencyCollector collector(1, 3);
    t.setSink(&collector);
    // 8 spans with end-to-end latency 10, 20, ..., 80.
    for (Tick i = 1; i <= 8; ++i) {
        ASSERT_TRUE(t.begin(0, i, 1000 * i));
        t.end(0, i, 1000 * i + 10 * i);
    }
    const LatencySnapshot snap = collector.snapshot();
    EXPECT_EQ(snap.spans, 8u);
    ASSERT_EQ(snap.slowest.size(), 3u);
    EXPECT_EQ(snap.slowest[0].total, 80u);
    EXPECT_EQ(snap.slowest[1].total, 70u);
    EXPECT_EQ(snap.slowest[2].total, 60u);
    // Reservoir is sorted ascending and exact quantiles are order
    // statistics: p50 of 8 samples is the 4th (rank ceil(.5*8)-1).
    ASSERT_EQ(snap.reservoir.size(), 8u);
    EXPECT_EQ(snap.exactQuantile(0.5), 40u);
    EXPECT_EQ(snap.exactQuantile(0.95), 80u);
}

TEST(LatencySnapshotTest, MergeSumsAndReranks)
{
    Tracer t1(64, 1), t2(64, 1);
    LatencyCollector c1(1, 2), c2(1, 2);
    t1.setSink(&c1);
    t2.setSink(&c2);
    for (Tick i = 1; i <= 4; ++i) {
        ASSERT_TRUE(t1.begin(0, i, 0));
        t1.end(0, i, 10 * i); // 10, 20, 30, 40.
        ASSERT_TRUE(t2.begin(1, i, 0));
        t2.end(1, i, 15 * i); // 15, 30, 45, 60.
    }
    LatencySnapshot merged = c1.snapshot();
    merged.merge(c2.snapshot(), 2);
    EXPECT_EQ(merged.spans, 8u);
    EXPECT_EQ(merged.endToEnd.count(), 8u);
    ASSERT_EQ(merged.slowest.size(), 2u);
    EXPECT_EQ(merged.slowest[0].total, 60u);
    EXPECT_EQ(merged.slowest[1].total, 45u);
    ASSERT_EQ(merged.perTile.size(), 2u);
    EXPECT_EQ(merged.reservoir.size(), 8u);
    EXPECT_TRUE(std::is_sorted(merged.reservoir.begin(),
                               merged.reservoir.end()));
}

// --- Full-system properties ---------------------------------------

RunSpec
latencySpec(const std::string &workload, std::uint64_t sample_n)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "latency-5x5";
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = workload;
    spec.opsPerGpm = 400;
    spec.seed = 0x5eed;
    spec.obs = ObsOptions{};
    spec.obs.latency = true;
    spec.obs.latencySampleN = sample_n;
    spec.obs.heartbeatInterval = 0;
    return spec;
}

TEST(LatencyPropertyTest, ConservationHoldsAcrossTheSuite)
{
    // Satellite 3: for every sampled translation in every workload,
    // the stage durations must sum to the end-to-end latency.
    for (const std::string &workload : workloadAbbrs()) {
        const RunResult r = runOnce(latencySpec(workload, 1));
        const LatencySnapshot &lat = r.latency;
        EXPECT_GT(lat.spans, 0u) << workload;
        EXPECT_EQ(lat.conservationViolations, 0u) << workload;
        EXPECT_EQ(lat.endToEnd.count(), lat.spans) << workload;
        double stage_sum = 0.0;
        for (const LatencyStageStats &s : lat.stages)
            stage_sum += s.stat.sum();
        EXPECT_DOUBLE_EQ(stage_sum, lat.endToEnd.sum()) << workload;
    }
}

TEST(LatencyPropertyTest, ReservoirAndHistogramQuantilesAgree)
{
    const auto bucketIndexOf = [](std::uint64_t v) -> int {
        if (v == 0)
            return 0;
        int idx = 0;
        while (v) {
            v >>= 1;
            ++idx;
        }
        return idx;
    };
    const RunResult r = runOnce(latencySpec("SPMV", 1));
    const LatencySnapshot &lat = r.latency;
    ASSERT_GT(lat.spans, 0u);
    ASSERT_EQ(lat.reservoirDropped, 0u);
    for (double q : {0.50, 0.95, 0.99, 0.999}) {
        const std::uint64_t exact = lat.exactQuantile(q);
        const std::uint64_t bucketed = lat.endToEndHist.quantile(q);
        EXPECT_LE(std::abs(bucketIndexOf(exact) -
                           bucketIndexOf(bucketed)),
                  1)
            << "q=" << q << " exact=" << exact
            << " bucketed=" << bucketed;
    }
}

TEST(LatencyPropertyTest, AttributionIsDeterministic)
{
    // Same spec twice (sampled, to exercise the hash path): the
    // snapshots must agree exactly.
    const RunResult a = runOnce(latencySpec("MT", 4));
    const RunResult b = runOnce(latencySpec("MT", 4));
    EXPECT_EQ(a.latency.spans, b.latency.spans);
    EXPECT_EQ(a.latency.reservoir, b.latency.reservoir);
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        EXPECT_EQ(a.latency.stages[s].stat.count(),
                  b.latency.stages[s].stat.count());
        EXPECT_DOUBLE_EQ(a.latency.stages[s].stat.sum(),
                         b.latency.stages[s].stat.sum());
    }
    ASSERT_EQ(a.latency.slowest.size(), b.latency.slowest.size());
    for (std::size_t i = 0; i < a.latency.slowest.size(); ++i) {
        EXPECT_EQ(a.latency.slowest[i].span,
                  b.latency.slowest[i].span);
        EXPECT_EQ(a.latency.slowest[i].total,
                  b.latency.slowest[i].total);
    }
    EXPECT_EQ(criticalPathReport(a.latency),
              criticalPathReport(b.latency));
}

TEST(LatencyPropertyTest, ParallelBatchesMatchSerial)
{
    const std::vector<RunSpec> specs = {latencySpec("SPMV", 1),
                                        latencySpec("PR", 1),
                                        latencySpec("MT", 4)};
    const std::vector<RunResult> serial = runMany(specs, 1);
    const std::vector<RunResult> threaded = runMany(specs, 3);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].latency.spans, threaded[i].latency.spans);
        EXPECT_EQ(serial[i].latency.reservoir,
                  threaded[i].latency.reservoir);
        EXPECT_EQ(criticalPathReport(serial[i].latency),
                  criticalPathReport(threaded[i].latency));
    }
}

} // namespace
} // namespace hdpat
