/**
 * @file
 * Paper-shape regression tests: small, fast runs asserting the
 * qualitative results EXPERIMENTS.md reports, so recalibration work
 * cannot silently break a reproduced figure's direction.
 */

#include <gtest/gtest.h>

#include "driver/runner.hh"

namespace hdpat
{
namespace
{

SystemConfig
mesh5(const char *name = "shape-5x5")
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    cfg.name = name;
    return cfg;
}

RunResult
runShape(const SystemConfig &cfg, const TranslationPolicy &pol,
         const std::string &wl, std::size_t ops = 1500)
{
    RunSpec spec;
    spec.config = cfg;
    spec.policy = pol;
    spec.workload = wl;
    spec.opsPerGpm = ops;
    return runOnce(spec);
}

/** Fig 2 shape: both idealizations help, and land close together. */
TEST(PaperShapeTest, IdealIommuHeadroom)
{
    const RunResult base =
        runShape(mesh5(), TranslationPolicy::baseline(), "SPMV");

    SystemConfig fast = mesh5("ideal-lat");
    fast.iommuWalkLatency = 1;
    const RunResult low_lat =
        runShape(fast, TranslationPolicy::baseline(), "SPMV");

    SystemConfig wide = mesh5("ideal-walkers");
    wide.iommuWalkers = 4096;
    wide.iommuPwQueueCapacity = 8192;
    const RunResult many =
        runShape(wide, TranslationPolicy::baseline(), "SPMV");

    EXPECT_GT(speedupOver(base, low_lat), 2.0);
    EXPECT_GT(speedupOver(base, many), 2.0);
}

/** Fig 4 shape: the wafer's IOMMU backlog dwarfs the MCM's. */
TEST(PaperShapeTest, WaferBacklogDwarfsMcm)
{
    const RunResult mcm = runShape(
        SystemConfig::mcm4(), TranslationPolicy::baseline(), "SPMV");
    const RunResult wafer = runShape(
        SystemConfig::mi100(), TranslationPolicy::baseline(), "SPMV");
    EXPECT_GT(wafer.iommu.maxBufferDepth,
              4 * mcm.iommu.maxBufferDepth);
}

/** Fig 15 shape: the full combination beats cluster+rotation alone. */
TEST(PaperShapeTest, FullHdpatBeatsClusterRotationAlone)
{
    const RunResult base =
        runShape(mesh5(), TranslationPolicy::baseline(), "PR");
    const RunResult cluster =
        runShape(mesh5(), TranslationPolicy::clusterRotation(), "PR");
    const RunResult full =
        runShape(mesh5(), TranslationPolicy::hdpat(), "PR");
    EXPECT_GT(speedupOver(base, full), speedupOver(base, cluster));
}

/** Fig 18 shape: prefetch degree 4 beats degree 1 on FIR. */
TEST(PaperShapeTest, PrefetchDegreeFourBeatsOneOnFir)
{
    const RunResult base =
        runShape(mesh5(), TranslationPolicy::baseline(), "FIR");

    TranslationPolicy deg1 = TranslationPolicy::hdpat();
    deg1.prefetch = false;
    deg1.prefetchDegree = 1;
    TranslationPolicy deg4 = TranslationPolicy::hdpat();

    const RunResult r1 = runShape(mesh5(), deg1, "FIR");
    const RunResult r4 = runShape(mesh5(), deg4, "FIR");
    EXPECT_GT(speedupOver(base, r4), speedupOver(base, r1));
}

/** Fig 19 shape: the redirection table beats the equal-area TLB. */
TEST(PaperShapeTest, RedirectionTableBeatsEqualAreaTlb)
{
    const SystemConfig cfg = SystemConfig::mi100();
    const RunResult base =
        runShape(cfg, TranslationPolicy::baseline(), "SPMV", 2500);
    const RunResult rt =
        runShape(cfg, TranslationPolicy::hdpat(), "SPMV", 2500);
    const RunResult tlb = runShape(
        cfg, TranslationPolicy::hdpatWithIommuTlb(), "SPMV", 2500);
    EXPECT_GT(speedupOver(base, rt), speedupOver(base, tlb));
}

/** Fig 20 shape: larger pages cut the baseline's IOMMU traffic. */
TEST(PaperShapeTest, LargerPagesReduceBaselineWalks)
{
    SystemConfig small_pages = mesh5("4k");
    SystemConfig large_pages = mesh5("64k");
    large_pages.pageShift = 16;
    const RunResult small =
        runShape(small_pages, TranslationPolicy::baseline(), "SPMV");
    const RunResult large =
        runShape(large_pages, TranslationPolicy::baseline(), "SPMV");
    EXPECT_LT(large.iommu.walksCompleted, small.iommu.walksCompleted);
    EXPECT_LT(large.totalTicks, small.totalTicks);
}

/** Fig 22 shape: HDPAT still wins on a larger wafer. */
TEST(PaperShapeTest, HdpatWinsOnLargerWafer)
{
    const SystemConfig cfg = SystemConfig::mi100Wafer7x12();
    const RunResult base =
        runShape(cfg, TranslationPolicy::baseline(), "KM", 800);
    const RunResult hdpat =
        runShape(cfg, TranslationPolicy::hdpat(), "KM", 800);
    EXPECT_GT(speedupOver(base, hdpat), 1.1);
}

/** Fig 17 shape: HDPAT shortens the remote round trip. */
TEST(PaperShapeTest, HdpatCutsRemoteRtt)
{
    const RunResult base =
        runShape(mesh5(), TranslationPolicy::baseline(), "KM");
    const RunResult hdpat =
        runShape(mesh5(), TranslationPolicy::hdpat(), "KM");
    EXPECT_LT(hdpat.remoteRtt.mean(), base.remoteRtt.mean());
}

/** O1 shape: HDPAT cuts the IOMMU's served-walk count roughly in half
 *  or better on reuse-heavy work. */
TEST(PaperShapeTest, HdpatOffloadsWalks)
{
    const RunResult base =
        runShape(mesh5(), TranslationPolicy::baseline(), "PR");
    const RunResult hdpat =
        runShape(mesh5(), TranslationPolicy::hdpat(), "PR");
    EXPECT_LT(2 * hdpat.iommu.walksCompleted,
              base.iommu.walksCompleted + 1);
}

/** PWC extension shape: walk caches compose with HDPAT. */
TEST(PaperShapeTest, PageWalkCacheComposesWithHdpat)
{
    SystemConfig pwc_cfg = mesh5("pwc");
    pwc_cfg.iommuPwcEntriesPerLevel = 256;

    const RunResult base =
        runShape(mesh5(), TranslationPolicy::baseline(), "SPMV");
    const RunResult hdpat =
        runShape(mesh5(), TranslationPolicy::hdpat(), "SPMV");
    const RunResult both =
        runShape(pwc_cfg, TranslationPolicy::hdpat(), "SPMV");
    EXPECT_GT(speedupOver(base, both), speedupOver(base, hdpat));
}

} // namespace
} // namespace hdpat
