/**
 * @file
 * Domain-parallel simulation tests.
 *
 * Three layers, mirroring the determinism argument:
 *  - Queue shadow tests: the explicit-tag schedule/pop overloads
 *    reproduce the serial pop order for adversarial same-tick boundary
 *    traffic, on both ordering structures (calendar and heap).
 *  - External observer mode: the barrier-driven watchdog/heartbeat
 *    never false-trip on a run that is progressing globally (even if
 *    one domain is idle at its window horizon), and the watchdog still
 *    trips on a genuine livelock.
 *  - End-to-end identity: K-domain runs are bitwise identical to the
 *    serial run (RunResult counters, retire-census hash, and the whole
 *    metrics JSON) for K in {2, 4}.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "driver/runner.hh"
#include "obs/heartbeat.hh"
#include "obs/watchdog.hh"
#include "sim/engine.hh"
#include "sim/event_queue.hh"

namespace hdpat
{
namespace
{

/** Provisional-tag marker used by the domain scheduler: in-window
 *  worker events sort after every merge-assigned serial seq at the
 *  same tick. Mirrors DomainSet's internal constant. */
constexpr std::uint64_t kProvBit = std::uint64_t{1} << 63;

class QueueImplTest : public ::testing::TestWithParam<EventQueueImpl>
{
};

/**
 * Adversarial boundary traffic: events at a handful of ticks straddling
 * a window edge, inserted in domain-merge order (not serial order) but
 * with their serial seqs as explicit tags. A reference queue receives
 * the same events in serial order through the plain (untagged)
 * overload. Pop order must be identical — this is exactly the property
 * the sequencer relies on when it re-injects cross-domain work.
 */
TEST_P(QueueImplTest, TaggedPopOrderMatchesSerialReference)
{
    struct Ev
    {
        Tick when;
        std::uint64_t serial_seq; // position in the serial schedule
    };
    // Serial schedule order (seq = index): interleaved ticks with
    // heavy same-tick contention at the window edge (tick 100).
    const std::vector<Tick> serial_ticks = {100, 96,  100, 100, 97,
                                            100, 101, 100, 96,  104,
                                            100, 101, 100, 97,  100};
    std::vector<Ev> events;
    for (std::size_t i = 0; i < serial_ticks.size(); ++i)
        events.push_back(
            {serial_ticks[i], static_cast<std::uint64_t>(i)});

    // Reference: plain schedule in serial order.
    EventQueue reference(GetParam());
    for (const Ev &e : events) {
        const std::uint64_t id = e.serial_seq;
        reference.schedule(e.when, EventFn([id] { (void)id; }));
    }

    // Shadow: merge order — sorted by (when, seq), the order the
    // sequencer replays records in. Same-tick insertions arrive in
    // increasing tag order (the contract both impls depend on), but
    // the global arrival order differs completely from serial.
    std::vector<Ev> merge_order = events;
    std::stable_sort(merge_order.begin(), merge_order.end(),
                     [](const Ev &a, const Ev &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.serial_seq < b.serial_seq;
                     });
    EventQueue shadow(GetParam());
    for (const Ev &e : merge_order) {
        const std::uint64_t id = e.serial_seq;
        shadow.schedule(e.when, EventFn([id] { (void)id; }),
                        e.serial_seq);
    }

    ASSERT_EQ(reference.size(), shadow.size());
    while (!reference.empty()) {
        Tick ref_when = 0, shadow_when = 0;
        std::uint64_t ref_tag = 0, shadow_tag = 0;
        (void)reference.pop(ref_when, ref_tag);
        (void)shadow.pop(shadow_when, shadow_tag);
        EXPECT_EQ(ref_when, shadow_when);
        EXPECT_EQ(ref_tag, shadow_tag);
    }
    EXPECT_TRUE(shadow.empty());
}

/**
 * Provisional tags (top bit set) sort after every serial tag at the
 * same tick, regardless of arrival order across ticks: a worker's live
 * in-window event at tick T runs after all merge-injected events at T,
 * which is exactly where the serial run would have placed it (the
 * merge-injected events were scheduled earlier in serial time).
 */
TEST_P(QueueImplTest, ProvisionalTagsSortAfterSerialTagsAtSameTick)
{
    EventQueue queue(GetParam());
    std::vector<int> order;

    // Merge phase: serial-tagged events at ticks 200 and 201.
    queue.schedule(200, EventFn([&order] { order.push_back(0); }), 10);
    queue.schedule(200, EventFn([&order] { order.push_back(1); }), 11);
    queue.schedule(201, EventFn([&order] { order.push_back(2); }), 12);
    // Window phase: the worker schedules live events at the same
    // ticks with provisional tags (per-domain counter under the top
    // bit). They must fire after the merge-injected ones.
    queue.schedule(200, EventFn([&order] { order.push_back(3); }),
                   kProvBit | 0);
    queue.schedule(201, EventFn([&order] { order.push_back(4); }),
                   kProvBit | 1);
    queue.schedule(200, EventFn([&order] { order.push_back(5); }),
                   kProvBit | 2);

    while (!queue.empty()) {
        Tick when = 0;
        std::uint64_t tag = 0;
        EventFn fn = queue.pop(when, tag);
        fn();
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 5, 2, 4}));
}

/** The tagged pop overload reports the plain overload's internal
 *  counter too, so the merge can recover serial order from a queue
 *  populated by untagged schedules. */
TEST_P(QueueImplTest, PopReportsInternalCounterForUntaggedEvents)
{
    EventQueue queue(GetParam());
    queue.schedule(7, EventFn([] {}));
    queue.schedule(7, EventFn([] {}));
    queue.schedule(5, EventFn([] {}));

    Tick when = 0;
    std::uint64_t tag = 0;
    (void)queue.pop(when, tag);
    EXPECT_EQ(when, 5u);
    EXPECT_EQ(tag, 2u);
    (void)queue.pop(when, tag);
    EXPECT_EQ(when, 7u);
    EXPECT_EQ(tag, 0u);
    (void)queue.pop(when, tag);
    EXPECT_EQ(when, 7u);
    EXPECT_EQ(tag, 1u);
}

INSTANTIATE_TEST_SUITE_P(Impls, QueueImplTest,
                         ::testing::Values(EventQueueImpl::Calendar,
                                           EventQueueImpl::Heap),
                         [](const auto &info) {
                             return std::string(
                                 eventQueueImplName(info.param));
                         });

// ---- External (barrier-driven) observer mode ---------------------------

/**
 * A progressing run never trips the external watchdog, even when the
 * barrier calls in at every window (far more often than the interval)
 * and individual windows see zero local progress — the situation of a
 * domain legitimately blocked at its horizon while the wafer as a
 * whole advances.
 */
TEST(DomainObserverTest, ExternalWatchdogIgnoresProgressingRun)
{
    Engine engine;
    std::uint64_t retired = 0;
    // Global simulation work: events keep executing.
    std::function<void()> worker = [&] {
        if (retired < 50) {
            ++retired;
            engine.scheduleIn(100, [&] { worker(); });
        }
    };
    engine.scheduleIn(0, [&] { worker(); });

    Watchdog dog(engine, 1000, [&] { return retired; });
    std::string message;
    dog.setStallHandler(
        [&](const std::string &msg) { message = msg; });
    dog.startExternal();
    EXPECT_TRUE(dog.running());

    // Drive the engine in steps, calling in from the "barrier" every
    // 32 ticks (the lookahead) like the domain sequencer does.
    while (engine.pendingEvents() > 0) {
        engine.step();
        dog.checkExternal(engine.now());
    }

    EXPECT_FALSE(dog.triggered()) << message;
    EXPECT_GT(dog.checks(), 0u); // It did run checks...
    EXPECT_LT(dog.checks(), 10u) // ...but interval-gated, not per call.
        << "external checks must be interval-gated";
}

/** The external watchdog still catches a genuine livelock: events keep
 *  firing, the progress counter never moves. */
TEST(DomainObserverTest, ExternalWatchdogTripsOnLivelock)
{
    Engine engine;
    bool stalled = false;
    std::function<void()> livelock = [&] {
        if (!stalled)
            engine.scheduleIn(10, [&] { livelock(); });
    };
    engine.scheduleIn(0, [&] { livelock(); });

    Watchdog dog(engine, 1000, [] { return std::uint64_t{0}; });
    std::string message;
    dog.setStallHandler([&](const std::string &msg) {
        stalled = true;
        message = msg;
    });
    dog.startExternal();

    while (engine.pendingEvents() > 0 && !stalled) {
        engine.step();
        dog.checkExternal(engine.now());
    }

    EXPECT_TRUE(dog.triggered());
    EXPECT_NE(message.find("no memop retired for 1000 ticks"),
              std::string::npos)
        << message;
}

/** External heartbeat: beats are interval-gated and schedule no engine
 *  events, so the run's event counts stay serial-identical. */
TEST(DomainObserverTest, ExternalHeartbeatSchedulesNoEvents)
{
    Engine engine;
    for (int i = 0; i < 10; ++i)
        engine.scheduleIn(static_cast<Tick>(1 + i * 500), [] {});
    const std::uint64_t scheduled_before = engine.scheduledEvents();

    Heartbeat beat(engine, 1000);
    beat.startExternal();
    EXPECT_TRUE(beat.running());
    EXPECT_EQ(engine.scheduledEvents(), scheduled_before)
        << "external mode must not schedule engine events";

    while (engine.pendingEvents() > 0) {
        engine.step();
        beat.beatExternal(engine.now());
    }
    EXPECT_EQ(engine.scheduledEvents(), scheduled_before);
    // 10 events at 500-tick spacing = ~4500 ticks = at most 4 beats
    // at interval 1000 (gated), not one per barrier call.
    EXPECT_LE(beat.beats(), 4u);
    EXPECT_GE(beat.beats(), 3u);
}

// ---- End-to-end bitwise identity ---------------------------------------

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** runOnce at @p domains shards, audited, metrics to @p json_path. */
RunResult
runWithDomains(RunSpec spec, unsigned domains,
               const std::string &json_path)
{
    spec.obs.audit = true;
    spec.obs.domains = domains;
    spec.obs.metricsJsonPath = json_path;
    return runOnce(spec);
}

void
expectIdenticalToSerial(const RunSpec &spec, unsigned domains,
                        const std::string &tag)
{
    const std::string dir = ::testing::TempDir();
    const RunResult serial =
        runWithDomains(spec, 1, dir + tag + "-serial.json");
    const RunResult sharded =
        runWithDomains(spec, domains, dir + tag + "-k.json");

    EXPECT_EQ(serial.totalTicks, sharded.totalTicks);
    EXPECT_EQ(serial.opsTotal, sharded.opsTotal);
    EXPECT_EQ(serial.gpmFinish, sharded.gpmFinish);
    EXPECT_EQ(serial.remoteOps, sharded.remoteOps);
    EXPECT_EQ(serial.sourceCounts, sharded.sourceCounts);
    EXPECT_EQ(serial.auditIssued, sharded.auditIssued);
    EXPECT_EQ(serial.auditRetired, sharded.auditRetired);
    EXPECT_EQ(serial.auditRetireCensusHash,
              sharded.auditRetireCensusHash);

    const std::string serial_json = slurp(dir + tag + "-serial.json");
    const std::string sharded_json = slurp(dir + tag + "-k.json");
    EXPECT_FALSE(serial_json.empty());
    EXPECT_EQ(serial_json, sharded_json)
        << tag << ": metrics JSON diverged at K=" << domains;
}

/** Fig 14 shape at K=2: the MI100 wafer split into two column strips
 *  must retire the exact serial interleave. */
TEST(DomainIdentityTest, Fig14BitwiseIdenticalAtTwoDomains)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::hdpat();
    spec.opsPerGpm = 300;
    for (const std::string &abbr :
         {std::string("SPMV"), std::string("FFT")}) {
        SCOPED_TRACE(abbr);
        spec.workload = abbr;
        expectIdenticalToSerial(spec, 2, "dom14-" + abbr);
    }
}

/** Fig 22 shape (7x12 wafer, 83 GPMs) at K=2 and K=4. */
TEST(DomainIdentityTest, Fig22WaferBitwiseIdenticalAtFourDomains)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100Wafer7x12();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 200;
    for (const unsigned k : {2u, 4u}) {
        SCOPED_TRACE(k);
        expectIdenticalToSerial(spec, k,
                                "dom22-k" + std::to_string(k));
    }
}

/** Heap queue under domains: the tagged overloads keep both ordering
 *  structures serial-exact, not just the calendar default. */
TEST(DomainIdentityTest, HeapQueueBitwiseIdenticalAtTwoDomains)
{
    ASSERT_EQ(setenv("HDPAT_EVENTQ", "heap", 1), 0);
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "PR";
    spec.opsPerGpm = 300;
    expectIdenticalToSerial(spec, 2, "domheap");
    ASSERT_EQ(unsetenv("HDPAT_EVENTQ"), 0);
}

/** Ridiculous K clamps to the mesh width and still runs identically
 *  (System::effectiveDomains caps it; the run must not fall over). */
TEST(DomainIdentityTest, OversizedDomainCountClampsToWidth)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 150;
    expectIdenticalToSerial(spec, 64, "domclamp");
}

} // namespace
} // namespace hdpat
