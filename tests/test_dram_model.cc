/**
 * @file
 * Unit tests for the analytical HBM model.
 */

#include <gtest/gtest.h>

#include "mem/dram_model.hh"

namespace hdpat
{
namespace
{

TEST(DramModelTest, IdleAccessPaysLatency)
{
    DramModel dram(120, 1230.0);
    const Tick done = dram.access(1000, 64);
    // 64 / 1230 B-per-cycle is a fraction of a cycle -> ceil adds <= 1.
    EXPECT_GE(done, 1000u + 120u);
    EXPECT_LE(done, 1000u + 121u);
}

TEST(DramModelTest, BandwidthSerializesBursts)
{
    DramModel dram(100, 1.0); // 1 byte per cycle: easy arithmetic.
    const Tick first = dram.access(0, 64);
    const Tick second = dram.access(0, 64);
    EXPECT_EQ(first, 164u);  // 64 cycles serialize + 100 latency.
    EXPECT_EQ(second, 228u); // Starts only after the first drains.
}

TEST(DramModelTest, IdleGapsDoNotAccumulateCredit)
{
    DramModel dram(10, 1.0);
    dram.access(0, 100);
    // Long idle period; the next access starts at its own time.
    const Tick done = dram.access(100000, 10);
    EXPECT_EQ(done, 100020u);
}

TEST(DramModelTest, HighBandwidthHandlesManyLinesPerCycle)
{
    DramModel dram(120, 1230.0);
    // 19 lines fit into one cycle at 1.23 TB/s; completion times of a
    // burst issued at the same tick must stay within a couple cycles.
    Tick last = 0;
    for (int i = 0; i < 19; ++i)
        last = dram.access(0, 64);
    EXPECT_LE(last, 122u);
}

TEST(DramModelTest, StatsAccumulate)
{
    DramModel dram(50, 10.0);
    dram.access(0, 100);
    dram.access(0, 200);
    EXPECT_EQ(dram.stats().accesses, 2u);
    EXPECT_EQ(dram.stats().bytes, 300u);
}

TEST(DramModelTest, ZeroBandwidthIsFatal)
{
    EXPECT_EXIT(DramModel(10, 0.0), testing::ExitedWithCode(1),
                "bandwidth");
}

} // namespace
} // namespace hdpat
