/**
 * @file
 * End-to-end observability tests: the metric registry of a full
 * System must agree exactly with the RunResult aggregation, sampled
 * spans must open and close across the wafer, and the runner must
 * write the requested export files.
 */

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/runner.hh"
#include "driver/system.hh"
#include "iommu/messages.hh"
#include "obs/trace.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    cfg.name = "obs-5x5";
    return cfg;
}

TEST(ObsSystemTest, RegistryAgreesWithRunResult)
{
    System sys(smallConfig(), TranslationPolicy::hdpat());
    auto wl = makeWorkload("SPMV");
    sys.loadWorkload(*wl, 1200, 42);
    sys.enableTracing(1u << 18, 4);
    const RunResult r = sys.run();
    const MetricRegistry &reg = sys.metrics();

    // The RunResult aggregates are registry snapshots; both views must
    // agree exactly.
    EXPECT_EQ(reg.counterValue("gpm.ops_completed"), r.opsTotal);
    EXPECT_EQ(reg.counterValue("gpm.l1_tlb_hits"), r.l1TlbHits);
    EXPECT_EQ(reg.counterValue("gpm.l2_tlb_hits"), r.l2TlbHits);
    EXPECT_EQ(reg.counterValue("gpm.ll_tlb_hits"), r.llTlbHits);
    EXPECT_EQ(reg.counterValue("gpm.local_walks"), r.localWalks);
    EXPECT_EQ(reg.counterValue("gpm.remote_ops"), r.remoteOps);
    EXPECT_EQ(reg.counterValue("gpm.remote_resolutions"),
              r.remoteResolutions);
    for (std::size_t i = 0; i < kNumTranslationSources; ++i) {
        const std::string name =
            std::string("translation.source.") +
            translationSourceName(static_cast<TranslationSource>(i));
        EXPECT_EQ(reg.counterValue(name), r.sourceCounts[i]) << name;
    }
    const SummaryStat rtt = reg.summaryValue("gpm.remote_rtt");
    EXPECT_EQ(rtt.count(), r.remoteRtt.count());
    EXPECT_DOUBLE_EQ(rtt.sum(), r.remoteRtt.sum());

    // Per-tile counters sum to the wafer-wide aggregate.
    std::uint64_t per_tile = 0;
    for (std::size_t i = 0; i < sys.numGpms(); ++i)
        per_tile += reg.counterValue(
            "gpm.t" + std::to_string(sys.gpm(i).tile()) +
            ".ops_completed");
    EXPECT_EQ(per_tile, r.opsTotal);
}

TEST(ObsSystemTest, SampledSpansOpenAndClose)
{
    System sys(smallConfig(), TranslationPolicy::hdpat());
    auto wl = makeWorkload("SPMV");
    sys.loadWorkload(*wl, 1000, 7);
    sys.enableTracing(1u << 18, 8);
    const RunResult r = sys.run();

    const Tracer *t = sys.tracer();
    ASSERT_NE(t, nullptr);
    // Every issued op passed the sampling gate.
    EXPECT_EQ(t->opsSeen(), r.opsTotal);
    EXPECT_GT(t->spansStarted(), 0u);
    // Roughly 1 in 8 (duplicate live keys absorb a few).
    EXPECT_LE(t->spansStarted(), r.opsTotal / 8 + 1);
    // Every span that opened also closed: no translation leaks.
    EXPECT_EQ(t->spansStarted(), t->spansCompleted());

    // With no ring wrap, each span has exactly one issue and one
    // complete record bracketing its chain.
    ASSERT_EQ(t->recordsDropped(), 0u);
    std::uint64_t issues = 0, completes = 0, other = 0;
    t->forEachRecord([&](const TraceRecord &rec) {
        if (rec.event == SpanEvent::Issue)
            ++issues;
        else if (rec.event == SpanEvent::Complete)
            ++completes;
        else
            ++other;
    });
    EXPECT_EQ(issues, t->spansStarted());
    EXPECT_EQ(completes, t->spansCompleted());
    EXPECT_GT(other, 0u); // TLB/walk/probe events in between.
}

TEST(ObsSystemTest, TracingOffByDefault)
{
    System sys(smallConfig(), TranslationPolicy::hdpat());
    EXPECT_EQ(sys.tracer(), nullptr);
}

TEST(ObsSystemTest, RunnerWritesRequestedExports)
{
    const std::string dir = ::testing::TempDir();
    const std::string metrics_path = dir + "hdpat_obs_metrics.json";
    const std::string trace_path = dir + "hdpat_obs_trace.json";

    RunSpec spec;
    spec.config = smallConfig();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 600;
    spec.obs.metricsJsonPath = metrics_path;
    spec.obs.traceOutPath = trace_path;
    spec.obs.traceSampleN = 16;
    spec.obs.heartbeatInterval = 0;
    const RunResult r = runOnce(spec);

    std::ifstream metrics(metrics_path);
    ASSERT_TRUE(metrics.good());
    std::stringstream mbuf;
    mbuf << metrics.rdbuf();
    const std::string mjson = mbuf.str();
    EXPECT_NE(mjson.find("\"schema\":\"hdpat-metrics-v1\""),
              std::string::npos);
    // The dump carries the same totals the RunResult printed.
    EXPECT_NE(mjson.find("\"gpm.ops_completed\":" +
                         std::to_string(r.opsTotal)),
              std::string::npos);
    EXPECT_NE(mjson.find("\"total_ticks\":" +
                         std::to_string(r.totalTicks)),
              std::string::npos);

    std::ifstream trace(trace_path);
    ASSERT_TRUE(trace.good());
    std::stringstream tbuf;
    tbuf << trace.rdbuf();
    const std::string tjson = tbuf.str();
    EXPECT_NE(tjson.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(tjson.find("\"issue\""), std::string::npos);
    EXPECT_NE(tjson.find("\"complete\""), std::string::npos);
}

} // namespace
} // namespace hdpat
