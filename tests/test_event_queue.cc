/**
 * @file
 * Unit tests for the discrete-event queue: ordering, same-tick FIFO,
 * heap integrity under randomized load, and the no-allocation
 * guarantee of the small-buffer callback on the schedule/pop hot path.
 */

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace
{

/**
 * Program-wide allocation counter. Replacing the global allocation
 * functions is safe in this shared test binary: behaviour is
 * unchanged, every new is just counted. Tests snapshot the counter
 * around a region that must not allocate.
 */
std::atomic<std::uint64_t> g_heap_allocations{0};

void *
countedAlloc(std::size_t count)
{
    ++g_heap_allocations;
    if (void *p = std::malloc(count ? count : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t count)
{
    return countedAlloc(count);
}

void *
operator new[](std::size_t count)
{
    return countedAlloc(count);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace hdpat
{
namespace
{

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTick(), kTickNever);
}

TEST(EventQueueTest, PopsInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });

    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });

    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
        EXPECT_EQ(when, 5u);
    }
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTickTracksEarliest)
{
    EventQueue q;
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextTick(), 42u);
    q.schedule(7, [] {});
    EXPECT_EQ(q.nextTick(), 7u);

    Tick when = 0;
    q.pop(when);
    EXPECT_EQ(when, 7u);
    EXPECT_EQ(q.nextTick(), 42u);
}

TEST(EventQueueTest, ClearDiscardsEverything)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTick(), kTickNever);
}

TEST(EventQueueTest, ScheduledCountIsMonotonic)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.scheduledCount(), 10u);
    Tick when = 0;
    q.pop(when);
    EXPECT_EQ(q.scheduledCount(), 10u); // Pops do not decrement.
}

TEST(EventQueueTest, ClearKeepsLifetimeScheduledCount)
{
    EventQueue q;
    for (int i = 0; i < 3; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.scheduledCount(), 3u);

    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.scheduledCount(), 3u); // Lifetime total, not queue depth.

    q.schedule(9, [] {});
    EXPECT_EQ(q.scheduledCount(), 4u);
}

TEST(EventQueueTest, SameTickFifoHoldsAcrossClear)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.clear();

    // A fresh epoch after clear() must still drain same-tick events in
    // schedule order.
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

/**
 * The hot path must be allocation-free: with the heap vector
 * pre-reserved, scheduling, popping, and invoking events -- including
 * ones with captures far beyond std::function's inline buffer -- may
 * not touch the heap.
 */
TEST(EventQueueTest, ScheduleAndPopDoNotAllocate)
{
    EventQueue q;
    q.reserve(256);
    int sink = 0;
    std::array<std::uint8_t, 96> payload{};
    payload[0] = 1;

    const std::uint64_t before = g_heap_allocations.load();
    for (int i = 0; i < 200; ++i) {
        q.schedule(static_cast<Tick>(i % 7), [&sink, payload] {
            sink += payload[0];
        });
    }
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    const std::uint64_t after = g_heap_allocations.load();

    EXPECT_EQ(after, before);
    EXPECT_EQ(sink, 200);
}

TEST(EventQueueTest, PopOnEmptyPanics)
{
    EventQueue q;
    Tick when = 0;
    EXPECT_DEATH({ q.pop(when); }, "empty event queue");
}

/** Property: random interleavings drain in nondecreasing tick order. */
TEST(EventQueueTest, RandomizedDrainIsSorted)
{
    Rng rng(123);
    EventQueue q;
    std::vector<Tick> scheduled;
    for (int i = 0; i < 5000; ++i) {
        const Tick t = rng.uniformInt(1000);
        scheduled.push_back(t);
        q.schedule(t, [] {});
    }

    std::vector<Tick> drained;
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when);
        drained.push_back(when);
    }
    ASSERT_EQ(drained.size(), scheduled.size());
    EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
    std::sort(scheduled.begin(), scheduled.end());
    EXPECT_EQ(drained, scheduled);
}

/** Interleaved push/pop keeps the heap invariant. */
TEST(EventQueueTest, InterleavedPushPop)
{
    Rng rng(77);
    EventQueue q;
    Tick last_popped = 0;
    Tick horizon = 0;
    for (int round = 0; round < 2000; ++round) {
        if (q.empty() || rng.chance(0.6)) {
            // Never schedule before the last popped tick (engine rule).
            const Tick t = last_popped + rng.uniformInt(50);
            horizon = std::max(horizon, t);
            q.schedule(t, [] {});
        } else {
            Tick when = 0;
            q.pop(when);
            EXPECT_GE(when, last_popped);
            last_popped = when;
        }
    }
}

} // namespace
} // namespace hdpat
