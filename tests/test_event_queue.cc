/**
 * @file
 * Unit tests for the discrete-event queue: ordering, same-tick FIFO,
 * structural integrity under randomized load, and the no-allocation
 * guarantee of the schedule/pop hot path. Every behavioral test is
 * parameterized over both implementations (calendar wheel and legacy
 * heap); the shadow-queue test drives both side by side and asserts
 * identical pop order, which is the determinism contract the calendar
 * queue must uphold.
 */

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "mem/cuckoo_filter.hh"
#include "mem/page_walk_cache.hh"
#include "mem/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace
{

/**
 * Program-wide allocation counter. Replacing the global allocation
 * functions is safe in this shared test binary: behaviour is
 * unchanged, every new is just counted. Tests snapshot the counter
 * around a region that must not allocate.
 */
std::atomic<std::uint64_t> g_heap_allocations{0};

void *
countedAlloc(std::size_t count)
{
    ++g_heap_allocations;
    if (void *p = std::malloc(count ? count : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t count)
{
    return countedAlloc(count);
}

void *
operator new[](std::size_t count)
{
    return countedAlloc(count);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace hdpat
{
namespace
{

class EventQueueImplTest
    : public ::testing::TestWithParam<EventQueueImpl>
{
};

TEST_P(EventQueueImplTest, StartsEmpty)
{
    EventQueue q(GetParam());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTick(), kTickNever);
}

TEST_P(EventQueueImplTest, PopsInTickOrder)
{
    EventQueue q(GetParam());
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });

    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueImplTest, SameTickIsFifo)
{
    EventQueue q(GetParam());
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });

    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
        EXPECT_EQ(when, 5u);
    }
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(EventQueueImplTest, NextTickTracksEarliest)
{
    EventQueue q(GetParam());
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextTick(), 42u);
    q.schedule(7, [] {});
    EXPECT_EQ(q.nextTick(), 7u);

    Tick when = 0;
    q.pop(when);
    EXPECT_EQ(when, 7u);
    EXPECT_EQ(q.nextTick(), 42u);
}

TEST_P(EventQueueImplTest, ClearDiscardsEverything)
{
    EventQueue q(GetParam());
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTick(), kTickNever);
}

TEST_P(EventQueueImplTest, ScheduledCountIsMonotonic)
{
    EventQueue q(GetParam());
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.scheduledCount(), 10u);
    Tick when = 0;
    q.pop(when);
    EXPECT_EQ(q.scheduledCount(), 10u); // Pops do not decrement.
}

TEST_P(EventQueueImplTest, ClearKeepsLifetimeScheduledCount)
{
    EventQueue q(GetParam());
    for (int i = 0; i < 3; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.scheduledCount(), 3u);

    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.scheduledCount(), 3u); // Lifetime total, not queue depth.

    q.schedule(9, [] {});
    EXPECT_EQ(q.scheduledCount(), 4u);
}

TEST_P(EventQueueImplTest, ClearKeepsPendingHighWater)
{
    EventQueue q(GetParam());
    for (int i = 0; i < 5; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.pendingHighWater(), 5u);

    q.clear();
    EXPECT_EQ(q.pendingHighWater(), 5u); // Lifetime mark survives.

    q.schedule(1, [] {});
    EXPECT_EQ(q.pendingHighWater(), 5u); // Not reset by new traffic.
}

TEST_P(EventQueueImplTest, SameTickFifoHoldsAcrossClear)
{
    EventQueue q(GetParam());
    q.schedule(1, [] {});
    q.clear();

    // A fresh epoch after clear() must still drain same-tick events in
    // schedule order.
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

/**
 * The hot path must be allocation-free: with the backing storage
 * pre-reserved, scheduling, popping, and invoking events -- including
 * ones with captures far beyond std::function's inline buffer -- may
 * not touch the heap. The far-future deltas push events through the
 * calendar queue's overflow heap as well as its wheel buckets.
 */
TEST_P(EventQueueImplTest, ScheduleAndPopDoNotAllocate)
{
    EventQueue q(GetParam());
    q.reserve(256);
    int sink = 0;
    std::array<std::uint8_t, 96> payload{};
    payload[0] = 1;

    const std::uint64_t before = g_heap_allocations.load();
    for (int i = 0; i < 200; ++i) {
        q.schedule(static_cast<Tick>(i % 7), [&sink, payload] {
            sink += payload[0];
        });
        // A sprinkle of far-future events exercises the overflow tier.
        if (i % 10 == 0) {
            q.schedule(static_cast<Tick>(100000 + i),
                       [&sink, payload] { sink += payload[0]; });
        }
    }
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    const std::uint64_t after = g_heap_allocations.load();

    EXPECT_EQ(after, before);
    EXPECT_EQ(sink, 220);
}

/**
 * The SoA translation structures share the no-allocation contract:
 * after construction, every steady-state operation (lookups, inserts,
 * evictions, invalidations, batched probes, walk-latency queries,
 * fills) runs on the fixed lanes and may not touch the heap. This test
 * lives here because this translation unit owns the counting
 * operator new that the whole test binary links.
 */
TEST(SoaSubstrateAllocation, TlbSteadyStateDoesNotAllocate)
{
    Tlb tlb(64, 8);
    std::array<Vpn, 64> batch{};

    const std::uint64_t before = g_heap_allocations.load();
    std::uint64_t sink = 0;
    for (Vpn v = 0; v < 4096; ++v) {
        tlb.insert(v, v + 1, (v & 1) != 0, (v & 2) != 0);
        sink += tlb.lookup(v / 2).value_or(0);
        sink += tlb.peek(v).value_or(0);
        if (v % 7 == 0)
            tlb.invalidate(v / 3);
        batch[v % batch.size()] = v;
        if (v % batch.size() == batch.size() - 1)
            sink += tlb.probeMany(batch);
    }
    tlb.flush();
    const std::uint64_t after = g_heap_allocations.load();

    EXPECT_EQ(after, before);
    EXPECT_GT(sink, 0u);
}

TEST(SoaSubstrateAllocation, CuckooFilterSteadyStateDoesNotAllocate)
{
    CuckooFilter filter(1u << 12);

    const std::uint64_t before = g_heap_allocations.load();
    std::uint64_t sink = 0;
    for (Vpn v = 0; v < 4000; ++v) {
        filter.insert(v);
        sink += filter.contains(v) ? 1 : 0;
        if (v % 3 == 0)
            filter.erase(v / 2);
    }
    const std::uint64_t after = g_heap_allocations.load();

    EXPECT_EQ(after, before);
    EXPECT_GT(sink, 0u);
}

TEST(SoaSubstrateAllocation, PageWalkCacheSteadyStateDoesNotAllocate)
{
    PageWalkCache pwc(256);

    const std::uint64_t before = g_heap_allocations.load();
    Tick total = 0;
    for (Vpn v = 0; v < 2048; ++v) {
        pwc.prefetch(v);
        total += pwc.walkLatency(v);
        pwc.fill(v);
    }
    const std::uint64_t after = g_heap_allocations.load();

    EXPECT_EQ(after, before);
    EXPECT_GT(total, 0u);
}

TEST_P(EventQueueImplTest, PopOnEmptyPanics)
{
    EventQueue q(GetParam());
    Tick when = 0;
    EXPECT_DEATH({ q.pop(when); }, "empty event queue");
}

/** Property: random interleavings drain in nondecreasing tick order. */
TEST_P(EventQueueImplTest, RandomizedDrainIsSorted)
{
    Rng rng(123);
    EventQueue q(GetParam());
    std::vector<Tick> scheduled;
    for (int i = 0; i < 5000; ++i) {
        const Tick t = rng.uniformInt(1000);
        scheduled.push_back(t);
        q.schedule(t, [] {});
    }

    std::vector<Tick> drained;
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when);
        drained.push_back(when);
    }
    ASSERT_EQ(drained.size(), scheduled.size());
    EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
    std::sort(scheduled.begin(), scheduled.end());
    EXPECT_EQ(drained, scheduled);
}

/** Interleaved push/pop keeps the ordering invariant. */
TEST_P(EventQueueImplTest, InterleavedPushPop)
{
    Rng rng(77);
    EventQueue q(GetParam());
    Tick last_popped = 0;
    for (int round = 0; round < 2000; ++round) {
        if (q.empty() || rng.chance(0.6)) {
            // Never schedule before the last popped tick (engine rule).
            const Tick t = last_popped + rng.uniformInt(50);
            q.schedule(t, [] {});
        } else {
            Tick when = 0;
            q.pop(when);
            EXPECT_GE(when, last_popped);
            last_popped = when;
        }
    }
}

/**
 * Deltas straddling the wheel width (4096 ticks): one tick inside the
 * window, the first tick past it (overflow), and one further. All must
 * drain in tick order regardless of which tier they landed in.
 */
TEST_P(EventQueueImplTest, BucketWidthBoundaryTicks)
{
    EventQueue q(GetParam());
    std::vector<Tick> expect;
    for (const Tick t : {Tick{4095}, Tick{4096}, Tick{4097}, Tick{0},
                         Tick{1}, Tick{8191}, Tick{8192}}) {
        q.schedule(t, [] {});
        expect.push_back(t);
    }
    std::sort(expect.begin(), expect.end());

    std::vector<Tick> drained;
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when);
        drained.push_back(when);
    }
    EXPECT_EQ(drained, expect);
}

/**
 * Far-future "promotion" ordering: an event scheduled while its tick
 * was beyond the wheel horizon (overflow tier) must still fire before
 * a same-tick event scheduled later, once time has advanced enough
 * that the later schedule lands in a wheel bucket. This is the FIFO
 * tie the determinism contract hangs on.
 */
TEST_P(EventQueueImplTest, FarFutureOverflowKeepsFifoOnTies)
{
    EventQueue q(GetParam());
    std::vector<int> order;
    constexpr Tick kFar = 10000; // Beyond the 4096-tick wheel at t=0.

    q.schedule(kFar, [&] { order.push_back(0); }); // Overflow tier.

    // March simulated time forward to within a wheel width of kFar.
    for (Tick t = 1000; t < kFar; t += 1000)
        q.schedule(t, [] {});
    Tick when = 0;
    while (q.size() > 1)
        q.pop(when)();
    // Now the same tick lands in a bucket; FIFO says it fires second.
    q.schedule(kFar, [&] { order.push_back(1); });
    q.schedule(kFar, [&] { order.push_back(2); });

    while (!q.empty())
        q.pop(when)();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(when, kFar);
}

/**
 * Shadow-queue differential: drive the calendar queue and the legacy
 * heap with an identical engine-like schedule/pop script and assert
 * the (tick, schedule-index) pop sequences match exactly. Several
 * delta profiles: the simulator's short fixed deltas, wheel-boundary
 * straddlers, and heavy same-tick contention.
 */
TEST(EventQueueShadowTest, CalendarMatchesHeapPopOrder)
{
    const struct
    {
        std::uint64_t seed;
        Tick max_delta;
        double same_tick_bias;
    } profiles[] = {
        {11, 8, 0.5},     // Short fixed deltas (hop/pipeline latencies).
        {22, 6000, 0.0},  // Straddles the 4096-tick wheel width.
        {33, 1, 0.9},     // Same-tick pileups.
        {44, 100000, 0.2} // Mostly overflow-tier traffic.
    };

    for (const auto &p : profiles) {
        Rng rng(p.seed);
        EventQueue cal(EventQueueImpl::Calendar);
        EventQueue heap(EventQueueImpl::Heap);
        std::vector<std::pair<Tick, int>> cal_pops, heap_pops;
        Tick now = 0;
        int next_id = 0;
        for (int round = 0; round < 20000; ++round) {
            if (cal.empty() || rng.chance(0.55)) {
                const Tick delta = rng.chance(p.same_tick_bias)
                                       ? 0
                                       : rng.uniformInt(p.max_delta);
                const int id = next_id++;
                cal.schedule(now + delta, [&cal_pops, id] {
                    cal_pops.emplace_back(0, id);
                });
                heap.schedule(now + delta, [&heap_pops, id] {
                    heap_pops.emplace_back(0, id);
                });
            } else {
                Tick cal_when = 0, heap_when = 0;
                cal.pop(cal_when)();
                heap.pop(heap_when)();
                ASSERT_EQ(cal_when, heap_when);
                cal_pops.back().first = cal_when;
                heap_pops.back().first = heap_when;
                now = cal_when;
            }
        }
        while (!cal.empty()) {
            Tick cal_when = 0, heap_when = 0;
            cal.pop(cal_when)();
            ASSERT_FALSE(heap.empty());
            heap.pop(heap_when)();
            ASSERT_EQ(cal_when, heap_when);
            cal_pops.back().first = cal_when;
            heap_pops.back().first = heap_when;
        }
        EXPECT_TRUE(heap.empty());
        ASSERT_EQ(cal_pops.size(), heap_pops.size());
        EXPECT_EQ(cal_pops, heap_pops)
            << "pop order diverged for seed " << p.seed;
    }
}

TEST(EventQueueConfigTest, EnvSelectsImplementation)
{
    ASSERT_EQ(setenv("HDPAT_EVENTQ", "heap", 1), 0);
    EXPECT_EQ(defaultEventQueueImpl(), EventQueueImpl::Heap);
    {
        EventQueue q;
        EXPECT_EQ(q.impl(), EventQueueImpl::Heap);
    }
    ASSERT_EQ(setenv("HDPAT_EVENTQ", "calendar", 1), 0);
    EXPECT_EQ(defaultEventQueueImpl(), EventQueueImpl::Calendar);
    ASSERT_EQ(unsetenv("HDPAT_EVENTQ"), 0);
    {
        EventQueue q;
        EXPECT_EQ(q.impl(), EventQueueImpl::Calendar);
    }
    EXPECT_STREQ(eventQueueImplName(EventQueueImpl::Heap), "heap");
    EXPECT_STREQ(eventQueueImplName(EventQueueImpl::Calendar),
                 "calendar");
}

INSTANTIATE_TEST_SUITE_P(
    Impls, EventQueueImplTest,
    ::testing::Values(EventQueueImpl::Calendar, EventQueueImpl::Heap),
    [](const ::testing::TestParamInfo<EventQueueImpl> &info) {
        return std::string(eventQueueImplName(info.param));
    });

} // namespace
} // namespace hdpat
