/**
 * @file
 * Unit tests for the discrete-event queue: ordering, same-tick FIFO,
 * and heap integrity under randomized load.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTick(), kTickNever);
}

TEST(EventQueueTest, PopsInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });

    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });

    while (!q.empty()) {
        Tick when = 0;
        q.pop(when)();
        EXPECT_EQ(when, 5u);
    }
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTickTracksEarliest)
{
    EventQueue q;
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextTick(), 42u);
    q.schedule(7, [] {});
    EXPECT_EQ(q.nextTick(), 7u);

    Tick when = 0;
    q.pop(when);
    EXPECT_EQ(when, 7u);
    EXPECT_EQ(q.nextTick(), 42u);
}

TEST(EventQueueTest, ClearDiscardsEverything)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTick(), kTickNever);
}

TEST(EventQueueTest, ScheduledCountIsMonotonic)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.scheduledCount(), 10u);
    Tick when = 0;
    q.pop(when);
    EXPECT_EQ(q.scheduledCount(), 10u); // Pops do not decrement.
}

TEST(EventQueueTest, PopOnEmptyPanics)
{
    EventQueue q;
    Tick when = 0;
    EXPECT_DEATH({ q.pop(when); }, "empty event queue");
}

/** Property: random interleavings drain in nondecreasing tick order. */
TEST(EventQueueTest, RandomizedDrainIsSorted)
{
    Rng rng(123);
    EventQueue q;
    std::vector<Tick> scheduled;
    for (int i = 0; i < 5000; ++i) {
        const Tick t = rng.uniformInt(1000);
        scheduled.push_back(t);
        q.schedule(t, [] {});
    }

    std::vector<Tick> drained;
    while (!q.empty()) {
        Tick when = 0;
        q.pop(when);
        drained.push_back(when);
    }
    ASSERT_EQ(drained.size(), scheduled.size());
    EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
    std::sort(scheduled.begin(), scheduled.end());
    EXPECT_EQ(drained, scheduled);
}

/** Interleaved push/pop keeps the heap invariant. */
TEST(EventQueueTest, InterleavedPushPop)
{
    Rng rng(77);
    EventQueue q;
    Tick last_popped = 0;
    Tick horizon = 0;
    for (int round = 0; round < 2000; ++round) {
        if (q.empty() || rng.chance(0.6)) {
            // Never schedule before the last popped tick (engine rule).
            const Tick t = last_popped + rng.uniformInt(50);
            horizon = std::max(horizon, t);
            q.schedule(t, [] {});
        } else {
            Tick when = 0;
            q.pop(when);
            EXPECT_GE(when, last_popped);
            last_popped = when;
        }
    }
}

} // namespace
} // namespace hdpat
