/**
 * @file
 * Exporter validity: every file the runner writes — metrics JSON,
 * Chrome trace, spatial CSV — must survive a strict RFC 8259 parse
 * (or, for the CSV, a column-count check) and carry the schema fields
 * downstream consumers key on. The strict reader itself is unit-tested
 * first: an exporter bug that emits NaN or a duplicate key must fail
 * here, not in a plotting script three stages later.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/run_result.hh"
#include "driver/runner.hh"
#include "obs/json_reader.hh"
#include "obs/latency.hh"
#include "obs/profiler.hh"

namespace hdpat
{
namespace
{

// --- Strict-reader unit tests -------------------------------------

JsonValue
mustParse(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error)) << error;
    return v;
}

void
mustReject(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(text, v, error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty());
}

TEST(JsonReaderTest, ParsesWellFormedDocument)
{
    const JsonValue v = mustParse(
        R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e3}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("a").asUint(), 1u);
    ASSERT_TRUE(v.at("b").isArray());
    ASSERT_EQ(v.at("b").elements.size(), 3u);
    EXPECT_TRUE(v.at("b").elements[0].asBool());
    EXPECT_TRUE(v.at("b").elements[1].isNull());
    EXPECT_EQ(v.at("b").elements[2].asString(), "x\n");
    EXPECT_DOUBLE_EQ(v.at("c").at("d").asNumber(), -2500.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReaderTest, RejectsNonFiniteNumbers)
{
    mustReject(R"({"x": NaN})");
    mustReject(R"({"x": Infinity})");
    mustReject(R"({"x": -Infinity})");
    mustReject(R"({"x": nan})");
}

TEST(JsonReaderTest, RejectsTrailingGarbage)
{
    mustReject(R"({"x": 1} extra)");
    mustReject(R"({"x": 1}{"y": 2})");
    mustReject(R"([1, 2],)");
}

TEST(JsonReaderTest, RejectsStructuralErrors)
{
    mustReject("");
    mustReject(R"({"x": 1)");
    mustReject(R"([1, 2)");
    mustReject(R"({"x" 1})");
    mustReject(R"({"x": 1,})");
    mustReject(R"([1, 2,])");
    mustReject(R"({'x': 1})");
}

TEST(JsonReaderTest, RejectsDuplicateKeys)
{
    mustReject(R"({"x": 1, "x": 2})");
}

TEST(JsonReaderTest, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    for (int i = 0; i < 100; ++i)
        deep += ']';
    mustReject(deep);
}

// --- Full-run export validation -----------------------------------

std::string
tmpPath(const char *leaf)
{
    return (std::filesystem::temp_directory_path() / leaf).string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(ExportValidityTest, MetricsJsonIsStrictAndComplete)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "export-5x5";
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 800;
    spec.seed = 42;
    spec.obs = ObsOptions{};
    spec.obs.metricsJsonPath = tmpPath("hdpat-export-metrics.json");
    spec.obs.traceOutPath = tmpPath("hdpat-export-trace.json");
    spec.obs.spatialCsvPath = tmpPath("hdpat-export-spatial.csv");
    spec.obs.spatialWindow = 50'000;
    spec.obs.audit = true;
    spec.obs.profile = true;
    spec.obs.heartbeatInterval = 0;
    const RunResult result = runOnce(spec);
    EXPECT_GT(result.opsTotal, 0u);

    // Metrics JSON: strict parse, then the fields every consumer
    // (fig05, perf_report, CI artifacts) depends on.
    const JsonValue doc =
        parseJsonFileOrDie(spec.obs.metricsJsonPath);
    EXPECT_EQ(doc.at("schema").asString(), "hdpat-metrics-v1");
    const JsonValue &run = doc.at("run");
    EXPECT_EQ(run.at("workload").asString(), "SPMV");
    EXPECT_EQ(run.at("policy").asString(), "hdpat");
    EXPECT_EQ(run.at("seed").asUint(), 42u);
    EXPECT_GT(run.at("total_ticks").asUint(), 0u);
    EXPECT_TRUE(doc.at("counters").isObject());
    EXPECT_TRUE(doc.at("summaries").isObject());

    const JsonValue &spatial = doc.at("spatial");
    const JsonValue &mesh = spatial.at("mesh");
    EXPECT_EQ(mesh.at("width").asUint(), 5u);
    EXPECT_EQ(mesh.at("height").asUint(), 5u);
    EXPECT_EQ(mesh.at("window_ticks").asUint(), 50'000u);
    ASSERT_TRUE(spatial.at("tiles").isArray());
    // 24 GPM tiles + the CPU tile.
    EXPECT_EQ(spatial.at("tiles").elements.size(), 25u);
    ASSERT_TRUE(spatial.at("links").isArray());
    EXPECT_FALSE(spatial.at("links").elements.empty());
    for (const JsonValue &link : spatial.at("links").elements) {
        EXPECT_GT(link.at("packets").asUint(), 0u);
        const std::string &dir = link.at("dir").asString();
        EXPECT_TRUE(dir == "east" || dir == "west" ||
                    dir == "south" || dir == "north")
            << dir;
    }

    const JsonValue &profile = doc.at("profile");
    EXPECT_EQ(profile.at("runs").asUint(), 1u);
    EXPECT_GT(profile.at("wall_nanos").asUint(), 0u);
    const JsonValue &sections = profile.at("sections");
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
        const char *name =
            profSectionName(static_cast<ProfSection>(i));
        ASSERT_NE(sections.find(name), nullptr) << name;
    }
    // The simulation ran, so dispatch and translate must have fired.
    EXPECT_GT(sections.at("event_dispatch").at("calls").asUint(), 0u);
    EXPECT_GT(sections.at("translate").at("calls").asUint(), 0u);

    // Chrome trace: strict parse plus the two top-level fields the
    // trace viewer requires.
    const JsonValue trace =
        parseJsonFileOrDie(spec.obs.traceOutPath);
    EXPECT_EQ(trace.at("displayTimeUnit").asString(), "ns");
    EXPECT_TRUE(trace.at("traceEvents").isArray());

    // Spatial CSV: header intact and every row column-complete.
    const std::string csv = slurp(spec.obs.spatialCsvPath);
    std::istringstream lines(csv);
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line,
              "kind,tile,x,y,ring,dir,packets,bytes,busy_ticks,"
              "wait_ticks,finish_tick,rtt_mean,occupancy_mean");
    const std::size_t columns =
        static_cast<std::size_t>(
            std::count(line.begin(), line.end(), ',')) + 1;
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ++rows;
        EXPECT_EQ(static_cast<std::size_t>(
                      std::count(line.begin(), line.end(), ',')) + 1,
                  columns)
            << line;
    }
    EXPECT_GT(rows, 0u);

    std::remove(spec.obs.metricsJsonPath.c_str());
    std::remove(spec.obs.traceOutPath.c_str());
    std::remove(spec.obs.spatialCsvPath.c_str());
}

TEST(ExportValidityTest, ProfileSectionOmittedWhenProfilerOff)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "export-off-5x5";
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "PR";
    spec.opsPerGpm = 400;
    spec.seed = 7;
    spec.obs = ObsOptions{};
    spec.obs.metricsJsonPath = tmpPath("hdpat-export-noprof.json");
    spec.obs.heartbeatInterval = 0;
    runOnce(spec);

    const JsonValue doc =
        parseJsonFileOrDie(spec.obs.metricsJsonPath);
    EXPECT_EQ(doc.at("schema").asString(), "hdpat-metrics-v1");
    EXPECT_EQ(doc.find("profile"), nullptr);
    EXPECT_EQ(doc.find("spatial"), nullptr);
    // Latency attribution was off, so the section is absent and the
    // schema stays v1 -- downstream v1 consumers are unaffected.
    EXPECT_EQ(doc.find("latency"), nullptr);
    std::remove(spec.obs.metricsJsonPath.c_str());
}

TEST(ExportValidityTest, LatencySectionIsV2AndComplete)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "export-lat-5x5";
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 400;
    spec.seed = 42;
    spec.obs = ObsOptions{};
    spec.obs.metricsJsonPath = tmpPath("hdpat-export-latency.json");
    spec.obs.latency = true; // Exact mode (sample 1).
    spec.obs.heartbeatInterval = 0;
    const RunResult result = runOnce(spec);
    EXPECT_GT(result.latency.spans, 0u);

    const JsonValue doc =
        parseJsonFileOrDie(spec.obs.metricsJsonPath);
    EXPECT_EQ(doc.at("schema").asString(), "hdpat-metrics-v2");
    const JsonValue &latency = doc.at("latency");
    EXPECT_EQ(latency.at("sample_n").asUint(), 1u);
    EXPECT_EQ(latency.at("spans").asUint(), result.latency.spans);
    EXPECT_EQ(latency.at("conservation_violations").asUint(), 0u);

    // Every stage of the taxonomy is present (possibly with count 0)
    // so consumers can index by name unconditionally.
    const JsonValue &stages = latency.at("stages");
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        const char *name =
            latencyStageName(static_cast<LatencyStage>(s));
        const JsonValue *stage = stages.find(name);
        ASSERT_NE(stage, nullptr) << name;
        EXPECT_TRUE(stage->at("summary").isObject());
        EXPECT_TRUE(stage->at("histogram").isObject());
    }

    const JsonValue &e2e = latency.at("end_to_end");
    EXPECT_EQ(e2e.at("summary").at("count").asUint(),
              result.latency.spans);
    const JsonValue &quantiles = e2e.at("quantiles");
    EXPECT_LE(quantiles.at("p50").asUint(),
              quantiles.at("p95").asUint());
    EXPECT_LE(quantiles.at("p95").asUint(),
              quantiles.at("p99").asUint());
    EXPECT_LE(quantiles.at("p99").asUint(),
              quantiles.at("p999").asUint());
    // Exact mode on a small run: nothing dropped, so the reservoir
    // holds every span.
    EXPECT_EQ(e2e.at("reservoir_samples").asUint(),
              result.latency.spans);
    EXPECT_EQ(e2e.at("reservoir_dropped").asUint(), 0u);

    EXPECT_TRUE(latency.at("tiles").isArray());
    EXPECT_FALSE(latency.at("tiles").elements.empty());

    const JsonValue &slowest = latency.at("slowest");
    ASSERT_TRUE(slowest.isArray());
    ASSERT_FALSE(slowest.elements.empty());
    std::uint64_t prev = ~0ull;
    for (const JsonValue &span : slowest.elements) {
        const std::uint64_t total = span.at("total_ticks").asUint();
        EXPECT_LE(total, prev); // Sorted slowest-first.
        prev = total;
        EXPECT_TRUE(span.at("stage_ticks").isObject());
        const JsonValue &timeline = span.at("timeline");
        ASSERT_TRUE(timeline.isArray());
        ASSERT_FALSE(timeline.elements.empty());
        EXPECT_EQ(timeline.elements.front().at("event").asString(),
                  "issue");
        EXPECT_EQ(timeline.elements.back().at("event").asString(),
                  "complete");
    }

    std::remove(spec.obs.metricsJsonPath.c_str());
}

TEST(ExportValidityTest, BackpressureSectionIsV3AndComplete)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "export-bp-5x5";
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 400;
    spec.seed = 42;
    spec.obs = ObsOptions{};
    spec.obs.metricsJsonPath = tmpPath("hdpat-export-bp.json");
    spec.obs.backpressure = true;
    spec.obs.backpressureWindow = 50'000;
    spec.obs.heartbeatInterval = 0;
    const RunResult result = runOnce(spec);
    EXPECT_FALSE(result.backpressure.empty());

    const JsonValue doc =
        parseJsonFileOrDie(spec.obs.metricsJsonPath);
    EXPECT_EQ(doc.at("schema").asString(), "hdpat-metrics-v3");
    const JsonValue &bp = doc.at("backpressure");
    EXPECT_EQ(bp.at("total_ticks").asUint(),
              result.backpressure.totalTicks);
    EXPECT_EQ(bp.at("window_ticks").asUint(), 50'000u);
    EXPECT_EQ(bp.at("little_violations").asUint(), 0u);

    const JsonValue &resources = bp.at("resources");
    ASSERT_TRUE(resources.isArray());
    EXPECT_EQ(resources.elements.size(),
              result.backpressure.resources.size());
    double prev_saturation = 2.0;
    for (const JsonValue &r : resources.elements) {
        const std::string &kind = r.at("kind").asString();
        EXPECT_TRUE(kind == "queue" || kind == "pool" ||
                    kind == "mshr" || kind == "residency" ||
                    kind == "link")
            << kind;
        for (const char *key :
             {"name", "capacity", "arrivals", "departures",
              "rejections", "occupancy", "peak", "mean_occupancy",
              "saturation", "mean_residency"})
            ASSERT_NE(r.find(key), nullptr)
                << r.at("name").asString() << " lacks " << key;
        if (kind == "link") {
            // Analytic links: busy/wait totals, no transition
            // integral and no oracle field.
            EXPECT_NE(r.find("busy_ticks"), nullptr);
            EXPECT_NE(r.find("wait_ticks"), nullptr);
            EXPECT_EQ(r.find("occ_integral"), nullptr);
            EXPECT_EQ(r.find("little_holds"), nullptr);
        } else {
            EXPECT_NE(r.find("occ_integral"), nullptr);
            EXPECT_NE(r.find("at_capacity_ticks"), nullptr);
            EXPECT_NE(r.find("sum_arrive_ticks"), nullptr);
            EXPECT_NE(r.find("sum_depart_ticks"), nullptr);
            EXPECT_TRUE(r.at("little_holds").asBool())
                << r.at("name").asString();
        }
        if (const JsonValue *windows = r.find("windows")) {
            ASSERT_TRUE(windows->isArray());
            for (const JsonValue &w : windows->elements) {
                EXPECT_NE(w.find("occ_integral"), nullptr);
                EXPECT_NE(w.find("peak"), nullptr);
                EXPECT_NE(w.find("at_capacity_ticks"), nullptr);
            }
        }
        // Export order is the ranked order: saturation descending.
        const double saturation = r.at("saturation").asNumber();
        EXPECT_LE(saturation, prev_saturation)
            << r.at("name").asString();
        prev_saturation = saturation;
    }

    std::remove(spec.obs.metricsJsonPath.c_str());
}

} // namespace
} // namespace hdpat
