/**
 * @file
 * Unit tests for the workload channel combinators and the weighted
 * interleaver — the building blocks of every benchmark generator.
 */

#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace hdpat
{
namespace
{

TEST(InterleavedStreamTest, RespectsWeights)
{
    // Channel A returns 0xA000..., channel B returns 0xB000...
    std::vector<Channel> channels;
    channels.push_back({[] { return Addr(0xA000); }, 3});
    channels.push_back({[] { return Addr(0xB000); }, 1});
    InterleavedStream stream(std::move(channels), 400);

    std::map<Addr, int> counts;
    while (auto a = stream.next())
        ++counts[*a];
    EXPECT_EQ(counts[0xA000], 300);
    EXPECT_EQ(counts[0xB000], 100);
}

TEST(InterleavedStreamTest, StopsAtMaxOps)
{
    std::vector<Channel> channels;
    channels.push_back({[] { return Addr(1); }, 1});
    InterleavedStream stream(std::move(channels), 5);
    int n = 0;
    while (stream.next())
        ++n;
    EXPECT_EQ(n, 5);
    EXPECT_FALSE(stream.next().has_value()); // Stays exhausted.
}

TEST(InterleavedStreamTest, ZeroOpsIsEmpty)
{
    std::vector<Channel> channels;
    channels.push_back({[] { return Addr(1); }, 1});
    InterleavedStream stream(std::move(channels), 0);
    EXPECT_FALSE(stream.next().has_value());
}

TEST(ChannelTest, SeqWalksAndWraps)
{
    auto gen = seqChannel(0x1000, 256, 64);
    EXPECT_EQ(gen(), 0x1000u);
    EXPECT_EQ(gen(), 0x1040u);
    EXPECT_EQ(gen(), 0x1080u);
    EXPECT_EQ(gen(), 0x10c0u);
    EXPECT_EQ(gen(), 0x1000u); // Wrapped.
}

TEST(ChannelTest, SeqStartOffset)
{
    auto gen = seqChannel(0x1000, 256, 64, 128);
    EXPECT_EQ(gen(), 0x1080u);
}

TEST(ChannelTest, ChunkRotateVisitsOwnChunksInOrder)
{
    // 8 chunks of 128 bytes; GPM 1 of 4 owns chunks 1, 5, 1, 5, ...
    auto gen = chunkRotateChannel(0, 1024, 128, 64, 1, 4);
    EXPECT_EQ(gen(), 128u);
    EXPECT_EQ(gen(), 192u);
    EXPECT_EQ(gen(), 5u * 128u); // Next chunk: 1 + 4.
    EXPECT_EQ(gen(), 5u * 128u + 64u);
    EXPECT_EQ(gen(), 128u); // Wrapped back to chunk 1.
}

TEST(ChannelTest, RandomStaysInRangeAndDwells)
{
    auto rng = std::make_shared<Rng>(5);
    auto gen = randomChannel(0x4000, 4096, 64, rng, 4);
    Addr prev = gen();
    for (int i = 1; i < 400; ++i) {
        const Addr a = gen();
        EXPECT_GE(a, 0x4000u);
        EXPECT_LT(a, 0x4000u + 4096u);
        if (i % 4 != 0) {
            // Within a dwell run: consecutive lines.
            EXPECT_EQ(a, 0x4000 + (prev - 0x4000 + 64) % 4096);
        }
        prev = a;
    }
}

TEST(ChannelTest, ZipfPrefersLowPages)
{
    auto rng = std::make_shared<Rng>(7);
    auto gen = zipfChannel(0, 64 * 4096, 1.0, 12, rng);
    std::map<Addr, int> page_counts;
    for (int i = 0; i < 20000; ++i)
        ++page_counts[gen() >> 12];
    EXPECT_GT(page_counts[0], page_counts[32]);
}

TEST(ChannelTest, HotRegionLoopsThenAdvances)
{
    // Region 128 bytes, stride 64, epoch of 4 ops, advance 1024.
    auto gen = hotRegionChannel(0, 8192, 128, 64, 4, 1024);
    EXPECT_EQ(gen(), 0u);
    EXPECT_EQ(gen(), 64u);
    EXPECT_EQ(gen(), 0u);
    EXPECT_EQ(gen(), 64u);
    EXPECT_EQ(gen(), 1024u); // New epoch.
    EXPECT_EQ(gen(), 1088u);
}

TEST(ChannelTest, ButterflyPartnersAreXor)
{
    // 16 elements of 4 bytes, slice = all, single stride 4.
    auto gen = butterflyChannel(0, 16, 4, 0, 16, {4}, 1000);
    EXPECT_EQ(gen(), (0u ^ 4u) * 4u);
    EXPECT_EQ(gen(), (1u ^ 4u) * 4u);
    EXPECT_EQ(gen(), (2u ^ 4u) * 4u);
}

TEST(ChannelTest, ButterflyAdvancesStages)
{
    auto gen = butterflyChannel(0, 16, 4, 0, 16, {1, 8}, 2);
    EXPECT_EQ(gen(), (0u ^ 1u) * 4u);
    EXPECT_EQ(gen(), (1u ^ 1u) * 4u);
    EXPECT_EQ(gen(), (2u ^ 8u) * 4u); // Stage switched to stride 8.
}

TEST(ChannelTest, ButterflyStartStageOffsets)
{
    auto a = butterflyChannel(0, 16, 4, 0, 16, {1, 8}, 100, 0);
    auto b = butterflyChannel(0, 16, 4, 0, 16, {1, 8}, 100, 1);
    EXPECT_NE(a(), b()); // Different stage strides from op 0.
}

TEST(ChannelTest, StridedScatterCoversManyPagesBeforeRepeat)
{
    auto gen = stridedScatterChannel(0, 1u << 20, 1u << 14, 0, 1);
    std::set<Addr> pages;
    for (int i = 0; i < 64; ++i)
        pages.insert(gen() >> 12);
    EXPECT_EQ(pages.size(), 64u); // A new 4K page every access.
}

TEST(ChannelTest, StridedScatterDwellsOnConsecutiveLines)
{
    auto gen = stridedScatterChannel(0, 1u << 20, 1u << 14, 0, 3);
    EXPECT_EQ(gen(), 0u);
    EXPECT_EQ(gen(), 64u);
    EXPECT_EQ(gen(), 128u);
    EXPECT_EQ(gen(), 1u << 14); // Next stride position.
}

TEST(ChannelTest, InvalidParametersAreFatal)
{
    auto rng = std::make_shared<Rng>(1);
    EXPECT_EXIT(seqChannel(0, 0, 64), testing::ExitedWithCode(1),
                "seq");
    EXPECT_EXIT(randomChannel(0, 4096, 64, rng, 0),
                testing::ExitedWithCode(1), "dwell");
    EXPECT_EXIT(hotRegionChannel(0, 100, 200, 64, 10, 0),
                testing::ExitedWithCode(1), "hot-region");
    EXPECT_EXIT(butterflyChannel(0, 16, 4, 0, 16, {}, 10),
                testing::ExitedWithCode(1), "stride");
}

} // namespace
} // namespace hdpat
