/**
 * @file
 * Unit tests for the set-associative TLB.
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

namespace hdpat
{
namespace
{

TEST(TlbTest, MissThenHit)
{
    Tlb tlb(4, 2);
    EXPECT_FALSE(tlb.lookup(10).has_value());
    tlb.insert(10, 99);
    const auto pfn = tlb.lookup(10);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(*pfn, 99u);
    EXPECT_EQ(tlb.stats().lookups, 2u);
    EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(TlbTest, InsertRefreshesExisting)
{
    Tlb tlb(1, 4);
    tlb.insert(5, 100);
    const auto evicted = tlb.insert(5, 200);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(*tlb.lookup(5), 200u);
    EXPECT_EQ(tlb.occupancy(), 1u);
}

TEST(TlbTest, LruEvictionInFullSet)
{
    Tlb tlb(1, 2); // One set, two ways.
    tlb.insert(1, 11);
    tlb.insert(2, 22);
    tlb.lookup(1); // 1 becomes MRU; 2 is LRU.
    const auto evicted = tlb.insert(3, 33);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, 2u);
    EXPECT_TRUE(tlb.lookup(1).has_value());
    EXPECT_TRUE(tlb.lookup(3).has_value());
    EXPECT_FALSE(tlb.lookup(2).has_value());
}

TEST(TlbTest, PeekDoesNotDisturbLru)
{
    Tlb tlb(1, 2);
    tlb.insert(1, 11);
    tlb.insert(2, 22);
    // Peek at 1; 1 must remain LRU (insert order decides).
    EXPECT_TRUE(tlb.peek(1).has_value());
    const auto evicted = tlb.insert(3, 33);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, 1u);
}

TEST(TlbTest, EvictionReportsFlags)
{
    Tlb tlb(1, 1);
    tlb.insert(7, 70, /*remote=*/true, /*prefetched=*/true);
    const auto evicted = tlb.insert(8, 80);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->remote);
    EXPECT_TRUE(evicted->prefetched);
    EXPECT_EQ(evicted->pfn, 70u);
}

TEST(TlbTest, LookupEntryExposesFlags)
{
    Tlb tlb(2, 2);
    tlb.insert(9, 90, true, false);
    const TlbEntry *entry = tlb.lookupEntry(9);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->remote);
    EXPECT_FALSE(entry->prefetched);
    EXPECT_EQ(tlb.lookupEntry(1234), nullptr);
}

TEST(TlbTest, InvalidateRemovesEntry)
{
    Tlb tlb(2, 2);
    tlb.insert(4, 40);
    const auto removed = tlb.invalidate(4);
    ASSERT_TRUE(removed.has_value());
    EXPECT_EQ(removed->pfn, 40u);
    EXPECT_FALSE(tlb.lookup(4).has_value());
    EXPECT_EQ(tlb.occupancy(), 0u);
    EXPECT_FALSE(tlb.invalidate(4).has_value());
}

TEST(TlbTest, FlushClearsEverything)
{
    Tlb tlb(4, 4);
    for (Vpn v = 0; v < 10; ++v)
        tlb.insert(v, v * 10);
    tlb.flush();
    EXPECT_EQ(tlb.occupancy(), 0u);
    for (Vpn v = 0; v < 10; ++v)
        EXPECT_FALSE(tlb.peek(v).has_value());
}

TEST(TlbTest, OccupancyNeverExceedsCapacity)
{
    Tlb tlb(8, 4);
    for (Vpn v = 0; v < 1000; ++v) {
        tlb.insert(v, v);
        EXPECT_LE(tlb.occupancy(), tlb.capacity());
    }
    EXPECT_EQ(tlb.occupancy(), tlb.capacity());
}

TEST(TlbTest, HitRate)
{
    Tlb tlb(1, 8);
    tlb.insert(1, 1);
    tlb.lookup(1);
    tlb.lookup(2);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(TlbTest, ZeroGeometryIsFatal)
{
    EXPECT_EXIT(Tlb(0, 4), testing::ExitedWithCode(1), "at least");
    EXPECT_EXIT(Tlb(4, 0), testing::ExitedWithCode(1), "at least");
}

/** Table I geometries must hold their advertised capacity exactly. */
class TlbGeometryTest
    : public testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(TlbGeometryTest, FillsToExactCapacity)
{
    const auto [sets, ways] = GetParam();
    Tlb tlb(sets, ways);
    // Insert far more than capacity; occupancy must settle at capacity.
    for (Vpn v = 0; v < sets * ways * 4; ++v)
        tlb.insert(v, v);
    EXPECT_EQ(tlb.occupancy(), sets * ways);
    EXPECT_EQ(tlb.stats().evictions, sets * ways * 4 - sets * ways);
}

INSTANTIATE_TEST_SUITE_P(
    TableOneGeometries, TlbGeometryTest,
    testing::Values(std::pair<std::size_t, std::size_t>{1, 32},
                    std::pair<std::size_t, std::size_t>{64, 32},
                    std::pair<std::size_t, std::size_t>{64, 16},
                    std::pair<std::size_t, std::size_t>{32, 16}));

} // namespace
} // namespace hdpat
