/**
 * @file
 * Fine-grained timing tests: the IOMMU ingress rate limit and the
 * GPM's fractional issue pacing — behaviours whose regressions would
 * silently distort every figure.
 */

#include <gtest/gtest.h>

#include "driver/runner.hh"
#include "driver/system.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

/** Stream of n accesses, all to the same local page. */
class RepeatWorkload : public Workload
{
  public:
    RepeatWorkload(std::size_t n, double ops_per_cycle,
                   int max_outstanding)
        : Workload({"REP", "repeat", 1, 1 << 20, ops_per_cycle,
                    max_outstanding}),
          n_(n)
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        buffer_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t num, std::size_t,
              std::uint64_t) const override
    {
        class Repeat : public AddressStream
        {
          public:
            Repeat(Addr a, std::size_t n) : addr_(a), left_(n) {}
            std::optional<Addr>
            next() override
            {
                if (left_ == 0)
                    return std::nullopt;
                --left_;
                return addr_;
            }

          private:
            Addr addr_;
            std::size_t left_;
        };
        const SliceView slice = sliceOf(buffer_, gpm, num);
        return std::make_unique<Repeat>(slice.base, n_);
    }

  private:
    std::size_t n_;
    BufferHandle buffer_;
};

TEST(TimingTest, IssueRatePacesThroughput)
{
    // 1000 L1-hit ops at 0.25 ops/cycle must take >= ~4000 cycles;
    // at 4 ops/cycle they finish in a few hundred.
    SystemConfig cfg = SystemConfig::mcm4();

    RepeatWorkload slow(1000, 0.25, 8);
    System slow_sys(cfg, TranslationPolicy::baseline());
    slow_sys.loadWorkload(slow, 0, 1);
    const RunResult slow_run = slow_sys.run();
    EXPECT_GE(slow_run.totalTicks, 3900u);
    EXPECT_LE(slow_run.totalTicks, 6000u);

    RepeatWorkload fast(1000, 4.0, 64);
    System fast_sys(cfg, TranslationPolicy::baseline());
    fast_sys.loadWorkload(fast, 0, 1);
    const RunResult fast_run = fast_sys.run();
    EXPECT_LT(fast_run.totalTicks, 1500u);
}

TEST(TimingTest, WindowLimitsOutstandingOps)
{
    // Window of 1 serializes: each op takes the full hierarchy+data
    // latency before the next issues; a window of 64 overlaps them.
    SystemConfig cfg = SystemConfig::mcm4();

    RepeatWorkload serial(200, 4.0, 1);
    System serial_sys(cfg, TranslationPolicy::baseline());
    serial_sys.loadWorkload(serial, 0, 1);
    const Tick serial_time = serial_sys.run().totalTicks;

    RepeatWorkload overlapped(200, 4.0, 64);
    System overlap_sys(cfg, TranslationPolicy::baseline());
    overlap_sys.loadWorkload(overlapped, 0, 1);
    const Tick overlap_time = overlap_sys.run().totalTicks;

    EXPECT_GT(serial_time, 3 * overlap_time);
}

TEST(TimingTest, IommuIngressRateLimitsHitServicing)
{
    // With an ingress rate of 1/cycle and a redirection table that
    // hits every request, N arrivals still need >= N cycles at the
    // ingress stage. Drive through a System with a shared hot page.
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    cfg.iommuIngressPerCycle = 1;

    RunSpec spec;
    spec.config = cfg;
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "KM";
    spec.opsPerGpm = 800;
    const RunResult slow = runOnce(spec);

    spec.config.iommuIngressPerCycle = 8;
    const RunResult fast = runOnce(spec);

    // A faster ingress can only help (or tie).
    EXPECT_LE(fast.totalTicks, slow.totalTicks);
}

TEST(TimingTest, WalkLatencyConfigIsHonored)
{
    // Double the IOMMU walk latency: a walk-bound run slows down.
    SystemConfig cfg = SystemConfig::mcm4();

    RunSpec spec;
    spec.config = cfg;
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "SPMV";
    spec.opsPerGpm = 1500;
    const RunResult normal = runOnce(spec);

    spec.config.iommuWalkLatency = 1000;
    const RunResult slow = runOnce(spec);
    EXPECT_GT(slow.totalTicks, normal.totalTicks);
    EXPECT_DOUBLE_EQ(slow.iommu.walkLatency.mean(), 1000.0);
}

} // namespace
} // namespace hdpat
