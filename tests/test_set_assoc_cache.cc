/**
 * @file
 * Unit tests for the data-cache tag array.
 */

#include <gtest/gtest.h>

#include "mem/set_assoc_cache.hh"

namespace hdpat
{
namespace
{

TEST(SetAssocCacheTest, MissThenHit)
{
    SetAssocCache cache(4096, 4, 64);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(SetAssocCacheTest, SameLineDifferentOffsetHits)
{
    SetAssocCache cache(4096, 4, 64);
    cache.access(0x2000);
    EXPECT_TRUE(cache.access(0x2000 + 63));
    EXPECT_FALSE(cache.access(0x2000 + 64)); // Next line.
}

TEST(SetAssocCacheTest, ContainsDoesNotFill)
{
    SetAssocCache cache(4096, 4, 64);
    EXPECT_FALSE(cache.contains(0x3000));
    EXPECT_FALSE(cache.access(0x3000)); // Still a miss: no side fill.
    EXPECT_TRUE(cache.contains(0x3000));
}

TEST(SetAssocCacheTest, GeometryDerivation)
{
    SetAssocCache cache(1u << 20, 16, 64); // 1 MiB, 16-way.
    EXPECT_EQ(cache.numWays(), 16u);
    EXPECT_EQ(cache.numSets(), (1u << 20) / 64 / 16);
    EXPECT_EQ(cache.lineBytes(), 64u);
}

TEST(SetAssocCacheTest, LruEvictsOldest)
{
    // Tiny direct-set cache to force conflicts deterministically:
    // 2 lines total, 2-way, 1 set.
    SetAssocCache cache(128, 2, 64);
    ASSERT_EQ(cache.numSets(), 1u);
    cache.access(0 * 64);
    cache.access(1 * 64);
    cache.access(0 * 64);     // Refresh line 0; line 1 is LRU.
    cache.access(2 * 64);     // Evicts line 1.
    EXPECT_TRUE(cache.contains(0 * 64));
    EXPECT_FALSE(cache.contains(1 * 64));
    EXPECT_TRUE(cache.contains(2 * 64));
}

TEST(SetAssocCacheTest, FlushEmptiesCache)
{
    SetAssocCache cache(4096, 4, 64);
    cache.access(0x100);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x100));
}

TEST(SetAssocCacheTest, StreamingHasNoReuseHits)
{
    SetAssocCache cache(8192, 4, 64);
    int hits = 0;
    for (Addr a = 0; a < 1u << 20; a += 64)
        hits += cache.access(a);
    EXPECT_EQ(hits, 0);
}

TEST(SetAssocCacheTest, WorkingSetWithinCapacityAllHits)
{
    SetAssocCache cache(1u << 16, 16, 64); // 64 KiB.
    // A 16 KiB working set fits comfortably.
    for (int pass = 0; pass < 3; ++pass) {
        int misses = 0;
        for (Addr a = 0; a < 1u << 14; a += 64)
            misses += !cache.access(a);
        if (pass > 0) {
            EXPECT_EQ(misses, 0) << "pass " << pass;
        }
    }
}

TEST(SetAssocCacheTest, BadGeometryIsFatal)
{
    EXPECT_EXIT(SetAssocCache(4096, 4, 60), testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(SetAssocCache(64, 4, 64), testing::ExitedWithCode(1),
                "too small");
    EXPECT_EXIT(SetAssocCache(4096, 0, 64), testing::ExitedWithCode(1),
                "way");
}

} // namespace
} // namespace hdpat
