/**
 * @file
 * Unit tests for the translation span tracer: sampling, span
 * lifecycle, key liveness, and ring-buffer wrap-around.
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/trace.hh"

namespace hdpat
{
namespace
{

TEST(TracerTest, SamplesOneInN)
{
    // Hash sampling: the decision is a pure function of
    // (owner, VPN, issue tick), so the sampled population is
    // identical across tracers and arrival orders, and roughly 1/N
    // of a large key set is kept.
    Tracer t(1 << 14, 4);
    std::uint64_t opened = 0;
    for (Vpn vpn = 0; vpn < 4096; ++vpn) {
        const bool in = t.begin(0, vpn, 10);
        opened += in ? 1 : 0;
        EXPECT_EQ(in, t.sampled(0, vpn, 10));
        if (in)
            t.end(0, vpn, 20);
    }
    EXPECT_EQ(t.opsSeen(), 4096u);
    EXPECT_EQ(t.spansStarted(), opened);
    // Mean 1024 of 4096; generous bounds, but enough to catch a
    // broken mixer (all-in or all-out).
    EXPECT_GT(opened, 512u);
    EXPECT_LT(opened, 2048u);
}

TEST(TracerTest, SamplingIsDeterministicAcrossOrderings)
{
    Tracer forward(64, 5);
    Tracer backward(64, 5);
    std::vector<bool> fwd, bwd(1024);
    for (Vpn vpn = 0; vpn < 1024; ++vpn)
        fwd.push_back(forward.sampled(3, vpn, 77));
    for (Vpn vpn = 1024; vpn-- > 0;)
        bwd[vpn] = backward.sampled(3, vpn, 77);
    EXPECT_EQ(fwd, bwd);
    // The decision keys on all three fields: a different owner or
    // issue tick reshuffles the population.
    std::uint64_t owner_diff = 0, tick_diff = 0;
    for (Vpn vpn = 0; vpn < 1024; ++vpn) {
        owner_diff += fwd[vpn] != forward.sampled(4, vpn, 77) ? 1 : 0;
        tick_diff += fwd[vpn] != forward.sampled(3, vpn, 78) ? 1 : 0;
    }
    EXPECT_GT(owner_diff, 0u);
    EXPECT_GT(tick_diff, 0u);
}

TEST(TracerTest, SampleEveryOpByDefault)
{
    Tracer t;
    EXPECT_EQ(t.sampleN(), 1u);
    EXPECT_TRUE(t.begin(2, 100, 0));
    EXPECT_TRUE(t.begin(2, 101, 0));
    EXPECT_EQ(t.spansStarted(), 2u);
}

TEST(TracerTest, DegenerateParamsClamped)
{
    Tracer t(0, 0); // capacity 0 -> 1, sample 0 -> 1.
    EXPECT_EQ(t.capacity(), 1u);
    EXPECT_EQ(t.sampleN(), 1u);
}

TEST(TracerTest, SpanLifecycle)
{
    Tracer t(64, 1);
    ASSERT_TRUE(t.begin(5, 42, 100));
    EXPECT_TRUE(t.active(5, 42));
    t.record(5, 42, 104, SpanEvent::L1TlbHit, 5);
    t.record(5, 42, 120, SpanEvent::DataAccess, 5, 7);
    t.end(5, 42, 150);
    EXPECT_FALSE(t.active(5, 42));
    EXPECT_EQ(t.spansCompleted(), 1u);

    // Issue + 2 records + Complete.
    ASSERT_EQ(t.size(), 4u);
    std::vector<TraceRecord> recs;
    t.forEachRecord([&](const TraceRecord &r) { recs.push_back(r); });
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].event, SpanEvent::Issue);
    EXPECT_EQ(recs[0].tick, 100u);
    EXPECT_EQ(recs[1].event, SpanEvent::L1TlbHit);
    EXPECT_EQ(recs[2].arg, 7u);
    EXPECT_EQ(recs[3].event, SpanEvent::Complete);
    EXPECT_EQ(recs[3].tick, 150u);
    for (const TraceRecord &r : recs) {
        EXPECT_EQ(r.span, 1u);
        EXPECT_EQ(r.owner, 5);
        EXPECT_EQ(r.vpn, 42u);
    }
}

TEST(TracerTest, RecordAgainstDeadKeyIsNoOp)
{
    Tracer t(64, 1);
    t.record(3, 9, 10, SpanEvent::NetSend, 3);
    t.end(3, 9, 20);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.spansCompleted(), 0u);
}

TEST(TracerTest, DuplicateKeyDoesNotOpenSecondSpan)
{
    Tracer t(64, 1);
    ASSERT_TRUE(t.begin(1, 7, 0));
    // Same (owner, VPN) while the first span is live: absorbed.
    EXPECT_FALSE(t.begin(1, 7, 5));
    EXPECT_EQ(t.spansStarted(), 1u);
    t.end(1, 7, 10);
    // After the span closes the key can be traced again.
    EXPECT_TRUE(t.begin(1, 7, 20));
    EXPECT_EQ(t.spansStarted(), 2u);
}

TEST(TracerTest, DistinctOwnersAreDistinctSpans)
{
    Tracer t(64, 1);
    EXPECT_TRUE(t.begin(1, 7, 0));
    EXPECT_TRUE(t.begin(2, 7, 0)); // Same VPN, different owner.
    EXPECT_EQ(t.spansStarted(), 2u);
}

TEST(TracerTest, RingWrapDropsOldestRecords)
{
    Tracer t(4, 1);
    ASSERT_TRUE(t.begin(0, 1, 0)); // Record 1: issue.
    for (Tick tick = 1; tick <= 5; ++tick)
        t.record(0, 1, tick, SpanEvent::NetSend, 0, tick);

    // 6 pushes into a 4-slot ring: 2 dropped, newest 4 kept.
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recordsDropped(), 2u);
    std::vector<Tick> ticks;
    t.forEachRecord(
        [&](const TraceRecord &r) { ticks.push_back(r.tick); });
    EXPECT_EQ(ticks, (std::vector<Tick>{2, 3, 4, 5}));
}

} // namespace
} // namespace hdpat
