/**
 * @file
 * Unit tests for the translation span tracer: sampling, span
 * lifecycle, key liveness, and ring-buffer wrap-around.
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/trace.hh"

namespace hdpat
{
namespace
{

TEST(TracerTest, SamplesOneInN)
{
    Tracer t(1024, 3);
    std::uint64_t opened = 0;
    for (Vpn vpn = 0; vpn < 9; ++vpn)
        opened += t.begin(0, vpn, 10) ? 1 : 0;
    EXPECT_EQ(t.opsSeen(), 9u);
    EXPECT_EQ(opened, 3u); // Ops 0, 3, 6.
    EXPECT_EQ(t.spansStarted(), 3u);
}

TEST(TracerTest, SampleEveryOpByDefault)
{
    Tracer t;
    EXPECT_EQ(t.sampleN(), 1u);
    EXPECT_TRUE(t.begin(2, 100, 0));
    EXPECT_TRUE(t.begin(2, 101, 0));
    EXPECT_EQ(t.spansStarted(), 2u);
}

TEST(TracerTest, DegenerateParamsClamped)
{
    Tracer t(0, 0); // capacity 0 -> 1, sample 0 -> 1.
    EXPECT_EQ(t.capacity(), 1u);
    EXPECT_EQ(t.sampleN(), 1u);
}

TEST(TracerTest, SpanLifecycle)
{
    Tracer t(64, 1);
    ASSERT_TRUE(t.begin(5, 42, 100));
    EXPECT_TRUE(t.active(5, 42));
    t.record(5, 42, 104, SpanEvent::L1TlbHit, 5);
    t.record(5, 42, 120, SpanEvent::DataAccess, 5, 7);
    t.end(5, 42, 150);
    EXPECT_FALSE(t.active(5, 42));
    EXPECT_EQ(t.spansCompleted(), 1u);

    // Issue + 2 records + Complete.
    ASSERT_EQ(t.size(), 4u);
    std::vector<TraceRecord> recs;
    t.forEachRecord([&](const TraceRecord &r) { recs.push_back(r); });
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].event, SpanEvent::Issue);
    EXPECT_EQ(recs[0].tick, 100u);
    EXPECT_EQ(recs[1].event, SpanEvent::L1TlbHit);
    EXPECT_EQ(recs[2].arg, 7u);
    EXPECT_EQ(recs[3].event, SpanEvent::Complete);
    EXPECT_EQ(recs[3].tick, 150u);
    for (const TraceRecord &r : recs) {
        EXPECT_EQ(r.span, 1u);
        EXPECT_EQ(r.owner, 5);
        EXPECT_EQ(r.vpn, 42u);
    }
}

TEST(TracerTest, RecordAgainstDeadKeyIsNoOp)
{
    Tracer t(64, 1);
    t.record(3, 9, 10, SpanEvent::NetSend, 3);
    t.end(3, 9, 20);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.spansCompleted(), 0u);
}

TEST(TracerTest, DuplicateKeyDoesNotOpenSecondSpan)
{
    Tracer t(64, 1);
    ASSERT_TRUE(t.begin(1, 7, 0));
    // Same (owner, VPN) while the first span is live: absorbed.
    EXPECT_FALSE(t.begin(1, 7, 5));
    EXPECT_EQ(t.spansStarted(), 1u);
    t.end(1, 7, 10);
    // After the span closes the key can be traced again.
    EXPECT_TRUE(t.begin(1, 7, 20));
    EXPECT_EQ(t.spansStarted(), 2u);
}

TEST(TracerTest, DistinctOwnersAreDistinctSpans)
{
    Tracer t(64, 1);
    EXPECT_TRUE(t.begin(1, 7, 0));
    EXPECT_TRUE(t.begin(2, 7, 0)); // Same VPN, different owner.
    EXPECT_EQ(t.spansStarted(), 2u);
}

TEST(TracerTest, RingWrapDropsOldestRecords)
{
    Tracer t(4, 1);
    ASSERT_TRUE(t.begin(0, 1, 0)); // Record 1: issue.
    for (Tick tick = 1; tick <= 5; ++tick)
        t.record(0, 1, tick, SpanEvent::NetSend, 0, tick);

    // 6 pushes into a 4-slot ring: 2 dropped, newest 4 kept.
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recordsDropped(), 2u);
    std::vector<Tick> ticks;
    t.forEachRecord(
        [&](const TraceRecord &r) { ticks.push_back(r.tick); });
    EXPECT_EQ(ticks, (std::vector<Tick>{2, 3, 4, 5}));
}

} // namespace
} // namespace hdpat
