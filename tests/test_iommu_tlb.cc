/**
 * @file
 * Unit tests for the Fig 19 conventional IOMMU TLB.
 */

#include <gtest/gtest.h>

#include "iommu/iommu_tlb.hh"

namespace hdpat
{
namespace
{

TEST(IommuTlbTest, EqualAreaSizing)
{
    // Fig 19: 512 entries (half the 1024-entry RT, since TLB entries
    // are ~2x larger), 16-way, and a small MSHR file.
    IommuTlb tlb(512, 8);
    EXPECT_EQ(tlb.tlb().capacity(), 512u);
    EXPECT_EQ(tlb.tlb().numWays(), 16u);
    EXPECT_EQ(tlb.mshrs().capacity(), 8u);
}

TEST(IommuTlbTest, FillThenLookup)
{
    IommuTlb tlb(512, 32);
    EXPECT_FALSE(tlb.lookup(9).has_value());
    tlb.fill(9, 90);
    ASSERT_TRUE(tlb.lookup(9).has_value());
    EXPECT_EQ(*tlb.lookup(9), 90u);
}

TEST(IommuTlbTest, MshrLimitBlocksConcurrency)
{
    IommuTlb tlb(512, 2);
    EXPECT_EQ(tlb.mshrs().registerMiss(1, [](Vpn, Pfn) {}),
              MshrFile::Outcome::Allocated);
    EXPECT_EQ(tlb.mshrs().registerMiss(2, [](Vpn, Pfn) {}),
              MshrFile::Outcome::Allocated);
    EXPECT_TRUE(tlb.mshrs().full());
    // The §IV-F complaint: request 3 stalls even though walkers may
    // be idle.
    EXPECT_EQ(tlb.mshrs().registerMiss(3, [](Vpn, Pfn) {}),
              MshrFile::Outcome::Full);
}

TEST(IommuTlbTest, PrefetchFloodEvictsDemandEntries)
{
    // The paper's argument for the RT: proactive fills thrash a small
    // TLB. Fill 512-entry TLB with a demand entry then flood it.
    IommuTlb tlb(512, 32);
    tlb.fill(1, 10);
    for (Vpn v = 1000; v < 1000 + 4096; ++v)
        tlb.fill(v, v);
    EXPECT_FALSE(tlb.lookup(1).has_value());
}

TEST(IommuTlbTest, TinyTlbStillWorks)
{
    IommuTlb tlb(8, 1);
    tlb.fill(3, 33);
    EXPECT_TRUE(tlb.lookup(3).has_value());
}

} // namespace
} // namespace hdpat
