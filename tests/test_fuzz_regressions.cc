/**
 * @file
 * Fuzzing infrastructure tests, in two halves:
 *
 * 1. Unit coverage of the fuzz library: FuzzCase serialise/parse
 *    round-trips, corpus-format error handling, the paste-ready C++
 *    literal printer, sampler determinism, and the greedy shrinker.
 * 2. Corpus replay: every committed `.fuzzcase` under
 *    HDPAT_FUZZ_CORPUS_DIR (tests/fuzz_corpus/) runs through the real
 *    fork-isolated harness and must pass all oracles -- these are the
 *    minimal reproducers of bugs this repo has already fixed, so a
 *    regression flips the corresponding file red.
 */

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_case.hh"
#include "fuzz/harness.hh"
#include "fuzz/sampler.hh"
#include "fuzz/shrinker.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

TEST(FuzzCaseTest, SerializeParseRoundTrips)
{
    Rng rng(1234);
    for (int i = 0; i < 50; ++i) {
        const FuzzCase c = sampleFuzzCase(rng);
        std::string error;
        const auto parsed = parseFuzzCase(c.serialize(), &error);
        ASSERT_TRUE(parsed.has_value()) << error;
        EXPECT_TRUE(*parsed == c) << c.serialize();
    }
}

TEST(FuzzCaseTest, ParseAcceptsCommentsAndDefaults)
{
    const auto c = parseFuzzCase("# a comment\n\nmeshWidth=3\n");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->meshWidth, 3);
    EXPECT_EQ(c->meshHeight, FuzzCase{}.meshHeight); // Default kept.
}

TEST(FuzzCaseTest, ParseRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseFuzzCase("notakey\n", &error).has_value());
    EXPECT_NE(error.find("key=value"), std::string::npos) << error;

    EXPECT_FALSE(
        parseFuzzCase("bogusField=1\n", &error).has_value());
    EXPECT_NE(error.find("bogusField"), std::string::npos) << error;

    EXPECT_FALSE(
        parseFuzzCase("meshWidth=banana\n", &error).has_value());
    EXPECT_NE(error.find("meshWidth"), std::string::npos) << error;

    EXPECT_FALSE(parseFuzzCase("meshWidth=3\nmeshWidth=4\n", &error)
                     .has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(FuzzCaseTest, CppLiteralListsOnlyNonDefaults)
{
    EXPECT_EQ(FuzzCase{}.toCppLiteral(), "FuzzCase c;\n");

    FuzzCase c;
    c.meshWidth = 3;
    c.workload = "PR";
    const std::string lit = c.toCppLiteral();
    EXPECT_NE(lit.find("c.meshWidth = 3;"), std::string::npos) << lit;
    EXPECT_NE(lit.find("c.workload = \"PR\";"), std::string::npos)
        << lit;
    EXPECT_EQ(lit.find("meshHeight"), std::string::npos) << lit;
}

TEST(FuzzCaseTest, FieldTableCoversEveryNumericField)
{
    // Guards the field table against a new FuzzCase member that was
    // not added to forEachNumericField: serialisation must mention
    // every name the accessors know, and the accessors must resolve
    // every listed name.
    FuzzCase c;
    const std::string text = c.serialize();
    for (const std::string &name : fuzzCaseFieldNames()) {
        EXPECT_NE(text.find(name + "="), std::string::npos) << name;
        EXPECT_NE(fuzzCaseField(c, name), nullptr) << name;
    }
    EXPECT_EQ(fuzzCaseField(c, "noSuchField"), nullptr);
}

TEST(FuzzCaseTest, ToSpecClampsNegativesForUnsignedFields)
{
    FuzzCase c;
    c.l2Sets = -5;
    c.pageShift = -1;
    const RunSpec spec = c.toSpec();
    // Negative values must become the degenerate 0 (and then fail
    // validation), never wrap to a huge allocation.
    EXPECT_EQ(spec.config.l2Tlb.sets, 0u);
    EXPECT_EQ(spec.config.pageShift, 0u);
    EXPECT_FALSE(validationErrors(spec).empty());
}

TEST(FuzzSamplerTest, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(sampleFuzzCase(a) == sampleFuzzCase(b));
}

TEST(FuzzSamplerTest, CoversTheConfigSpace)
{
    Rng rng(7);
    bool sawEvenMesh = false, sawRectangular = false;
    bool sawInvalid = false, sawValid = false;
    bool sawPeerMode[5] = {};
    for (int i = 0; i < 400; ++i) {
        const FuzzCase c = sampleFuzzCase(rng);
        sawEvenMesh |= c.meshWidth % 2 == 0 && c.meshWidth == c.meshHeight;
        sawRectangular |= c.meshWidth != c.meshHeight;
        if (c.peerMode >= 0 && c.peerMode < 5)
            sawPeerMode[c.peerMode] = true;
        const bool valid = validationErrors(c.toSpec()).empty();
        sawValid |= valid;
        sawInvalid |= !valid;
    }
    EXPECT_TRUE(sawEvenMesh);
    EXPECT_TRUE(sawRectangular);
    EXPECT_TRUE(sawValid);
    EXPECT_TRUE(sawInvalid);
    for (int m = 0; m < 5; ++m)
        EXPECT_TRUE(sawPeerMode[m]) << "peerMode " << m;
}

TEST(FuzzShrinkerTest, ReachesTheMinimalCase)
{
    // Synthetic failure: any case with a big mesh and prefetch on.
    // The shrinker must strip every other perturbation and walk the
    // failing fields down to the boundary.
    Rng rng(99);
    FuzzCase noisy = sampleFuzzCase(rng);
    noisy.meshWidth = 11;
    noisy.meshHeight = 9;
    noisy.prefetch = 1;
    const auto fails = [](const FuzzCase &c) {
        return c.meshWidth >= 9 && c.prefetch == 1;
    };
    ASSERT_TRUE(fails(noisy));

    std::size_t steps = 0;
    const FuzzCase shrunk = shrinkFuzzCase(noisy, fails, &steps);
    EXPECT_TRUE(fails(shrunk));
    EXPECT_GT(steps, 0u);
    EXPECT_EQ(shrunk.meshWidth, 9);       // Boundary, not 11.
    EXPECT_EQ(shrunk.prefetch, 1);        // Still required.
    EXPECT_EQ(shrunk.meshHeight, FuzzCase{}.meshHeight);
    EXPECT_EQ(shrunk.workload, FuzzCase{}.workload);
    // Every field not implicated in the failure is back at default.
    FuzzCase reference;
    reference.meshWidth = 9;
    reference.prefetch = 1;
    EXPECT_TRUE(shrunk == reference) << shrunk.toCppLiteral();
}

TEST(FuzzHarnessTest, PassesTheDefaultCase)
{
    FuzzCase c;
    c.opsPerGpm = 80; // Keep the three oracle runs quick.
    const FuzzOutcome outcome = runFuzzCase(c, 120);
    EXPECT_TRUE(outcome.ok()) << fuzzOutcomeKindName(outcome.kind)
                              << ": " << outcome.reason;
}

TEST(FuzzHarnessTest, PredictedInvalidCasePasses)
{
    FuzzCase c;
    c.meshWidth = 0; // Predictably invalid; fail-fast is the pass.
    const FuzzOutcome outcome = runFuzzCase(c, 120);
    EXPECT_TRUE(outcome.ok()) << fuzzOutcomeKindName(outcome.kind)
                              << ": " << outcome.reason;
}

// ---- Corpus replay -------------------------------------------------------

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    const std::filesystem::path dir = HDPAT_FUZZ_CORPUS_DIR;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".fuzzcase")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpusTest, CorpusIsNonEmptyAndParses)
{
    const std::vector<std::string> files = corpusFiles();
    ASSERT_GE(files.size(), 3u)
        << "regression corpus missing from " << HDPAT_FUZZ_CORPUS_DIR;
    for (const std::string &path : files) {
        std::string error;
        EXPECT_TRUE(loadFuzzCase(path, &error).has_value())
            << path << ": " << error;
    }
}

TEST(FuzzCorpusTest, EveryReproducerReplaysGreen)
{
    // Each reproducer must stay green under both event-queue
    // implementations: the bugs they pin were ordering-sensitive, so a
    // queue whose pop order drifted would resurface them here.
    for (const std::string &path : corpusFiles()) {
        std::string error;
        const auto c = loadFuzzCase(path, &error);
        ASSERT_TRUE(c.has_value()) << path << ": " << error;
        for (const std::int64_t heap_queue : {0, 1}) {
            SCOPED_TRACE(path + (heap_queue ? " [heap]" : " [calendar]"));
            FuzzCase variant = *c;
            variant.heapEventQueue = heap_queue;
            const FuzzOutcome outcome = runFuzzCase(variant, 180);
            EXPECT_TRUE(outcome.ok())
                << fuzzOutcomeKindName(outcome.kind) << ": "
                << outcome.reason;
        }
    }
}

} // namespace
} // namespace hdpat
