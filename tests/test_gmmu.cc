/**
 * @file
 * Unit tests for the per-GPM GMMU walker pool.
 */

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "gpm/gmmu.hh"

namespace hdpat
{
namespace
{

class GmmuTest : public testing::Test
{
  protected:
    GmmuTest() : pt_(12)
    {
        const std::array<TileId, 2> homes = {kSelf, kOther};
        buffer_ = pt_.allocate(64 * pt_.pageBytes(), homes);
    }

    Vpn localVpn() const { return pt_.vpnOf(buffer_.baseVa); }
    Vpn remoteVpn() const { return pt_.vpnOf(buffer_.baseVa) + 63; }

    static constexpr TileId kSelf = 1;
    static constexpr TileId kOther = 2;

    Engine engine_;
    GlobalPageTable pt_;
    BufferHandle buffer_;
};

TEST_F(GmmuTest, LocalWalkResolvesAfterLatency)
{
    Gmmu gmmu(engine_, pt_, kSelf, 8, 500);
    bool done = false;
    gmmu.requestWalk(localVpn(), [&](Vpn, std::optional<Pfn> pfn) {
        ASSERT_TRUE(pfn.has_value());
        EXPECT_EQ(*pfn, pt_.translate(localVpn())->pfn);
        EXPECT_EQ(engine_.now(), 500u);
        done = true;
    });
    engine_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(gmmu.stats().localHits, 1u);
}

TEST_F(GmmuTest, RemotePageMisses)
{
    Gmmu gmmu(engine_, pt_, kSelf, 8, 500);
    bool done = false;
    gmmu.requestWalk(remoteVpn(), [&](Vpn, std::optional<Pfn> pfn) {
        EXPECT_FALSE(pfn.has_value());
        done = true;
    });
    engine_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(gmmu.stats().misses, 1u);
}

TEST_F(GmmuTest, UnmappedVpnMisses)
{
    Gmmu gmmu(engine_, pt_, kSelf, 8, 500);
    bool done = false;
    gmmu.requestWalk(0xdeadbeef, [&](Vpn, std::optional<Pfn> pfn) {
        EXPECT_FALSE(pfn.has_value());
        done = true;
    });
    engine_.run();
    EXPECT_TRUE(done);
}

TEST_F(GmmuTest, WalkerPoolLimitsParallelism)
{
    Gmmu gmmu(engine_, pt_, kSelf, 2, 100);
    std::vector<Tick> completions;
    for (int i = 0; i < 6; ++i) {
        gmmu.requestWalk(localVpn(), [&](Vpn, std::optional<Pfn>) {
            completions.push_back(engine_.now());
        });
    }
    EXPECT_EQ(gmmu.queueDepth(), 4u); // 2 started, 4 queued.
    engine_.run();
    ASSERT_EQ(completions.size(), 6u);
    // 2 walkers, 100 cycles: waves at 100, 200, 300.
    EXPECT_EQ(completions[0], 100u);
    EXPECT_EQ(completions[1], 100u);
    EXPECT_EQ(completions[2], 200u);
    EXPECT_EQ(completions[3], 200u);
    EXPECT_EQ(completions[4], 300u);
    EXPECT_EQ(completions[5], 300u);
    EXPECT_GT(gmmu.stats().queueWait.max(), 0.0);
}

TEST_F(GmmuTest, StatsCountWalks)
{
    Gmmu gmmu(engine_, pt_, kSelf, 4, 10);
    gmmu.requestWalk(localVpn(), [](Vpn, std::optional<Pfn>) {});
    gmmu.requestWalk(remoteVpn(), [](Vpn, std::optional<Pfn>) {});
    engine_.run();
    EXPECT_EQ(gmmu.stats().walksRequested, 2u);
    EXPECT_EQ(gmmu.stats().walksCompleted, 2u);
}

TEST_F(GmmuTest, ZeroWalkersIsFatal)
{
    EXPECT_EXIT(Gmmu(engine_, pt_, kSelf, 0, 10),
                testing::ExitedWithCode(1), "walker");
}

} // namespace
} // namespace hdpat
