/**
 * @file
 * Unit tests for SystemConfig (Table I), the policy presets, and the
 * sensitivity-sweep registries.
 */

#include <gtest/gtest.h>

#include "config/gpu_presets.hh"
#include "config/system_config.hh"
#include "config/translation_policy.hh"

namespace hdpat
{
namespace
{

TEST(SystemConfigTest, TableOneDefaults)
{
    const SystemConfig cfg = SystemConfig::mi100();
    EXPECT_EQ(cfg.cusPerGpm, 32);
    EXPECT_EQ(cfg.l1Tlb.sets, 1u);
    EXPECT_EQ(cfg.l1Tlb.ways, 32u);
    EXPECT_EQ(cfg.l1Tlb.latency, 4u);
    EXPECT_EQ(cfg.l2Tlb.sets, 64u);
    EXPECT_EQ(cfg.l2Tlb.ways, 32u);
    EXPECT_EQ(cfg.l2Tlb.mshrs, 32u);
    EXPECT_EQ(cfg.l2Tlb.latency, 32u);
    EXPECT_EQ(cfg.lastLevelTlb.entries(), 1024u); // 64-set, 16-way.
    EXPECT_EQ(cfg.gmmuWalkers, 8u);
    EXPECT_EQ(cfg.gmmuWalkLatency, 500u); // 100 x 5 levels.
    EXPECT_EQ(cfg.iommuWalkers, 16u);
    EXPECT_EQ(cfg.iommuWalkLatency, 500u);
    EXPECT_EQ(cfg.redirectionTableEntries, 1024u);
    EXPECT_EQ(cfg.noc.linkLatency, 32u);
    EXPECT_DOUBLE_EQ(cfg.noc.bytesPerTick, 768.0);
    EXPECT_EQ(cfg.pageBytes(), 4096u);
    EXPECT_EQ(cfg.numGpms(), 48u);
}

TEST(SystemConfigTest, PresetsDiffer)
{
    EXPECT_GT(SystemConfig::h100().l2CacheBytes,
              SystemConfig::mi100().l2CacheBytes);
    EXPECT_GT(SystemConfig::h200().hbmBytesPerTick,
              SystemConfig::h100().hbmBytesPerTick);
    EXPECT_GT(SystemConfig::mi300().cusPerGpm,
              SystemConfig::mi100().cusPerGpm);
}

TEST(SystemConfigTest, Wafer7x12)
{
    const SystemConfig cfg = SystemConfig::mi100Wafer7x12();
    EXPECT_EQ(cfg.numGpms(), 83u);
}

TEST(SystemConfigTest, Mcm4)
{
    const SystemConfig cfg = SystemConfig::mcm4();
    EXPECT_EQ(cfg.numGpms(), 4u);
}

TEST(SystemConfigTest, ValidateRejectsBadConfigs)
{
    SystemConfig cfg;
    cfg.iommuWalkers = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "walker");

    SystemConfig cfg2;
    cfg2.pageShift = 40;
    EXPECT_EXIT(cfg2.validate(), testing::ExitedWithCode(1), "page");
}

TEST(SystemConfigTest, AllPresetsValidate)
{
    for (const SystemConfig &cfg :
         {SystemConfig::mi100(), SystemConfig::mi200(),
          SystemConfig::mi300(), SystemConfig::h100(),
          SystemConfig::h200(), SystemConfig::mi100Wafer7x12(),
          SystemConfig::mcm4()}) {
        EXPECT_TRUE(cfg.validationErrors().empty()) << cfg.name;
    }
}

TEST(SystemConfigTest, ValidationErrorsNameTheField)
{
    SystemConfig cfg;
    cfg.meshWidth = 0;
    cfg.pageShift = 11;
    cfg.issueWidth = 0;
    cfg.computeScale = -1.0;
    cfg.l2Tlb.sets = 0;
    cfg.l2Tlb.mshrs = 0;
    cfg.lastLevelTlb.ways = 0;
    const auto errors = cfg.validationErrors();
    const auto mentions = [&errors](const std::string &field) {
        for (const std::string &e : errors) {
            if (e.find(field) != std::string::npos)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(mentions("meshWidth"));
    EXPECT_TRUE(mentions("pageShift"));
    EXPECT_TRUE(mentions("issueWidth"));
    EXPECT_TRUE(mentions("computeScale"));
    EXPECT_TRUE(mentions("l2Tlb.sets"));
    EXPECT_TRUE(mentions("l2Tlb.mshrs"));
    EXPECT_TRUE(mentions("lastLevelTlb.ways"));
}

TEST(SystemConfigTest, SingleTileWaferIsRejected)
{
    SystemConfig cfg;
    cfg.meshWidth = 1;
    cfg.meshHeight = 1;
    const auto errors = cfg.validationErrors();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("no GPM"), std::string::npos)
        << errors[0];
}

TEST(SystemConfigTest, PageShiftBoundsAreInclusive)
{
    SystemConfig cfg;
    cfg.pageShift = 12;
    EXPECT_TRUE(cfg.validationErrors().empty());
    cfg.pageShift = 30;
    EXPECT_TRUE(cfg.validationErrors().empty());
    cfg.pageShift = 11;
    EXPECT_FALSE(cfg.validationErrors().empty());
    cfg.pageShift = 31;
    EXPECT_FALSE(cfg.validationErrors().empty());
}

TEST(SystemConfigTest, ZeroLastLevelMshrsStayLegal)
{
    // The Table I default (lastLevelTlb.mshrs = 0) means "no MSHR
    // bound" for the peer-filled level and must keep validating.
    const SystemConfig cfg = SystemConfig::mi100();
    ASSERT_EQ(cfg.lastLevelTlb.mshrs, 0u);
    EXPECT_TRUE(cfg.validationErrors().empty());
}

TEST(TranslationPolicyTest, ValidationCatchesDegenerateKnobs)
{
    TranslationPolicy p = TranslationPolicy::hdpat();
    EXPECT_TRUE(p.validationErrors().empty());
    p.numClusters = 0;
    p.concentricLayers = 0;
    p.prefetchDegree = 0;
    const auto errors = p.validationErrors();
    EXPECT_EQ(errors.size(), 3u);
}

TEST(GpuPresetsTest, GenerationSweepIsPaperOrder)
{
    const auto configs = gpuGenerationConfigs();
    ASSERT_EQ(configs.size(), 5u);
    EXPECT_EQ(configs[0].name, "MI100-7x7");
    EXPECT_EQ(configs[4].name, "H200-7x7");
}

TEST(GpuPresetsTest, PageSizeSweep)
{
    const auto sweep = pageSizeSweep();
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_EQ(sweep[0].pageShift, 12u);
    EXPECT_EQ(sweep[0].label, "4KB");
}

TEST(GpuPresetsTest, LookupByName)
{
    EXPECT_EQ(configByName("H100").name, "H100-7x7");
    EXPECT_EXIT(configByName("bogus"), testing::ExitedWithCode(1),
                "unknown");
}

TEST(TranslationPolicyTest, BaselineHasNothingEnabled)
{
    const TranslationPolicy p = TranslationPolicy::baseline();
    EXPECT_EQ(p.peerMode, PeerCachingMode::None);
    EXPECT_FALSE(p.redirectionTable);
    EXPECT_FALSE(p.prefetch);
    EXPECT_FALSE(p.pwQueueRevisit);
    EXPECT_FALSE(p.usesPeerCaching());
}

TEST(TranslationPolicyTest, HdpatEnablesAllMechanisms)
{
    const TranslationPolicy p = TranslationPolicy::hdpat();
    EXPECT_EQ(p.peerMode, PeerCachingMode::ClusterRotation);
    EXPECT_TRUE(p.redirectionTable);
    EXPECT_TRUE(p.prefetch);
    EXPECT_EQ(p.prefetchDegree, 4); // Paper's chosen granularity.
    EXPECT_TRUE(p.pwQueueRevisit);
    EXPECT_EQ(p.concentricLayers, 2); // Paper's default C.
}

TEST(TranslationPolicyTest, AblationPresetsAreIncremental)
{
    EXPECT_EQ(TranslationPolicy::clusterRotation().peerMode,
              PeerCachingMode::ClusterRotation);
    EXPECT_FALSE(TranslationPolicy::clusterRotation().redirectionTable);
    EXPECT_TRUE(TranslationPolicy::withRedirection().redirectionTable);
    EXPECT_FALSE(TranslationPolicy::withRedirection().prefetch);
    EXPECT_TRUE(TranslationPolicy::withPrefetch().prefetch);
    EXPECT_FALSE(TranslationPolicy::withPrefetch().redirectionTable);
}

TEST(TranslationPolicyTest, ComparisonBaselines)
{
    EXPECT_EQ(TranslationPolicy::transFw().walkMode,
              IommuWalkMode::ForwardToHome);
    EXPECT_TRUE(TranslationPolicy::valkyrie().neighborTlbProbe);
    EXPECT_TRUE(TranslationPolicy::barre().pwQueueRevisit);
    EXPECT_FALSE(TranslationPolicy::barre().usesPeerCaching());
}

TEST(TranslationPolicyTest, IommuTlbVariant)
{
    const TranslationPolicy p = TranslationPolicy::hdpatWithIommuTlb();
    EXPECT_TRUE(p.iommuTlbInsteadOfRt);
    EXPECT_FALSE(p.redirectionTable);
    EXPECT_TRUE(p.prefetch); // Everything else stays HDPAT.
}

} // namespace
} // namespace hdpat
