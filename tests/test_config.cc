/**
 * @file
 * Unit tests for SystemConfig (Table I), the policy presets, and the
 * sensitivity-sweep registries.
 */

#include <gtest/gtest.h>

#include "config/gpu_presets.hh"
#include "config/system_config.hh"
#include "config/translation_policy.hh"

namespace hdpat
{
namespace
{

TEST(SystemConfigTest, TableOneDefaults)
{
    const SystemConfig cfg = SystemConfig::mi100();
    EXPECT_EQ(cfg.cusPerGpm, 32);
    EXPECT_EQ(cfg.l1Tlb.sets, 1u);
    EXPECT_EQ(cfg.l1Tlb.ways, 32u);
    EXPECT_EQ(cfg.l1Tlb.latency, 4u);
    EXPECT_EQ(cfg.l2Tlb.sets, 64u);
    EXPECT_EQ(cfg.l2Tlb.ways, 32u);
    EXPECT_EQ(cfg.l2Tlb.mshrs, 32u);
    EXPECT_EQ(cfg.l2Tlb.latency, 32u);
    EXPECT_EQ(cfg.lastLevelTlb.entries(), 1024u); // 64-set, 16-way.
    EXPECT_EQ(cfg.gmmuWalkers, 8u);
    EXPECT_EQ(cfg.gmmuWalkLatency, 500u); // 100 x 5 levels.
    EXPECT_EQ(cfg.iommuWalkers, 16u);
    EXPECT_EQ(cfg.iommuWalkLatency, 500u);
    EXPECT_EQ(cfg.redirectionTableEntries, 1024u);
    EXPECT_EQ(cfg.noc.linkLatency, 32u);
    EXPECT_DOUBLE_EQ(cfg.noc.bytesPerTick, 768.0);
    EXPECT_EQ(cfg.pageBytes(), 4096u);
    EXPECT_EQ(cfg.numGpms(), 48u);
}

TEST(SystemConfigTest, PresetsDiffer)
{
    EXPECT_GT(SystemConfig::h100().l2CacheBytes,
              SystemConfig::mi100().l2CacheBytes);
    EXPECT_GT(SystemConfig::h200().hbmBytesPerTick,
              SystemConfig::h100().hbmBytesPerTick);
    EXPECT_GT(SystemConfig::mi300().cusPerGpm,
              SystemConfig::mi100().cusPerGpm);
}

TEST(SystemConfigTest, Wafer7x12)
{
    const SystemConfig cfg = SystemConfig::mi100Wafer7x12();
    EXPECT_EQ(cfg.numGpms(), 83u);
}

TEST(SystemConfigTest, Mcm4)
{
    const SystemConfig cfg = SystemConfig::mcm4();
    EXPECT_EQ(cfg.numGpms(), 4u);
}

TEST(SystemConfigTest, ValidateRejectsBadConfigs)
{
    SystemConfig cfg;
    cfg.iommuWalkers = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "walker");

    SystemConfig cfg2;
    cfg2.pageShift = 40;
    EXPECT_EXIT(cfg2.validate(), testing::ExitedWithCode(1), "page");
}

TEST(GpuPresetsTest, GenerationSweepIsPaperOrder)
{
    const auto configs = gpuGenerationConfigs();
    ASSERT_EQ(configs.size(), 5u);
    EXPECT_EQ(configs[0].name, "MI100-7x7");
    EXPECT_EQ(configs[4].name, "H200-7x7");
}

TEST(GpuPresetsTest, PageSizeSweep)
{
    const auto sweep = pageSizeSweep();
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_EQ(sweep[0].pageShift, 12u);
    EXPECT_EQ(sweep[0].label, "4KB");
}

TEST(GpuPresetsTest, LookupByName)
{
    EXPECT_EQ(configByName("H100").name, "H100-7x7");
    EXPECT_EXIT(configByName("bogus"), testing::ExitedWithCode(1),
                "unknown");
}

TEST(TranslationPolicyTest, BaselineHasNothingEnabled)
{
    const TranslationPolicy p = TranslationPolicy::baseline();
    EXPECT_EQ(p.peerMode, PeerCachingMode::None);
    EXPECT_FALSE(p.redirectionTable);
    EXPECT_FALSE(p.prefetch);
    EXPECT_FALSE(p.pwQueueRevisit);
    EXPECT_FALSE(p.usesPeerCaching());
}

TEST(TranslationPolicyTest, HdpatEnablesAllMechanisms)
{
    const TranslationPolicy p = TranslationPolicy::hdpat();
    EXPECT_EQ(p.peerMode, PeerCachingMode::ClusterRotation);
    EXPECT_TRUE(p.redirectionTable);
    EXPECT_TRUE(p.prefetch);
    EXPECT_EQ(p.prefetchDegree, 4); // Paper's chosen granularity.
    EXPECT_TRUE(p.pwQueueRevisit);
    EXPECT_EQ(p.concentricLayers, 2); // Paper's default C.
}

TEST(TranslationPolicyTest, AblationPresetsAreIncremental)
{
    EXPECT_EQ(TranslationPolicy::clusterRotation().peerMode,
              PeerCachingMode::ClusterRotation);
    EXPECT_FALSE(TranslationPolicy::clusterRotation().redirectionTable);
    EXPECT_TRUE(TranslationPolicy::withRedirection().redirectionTable);
    EXPECT_FALSE(TranslationPolicy::withRedirection().prefetch);
    EXPECT_TRUE(TranslationPolicy::withPrefetch().prefetch);
    EXPECT_FALSE(TranslationPolicy::withPrefetch().redirectionTable);
}

TEST(TranslationPolicyTest, ComparisonBaselines)
{
    EXPECT_EQ(TranslationPolicy::transFw().walkMode,
              IommuWalkMode::ForwardToHome);
    EXPECT_TRUE(TranslationPolicy::valkyrie().neighborTlbProbe);
    EXPECT_TRUE(TranslationPolicy::barre().pwQueueRevisit);
    EXPECT_FALSE(TranslationPolicy::barre().usesPeerCaching());
}

TEST(TranslationPolicyTest, IommuTlbVariant)
{
    const TranslationPolicy p = TranslationPolicy::hdpatWithIommuTlb();
    EXPECT_TRUE(p.iommuTlbInsteadOfRt);
    EXPECT_FALSE(p.redirectionTable);
    EXPECT_TRUE(p.prefetch); // Everything else stays HDPAT.
}

} // namespace
} // namespace hdpat
