/**
 * @file
 * Golden tests for the hdpat_diff tool: identical dumps produce an
 * empty diff (exit 0), a single perturbed counter or histogram bucket
 * is localized to its section and metric name (exit 1), --ignore
 * masks a whole section, and two real runs of the same spec diff
 * clean end to end. The binary path arrives via the HDPAT_DIFF_BIN
 * compile definition (set only when the bench tree is built); without
 * it the tests skip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "driver/runner.hh"

namespace hdpat
{
namespace
{

#ifdef HDPAT_DIFF_BIN

struct DiffResult
{
    int exitCode = -1;
    std::string output;
};

DiffResult
runDiff(const std::string &args)
{
    const std::string cmd =
        std::string(HDPAT_DIFF_BIN) + " " + args + " 2>&1";
    FILE *pipe = ::popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    DiffResult r;
    if (pipe == nullptr)
        return r;
    char buf[512];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr)
        r.output += buf;
    const int status = ::pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::filesystem::path
writeTemp(const std::string &name, const std::string &json)
{
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / name;
    std::ofstream out(path);
    out << json;
    return path;
}

/** A miniature but schema-shaped metrics dump. */
std::string
dump(std::uint64_t walks, std::uint64_t bucket1)
{
    return std::string("{\n"
                       "  \"schema\": \"hdpat-metrics-v3\",\n"
                       "  \"run\": {\"policy\": \"hdpat\"},\n"
                       "  \"counters\": {\n"
                       "    \"engine.events_scheduled\": 100,\n"
                       "    \"iommu.walks_completed\": ") +
           std::to_string(walks) +
           "\n  },\n"
           "  \"histograms\": {\n"
           "    \"noc.hops\": {\"buckets\": [4, " +
           std::to_string(bucket1) +
           ", 9]}\n"
           "  }\n"
           "}\n";
}

TEST(HdpatDiffTest, IdenticalDumpsDiffClean)
{
    const auto a = writeTemp("hdpat-diff-a.json", dump(42, 7));
    const auto b = writeTemp("hdpat-diff-b.json", dump(42, 7));
    const DiffResult r =
        runDiff(a.string() + " " + b.string());
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("identical"), std::string::npos)
        << r.output;
    std::filesystem::remove(a);
    std::filesystem::remove(b);
}

TEST(HdpatDiffTest, PerturbedCounterIsLocalized)
{
    const auto a = writeTemp("hdpat-diff-a.json", dump(42, 7));
    const auto b = writeTemp("hdpat-diff-b.json", dump(43, 7));
    const DiffResult r =
        runDiff(a.string() + " " + b.string());
    EXPECT_EQ(r.exitCode, 1) << r.output;
    // Section and metric name, then both values.
    EXPECT_NE(r.output.find("counters.iommu.walks_completed"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("42"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("43"), std::string::npos) << r.output;
    // Nothing else diverges.
    EXPECT_EQ(r.output.find("engine.events_scheduled"),
              std::string::npos)
        << r.output;
    EXPECT_EQ(r.output.find("noc.hops"), std::string::npos)
        << r.output;
    std::filesystem::remove(a);
    std::filesystem::remove(b);
}

TEST(HdpatDiffTest, PerturbedHistogramBucketIsLocalized)
{
    const auto a = writeTemp("hdpat-diff-a.json", dump(42, 7));
    const auto b = writeTemp("hdpat-diff-b.json", dump(42, 8));
    const DiffResult r =
        runDiff(a.string() + " " + b.string());
    EXPECT_EQ(r.exitCode, 1) << r.output;
    EXPECT_NE(r.output.find("histograms.noc.hops.buckets[1]"),
              std::string::npos)
        << r.output;
    EXPECT_EQ(r.output.find("walks_completed"), std::string::npos)
        << r.output;
    std::filesystem::remove(a);
    std::filesystem::remove(b);
}

TEST(HdpatDiffTest, IgnoreMasksAWholeSection)
{
    const auto a = writeTemp("hdpat-diff-a.json", dump(42, 7));
    const auto b = writeTemp("hdpat-diff-b.json", dump(43, 7));
    const DiffResult r = runDiff("--ignore counters " + a.string() +
                                 " " + b.string());
    EXPECT_EQ(r.exitCode, 0) << r.output;
    std::filesystem::remove(a);
    std::filesystem::remove(b);
}

TEST(HdpatDiffTest, UsageErrorsExitTwo)
{
    const DiffResult r = runDiff("only-one-operand.json");
    EXPECT_EQ(r.exitCode, 2) << r.output;
}

TEST(HdpatDiffTest, RealDumpsOfTheSameSpecDiffClean)
{
    // End-to-end: two identical runs export v3 dumps (backpressure
    // section included) that must be byte-equal in content -- the
    // same check CI runs across serial-vs-parallel batches.
    const auto jsonPath = [](const char *name) {
        return (std::filesystem::temp_directory_path() / name)
            .string();
    };
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "diff-5x5";
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 200;
    spec.seed = 0x5eed;
    spec.obs = ObsOptions{};
    spec.obs.backpressure = true;
    spec.obs.heartbeatInterval = 0;
    spec.obs.metricsJsonPath = jsonPath("hdpat-diff-run-a.json");
    runOnce(spec);
    spec.obs.metricsJsonPath = jsonPath("hdpat-diff-run-b.json");
    runOnce(spec);

    const DiffResult r = runDiff(jsonPath("hdpat-diff-run-a.json") +
                                 " " +
                                 jsonPath("hdpat-diff-run-b.json"));
    EXPECT_EQ(r.exitCode, 0) << r.output;
    std::filesystem::remove(jsonPath("hdpat-diff-run-a.json"));
    std::filesystem::remove(jsonPath("hdpat-diff-run-b.json"));
}

#else // !HDPAT_DIFF_BIN

TEST(HdpatDiffTest, SkippedWithoutBenchTree)
{
    GTEST_SKIP() << "hdpat_diff is part of the bench tree; rebuild "
                    "with HDPAT_BUILD_BENCH=ON to run these tests";
}

#endif

} // namespace
} // namespace hdpat
