/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace hdpat
{
namespace
{

TEST(SummaryStatTest, EmptyIsZero)
{
    SummaryStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(SummaryStatTest, TracksMoments)
{
    SummaryStat s;
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 15.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryStatTest, MergeCombines)
{
    SummaryStat a, b;
    a.add(1.0);
    a.add(3.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);

    SummaryStat empty;
    a.merge(empty); // No-op.
    EXPECT_EQ(a.count(), 3u);
    empty.merge(a); // Adopts.
    EXPECT_EQ(empty.count(), 3u);
}

TEST(SummaryStatTest, ResetClears)
{
    SummaryStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryStatTest, StddevKnownValues)
{
    // Classic example: {2,4,4,4,5,5,7,9} has population stddev 2.
    SummaryStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(SummaryStatTest, StddevDegenerateCases)
{
    SummaryStat empty;
    EXPECT_EQ(empty.variance(), 0.0);
    EXPECT_EQ(empty.stddev(), 0.0);

    SummaryStat one;
    one.add(42.0);
    EXPECT_EQ(one.stddev(), 0.0);

    SummaryStat constant;
    for (int i = 0; i < 100; ++i)
        constant.add(3.5);
    EXPECT_NEAR(constant.stddev(), 0.0, 1e-12);
}

TEST(SummaryStatTest, MergeMatchesSingleStream)
{
    // Merging partial summaries must give the same moments as feeding
    // every sample into one summary.
    const std::vector<double> samples = {1.0,  5.0,  2.5, 100.0, 7.0,
                                         -3.0, 12.0, 0.5, 81.0,  4.0};
    SummaryStat whole;
    for (double v : samples)
        whole.add(v);

    SummaryStat left, right;
    for (std::size_t i = 0; i < samples.size(); ++i)
        (i < 4 ? left : right).add(samples[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);

    // Merging into an empty summary adopts the other side's moments.
    SummaryStat adopted;
    adopted.merge(whole);
    EXPECT_NEAR(adopted.stddev(), whole.stddev(), 1e-12);
}

TEST(Log2HistogramTest, BucketBoundaries)
{
    // Bucket 0 holds value 0; bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketHigh(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketHigh(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketLow(3), 4u);
    EXPECT_EQ(Log2Histogram::bucketHigh(3), 7u);
}

TEST(Log2HistogramTest, AddRoutesToRightBucket)
{
    Log2Histogram h;
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(7);
    h.add(8);
    EXPECT_EQ(h.bucket(0), 1u); // {0}
    EXPECT_EQ(h.bucket(1), 1u); // {1}
    EXPECT_EQ(h.bucket(2), 2u); // {2, 3}
    EXPECT_EQ(h.bucket(3), 2u); // {4, 7}
    EXPECT_EQ(h.bucket(4), 1u); // {8}
    EXPECT_EQ(h.totalCount(), 7u);
}

TEST(Log2HistogramTest, WeightedAdd)
{
    Log2Histogram h;
    h.add(5, 10);
    EXPECT_EQ(h.bucket(3), 10u);
    EXPECT_EQ(h.totalCount(), 10u);
}

TEST(Log2HistogramTest, MergeSumsBuckets)
{
    Log2Histogram a, b;
    a.add(1);
    b.add(1);
    b.add(1024);
    a.merge(b);
    EXPECT_EQ(a.bucket(1), 2u);
    EXPECT_EQ(a.bucket(11), 1u);
    EXPECT_EQ(a.totalCount(), 3u);
}

TEST(Log2HistogramTest, FractionAtOrBelow)
{
    Log2Histogram h;
    for (int i = 0; i < 50; ++i)
        h.add(1);
    for (int i = 0; i < 50; ++i)
        h.add(1000);
    EXPECT_NEAR(h.fractionAtOrBelow(1), 0.5, 0.01);
    EXPECT_NEAR(h.fractionAtOrBelow(1023), 1.0, 0.01);
    EXPECT_EQ(h.fractionAtOrBelow(0), 0.0);
}

TEST(Log2HistogramTest, Quantile)
{
    Log2Histogram h;
    EXPECT_EQ(h.quantile(0.5), 0u); // Empty histogram.
    for (int i = 0; i < 90; ++i)
        h.add(2);
    for (int i = 0; i < 10; ++i)
        h.add(100000);
    EXPECT_LE(h.quantile(0.5), 3u);
    EXPECT_GT(h.quantile(0.99), 1000u);
}

TEST(Log2HistogramTest, QuantileExtremes)
{
    Log2Histogram h;
    // Empty: every quantile is 0.
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);

    h.add(0);
    h.add(6);
    h.add(1000);
    // q=0 lands in the first populated bucket, q=1 in the last.
    EXPECT_EQ(h.quantile(0.0), Log2Histogram::bucketHigh(0));
    EXPECT_EQ(h.quantile(1.0), Log2Histogram::bucketHigh(10));
}

TEST(Log2HistogramTest, QuantileSingleBucket)
{
    Log2Histogram h;
    for (int i = 0; i < 10; ++i)
        h.add(5); // All samples in bucket 3 ([4, 7]).
    const std::uint64_t high = Log2Histogram::bucketHigh(3);
    EXPECT_EQ(h.quantile(0.0), high);
    EXPECT_EQ(h.quantile(0.5), high);
    EXPECT_EQ(h.quantile(1.0), high);
}

TEST(Log2HistogramTest, FractionAtOrBelowEmpty)
{
    Log2Histogram h;
    EXPECT_EQ(h.fractionAtOrBelow(0), 0.0);
    EXPECT_EQ(h.fractionAtOrBelow(1000000), 0.0);
}

TEST(TimeSeriesTest, WindowsAggregate)
{
    TimeSeries ts(100);
    ts.add(10, 1.0);
    ts.add(20, 2.0);
    ts.add(150, 5.0);
    ts.add(199, 3.0);

    ASSERT_EQ(ts.windows(), 2u);
    EXPECT_DOUBLE_EQ(ts.windowSum(0), 3.0);
    EXPECT_EQ(ts.windowCount(0), 2u);
    EXPECT_DOUBLE_EQ(ts.windowMax(0), 2.0);
    EXPECT_DOUBLE_EQ(ts.windowSum(1), 8.0);
    EXPECT_DOUBLE_EQ(ts.windowMax(1), 5.0);
    EXPECT_DOUBLE_EQ(ts.windowMean(1), 4.0);
}

TEST(TimeSeriesTest, OutOfRangeWindowsAreZero)
{
    TimeSeries ts(100);
    ts.add(5, 1.0);
    EXPECT_DOUBLE_EQ(ts.windowSum(7), 0.0);
    EXPECT_EQ(ts.windowCount(7), 0u);
    EXPECT_DOUBLE_EQ(ts.windowMean(7), 0.0);
}

TEST(TimeSeriesTest, ExactWindowBoundaries)
{
    TimeSeries ts(100);
    ts.add(99, 1.0);  // Last tick of window 0.
    ts.add(100, 2.0); // First tick of window 1.
    ts.add(200, 3.0); // First tick of window 2.

    ASSERT_EQ(ts.windows(), 3u);
    EXPECT_EQ(ts.windowCount(0), 1u);
    EXPECT_DOUBLE_EQ(ts.windowSum(0), 1.0);
    EXPECT_EQ(ts.windowCount(1), 1u);
    EXPECT_DOUBLE_EQ(ts.windowSum(1), 2.0);
    EXPECT_EQ(ts.windowCount(2), 1u);
    EXPECT_DOUBLE_EQ(ts.windowSum(2), 3.0);
}

TEST(TimeSeriesTest, TickZeroLandsInWindowZero)
{
    TimeSeries ts(50);
    ts.add(0, 7.0);
    ASSERT_EQ(ts.windows(), 1u);
    EXPECT_DOUBLE_EQ(ts.windowSum(0), 7.0);
    EXPECT_DOUBLE_EQ(ts.windowMax(0), 7.0);
}

TEST(TimeSeriesTest, MaxTracksFirstSample)
{
    TimeSeries ts(10);
    ts.add(0, -5.0);
    EXPECT_DOUBLE_EQ(ts.windowMax(0), -5.0);
    ts.add(1, -7.0);
    EXPECT_DOUBLE_EQ(ts.windowMax(0), -5.0);
}

TEST(GeomeanTest, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-9);
}

TEST(GeomeanTest, NonPositivePanics)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "non-positive");
}

} // namespace
} // namespace hdpat
