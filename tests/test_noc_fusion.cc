/**
 * @file
 * NoC delivery fusion must be a pure host-side scheduling transform:
 * folding an arrival's observer companions (auditor delivered-count,
 * tracer NetArrive record) into the arrival event may change how many
 * events the engine schedules, but never any simulated result.
 *
 * The contract, tested here end to end through runOnce():
 *   - without observers, fused and unfused runs produce bitwise
 *     identical metrics JSON (there is nothing to fuse, so the event
 *     stream is the same object);
 *   - with the auditor attached, every sim-visible metric stays
 *     identical while engine.events_scheduled drops strictly --
 *     that drop is the whole point of the optimization;
 *   - spatial observation forces the per-companion shape regardless
 *     of the flag, so heatmap CSVs and the full metrics dump
 *     (engine counters included) are identical either way.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "driver/runner.hh"
#include "obs/json_reader.hh"

namespace hdpat
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** A quiet, env-independent spec (ctest exports HDPAT_AUDIT=1; the
 *  fusion comparisons pick observers explicitly instead). */
RunSpec
baseSpec(const SystemConfig &cfg)
{
    RunSpec spec;
    spec.config = cfg;
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 300;
    spec.obs = ObsOptions{};
    spec.obs.heartbeatInterval = 0;
    return spec;
}

/** Run @p spec with the fusion flag set, dumping metrics to @p path. */
RunResult
runWithFusion(RunSpec spec, bool fuse, const std::string &path)
{
    spec.obs.nocFuse = fuse;
    spec.obs.metricsJsonPath = path;
    return runOnce(spec);
}

/**
 * Flatten a parsed metrics document to dotted-path -> printed-value
 * rows, so two documents compare structurally with a key filter.
 */
void
flattenJson(const JsonValue &v, const std::string &prefix,
            std::vector<std::pair<std::string, std::string>> &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Object:
        for (const auto &[key, child] : v.members)
            flattenJson(child, prefix + "/" + key, out);
        return;
      case JsonValue::Kind::Array:
        for (std::size_t i = 0; i < v.elements.size(); ++i)
            flattenJson(v.elements[i],
                        prefix + "/" + std::to_string(i), out);
        return;
      default: {
        std::ostringstream os;
        os.precision(17);
        if (v.isNumber())
            os << v.number;
        else if (v.isString())
            os << v.str;
        else if (v.kind == JsonValue::Kind::Bool)
            os << (v.boolean ? "true" : "false");
        else
            os << "null";
        out.emplace_back(prefix, os.str());
      }
    }
}

std::vector<std::pair<std::string, std::string>>
flattenedWithoutEngineRows(const std::string &json_path)
{
    const JsonValue doc = parseJsonFileOrDie(json_path);
    std::vector<std::pair<std::string, std::string>> rows;
    flattenJson(doc, "", rows);
    std::erase_if(rows, [](const auto &row) {
        return row.first.find("/engine.") != std::string::npos;
    });
    return rows;
}

TEST(NocFusionDifferential, UnobservedRunsAreBitwiseIdentical)
{
    // Fig 14 shape (7x7 MI100 wafer) and Fig 22 shape (7x12 wafer):
    // with no observer attached there are no companion events, so the
    // flag must not change a single exported byte.
    for (const SystemConfig &cfg :
         {SystemConfig::mi100(), SystemConfig::mi100Wafer7x12()}) {
        const std::string dir = ::testing::TempDir();
        const std::string fused_path =
            dir + "fusion-on-" + cfg.name + ".json";
        const std::string unfused_path =
            dir + "fusion-off-" + cfg.name + ".json";

        const RunResult fused =
            runWithFusion(baseSpec(cfg), true, fused_path);
        const RunResult unfused =
            runWithFusion(baseSpec(cfg), false, unfused_path);

        EXPECT_EQ(fused.totalTicks, unfused.totalTicks) << cfg.name;
        EXPECT_EQ(fused.opsTotal, unfused.opsTotal) << cfg.name;
        EXPECT_EQ(fused.noc.packets, unfused.noc.packets) << cfg.name;
        EXPECT_EQ(readFile(fused_path), readFile(unfused_path))
            << cfg.name << ": unobserved runs must not depend on the "
            << "fusion flag";
    }
}

TEST(NocFusionDifferential, AuditedRunsDifferOnlyInEngineLoad)
{
    const std::string dir = ::testing::TempDir();
    const std::string fused_path = dir + "audited-fused.json";
    const std::string unfused_path = dir + "audited-unfused.json";

    RunSpec spec = baseSpec(SystemConfig::mi100());
    spec.obs.audit = true;
    const RunResult fused = runWithFusion(spec, true, fused_path);
    const RunResult unfused = runWithFusion(spec, false, unfused_path);

    // Every sim-visible number -- counters, gauges, summaries,
    // histograms, run metadata -- must match; only the engine.* load
    // counters (events scheduled, pending high-water) may move.
    EXPECT_EQ(flattenedWithoutEngineRows(fused_path),
              flattenedWithoutEngineRows(unfused_path));
    EXPECT_EQ(fused.auditRetireCensusHash, unfused.auditRetireCensusHash);

    // And the optimization must actually optimize: fusing the
    // auditor's delivered-count into the arrival event schedules
    // strictly fewer events.
    const auto events = [](const std::string &path) {
        return parseJsonFileOrDie(path)
            .at("counters")
            .at("engine.events_scheduled")
            .asUint();
    };
    EXPECT_LT(events(fused_path), events(unfused_path));
}

TEST(NocFusionDifferential, SpatialObservationForcesUnfusedShape)
{
    const std::string dir = ::testing::TempDir();
    const std::string fused_path = dir + "spatial-fused.json";
    const std::string unfused_path = dir + "spatial-unfused.json";
    const std::string fused_csv = dir + "spatial-fused.csv";
    const std::string unfused_csv = dir + "spatial-unfused.csv";

    RunSpec spec = baseSpec(SystemConfig::mi100());
    spec.obs.audit = true;
    spec.obs.spatialWindow = 50000;
    spec.obs.spatialCsvPath = fused_csv;
    runWithFusion(spec, true, fused_path);
    spec.obs.spatialCsvPath = unfused_csv;
    runWithFusion(spec, false, unfused_path);

    // Spatial collection disables fusion no matter the flag, so the
    // two runs execute the exact same event stream: heatmap CSVs and
    // the full metrics dump (engine counters included) match bytewise.
    EXPECT_EQ(readFile(fused_csv), readFile(unfused_csv));
    EXPECT_EQ(readFile(fused_path), readFile(unfused_path));
}

} // namespace
} // namespace hdpat
