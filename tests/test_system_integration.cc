/**
 * @file
 * End-to-end integration tests: full systems running real workloads,
 * cross-component invariants, determinism, and the headline result
 * (HDPAT beats the centralized baseline on translation-bound work).
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "driver/runner.hh"
#include "driver/system.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

RunSpec
smallSpec(const std::string &workload, const TranslationPolicy &pol)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.config.meshWidth = 5;
    spec.config.meshHeight = 5;
    spec.config.name = "itest-5x5";
    spec.policy = pol;
    spec.workload = workload;
    spec.opsPerGpm = 1500;
    return spec;
}

TEST(SystemIntegrationTest, BaselineRunCompletes)
{
    const RunResult r =
        runOnce(smallSpec("SPMV", TranslationPolicy::baseline()));
    EXPECT_GT(r.totalTicks, 0u);
    EXPECT_EQ(r.opsTotal, 1500u * 24u);
    EXPECT_EQ(r.gpmFinish.size(), 24u);
    EXPECT_GT(r.remoteOps, 0u);
    EXPECT_GT(r.iommu.walksCompleted, 0u);
}

TEST(SystemIntegrationTest, EveryResolutionIsClassifiedOnce)
{
    for (const auto &pol :
         {TranslationPolicy::baseline(), TranslationPolicy::hdpat(),
          TranslationPolicy::transFw()}) {
        const RunResult r = runOnce(smallSpec("SPMV", pol));
        std::uint64_t classified = 0;
        for (std::uint64_t c : r.sourceCounts)
            classified += c;
        EXPECT_EQ(classified, r.remoteResolutions) << pol.name;
    }
}

TEST(SystemIntegrationTest, DeterministicForFixedSeed)
{
    const RunResult a =
        runOnce(smallSpec("PR", TranslationPolicy::hdpat()));
    const RunResult b =
        runOnce(smallSpec("PR", TranslationPolicy::hdpat()));
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.iommu.walksCompleted, b.iommu.walksCompleted);
    EXPECT_EQ(a.noc.packets, b.noc.packets);
    EXPECT_EQ(a.sourceCounts, b.sourceCounts);
}

TEST(SystemIntegrationTest, SeedChangesTheRun)
{
    RunSpec spec = smallSpec("SPMV", TranslationPolicy::baseline());
    const RunResult a = runOnce(spec);
    spec.seed = 999;
    const RunResult b = runOnce(spec);
    EXPECT_NE(a.totalTicks, b.totalTicks);
}

TEST(SystemIntegrationTest, HdpatBeatsBaselineOnTranslationBoundWork)
{
    const RunResult base =
        runOnce(smallSpec("SPMV", TranslationPolicy::baseline()));
    const RunResult hdpat =
        runOnce(smallSpec("SPMV", TranslationPolicy::hdpat()));
    EXPECT_GT(speedupOver(base, hdpat), 1.1);
    EXPECT_LT(hdpat.iommu.walksCompleted, base.iommu.walksCompleted);
    EXPECT_GT(hdpat.offloadedFraction(), 0.1);
    // Round-trip time improves (Fig 17 direction).
    EXPECT_LT(hdpat.remoteRtt.mean(), base.remoteRtt.mean());
}

TEST(SystemIntegrationTest, IdealIommuExposesHeadroom)
{
    RunSpec spec = smallSpec("SPMV", TranslationPolicy::baseline());
    const RunResult base = runOnce(spec);
    spec.config.iommuWalkers = 4096;
    spec.config.iommuPwQueueCapacity = 8192;
    const RunResult ideal = runOnce(spec);
    EXPECT_GT(speedupOver(base, ideal), 1.5); // Fig 2 direction.
}

TEST(SystemIntegrationTest, CenterGpmsFinishEarlierThanPeriphery)
{
    // Fig 5: geometric position matters. Compare ring-1 vs ring-3
    // mean finish times on a remote-heavy workload.
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "SPMV";
    spec.opsPerGpm = 1200;

    System sys(spec.config, spec.policy);
    auto wl = makeWorkload(spec.workload);
    sys.loadWorkload(*wl, spec.opsPerGpm, spec.seed);
    const RunResult r = sys.run();

    double inner_sum = 0, outer_sum = 0;
    int inner_n = 0, outer_n = 0;
    for (const auto &[tile, tick] : r.gpmFinish) {
        const int ring = sys.topology().ringOf(tile);
        if (ring == 1) {
            inner_sum += static_cast<double>(tick);
            ++inner_n;
        } else if (ring == 3) {
            outer_sum += static_cast<double>(tick);
            ++outer_n;
        }
    }
    ASSERT_GT(inner_n, 0);
    ASSERT_GT(outer_n, 0);
    EXPECT_LT(inner_sum / inner_n, outer_sum / outer_n);
}

TEST(SystemIntegrationTest, TrafficOverheadOfHdpatIsSmall)
{
    // §V-D: HDPAT's probes/pushes add only a small fraction of total
    // NoC traffic (paper: 0.82%; we allow a loose bound).
    const RunResult base =
        runOnce(smallSpec("MM", TranslationPolicy::baseline()));
    const RunResult hdpat =
        runOnce(smallSpec("MM", TranslationPolicy::hdpat()));
    const double overhead =
        static_cast<double>(hdpat.noc.byteHops) /
            static_cast<double>(base.noc.byteHops) -
        1.0;
    EXPECT_LT(overhead, 0.25);
}

TEST(SystemIntegrationTest, IommuTraceIsTimeOrdered)
{
    RunSpec spec = smallSpec("SPMV", TranslationPolicy::baseline());
    spec.captureIommuTrace = true;
    const RunResult r = runOnce(spec);
    ASSERT_GT(r.iommu.trace.size(), 0u);
    for (std::size_t i = 1; i < r.iommu.trace.size(); ++i)
        EXPECT_GE(r.iommu.trace[i].first, r.iommu.trace[i - 1].first);
}

TEST(SystemIntegrationTest, McmSystemRuns)
{
    RunSpec spec;
    spec.config = SystemConfig::mcm4();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "SPMV";
    spec.opsPerGpm = 2000;
    const RunResult r = runOnce(spec);
    EXPECT_EQ(r.gpmFinish.size(), 4u);
    EXPECT_GT(r.totalTicks, 0u);
}

TEST(SystemIntegrationTest, Wafer7x12SystemRuns)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100Wafer7x12();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "FWT";
    spec.opsPerGpm = 600;
    const RunResult r = runOnce(spec);
    EXPECT_EQ(r.gpmFinish.size(), 83u);
}

TEST(SystemIntegrationTest, LargerPagesReduceTranslationTraffic)
{
    RunSpec spec = smallSpec("SPMV", TranslationPolicy::baseline());
    const RunResult small_pages = runOnce(spec);
    spec.config.pageShift = 16; // 64 KiB pages.
    const RunResult large_pages = runOnce(spec);
    EXPECT_LT(large_pages.iommu.requestsReceived,
              small_pages.iommu.requestsReceived);
}

TEST(SystemIntegrationTest, DoubleLoadIsFatal)
{
    System sys(SystemConfig::mcm4(), TranslationPolicy::baseline());
    auto wl1 = makeWorkload("AES");
    auto wl2 = makeWorkload("AES");
    sys.loadWorkload(*wl1, 10, 1);
    EXPECT_EXIT(sys.loadWorkload(*wl2, 10, 1),
                testing::ExitedWithCode(1), "twice");
}

TEST(SystemIntegrationTest, RunWithoutWorkloadIsFatal)
{
    System sys(SystemConfig::mcm4(), TranslationPolicy::baseline());
    EXPECT_EXIT(sys.run(), testing::ExitedWithCode(1), "workload");
}

} // namespace
} // namespace hdpat
