/**
 * @file
 * Unit tests for the §V-F area/power model.
 */

#include <gtest/gtest.h>

#include "driver/area_model.hh"

namespace hdpat
{
namespace
{

TEST(AreaModelTest, RedirectionTableMatchesPaper)
{
    // Calibration point: 1024-entry RT = 0.034 mm^2, 0.16 W.
    const SramEstimate rt =
        estimateSram(1024, kRedirectionEntryBits);
    EXPECT_NEAR(rt.areaMm2, 0.034, 1e-6);
    EXPECT_NEAR(rt.powerW, 0.16, 1e-6);
}

TEST(AreaModelTest, CpuDieOverheadPercentages)
{
    const SramEstimate rt =
        estimateSram(1024, kRedirectionEntryBits);
    // Paper: 0.02% area and 0.09% power of an AMD Ryzen 9 die.
    EXPECT_NEAR(rt.areaMm2 / kCpuDieAreaMm2, 0.0002, 0.0001);
    EXPECT_NEAR(rt.powerW / kCpuTdpW, 0.0009, 0.0003);
}

TEST(AreaModelTest, EqualAreaTlbHoldsHalfTheEntries)
{
    // Fig 19's premise: a TLB entry is twice the RT entry, so equal
    // area gives 512 TLB entries vs 1024 RT entries.
    const SramEstimate rt = estimateSram(1024, kRedirectionEntryBits);
    const SramEstimate tlb = estimateSram(512, kTlbEntryBits);
    EXPECT_NEAR(tlb.areaMm2, rt.areaMm2, rt.areaMm2 * 0.01);
    EXPECT_EQ(kTlbEntryBits, 2 * kRedirectionEntryBits);
}

TEST(AreaModelTest, ScalesLinearly)
{
    const SramEstimate one = estimateSram(100, 60);
    const SramEstimate two = estimateSram(200, 60);
    EXPECT_NEAR(two.areaMm2, 2 * one.areaMm2, 1e-12);
    EXPECT_NEAR(two.powerW, 2 * one.powerW, 1e-12);
}

} // namespace
} // namespace hdpat
