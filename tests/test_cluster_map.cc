/**
 * @file
 * Unit tests for the clustering + rotation map (Eq. 1-2, §IV-D/E) and
 * the distributed-caching group split (§V-A).
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "hdpat/cluster_map.hh"

namespace hdpat
{
namespace
{

class ClusterMapTest : public testing::Test
{
  protected:
    ClusterMapTest()
        : topo_(MeshTopology::wafer(7, 7)), layers_(topo_, 2),
          map_(layers_, 4, true)
    {
    }

    MeshTopology topo_;
    ConcentricLayers layers_;
    ClusterMap map_;
};

TEST_F(ClusterMapTest, ExactlyOneTilePerLayer)
{
    for (Vpn vpn = 0; vpn < 10000; ++vpn) {
        const auto tiles = map_.auxTilesFor(vpn);
        ASSERT_EQ(tiles.size(), 2u);
        EXPECT_EQ(layers_.layerOf(tiles[0]), 0);
        EXPECT_EQ(layers_.layerOf(tiles[1]), 1);
    }
}

TEST_F(ClusterMapTest, MappingIsDeterministic)
{
    const ClusterMap other(layers_, 4, true);
    for (Vpn vpn = 0; vpn < 1000; ++vpn) {
        EXPECT_EQ(map_.auxTileFor(vpn, 0), other.auxTileFor(vpn, 0));
        EXPECT_EQ(map_.auxTileFor(vpn, 1), other.auxTileFor(vpn, 1));
    }
}

TEST_F(ClusterMapTest, ConsecutiveVpnsSpreadAcrossClusters)
{
    // Eq. 1: VPN mod N_c picks the cluster, so four consecutive VPNs
    // land in four different clusters (different ring quarters).
    std::set<TileId> tiles;
    for (Vpn vpn = 100; vpn < 104; ++vpn)
        tiles.insert(map_.auxTileFor(vpn, 1));
    EXPECT_EQ(tiles.size(), 4u);
}

TEST_F(ClusterMapTest, LoadIsBalancedWithinALayer)
{
    std::map<TileId, int> counts;
    const int n = 16000;
    for (Vpn vpn = 0; vpn < static_cast<Vpn>(n); ++vpn)
        ++counts[map_.auxTileFor(vpn, 1)];
    ASSERT_EQ(counts.size(), 16u); // Every ring-2 tile is used.
    for (const auto &[tile, count] : counts)
        EXPECT_EQ(count, n / 16) << "tile " << tile;
}

TEST_F(ClusterMapTest, RotationSeparatesLayerCopies)
{
    // With rotation, a VPN's layer-0 and layer-1 holders should sit on
    // roughly opposite sides for many VPNs; without rotation they sit
    // in the same quadrant. Compare aggregate angular separation.
    const ClusterMap unrotated(layers_, 4, false);
    const Coord center = topo_.cpuCoord();

    auto mean_separation = [&](const ClusterMap &m) {
        double total = 0.0;
        const int n = 4096;
        for (Vpn vpn = 0; vpn < static_cast<Vpn>(n); ++vpn) {
            const double a0 =
                angleOf(topo_.coordOf(m.auxTileFor(vpn, 0)), center);
            const double a1 =
                angleOf(topo_.coordOf(m.auxTileFor(vpn, 1)), center);
            double d = std::abs(a0 - a1);
            if (d > M_PI)
                d = 2 * M_PI - d;
            total += d;
        }
        return total / n;
    };

    EXPECT_GT(mean_separation(map_), mean_separation(unrotated) + 0.5);
}

TEST_F(ClusterMapTest, RotationFlagChangesOuterLayerOnly)
{
    const ClusterMap unrotated(layers_, 4, false);
    int same_inner = 0, same_outer = 0;
    const int n = 1024;
    for (Vpn vpn = 0; vpn < static_cast<Vpn>(n); ++vpn) {
        same_inner += map_.auxTileFor(vpn, 0) ==
                      unrotated.auxTileFor(vpn, 0);
        same_outer += map_.auxTileFor(vpn, 1) ==
                      unrotated.auxTileFor(vpn, 1);
    }
    EXPECT_EQ(same_inner, n);  // Layer 0 enumeration unchanged.
    EXPECT_LT(same_outer, n / 4); // Layer 1 rotated 180 degrees.
}

TEST_F(ClusterMapTest, WorksOnRectangularWafer)
{
    const MeshTopology rect = MeshTopology::wafer(12, 7);
    const ConcentricLayers rect_layers(rect, 2);
    const ClusterMap rect_map(rect_layers, 4, true);
    for (Vpn vpn = 0; vpn < 5000; ++vpn) {
        for (int layer = 0; layer < rect_map.numLayers(); ++layer) {
            const TileId aux = rect_map.auxTileFor(vpn, layer);
            EXPECT_TRUE(rect.isGpm(aux));
            EXPECT_EQ(rect_layers.layerOf(aux), layer);
        }
    }
}

TEST_F(ClusterMapTest, SingleLayerMcm)
{
    const MeshTopology mcm = MeshTopology::mcm4();
    const ConcentricLayers mcm_layers(mcm, 2);
    const ClusterMap mcm_map(mcm_layers, 4, true);
    ASSERT_EQ(mcm_map.numLayers(), 1);
    std::set<TileId> used;
    for (Vpn vpn = 0; vpn < 100; ++vpn)
        used.insert(mcm_map.auxTileFor(vpn, 0));
    EXPECT_EQ(used.size(), 4u);
}

TEST(DistributedGroupsTest, SymmetricSplit)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    const DistributedGroups groups(layers);
    // 24 caching tiles split 12/12 across the two sides of the CPU.
    EXPECT_EQ(groups.groupTiles(0).size(), 12u);
    EXPECT_EQ(groups.groupTiles(1).size(), 12u);
}

TEST(DistributedGroupsTest, NearestPeerIsInOwnGroupAndNotSelf)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    const DistributedGroups groups(layers);
    for (TileId gpm : topo.gpmTiles()) {
        const TileId peer = groups.nearestGroupPeer(gpm);
        ASSERT_NE(peer, kInvalidTile);
        EXPECT_NE(peer, gpm);
        EXPECT_EQ(groups.groupOf(peer), groups.groupOf(gpm));
    }
}

TEST(DistributedGroupsTest, GroupsSplitByCpuColumn)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    const DistributedGroups groups(layers);
    EXPECT_EQ(groups.groupOf(topo.tileAt({0, 3})), 0);
    EXPECT_EQ(groups.groupOf(topo.tileAt({6, 3})), 1);
}

} // namespace
} // namespace hdpat
