/**
 * @file
 * Unit tests for the global page table and its block-partitioned
 * allocator (the paper's driver model, §II-A).
 */

#include <array>
#include <set>

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace hdpat
{
namespace
{

TEST(PageTableTest, PaperExamplePartitioning)
{
    // §II-A: 480 pages across 48 GPMs -> pages 1-10 on GPM 1, 11-20 on
    // GPM 2, and so forth (contiguous blocks in GPM order).
    GlobalPageTable pt(12);
    std::array<TileId, 48> homes;
    for (int i = 0; i < 48; ++i)
        homes[static_cast<std::size_t>(i)] = i + 100;

    const BufferHandle buf = pt.allocate(480 * pt.pageBytes(), homes);
    EXPECT_EQ(buf.numPages, 480u);

    const Vpn base = pt.vpnOf(buf.baseVa);
    for (std::size_t p = 0; p < 480; ++p) {
        const TileId expected = homes[p / 10];
        EXPECT_EQ(pt.homeOf(base + p), expected) << "page " << p;
    }
    for (TileId h : homes)
        EXPECT_EQ(pt.pagesHomedOn(h), 10u);
}

TEST(PageTableTest, RemainderSpillsToEarliestHomes)
{
    GlobalPageTable pt(12);
    const std::array<TileId, 4> homes = {1, 2, 3, 4};
    pt.allocate(10 * pt.pageBytes(), homes); // 10 = 4*2 + 2
    EXPECT_EQ(pt.pagesHomedOn(1), 3u);
    EXPECT_EQ(pt.pagesHomedOn(2), 3u);
    EXPECT_EQ(pt.pagesHomedOn(3), 2u);
    EXPECT_EQ(pt.pagesHomedOn(4), 2u);
}

TEST(PageTableTest, ByteSizesRoundUpToPages)
{
    GlobalPageTable pt(12);
    const std::array<TileId, 1> homes = {7};
    const BufferHandle buf = pt.allocate(1, homes);
    EXPECT_EQ(buf.numPages, 1u);
    EXPECT_EQ(buf.pageBytes, 4096u);
    EXPECT_EQ(buf.endVa(), buf.baseVa + 4096);
}

TEST(PageTableTest, TranslateUnmappedReturnsNull)
{
    GlobalPageTable pt(12);
    EXPECT_EQ(pt.translate(12345), nullptr);
    EXPECT_EQ(pt.homeOf(12345), kInvalidTile);
}

TEST(PageTableTest, PfnsAreUniquePerHome)
{
    GlobalPageTable pt(12);
    const std::array<TileId, 2> homes = {1, 2};
    pt.allocate(64 * pt.pageBytes(), homes);
    pt.allocate(64 * pt.pageBytes(), homes);

    std::set<std::pair<TileId, Pfn>> frames;
    pt.forEachPage([&](Vpn, const Pte &pte) {
        const bool inserted =
            frames.emplace(pte.home, pte.pfn).second;
        EXPECT_TRUE(inserted) << "duplicate frame on home "
                              << pte.home;
    });
    EXPECT_EQ(frames.size(), 128u);
}

TEST(PageTableTest, BuffersDoNotOverlap)
{
    GlobalPageTable pt(12);
    const std::array<TileId, 3> homes = {1, 2, 3};
    const BufferHandle a = pt.allocate(100 * pt.pageBytes(), homes);
    const BufferHandle b = pt.allocate(50 * pt.pageBytes(), homes);
    EXPECT_GE(b.baseVa, a.endVa());
    EXPECT_EQ(pt.size(), 150u);
}

TEST(PageTableTest, AccessCountIsMutable)
{
    GlobalPageTable pt(12);
    const std::array<TileId, 1> homes = {9};
    const BufferHandle buf = pt.allocate(pt.pageBytes(), homes);
    const Vpn vpn = pt.vpnOf(buf.baseVa);

    Pte *pte = pt.translateMutable(vpn);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->accessCount, 0u);
    pte->accessCount += 3;
    EXPECT_EQ(pt.translate(vpn)->accessCount, 3u);
}

TEST(PageTableTest, PageShiftControlsGranularity)
{
    GlobalPageTable pt(16); // 64 KiB pages.
    EXPECT_EQ(pt.pageBytes(), 65536u);
    const std::array<TileId, 1> homes = {1};
    const BufferHandle buf = pt.allocate(1u << 20, homes); // 1 MiB
    EXPECT_EQ(buf.numPages, 16u);
    EXPECT_EQ(pt.vpnOf(buf.baseVa + 65535), pt.vpnOf(buf.baseVa));
    EXPECT_EQ(pt.vpnOf(buf.baseVa + 65536),
              pt.vpnOf(buf.baseVa) + 1);
}

TEST(PageTableTest, EmptyAllocationsAreFatal)
{
    GlobalPageTable pt(12);
    const std::array<TileId, 1> homes = {1};
    EXPECT_EXIT(pt.allocate(0, homes), testing::ExitedWithCode(1),
                "zero bytes");
    EXPECT_EXIT(pt.allocate(4096, std::span<const TileId>{}),
                testing::ExitedWithCode(1), "no home");
}

} // namespace
} // namespace hdpat
