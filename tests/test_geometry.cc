/**
 * @file
 * Unit tests for mesh geometry helpers.
 */

#include <gtest/gtest.h>

#include "noc/geometry.hh"

namespace hdpat
{
namespace
{

TEST(GeometryTest, Manhattan)
{
    EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
    EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
    EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
    EXPECT_EQ(manhattan({-2, 1}, {2, -1}), 6);
}

TEST(GeometryTest, Chebyshev)
{
    EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
    EXPECT_EQ(chebyshev({1, 1}, {2, 2}), 1);
    EXPECT_EQ(chebyshev({5, 5}, {5, 5}), 0);
}

TEST(GeometryTest, QuadrantsCoverAllDirections)
{
    const Coord center{3, 3};
    EXPECT_EQ(quadrantOf({4, 4}, center), 0);
    EXPECT_EQ(quadrantOf({2, 4}, center), 1);
    EXPECT_EQ(quadrantOf({2, 2}, center), 2);
    EXPECT_EQ(quadrantOf({4, 2}, center), 3);
}

TEST(GeometryTest, AxisTilesGetDeterministicQuadrants)
{
    const Coord center{3, 3};
    // Each axis tile belongs to exactly one quadrant, consistently.
    EXPECT_EQ(quadrantOf({3, 4}, center), 0);  // +y axis
    EXPECT_EQ(quadrantOf({2, 3}, center), 1);  // -x axis
    EXPECT_EQ(quadrantOf({3, 2}, center), 2);  // -y axis
    EXPECT_EQ(quadrantOf({4, 3}, center), 3);  // +x axis
}

TEST(GeometryTest, QuadrantsPartitionARing)
{
    const Coord center{3, 3};
    int counts[4] = {0, 0, 0, 0};
    for (int x = 0; x <= 6; ++x) {
        for (int y = 0; y <= 6; ++y) {
            const Coord c{x, y};
            if (c == center)
                continue;
            if (chebyshev(c, center) == 2) {
                const int q = quadrantOf(c, center);
                ASSERT_GE(q, 0);
                ASSERT_LE(q, 3);
                ++counts[q];
            }
        }
    }
    // Ring 2 has 16 tiles; the quadrants split them 4/4/4/4.
    EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 16);
    for (int q = 0; q < 4; ++q)
        EXPECT_EQ(counts[q], 4) << "quadrant " << q;
}

TEST(GeometryTest, AngleIncreasesCounterClockwise)
{
    const Coord center{0, 0};
    const double east = angleOf({1, 0}, center);
    const double north = angleOf({0, 1}, center);
    const double west = angleOf({-1, 0}, center);
    const double south = angleOf({0, -1}, center);
    EXPECT_LT(east, north);
    EXPECT_LT(north, west);
    EXPECT_LT(west, south);
    EXPECT_GE(east, 0.0);
    EXPECT_LT(south, 2.0 * M_PI);
}

} // namespace
} // namespace hdpat
