/**
 * @file
 * Unit tests for mesh geometry helpers.
 */

#include <gtest/gtest.h>

#include "noc/geometry.hh"

namespace hdpat
{
namespace
{

TEST(GeometryTest, Manhattan)
{
    EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
    EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
    EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
    EXPECT_EQ(manhattan({-2, 1}, {2, -1}), 6);
}

TEST(GeometryTest, Chebyshev)
{
    EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
    EXPECT_EQ(chebyshev({1, 1}, {2, 2}), 1);
    EXPECT_EQ(chebyshev({5, 5}, {5, 5}), 0);
}

TEST(GeometryTest, MeshCenterIsAlwaysInMesh)
{
    // Odd dimensions: exact center.
    EXPECT_EQ(meshCenter(7, 7), (Coord{3, 3}));
    EXPECT_EQ(meshCenter(3, 3), (Coord{1, 1}));
    // Even / rectangular (fig22 runs 12x7): upper-left of the central
    // block, never out of bounds.
    EXPECT_EQ(meshCenter(12, 7), (Coord{5, 3}));
    EXPECT_EQ(meshCenter(8, 8), (Coord{3, 3}));
    EXPECT_EQ(meshCenter(2, 2), (Coord{0, 0}));
    EXPECT_EQ(meshCenter(1, 1), (Coord{0, 0}));
    for (int w = 1; w <= 12; ++w) {
        for (int h = 1; h <= 12; ++h) {
            const Coord c = meshCenter(w, h);
            ASSERT_GE(c.x, 0);
            ASSERT_LT(c.x, w);
            ASSERT_GE(c.y, 0);
            ASSERT_LT(c.y, h);
        }
    }
}

TEST(GeometryTest, QuadrantsCoverAllDirections)
{
    const Coord center{3, 3};
    EXPECT_EQ(quadrantOf({4, 4}, center), 0);
    EXPECT_EQ(quadrantOf({2, 4}, center), 1);
    EXPECT_EQ(quadrantOf({2, 2}, center), 2);
    EXPECT_EQ(quadrantOf({4, 2}, center), 3);
}

TEST(GeometryTest, AxisTilesGetDeterministicQuadrants)
{
    const Coord center{3, 3};
    // Each axis tile belongs to exactly one quadrant, consistently.
    EXPECT_EQ(quadrantOf({3, 4}, center), 0);  // +y axis
    EXPECT_EQ(quadrantOf({2, 3}, center), 1);  // -x axis
    EXPECT_EQ(quadrantOf({3, 2}, center), 2);  // -y axis
    EXPECT_EQ(quadrantOf({4, 3}, center), 3);  // +x axis
}

TEST(GeometryTest, QuadrantBoundarySemanticsTable)
{
    const Coord center{3, 3};
    struct Case
    {
        Coord c;
        int quadrant;
        const char *what;
    };
    const Case cases[] = {
        // The center itself has a defined quadrant (0), not the
        // fall-through quadrant 3 it used to land in.
        {{3, 3}, 0, "center"},
        // Axes: counter-clockwise assignment, pinned.
        {{3, 4}, 0, "+y axis"},
        {{3, 6}, 0, "+y axis far"},
        {{2, 3}, 1, "-x axis"},
        {{0, 3}, 1, "-x axis far"},
        {{3, 2}, 2, "-y axis"},
        {{3, 0}, 2, "-y axis far"},
        {{4, 3}, 3, "+x axis"},
        {{6, 3}, 3, "+x axis far"},
        // Corners (diagonals) belong to their open quadrant.
        {{4, 4}, 0, "+x+y corner"},
        {{2, 4}, 1, "-x+y corner"},
        {{2, 2}, 2, "-x-y corner"},
        {{4, 2}, 3, "+x-y corner"},
    };
    for (const Case &tc : cases) {
        EXPECT_EQ(quadrantOf(tc.c, center), tc.quadrant)
            << tc.what << " (" << tc.c.x << "," << tc.c.y << ")";
    }
}

TEST(GeometryTest, QuadrantsPartitionARing)
{
    const Coord center{3, 3};
    int counts[4] = {0, 0, 0, 0};
    for (int x = 0; x <= 6; ++x) {
        for (int y = 0; y <= 6; ++y) {
            const Coord c{x, y};
            if (c == center)
                continue;
            if (chebyshev(c, center) == 2) {
                const int q = quadrantOf(c, center);
                ASSERT_GE(q, 0);
                ASSERT_LE(q, 3);
                ++counts[q];
            }
        }
    }
    // Ring 2 has 16 tiles; the quadrants split them 4/4/4/4.
    EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 16);
    for (int q = 0; q < 4; ++q)
        EXPECT_EQ(counts[q], 4) << "quadrant " << q;
}

TEST(GeometryTest, AngleIncreasesCounterClockwise)
{
    const Coord center{0, 0};
    const double east = angleOf({1, 0}, center);
    const double north = angleOf({0, 1}, center);
    const double west = angleOf({-1, 0}, center);
    const double south = angleOf({0, -1}, center);
    EXPECT_LT(east, north);
    EXPECT_LT(north, west);
    EXPECT_LT(west, south);
    EXPECT_GE(east, 0.0);
    EXPECT_LT(south, 2.0 * M_PI);
}

} // namespace
} // namespace hdpat
