/**
 * @file
 * Tests for the JSON metrics exporter and the Chrome-trace exporter:
 * schema markers, registered names, and span slice structure.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/exporters.hh"

namespace hdpat
{
namespace
{

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(MetricsJsonTest, EmitsSchemaAndRunMetadata)
{
    MetricRegistry reg;
    RunMetadata meta;
    meta.workload = "SPMV";
    meta.policy = "hdpat";
    meta.config = "MI100";
    meta.seed = 77;
    meta.totalTicks = 1234;

    std::ostringstream os;
    writeMetricsJson(os, reg, meta);
    const std::string out = os.str();

    EXPECT_TRUE(contains(out, "\"schema\":\"hdpat-metrics-v1\""));
    EXPECT_TRUE(contains(out, "\"workload\":\"SPMV\""));
    EXPECT_TRUE(contains(out, "\"policy\":\"hdpat\""));
    EXPECT_TRUE(contains(out, "\"seed\":77"));
    EXPECT_TRUE(contains(out, "\"total_ticks\":1234"));
    // All five kind sections appear even when empty.
    for (const char *section : {"\"counters\"", "\"gauges\"",
                                "\"summaries\"", "\"histograms\"",
                                "\"timeseries\""})
        EXPECT_TRUE(contains(out, section)) << section;
}

TEST(MetricsJsonTest, EmitsEveryRegisteredMetric)
{
    MetricRegistry reg;
    std::uint64_t hits = 12;
    reg.addCounter("gpm.t0.l1_tlb_hits", &hits);
    reg.addGauge("iommu.backlog", [] { return 3.0; });
    SummaryStat rtt;
    rtt.add(100.0);
    rtt.add(300.0);
    reg.addSummary("gpm.remote_rtt", &rtt);
    Log2Histogram lat;
    lat.add(6, 4);
    reg.addHistogram("iommu.walk_latency_hist", &lat);
    TimeSeries depth(100);
    depth.add(150, 2.0);
    reg.addTimeSeries("iommu.buffer_depth", &depth);

    std::ostringstream os;
    writeMetricsJson(os, reg, RunMetadata{});
    const std::string out = os.str();

    EXPECT_TRUE(contains(out, "\"gpm.t0.l1_tlb_hits\":12"));
    EXPECT_TRUE(contains(out, "\"iommu.backlog\":3"));
    EXPECT_TRUE(contains(out, "\"gpm.remote_rtt\""));
    EXPECT_TRUE(contains(out, "\"mean\":200"));
    EXPECT_TRUE(contains(out, "\"iommu.walk_latency_hist\""));
    // Bucket 3 ([4,7]) with weight 4.
    EXPECT_TRUE(contains(out, "\"low\":4"));
    EXPECT_TRUE(contains(out, "\"high\":7"));
    EXPECT_TRUE(contains(out, "\"iommu.buffer_depth\""));
    EXPECT_TRUE(contains(out, "\"window_ticks\":100"));
}

TEST(MetricsJsonTest, BalancedBracesAndQuotes)
{
    MetricRegistry reg;
    reg.addCounter("a", [] { return std::uint64_t{1}; });
    std::ostringstream os;
    writeMetricsJson(os, reg, RunMetadata{});
    const std::string out = os.str();

    int depth = 0;
    std::size_t quotes = 0;
    for (char c : out) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        else if (c == '"')
            ++quotes;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(quotes % 2, 0u);
}

TEST(ChromeTraceTest, EmitsSlicesAndFinalInstant)
{
    Tracer t(64, 1);
    ASSERT_TRUE(t.begin(5, 42, 100));
    t.record(5, 42, 104, SpanEvent::L1TlbHit, 5);
    t.record(5, 42, 120, SpanEvent::DataAccess, 5);
    t.end(5, 42, 150);

    std::ostringstream os;
    writeChromeTrace(os, t);
    const std::string out = os.str();

    EXPECT_TRUE(contains(out, "\"traceEvents\""));
    // Process-name metadata for the owning GPM.
    EXPECT_TRUE(contains(out, "\"process_name\""));
    EXPECT_TRUE(contains(out, "\"GPM 5\""));
    // Stable event names from the span schema.
    EXPECT_TRUE(contains(out, "\"issue\""));
    EXPECT_TRUE(contains(out, "\"l1-tlb-hit\""));
    EXPECT_TRUE(contains(out, "\"data-access\""));
    EXPECT_TRUE(contains(out, "\"complete\""));
    // Slice duration = gap to the next event (issue@100 -> hit@104).
    EXPECT_TRUE(contains(out, "\"ts\":100"));
    EXPECT_TRUE(contains(out, "\"dur\":4"));
    // The closing event is a thread-scoped instant, not a slice.
    EXPECT_TRUE(contains(out, "\"ph\":\"i\""));
    EXPECT_TRUE(contains(out, "\"vpn\":42"));
}

TEST(ChromeTraceTest, EmptyTracerStillWellFormed)
{
    Tracer t(16, 1);
    std::ostringstream os;
    writeChromeTrace(os, t);
    const std::string out = os.str();
    EXPECT_TRUE(contains(out, "\"traceEvents\":[]"));
}

} // namespace
} // namespace hdpat
