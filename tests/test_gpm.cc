/**
 * @file
 * Component tests for the GPM: local translation hierarchy, remote
 * resolution, MSHR coalescing, and the peer-cache server side. Driven
 * through System with hand-built address lists.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "driver/system.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

/** Stream over a fixed address list. */
class ListStream : public AddressStream
{
  public:
    explicit ListStream(std::vector<Addr> addrs)
        : addrs_(std::move(addrs))
    {
    }

    std::optional<Addr>
    next() override
    {
        if (pos_ >= addrs_.size())
            return std::nullopt;
        return addrs_[pos_++];
    }

  private:
    std::vector<Addr> addrs_;
    std::size_t pos_ = 0;
};

/**
 * Workload with one shared buffer and per-GPM address lists produced
 * by a builder callback.
 */
class ListWorkload : public Workload
{
  public:
    using Builder = std::function<std::vector<Addr>(
        std::size_t gpm, std::size_t n, const BufferHandle &)>;

    ListWorkload(std::size_t bytes, Builder builder)
        : Workload({"TEST", "test workload", 1, bytes}),
          builder_(std::move(builder))
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        buffer_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t,
              std::uint64_t) const override
    {
        return std::make_unique<ListStream>(builder_(gpm, n, buffer_));
    }

    const BufferHandle &buffer() const { return buffer_; }

  private:
    Builder builder_;
    BufferHandle buffer_;
};

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    cfg.name = "test-5x5";
    return cfg;
}

TEST(GpmTest, LocalOnlyStreamFinishesWithoutRemoteTraffic)
{
    ListWorkload wl(1u << 22, [](std::size_t gpm, std::size_t n,
                                 const BufferHandle &buf) {
        const SliceView slice = sliceOf(buf, gpm, n);
        std::vector<Addr> addrs;
        for (Addr a = 0; a < 4096; a += 64)
            addrs.push_back(slice.base + a);
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::baseline());
    sys.loadWorkload(wl, 0, 1);
    const RunResult r = sys.run();

    EXPECT_EQ(r.opsTotal, 24u * 64u);
    EXPECT_EQ(r.remoteOps, 0u);
    EXPECT_EQ(r.iommu.requestsReceived, 0u);
    for (const auto &[tile, tick] : r.gpmFinish)
        EXPECT_GT(tick, 0u);
}

/** ListWorkload with a single-op outstanding window (serialized ops). */
class SerialListWorkload : public ListWorkload
{
  public:
    SerialListWorkload(std::size_t bytes, Builder builder)
        : ListWorkload(bytes, std::move(builder))
    {
        info_.maxOutstanding = 1;
    }
};

TEST(GpmTest, TlbHierarchyFillsTopDown)
{
    // 64 serialized accesses to one local page: the first walks the
    // GMMU, every later access hits the L1 TLB.
    SerialListWorkload wl(1u << 22, [](std::size_t gpm, std::size_t n,
                                       const BufferHandle &buf) {
        const SliceView slice = sliceOf(buf, gpm, n);
        std::vector<Addr> addrs(64, slice.base);
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::baseline());
    sys.loadWorkload(wl, 0, 1);
    sys.run();

    const Gpm::Stats &s = sys.gpm(0).stats();
    EXPECT_EQ(s.opsCompleted, 64u);
    EXPECT_EQ(s.localWalks, 1u);
    EXPECT_EQ(s.l1TlbHits, 63u);
}

TEST(GpmTest, BurstToOnePageCoalescesInLocalWalk)
{
    // The same 64 accesses issued as a burst: all are in flight before
    // the first fill, so they coalesce on one GMMU walk instead of
    // hitting the L1 TLB.
    ListWorkload wl(1u << 22, [](std::size_t gpm, std::size_t n,
                                 const BufferHandle &buf) {
        const SliceView slice = sliceOf(buf, gpm, n);
        std::vector<Addr> addrs(64, slice.base);
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::baseline());
    sys.loadWorkload(wl, 0, 1);
    sys.run();

    const Gpm::Stats &s = sys.gpm(0).stats();
    EXPECT_EQ(s.opsCompleted, 64u);
    EXPECT_EQ(sys.gpm(0).gmmu().stats().walksCompleted, 1u);
}

TEST(GpmTest, RemotePageGoesThroughIommu)
{
    // GPM 0 accesses the very last page of the buffer (homed on the
    // last GPM); everyone else idles.
    ListWorkload wl(1u << 22, [](std::size_t gpm, std::size_t,
                                 const BufferHandle &buf) {
        std::vector<Addr> addrs;
        if (gpm == 0)
            addrs.push_back(buf.endVa() - 64);
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::baseline());
    sys.loadWorkload(wl, 0, 1);
    const RunResult r = sys.run();

    EXPECT_EQ(r.remoteOps, 1u);
    EXPECT_EQ(r.remoteResolutions, 1u);
    EXPECT_EQ(r.iommu.requestsReceived, 1u);
    EXPECT_EQ(r.sourceCounts[static_cast<std::size_t>(
                  TranslationSource::IommuWalk)],
              1u);
    // Cuckoo negative (guaranteed absent): no local walk wasted.
    EXPECT_EQ(sys.gpm(0).stats().cuckooFalsePositives, 0u);
}

TEST(GpmTest, ConcurrentRemoteMissesCoalesceInMshr)
{
    ListWorkload wl(1u << 22, [](std::size_t gpm, std::size_t,
                                 const BufferHandle &buf) {
        std::vector<Addr> addrs;
        if (gpm == 0) {
            // 16 accesses to distinct lines of one remote page,
            // issued back-to-back.
            for (Addr a = 0; a < 16 * 64; a += 64)
                addrs.push_back(buf.endVa() - 4096 + a);
        }
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::baseline());
    sys.loadWorkload(wl, 0, 1);
    const RunResult r = sys.run();

    EXPECT_EQ(r.remoteResolutions, 1u); // One translation fetch...
    EXPECT_EQ(r.iommu.walksCompleted, 1u);
    EXPECT_EQ(sys.gpm(0).stats().opsCompleted, 16u); // ...serves all.
}

TEST(GpmTest, SharedHotPageTriggersPushesAndPeerService)
{
    // Every GPM hammers the same (remote for most) page region under
    // full HDPAT: after the threshold walk the PTE is pushed to the
    // auxiliary tiles and later requesters are served without walks.
    ListWorkload wl(1u << 22, [](std::size_t, std::size_t,
                                 const BufferHandle &buf) {
        std::vector<Addr> addrs;
        for (int rep = 0; rep < 8; ++rep)
            for (Addr p = 0; p < 4; ++p)
                addrs.push_back(buf.baseVa + p * 4096 +
                                static_cast<Addr>(rep) * 64);
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::hdpat());
    sys.loadWorkload(wl, 0, 1);
    const RunResult r = sys.run();

    EXPECT_GT(r.iommu.pushesSent, 0u);
    EXPECT_GT(r.pushesReceivedTotal, 0u);
    const std::uint64_t offloaded =
        r.sourceCounts[static_cast<std::size_t>(
            TranslationSource::PeerCache)] +
        r.sourceCounts[static_cast<std::size_t>(
            TranslationSource::Redirect)] +
        r.sourceCounts[static_cast<std::size_t>(
            TranslationSource::ProactiveDelivery)];
    EXPECT_GT(offloaded, 0u);
    // Far fewer walks than remote resolutions.
    EXPECT_LT(r.iommu.walksCompleted, r.remoteResolutions);
}

TEST(GpmTest, ValkyrieProbesNeighbours)
{
    ListWorkload wl(1u << 22, [](std::size_t, std::size_t,
                                 const BufferHandle &buf) {
        // Everyone reads the same remote region: neighbours end up
        // holding each other's translations in their L2 TLBs.
        std::vector<Addr> addrs;
        for (Addr p = 0; p < 8; ++p)
            addrs.push_back(buf.baseVa + p * 4096);
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::valkyrie());
    sys.loadWorkload(wl, 0, 1);
    const RunResult r = sys.run();

    std::uint64_t probes = 0;
    for (std::size_t i = 0; i < sys.numGpms(); ++i)
        probes += sys.gpm(i).stats().neighborProbesReceived;
    EXPECT_GT(probes, 0u);
    (void)r;
}

TEST(GpmTest, TransFwServesFromHomeGmmu)
{
    ListWorkload wl(1u << 22, [](std::size_t gpm, std::size_t,
                                 const BufferHandle &buf) {
        std::vector<Addr> addrs;
        if (gpm == 0)
            addrs.push_back(buf.endVa() - 64);
        return addrs;
    });

    System sys(smallConfig(), TranslationPolicy::transFw());
    sys.loadWorkload(wl, 0, 1);
    const RunResult r = sys.run();

    EXPECT_EQ(r.sourceCounts[static_cast<std::size_t>(
                  TranslationSource::HomeGmmu)],
              1u);
    EXPECT_EQ(r.iommu.walksCompleted, 0u);
    EXPECT_EQ(r.iommu.delegationsSent, 1u);
    EXPECT_EQ(r.iommu.delegationReturns, 1u);
}

TEST(GpmTest, EmptyStreamFinishesImmediately)
{
    ListWorkload wl(1u << 22,
                    [](std::size_t, std::size_t, const BufferHandle &) {
                        return std::vector<Addr>{};
                    });
    System sys(smallConfig(), TranslationPolicy::baseline());
    sys.loadWorkload(wl, 0, 1);
    const RunResult r = sys.run();
    EXPECT_EQ(r.opsTotal, 0u);
    EXPECT_EQ(r.totalTicks, 0u);
}

TEST(GpmTest, IssueRateBoundsThroughput)
{
    // 1000 local L1-hit ops at 0.5 ops/cycle cannot finish faster
    // than ~2000 cycles.
    ListWorkload wl(1u << 22, [](std::size_t gpm, std::size_t n,
                                 const BufferHandle &buf) {
        const SliceView slice = sliceOf(buf, gpm, n);
        std::vector<Addr> addrs(1000, slice.base);
        return addrs;
    });
    // Abuse the info override path via a derived instance.
    class SlowList : public ListWorkload
    {
      public:
        using ListWorkload::ListWorkload;
        // Expose a slow issue rate through info().
        void slow() { info_.opsPerCycle = 0.5; }
    };
    SlowList slow_wl(1u << 22, [](std::size_t gpm, std::size_t n,
                                  const BufferHandle &buf) {
        const SliceView slice = sliceOf(buf, gpm, n);
        std::vector<Addr> addrs(1000, slice.base);
        return addrs;
    });
    slow_wl.slow();

    System fast_sys(smallConfig(), TranslationPolicy::baseline());
    fast_sys.loadWorkload(wl, 0, 1);
    const RunResult fast = fast_sys.run();

    System slow_sys(smallConfig(), TranslationPolicy::baseline());
    slow_sys.loadWorkload(slow_wl, 0, 1);
    const RunResult slow = slow_sys.run();

    EXPECT_GE(slow.totalTicks, 2000u);
    EXPECT_LT(fast.totalTicks, slow.totalTicks);
}

} // namespace
} // namespace hdpat
