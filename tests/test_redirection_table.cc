/**
 * @file
 * Unit tests for the redirection table (§IV-F).
 */

#include <gtest/gtest.h>

#include "iommu/redirection_table.hh"

namespace hdpat
{
namespace
{

TEST(RedirectionTableTest, MissThenHit)
{
    RedirectionTable rt(8);
    EXPECT_FALSE(rt.lookup(1).has_value());
    rt.insert(1, 42);
    const auto aux = rt.lookup(1);
    ASSERT_TRUE(aux.has_value());
    EXPECT_EQ(*aux, 42);
}

TEST(RedirectionTableTest, InsertUpdatesExisting)
{
    RedirectionTable rt(8);
    rt.insert(1, 10);
    rt.insert(1, 20);
    EXPECT_EQ(rt.size(), 1u);
    EXPECT_EQ(*rt.lookup(1), 20);
}

TEST(RedirectionTableTest, LruEvictionAtCapacity)
{
    RedirectionTable rt(3);
    rt.insert(1, 10);
    rt.insert(2, 20);
    rt.insert(3, 30);
    rt.lookup(1); // 1 becomes MRU; 2 is now LRU.
    rt.insert(4, 40);
    EXPECT_EQ(rt.size(), 3u);
    EXPECT_TRUE(rt.lookup(1).has_value());
    EXPECT_FALSE(rt.lookup(2).has_value());
    EXPECT_TRUE(rt.lookup(3).has_value());
    EXPECT_TRUE(rt.lookup(4).has_value());
    EXPECT_EQ(rt.stats().evictions, 1u);
}

TEST(RedirectionTableTest, InvalidateRemoves)
{
    RedirectionTable rt(8);
    rt.insert(5, 50);
    rt.invalidate(5);
    EXPECT_FALSE(rt.lookup(5).has_value());
    EXPECT_EQ(rt.size(), 0u);
    rt.invalidate(5); // Idempotent.
    EXPECT_EQ(rt.stats().invalidations, 1u);
}

TEST(RedirectionTableTest, HitRate)
{
    RedirectionTable rt(8);
    rt.insert(1, 1);
    rt.lookup(1);
    rt.lookup(2);
    EXPECT_DOUBLE_EQ(rt.hitRate(), 0.5);
}

TEST(RedirectionTableTest, CapacityIsExact)
{
    RedirectionTable rt(1024); // Table I size.
    for (Vpn v = 0; v < 2048; ++v)
        rt.insert(v, static_cast<TileId>(v % 48));
    EXPECT_EQ(rt.size(), 1024u);
    // The most recent 1024 survive.
    for (Vpn v = 1024; v < 2048; ++v)
        EXPECT_TRUE(rt.lookup(v).has_value()) << "vpn " << v;
}

TEST(RedirectionTableTest, ZeroCapacityIsFatal)
{
    EXPECT_EXIT(RedirectionTable(0), testing::ExitedWithCode(1),
                "capacity");
}

} // namespace
} // namespace hdpat
