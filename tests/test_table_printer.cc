/**
 * @file
 * Unit tests for the bench-output table printer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "driver/table_printer.hh"

namespace hdpat
{
namespace
{

TEST(TablePrinterTest, AlignsColumns)
{
    TablePrinter table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"long-name", "123456"});

    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();

    // Header present, separator present, both rows present.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);

    // Values of the second column start at the same offset.
    std::istringstream lines(out);
    std::string header, sep, row1, row2;
    std::getline(lines, header);
    std::getline(lines, sep);
    std::getline(lines, row1);
    std::getline(lines, row2);
    EXPECT_EQ(header.find("value"), row1.find("1"));
    EXPECT_EQ(header.find("value"), row2.find("123456"));
}

TEST(TablePrinterTest, ShortRowsArePadded)
{
    TablePrinter table({"a", "b", "c"});
    table.addRow({"only-one"});
    std::ostringstream os;
    table.print(os); // Must not crash; missing cells are empty.
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TablePrinterTest, FmtFormatsDecimals)
{
    EXPECT_EQ(fmt(1.5732), "1.57");
    EXPECT_EQ(fmt(1.5732, 1), "1.6");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(TablePrinterTest, FmtPct)
{
    EXPECT_EQ(fmtPct(0.421), "42.1%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

} // namespace
} // namespace hdpat
