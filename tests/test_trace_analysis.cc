/**
 * @file
 * Unit tests for the trace-analysis routines behind Figs 6/7/8.
 */

#include <gtest/gtest.h>

#include "driver/trace_analysis.hh"

namespace hdpat
{
namespace
{

IommuTrace
traceOf(std::initializer_list<Vpn> vpns)
{
    IommuTrace trace;
    Tick t = 0;
    for (Vpn v : vpns)
        trace.emplace_back(t += 10, v);
    return trace;
}

TEST(TraceAnalysisTest, TranslationCountBuckets)
{
    // Page 1: 1x, page 2: 2x, page 3: 5x, page 4: 12x.
    IommuTrace trace;
    Tick t = 0;
    auto add = [&](Vpn v, int times) {
        for (int i = 0; i < times; ++i)
            trace.emplace_back(++t, v);
    };
    add(1, 1);
    add(2, 2);
    add(3, 5);
    add(4, 12);

    const TranslationCountBuckets buckets =
        analyzeTranslationCounts(trace);
    EXPECT_EQ(buckets.once, 1u);
    EXPECT_EQ(buckets.twice, 1u);
    EXPECT_EQ(buckets.threeToTen, 1u);
    EXPECT_EQ(buckets.elevenToHundred, 1u);
    EXPECT_EQ(buckets.moreThanHundred, 0u);
    EXPECT_EQ(buckets.totalPages(), 4u);
    EXPECT_DOUBLE_EQ(buckets.fraction(buckets.once), 0.25);
}

TEST(TraceAnalysisTest, EmptyTrace)
{
    const IommuTrace trace;
    EXPECT_EQ(analyzeTranslationCounts(trace).totalPages(), 0u);
    EXPECT_EQ(analyzeReuseDistance(trace).totalCount(), 0u);
    const auto fractions = spatialLocalityFractions(trace, {1, 2});
    EXPECT_DOUBLE_EQ(fractions[0], 0.0);
}

TEST(TraceAnalysisTest, ReuseDistanceCountsInterveningRequests)
{
    // A . . A  -> reuse distance 3 (three requests later).
    const IommuTrace trace = traceOf({5, 6, 7, 5});
    const Log2Histogram hist = analyzeReuseDistance(trace);
    EXPECT_EQ(hist.totalCount(), 1u);
    EXPECT_EQ(hist.bucket(2), 1u); // Distance 3 -> bucket [2, 3].
}

TEST(TraceAnalysisTest, ReuseDistanceBackToBack)
{
    const IommuTrace trace = traceOf({9, 9, 9});
    const Log2Histogram hist = analyzeReuseDistance(trace);
    EXPECT_EQ(hist.totalCount(), 2u);
    EXPECT_EQ(hist.bucket(1), 2u); // Distance 1 both times.
}

TEST(TraceAnalysisTest, SinglesHaveNoReuse)
{
    const IommuTrace trace = traceOf({1, 2, 3, 4});
    EXPECT_EQ(analyzeReuseDistance(trace).totalCount(), 0u);
}

TEST(TraceAnalysisTest, SpatialFractionsAreCumulative)
{
    // Distances between consecutive: 1, 2, 4, 100.
    const IommuTrace trace = traceOf({10, 11, 13, 17, 117});
    const auto fractions =
        spatialLocalityFractions(trace, {1, 2, 4, 128});
    EXPECT_DOUBLE_EQ(fractions[0], 0.25); // <=1: one of four pairs.
    EXPECT_DOUBLE_EQ(fractions[1], 0.50); // <=2.
    EXPECT_DOUBLE_EQ(fractions[2], 0.75); // <=4.
    EXPECT_DOUBLE_EQ(fractions[3], 1.00); // <=128.
}

TEST(TraceAnalysisTest, SpatialDistanceIsAbsolute)
{
    const IommuTrace trace = traceOf({20, 19, 21});
    const auto fractions = spatialLocalityFractions(trace, {2});
    EXPECT_DOUBLE_EQ(fractions[0], 1.0); // |−1| and |+2| both <= 2.
}

} // namespace
} // namespace hdpat
