/**
 * @file
 * Unit tests for the wafer and MCM topologies.
 */

#include <gtest/gtest.h>

#include "noc/mesh_topology.hh"

namespace hdpat
{
namespace
{

TEST(MeshTopologyTest, Wafer7x7HasPaperGeometry)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    EXPECT_EQ(topo.numTiles(), 49);
    EXPECT_EQ(topo.numGpms(), 48u); // Paper: 48-GPM wafer-scale GPU.
    EXPECT_EQ(topo.cpuCoord(), (Coord{3, 3}));
    EXPECT_FALSE(topo.isGpm(topo.cpuTile()));
    EXPECT_EQ(topo.maxRing(), 3);
}

TEST(MeshTopologyTest, Wafer7x12HasPaperGeometry)
{
    const MeshTopology topo = MeshTopology::wafer(12, 7);
    EXPECT_EQ(topo.numGpms(), 83u); // 84 tiles minus the CPU.
    EXPECT_TRUE(topo.isActive(topo.cpuTile()));
}

TEST(MeshTopologyTest, TileCoordRoundTrip)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    for (TileId t = 0; t < topo.numTiles(); ++t) {
        const Coord c = topo.coordOf(t);
        EXPECT_EQ(topo.tileAt(c), t);
    }
}

TEST(MeshTopologyTest, TileAtOutOfBounds)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    EXPECT_EQ(topo.tileAt({-1, 0}), kInvalidTile);
    EXPECT_EQ(topo.tileAt({7, 0}), kInvalidTile);
    EXPECT_EQ(topo.tileAt({0, 7}), kInvalidTile);
}

TEST(MeshTopologyTest, HopDistanceIsManhattan)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const TileId corner = topo.tileAt({0, 0});
    const TileId opposite = topo.tileAt({6, 6});
    EXPECT_EQ(topo.hopDistance(corner, opposite), 12);
    EXPECT_EQ(topo.hopDistance(corner, topo.cpuTile()), 6);
    EXPECT_EQ(topo.hopDistance(corner, corner), 0);
}

TEST(MeshTopologyTest, RingsPartitionTheWafer)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    int ring_counts[4] = {0, 0, 0, 0};
    for (TileId gpm : topo.gpmTiles()) {
        const int ring = topo.ringOf(gpm);
        ASSERT_GE(ring, 1);
        ASSERT_LE(ring, 3);
        ++ring_counts[ring];
    }
    EXPECT_EQ(ring_counts[1], 8);
    EXPECT_EQ(ring_counts[2], 16);
    EXPECT_EQ(ring_counts[3], 24);
}

TEST(MeshTopologyTest, Mcm4MatchesFig4Baseline)
{
    const MeshTopology topo = MeshTopology::mcm4();
    EXPECT_EQ(topo.numGpms(), 4u);
    // Every GPM is one hop from the CPU (single-package MCM).
    for (TileId gpm : topo.gpmTiles())
        EXPECT_EQ(topo.hopDistance(gpm, topo.cpuTile()), 1);
    // Corner tiles are inactive.
    EXPECT_EQ(topo.tileAt({0, 0}), kInvalidTile);
    EXPECT_EQ(topo.tileAt({2, 2}), kInvalidTile);
}

TEST(MeshTopologyTest, GpmTilesAreSortedAndUnique)
{
    const MeshTopology topo = MeshTopology::wafer(5, 5);
    const auto &gpms = topo.gpmTiles();
    for (std::size_t i = 1; i < gpms.size(); ++i)
        EXPECT_LT(gpms[i - 1], gpms[i]);
}

/** Every wafer puts the CPU at the shared meshCenter() definition. */
class WaferSizeTest
    : public testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(WaferSizeTest, CenterCpuAndFullGpmCount)
{
    const auto [w, h] = GetParam();
    const MeshTopology topo = MeshTopology::wafer(w, h);
    EXPECT_EQ(topo.cpuCoord(), meshCenter(w, h));
    EXPECT_EQ(topo.cpuCoord(), (Coord{(w - 1) / 2, (h - 1) / 2}));
    EXPECT_TRUE(topo.isActive(topo.cpuTile()));
    EXPECT_EQ(topo.numGpms(), static_cast<std::size_t>(w * h - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WaferSizeTest,
    testing::Values(std::pair<int, int>{3, 3}, std::pair<int, int>{5, 5},
                    std::pair<int, int>{7, 7}, std::pair<int, int>{9, 7},
                    std::pair<int, int>{12, 7}, std::pair<int, int>{8, 8},
                    std::pair<int, int>{2, 2}, std::pair<int, int>{1, 2},
                    std::pair<int, int>{12, 12}));

TEST(MeshTopologyTest, EvenAndRectangularCentersAreInMesh)
{
    // fig22's wafer (12 wide, 7 tall): the CPU must be a real tile,
    // not the off-by-one (6, 3) the old floor(w/2) placement chose on
    // even widths.
    const MeshTopology fig22 = MeshTopology::wafer(12, 7);
    EXPECT_EQ(fig22.cpuCoord(), (Coord{5, 3}));
    EXPECT_NE(fig22.tileAt(fig22.cpuCoord()), kInvalidTile);

    const MeshTopology even = MeshTopology::wafer(8, 8);
    EXPECT_EQ(even.cpuCoord(), (Coord{3, 3}));
    EXPECT_NE(even.tileAt(even.cpuCoord()), kInvalidTile);
}

} // namespace
} // namespace hdpat
