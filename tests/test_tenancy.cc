/**
 * @file
 * Multi-tenancy tests: TenancySpec validation, single-tenant
 * inertness (an inert spec must not perturb the simulation), the
 * install-time revalidation gate against the in-flight-walk/unmap
 * race, async shootdown protocol semantics, IOMMU fault-queue
 * conservation, and audit-green multi-tenant runs under both the
 * baseline and HDPAT policies.
 */

#include <gtest/gtest.h>

#include "driver/runner.hh"
#include "driver/system.hh"
#include "driver/tenancy.hh"
#include "obs/audit.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.meshWidth = 5;
    cfg.meshHeight = 5;
    cfg.name = "tenancy-5x5";
    return cfg;
}

TenancySpec
churnSpec(std::uint32_t asids, std::uint64_t switch_rate,
          std::uint64_t churn_rate)
{
    TenancySpec spec;
    spec.asidCount = asids;
    spec.switchRatePerMTicks = switch_rate;
    spec.churnRatePerMTicks = churn_rate;
    return spec;
}

TEST(TenancySpecTest, ValidationCatchesBadSpecs)
{
    EXPECT_TRUE(TenancySpec{}.validationErrors().empty());
    EXPECT_TRUE(churnSpec(4, 500, 200).validationErrors().empty());
    // Churn without switching is legal even single-tenant: one tenant
    // freeing and re-touching its own pages.
    EXPECT_TRUE(churnSpec(1, 0, 300).validationErrors().empty());

    EXPECT_FALSE(churnSpec(0, 0, 0).validationErrors().empty());
    EXPECT_FALSE(churnSpec(1 << 17, 0, 0).validationErrors().empty());
    // Switching needs a second tenant to switch to.
    EXPECT_FALSE(churnSpec(1, 100, 0).validationErrors().empty());
}

TEST(TenancySpecTest, EnabledOnlyWhenAnyDimensionIsSet)
{
    EXPECT_FALSE(TenancySpec{}.enabled());
    EXPECT_FALSE(churnSpec(1, 0, 0).enabled());
    EXPECT_TRUE(churnSpec(2, 0, 0).enabled());
    EXPECT_TRUE(churnSpec(1, 0, 50).enabled());
    EXPECT_TRUE(churnSpec(2, 100, 0).enabled());
}

TEST(TenancyTest, InertSpecLeavesRunBitwiseIdentical)
{
    // The runner must skip enableTenancy entirely for a default spec,
    // so results (and the absence of tenancy metrics) are identical to
    // a run that predates the tenancy subsystem.
    const auto run = [](const TenancySpec &tenancy) {
        RunSpec spec;
        spec.config = smallConfig();
        spec.policy = TranslationPolicy::hdpat();
        spec.workload = "PR";
        spec.opsPerGpm = 600;
        spec.obs.audit = true;
        spec.tenancy = tenancy;
        return runOnce(spec);
    };
    const RunResult plain = run(TenancySpec{});
    const RunResult inert = run(churnSpec(1, 0, 0));

    EXPECT_EQ(plain.totalTicks, inert.totalTicks);
    EXPECT_EQ(plain.opsTotal, inert.opsTotal);
    EXPECT_EQ(plain.gpmFinish, inert.gpmFinish);
    EXPECT_EQ(plain.noc.packets, inert.noc.packets);
    EXPECT_EQ(plain.auditRetireCensusHash,
              inert.auditRetireCensusHash);
    EXPECT_EQ(inert.contextSwitches, 0u);
    EXPECT_EQ(inert.pagesChurned, 0u);
    EXPECT_EQ(inert.shootdownRounds, 0u);
    EXPECT_EQ(inert.pageFaults, 0u);
}

TEST(TenancyTest, MultiTenantChurnRunAuditsGreen)
{
    // The heavyweight end-to-end check: context switches + page churn
    // + shootdowns + faults, under the conservation auditor (which
    // panics on any violation, including the end-of-run stale-resident
    // sweep), across both policy families.
    for (const auto &pol :
         {TranslationPolicy::baseline(), TranslationPolicy::hdpat()}) {
        SCOPED_TRACE(pol.name);
        RunSpec spec;
        spec.config = smallConfig();
        spec.policy = pol;
        spec.workload = "PR";
        spec.opsPerGpm = 800;
        spec.obs.audit = true;
        spec.tenancy = churnSpec(3, 500, 300);
        const RunResult r = runOnce(spec);

        EXPECT_EQ(r.opsTotal, 800u * 24u);
        EXPECT_GT(r.contextSwitches, 0u);
        EXPECT_GT(r.pagesChurned, 0u);
        // Every churned page opened exactly one shootdown round, every
        // round closed, and every GPM tile acked each round once.
        EXPECT_EQ(r.shootdownRounds, r.pagesChurned);
        EXPECT_EQ(r.shootdownRounds, r.shootdownRoundsClosed);
        EXPECT_EQ(r.invalidationAcks,
                  r.shootdownRounds * r.gpmFinish.size());
        // A finished run implies a drained fault queue: an op blocked
        // on a not-present page cannot retire until its remap.
        EXPECT_EQ(r.pageFaults, r.faultsServiced);
    }
}

TEST(TenancyTest, ChurnedPagesFaultAndGetRemapped)
{
    // Single-tenant churn: the workload keeps re-touching pages the
    // scheduler unmaps, so the not-present fault path (bounded queue,
    // serial service, remap on last home) must carry real traffic.
    RunSpec spec;
    spec.config = smallConfig();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "PR";
    spec.opsPerGpm = 1000;
    spec.obs.audit = true;
    spec.tenancy = churnSpec(1, 0, 800);
    const RunResult r = runOnce(spec);

    EXPECT_EQ(r.opsTotal, 1000u * 24u);
    EXPECT_GT(r.pagesChurned, 0u);
    EXPECT_GT(r.pageFaults, 0u);
    EXPECT_EQ(r.pageFaults, r.faultsServiced);
    EXPECT_EQ(r.shootdownRounds, r.shootdownRoundsClosed);
}

class OnePageWorkload : public Workload
{
  public:
    OnePageWorkload() : Workload({"ONE", "one shared page", 1, 1 << 20})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        buffer_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t, std::size_t, std::size_t,
              std::uint64_t) const override
    {
        class OneShot : public AddressStream
        {
          public:
            explicit OneShot(Addr a) : addr_(a) {}
            std::optional<Addr>
            next() override
            {
                if (done_)
                    return std::nullopt;
                done_ = true;
                return addr_;
            }

          private:
            Addr addr_;
            bool done_ = false;
        };
        return std::make_unique<OneShot>(buffer_.baseVa);
    }

    const BufferHandle &buffer() const { return buffer_; }

  private:
    BufferHandle buffer_;
};

TEST(TenancyTest, StaleWalkResultIsNotInstalledAfterUnmap)
{
    // Regression for the in-flight-walk/unmap race: a walk samples the
    // PTE, the page is shot down, then the walk's result arrives. The
    // install gate must drop it -- re-installing would resurrect a
    // freed translation (the staleness oracle's core case).
    SystemConfig cfg = smallConfig();
    System sys(cfg, TranslationPolicy::hdpat());
    OnePageWorkload wl;
    sys.loadWorkload(wl, 0, 1);
    sys.run();

    const Vpn vpn = sys.pageTable().vpnOf(wl.buffer().baseVa);
    const Pte *pte = sys.pageTable().translate(vpn);
    ASSERT_NE(pte, nullptr);
    const Pfn stale_pfn = pte->pfn;

    // The shootdown lands while the (simulated) walk result is still
    // in flight.
    ASSERT_GT(sys.shootdown(vpn), 0u);

    // The late result arrives at a GPM that is not the home tile, via
    // the same entry point proactive pushes and chain fills use.
    Gpm &gpm = sys.gpm(0);
    const std::uint64_t blocked_before =
        gpm.stats().staleInstallsBlocked;
    gpm.receivePtePush(vpn, stale_pfn, /*prefetched=*/false);

    EXPECT_EQ(gpm.stats().staleInstallsBlocked, blocked_before + 1);
    EXPECT_FALSE(gpm.lastLevelTlb().peek(vpn).has_value());
    EXPECT_FALSE(gpm.cuckooFilter().contains(vpn));
}

TEST(TenancyTest, StalePfnIsRejectedAfterRemapFreshPfnInstalls)
{
    // PFNs are never reused, so after a remap the stale result is
    // distinguishable from the fresh one by PFN comparison alone.
    System sys(smallConfig(), TranslationPolicy::hdpat());
    OnePageWorkload wl;
    sys.loadWorkload(wl, 0, 1);
    sys.run();

    const Vpn vpn = sys.pageTable().vpnOf(wl.buffer().baseVa);
    const Pfn stale_pfn = sys.pageTable().translate(vpn)->pfn;
    sys.shootdown(vpn);
    const Pte *fresh = sys.pageTable().remap(vpn);
    ASSERT_NE(fresh, nullptr);
    ASSERT_NE(fresh->pfn, stale_pfn);

    Gpm &gpm = sys.gpm(0);
    gpm.receivePtePush(vpn, stale_pfn, false);
    EXPECT_FALSE(gpm.lastLevelTlb().peek(vpn).has_value());
    EXPECT_EQ(gpm.stats().staleInstallsBlocked, 1u);

    gpm.receivePtePush(vpn, fresh->pfn, false);
    const auto installed = gpm.lastLevelTlb().peek(vpn);
    ASSERT_TRUE(installed.has_value());
    EXPECT_EQ(*installed, fresh->pfn);
    EXPECT_EQ(gpm.stats().staleInstallsBlocked, 1u);
}

TEST(TenancyTest, ShootdownAsyncRefusesUnmappedAndOpenRounds)
{
    System sys(smallConfig(), TranslationPolicy::hdpat());
    OnePageWorkload wl;
    sys.loadWorkload(wl, 0, 1);
    sys.run();

    const Vpn vpn = sys.pageTable().vpnOf(wl.buffer().baseVa);
    ASSERT_FALSE(sys.shootdownInProgress(vpn));

    // First round opens (acks ride NoC events we never execute, so
    // the round stays deliberately open for the second probe).
    EXPECT_TRUE(sys.shootdownAsync(vpn));
    EXPECT_TRUE(sys.shootdownInProgress(vpn));
    EXPECT_EQ(sys.pageTable().translate(vpn), nullptr);

    // A second round while the first awaits acks must be refused --
    // and the key is unmapped now, which alone also refuses.
    EXPECT_FALSE(sys.shootdownAsync(vpn));

    // A never-mapped key is refused outright.
    EXPECT_FALSE(sys.shootdownAsync(0xdead0000));
}

TEST(TenancyTest, ContextSwitchRetagsOnlyNewIssues)
{
    // A context switch changes the key newly issued ops bind to;
    // ASID 0 keys are the identity (single-tenant layout).
    System sys(smallConfig(), TranslationPolicy::hdpat());
    OnePageWorkload wl;
    sys.loadWorkload(wl, 0, 1);

    Gpm &gpm = sys.gpm(0);
    EXPECT_EQ(gpm.activeAsid(), 0u);
    gpm.setActiveAsid(5);
    EXPECT_EQ(gpm.activeAsid(), 5u);

    const Vpn vpn = sys.pageTable().vpnOf(wl.buffer().baseVa);
    EXPECT_EQ(asidOfKey(asidKey(5, vpn)), 5u);
    EXPECT_EQ(vpnOfKey(asidKey(5, vpn)), vpn);
    EXPECT_EQ(asidKey(0, vpn), vpn);
}

TEST(TenancyTest, RunnerRejectsInvalidTenancySpec)
{
    RunSpec spec;
    spec.config = smallConfig();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "PR";
    spec.opsPerGpm = 100;
    spec.tenancy = churnSpec(1, 100, 0); // Switch with one tenant.
    EXPECT_FALSE(validationErrors(spec).empty());
}

TEST(TenancyTest, SchedulerCountersSurfaceInRunResult)
{
    // The directed/broadcast split plus skips must reconcile with the
    // total churn attempts the scheduler made.
    RunSpec spec;
    spec.config = smallConfig();
    spec.policy = TranslationPolicy::hdpat();
    spec.workload = "SPMV";
    spec.opsPerGpm = 700;
    spec.obs.audit = true;
    spec.tenancy = churnSpec(2, 300, 400);
    const RunResult r = runOnce(spec);

    EXPECT_GT(r.pagesChurned, 0u);
    EXPECT_EQ(r.shootdownRounds, r.pagesChurned);
    EXPECT_EQ(r.shootdownRounds, r.shootdownRoundsClosed);
}

} // namespace
} // namespace hdpat
