/**
 * @file
 * Unit tests for the metric registry: registration forms, typed
 * reads, live-field semantics, iteration order, and misuse panics.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/registry.hh"

namespace hdpat
{
namespace
{

TEST(MetricRegistryTest, CounterViaFunction)
{
    MetricRegistry reg;
    reg.addCounter("a.count", [] { return std::uint64_t{42}; });
    EXPECT_TRUE(reg.has("a.count"));
    EXPECT_FALSE(reg.has("a.other"));
    EXPECT_EQ(reg.counterValue("a.count"), 42u);
}

TEST(MetricRegistryTest, CounterViaFieldReadsLiveValue)
{
    MetricRegistry reg;
    std::uint64_t field = 1;
    reg.addCounter("live", &field);
    EXPECT_EQ(reg.counterValue("live"), 1u);
    field = 99; // Registration stores a getter, not a copy.
    EXPECT_EQ(reg.counterValue("live"), 99u);
}

TEST(MetricRegistryTest, GaugeAndSummary)
{
    MetricRegistry reg;
    double depth = 2.5;
    reg.addGauge("depth", [&depth] { return depth; });
    SummaryStat stat;
    stat.add(10.0);
    stat.add(20.0);
    reg.addSummary("latency", &stat);

    EXPECT_DOUBLE_EQ(reg.gaugeValue("depth"), 2.5);
    depth = 7.0;
    EXPECT_DOUBLE_EQ(reg.gaugeValue("depth"), 7.0);

    const SummaryStat snap = reg.summaryValue("latency");
    EXPECT_EQ(snap.count(), 2u);
    EXPECT_DOUBLE_EQ(snap.mean(), 15.0);
}

TEST(MetricRegistryTest, HistogramAndTimeSeries)
{
    MetricRegistry reg;
    Log2Histogram h;
    h.add(5);
    reg.addHistogram("hist", &h);
    TimeSeries ts(100);
    ts.add(10, 1.0);
    reg.addTimeSeries("series", &ts);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.has("hist"));
    EXPECT_TRUE(reg.has("series"));
}

TEST(MetricRegistryTest, ForEachVisitsInRegistrationOrder)
{
    MetricRegistry reg;
    reg.addCounter("zebra", [] { return std::uint64_t{1}; });
    reg.addGauge("apple", [] { return 2.0; });
    reg.addCounter("mango", [] { return std::uint64_t{3}; });

    std::vector<std::string> names;
    reg.forEach([&](const std::string &name,
                    const MetricRegistry::Value &) {
        names.push_back(name);
    });
    EXPECT_EQ(names,
              (std::vector<std::string>{"zebra", "apple", "mango"}));
}

TEST(MetricRegistryTest, DuplicateNamePanics)
{
    MetricRegistry reg;
    reg.addCounter("x", [] { return std::uint64_t{0}; });
    EXPECT_DEATH(reg.addCounter("x", [] { return std::uint64_t{1}; }),
                 "duplicate metric");
}

TEST(MetricRegistryTest, EmptyNamePanics)
{
    MetricRegistry reg;
    EXPECT_DEATH(reg.addCounter("", [] { return std::uint64_t{0}; }),
                 "empty name");
}

TEST(MetricRegistryTest, UnknownOrMistypedReadPanics)
{
    MetricRegistry reg;
    reg.addGauge("g", [] { return 1.0; });
    EXPECT_DEATH((void)reg.counterValue("missing"), "unknown metric");
    EXPECT_DEATH((void)reg.counterValue("g"), "not a counter");
    EXPECT_DEATH((void)reg.summaryValue("g"), "not a summary");
}

} // namespace
} // namespace hdpat
