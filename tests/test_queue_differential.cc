/**
 * @file
 * System-level differential coverage for the two event-queue
 * implementations: identical simulations (RunResults and metrics JSON,
 * byte for byte) across the whole Table II suite on the fig14 config
 * and on the fig22 7x12 wafer, plus engine observer bookkeeping that
 * must not depend on the ordering structure.
 */

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "driver/runner.hh"
#include "sim/engine.hh"
#include "workloads/suite.hh"

namespace hdpat
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** runOnce under a forced queue implementation, metrics JSON to
 *  @p json_path. The auditor is on so the retire-census hash (an
 *  order-sensitive digest) participates in the comparison. */
RunResult
runWithQueue(RunSpec spec, const char *impl,
             const std::string &json_path)
{
    spec.obs.audit = true;
    spec.obs.metricsJsonPath = json_path;
    EXPECT_EQ(setenv("HDPAT_EVENTQ", impl, 1), 0);
    RunResult result = runOnce(spec);
    EXPECT_EQ(unsetenv("HDPAT_EVENTQ"), 0);
    return result;
}

void
expectIdenticalRuns(const RunSpec &spec, const std::string &tag)
{
    const std::string dir = ::testing::TempDir();
    const RunResult heap =
        runWithQueue(spec, "heap", dir + tag + "-heap.json");
    const RunResult cal =
        runWithQueue(spec, "calendar", dir + tag + "-calendar.json");

    EXPECT_EQ(heap.totalTicks, cal.totalTicks);
    EXPECT_EQ(heap.opsTotal, cal.opsTotal);
    EXPECT_EQ(heap.gpmFinish, cal.gpmFinish);
    EXPECT_EQ(heap.remoteOps, cal.remoteOps);
    EXPECT_EQ(heap.sourceCounts, cal.sourceCounts);
    EXPECT_EQ(heap.auditIssued, cal.auditIssued);
    EXPECT_EQ(heap.auditRetired, cal.auditRetired);
    EXPECT_EQ(heap.auditRetireCensusHash, cal.auditRetireCensusHash);

    const std::string heap_json = slurp(dir + tag + "-heap.json");
    const std::string cal_json = slurp(dir + tag + "-calendar.json");
    EXPECT_FALSE(heap_json.empty());
    EXPECT_EQ(heap_json, cal_json)
        << tag << ": metrics JSON diverged between queues";
}

/**
 * Fig 14 shape: every Table II workload on the MI100 wafer under the
 * full HDPAT policy. Heap and calendar queues must produce bitwise
 * identical results -- the end-to-end form of the determinism
 * contract (same-tick FIFO order preserved through every component).
 */
TEST(QueueDifferentialTest, Fig14SuiteBitwiseIdenticalAcrossQueues)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::hdpat();
    spec.opsPerGpm = 300;
    for (const std::string &abbr : workloadAbbrs()) {
        SCOPED_TRACE(abbr);
        spec.workload = abbr;
        expectIdenticalRuns(spec, "fig14-" + abbr);
    }
}

/** Fig 22 shape: the 7x12 wafer (83 GPMs), baseline and HDPAT. */
TEST(QueueDifferentialTest, Fig22WaferBitwiseIdenticalAcrossQueues)
{
    RunSpec spec;
    spec.config = SystemConfig::mi100Wafer7x12();
    spec.opsPerGpm = 200;
    for (const std::string &abbr : {std::string("SPMV"),
                                    std::string("PR")}) {
        spec.workload = abbr;
        for (const bool use_hdpat : {false, true}) {
            spec.policy = use_hdpat ? TranslationPolicy::hdpat()
                                    : TranslationPolicy::baseline();
            SCOPED_TRACE(abbr + (use_hdpat ? "/hdpat" : "/baseline"));
            expectIdenticalRuns(spec, "fig22-" + abbr +
                                          (use_hdpat ? "-h" : "-b"));
        }
    }
}

class EngineQueueImplTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    void SetUp() override
    {
        ASSERT_EQ(setenv("HDPAT_EVENTQ", GetParam(), 1), 0);
    }
    void TearDown() override
    {
        ASSERT_EQ(unsetenv("HDPAT_EVENTQ"), 0);
    }
};

/**
 * Observer bookkeeping is queue-agnostic: a self-rescheduling observer
 * must never count as "live work", whichever structure orders it.
 */
TEST_P(EngineQueueImplTest, ObserverBookkeepingUnchanged)
{
    Engine engine;
    EXPECT_STREQ(eventQueueImplName(engine.queueImpl()), GetParam());

    int workload_runs = 0;
    int observer_runs = 0;
    // A heartbeat-style observer: reschedules itself while any
    // non-observer event is pending.
    std::function<void()> observer = [&] {
        engine.noteObserverFired();
        ++observer_runs;
        if (engine.hasNonObserverEvents()) {
            engine.noteObserverScheduled();
            engine.scheduleIn(10, [&] { observer(); });
        }
    };
    engine.noteObserverScheduled();
    engine.scheduleIn(10, [&] { observer(); });
    EXPECT_FALSE(engine.hasNonObserverEvents());

    engine.scheduleIn(35, [&] { ++workload_runs; });
    EXPECT_TRUE(engine.hasNonObserverEvents());

    engine.run();
    EXPECT_EQ(workload_runs, 1);
    // Fires at t=10, 20, 30 (workload pending), then at t=40 it sees
    // no live work and stops.
    EXPECT_EQ(observer_runs, 4);
    EXPECT_EQ(engine.nonObserverExecuted(), 1u);
    EXPECT_EQ(engine.now(), 40u);
}

/** The reserve estimate is visible and the high-water mark behaves. */
TEST_P(EngineQueueImplTest, PendingHighWaterTracksPeak)
{
    Engine engine;
    engine.reserveEvents(64);
    for (int i = 0; i < 5; ++i)
        engine.scheduleIn(static_cast<Tick>(i + 1), [] {});
    EXPECT_EQ(engine.pendingEventsHighWater(), 5u);
    engine.run();
    EXPECT_EQ(engine.pendingEventsHighWater(), 5u);
    EXPECT_EQ(engine.scheduledEvents(), 5u);
    engine.reset();
    EXPECT_EQ(engine.pendingEventsHighWater(), 5u); // Lifetime mark.
    EXPECT_EQ(engine.scheduledEvents(), 5u);        // Lifetime count.
}

INSTANTIATE_TEST_SUITE_P(Impls, EngineQueueImplTest,
                         ::testing::Values("calendar", "heap"));

} // namespace
} // namespace hdpat
