/**
 * @file
 * Unit tests for the deterministic RNG and the Zipf sampler.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace hdpat
{
namespace
{

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(RngTest, UniformIntCoversDomain)
{
    Rng rng(11);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.uniformInt(8)];
    ASSERT_EQ(seen.size(), 8u);
    // Coarse uniformity: each value within 3x of the expectation.
    for (const auto &[value, count] : seen) {
        EXPECT_GT(count, 10000 / 8 / 3) << "value " << value;
        EXPECT_LT(count, 3 * 10000 / 8) << "value " << value;
    }
}

TEST(RngTest, UniformRangeIsInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.uniformRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval)
{
    Rng rng(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(ZipfTest, RankZeroIsMostPopular)
{
    Rng rng(31);
    ZipfSampler zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfTest, ZeroExponentIsUniform)
{
    Rng rng(37);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 5000, 600);
}

TEST(ZipfTest, SamplesStayInDomain)
{
    Rng rng(41);
    ZipfSampler zipf(17, 0.8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 17u);
}

TEST(ZipfTest, SkewFollowsPowerLaw)
{
    Rng rng(43);
    ZipfSampler zipf(1000, 1.0);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[zipf.sample(rng)];
    // P(rank 0) / P(rank 9) should be roughly 10 under s = 1.
    ASSERT_GT(counts[9], 0);
    const double ratio =
        static_cast<double>(counts[0]) / counts[9];
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 20.0);
}

} // namespace
} // namespace hdpat
