/**
 * @file
 * Unit tests for the MSHR file: coalescing, capacity blocking, and
 * resolution semantics.
 */

#include <vector>

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace hdpat
{
namespace
{

TEST(MshrTest, FirstMissAllocates)
{
    MshrFile mshr(4);
    const auto outcome = mshr.registerMiss(1, [](Vpn, Pfn) {});
    EXPECT_EQ(outcome, MshrFile::Outcome::Allocated);
    EXPECT_TRUE(mshr.inFlight(1));
    EXPECT_EQ(mshr.occupancy(), 1u);
}

TEST(MshrTest, SecondMissMerges)
{
    MshrFile mshr(4);
    mshr.registerMiss(1, [](Vpn, Pfn) {});
    const auto outcome = mshr.registerMiss(1, [](Vpn, Pfn) {});
    EXPECT_EQ(outcome, MshrFile::Outcome::Merged);
    EXPECT_EQ(mshr.occupancy(), 1u);
    EXPECT_EQ(mshr.stats().merges, 1u);
}

TEST(MshrTest, FullRejects)
{
    MshrFile mshr(2);
    mshr.registerMiss(1, [](Vpn, Pfn) {});
    mshr.registerMiss(2, [](Vpn, Pfn) {});
    EXPECT_TRUE(mshr.full());
    const auto outcome = mshr.registerMiss(3, [](Vpn, Pfn) {});
    EXPECT_EQ(outcome, MshrFile::Outcome::Full);
    EXPECT_EQ(mshr.stats().fullRejections, 1u);
    // A merged miss is still accepted when full.
    EXPECT_EQ(mshr.registerMiss(1, [](Vpn, Pfn) {}),
              MshrFile::Outcome::Merged);
}

TEST(MshrTest, ResolveFiresAllWaitersInOrder)
{
    MshrFile mshr(4);
    std::vector<int> order;
    mshr.registerMiss(7, [&](Vpn v, Pfn p) {
        EXPECT_EQ(v, 7u);
        EXPECT_EQ(p, 70u);
        order.push_back(1);
    });
    mshr.registerMiss(7, [&](Vpn, Pfn) { order.push_back(2); });
    mshr.registerMiss(7, [&](Vpn, Pfn) { order.push_back(3); });

    mshr.resolve(7, 70);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(mshr.inFlight(7));
    EXPECT_EQ(mshr.occupancy(), 0u);
}

TEST(MshrTest, ResolveUnknownIsNoOp)
{
    MshrFile mshr(4);
    mshr.resolve(99, 1); // Must not crash or change state.
    EXPECT_EQ(mshr.occupancy(), 0u);
}

TEST(MshrTest, ZeroCapacityIsUnlimited)
{
    MshrFile mshr(0);
    for (Vpn v = 0; v < 10000; ++v) {
        EXPECT_EQ(mshr.registerMiss(v, [](Vpn, Pfn) {}),
                  MshrFile::Outcome::Allocated);
    }
    EXPECT_FALSE(mshr.full());
}

TEST(MshrTest, CallbackMayReenter)
{
    // A resolution callback registering a new miss for the same VPN
    // must allocate a fresh entry (the old one is already gone).
    MshrFile mshr(4);
    bool reentered = false;
    mshr.registerMiss(5, [&](Vpn, Pfn) {
        const auto outcome =
            mshr.registerMiss(5, [&](Vpn, Pfn) { reentered = true; });
        EXPECT_EQ(outcome, MshrFile::Outcome::Allocated);
    });
    mshr.resolve(5, 50);
    EXPECT_TRUE(mshr.inFlight(5));
    mshr.resolve(5, 50);
    EXPECT_TRUE(reentered);
}

TEST(MshrTest, FreeingMakesRoom)
{
    MshrFile mshr(1);
    mshr.registerMiss(1, [](Vpn, Pfn) {});
    EXPECT_EQ(mshr.registerMiss(2, [](Vpn, Pfn) {}),
              MshrFile::Outcome::Full);
    mshr.resolve(1, 10);
    EXPECT_EQ(mshr.registerMiss(2, [](Vpn, Pfn) {}),
              MshrFile::Outcome::Allocated);
}

} // namespace
} // namespace hdpat
