/**
 * @file
 * Unit tests for the concentric-layer structure (§IV-C).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "hdpat/cluster_map.hh"
#include "hdpat/concentric_layers.hh"

namespace hdpat
{
namespace
{

TEST(ConcentricLayersTest, DefaultCTwoOn7x7)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    ASSERT_EQ(layers.numLayers(), 2);
    EXPECT_EQ(layers.layerTiles(0).size(), 8u);  // Ring 1.
    EXPECT_EQ(layers.layerTiles(1).size(), 16u); // Ring 2.
}

TEST(ConcentricLayersTest, CThreeReachesTheBorder)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 3);
    ASSERT_EQ(layers.numLayers(), 3);
    EXPECT_EQ(layers.layerTiles(2).size(), 24u); // Border ring.
}

TEST(ConcentricLayersTest, LayerOfClassifiesTiles)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    for (TileId gpm : topo.gpmTiles()) {
        const int ring = topo.ringOf(gpm);
        if (ring <= 2) {
            EXPECT_EQ(layers.layerOf(gpm), ring - 1);
            EXPECT_TRUE(layers.isCachingTile(gpm));
        } else {
            EXPECT_EQ(layers.layerOf(gpm), -1);
            EXPECT_FALSE(layers.isCachingTile(gpm));
        }
    }
    EXPECT_EQ(layers.layerOf(topo.cpuTile()), -1);
    EXPECT_EQ(layers.layerOf(kInvalidTile), -1);
}

TEST(ConcentricLayersTest, LayersAreDisjointAndComplete)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 3);
    std::set<TileId> seen;
    for (int layer = 0; layer < layers.numLayers(); ++layer) {
        for (TileId t : layers.layerTiles(layer)) {
            EXPECT_TRUE(seen.insert(t).second)
                << "tile " << t << " in two layers";
        }
    }
    EXPECT_EQ(seen.size(), topo.numGpms()); // C=3 covers every GPM.
}

TEST(ConcentricLayersTest, TilesOrderedByAngle)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    const Coord center = topo.cpuCoord();
    for (int layer = 0; layer < 2; ++layer) {
        const auto &tiles = layers.layerTiles(layer);
        for (std::size_t i = 1; i < tiles.size(); ++i) {
            EXPECT_LE(angleOf(topo.coordOf(tiles[i - 1]), center),
                      angleOf(topo.coordOf(tiles[i]), center));
        }
    }
}

TEST(ConcentricLayersTest, NearestInLayer)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    // From the north-west corner, the nearest ring-2 tile is (1,1).
    const TileId corner = topo.tileAt({0, 0});
    EXPECT_EQ(layers.nearestInLayer(1, corner), topo.tileAt({1, 1}));
    // From a ring-1 tile, its own layer's nearest tile is itself.
    const TileId inner = topo.tileAt({3, 2});
    EXPECT_EQ(layers.nearestInLayer(0, inner), inner);
}

TEST(ConcentricLayersTest, ClippedRingsAreSkipped)
{
    // The MCM star has only ring-1 GPMs; requesting C=3 builds one
    // layer instead of three.
    const MeshTopology topo = MeshTopology::mcm4();
    const ConcentricLayers layers(topo, 3);
    EXPECT_EQ(layers.numLayers(), 1);
    EXPECT_EQ(layers.layerTiles(0).size(), 4u);
}

TEST(ConcentricLayersTest, ZeroLayersIsValid)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 0);
    EXPECT_EQ(layers.numLayers(), 0);
    EXPECT_FALSE(layers.isCachingTile(topo.gpmTiles().front()));
}

/** Rectangular wafers (7x12) still produce sane layers. */
TEST(ConcentricLayersTest, RectangularWafer)
{
    const MeshTopology topo = MeshTopology::wafer(12, 7);
    const ConcentricLayers layers(topo, 2);
    ASSERT_EQ(layers.numLayers(), 2);
    EXPECT_EQ(layers.layerTiles(0).size(), 8u);
    EXPECT_EQ(layers.layerTiles(1).size(), 16u);
    for (int layer = 0; layer < 2; ++layer) {
        for (TileId t : layers.layerTiles(layer))
            EXPECT_EQ(topo.ringOf(t), layer + 1);
    }
}

/**
 * fig22 (12x7) and even (8x8) meshes: MeshTopology, ConcentricLayers
 * and ClusterMap all agree on the same in-mesh center definition.
 */
TEST(ConcentricLayersTest, CenterConsistentAcrossUsers)
{
    for (const auto &[w, h] : {std::pair<int, int>{12, 7},
                               std::pair<int, int>{8, 8}}) {
        const MeshTopology topo = MeshTopology::wafer(w, h);
        EXPECT_EQ(topo.cpuCoord(), meshCenter(w, h)) << w << "x" << h;
        EXPECT_NE(topo.tileAt(topo.cpuCoord()), kInvalidTile);

        // ConcentricLayers builds rings around the same tile: every
        // ring-1 tile is Chebyshev-1 from meshCenter.
        const ConcentricLayers layers(topo, 2);
        for (TileId t : layers.layerTiles(0)) {
            EXPECT_EQ(chebyshev(topo.coordOf(t), meshCenter(w, h)), 1)
                << w << "x" << h << " tile " << t;
        }

        // ClusterMap (via DistributedGroups) splits on the same
        // center column: tiles left of it are group 0, right group 1.
        const DistributedGroups groups(layers);
        for (int g : {0, 1}) {
            for (TileId t : groups.groupTiles(g)) {
                const Coord c = topo.coordOf(t);
                if (c.x != meshCenter(w, h).x)
                    EXPECT_EQ(g, c.x < meshCenter(w, h).x ? 0 : 1)
                        << w << "x" << h << " tile " << t;
            }
        }
    }
}

} // namespace
} // namespace hdpat
