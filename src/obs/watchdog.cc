#include "obs/watchdog.hh"

#include <sstream>
#include <utility>

#include "sim/log.hh"

namespace hdpat
{

namespace
{

/**
 * Simulation events (observer self-events excluded) that must have
 * executed within one progress-free interval before it counts as a
 * livelock. A real retry storm fires hundreds per interval; a lone
 * straggler (one packet still in flight at the tail of a run) should
 * drain quietly.
 */
constexpr std::uint64_t kStallEventThreshold = 4;

} // namespace

Watchdog::Watchdog(Engine &engine, Tick interval, ProgressFn progress,
                   DiagnosticFn diagnostic)
    : engine_(engine), interval_(interval),
      progress_(std::move(progress)), diagnostic_(std::move(diagnostic))
{
    hdpat_fatal_if(interval_ == 0, "watchdog interval must be > 0");
    hdpat_fatal_if(!progress_, "watchdog needs a progress function");
    handler_ = [](const std::string &message) { hdpat_fatal(message); };
}

void
Watchdog::setStallHandler(StallHandler handler)
{
    if (handler)
        handler_ = std::move(handler);
}

void
Watchdog::start()
{
    if (running_)
        return;
    running_ = true;
    lastProgress_ = progress_();
    lastExecuted_ = engine_.nonObserverExecuted();
    engine_.noteObserverScheduled();
    engine_.scheduleIn(interval_, [this] { fire(); });
}

void
Watchdog::startExternal()
{
    if (running_)
        return;
    running_ = true;
    external_ = true;
    lastProgress_ = progress_();
    lastExecuted_ = engine_.nonObserverExecuted();
    nextCheckTick_ = engine_.now() + interval_;
}

void
Watchdog::checkExternal(Tick now)
{
    if (!running_ || !external_ || now < nextCheckTick_)
        return;
    runCheck(now);
    nextCheckTick_ = now + interval_;
}

void
Watchdog::fire()
{
    engine_.noteObserverFired();
    if (!running_)
        return;

    // Only observer events left: the workload drained, the run is
    // winding down — nothing to watch.
    if (!engine_.hasNonObserverEvents()) {
        running_ = false;
        return;
    }

    runCheck(engine_.now());
    if (!running_)
        return;
    engine_.noteObserverScheduled();
    engine_.scheduleIn(interval_, [this] { fire(); });
}

void
Watchdog::runCheck(Tick now)
{
    ++checks_;

    const std::uint64_t progress = progress_();
    // Livelock = simulation events (not observer self-events) kept
    // firing this interval, yet nothing retired.
    const std::uint64_t executed = engine_.nonObserverExecuted();
    const bool events_fired =
        executed >= lastExecuted_ + kStallEventThreshold;
    if (progress == lastProgress_ && events_fired) {
        triggered_ = true;
        running_ = false;
        std::ostringstream os;
        os << "watchdog: no memop retired for " << interval_
           << " ticks (now=" << now << ", "
           << (executed - lastExecuted_)
           << " events executed in the interval, progress stuck at "
           << progress << ")";
        if (diagnostic_)
            os << "\n" << diagnostic_();
        handler_(os.str());
        return;
    }

    lastProgress_ = progress;
    lastExecuted_ = executed;
}

} // namespace hdpat
