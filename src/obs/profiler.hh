/**
 * @file
 * Host self-profiler: scoped RAII wall-clock timers over the
 * simulator's own hot paths (event dispatch, translation lookups, NoC
 * routing, the IOMMU pipeline, workload generation, export writing),
 * aggregated per run and exported as the "profile" section of the
 * metrics JSON.
 *
 * Same null-pointer pattern as the tracer: components hold a
 * `Profiler *` that is null unless profiling was requested, and
 * ProfScope's constructor/destructor test it once each. Sections are
 * *inclusive* — NoC routing time counted inside an event also counts
 * toward event dispatch — so per-section numbers answer "where does
 * wall-clock go" rather than summing to 100%.
 *
 * The hot-path members (ProfScope, Profiler::add) are header-only on
 * purpose: sim/engine.cc instruments event dispatch with them without
 * creating a link dependency from hdpat_sim onto hdpat_obs.
 */

#ifndef HDPAT_OBS_PROFILER_HH
#define HDPAT_OBS_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace hdpat
{

/** One instrumented host code path. */
enum class ProfSection : std::uint8_t
{
    EventDispatch = 0, ///< Engine::step callback execution.
    Translate,         ///< GPM TLB/filter lookup chain.
    NocRouting,        ///< Network::computeArrival route walk.
    IommuPipeline,     ///< IOMMU ingress + walk completion.
    WorkloadGen,       ///< Workload allocation + stream setup.
    Export,            ///< Metrics/trace/spatial export writing.
};

constexpr std::size_t kNumProfSections =
    static_cast<std::size_t>(ProfSection::Export) + 1;

/** Printable name of a profiled section (part of the JSON schema). */
const char *profSectionName(ProfSection section);

/** Aggregated result of one run's profiling (mergeable across runs). */
struct ProfileSnapshot
{
    struct Section
    {
        std::uint64_t calls = 0;
        std::uint64_t nanos = 0;
    };
    std::array<Section, kNumProfSections> sections{};
    /** Wall-clock nanoseconds of the whole System::run(). */
    std::uint64_t wallNanos = 0;
    /** Runs merged into this snapshot (0 = profiling was off). */
    std::uint64_t runs = 0;

    bool empty() const { return runs == 0; }
    void merge(const ProfileSnapshot &other);
};

class Profiler
{
  public:
    /** Hot path: one array index + two adds. */
    void add(ProfSection section, std::uint64_t nanos)
    {
        auto &s =
            snapshot_.sections[static_cast<std::size_t>(section)];
        ++s.calls;
        s.nanos += nanos;
    }

    void addWall(std::uint64_t nanos) { snapshot_.wallNanos += nanos; }

    /**
     * Fold another profiler's section totals into this one (domain
     * workers profile into private instances; the driver absorbs them
     * after the run so the exported profile covers every thread).
     * Wall-clock is not absorbed: worker time overlaps the run's wall.
     */
    void absorb(const Profiler &other)
    {
        for (std::size_t i = 0; i < kNumProfSections; ++i) {
            snapshot_.sections[i].calls +=
                other.snapshot_.sections[i].calls;
            snapshot_.sections[i].nanos +=
                other.snapshot_.sections[i].nanos;
        }
    }

    /** The aggregate so far, stamped as one run. */
    ProfileSnapshot snapshot() const
    {
        ProfileSnapshot copy = snapshot_;
        copy.runs = 1;
        return copy;
    }

  private:
    ProfileSnapshot snapshot_;
};

/**
 * RAII section timer. With a null profiler both ends are a single
 * pointer test; with one attached, two steady_clock reads.
 */
class ProfScope
{
  public:
    ProfScope(Profiler *profiler, ProfSection section)
        : profiler_(profiler), section_(section)
    {
        if (profiler_) [[unlikely]]
            start_ = std::chrono::steady_clock::now();
    }

    ~ProfScope()
    {
        if (profiler_) [[unlikely]] {
            const auto elapsed =
                std::chrono::steady_clock::now() - start_;
            profiler_->add(
                section_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(elapsed)
                        .count()));
        }
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    Profiler *profiler_;
    ProfSection section_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace hdpat

#endif // HDPAT_OBS_PROFILER_HH
