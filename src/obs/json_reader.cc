#include "obs/json_reader.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace hdpat
{

namespace
{

/** Recursive-descent parser over a flat character range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after document");
        return true;
    }

  private:
    /** Nesting bound: deep enough for real documents, shallow enough
     *  that malformed input cannot blow the host stack. */
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &why)
    {
        std::ostringstream os;
        os << why << " at offset " << pos_;
        error_ = os.str();
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 64 levels");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
        case '{':
            return parseObject(out, depth);
        case '[':
            return parseArray(out, depth);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        case 't':
        case 'f':
            return parseBool(out);
        case 'n':
            return parseLiteral("null") &&
                   (out.kind = JsonValue::Kind::Null, true);
        default:
            return parseNumber(out);
        }
    }

    bool parseLiteral(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) != 0)
            return fail(std::string("expected '") + lit + "'");
        pos_ += n;
        return true;
    }

    bool parseBool(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Bool;
        if (text_[pos_] == 't') {
            out.boolean = true;
            return parseLiteral("true");
        }
        out.boolean = false;
        return parseLiteral("false");
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        // RFC 8259 grammar by hand: strtod alone would accept "inf",
        // "nan", and hex floats, all of which must be rejected.
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            return fail("malformed number");
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return fail("malformed fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return fail("malformed exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        const double v = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(v)) {
            pos_ = start;
            return fail("number is not finite");
        }
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point; surrogate pairs
                // stay as two encoded halves (no exporter emits them).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                return fail("bad escape character");
            }
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            skipWs();
            if (!parseValue(element, depth + 1))
                return false;
            out.elements.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected string key in object");
            std::string key;
            if (!parseString(key))
                return false;
            if (out.find(key))
                return fail("duplicate object key \"" + key + "\"");
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after object key");
            skipWs();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    hdpat_fatal_if(!v, "JSON object has no member \"" << key << "\"");
    return *v;
}

double
JsonValue::asNumber() const
{
    hdpat_fatal_if(kind != Kind::Number, "JSON value is not a number");
    return number;
}

std::uint64_t
JsonValue::asUint() const
{
    const double v = asNumber();
    hdpat_fatal_if(v < 0, "JSON number is negative");
    return static_cast<std::uint64_t>(v);
}

const std::string &
JsonValue::asString() const
{
    hdpat_fatal_if(kind != Kind::String, "JSON value is not a string");
    return str;
}

bool
JsonValue::asBool() const
{
    hdpat_fatal_if(kind != Kind::Bool, "JSON value is not a bool");
    return boolean;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    Parser parser(text, error);
    out = JsonValue();
    return parser.parse(out);
}

JsonValue
parseJsonOrDie(const std::string &text, const std::string &what)
{
    JsonValue value;
    std::string error;
    hdpat_fatal_if(!parseJson(text, value, error),
                   what << ": " << error);
    return value;
}

JsonValue
parseJsonFileOrDie(const std::string &path)
{
    std::ifstream in(path);
    hdpat_fatal_if(!in, "cannot open JSON file '" << path << "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseJsonOrDie(buffer.str(), path);
}

} // namespace hdpat
