#include "obs/registry.hh"

#include "sim/log.hh"

namespace hdpat
{

void
MetricRegistry::add(const std::string &name, Value value)
{
    hdpat_panic_if(name.empty(), "metric with empty name");
    const auto [it, inserted] = index_.emplace(name, entries_.size());
    hdpat_panic_if(!inserted, "duplicate metric '" << name << "'");
    (void)it;
    entries_.push_back(Entry{name, std::move(value)});
}

void
MetricRegistry::addCounter(const std::string &name, CounterFn fn)
{
    add(name, Value{std::in_place_index<0>, std::move(fn)});
}

void
MetricRegistry::addCounter(const std::string &name,
                           const std::uint64_t *field)
{
    addCounter(name, [field] { return *field; });
}

void
MetricRegistry::addGauge(const std::string &name, GaugeFn fn)
{
    add(name, Value{std::in_place_index<1>, std::move(fn)});
}

void
MetricRegistry::addSummary(const std::string &name, SummaryFn fn)
{
    add(name, Value{std::in_place_index<2>, std::move(fn)});
}

void
MetricRegistry::addSummary(const std::string &name,
                           const SummaryStat *stat)
{
    addSummary(name, [stat] { return *stat; });
}

void
MetricRegistry::addHistogram(const std::string &name, HistogramFn fn)
{
    add(name, Value{std::in_place_index<3>, std::move(fn)});
}

void
MetricRegistry::addHistogram(const std::string &name,
                             const Log2Histogram *h)
{
    addHistogram(name, [h] { return *h; });
}

void
MetricRegistry::addTimeSeries(const std::string &name,
                              const TimeSeries *ts)
{
    add(name, Value{std::in_place_index<4>, [ts] { return ts; }});
}

bool
MetricRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

const MetricRegistry::Value &
MetricRegistry::at(const std::string &name) const
{
    const auto it = index_.find(name);
    hdpat_panic_if(it == index_.end(),
                   "unknown metric '" << name << "'");
    return entries_[it->second].value;
}

std::uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    const Value &v = at(name);
    hdpat_panic_if(v.index() != 0,
                   "metric '" << name << "' is not a counter");
    return std::get<0>(v)();
}

double
MetricRegistry::gaugeValue(const std::string &name) const
{
    const Value &v = at(name);
    hdpat_panic_if(v.index() != 1,
                   "metric '" << name << "' is not a gauge");
    return std::get<1>(v)();
}

SummaryStat
MetricRegistry::summaryValue(const std::string &name) const
{
    const Value &v = at(name);
    hdpat_panic_if(v.index() != 2,
                   "metric '" << name << "' is not a summary");
    return std::get<2>(v)();
}

void
MetricRegistry::forEach(
    const std::function<void(const std::string &, const Value &)> &fn)
    const
{
    for (const Entry &e : entries_)
        fn(e.name, e.value);
}

} // namespace hdpat
