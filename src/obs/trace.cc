#include "obs/trace.hh"

#include "sim/log.hh"

namespace hdpat
{

const char *
spanEventName(SpanEvent ev)
{
    switch (ev) {
      case SpanEvent::Issue:
        return "issue";
      case SpanEvent::L1TlbHit:
        return "l1-tlb-hit";
      case SpanEvent::L2TlbHit:
        return "l2-tlb-hit";
      case SpanEvent::CuckooNegative:
        return "cuckoo-negative";
      case SpanEvent::LastLevelTlbHit:
        return "ll-tlb-hit";
      case SpanEvent::LocalWalkStart:
        return "local-walk-start";
      case SpanEvent::LocalWalkHit:
        return "local-walk-hit";
      case SpanEvent::CuckooFalsePositive:
        return "cuckoo-false-positive";
      case SpanEvent::RemoteStart:
        return "remote-start";
      case SpanEvent::RemoteStalled:
        return "remote-stalled";
      case SpanEvent::ProbeSent:
        return "probe-sent";
      case SpanEvent::ProbeHit:
        return "probe-hit";
      case SpanEvent::ProbeMiss:
        return "probe-miss";
      case SpanEvent::NetSend:
        return "net-send";
      case SpanEvent::NetArrive:
        return "net-arrive";
      case SpanEvent::IommuArrive:
        return "iommu-arrive";
      case SpanEvent::IommuAdmit:
        return "iommu-admit";
      case SpanEvent::IommuRedirect:
        return "iommu-redirect";
      case SpanEvent::IommuTlbHit:
        return "iommu-tlb-hit";
      case SpanEvent::IommuWalkStart:
        return "iommu-walk-start";
      case SpanEvent::IommuWalkDone:
        return "iommu-walk-done";
      case SpanEvent::IommuRespond:
        return "iommu-respond";
      case SpanEvent::RedirectArrive:
        return "redirect-arrive";
      case SpanEvent::RedirectHit:
        return "redirect-hit";
      case SpanEvent::RedirectBounce:
        return "redirect-bounce";
      case SpanEvent::DelegatedWalk:
        return "delegated-walk";
      case SpanEvent::GmmuWalkStart:
        return "gmmu-walk-start";
      case SpanEvent::GmmuWalkDone:
        return "gmmu-walk-done";
      case SpanEvent::Resolved:
        return "resolved";
      case SpanEvent::DataAccess:
        return "data-access";
      case SpanEvent::Complete:
        return "complete";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity, std::uint64_t sample_n)
    : capacity_(capacity ? capacity : 1),
      sampleN_(sample_n ? sample_n : 1)
{
    ring_.reserve(capacity_);
}

bool
Tracer::sampled(TileId owner, Vpn vpn, Tick now) const
{
    if (sampleN_ <= 1)
        return true;
    // Splitmix64-style finalizer over the span key plus issue tick.
    // Stateless by design: the decision for a given op is identical
    // whatever order the runner interleaves runs in.
    std::uint64_t x =
        vpn + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(now) + 1) +
        0x94d049bb133111ebull *
            (static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(owner)) + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x % sampleN_ == 0;
}

bool
Tracer::begin(TileId owner, Vpn vpn, Tick now)
{
    ++opsSeen_;
    if (!sampled(owner, vpn, now))
        return false;
    const Key key{owner, vpn};
    // A concurrent op on the same (tile, VPN) is already traced; its
    // span absorbs this op's events rather than opening a second one.
    if (live_.count(key))
        return false;
    live_.emplace(key, nextSpan_);
    ++spansStarted_;
    push({nextSpan_, now, vpn, 0, owner, owner, SpanEvent::Issue});
    ++nextSpan_;
    return true;
}

bool
Tracer::active(TileId owner, Vpn vpn) const
{
    return live_.count(Key{owner, vpn}) != 0;
}

void
Tracer::record(TileId owner, Vpn vpn, Tick now, SpanEvent ev, TileId at,
               std::uint64_t arg)
{
    const auto it = live_.find(Key{owner, vpn});
    if (it == live_.end())
        return;
    push({it->second, now, vpn, arg, owner, at, ev});
}

void
Tracer::end(TileId owner, Vpn vpn, Tick now)
{
    const auto it = live_.find(Key{owner, vpn});
    if (it == live_.end())
        return;
    push({it->second, now, vpn, 0, owner, owner, SpanEvent::Complete});
    live_.erase(it);
    ++spansCompleted_;
}

void
Tracer::push(const TraceRecord &rec)
{
    if (sink_)
        sink_->onRecord(rec);
    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
        return;
    }
    // Wrap: overwrite the oldest record.
    ring_[head_] = rec;
    head_ = (head_ + 1) % capacity_;
    wrapped_ = true;
    ++dropped_;
}

std::size_t
Tracer::size() const
{
    return ring_.size();
}

void
Tracer::forEachRecord(
    const std::function<void(const TraceRecord &)> &fn) const
{
    if (!wrapped_) {
        for (const TraceRecord &rec : ring_)
            fn(rec);
        return;
    }
    for (std::size_t i = 0; i < ring_.size(); ++i)
        fn(ring_[(head_ + i) % ring_.size()]);
}

} // namespace hdpat
