#include "obs/heartbeat.hh"

#include "sim/log.hh"

namespace hdpat
{

Heartbeat::Heartbeat(Engine &engine, Tick interval, StatusFn status)
    : engine_(engine), interval_(interval), status_(std::move(status))
{
    hdpat_panic_if(interval_ == 0, "heartbeat interval must be > 0");
}

void
Heartbeat::start()
{
    if (running_)
        return;
    running_ = true;
    lastExecuted_ = engine_.executedEvents();
    lastTick_ = engine_.now();
    lastWall_ = std::chrono::steady_clock::now();
    engine_.noteObserverScheduled();
    engine_.scheduleIn(interval_, [this] { fire(); });
}

void
Heartbeat::startExternal()
{
    if (running_)
        return;
    running_ = true;
    external_ = true;
    lastExecuted_ = engine_.executedEvents();
    lastTick_ = engine_.now();
    nextBeatTick_ = lastTick_ + interval_;
    lastWall_ = std::chrono::steady_clock::now();
}

void
Heartbeat::beatExternal(Tick now)
{
    if (!running_ || !external_ || now < nextBeatTick_)
        return;
    logBeat(now);
    nextBeatTick_ = now + interval_;
}

void
Heartbeat::fire()
{
    engine_.noteObserverFired();
    if (!running_)
        return;

    // Only observer events (this one, the watchdog, the sampler) left
    // at beat time means the workload drained: stop, so observers
    // never keep the event loop alive — alone or among themselves.
    if (!engine_.hasNonObserverEvents()) {
        running_ = false;
        return;
    }

    logBeat(engine_.now());
    engine_.noteObserverScheduled();
    engine_.scheduleIn(interval_, [this] { fire(); });
}

void
Heartbeat::logBeat(Tick now)
{
    ++beats_;
    const std::uint64_t executed = engine_.executedEvents();
    const auto wall = std::chrono::steady_clock::now();
    const double wall_s =
        std::chrono::duration<double>(wall - lastWall_).count();
    const std::uint64_t events = executed - lastExecuted_;
    const double events_per_s =
        wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
    const double events_per_ktick =
        now > lastTick_ ? static_cast<double>(events) * 1000.0 /
                              static_cast<double>(now - lastTick_)
                        : 0.0;

    hdpat_inform("heartbeat #"
                 << beats_ << ": tick=" << now << " events=" << executed
                 << " (+" << events << ", "
                 << static_cast<std::uint64_t>(events_per_s)
                 << "/s wall, " << static_cast<std::uint64_t>(
                        events_per_ktick)
                 << "/ktick) pending=" << engine_.pendingEvents()
                 << (status_ ? " " + status_() : std::string()));

    lastExecuted_ = executed;
    lastTick_ = now;
    lastWall_ = wall;
}

} // namespace hdpat
