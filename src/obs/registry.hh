/**
 * @file
 * MetricRegistry: a named catalogue of everything a run can report.
 *
 * Components register counters (monotonic integers), gauges (point
 * doubles), summaries (SummaryStat), histograms (Log2Histogram), and
 * time series (TimeSeries) under hierarchical dotted names
 * ("iommu.walks_completed", "gpm.t5.l1_tlb_hits"). Registration stores
 * a *getter*, not a copy, so the registry imposes zero cost on the hot
 * path: values are read only when a snapshot is taken (RunResult
 * aggregation, JSON export).
 */

#ifndef HDPAT_OBS_REGISTRY_HH
#define HDPAT_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "sim/stats.hh"

namespace hdpat
{

class MetricRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    using SummaryFn = std::function<SummaryStat()>;
    using HistogramFn = std::function<Log2Histogram()>;
    using TimeSeriesFn = std::function<const TimeSeries *()>;

    using Value = std::variant<CounterFn, GaugeFn, SummaryFn,
                               HistogramFn, TimeSeriesFn>;

    /** Register a counter via getter (panics on duplicate names). */
    void addCounter(const std::string &name, CounterFn fn);
    /** Register a counter that reads a live component field. */
    void addCounter(const std::string &name, const std::uint64_t *field);
    void addGauge(const std::string &name, GaugeFn fn);
    void addSummary(const std::string &name, SummaryFn fn);
    void addSummary(const std::string &name, const SummaryStat *stat);
    void addHistogram(const std::string &name, HistogramFn fn);
    void addHistogram(const std::string &name, const Log2Histogram *h);
    void addTimeSeries(const std::string &name, const TimeSeries *ts);

    bool has(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** Read a registered counter (panics when absent or mistyped). */
    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;
    SummaryStat summaryValue(const std::string &name) const;

    /** Visit all metrics in registration order. */
    void forEach(const std::function<void(const std::string &name,
                                          const Value &value)> &fn) const;

  private:
    struct Entry
    {
        std::string name;
        Value value;
    };

    const Value &at(const std::string &name) const;
    void add(const std::string &name, Value value);

    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace hdpat

#endif // HDPAT_OBS_REGISTRY_HH
