/**
 * @file
 * A strict, dependency-free JSON reader: the counterpart of
 * JsonWriter. Parses a whole document into a JsonValue tree and
 * rejects anything RFC 8259 rejects — unbalanced structure, trailing
 * garbage, NaN/Infinity literals, non-finite numbers, bad escapes.
 *
 * Consumers: the exporter-validity tests (prove every export is
 * well-formed), fig05_position_imbalance (regenerates the figure from
 * the exported "spatial" section), and bench/perf_report (diffs a
 * "profile" section against a committed baseline).
 */

#ifndef HDPAT_OBS_JSON_READER_HH
#define HDPAT_OBS_JSON_READER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hdpat
{

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> elements;
    /** Object members in document order (duplicate keys rejected). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
    /** Member lookup; panics (hdpat_fatal) when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Value accessors; panic on kind mismatch. */
    double asNumber() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;
    bool asBool() const;
};

/**
 * Parse @p text strictly. Returns false (with a position-annotated
 * message in @p error) on any deviation from RFC 8259.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** parseJson that dies (hdpat_fatal) with the parse error. */
JsonValue parseJsonOrDie(const std::string &text,
                         const std::string &what);

/** Read an entire file and parse it; dies on I/O or parse failure. */
JsonValue parseJsonFileOrDie(const std::string &path);

} // namespace hdpat

#endif // HDPAT_OBS_JSON_READER_HH
