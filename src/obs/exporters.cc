#include "obs/exporters.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "obs/json_writer.hh"

namespace hdpat
{

namespace
{

void
writeSummary(JsonWriter &w, const SummaryStat &s)
{
    w.beginObject()
        .field("count", s.count())
        .field("sum", s.sum())
        .field("mean", s.mean())
        .field("min", s.min())
        .field("max", s.max())
        .field("stddev", s.stddev())
        .endObject();
}

void
writeHistogram(JsonWriter &w, const Log2Histogram &h)
{
    w.beginObject().field("total", h.totalCount());
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < h.bucketCount(); ++i) {
        if (h.bucket(i) == 0)
            continue;
        w.beginObject()
            .field("low", Log2Histogram::bucketLow(i))
            .field("high", Log2Histogram::bucketHigh(i))
            .field("count", h.bucket(i))
            .endObject();
    }
    w.endArray().endObject();
}

void
writeTimeSeries(JsonWriter &w, const TimeSeries &ts)
{
    w.beginObject()
        .field("window_ticks", static_cast<std::uint64_t>(
                                   ts.windowTicks()))
        .field("windows", static_cast<std::uint64_t>(ts.windows()));
    w.key("sums").beginArray();
    for (std::size_t i = 0; i < ts.windows(); ++i)
        w.value(ts.windowSum(i));
    w.endArray();
    w.key("counts").beginArray();
    for (std::size_t i = 0; i < ts.windows(); ++i)
        w.value(ts.windowCount(i));
    w.endArray();
    w.key("maxima").beginArray();
    for (std::size_t i = 0; i < ts.windows(); ++i)
        w.value(ts.windowMax(i));
    w.endArray().endObject();
}

void
writeSpatialSection(JsonWriter &w, const SpatialCollector &spatial)
{
    w.key("spatial").beginObject();
    w.key("mesh")
        .beginObject()
        .field("width", spatial.meshWidth())
        .field("height", spatial.meshHeight())
        .field("cpu_tile", spatial.cpuTile())
        .field("window_ticks",
               static_cast<std::uint64_t>(spatial.window()))
        .endObject();

    w.key("tiles").beginArray();
    for (const auto &[tile, summary] : spatial.tileSummaries()) {
        w.beginObject()
            .field("tile", tile)
            .field("x", summary.x)
            .field("y", summary.y)
            .field("ring", summary.ring)
            .field("is_gpm", summary.isGpm)
            .field("is_cpu", summary.isCpu)
            .field("finish_tick", summary.finishTick)
            .field("rtt_mean", summary.rttMean)
            .field("rtt_count", summary.rttCount);
        const auto series = spatial.tileSeries().find(tile);
        if (series != spatial.tileSeries().end()) {
            w.key("occupancy");
            writeTimeSeries(w, series->second.outstanding);
            w.key("gmmu_queue");
            writeTimeSeries(w, series->second.gmmuQueue);
        }
        w.endObject();
    }
    w.endArray();

    // Only links traffic actually crossed; an idle mesh exports [].
    w.key("links").beginArray();
    const auto &links = spatial.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
        const SpatialCollector::Link &link = links[i];
        if (link.packets == 0)
            continue;
        w.beginObject()
            .field("tile", static_cast<std::uint64_t>(i / 4))
            .field("dir", SpatialCollector::dirName(
                              static_cast<unsigned>(i % 4)))
            .field("packets", link.packets)
            .field("bytes", link.bytes)
            .field("busy_ticks", link.busyTicks)
            .field("wait_ticks", link.waitTicks)
            .endObject();
    }
    w.endArray();

    w.key("iommu_backlog");
    writeTimeSeries(w, spatial.iommuBacklog());
    w.endObject();
}

void
writeProfileSection(JsonWriter &w, const ProfileSnapshot &profile)
{
    w.key("profile").beginObject();
    w.field("runs", profile.runs);
    w.field("wall_nanos", profile.wallNanos);
    w.key("sections").beginObject();
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
        w.key(profSectionName(static_cast<ProfSection>(i)))
            .beginObject()
            .field("calls", profile.sections[i].calls)
            .field("nanos", profile.sections[i].nanos)
            .endObject();
    }
    w.endObject().endObject();
}

void
writeLatencySection(JsonWriter &w, const LatencySnapshot &lat)
{
    w.key("latency").beginObject();
    w.field("sample_n", lat.sampleN);
    w.field("spans", lat.spans);
    w.field("conservation_violations", lat.conservationViolations);

    // All stages are always present (count 0 when never visited) so
    // consumers can key on names without existence checks.
    w.key("stages").beginObject();
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        w.key(latencyStageName(static_cast<LatencyStage>(s)))
            .beginObject();
        w.key("summary");
        writeSummary(w, lat.stages[s].stat);
        w.key("histogram");
        writeHistogram(w, lat.stages[s].hist);
        w.endObject();
    }
    w.endObject();

    w.key("end_to_end").beginObject();
    w.key("summary");
    writeSummary(w, lat.endToEnd);
    w.key("histogram");
    writeHistogram(w, lat.endToEndHist);
    // Exact order statistics from the reservoir, not bucket bounds.
    w.key("quantiles")
        .beginObject()
        .field("p50", lat.exactQuantile(0.50))
        .field("p95", lat.exactQuantile(0.95))
        .field("p99", lat.exactQuantile(0.99))
        .field("p999", lat.exactQuantile(0.999))
        .endObject();
    w.field("reservoir_samples",
            static_cast<std::uint64_t>(lat.reservoir.size()));
    w.field("reservoir_dropped", lat.reservoirDropped);
    w.endObject();

    w.key("tiles").beginArray();
    for (const auto &[tile, hist] : lat.perTile) {
        w.beginObject().field("tile", tile);
        w.key("histogram");
        writeHistogram(w, hist);
        w.endObject();
    }
    w.endArray();

    w.key("slowest").beginArray();
    for (const LatencySpanTimeline &tl : lat.slowest) {
        w.beginObject()
            .field("span", tl.span)
            .field("owner", tl.owner)
            .field("vpn", tl.vpn)
            .field("issue_tick", static_cast<std::uint64_t>(
                                     tl.issueTick))
            .field("total_ticks", static_cast<std::uint64_t>(
                                      tl.total));
        w.key("stage_ticks").beginObject();
        for (std::size_t s = 0; s < kNumLatencyStages; ++s)
            w.field(latencyStageName(static_cast<LatencyStage>(s)),
                    static_cast<std::uint64_t>(tl.stageTicks[s]));
        w.endObject();
        w.key("timeline").beginArray();
        for (std::size_t i = 0; i < tl.steps.size(); ++i) {
            const LatencyTimelineStep &step = tl.steps[i];
            w.beginObject()
                .field("offset", static_cast<std::uint64_t>(
                                     step.offset))
                .field("event", spanEventName(step.event))
                .field("at", step.at)
                .field("arg", step.arg);
            // The final record (Complete) has no following interval.
            if (i + 1 < tl.steps.size()) {
                w.field("stage", latencyStageName(step.stage));
                w.field("ticks", static_cast<std::uint64_t>(
                                     step.ticks));
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.endObject();
}

void
writeBackpressureSection(JsonWriter &w, const BackpressureSnapshot &bp)
{
    w.key("backpressure").beginObject();
    w.field("total_ticks", static_cast<std::uint64_t>(bp.totalTicks));
    w.field("window_ticks", static_cast<std::uint64_t>(bp.windowTicks));
    w.field("little_violations", bp.littleViolations);

    // Resources in ranked (most-saturated-first) order, matching the
    // CLI bottleneck report so row N means the same thing in both.
    w.key("resources").beginArray();
    for (const std::size_t index : bp.ranked()) {
        const ResourcePressure &r = bp.resources[index];
        w.beginObject()
            .field("name", r.name)
            .field("kind", resourceKindName(r.kind))
            .field("capacity", r.capacity)
            .field("arrivals", r.arrivals)
            .field("departures", r.departures)
            .field("rejections", r.rejections)
            .field("occupancy", r.occupancy)
            .field("peak", r.peak)
            .field("mean_occupancy", r.meanOccupancy(bp.totalTicks))
            .field("saturation",
                   r.saturationFraction(bp.totalTicks))
            .field("mean_residency", r.meanResidency());
        if (r.kind == ResourceKind::Link) {
            // Analytic links: fractional-tick busy/wait accounting
            // instead of the time-ordered occupancy integral.
            w.field("busy_ticks", r.busyTicks)
                .field("wait_ticks", r.waitTicks);
        } else {
            w.field("occ_integral", r.occIntegral)
                .field("at_capacity_ticks", r.atCapacityTicks)
                .field("sum_arrive_ticks", r.sumArriveTicks)
                .field("sum_depart_ticks", r.sumDepartTicks)
                .field("little_holds", r.littleHolds(bp.totalTicks));
        }
        if (!r.windows.empty()) {
            w.key("windows").beginArray();
            for (const ResourceWindow &win : r.windows) {
                w.beginObject()
                    .field("occ_integral", win.occIntegral)
                    .field("peak", win.peak)
                    .field("at_capacity_ticks", win.atCapacityTicks)
                    .endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeMetricsJson(std::ostream &os, const MetricRegistry &registry,
                 const RunMetadata &meta,
                 const SpatialCollector *spatial,
                 const ProfileSnapshot *profile,
                 const LatencySnapshot *latency,
                 const BackpressureSnapshot *backpressure)
{
    JsonWriter w(os);
    w.beginObject().field("schema", backpressure ? "hdpat-metrics-v3"
                                    : latency    ? "hdpat-metrics-v2"
                                                 : "hdpat-metrics-v1");

    w.key("run")
        .beginObject()
        .field("workload", meta.workload)
        .field("policy", meta.policy)
        .field("config", meta.config)
        .field("seed", meta.seed)
        .field("total_ticks", meta.totalTicks)
        .endObject();

    // One section per metric kind, each mapping name -> value. The
    // two-pass-per-kind shape keeps the schema stable regardless of
    // registration order.
    w.key("counters").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 0)
            w.field(name, std::get<0>(v)());
    });
    w.endObject();

    w.key("gauges").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 1)
            w.field(name, std::get<1>(v)());
    });
    w.endObject();

    w.key("summaries").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 2) {
            w.key(name);
            writeSummary(w, std::get<2>(v)());
        }
    });
    w.endObject();

    w.key("histograms").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 3) {
            w.key(name);
            writeHistogram(w, std::get<3>(v)());
        }
    });
    w.endObject();

    w.key("timeseries").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 4) {
            w.key(name);
            writeTimeSeries(w, *std::get<4>(v)());
        }
    });
    w.endObject();

    if (spatial)
        writeSpatialSection(w, *spatial);
    if (profile && !profile->empty())
        writeProfileSection(w, *profile);
    if (latency)
        writeLatencySection(w, *latency);
    if (backpressure)
        writeBackpressureSection(w, *backpressure);

    w.endObject();
    os << '\n';
}

void
writeSpatialCsv(std::ostream &os, const SpatialCollector &spatial)
{
    os << "kind,tile,x,y,ring,dir,packets,bytes,busy_ticks,wait_ticks,"
          "finish_tick,rtt_mean,occupancy_mean\n";
    const auto &links = spatial.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
        const SpatialCollector::Link &link = links[i];
        if (link.packets == 0)
            continue;
        const TileId tile = static_cast<TileId>(i / 4);
        int x = 0;
        int y = 0;
        if (spatial.meshWidth() > 0) {
            x = static_cast<int>(tile) % spatial.meshWidth();
            y = static_cast<int>(tile) / spatial.meshWidth();
        }
        os << "link," << tile << ',' << x << ',' << y << ",,"
           << SpatialCollector::dirName(static_cast<unsigned>(i % 4))
           << ',' << link.packets << ',' << link.bytes << ','
           << link.busyTicks << ',' << link.waitTicks << ",,,\n";
    }
    for (const auto &[tile, summary] : spatial.tileSummaries()) {
        double occupancy_mean = 0.0;
        const auto series = spatial.tileSeries().find(tile);
        if (series != spatial.tileSeries().end()) {
            const TimeSeries &ts = series->second.outstanding;
            double sum = 0.0;
            std::uint64_t count = 0;
            for (std::size_t w = 0; w < ts.windows(); ++w) {
                sum += ts.windowSum(w);
                count += ts.windowCount(w);
            }
            occupancy_mean = count ? sum / static_cast<double>(count)
                                   : 0.0;
        }
        os << "tile," << tile << ',' << summary.x << ',' << summary.y
           << ',' << summary.ring << ",,,,,," << summary.finishTick
           << ',' << summary.rttMean << ',' << occupancy_mean << '\n';
    }
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    // Group records per span; ring order is already tick order, so each
    // span's vector comes out sorted.
    std::map<std::uint64_t, std::vector<TraceRecord>> spans;
    std::set<TileId> owners;
    tracer.forEachRecord([&spans, &owners](const TraceRecord &rec) {
        spans[rec.span].push_back(rec);
        owners.insert(rec.owner);
    });

    JsonWriter w(os);
    w.beginObject().field("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();

    // Name each track's process after the owning GPM.
    for (const TileId owner : owners) {
        w.beginObject()
            .field("ph", "M")
            .field("name", "process_name")
            .field("pid", owner)
            .key("args")
            .beginObject()
            .field("name", "GPM " + std::to_string(owner))
            .endObject()
            .endObject();
    }

    for (const auto &[span, records] : spans) {
        for (std::size_t i = 0; i < records.size(); ++i) {
            const TraceRecord &rec = records[i];
            const bool last = i + 1 == records.size();
            w.beginObject()
                .field("name", spanEventName(rec.event))
                .field("cat", "translation")
                .field("ph", last ? "i" : "X")
                .field("ts", rec.tick)
                .field("pid", rec.owner)
                .field("tid", span);
            if (last) {
                w.field("s", "t"); // Thread-scoped instant.
            } else {
                w.field("dur", records[i + 1].tick - rec.tick);
            }
            w.key("args")
                .beginObject()
                .field("vpn", rec.vpn)
                .field("at_tile", rec.at)
                .field("arg", rec.arg)
                .endObject();
            w.endObject();
        }
    }

    w.endArray().endObject();
    os << '\n';
}

} // namespace hdpat
