#include "obs/exporters.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "obs/json_writer.hh"

namespace hdpat
{

namespace
{

void
writeSummary(JsonWriter &w, const SummaryStat &s)
{
    w.beginObject()
        .field("count", s.count())
        .field("sum", s.sum())
        .field("mean", s.mean())
        .field("min", s.min())
        .field("max", s.max())
        .field("stddev", s.stddev())
        .endObject();
}

void
writeHistogram(JsonWriter &w, const Log2Histogram &h)
{
    w.beginObject().field("total", h.totalCount());
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < h.bucketCount(); ++i) {
        if (h.bucket(i) == 0)
            continue;
        w.beginObject()
            .field("low", Log2Histogram::bucketLow(i))
            .field("high", Log2Histogram::bucketHigh(i))
            .field("count", h.bucket(i))
            .endObject();
    }
    w.endArray().endObject();
}

void
writeTimeSeries(JsonWriter &w, const TimeSeries &ts)
{
    w.beginObject()
        .field("window_ticks", static_cast<std::uint64_t>(
                                   ts.windowTicks()))
        .field("windows", static_cast<std::uint64_t>(ts.windows()));
    w.key("sums").beginArray();
    for (std::size_t i = 0; i < ts.windows(); ++i)
        w.value(ts.windowSum(i));
    w.endArray();
    w.key("counts").beginArray();
    for (std::size_t i = 0; i < ts.windows(); ++i)
        w.value(ts.windowCount(i));
    w.endArray();
    w.key("maxima").beginArray();
    for (std::size_t i = 0; i < ts.windows(); ++i)
        w.value(ts.windowMax(i));
    w.endArray().endObject();
}

} // namespace

void
writeMetricsJson(std::ostream &os, const MetricRegistry &registry,
                 const RunMetadata &meta)
{
    JsonWriter w(os);
    w.beginObject().field("schema", "hdpat-metrics-v1");

    w.key("run")
        .beginObject()
        .field("workload", meta.workload)
        .field("policy", meta.policy)
        .field("config", meta.config)
        .field("seed", meta.seed)
        .field("total_ticks", meta.totalTicks)
        .endObject();

    // One section per metric kind, each mapping name -> value. The
    // two-pass-per-kind shape keeps the schema stable regardless of
    // registration order.
    w.key("counters").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 0)
            w.field(name, std::get<0>(v)());
    });
    w.endObject();

    w.key("gauges").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 1)
            w.field(name, std::get<1>(v)());
    });
    w.endObject();

    w.key("summaries").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 2) {
            w.key(name);
            writeSummary(w, std::get<2>(v)());
        }
    });
    w.endObject();

    w.key("histograms").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 3) {
            w.key(name);
            writeHistogram(w, std::get<3>(v)());
        }
    });
    w.endObject();

    w.key("timeseries").beginObject();
    registry.forEach([&w](const std::string &name,
                          const MetricRegistry::Value &v) {
        if (v.index() == 4) {
            w.key(name);
            writeTimeSeries(w, *std::get<4>(v)());
        }
    });
    w.endObject();

    w.endObject();
    os << '\n';
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    // Group records per span; ring order is already tick order, so each
    // span's vector comes out sorted.
    std::map<std::uint64_t, std::vector<TraceRecord>> spans;
    std::set<TileId> owners;
    tracer.forEachRecord([&spans, &owners](const TraceRecord &rec) {
        spans[rec.span].push_back(rec);
        owners.insert(rec.owner);
    });

    JsonWriter w(os);
    w.beginObject().field("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();

    // Name each track's process after the owning GPM.
    for (const TileId owner : owners) {
        w.beginObject()
            .field("ph", "M")
            .field("name", "process_name")
            .field("pid", owner)
            .key("args")
            .beginObject()
            .field("name", "GPM " + std::to_string(owner))
            .endObject()
            .endObject();
    }

    for (const auto &[span, records] : spans) {
        for (std::size_t i = 0; i < records.size(); ++i) {
            const TraceRecord &rec = records[i];
            const bool last = i + 1 == records.size();
            w.beginObject()
                .field("name", spanEventName(rec.event))
                .field("cat", "translation")
                .field("ph", last ? "i" : "X")
                .field("ts", rec.tick)
                .field("pid", rec.owner)
                .field("tid", span);
            if (last) {
                w.field("s", "t"); // Thread-scoped instant.
            } else {
                w.field("dur", records[i + 1].tick - rec.tick);
            }
            w.key("args")
                .beginObject()
                .field("vpn", rec.vpn)
                .field("at_tile", rec.at)
                .field("arg", rec.arg)
                .endObject();
            w.endObject();
        }
    }

    w.endArray().endObject();
    os << '\n';
}

} // namespace hdpat
