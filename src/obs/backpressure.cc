#include "obs/backpressure.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace hdpat
{

const char *
resourceKindName(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::Queue:
        return "queue";
      case ResourceKind::Pool:
        return "pool";
      case ResourceKind::Mshr:
        return "mshr";
      case ResourceKind::Residency:
        return "residency";
      case ResourceKind::Link:
        return "link";
    }
    return "unknown";
}

// ---- Resource ---------------------------------------------------------

void
Resource::advance(Tick now)
{
    // Same-tick (or re-snapshot) calls contribute nothing; transitions
    // arrive in non-decreasing tick order, so earlier ticks cannot
    // occur and an assert here would only slow the hot path.
    if (now <= lastTick_)
        return;
    const Tick delta = now - lastTick_;
    occIntegral_ += occupancy_ * delta;
    if (capacity_ != 0 && occupancy_ >= capacity_)
        atCapacityTicks_ += delta;
    if (windowTicks_ != 0)
        accumulateWindowed(lastTick_, now);
    lastTick_ = now;
}

ResourceWindow &
Resource::windowAt(std::uint64_t index)
{
    if (index >= windows_.size())
        windows_.resize(index + 1);
    return windows_[index];
}

void
Resource::accumulateWindowed(Tick from, Tick to)
{
    // Split [from, to) across fixed windowTicks_-wide windows; the
    // occupancy over the whole interval is the pre-transition value.
    while (from < to) {
        const std::uint64_t index = from / windowTicks_;
        const Tick window_end = (index + 1) * windowTicks_;
        const Tick seg = std::min(to, window_end) - from;
        ResourceWindow &w = windowAt(index);
        w.occIntegral += occupancy_ * seg;
        if (capacity_ != 0 && occupancy_ >= capacity_)
            w.atCapacityTicks += seg;
        if (occupancy_ > w.peak)
            w.peak = occupancy_;
        from += seg;
    }
}

void
Resource::noteWindowPeak(Tick now)
{
    ResourceWindow &w = windowAt(now / windowTicks_);
    if (occupancy_ > w.peak)
        w.peak = occupancy_;
}

// ---- ResourcePressure -------------------------------------------------

double
ResourcePressure::meanOccupancy(Tick total_ticks) const
{
    if (total_ticks == 0)
        return 0.0;
    const double t = static_cast<double>(total_ticks);
    if (kind == ResourceKind::Link)
        return busyTicks / t;
    return static_cast<double>(occIntegral) / t;
}

double
ResourcePressure::saturationFraction(Tick total_ticks) const
{
    if (total_ticks == 0)
        return 0.0;
    const double t = static_cast<double>(total_ticks);
    if (kind == ResourceKind::Link)
        return busyTicks / t;
    if (capacity == 0)
        return 0.0;
    return static_cast<double>(atCapacityTicks) / t;
}

double
ResourcePressure::meanResidency() const
{
    if (arrivals == 0)
        return 0.0;
    const double n = static_cast<double>(arrivals);
    if (kind == ResourceKind::Link)
        return (busyTicks + waitTicks) / n;
    return static_cast<double>(occIntegral) / n;
}

bool
ResourcePressure::littleHolds(Tick total_ticks) const
{
    if (kind == ResourceKind::Link)
        return true;
    // Exact in uint64 wraparound arithmetic: every item arriving at a
    // and departing at d contributes d - a to both sides; residents
    // at T contribute T - a.
    const std::uint64_t from_timestamps =
        sumDepartTicks + occupancy * total_ticks - sumArriveTicks;
    return occIntegral == from_timestamps;
}

// ---- BackpressureSnapshot ---------------------------------------------

std::vector<std::size_t>
BackpressureSnapshot::ranked() const
{
    std::vector<std::size_t> order(resources.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  const ResourcePressure &ra = resources[a];
                  const ResourcePressure &rb = resources[b];
                  const double sa = ra.saturationFraction(totalTicks);
                  const double sb = rb.saturationFraction(totalTicks);
                  if (sa != sb)
                      return sa > sb;
                  const double oa = ra.meanOccupancy(totalTicks);
                  const double ob = rb.meanOccupancy(totalTicks);
                  if (oa != ob)
                      return oa > ob;
                  return ra.name < rb.name;
              });
    return order;
}

std::string
bottleneckReport(const BackpressureSnapshot &snap, std::size_t top_k)
{
    std::ostringstream os;
    os << "=== backpressure: " << snap.resources.size()
       << " resources over " << snap.totalTicks << " ticks";
    if (snap.windowTicks != 0)
        os << " (window " << snap.windowTicks << ")";
    os << " ===\n";
    if (snap.littleViolations != 0)
        os << "WARNING: " << snap.littleViolations
           << " resource(s) violate the Little's-law identity\n";

    os << std::setw(4) << "#" << "  " << std::left << std::setw(28)
       << "resource" << std::setw(11) << "kind" << std::right
       << std::setw(8) << "cap" << std::setw(8) << "peak"
       << std::setw(12) << "mean-occ" << std::setw(8) << "sat%"
       << std::setw(12) << "arrivals" << std::setw(10) << "rejects"
       << std::setw(12) << "mean-res" << "\n";

    const std::vector<std::size_t> order = snap.ranked();
    const std::size_t limit =
        top_k == 0 ? order.size() : std::min(top_k, order.size());
    for (std::size_t rank = 0; rank < limit; ++rank) {
        const ResourcePressure &r = snap.resources[order[rank]];
        os << std::setw(4) << rank + 1 << "  " << std::left
           << std::setw(28) << r.name << std::setw(11)
           << resourceKindName(r.kind) << std::right << std::setw(8);
        if (r.capacity == 0)
            os << "-";
        else
            os << r.capacity;
        os << std::setw(8) << r.peak << std::setw(12) << std::fixed
           << std::setprecision(3) << r.meanOccupancy(snap.totalTicks)
           << std::setw(8) << std::setprecision(1)
           << r.saturationFraction(snap.totalTicks) * 100.0
           << std::setw(12) << r.arrivals << std::setw(10)
           << r.rejections << std::setw(12) << std::setprecision(1)
           << r.meanResidency() << "\n";
        os.unsetf(std::ios::fixed);
    }
    if (limit < order.size())
        os << "  ... " << order.size() - limit << " more (use the"
           << " metrics-JSON backpressure section for the full set)\n";
    return os.str();
}

// ---- BackpressureCollector --------------------------------------------

Resource *
BackpressureCollector::add(std::string name, ResourceKind kind,
                           std::uint64_t capacity)
{
    resources_.emplace_back(std::move(name), kind, capacity,
                            windowTicks_);
    return &resources_.back();
}

BackpressureSnapshot
BackpressureCollector::snapshot(Tick total_ticks)
{
    BackpressureSnapshot snap;
    snap.totalTicks = total_ticks;
    snap.windowTicks = windowTicks_;
    snap.resources.reserve(resources_.size());
    for (Resource &res : resources_) {
        if (res.kind_ != ResourceKind::Link) {
            hdpat_panic_if(total_ticks < res.lastTick_,
                           "backpressure snapshot at tick "
                               << total_ticks << " before last "
                               << "transition of " << res.name_
                               << " (" << res.lastTick_ << ")");
            res.advance(total_ticks);
        }
        ResourcePressure p;
        p.name = res.name_;
        p.kind = res.kind_;
        p.capacity = res.capacity_;
        p.arrivals = res.arrivals_;
        p.departures = res.departures_;
        p.rejections = res.rejections_;
        p.occupancy = res.occupancy_;
        p.peak = res.peak_;
        p.occIntegral = res.occIntegral_;
        p.atCapacityTicks = res.atCapacityTicks_;
        p.sumArriveTicks = res.sumArriveTicks_;
        p.sumDepartTicks = res.sumDepartTicks_;
        p.busyTicks = res.busyTicks_;
        p.waitTicks = res.waitTicks_;
        p.windows = res.windows_;
        if (!p.littleHolds(total_ticks))
            ++snap.littleViolations;
        snap.resources.push_back(std::move(p));
    }
    return snap;
}

} // namespace hdpat
