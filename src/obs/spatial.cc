#include "obs/spatial.hh"

#include <utility>

#include "sim/log.hh"

namespace hdpat
{

const char *
SpatialCollector::dirName(unsigned dir)
{
    switch (dir) {
    case 0:
        return "east";
    case 1:
        return "west";
    case 2:
        return "south";
    case 3:
        return "north";
    }
    return "unknown";
}

SpatialCollector::SpatialCollector(std::size_t num_tiles, Tick window)
    : window_(window), links_(num_tiles * 4), iommuBacklog_(window)
{
    hdpat_fatal_if(window_ == 0, "spatial window must be > 0");
}

void
SpatialCollector::setMesh(int width, int height, TileId cpu_tile)
{
    width_ = width;
    height_ = height;
    cpuTile_ = cpu_tile;
}

void
SpatialCollector::sampleTile(TileId tile, Tick now, double outstanding,
                             double gmmu_queue)
{
    auto it = series_.find(tile);
    if (it == series_.end())
        it = series_.emplace(tile, TileSeries(window_)).first;
    it->second.outstanding.add(now, outstanding);
    it->second.gmmuQueue.add(now, gmmu_queue);
}

SpatialSampler::SpatialSampler(Engine &engine, Tick interval,
                               SampleFn sample)
    : engine_(engine), interval_(interval), sample_(std::move(sample))
{
    hdpat_fatal_if(interval_ == 0, "sampling interval must be > 0");
    hdpat_fatal_if(!sample_, "sampler needs a sample function");
}

void
SpatialSampler::start()
{
    if (running_)
        return;
    running_ = true;
    engine_.noteObserverScheduled();
    engine_.scheduleIn(interval_, [this] { fire(); });
}

void
SpatialSampler::fire()
{
    engine_.noteObserverFired();
    if (!running_)
        return;
    // Only observer events (heartbeat, watchdog, this) left: the run
    // is over; sampling an idle wafer adds nothing.
    if (!engine_.hasNonObserverEvents()) {
        running_ = false;
        return;
    }
    ++samples_;
    sample_(engine_.now());
    engine_.noteObserverScheduled();
    engine_.scheduleIn(interval_, [this] { fire(); });
}

} // namespace hdpat
