/**
 * @file
 * Backpressure anatomy: per-resource saturation accounting.
 *
 * Every bounded structure in the system -- per-GMMU walk queues and
 * walker pools, the IOMMU ingress/pipeline queues and its MSHR and
 * forward-context tables, the GPM-side MSHRs and stalled-remote
 * queue, LL-TLB residency, and the NoC's directed link buffers --
 * registers with the collector as a named Resource(capacity) and
 * reports arrivals, departures and rejections as they happen. The
 * collector maintains, per resource:
 *
 *  - a tick-weighted occupancy integral  integral(n(t) dt)  so the
 *    time-averaged occupancy L = integral / T is exact,
 *  - peak occupancy,
 *  - time-at-capacity ticks (the saturation fraction's numerator),
 *  - optional fixed-width windows of the same three quantities, for
 *    fig04-style pressure-over-time plots,
 *  - the running sums of arrival and departure timestamps, which
 *    give a second, independent derivation of the same integral.
 *
 * The two derivations are the **Little's-law oracle**. For any
 * event-driven resource observed from t=0 to t=T,
 *
 *     integral(n(t) dt) == sum(depart ticks) + n(T)*T
 *                          - sum(arrive ticks)
 *
 * exactly, in uint64 wraparound arithmetic (each arrival at time a
 * that departs at time d contributes d - a to both sides; items still
 * resident at T contribute T - a). Dividing both sides by T yields
 * L = lambda * W with W = integral / arrivals, i.e. Little's law as
 * an exact identity rather than a steady-state approximation. The
 * left side is accumulated incrementally at every transition, the
 * right side from timestamps alone, so any missed or double-counted
 * transition anywhere in the simulator breaks the equality. ctest
 * and the fuzzer check it per resource (littleViolations()).
 *
 * NoC links are the one *analytic* resource kind: link occupancy is
 * computed at send time in fractional ticks (see Network's
 * computeArrival), not observed via time-ordered transitions, so
 * links report busy/wait tick totals instead and are exempt from the
 * transition oracle. DESIGN.md section 10 has the full taxonomy.
 *
 * Like the profiler and latency layers, the whole subsystem is
 * bitwise-invisible when off: components hold a null Resource
 * pointer and every hook is a [[unlikely]]-guarded branch.
 */

#ifndef HDPAT_OBS_BACKPRESSURE_HH
#define HDPAT_OBS_BACKPRESSURE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/** Taxonomy of registered resources (stable names in metrics JSON). */
enum class ResourceKind : std::uint8_t
{
    Queue = 0, ///< FIFO-ish waiting line (walk queues, ingress).
    Pool,      ///< Fixed set of servers (walkers, forward contexts).
    Mshr,      ///< Miss-status table (occupancy = live misses).
    Residency, ///< Cache residency (LL-TLB fills vs evictions).
    Link,      ///< NoC directed link (analytic; oracle-exempt).
};

constexpr std::size_t kNumResourceKinds =
    static_cast<std::size_t>(ResourceKind::Link) + 1;

/** Stable printable kind name (part of the metrics-JSON schema). */
const char *resourceKindName(ResourceKind kind);

/** Per-window slice of one resource's pressure history. */
struct ResourceWindow
{
    std::uint64_t occIntegral = 0;
    std::uint64_t peak = 0;
    std::uint64_t atCapacityTicks = 0;
};

/**
 * One registered bounded structure. Components hold a Resource* that
 * is null while backpressure accounting is off; the collector owns
 * the storage (stable addresses for the simulation's lifetime).
 *
 * Transitions must be reported in non-decreasing tick order per
 * resource (they are driven by engine events, which fire in order).
 * Link resources use linkTraversed() instead and never transition.
 */
class Resource
{
  public:
    /** @param capacity 0 means unbounded (no saturation tracking). */
    Resource(std::string name, ResourceKind kind, std::uint64_t capacity,
             Tick window_ticks)
        : name_(std::move(name)), kind_(kind), capacity_(capacity),
          windowTicks_(window_ticks)
    {
    }

    /** One item entered the resource at @p now. */
    void
    arrive(Tick now)
    {
        advance(now);
        ++arrivals_;
        sumArriveTicks_ += now;
        ++occupancy_;
        if (occupancy_ > peak_)
            peak_ = occupancy_;
        if (windowTicks_ != 0)
            noteWindowPeak(now);
    }

    /** One item left the resource at @p now. */
    void
    depart(Tick now)
    {
        advance(now);
        ++departures_;
        sumDepartTicks_ += now;
        --occupancy_;
    }

    /** One admission attempt bounced off a full resource. */
    void reject() { ++rejections_; }

    /**
     * Analytic link accounting: one packet crossed the link, holding
     * it for @p busy fractional ticks after waiting @p wait.
     */
    void
    linkTraversed(double busy, double wait)
    {
        ++arrivals_;
        ++departures_;
        busyTicks_ += busy;
        waitTicks_ += wait;
    }

    /** Extend the occupancy integral to @p now (idempotent). */
    void advance(Tick now);

    const std::string &name() const { return name_; }
    ResourceKind kind() const { return kind_; }
    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t occupancy() const { return occupancy_; }

  private:
    friend class BackpressureCollector;

    void noteWindowPeak(Tick now);
    void accumulateWindowed(Tick from, Tick to);
    ResourceWindow &windowAt(std::uint64_t index);

    std::string name_;
    ResourceKind kind_;
    std::uint64_t capacity_;
    Tick windowTicks_;

    std::uint64_t arrivals_ = 0;
    std::uint64_t departures_ = 0;
    std::uint64_t rejections_ = 0;
    std::uint64_t occupancy_ = 0;
    std::uint64_t peak_ = 0;

    Tick lastTick_ = 0;
    std::uint64_t occIntegral_ = 0;
    std::uint64_t atCapacityTicks_ = 0;
    std::uint64_t sumArriveTicks_ = 0;
    std::uint64_t sumDepartTicks_ = 0;

    /** Link kind only (fractional analytic ticks). */
    double busyTicks_ = 0.0;
    double waitTicks_ = 0.0;

    std::vector<ResourceWindow> windows_;
};

/** Immutable per-resource digest inside a BackpressureSnapshot. */
struct ResourcePressure
{
    std::string name;
    ResourceKind kind = ResourceKind::Queue;
    std::uint64_t capacity = 0;

    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;
    std::uint64_t rejections = 0;
    std::uint64_t occupancy = 0; ///< Residual at end of run.
    std::uint64_t peak = 0;
    std::uint64_t occIntegral = 0;
    std::uint64_t atCapacityTicks = 0;
    std::uint64_t sumArriveTicks = 0;
    std::uint64_t sumDepartTicks = 0;

    double busyTicks = 0.0; ///< Link kind only.
    double waitTicks = 0.0; ///< Link kind only.

    std::vector<ResourceWindow> windows;

    /** Time-averaged occupancy L = integral / T. */
    double meanOccupancy(Tick total_ticks) const;

    /** Fraction of the run spent at capacity (links: busy fraction). */
    double saturationFraction(Tick total_ticks) const;

    /** Mean residency W = integral / arrivals (Little's W). */
    double meanResidency() const;

    /**
     * The transition-oracle identity (see file comment); always true
     * for Link resources, which are analytic.
     */
    bool littleHolds(Tick total_ticks) const;
};

/**
 * Immutable, copyable result of a collection run. Lives in
 * RunResult and feeds the "backpressure" metrics-JSON section.
 */
struct BackpressureSnapshot
{
    Tick totalTicks = 0;
    /** 0 = totals only, no per-window arrays. */
    Tick windowTicks = 0;
    /** Resources whose dual-path integrals disagree (must be 0). */
    std::uint64_t littleViolations = 0;

    /** Registration order (stable across runs of the same spec). */
    std::vector<ResourcePressure> resources;

    bool empty() const { return resources.empty(); }

    /**
     * Indices into resources, most-pressured first: by saturation
     * fraction, then mean occupancy, then name (total order, so the
     * report is deterministic).
     */
    std::vector<std::size_t> ranked() const;
};

/**
 * Ranked bottleneck report: one table row per resource, most
 * saturated first. @p top_k == 0 prints every resource.
 */
std::string bottleneckReport(const BackpressureSnapshot &snap,
                             std::size_t top_k = 0);

/**
 * Owns every registered Resource (deque => stable addresses). One
 * per System; components receive Resource* via setBackpressure().
 */
class BackpressureCollector
{
  public:
    /** @param window_ticks 0 disables per-window history. */
    explicit BackpressureCollector(Tick window_ticks = 0)
        : windowTicks_(window_ticks)
    {
    }

    BackpressureCollector(const BackpressureCollector &) = delete;
    BackpressureCollector &operator=(const BackpressureCollector &) = delete;

    /** Register a resource; the returned pointer stays valid. */
    Resource *add(std::string name, ResourceKind kind,
                  std::uint64_t capacity);

    Tick windowTicks() const { return windowTicks_; }
    std::size_t size() const { return resources_.size(); }

    /**
     * Extend every resource's integral to @p total_ticks and
     * materialize the accumulated state. @p total_ticks must be >=
     * the last reported transition (use the engine's final tick).
     */
    BackpressureSnapshot snapshot(Tick total_ticks);

  private:
    Tick windowTicks_;
    std::deque<Resource> resources_;
};

} // namespace hdpat

#endif // HDPAT_OBS_BACKPRESSURE_HH
