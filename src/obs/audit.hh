/**
 * @file
 * Conservation auditor: checks lifecycle invariants of a run.
 *
 * Components feed the auditor through the same instrumentation points
 * the span tracer uses (issue/retire, NoC send/deliver, MSHR
 * alloc/free, last-level-TLB fill/evict). At run end finalize()
 * verifies:
 *
 *  - every issued memory operation retired exactly once (double
 *    retires and retires without a matching issue are flagged live);
 *  - NoC packets sent == packets delivered, per plane (control/data);
 *  - MSHR allocations == MSHR frees, per tile;
 *  - last-level TLB fills - evictions == final occupancy, per tile;
 *  - every registered end-of-run queue probe reads zero.
 *
 * On violation the auditor produces a structured diagnostic: the stuck
 * (tile, VPN) spans with their issue ticks, per-tile in-flight counts,
 * and the deepest queues — the same dump the stall watchdog attaches
 * to its abort message.
 *
 * Like the tracer, the auditor is opt-in: components hold an
 * `Auditor *` that is null unless auditing was requested, so the hot
 * path pays one pointer test when it is off.
 */

#ifndef HDPAT_OBS_AUDIT_HH
#define HDPAT_OBS_AUDIT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

class Auditor
{
  public:
    /** NoC planes packets are conserved over, split by payload size. */
    enum class Plane : std::uint8_t { Control = 0, Data = 1 };
    static constexpr std::size_t kNumPlanes = 2;

    /** Control plane carries the 32-byte translation messages. */
    static Plane planeOf(std::size_t bytes)
    {
        return bytes <= 32 ? Plane::Control : Plane::Data;
    }
    static const char *planeName(Plane plane)
    {
        return plane == Plane::Control ? "control" : "data";
    }

    /** End-of-run verdict. */
    struct Report
    {
        bool ok = true;
        /** One line per violated invariant. */
        std::vector<std::string> violations;
        /** Structured dump (stuck spans, in-flight, deepest queues). */
        std::string diagnostic;
    };

    /**
     * Domain-parallel runs: serialize the run-time hooks with a mutex.
     * Every audited quantity is either a commutative sum or keyed by
     * (tile, VPN) -- and ops to one tile always run on that tile's
     * domain thread, so per-key event order is preserved. The verdict
     * and the retire-census hash are therefore identical to the serial
     * run's regardless of cross-domain interleaving. Off (the default)
     * the hooks stay lock-free.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

    // ---- Lifecycle hooks (hot path; all O(1)) ------------------------
    void opIssued(TileId tile, Vpn vpn, Tick now);
    void opRetired(TileId tile, Vpn vpn, Tick now);

    /**
     * A translation resolved somewhere in the hierarchy and is about
     * to be installed at @p tile. When a reference translator is set
     * (see setReferenceTranslator), the PPN is checked against a
     * direct walk of the page table: a mismatch means some policy
     * path (peer probe, redirection, prefetch, delegation, ...)
     * delivered the wrong frame — the paper's core correctness
     * requirement, identical under every policy.
     */
    void pfnResolved(TileId tile, Vpn vpn, Pfn pfn, Tick now);

    /**
     * Install the reference VPN->PPN mapping (a direct page-table
     * walk). Returning nullopt means "unmapped" (e.g. after a
     * shootdown) and skips the check for that VPN.
     */
    void
    setReferenceTranslator(std::function<std::optional<Pfn>(Vpn)> ref)
    {
        reference_ = std::move(ref);
    }

    void packetSent(std::size_t bytes)
    {
        const MaybeLock lock(*this);
        ++sent_[static_cast<std::size_t>(planeOf(bytes))];
    }
    void packetDelivered(std::size_t bytes)
    {
        const MaybeLock lock(*this);
        ++delivered_[static_cast<std::size_t>(planeOf(bytes))];
    }

    void mshrAllocated(TileId tile)
    {
        const MaybeLock lock(*this);
        ++mshr_[tile].allocated;
    }
    void mshrFreed(TileId tile)
    {
        const MaybeLock lock(*this);
        ++mshr_[tile].freed;
    }

    void tlbFilled(TileId tile)
    {
        const MaybeLock lock(*this);
        ++tlb_[tile].filled;
    }
    void tlbEvicted(TileId tile)
    {
        const MaybeLock lock(*this);
        ++tlb_[tile].evicted;
    }

    // ---- Shootdown conservation (tenancy churn) ----------------------
    /**
     * A shootdown round opened for @p vpn, expecting one ack from each
     * of @p targets holder tiles. Overlapping rounds for the same key
     * are a protocol violation (the controller must serialize them).
     */
    void shootdownIssued(Vpn vpn, std::size_t targets, Tick now);

    /**
     * Tile @p tile acked the open round for @p vpn. Exactly one ack
     * per target per round: duplicates and acks without an open round
     * are flagged live. The round closes when all targets acked.
     */
    void invalidationAcked(Vpn vpn, TileId tile, Tick now);

    /**
     * End-of-run staleness sweep: a TLB at @p tile still holds
     * vpn -> pfn although the page table disavows it -- a stale
     * install survived its shootdown.
     */
    void staleResident(TileId tile, Vpn vpn, Pfn pfn);

    // ---- Probes read at finalize() -----------------------------------
    /**
     * Register a queue whose depth must be zero once the run drains.
     * Also feeds the "deepest queues" section of the diagnostic.
     */
    void addQueueProbe(std::string name,
                       std::function<std::size_t()> depth);

    /** Final occupancy of @p tile's audited (last-level) TLB. */
    void setTlbOccupancyProbe(TileId tile,
                              std::function<std::size_t()> occupancy);

    // ---- End of run ---------------------------------------------------
    /** Check every invariant; call after the event queue drains. */
    Report finalize() const;

    /**
     * The structured dump alone (stuck spans, per-tile in-flight
     * counts, deepest queues). Safe to call mid-run; the stall
     * watchdog uses it for its abort message.
     */
    std::string diagnostic() const;

    /**
     * Order-independent digest of the per-(tile, VPN) retire
     * multiplicities. Two runs of the same spec — serial or parallel,
     * any runMany ordering — must produce the same census hash; a
     * divergence means some page retired a different number of times.
     */
    std::uint64_t retireCensusHash() const;

    // ---- Introspection (tests) ---------------------------------------
    std::uint64_t issued() const { return issued_; }
    std::uint64_t retired() const { return retired_; }
    std::uint64_t inFlight() const { return inFlightTotal_; }
    std::uint64_t pfnChecks() const { return pfnChecks_; }
    std::uint64_t pfnMismatches() const { return pfnMismatches_; }
    std::uint64_t distinctRetiredPages() const
    {
        return retireCensus_.size();
    }
    std::uint64_t packetsSent(Plane p) const
    {
        return sent_[static_cast<std::size_t>(p)];
    }
    std::uint64_t packetsDelivered(Plane p) const
    {
        return delivered_[static_cast<std::size_t>(p)];
    }
    std::uint64_t shootdownRounds() const { return shootdownRounds_; }
    std::uint64_t shootdownRoundsClosed() const
    {
        return shootdownRoundsClosed_;
    }
    std::uint64_t invalidationAcks() const { return acksTotal_; }
    std::uint64_t staleResidents() const { return staleResidents_; }

  private:
    /** Locks only when setConcurrent(true); free otherwise. */
    struct MaybeLock
    {
        explicit MaybeLock(const Auditor &a)
        {
            if (a.concurrent_) [[unlikely]] {
                mu = &a.mu_;
                mu->lock();
            }
        }
        ~MaybeLock()
        {
            if (mu)
                mu->unlock();
        }
        MaybeLock(const MaybeLock &) = delete;
        MaybeLock &operator=(const MaybeLock &) = delete;
        std::mutex *mu = nullptr;
    };

    /** In-flight ops for one (tile, VPN); ops to one page can overlap. */
    struct Flight
    {
        std::uint32_t count = 0;
        Tick earliestIssue = 0;
    };
    struct Key
    {
        TileId tile;
        Vpn vpn;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            // Same splitmix-style scramble as the tracer's span key.
            std::uint64_t x =
                k.vpn * 0x9e3779b97f4a7c15ull +
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(k.tile));
            x ^= x >> 31;
            return static_cast<std::size_t>(x);
        }
    };
    struct MshrBalance
    {
        std::uint64_t allocated = 0;
        std::uint64_t freed = 0;
    };
    struct TlbBalance
    {
        std::uint64_t filled = 0;
        std::uint64_t evicted = 0;
    };
    struct QueueProbe
    {
        std::string name;
        std::function<std::size_t()> depth;
    };

    /** One in-flight shootdown round (acks still outstanding). */
    struct ShootdownRound
    {
        std::size_t targets = 0;
        std::vector<TileId> acked;
    };

    std::unordered_map<Key, Flight, KeyHash> inFlight_;
    /** Lifetime retire count per (tile, VPN), for the census hash. */
    std::unordered_map<Key, std::uint64_t, KeyHash> retireCensus_;
    std::uint64_t inFlightTotal_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t retired_ = 0;
    std::function<std::optional<Pfn>(Vpn)> reference_;
    std::uint64_t pfnChecks_ = 0;
    std::uint64_t pfnMismatches_ = 0;
    std::uint64_t sent_[kNumPlanes] = {0, 0};
    std::uint64_t delivered_[kNumPlanes] = {0, 0};
    // Ordered maps: violation and diagnostic text comes out in tile
    // order, deterministically.
    std::map<TileId, MshrBalance> mshr_;
    std::map<TileId, TlbBalance> tlb_;
    std::map<TileId, std::function<std::size_t()>> tlbOccupancy_;
    std::vector<QueueProbe> queues_;
    /** Open shootdown rounds (key -> outstanding acks). */
    std::unordered_map<Vpn, ShootdownRound> openRounds_;
    std::uint64_t shootdownRounds_ = 0;
    std::uint64_t shootdownRoundsClosed_ = 0;
    std::uint64_t acksTotal_ = 0;
    std::uint64_t staleResidents_ = 0;
    /** Violations detected live (double retire, spurious retire). */
    std::vector<std::string> liveViolations_;
    /** Hook serialization for domain-parallel runs (setConcurrent). */
    bool concurrent_ = false;
    mutable std::mutex mu_;
};

} // namespace hdpat

#endif // HDPAT_OBS_AUDIT_HH
