/**
 * @file
 * Run heartbeat: a periodic engine event that logs simulation progress
 * (simulated tick, event throughput, wall-clock rate, plus a
 * caller-supplied status line) at LogLevel::Info, so long sweeps are no
 * longer silent.
 *
 * The heartbeat reschedules itself only while other events remain in
 * the queue; when it fires with an otherwise-empty queue the run is
 * over and it stops, so it never keeps Engine::run() alive on its own.
 */

#ifndef HDPAT_OBS_HEARTBEAT_HH
#define HDPAT_OBS_HEARTBEAT_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/engine.hh"
#include "sim/types.hh"

namespace hdpat
{

class Heartbeat
{
  public:
    /** Returns one status line, e.g. "in-flight=33 iommu-backlog=4". */
    using StatusFn = std::function<std::string()>;

    /**
     * @param interval Ticks between beats (> 0).
     * @param status Optional extra status; may be null.
     */
    Heartbeat(Engine &engine, Tick interval, StatusFn status = nullptr);

    /** Schedule the first beat (idempotent while running). */
    void start();

    /**
     * Coordinator mode for domain-parallel runs: no engine event is
     * scheduled (so the run's event counts stay identical to the
     * serial engine's); instead the domain barrier calls
     * beatExternal() once per window and a beat is emitted whenever a
     * full interval of simulated time has passed. Aggregates are read
     * globally at the barrier (workers quiescent), so a domain
     * legitimately idle at its window horizon still shows up inside a
     * live, progressing run.
     */
    void startExternal();

    /** Window-barrier tick-over; @p now is the new window start. */
    void beatExternal(Tick now);

    /** Stop after the current beat; pending event becomes a no-op. */
    void stop() { running_ = false; }

    bool running() const { return running_; }
    std::uint64_t beats() const { return beats_; }
    Tick interval() const { return interval_; }

  private:
    void fire();
    /** Shared beat body: log + roll the deltas forward. */
    void logBeat(Tick now);

    Engine &engine_;
    Tick interval_;
    StatusFn status_;
    bool running_ = false;
    /** Coordinator mode: driven by beatExternal, no engine events. */
    bool external_ = false;
    std::uint64_t beats_ = 0;
    std::uint64_t lastExecuted_ = 0;
    Tick lastTick_ = 0;
    /** External mode: earliest tick the next beat may log at. */
    Tick nextBeatTick_ = 0;
    std::chrono::steady_clock::time_point lastWall_;
};

} // namespace hdpat

#endif // HDPAT_OBS_HEARTBEAT_HH
