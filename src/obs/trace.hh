/**
 * @file
 * Per-request translation tracing: each sampled memory operation's
 * lifecycle is recorded as a chain of typed span events (issue -> TLB
 * levels -> filter/probe/redirect/walk -> completion) with simulated
 * tick timestamps.
 *
 * Design constraints:
 *  - Off by default: components hold a `Tracer *` that is null unless
 *    tracing was requested, so the hot path pays one pointer test.
 *  - Bounded: records live in a ring buffer; when it wraps, the oldest
 *    records are overwritten (and counted as dropped).
 *  - Sampled: only 1-in-N issued operations open a span, so even long
 *    runs stay cheap and the exported trace stays loadable. The
 *    sampling decision is a pure hash of (owner tile, VPN, issue
 *    tick), never an arrival counter, so serial and runMany
 *    executions — and calendar- vs heap-queue runs — sample exactly
 *    the same spans.
 *
 * A span is keyed by (owner tile, VPN): the GPM that issued the memory
 * op owns the span, and every component that touches the request on its
 * way across the wafer (peer GPMs, the network, the IOMMU) records
 * events against that key, which all messages already carry.
 */

#ifndef HDPAT_OBS_TRACE_HH
#define HDPAT_OBS_TRACE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/** One step in a translation's lifecycle. */
enum class SpanEvent : std::uint8_t
{
    Issue = 0,           ///< Memory op issued; translation begins.
    L1TlbHit,            ///< Hit in the per-CU L1 TLB.
    L2TlbHit,            ///< Hit in the GPM-shared L2 TLB.
    CuckooNegative,      ///< Cuckoo filter ruled out the local path.
    LastLevelTlbHit,     ///< Hit in the last-level TLB (GMMU cache).
    LocalWalkStart,      ///< Local GMMU walk requested.
    LocalWalkHit,        ///< Local walk found the page (homed here).
    CuckooFalsePositive, ///< Local walk missed: filter false positive.
    RemoteStart,         ///< Remote resolution protocol launched.
    RemoteStalled,       ///< Remote MSHR full; op queued for retry.
    ProbeSent,           ///< Peer/neighbour probe sent (arg = target).
    ProbeHit,            ///< A probe answered hit (arg = responder).
    ProbeMiss,           ///< A probe answered miss (arg = responder).
    NetSend,             ///< Message handed to the NoC (arg = dest).
    NetArrive,           ///< Message delivered by the NoC (arg = dest).
    IommuArrive,         ///< Request entered the IOMMU pre-queue.
    IommuAdmit,          ///< Request left the pre-queue (admitted).
    IommuRedirect,       ///< Redirection-table hit (arg = aux tile).
    IommuTlbHit,         ///< Conventional IOMMU-TLB hit (Fig 19 mode).
    IommuWalkStart,      ///< IOMMU page-table walk began.
    IommuWalkDone,       ///< IOMMU page-table walk finished.
    IommuRespond,        ///< IOMMU sent the PFN response.
    RedirectArrive,      ///< Redirected request reached the aux GPM.
    RedirectHit,         ///< Aux GPM served the redirected request.
    RedirectBounce,      ///< Aux copy evicted; bounced to the IOMMU.
    DelegatedWalk,       ///< Trans-FW walk delegated (arg = home).
    GmmuWalkStart,       ///< A GMMU walker picked up the walk.
    GmmuWalkDone,        ///< GMMU walk finished (arg = 1 if mapped).
    Resolved,            ///< Remote PFN obtained (arg = source).
    DataAccess,          ///< Translation done; data access issued.
    Complete,            ///< Memory op completed; span closes.
};

constexpr std::size_t kNumSpanEvents =
    static_cast<std::size_t>(SpanEvent::Complete) + 1;

/** Printable name of a span event (stable; part of the trace schema). */
const char *spanEventName(SpanEvent ev);

/** One recorded span event. */
struct TraceRecord
{
    /** Span this record belongs to (1-based; 0 = invalid). */
    std::uint64_t span = 0;
    Tick tick = 0;
    Vpn vpn = 0;
    /** Event-specific argument (peer tile, TranslationSource, ...). */
    std::uint64_t arg = 0;
    /** GPM that issued the traced op (the span's owner). */
    TileId owner = kInvalidTile;
    /** Tile at which this event happened. */
    TileId at = kInvalidTile;
    SpanEvent event = SpanEvent::Issue;
};

/**
 * Observer of the live record stream. A sink sees every record the
 * tracer accepts — Issue through Complete, in simulation order —
 * before it lands in (and can later be evicted from) the ring, so
 * sinks are immune to ring wrap. The latency-attribution collector
 * (obs/latency.hh) is the canonical implementation.
 */
class SpanSink
{
  public:
    virtual ~SpanSink() = default;
    virtual void onRecord(const TraceRecord &rec) = 0;
};

class Tracer
{
  public:
    /**
     * @param capacity Ring-buffer size in records (> 0).
     * @param sample_n Open a span for 1 in @p sample_n issued ops
     *        (1 = every op; 0 is clamped to 1).
     */
    explicit Tracer(std::size_t capacity = 1u << 20,
                    std::uint64_t sample_n = 1);

    std::uint64_t sampleN() const { return sampleN_; }
    std::size_t capacity() const { return capacity_; }

    /**
     * Open a span for (owner, vpn) if this op is sampled and no span
     * with the same key is already live.
     * @return true when the op is now traced.
     */
    bool begin(TileId owner, Vpn vpn, Tick now);

    /**
     * Would an op keyed (owner, vpn) issued at @p now be sampled?
     * Pure function of its arguments and sampleN(): no tracer state
     * is read or written, which is the determinism contract satellite
     * runs (serial vs runMany, calendar vs heap queue) rely on.
     */
    bool sampled(TileId owner, Vpn vpn, Tick now) const;

    /**
     * Attach a record-stream observer (null = none). The sink is
     * notified synchronously for every accepted record, including
     * Issue and Complete.
     */
    void setSink(SpanSink *sink) { sink_ = sink; }

    /** Is a span live for this key? Cheap; safe to call per event. */
    bool active(TileId owner, Vpn vpn) const;

    /** Record one event against a live span (no-op when none). */
    void record(TileId owner, Vpn vpn, Tick now, SpanEvent ev,
                TileId at, std::uint64_t arg = 0);

    /** Record the Complete event and close the span. */
    void end(TileId owner, Vpn vpn, Tick now);

    std::uint64_t opsSeen() const { return opsSeen_; }
    std::uint64_t spansStarted() const { return spansStarted_; }
    std::uint64_t spansCompleted() const { return spansCompleted_; }
    /** Records overwritten by ring wrap-around. */
    std::uint64_t recordsDropped() const { return dropped_; }
    /** Records currently held. */
    std::size_t size() const;

    /** Visit held records, oldest first. */
    void forEachRecord(
        const std::function<void(const TraceRecord &)> &fn) const;

  private:
    struct Key
    {
        TileId owner;
        Vpn vpn;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            // Splitmix-style scramble; exact equality is still checked
            // by the map, this only spreads buckets.
            std::uint64_t x =
                k.vpn * 0x9e3779b97f4a7c15ull +
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(k.owner));
            x ^= x >> 31;
            return static_cast<std::size_t>(x);
        }
    };

    void push(const TraceRecord &rec);

    std::size_t capacity_;
    std::uint64_t sampleN_;
    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0;
    bool wrapped_ = false;

    std::unordered_map<Key, std::uint64_t, KeyHash> live_;
    std::uint64_t nextSpan_ = 1;
    std::uint64_t opsSeen_ = 0;
    std::uint64_t spansStarted_ = 0;
    std::uint64_t spansCompleted_ = 0;
    std::uint64_t dropped_ = 0;
    SpanSink *sink_ = nullptr;
};

} // namespace hdpat

#endif // HDPAT_OBS_TRACE_HH
