#include "obs/json_writer.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/log.hh"

namespace hdpat
{

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (scopes_.empty())
        return;
    if (pendingKey_)
        return; // The key already emitted the separator.
    if (hasElement_.back())
        os_ << ',';
    hasElement_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    pendingKey_ = false;
    os_ << '{';
    scopes_.push_back(Scope::Object);
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    hdpat_panic_if(scopes_.empty() || scopes_.back() != Scope::Object,
                   "JsonWriter: endObject outside an object");
    os_ << '}';
    scopes_.pop_back();
    hasElement_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    pendingKey_ = false;
    os_ << '[';
    scopes_.push_back(Scope::Array);
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    hdpat_panic_if(scopes_.empty() || scopes_.back() != Scope::Array,
                   "JsonWriter: endArray outside an array");
    os_ << ']';
    scopes_.pop_back();
    hasElement_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    hdpat_panic_if(scopes_.empty() || scopes_.back() != Scope::Object,
                   "JsonWriter: key outside an object");
    separate();
    os_ << '"' << escape(k) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    pendingKey_ = false;
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    pendingKey_ = false;
    // JSON has no NaN/Inf; clamp to null so files stay parseable.
    if (!std::isfinite(v)) {
        os_ << "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    pendingKey_ = false;
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    pendingKey_ = false;
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    pendingKey_ = false;
    os_ << (v ? "true" : "false");
    return *this;
}

} // namespace hdpat
