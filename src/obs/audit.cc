#include "obs/audit.hh"

#include <algorithm>
#include <sstream>

namespace hdpat
{

void
Auditor::opIssued(TileId tile, Vpn vpn, Tick now)
{
    const MaybeLock lock(*this);
    ++issued_;
    ++inFlightTotal_;
    Flight &f = inFlight_[Key{tile, vpn}];
    if (f.count == 0)
        f.earliestIssue = now;
    ++f.count;
}

void
Auditor::opRetired(TileId tile, Vpn vpn, Tick now)
{
    const MaybeLock lock(*this);
    ++retired_;
    ++retireCensus_[Key{tile, vpn}];
    const auto it = inFlight_.find(Key{tile, vpn});
    if (it == inFlight_.end()) {
        // A retire with no matching issue is either a double retire or
        // a phantom completion; both are recorded the moment they
        // happen so the diagnostic carries the offending tick.
        std::ostringstream os;
        os << "retire without matching issue: tile " << tile
           << " vpn 0x" << std::hex << vpn << std::dec << " at tick "
           << now;
        liveViolations_.push_back(os.str());
        return;
    }
    --inFlightTotal_;
    if (--it->second.count == 0)
        inFlight_.erase(it);
}

void
Auditor::pfnResolved(TileId tile, Vpn vpn, Pfn pfn, Tick now)
{
    const MaybeLock lock(*this);
    if (!reference_)
        return;
    ++pfnChecks_;
    const std::optional<Pfn> want = reference_(vpn);
    if (!want)
        return; // Unmapped (e.g. shot down mid-flight): no verdict.
    if (*want == pfn)
        return;
    ++pfnMismatches_;
    // Record the first few with full context; the rest only count, so
    // a systematically wrong path cannot OOM the auditor.
    constexpr std::uint64_t kMaxRecorded = 16;
    if (pfnMismatches_ <= kMaxRecorded) {
        std::ostringstream os;
        os << "wrong PPN installed at tile " << tile << ": vpn 0x"
           << std::hex << vpn << " resolved to pfn 0x" << pfn
           << " but the page table says 0x" << *want << std::dec
           << " (tick " << now << ")";
        liveViolations_.push_back(os.str());
    }
}

void
Auditor::shootdownIssued(Vpn vpn, std::size_t targets, Tick now)
{
    const MaybeLock lock(*this);
    ++shootdownRounds_;
    const auto [it, inserted] = openRounds_.try_emplace(vpn);
    if (!inserted) {
        std::ostringstream os;
        os << "shootdown round opened for vpn 0x" << std::hex << vpn
           << std::dec << " at tick " << now
           << " while a previous round is still awaiting "
           << (it->second.targets - it->second.acked.size()) << " acks";
        liveViolations_.push_back(os.str());
        return;
    }
    it->second.targets = targets;
    if (targets == 0) {
        openRounds_.erase(it);
        ++shootdownRoundsClosed_;
    }
}

void
Auditor::invalidationAcked(Vpn vpn, TileId tile, Tick now)
{
    const MaybeLock lock(*this);
    ++acksTotal_;
    const auto it = openRounds_.find(vpn);
    if (it == openRounds_.end()) {
        std::ostringstream os;
        os << "invalidation ack from tile " << tile << " for vpn 0x"
           << std::hex << vpn << std::dec << " at tick " << now
           << " with no open shootdown round";
        liveViolations_.push_back(os.str());
        return;
    }
    ShootdownRound &round = it->second;
    if (std::find(round.acked.begin(), round.acked.end(), tile) !=
        round.acked.end()) {
        std::ostringstream os;
        os << "duplicate invalidation ack from tile " << tile
           << " for vpn 0x" << std::hex << vpn << std::dec
           << " at tick " << now;
        liveViolations_.push_back(os.str());
        return;
    }
    round.acked.push_back(tile);
    if (round.acked.size() >= round.targets) {
        openRounds_.erase(it);
        ++shootdownRoundsClosed_;
    }
}

void
Auditor::staleResident(TileId tile, Vpn vpn, Pfn pfn)
{
    const MaybeLock lock(*this);
    ++staleResidents_;
    constexpr std::uint64_t kMaxRecorded = 16;
    if (staleResidents_ <= kMaxRecorded) {
        std::ostringstream os;
        os << "stale TLB entry resident at tile " << tile << ": vpn 0x"
           << std::hex << vpn << " -> pfn 0x" << pfn << std::dec
           << " survived its shootdown (page table disagrees)";
        liveViolations_.push_back(os.str());
    }
}

std::uint64_t
Auditor::retireCensusHash() const
{
    // Commutative combine (sum of scrambled entries), so the digest
    // is independent of hash-map iteration order and of the order
    // retires happened in.
    std::uint64_t h = 0;
    for (const auto &[key, count] : retireCensus_) {
        std::uint64_t x = key.vpn * 0x9e3779b97f4a7c15ull;
        x ^= static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(key.tile)) *
             0xbf58476d1ce4e5b9ull;
        x ^= count * 0x94d049bb133111ebull;
        x ^= x >> 31;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 29;
        h += x;
    }
    return h;
}

void
Auditor::addQueueProbe(std::string name,
                       std::function<std::size_t()> depth)
{
    queues_.push_back({std::move(name), std::move(depth)});
}

void
Auditor::setTlbOccupancyProbe(TileId tile,
                              std::function<std::size_t()> occupancy)
{
    tlbOccupancy_[tile] = std::move(occupancy);
}

std::string
Auditor::diagnostic() const
{
    std::ostringstream os;

    // Stuck spans: every (tile, VPN) issued but not yet retired, in
    // deterministic (tile, vpn) order.
    std::vector<std::pair<Key, Flight>> stuck(inFlight_.begin(),
                                              inFlight_.end());
    std::sort(stuck.begin(), stuck.end(),
              [](const auto &a, const auto &b) {
                  return a.first.tile != b.first.tile
                             ? a.first.tile < b.first.tile
                             : a.first.vpn < b.first.vpn;
              });
    os << "stuck spans: " << stuck.size() << "\n";
    constexpr std::size_t kMaxListed = 16;
    for (std::size_t i = 0; i < stuck.size() && i < kMaxListed; ++i) {
        const auto &[key, flight] = stuck[i];
        os << "  tile " << key.tile << " vpn 0x" << std::hex << key.vpn
           << std::dec << " in-flight " << flight.count
           << " since tick " << flight.earliestIssue << "\n";
    }
    if (stuck.size() > kMaxListed)
        os << "  ... " << (stuck.size() - kMaxListed) << " more\n";

    std::map<TileId, std::uint64_t> per_tile;
    for (const auto &[key, flight] : inFlight_)
        per_tile[key.tile] += flight.count;
    os << "in-flight per tile:";
    if (per_tile.empty())
        os << " (none)";
    for (const auto &[tile, count] : per_tile)
        os << " t" << tile << "=" << count;
    os << "\n";

    // Deepest queues first; empty ones are noise.
    std::vector<std::pair<std::size_t, const QueueProbe *>> depths;
    for (const QueueProbe &q : queues_) {
        const std::size_t d = q.depth();
        if (d > 0)
            depths.emplace_back(d, &q);
    }
    std::sort(depths.begin(), depths.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first
                             ? a.first > b.first
                             : a.second->name < b.second->name;
              });
    os << "deepest queues:";
    if (depths.empty())
        os << " (all empty)";
    for (std::size_t i = 0; i < depths.size() && i < kMaxListed; ++i)
        os << " " << depths[i].second->name << "=" << depths[i].first;
    os << "\n";
    return os.str();
}

Auditor::Report
Auditor::finalize() const
{
    Report report;
    report.violations = liveViolations_;

    if (!inFlight_.empty()) {
        std::ostringstream os;
        os << inFlight_.size() << " (tile, VPN) spans issued but never "
           << "retired (" << inFlightTotal_ << " ops in flight)";
        report.violations.push_back(os.str());
    }
    if (issued_ != retired_) {
        std::ostringstream os;
        os << "issued " << issued_ << " ops but retired " << retired_;
        report.violations.push_back(os.str());
    }
    if (pfnMismatches_ > 0) {
        std::ostringstream os;
        os << pfnMismatches_ << " of " << pfnChecks_
           << " resolved translations installed a PPN that "
           << "contradicts the page table";
        report.violations.push_back(os.str());
    }
    if (staleResidents_ > 16) {
        std::ostringstream os;
        os << staleResidents_
           << " stale resident TLB entries total (first 16 listed)";
        report.violations.push_back(os.str());
    }

    for (std::size_t p = 0; p < kNumPlanes; ++p) {
        if (sent_[p] == delivered_[p])
            continue;
        std::ostringstream os;
        os << planeName(static_cast<Plane>(p)) << "-plane packets: "
           << sent_[p] << " sent but " << delivered_[p] << " delivered";
        report.violations.push_back(os.str());
    }

    for (const auto &[tile, balance] : mshr_) {
        if (balance.allocated == balance.freed)
            continue;
        std::ostringstream os;
        os << "tile " << tile << " MSHR: " << balance.allocated
           << " allocations but " << balance.freed << " frees";
        report.violations.push_back(os.str());
    }

    for (const auto &[tile, balance] : tlb_) {
        const auto probe = tlbOccupancy_.find(tile);
        const std::uint64_t occupancy =
            probe != tlbOccupancy_.end() ? probe->second() : 0;
        if (balance.filled == balance.evicted + occupancy)
            continue;
        std::ostringstream os;
        os << "tile " << tile << " last-level TLB: " << balance.filled
           << " fills != " << balance.evicted << " evictions + "
           << occupancy << " resident";
        report.violations.push_back(os.str());
    }

    for (const QueueProbe &q : queues_) {
        const std::size_t depth = q.depth();
        if (depth == 0)
            continue;
        std::ostringstream os;
        os << "queue " << q.name << " still holds " << depth
           << " entries after the run drained";
        report.violations.push_back(os.str());
    }

    for (const auto &[vpn, round] : openRounds_) {
        std::ostringstream os;
        os << "shootdown round for vpn 0x" << std::hex << vpn
           << std::dec << " never closed: " << round.acked.size()
           << " of " << round.targets << " acks received";
        report.violations.push_back(os.str());
    }

    report.ok = report.violations.empty();
    if (!report.ok)
        report.diagnostic = diagnostic();
    return report;
}

} // namespace hdpat
