/**
 * @file
 * Spatial heatmap collection: per-link NoC utilization and per-tile
 * occupancy/queue-depth time series, exported as the "spatial" section
 * of the metrics JSON (+ a CSV emitter) and consumed by the Fig 5
 * position-imbalance harness.
 *
 * Two data paths feed the collector:
 *
 *  - The network calls linkTraversed() for every link a packet
 *    crosses (guarded by the usual null-pointer test, so routing pays
 *    nothing when heatmaps are off).
 *  - A SpatialSampler engine event periodically snapshots per-tile
 *    queue depths/occupancy through a System-supplied callback, at
 *    the sampling window the caller chose.
 *
 * At run end System fills in the per-tile summary (position, ring,
 * finish tick, remote-translation RTT) so the exported section is
 * self-contained: Fig 5 regenerates from the JSON alone.
 */

#ifndef HDPAT_OBS_SPATIAL_HH
#define HDPAT_OBS_SPATIAL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/engine.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hdpat
{

class SpatialCollector
{
  public:
    /** Directed-link accumulators; index = tile * 4 + direction. */
    struct Link
    {
        std::uint64_t packets = 0;
        std::uint64_t bytes = 0;
        /** Ticks the link spent serializing payloads. */
        double busyTicks = 0.0;
        /** Ticks packets waited for the link to free. */
        double waitTicks = 0.0;
    };

    /** Windowed per-tile series fed by the sampler. */
    struct TileSeries
    {
        TimeSeries outstanding;
        TimeSeries gmmuQueue;
        explicit TileSeries(Tick window)
            : outstanding(window), gmmuQueue(window)
        {
        }
    };

    /** Filled by System at run end; keys the Fig 5 reconstruction. */
    struct TileSummary
    {
        int x = 0;
        int y = 0;
        int ring = 0;
        bool isGpm = false;
        bool isCpu = false;
        Tick finishTick = 0;
        double rttMean = 0.0;
        std::uint64_t rttCount = 0;
    };

    /** Link direction codes match Network::linkIndex. */
    static const char *dirName(unsigned dir);

    SpatialCollector(std::size_t num_tiles, Tick window);

    /** Mesh geometry stamped into the export header. */
    void setMesh(int width, int height, TileId cpu_tile);

    // ---- Hot path (network route walk) -------------------------------
    void linkTraversed(std::size_t link, std::size_t bytes, double busy,
                       double wait)
    {
        Link &l = links_[link];
        ++l.packets;
        l.bytes += bytes;
        l.busyTicks += busy;
        l.waitTicks += wait;
    }

    // ---- Sampler path -------------------------------------------------
    void sampleTile(TileId tile, Tick now, double outstanding,
                    double gmmu_queue);
    void sampleIommu(Tick now, double backlog)
    {
        iommuBacklog_.add(now, backlog);
    }

    // ---- End of run ----------------------------------------------------
    void setTileSummary(TileId tile, const TileSummary &summary)
    {
        summaries_[tile] = summary;
    }

    // ---- Accessors (export, tests) -------------------------------------
    Tick window() const { return window_; }
    std::size_t numTiles() const { return links_.size() / 4; }
    int meshWidth() const { return width_; }
    int meshHeight() const { return height_; }
    TileId cpuTile() const { return cpuTile_; }
    const std::vector<Link> &links() const { return links_; }
    const std::map<TileId, TileSeries> &tileSeries() const
    {
        return series_;
    }
    const std::map<TileId, TileSummary> &tileSummaries() const
    {
        return summaries_;
    }
    const TimeSeries &iommuBacklog() const { return iommuBacklog_; }

  private:
    Tick window_;
    int width_ = 0;
    int height_ = 0;
    TileId cpuTile_ = kInvalidTile;
    std::vector<Link> links_;
    std::map<TileId, TileSeries> series_;
    std::map<TileId, TileSummary> summaries_;
    TimeSeries iommuBacklog_;
};

/**
 * Periodic sampling event in the heartbeat's mould: fires the sample
 * callback every @p interval ticks while other events remain queued.
 */
class SpatialSampler
{
  public:
    using SampleFn = std::function<void(Tick now)>;

    SpatialSampler(Engine &engine, Tick interval, SampleFn sample);

    void start();
    void stop() { running_ = false; }
    bool running() const { return running_; }
    std::uint64_t samples() const { return samples_; }

  private:
    void fire();

    Engine &engine_;
    Tick interval_;
    SampleFn sample_;
    bool running_ = false;
    std::uint64_t samples_ = 0;
};

} // namespace hdpat

#endif // HDPAT_OBS_SPATIAL_HH
