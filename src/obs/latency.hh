/**
 * @file
 * Latency anatomy: per-stage attribution of translation spans.
 *
 * The span tracer (obs/trace.hh) records *events*; this layer turns
 * each completed span into a stage timeline by attributing every
 * inter-record interval [rec[i].tick, rec[i+1].tick) to exactly one
 * pipeline stage. The stage is a pure function of the earlier record
 * (its event, whether it happened at the owner tile, and whether its
 * argument names the owner), so attribution needs no protocol state
 * and conservation holds by construction:
 *
 *     sum over stages of attributed ticks == complete - issue
 *
 * for every span, which the fuzz harness enforces as an oracle.
 *
 * Accumulated products per run:
 *  - per-stage SummaryStat + Log2Histogram (ticks spent in the stage
 *    by each span that visited it),
 *  - end-to-end SummaryStat + Log2Histogram,
 *  - per-owner-tile end-to-end Log2Histogram,
 *  - an exact-quantile reservoir of end-to-end latencies, so
 *    p50/p95/p99/p999 are real order statistics rather than bucket
 *    upper bounds,
 *  - the slowest-K spans with their full timelines, rendered by
 *    criticalPathReport() as a paste-ready diagnostic.
 *
 * Everything is driven through the SpanSink interface, so the
 * collector sees every record regardless of trace ring capacity, and
 * costs nothing when latency attribution is off (null tracer sink).
 */

#ifndef HDPAT_OBS_LATENCY_HH
#define HDPAT_OBS_LATENCY_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hdpat
{

/**
 * Translation pipeline stages, in rough issue-to-retire order. Each
 * inter-record interval of a span is attributed to exactly one.
 */
enum class LatencyStage : std::uint8_t
{
    TlbProbe = 0, ///< On-GPM TLB hierarchy probe (L1/L2/filter).
    PeerLookup,   ///< Peer/cuckoo/neighbour lookup at a remote GPM.
    NocRequest,   ///< Request-direction NoC flight time.
    PreQueue,     ///< IOMMU ingress (pre-admission) queue wait.
    QueueWait,    ///< Walker/MSHR queue wait (GMMU or IOMMU side).
    PageWalk,     ///< Page-table walk service time.
    NocReply,     ///< Reply-direction NoC flight time.
    Fill,         ///< TLB fill / local resolution bookkeeping.
    DataRetire,   ///< Post-translation data access until retire.
};

constexpr std::size_t kNumLatencyStages =
    static_cast<std::size_t>(LatencyStage::DataRetire) + 1;

/** Stable printable stage name (part of the metrics-JSON schema). */
const char *latencyStageName(LatencyStage stage);

/**
 * Stage attributed to the interval that *follows* @p rec. Pure
 * function of (rec.event, rec.at == rec.owner, rec.arg == rec.owner);
 * see DESIGN.md for the taxonomy rationale. Complete has no following
 * interval; by convention it maps to DataRetire (never consulted).
 */
LatencyStage latencyStageAfter(const TraceRecord &rec);

/** One step of a reconstructed span timeline. */
struct LatencyTimelineStep
{
    /** Ticks since the span's Issue record. */
    Tick offset = 0;
    /** Length of the interval that follows (0 for the last step). */
    Tick ticks = 0;
    SpanEvent event = SpanEvent::Issue;
    /** Tile at which the event happened. */
    TileId at = kInvalidTile;
    /** Event argument (peer tile, source, ...). */
    std::uint64_t arg = 0;
    /** Stage the following interval was attributed to. */
    LatencyStage stage = LatencyStage::TlbProbe;
};

/** A slowest-K span with its full per-hop timeline. */
struct LatencySpanTimeline
{
    std::uint64_t span = 0;
    TileId owner = kInvalidTile;
    Vpn vpn = 0;
    Tick issueTick = 0;
    /** End-to-end latency (complete - issue). */
    Tick total = 0;
    /** Ticks attributed to each stage (sums to total). */
    std::array<Tick, kNumLatencyStages> stageTicks{};
    std::vector<LatencyTimelineStep> steps;
};

/** Per-stage accumulation across the spans that visited the stage. */
struct LatencyStageStats
{
    SummaryStat stat;
    Log2Histogram hist;
};

/**
 * Immutable, copyable result of a collection run. Lives in RunResult,
 * feeds the metrics-JSON "latency" section, and merges across runMany
 * batches for CLI sweeps.
 */
struct LatencySnapshot
{
    /** Sampling divisor the spans were collected under (1 = exact). */
    std::uint64_t sampleN = 1;
    /** Spans completed and attributed. */
    std::uint64_t spans = 0;
    /** Spans whose stage ticks failed to sum to end-to-end latency. */
    std::uint64_t conservationViolations = 0;

    std::array<LatencyStageStats, kNumLatencyStages> stages;

    SummaryStat endToEnd;
    Log2Histogram endToEndHist;

    /** Per-owner-tile end-to-end histograms, tile-ordered. */
    std::vector<std::pair<TileId, Log2Histogram>> perTile;

    /** End-to-end latencies, sorted ascending (exact order stats). */
    std::vector<std::uint64_t> reservoir;
    /** Samples discarded once the reservoir cap was hit. */
    std::uint64_t reservoirDropped = 0;

    /** Slowest spans, slowest first. */
    std::vector<LatencySpanTimeline> slowest;

    bool empty() const { return spans == 0; }

    /**
     * Exact end-to-end quantile: the order statistic at rank
     * ceil(q * n) - 1 of the sorted reservoir. Matches
     * Log2Histogram::quantile's "first cumulative >= q * total"
     * convention, so when the reservoir dropped nothing the two
     * always land in the same log2 bucket (CI enforces <= 1 apart).
     */
    std::uint64_t exactQuantile(double q) const;

    /**
     * Fold @p other into this snapshot, keeping the @p top_k slowest
     * spans overall. Used by the CLI to aggregate runMany sweeps.
     */
    void merge(const LatencySnapshot &other, std::size_t top_k);
};

/**
 * Paste-ready critical-path diagnostic for the slowest spans: one
 * block per span with its stage totals and tick-by-tick hop timeline,
 * in the auditor's structured-report style.
 */
std::string criticalPathReport(const LatencySnapshot &snap);

/**
 * SpanSink that reconstructs stage timelines from the tracer's record
 * stream. Attach with Tracer::setSink; snapshot() at end of run.
 */
class LatencyCollector : public SpanSink
{
  public:
    /** Hard cap on exact-quantile samples held (1 Mi * 4 = 32 MiB). */
    static constexpr std::size_t kReservoirCap = 1u << 22;

    /**
     * @param sample_n Sampling divisor (recorded into the snapshot;
     *        the tracer enforces it).
     * @param top_k Slowest spans to keep with full timelines.
     */
    explicit LatencyCollector(std::uint64_t sample_n = 1,
                              std::size_t top_k = 8);

    void onRecord(const TraceRecord &rec) override;

    std::uint64_t spansCompleted() const { return spans_; }
    std::uint64_t conservationViolations() const { return violations_; }

    /** Materialize the accumulated state (sorts the reservoir). */
    LatencySnapshot snapshot() const;

  private:
    void finalize(std::vector<TraceRecord> &records);

    std::uint64_t sampleN_;
    std::size_t topK_;

    /** Records of live spans, keyed by span id, in arrival order. */
    std::unordered_map<std::uint64_t, std::vector<TraceRecord>> live_;

    std::array<LatencyStageStats, kNumLatencyStages> stages_;
    SummaryStat endToEnd_;
    Log2Histogram endToEndHist_;
    std::map<TileId, Log2Histogram> perTile_;
    std::vector<std::uint64_t> reservoir_;
    std::uint64_t reservoirDropped_ = 0;
    /** Kept sorted slowest-first, truncated to topK_. */
    std::vector<LatencySpanTimeline> slowest_;
    std::uint64_t spans_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace hdpat

#endif // HDPAT_OBS_LATENCY_HH
