/**
 * @file
 * Observability exporters:
 *
 *  - writeMetricsJson: one stable-schema JSON document per run holding
 *    every registered metric (counters, gauges, summaries, histograms,
 *    time series) plus run metadata. Schema id: "hdpat-metrics-v1",
 *    or "hdpat-metrics-v2" when the optional "latency" section (stage
 *    anatomy, exact quantiles, slowest spans) is present, or
 *    "hdpat-metrics-v3" when the "backpressure" section (per-resource
 *    saturation accounting, obs/backpressure.hh) is present.
 *
 *  - writeChromeTrace: the span trace in Chrome Trace Event Format
 *    (the JSON-array-of-events flavour), loadable in Perfetto or
 *    chrome://tracing. Each sampled translation becomes one track
 *    (pid = owner GPM tile, tid = span id) whose slices are the phases
 *    between consecutive span events; simulated ticks are mapped 1:1
 *    to microseconds.
 */

#ifndef HDPAT_OBS_EXPORTERS_HH
#define HDPAT_OBS_EXPORTERS_HH

#include <iosfwd>
#include <string>

#include "obs/backpressure.hh"
#include "obs/latency.hh"
#include "obs/profiler.hh"
#include "obs/registry.hh"
#include "obs/spatial.hh"
#include "obs/trace.hh"

namespace hdpat
{

/** Run identification written into the metrics JSON header. */
struct RunMetadata
{
    std::string workload;
    std::string policy;
    std::string config;
    std::uint64_t seed = 0;
    std::uint64_t totalTicks = 0;
};

/**
 * Dump every metric in @p registry as one JSON document. When
 * @p spatial / @p profile / @p latency / @p backpressure are non-null
 * their data is appended as "spatial", "profile", "latency", and
 * "backpressure" sections; omitting them keeps the document
 * byte-identical to pre-introspection exports (including the v1
 * schema id — a present "latency" section bumps it to v2 and a
 * present "backpressure" section to v3).
 */
void writeMetricsJson(std::ostream &os, const MetricRegistry &registry,
                      const RunMetadata &meta,
                      const SpatialCollector *spatial = nullptr,
                      const ProfileSnapshot *profile = nullptr,
                      const LatencySnapshot *latency = nullptr,
                      const BackpressureSnapshot *backpressure = nullptr);

/** Dump @p tracer's span records in Chrome Trace Event Format. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/**
 * The spatial heatmap as flat CSV rows (kind = "link" rows carry
 * per-directed-link traffic, kind = "tile" rows the per-tile summary
 * and mean occupancy), for spreadsheet/pandas consumption.
 */
void writeSpatialCsv(std::ostream &os, const SpatialCollector &spatial);

} // namespace hdpat

#endif // HDPAT_OBS_EXPORTERS_HH
