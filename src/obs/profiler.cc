#include "obs/profiler.hh"

namespace hdpat
{

const char *
profSectionName(ProfSection section)
{
    switch (section) {
    case ProfSection::EventDispatch:
        return "event_dispatch";
    case ProfSection::Translate:
        return "translate";
    case ProfSection::NocRouting:
        return "noc_routing";
    case ProfSection::IommuPipeline:
        return "iommu_pipeline";
    case ProfSection::WorkloadGen:
        return "workload_gen";
    case ProfSection::Export:
        return "export";
    }
    return "unknown";
}

void
ProfileSnapshot::merge(const ProfileSnapshot &other)
{
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
        sections[i].calls += other.sections[i].calls;
        sections[i].nanos += other.sections[i].nanos;
    }
    wallNanos += other.wallNanos;
    runs += other.runs;
}

} // namespace hdpat
