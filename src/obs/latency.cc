#include "obs/latency.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace hdpat
{

const char *
latencyStageName(LatencyStage stage)
{
    switch (stage) {
      case LatencyStage::TlbProbe:
        return "tlb-probe";
      case LatencyStage::PeerLookup:
        return "peer-lookup";
      case LatencyStage::NocRequest:
        return "noc-request";
      case LatencyStage::PreQueue:
        return "pre-queue";
      case LatencyStage::QueueWait:
        return "queue-wait";
      case LatencyStage::PageWalk:
        return "page-walk";
      case LatencyStage::NocReply:
        return "noc-reply";
      case LatencyStage::Fill:
        return "fill";
      case LatencyStage::DataRetire:
        return "data-retire";
    }
    return "unknown";
}

LatencyStage
latencyStageAfter(const TraceRecord &rec)
{
    switch (rec.event) {
      case SpanEvent::Issue:
        return LatencyStage::TlbProbe;

      // A hit (or final resolution) is followed by fill bookkeeping.
      case SpanEvent::L1TlbHit:
      case SpanEvent::L2TlbHit:
      case SpanEvent::LastLevelTlbHit:
      case SpanEvent::LocalWalkHit:
      case SpanEvent::ProbeHit:
      case SpanEvent::Resolved:
        return LatencyStage::Fill;

      // Filter verdicts and protocol launch: the op is deciding who
      // might hold the translation — peer/cuckoo lookup work.
      case SpanEvent::CuckooNegative:
      case SpanEvent::CuckooFalsePositive:
      case SpanEvent::RemoteStart:
        return LatencyStage::PeerLookup;

      // MSHR-full stall and walker-queue entry both wait in a queue.
      case SpanEvent::RemoteStalled:
      case SpanEvent::LocalWalkStart:
      case SpanEvent::IommuAdmit:
        return LatencyStage::QueueWait;

      // Request-direction messaging. NetSend's arg is the destination
      // tile: a message headed *to* the owner is a reply (responses
      // always target the requester; requests never do, because
      // cuckoo filters have no false negatives so home != requester).
      case SpanEvent::ProbeSent:
      case SpanEvent::ProbeMiss:
      case SpanEvent::IommuRedirect:
      case SpanEvent::RedirectBounce:
      case SpanEvent::DelegatedWalk:
        return LatencyStage::NocRequest;
      case SpanEvent::NetSend:
        return rec.arg == static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(rec.owner))
                   ? LatencyStage::NocReply
                   : LatencyStage::NocRequest;

      // Arrival at the owner starts the fill; arrival anywhere else
      // starts that tile's lookup work.
      case SpanEvent::NetArrive:
        return rec.at == rec.owner ? LatencyStage::Fill
                                   : LatencyStage::PeerLookup;

      case SpanEvent::IommuArrive:
        return LatencyStage::PreQueue;

      case SpanEvent::IommuWalkStart:
      case SpanEvent::GmmuWalkStart:
        return LatencyStage::PageWalk;

      // Walk/TLB results and responses head back toward the owner.
      case SpanEvent::IommuWalkDone:
      case SpanEvent::GmmuWalkDone:
      case SpanEvent::IommuTlbHit:
      case SpanEvent::IommuRespond:
      case SpanEvent::RedirectHit:
        return LatencyStage::NocReply;

      case SpanEvent::RedirectArrive:
        return LatencyStage::PeerLookup;

      case SpanEvent::DataAccess:
      case SpanEvent::Complete: // No following interval; unused.
        return LatencyStage::DataRetire;
    }
    return LatencyStage::DataRetire;
}

std::uint64_t
LatencySnapshot::exactQuantile(double q) const
{
    if (reservoir.empty())
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double n = static_cast<double>(reservoir.size());
    double rank = std::ceil(q * n) - 1.0;
    if (rank < 0.0)
        rank = 0.0;
    std::size_t idx = static_cast<std::size_t>(rank);
    if (idx >= reservoir.size())
        idx = reservoir.size() - 1;
    return reservoir[idx];
}

namespace
{

/** Strict "a is slower than b" order for slowest-K retention. */
bool
slowerThan(const LatencySpanTimeline &a, const LatencySpanTimeline &b)
{
    if (a.total != b.total)
        return a.total > b.total;
    if (a.issueTick != b.issueTick)
        return a.issueTick < b.issueTick;
    if (a.owner != b.owner)
        return a.owner < b.owner;
    if (a.vpn != b.vpn)
        return a.vpn < b.vpn;
    return a.span < b.span;
}

} // namespace

void
LatencySnapshot::merge(const LatencySnapshot &other, std::size_t top_k)
{
    sampleN = std::max(sampleN, other.sampleN);
    spans += other.spans;
    conservationViolations += other.conservationViolations;
    for (std::size_t i = 0; i < kNumLatencyStages; ++i) {
        stages[i].stat.merge(other.stages[i].stat);
        stages[i].hist.merge(other.stages[i].hist);
    }
    endToEnd.merge(other.endToEnd);
    endToEndHist.merge(other.endToEndHist);

    for (const auto &[tile, hist] : other.perTile) {
        auto it = std::find_if(perTile.begin(), perTile.end(),
                               [tile = tile](const auto &entry) {
                                   return entry.first == tile;
                               });
        if (it == perTile.end())
            perTile.emplace_back(tile, hist);
        else
            it->second.merge(hist);
    }
    std::sort(perTile.begin(), perTile.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    reservoirDropped += other.reservoirDropped;
    for (std::uint64_t v : other.reservoir) {
        if (reservoir.size() < LatencyCollector::kReservoirCap)
            reservoir.push_back(v);
        else
            ++reservoirDropped;
    }
    std::sort(reservoir.begin(), reservoir.end());

    slowest.insert(slowest.end(), other.slowest.begin(),
                   other.slowest.end());
    std::sort(slowest.begin(), slowest.end(), slowerThan);
    if (top_k && slowest.size() > top_k)
        slowest.resize(top_k);
}

LatencyCollector::LatencyCollector(std::uint64_t sample_n,
                                   std::size_t top_k)
    : sampleN_(sample_n ? sample_n : 1), topK_(top_k ? top_k : 1)
{
}

void
LatencyCollector::onRecord(const TraceRecord &rec)
{
    if (rec.event == SpanEvent::Issue) {
        auto &records = live_[rec.span];
        records.clear();
        records.push_back(rec);
        return;
    }
    const auto it = live_.find(rec.span);
    if (it == live_.end())
        return;
    it->second.push_back(rec);
    if (rec.event == SpanEvent::Complete) {
        finalize(it->second);
        live_.erase(it);
    }
}

void
LatencyCollector::finalize(std::vector<TraceRecord> &records)
{
    // records[0] is Issue, records.back() is Complete (the tracer
    // guarantees both for every closed span).
    const Tick issue = records.front().tick;
    const Tick complete = records.back().tick;
    const Tick total = complete - issue;

    std::array<Tick, kNumLatencyStages> stage_ticks{};
    for (std::size_t i = 0; i + 1 < records.size(); ++i) {
        const Tick span_ticks = records[i + 1].tick - records[i].tick;
        const LatencyStage stage = latencyStageAfter(records[i]);
        stage_ticks[static_cast<std::size_t>(stage)] += span_ticks;
    }

    Tick accounted = 0;
    std::array<bool, kNumLatencyStages> visited{};
    for (std::size_t i = 0; i + 1 < records.size(); ++i)
        visited[static_cast<std::size_t>(
            latencyStageAfter(records[i]))] = true;
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        accounted += stage_ticks[s];
        if (visited[s]) {
            stages_[s].stat.add(static_cast<double>(stage_ticks[s]));
            stages_[s].hist.add(stage_ticks[s]);
        }
    }
    if (accounted != total)
        ++violations_;

    ++spans_;
    endToEnd_.add(static_cast<double>(total));
    endToEndHist_.add(total);
    perTile_[records.front().owner].add(total);

    if (reservoir_.size() < kReservoirCap)
        reservoir_.push_back(total);
    else
        ++reservoirDropped_;

    // Slowest-K retention: cheap reject first, then insert-and-sort
    // (topK_ is small). Ties break deterministically (slowerThan).
    if (slowest_.size() >= topK_) {
        LatencySpanTimeline probe;
        probe.total = total;
        probe.issueTick = issue;
        probe.owner = records.front().owner;
        probe.vpn = records.front().vpn;
        probe.span = records.front().span;
        if (!slowerThan(probe, slowest_.back()))
            return;
    }
    LatencySpanTimeline tl;
    tl.span = records.front().span;
    tl.owner = records.front().owner;
    tl.vpn = records.front().vpn;
    tl.issueTick = issue;
    tl.total = total;
    tl.stageTicks = stage_ticks;
    tl.steps.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        LatencyTimelineStep step;
        step.offset = records[i].tick - issue;
        step.ticks = i + 1 < records.size()
                         ? records[i + 1].tick - records[i].tick
                         : 0;
        step.event = records[i].event;
        step.at = records[i].at;
        step.arg = records[i].arg;
        step.stage = latencyStageAfter(records[i]);
        tl.steps.push_back(step);
    }
    slowest_.push_back(std::move(tl));
    std::sort(slowest_.begin(), slowest_.end(), slowerThan);
    if (slowest_.size() > topK_)
        slowest_.resize(topK_);
}

LatencySnapshot
LatencyCollector::snapshot() const
{
    LatencySnapshot snap;
    snap.sampleN = sampleN_;
    snap.spans = spans_;
    snap.conservationViolations = violations_;
    snap.stages = stages_;
    snap.endToEnd = endToEnd_;
    snap.endToEndHist = endToEndHist_;
    snap.perTile.assign(perTile_.begin(), perTile_.end());
    snap.reservoir = reservoir_;
    std::sort(snap.reservoir.begin(), snap.reservoir.end());
    snap.reservoirDropped = reservoirDropped_;
    snap.slowest = slowest_;
    return snap;
}

std::string
criticalPathReport(const LatencySnapshot &snap)
{
    std::ostringstream os;
    os << "=== translation critical path: " << snap.slowest.size()
       << " slowest of " << snap.spans << " spans (sample 1/"
       << snap.sampleN << ") ===\n";
    if (snap.spans) {
        os << "end-to-end ticks: mean "
           << static_cast<std::uint64_t>(snap.endToEnd.mean())
           << "  p50 " << snap.exactQuantile(0.50) << "  p95 "
           << snap.exactQuantile(0.95) << "  p99 "
           << snap.exactQuantile(0.99) << "  p999 "
           << snap.exactQuantile(0.999) << "\n";
    }

    std::size_t rank = 0;
    for (const LatencySpanTimeline &tl : snap.slowest) {
        ++rank;
        os << "\n#" << rank << "  span " << tl.span << "  owner tile "
           << tl.owner << "  vpn 0x" << std::hex << tl.vpn << std::dec
           << "  issue @" << tl.issueTick << "  total " << tl.total
           << " ticks\n";

        os << "    stages:";
        for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
            if (tl.stageTicks[s] == 0)
                continue;
            os << "  " << latencyStageName(
                              static_cast<LatencyStage>(s))
               << "=" << tl.stageTicks[s];
        }
        os << "\n";

        for (std::size_t i = 0; i < tl.steps.size(); ++i) {
            const LatencyTimelineStep &step = tl.steps[i];
            os << "    +" << std::setw(8) << std::left << step.offset
               << " " << std::setw(22) << spanEventName(step.event)
               << std::right << " @tile " << std::setw(3) << step.at;
            if (step.arg)
                os << "  arg=" << step.arg;
            if (i + 1 < tl.steps.size())
                os << "  -> " << latencyStageName(step.stage) << " ("
                   << step.ticks << ")";
            os << "\n";
        }
    }
    return os.str();
}

} // namespace hdpat
