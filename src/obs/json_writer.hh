/**
 * @file
 * A tiny streaming JSON writer: nesting-aware comma/brace management
 * and string escaping, nothing more. Both observability exporters
 * (metrics JSON, Chrome Trace Event Format) are built on it; there is
 * deliberately no external JSON dependency.
 */

#ifndef HDPAT_OBS_JSON_WRITER_HH
#define HDPAT_OBS_JSON_WRITER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hdpat
{

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    /** Escape @p s per RFC 8259 (quotes not included). */
    static std::string escape(const std::string &s);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value call supplies its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    // key/value in one call.
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    enum class Scope { Object, Array };

    /** Comma before a new element when one already preceded it. */
    void separate();

    std::ostream &os_;
    std::vector<Scope> scopes_;
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

} // namespace hdpat

#endif // HDPAT_OBS_JSON_WRITER_HH
