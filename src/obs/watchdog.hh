/**
 * @file
 * Stall watchdog: detects livelock — the event queue keeps firing but
 * no memory operation retires for a full watch interval — and aborts
 * the run with a structured diagnostic instead of spinning forever.
 *
 * A genuine deadlock (empty event queue with unfinished GPMs) is
 * already caught by System::run(); the watchdog covers the complement,
 * where events ping-pong without forward progress (e.g. a retry loop
 * that re-stalls every time).
 *
 * The watchdog is a periodic engine event in the heartbeat's mould: it
 * reschedules itself only while simulation (non-observer) events
 * remain in the queue, so it never keeps Engine::run() alive — on its
 * own or together with the other observers (see
 * Engine::noteObserverScheduled).
 */

#ifndef HDPAT_OBS_WATCHDOG_HH
#define HDPAT_OBS_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/engine.hh"
#include "sim/types.hh"

namespace hdpat
{

class Watchdog
{
  public:
    /** Monotonic progress indicator (e.g. total ops retired). */
    using ProgressFn = std::function<std::uint64_t()>;
    /** Extra dump appended to the abort message (may be null). */
    using DiagnosticFn = std::function<std::string()>;
    /**
     * Invoked on a detected stall with the full message. The default
     * handler aborts via hdpat_fatal; tests substitute a recorder.
     */
    using StallHandler = std::function<void(const std::string &)>;

    /**
     * @param interval Simulated ticks between progress checks (> 0);
     *        a stall is flagged after one full interval without any
     *        progress while events kept executing.
     */
    Watchdog(Engine &engine, Tick interval, ProgressFn progress,
             DiagnosticFn diagnostic = nullptr);

    void setStallHandler(StallHandler handler);

    /** Schedule the first check (idempotent while running). */
    void start();

    /**
     * Coordinator mode for domain-parallel runs: no engine event is
     * scheduled; the domain barrier calls checkExternal() once per
     * window and the stall check runs whenever a full interval of
     * simulated time has passed. Progress and executed counts are the
     * global (all-domain) aggregates read at the barrier, so a single
     * domain legitimately blocked at its window horizon never trips
     * the watchdog as long as the run as a whole retires ops.
     */
    void startExternal();

    /** Window-barrier tick-over; @p now is the new window start. */
    void checkExternal(Tick now);

    /** Stop; the pending check becomes a no-op. */
    void stop() { running_ = false; }

    bool running() const { return running_; }
    /** True once a stall was detected (sticky). */
    bool triggered() const { return triggered_; }
    Tick interval() const { return interval_; }
    std::uint64_t checks() const { return checks_; }

  private:
    void fire();
    /** Shared stall test; @p now only labels the abort message. */
    void runCheck(Tick now);

    Engine &engine_;
    Tick interval_;
    ProgressFn progress_;
    DiagnosticFn diagnostic_;
    StallHandler handler_;
    bool running_ = false;
    /** Coordinator mode: driven by checkExternal, no engine events. */
    bool external_ = false;
    bool triggered_ = false;
    std::uint64_t checks_ = 0;
    std::uint64_t lastProgress_ = 0;
    std::uint64_t lastExecuted_ = 0;
    /** External mode: earliest tick the next check may run at. */
    Tick nextCheckTick_ = 0;
};

} // namespace hdpat

#endif // HDPAT_OBS_WATCHDOG_HH
