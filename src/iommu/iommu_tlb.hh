/**
 * @file
 * The conventional IOMMU-side TLB used by the Fig 19 sensitivity study:
 * an equal-area alternative to the redirection table. Because a TLB
 * stores PFNs and metadata it holds only half the entries (512 vs
 * 1024), and because misses must occupy MSHRs, a full MSHR file stalls
 * the IOMMU ingress — the concurrency limitation §IV-F argues against.
 */

#ifndef HDPAT_IOMMU_IOMMU_TLB_HH
#define HDPAT_IOMMU_IOMMU_TLB_HH

#include "mem/mshr.hh"
#include "mem/tlb.hh"
#include "sim/types.hh"

namespace hdpat
{

class IommuTlb
{
  public:
    /**
     * @param entries Total entries (organised 16-way).
     * @param mshrs MSHR count limiting outstanding misses.
     */
    IommuTlb(std::size_t entries, std::size_t mshrs);

    /** Look up @p vpn. */
    std::optional<Pfn> lookup(Vpn vpn) { return tlb_.lookup(vpn); }

    /** Prefetch @p vpn's set (no architectural side effects). */
    void prefetchSet(Vpn vpn) const { tlb_.prefetchSet(vpn); }

    /** Fill a translation (demand or prefetched). */
    void fill(Vpn vpn, Pfn pfn) { tlb_.insert(vpn, pfn); }

    /** Shootdown support. @return true when an entry was dropped. */
    bool invalidate(Vpn vpn) { return tlb_.invalidate(vpn).has_value(); }

    MshrFile &mshrs() { return mshrs_; }
    const Tlb &tlb() const { return tlb_; }

  private:
    Tlb tlb_;
    MshrFile mshrs_;
};

} // namespace hdpat

#endif // HDPAT_IOMMU_IOMMU_TLB_HH
