#include "iommu/iommu_tlb.hh"

#include <algorithm>

namespace hdpat
{

IommuTlb::IommuTlb(std::size_t entries, std::size_t mshrs)
    : tlb_(std::max<std::size_t>(1, entries / 16), 16), mshrs_(mshrs)
{
}

} // namespace hdpat
