#include "iommu/iommu.hh"

#include <algorithm>

#include "obs/audit.hh"
#include "obs/profiler.hh"
#include "sim/log.hh"

namespace hdpat
{

const char *
translationSourceName(TranslationSource src)
{
    switch (src) {
      case TranslationSource::PeerCache:
        return "peer-cache";
      case TranslationSource::Redirect:
        return "redirection";
      case TranslationSource::ProactiveDelivery:
        return "proactive-delivery";
      case TranslationSource::IommuWalk:
        return "iommu";
      case TranslationSource::IommuTlb:
        return "iommu-tlb";
      case TranslationSource::HomeGmmu:
        return "home-gmmu";
      case TranslationSource::NeighborTlb:
        return "neighbor-tlb";
    }
    return "unknown";
}

Iommu::Iommu(Engine &engine, Network &net, GlobalPageTable &pt,
             const SystemConfig &cfg, const TranslationPolicy &pol,
             TileId cpu_tile)
    : engine_(engine), net_(net), pt_(pt), cfg_(cfg), pol_(pol),
      cpuTile_(cpu_tile),
      pwc_(cfg.iommuPwcEntriesPerLevel, 5, cfg.iommuWalkLatency / 5),
      freeWalkers_(cfg.iommuWalkers),
      freeForwardContexts_(cfg.iommuForwardContexts)
{
    if (pol_.redirectionTable && !pol_.iommuTlbInsteadOfRt)
        rt_.emplace(cfg_.redirectionTableEntries);
    if (pol_.iommuTlbInsteadOfRt)
        tlb_.emplace(cfg_.iommuTlbEntries, cfg_.iommuTlbMshrs);
}

void
Iommu::setPeers(std::vector<PeerEndpoint *> peers)
{
    peers_ = std::move(peers);
}

void
Iommu::setAuditor(Auditor *auditor)
{
    auditor->addQueueProbe("iommu.ingress_queue",
                           [this] { return ingressQueue_.size(); });
    auditor->addQueueProbe("iommu.pw_queue",
                           [this] { return pwQueue_.size(); });
    auditor->addQueueProbe("iommu.fault_queue",
                           [this] { return faultQueue_.size(); });
}

void
Iommu::setBackpressure(BackpressureCollector &bp)
{
    // The ingress buffer's capacity is nominal: the config declares it
    // but admission never enforces it (requests accumulate while the
    // PW-queue or MSHRs stall), so its rejections stay 0 and its
    // saturation fraction reports how long the *declared* buffer
    // would have been full.
    bpIngress_ = bp.add("iommu.ingress", ResourceKind::Queue,
                        cfg_.iommuBufferCapacity);
    bpPwQueue_ = bp.add("iommu.pw_queue", ResourceKind::Queue,
                        cfg_.iommuPwQueueCapacity);
    bpWalkers_ = bp.add("iommu.walkers", ResourceKind::Pool,
                        cfg_.iommuWalkers);
    bpForward_ = bp.add("iommu.forward_contexts", ResourceKind::Pool,
                        cfg_.iommuForwardContexts);
    // Only when fault handling is live (tenancy): single-tenant
    // pressure reports keep their exact pre-tenancy resource list.
    if (faultHandler_)
        bpFaultQueue_ = bp.add("iommu.fault_queue", ResourceKind::Queue,
                               cfg_.iommuFaultQueueCapacity);
    if (tlb_) {
        bpTlbMshrs_ = bp.add("iommu.tlb_mshrs", ResourceKind::Mshr,
                             cfg_.iommuTlbMshrs);
        tlb_->mshrs().setPressureHook(
            [this](MshrFile::PressureEvent ev) {
                switch (ev) {
                  case MshrFile::PressureEvent::Alloc:
                    bpTlbMshrs_->arrive(engine_.now());
                    break;
                  case MshrFile::PressureEvent::Free:
                    bpTlbMshrs_->depart(engine_.now());
                    break;
                  case MshrFile::PressureEvent::Reject:
                    bpTlbMshrs_->reject();
                    break;
                }
            });
    }
}

void
Iommu::registerMetrics(MetricRegistry &reg,
                       const std::string &prefix) const
{
    reg.addCounter(prefix + "requests_received",
                   &stats_.requestsReceived);
    reg.addCounter(prefix + "redirects_sent", &stats_.redirectsSent);
    reg.addCounter(prefix + "redirect_bounces",
                   &stats_.redirectBounces);
    reg.addCounter(prefix + "stale_redirects_skipped",
                   &stats_.staleRedirectsSkipped);
    reg.addCounter(prefix + "tlb_hits", &stats_.tlbHits);
    reg.addCounter(prefix + "mshr_merges", &stats_.mshrMerges);
    reg.addCounter(prefix + "ingress_stalls", &stats_.ingressStalls);
    reg.addCounter(prefix + "walks_started", &stats_.walksStarted);
    reg.addCounter(prefix + "walks_completed", &stats_.walksCompleted);
    reg.addCounter(prefix + "revisit_completions",
                   &stats_.revisitCompletions);
    reg.addCounter(prefix + "prefetched_ptes", &stats_.prefetchedPtes);
    reg.addCounter(prefix + "pushes_sent", &stats_.pushesSent);
    reg.addCounter(prefix + "responses_sent", &stats_.responsesSent);
    reg.addCounter(prefix + "delegations_sent",
                   &stats_.delegationsSent);
    reg.addCounter(prefix + "delegation_returns",
                   &stats_.delegationReturns);
    reg.addCounter(prefix + "max_buffer_depth",
                   &stats_.maxBufferDepth);
    reg.addSummary(prefix + "pre_queue_latency",
                   &stats_.preQueueLatency);
    reg.addSummary(prefix + "pw_queue_latency",
                   &stats_.pwQueueLatency);
    reg.addSummary(prefix + "walk_latency", &stats_.walkLatency);
    reg.addTimeSeries(prefix + "buffer_depth", &stats_.bufferDepth);
    reg.addTimeSeries(prefix + "served_per_window",
                      &stats_.servedPerWindow);
    reg.addGauge(prefix + "backlog", [this] {
        return static_cast<double>(backlog());
    });
    if (rt_) {
        const RedirectionTable::Stats &rt = rt_->stats();
        reg.addCounter(prefix + "rt.lookups", &rt.lookups);
        reg.addCounter(prefix + "rt.hits", &rt.hits);
        reg.addCounter(prefix + "rt.inserts", &rt.inserts);
        reg.addCounter(prefix + "rt.evictions", &rt.evictions);
        reg.addCounter(prefix + "rt.invalidations", &rt.invalidations);
    }
}

void
Iommu::registerTenancyMetrics(MetricRegistry &reg,
                              const std::string &prefix) const
{
    reg.addCounter(prefix + "page_faults", &stats_.pageFaults);
    reg.addCounter(prefix + "faults_serviced", &stats_.faultsServiced);
    reg.addCounter(prefix + "fault_retries", &stats_.faultRetries);
    reg.addCounter(prefix + "delegated_misses",
                   &stats_.delegatedMisses);
}

void
Iommu::receiveRequest(const RemoteRequest &req)
{
    ++stats_.requestsReceived;
    if (!req.allowRedirect)
        ++stats_.redirectBounces;
    if (stats_.captureTrace)
        stats_.trace.emplace_back(engine_.now(), req.vpn);
    trace(req, SpanEvent::IommuArrive);

    Pending p;
    p.req = req;
    p.arriveTick = engine_.now();
    ingressQueue_.push_back(std::move(p));
    if (bpIngress_) [[unlikely]]
        bpIngress_->arrive(engine_.now());
    sampleDepth();
    scheduleIngress(engine_.now());
}

void
Iommu::scheduleIngress(Tick when)
{
    if (ingressScheduled_)
        return;
    ingressScheduled_ = true;
    engine_.scheduleAt(std::max(when, engine_.now()), [this] {
        ingressScheduled_ = false;
        processIngress();
    });
}

void
Iommu::processIngress()
{
    const ProfScope prof(profiler_, ProfSection::IommuPipeline);
    int budget = cfg_.iommuIngressPerCycle;
    // Batched probe warm-up: prefetch the TLB sets of every request
    // this cycle's budget could admit. Non-architectural (no LRU or
    // stats), so an early admission stall leaves nothing stale.
    if (tlb_) {
        const std::size_t heads = std::min<std::size_t>(
            static_cast<std::size_t>(budget), ingressQueue_.size());
        for (std::size_t i = 0; i < heads; ++i)
            tlb_->prefetchSet(ingressQueue_[i].req.vpn);
    }
    while (budget > 0 && !ingressQueue_.empty()) {
        const Tick ready =
            ingressQueue_.front().arriveTick + cfg_.iommuIngressLatency;
        if (ready > engine_.now()) {
            scheduleIngress(ready);
            return;
        }
        if (admitHead() == Admit::Stall) {
            ++stats_.ingressStalls;
            return; // Retried when a PW slot or MSHR frees.
        }
        --budget;
    }
    if (!ingressQueue_.empty())
        scheduleIngress(engine_.now() + 1);
}

Iommu::Admit
Iommu::admitHead()
{
    Pending p = ingressQueue_.front();
    const Vpn vpn = p.req.vpn;
    const Tick now = engine_.now();

    // 1. Redirection table (Fig 12 steps 1-2).
    if (rt_ && p.req.allowRedirect) {
        if (auto aux = rt_->lookup(vpn)) {
            if (*aux != p.req.requester) {
                ++stats_.redirectsSent;
                trace(p.req, SpanEvent::IommuAdmit);
                trace(p.req, SpanEvent::IommuRedirect,
                      static_cast<std::uint64_t>(*aux));
                stats_.preQueueLatency.add(
                    static_cast<double>(now - p.arriveTick));
                PeerEndpoint *peer =
                    peers_[static_cast<std::size_t>(*aux)];
                hdpat_panic_if(!peer, "redirect to a non-GPM tile");
                RemoteRequest fwd = p.req;
                net_.sendTraced(cpuTile_, *aux,
                                NocMessageBytes::kTranslationRequest,
                                [peer, fwd] {
                                    peer->receiveRedirectedRequest(fwd);
                                },
                                fwd.requester, fwd.vpn);
                ingressQueue_.pop_front();
                if (bpIngress_) [[unlikely]]
                    bpIngress_->depart(now);
                recordServed();
                return Admit::Done;
            }
            // The requester itself is the registered holder but it
            // missed locally: the cached copy was evicted. Drop the
            // stale entry and fall through to a walk.
            rt_->invalidate(vpn);
            ++stats_.staleRedirectsSkipped;
        }
    }

    // 2. Conventional IOMMU TLB (Fig 19 sensitivity mode).
    if (tlb_) {
        if (auto pfn = tlb_->lookup(vpn)) {
            ++stats_.tlbHits;
            trace(p.req, SpanEvent::IommuAdmit);
            trace(p.req, SpanEvent::IommuTlbHit);
            stats_.preQueueLatency.add(
                static_cast<double>(now - p.arriveTick));
            respond(p.req, *pfn, TranslationSource::IommuTlb);
            ingressQueue_.pop_front();
            if (bpIngress_) [[unlikely]]
                bpIngress_->depart(now);
            recordServed();
            return Admit::Done;
        }
        if (tlb_->mshrs().inFlight(vpn)) {
            // Merge with the in-flight walk; served at its completion.
            const RemoteRequest req = p.req;
            tlb_->mshrs().registerMiss(
                vpn, [this, req](Vpn, Pfn pfn) {
                    respond(req, pfn, TranslationSource::IommuWalk);
                    recordServed();
                });
            ++stats_.mshrMerges;
            trace(p.req, SpanEvent::IommuAdmit);
            stats_.preQueueLatency.add(
                static_cast<double>(now - p.arriveTick));
            ingressQueue_.pop_front();
            if (bpIngress_) [[unlikely]]
                bpIngress_->depart(now);
            return Admit::Done;
        }
        if (tlb_->mshrs().full()) {
            // registerMiss is never reached here, so the MSHR file's
            // own pressure hook cannot see this bounce.
            if (bpTlbMshrs_) [[unlikely]]
                bpTlbMshrs_->reject();
            return Admit::Stall; // The paper's MSHR concurrency limit.
        }
    }

    // 3. PW-queue admission.
    if (pwQueue_.size() >= cfg_.iommuPwQueueCapacity) {
        if (bpPwQueue_) [[unlikely]]
            bpPwQueue_->reject();
        return Admit::Stall;
    }

    // Fuzz-found deadlock: never register a TLB MSHR for a walk that
    // will be delegated. In ForwardToHome mode the home GMMU replies
    // straight to the requester and this IOMMU only sees the
    // context-release, so the MSHR would never resolve -- the entry
    // leaks, later same-VPN requests merge onto the dead walk, and the
    // mesh deadlocks. Delegated concurrency is limited by forwarding
    // contexts instead; the TLB is filled when the result returns.
    if (tlb_ && pol_.walkMode == IommuWalkMode::Local) {
        const RemoteRequest req = p.req;
        tlb_->mshrs().registerMiss(vpn, [this, req](Vpn, Pfn pfn) {
            respond(req, pfn, TranslationSource::IommuWalk);
            recordServed();
        });
        p.viaMshr = true;
    }

    trace(p.req, SpanEvent::IommuAdmit);
    stats_.preQueueLatency.add(static_cast<double>(now - p.arriveTick));
    ingressQueue_.pop_front();
    if (bpIngress_) [[unlikely]]
        bpIngress_->depart(now);
    enqueueWalk(std::move(p));
    return Admit::Done;
}

void
Iommu::enqueueWalk(Pending p)
{
    p.pwEnqueueTick = engine_.now();
    pwQueue_.push_back(std::move(p));
    if (bpPwQueue_) [[unlikely]]
        bpPwQueue_->arrive(engine_.now());
    tryStartWalks();
}

void
Iommu::tryStartWalks()
{
    if (pol_.walkMode == IommuWalkMode::ForwardToHome) {
        // Trans-FW: delegate to the home GPM; a forwarding context is
        // held for the whole round trip.
        while (freeForwardContexts_ > 0 && !pwQueue_.empty()) {
            Pending p = std::move(pwQueue_.front());
            pwQueue_.pop_front();
            --freeForwardContexts_;
            if (bpPwQueue_) [[unlikely]] {
                bpPwQueue_->depart(engine_.now());
                bpForward_->arrive(engine_.now());
            }
            stats_.pwQueueLatency.add(
                static_cast<double>(engine_.now() - p.pwEnqueueTick));
            const TileId home = pt_.homeOf(p.req.vpn);
            if (home == kInvalidTile) {
                // Unmapped before delegation could start (tenant
                // churn): give the context back and fault instead;
                // the serviced fault re-enqueues the walk.
                ++freeForwardContexts_;
                if (bpPwQueue_) [[unlikely]]
                    bpForward_->depart(engine_.now());
                hdpat_panic_if(!faultHandler_,
                               "delegated walk for unmapped VPN "
                                   << p.req.vpn);
                ++stats_.pageFaults;
                enqueueFault(std::move(p));
                continue;
            }
            ++stats_.delegationsSent;
            trace(p.req, SpanEvent::DelegatedWalk,
                  static_cast<std::uint64_t>(home));
            PeerEndpoint *peer = peers_[static_cast<std::size_t>(home)];
            const RemoteRequest req = p.req;
            net_.sendTraced(cpuTile_, home,
                            NocMessageBytes::kTranslationRequest,
                            [peer, req] {
                                peer->receiveDelegatedWalk(req);
                            },
                            req.requester, req.vpn);
        }
        return;
    }

    while (freeWalkers_ > 0 && !pwQueue_.empty()) {
        Pending p = std::move(pwQueue_.front());
        pwQueue_.pop_front();
        --freeWalkers_;
        if (bpPwQueue_) [[unlikely]] {
            bpPwQueue_->depart(engine_.now());
            bpWalkers_->arrive(engine_.now());
        }
        stats_.pwQueueLatency.add(
            static_cast<double>(engine_.now() - p.pwEnqueueTick));
        ++stats_.walksStarted;
        trace(p.req, SpanEvent::IommuWalkStart);
        const Tick start = engine_.now();
        const Tick latency = pwc_.enabled()
                                 ? pwc_.walkLatency(p.req.vpn)
                                 : cfg_.iommuWalkLatency;
        engine_.scheduleIn(latency,
                           [this, p = std::move(p), start]() mutable {
                               completeWalk(std::move(p), start);
                           });
    }
}

void
Iommu::completeWalk(Pending p, Tick walk_start)
{
    const ProfScope prof(profiler_, ProfSection::IommuPipeline);
    ++freeWalkers_;
    if (bpWalkers_) [[unlikely]]
        bpWalkers_->depart(engine_.now());
    ++stats_.walksCompleted;
    stats_.walkLatency.add(
        static_cast<double>(engine_.now() - walk_start));
    trace(p.req, SpanEvent::IommuWalkDone);

    const Vpn vpn = p.req.vpn;
    Pte *pte = pt_.translateMutable(vpn);
    if (!pte) {
        // Not-present page (unmapped by tenant churn while the walk
        // was in flight). Without a fault handler this is still the
        // corruption it always was.
        hdpat_panic_if(!faultHandler_,
                       "IOMMU walk of unmapped VPN " << vpn);
        ++stats_.pageFaults;
        enqueueFault(std::move(p));
        sampleDepth();
        tryStartWalks();
        scheduleIngress(engine_.now() + 1);
        return;
    }
    finishWalk(std::move(p), pte);
}

void
Iommu::finishWalk(Pending p, Pte *pte)
{
    const Vpn vpn = p.req.vpn;
    pwc_.fill(vpn);
    ++pte->accessCount;
    const Pfn pfn = pte->pfn;

    if (p.viaMshr) {
        hdpat_panic_if(!tlb_, "viaMshr without an IOMMU TLB");
        tlb_->fill(vpn, pfn);
        tlb_->mshrs().resolve(vpn, pfn); // Responds to all waiters.
    } else {
        respond(p.req, pfn, TranslationSource::IommuWalk);
        recordServed();
    }

    // PW-queue revisit (Fig 12 step 6; also Barre's mechanism):
    // complete identical pending requests without extra walks.
    if (pol_.pwQueueRevisit && !pwQueue_.empty()) {
        auto it = pwQueue_.begin();
        while (it != pwQueue_.end()) {
            if (it->req.vpn == vpn) {
                stats_.pwQueueLatency.add(static_cast<double>(
                    engine_.now() - it->pwEnqueueTick));
                ++stats_.revisitCompletions;
                respond(it->req, pfn, TranslationSource::IommuWalk);
                recordServed();
                it = pwQueue_.erase(it);
                if (bpPwQueue_) [[unlikely]]
                    bpPwQueue_->depart(engine_.now());
            } else {
                ++it;
            }
        }
    }

    // Selective auxiliary push + redirection-table update (§IV-F).
    const bool cluster_push =
        clusterMap_ && pol_.peerMode == PeerCachingMode::ClusterRotation;
    if (cluster_push && pte->accessCount >= pol_.auxPushThreshold) {
        pushPte(vpn, pfn, /*prefetched=*/false);
        if (rt_)
            rt_->insert(vpn, clusterMap_->auxTileFor(vpn, 0));
    }

    // Proactive page-entry delivery (§IV-G): the walker also fetches
    // the next prefetchDegree-1 PTEs (they share a PTE cache line, so
    // no additional walk latency is charged).
    if (pol_.prefetch) {
        for (int d = 1; d < pol_.prefetchDegree; ++d) {
            const Vpn pv = vpn + static_cast<Vpn>(d);
            const Pte *ppte = pt_.translate(pv);
            if (!ppte)
                continue;
            ++stats_.prefetchedPtes;
            if (tlb_)
                tlb_->fill(pv, ppte->pfn);
            if (cluster_push) {
                pushPte(pv, ppte->pfn, /*prefetched=*/true);
                if (rt_)
                    rt_->insert(pv, clusterMap_->auxTileFor(pv, 0));
            }
        }
    }

    sampleDepth();
    tryStartWalks();
    // A walker and possibly PW slots freed: unblock a stalled ingress.
    scheduleIngress(engine_.now() + 1);
}

void
Iommu::respond(const RemoteRequest &req, Pfn pfn,
               TranslationSource source)
{
    ++stats_.responsesSent;
    trace(req, SpanEvent::IommuRespond,
          static_cast<std::uint64_t>(source));
    PeerEndpoint *peer = peers_[static_cast<std::size_t>(req.requester)];
    hdpat_panic_if(!peer, "response to a non-GPM tile");
    const Vpn vpn = req.vpn;
    net_.sendTraced(cpuTile_, req.requester,
                    NocMessageBytes::kTranslationResponse,
                    [peer, vpn, pfn, source] {
                        peer->receiveTranslationResponse(vpn, pfn,
                                                         source);
                    },
                    req.requester, vpn);
}

void
Iommu::pushPte(Vpn vpn, Pfn pfn, bool prefetched)
{
    for (int layer = 0; layer < clusterMap_->numLayers(); ++layer) {
        const TileId aux = clusterMap_->auxTileFor(vpn, layer);
        PeerEndpoint *peer = peers_[static_cast<std::size_t>(aux)];
        hdpat_panic_if(!peer, "PTE push to a non-GPM tile");
        ++stats_.pushesSent;
        net_.send(cpuTile_, aux, NocMessageBytes::kPtePush,
                  [peer, vpn, pfn, prefetched] {
                      peer->receivePtePush(vpn, pfn, prefetched);
                  });
    }
}

void
Iommu::receiveDelegatedResult(Vpn vpn)
{
    // The reply carries the translation back with it; let the Fig 19
    // TLB (when configured) cache it so later same-page requests hit
    // at the IOMMU instead of burning another forwarding context.
    if (tlb_) {
        if (const Pte *pte = pt_.translate(vpn))
            tlb_->fill(vpn, pte->pfn);
    }
    ++freeForwardContexts_;
    if (bpForward_) [[unlikely]]
        bpForward_->depart(engine_.now());
    ++stats_.delegationReturns;
    recordServed();
    sampleDepth();
    tryStartWalks();
    scheduleIngress(engine_.now() + 1);
}

void
Iommu::receiveDelegatedMiss(const RemoteRequest &req)
{
    // The home GPM could not walk the page (unmapped in flight by
    // tenant churn). Release the forwarding context like a normal
    // return -- but the request was NOT served: it goes through the
    // fault queue, and the serviced fault re-delegates the walk.
    ++freeForwardContexts_;
    if (bpForward_) [[unlikely]]
        bpForward_->depart(engine_.now());
    ++stats_.delegatedMisses;
    hdpat_panic_if(!faultHandler_,
                   "delegated walk missed at home GPM for VPN "
                       << req.vpn << " without a fault handler");
    ++stats_.pageFaults;
    Pending p;
    p.req = req;
    p.arriveTick = engine_.now();
    enqueueFault(std::move(p));
    tryStartWalks();
    scheduleIngress(engine_.now() + 1);
}

void
Iommu::enqueueFault(Pending p)
{
    if (faultQueue_.size() >= cfg_.iommuFaultQueueCapacity) {
        // Bounded and lossless: a full queue bounces the fault to a
        // timed retry, so saturation shows up as rejections and added
        // latency, never as a dropped (deadlocked) translation.
        ++stats_.faultRetries;
        if (bpFaultQueue_) [[unlikely]]
            bpFaultQueue_->reject();
        engine_.scheduleIn(cfg_.iommuFaultServiceTicks,
                           [this, p = std::move(p)]() mutable {
                               enqueueFault(std::move(p));
                           });
        return;
    }
    faultQueue_.push_back(std::move(p));
    if (bpFaultQueue_) [[unlikely]]
        bpFaultQueue_->arrive(engine_.now());
    scheduleFaultService();
}

void
Iommu::scheduleFaultService()
{
    if (faultServiceBusy_ || faultQueue_.empty())
        return;
    faultServiceBusy_ = true;
    engine_.scheduleIn(cfg_.iommuFaultServiceTicks,
                       [this] { serviceFault(); });
}

void
Iommu::serviceFault()
{
    const ProfScope prof(profiler_, ProfSection::IommuPipeline);
    faultServiceBusy_ = false;
    Pending p = std::move(faultQueue_.front());
    faultQueue_.pop_front();
    if (bpFaultQueue_) [[unlikely]]
        bpFaultQueue_->depart(engine_.now());
    ++stats_.faultsServiced;

    const Vpn vpn = p.req.vpn;
    // The handler re-establishes the mapping on the page's last home
    // (a no-op when a racing fault already did).
    faultHandler_(vpn);
    Pte *pte = pt_.translateMutable(vpn);
    hdpat_panic_if(!pte, "fault handler left VPN " << vpn
                                                   << " unmapped");
    if (pol_.walkMode == IommuWalkMode::ForwardToHome) {
        // Re-delegate now that the page exists; the home GPM replies
        // to the requester as usual.
        enqueueWalk(std::move(p));
    } else {
        finishWalk(std::move(p), pte);
    }
    scheduleFaultService();
}

void
Iommu::shootdown(Vpn vpn)
{
    if (rt_)
        rt_->invalidate(vpn);
    if (tlb_)
        tlb_->invalidate(vpn);
    // Latent invalidation-path bug: the page-walk cache kept serving
    // the shot-down page's upper levels, so a post-remap walk could
    // skip levels of a hierarchy that no longer exists.
    pwc_.invalidate(vpn);
}

void
Iommu::recordServed()
{
    stats_.servedPerWindow.add(engine_.now(), 1.0);
}

void
Iommu::sampleDepth()
{
    const std::size_t depth = backlog();
    stats_.bufferDepth.add(engine_.now(), static_cast<double>(depth));
    stats_.maxBufferDepth =
        std::max<std::uint64_t>(stats_.maxBufferDepth, depth);
}

} // namespace hdpat
