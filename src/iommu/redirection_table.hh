/**
 * @file
 * The Redirection Table (paper §IV-F): a small, LRU, VPN-keyed table at
 * the IOMMU that records which auxiliary GPM recently received each
 * translated or prefetched PTE. Unlike a TLB it stores no PFN and needs
 * no MSHRs, so it is ~2x as dense and never blocks on concurrency.
 */

#ifndef HDPAT_IOMMU_REDIRECTION_TABLE_HH
#define HDPAT_IOMMU_REDIRECTION_TABLE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "sim/types.hh"

namespace hdpat
{

class RedirectionTable
{
  public:
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
        std::uint64_t invalidations = 0;
    };

    /** @param capacity Entry count (Table I: 1024), full LRU. */
    explicit RedirectionTable(std::size_t capacity);

    /**
     * Look up @p vpn; on a hit returns the auxiliary GPM holding the
     * PTE and refreshes LRU.
     */
    std::optional<TileId> lookup(Vpn vpn);

    /** Record that @p vpn's PTE now lives on @p aux_tile. */
    void insert(Vpn vpn, TileId aux_tile);

    /**
     * Look up @p vpn without touching LRU order or the lookup/hit
     * stats. The shootdown controller uses this to learn the known
     * holder tile before invalidating the entry.
     */
    std::optional<TileId>
    peek(Vpn vpn) const
    {
        const auto it = map_.find(vpn);
        return it == map_.end() ? std::nullopt
                                : std::optional<TileId>(it->second->aux);
    }

    /** Drop @p vpn (e.g., known stale). */
    void invalidate(Vpn vpn);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return map_.size(); }
    double hitRate() const
    {
        return stats_.lookups
                   ? static_cast<double>(stats_.hits) / stats_.lookups
                   : 0.0;
    }
    const Stats &stats() const { return stats_; }

  private:
    struct Entry
    {
        Vpn vpn;
        TileId aux;
    };

    std::size_t capacity_;
    /** LRU order: front = most recent. */
    std::list<Entry> lru_;
    std::unordered_map<Vpn, std::list<Entry>::iterator> map_;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_IOMMU_REDIRECTION_TABLE_HH
