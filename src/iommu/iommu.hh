/**
 * @file
 * The central IOMMU at the CPU tile (Fig 12).
 *
 * Pipeline:
 *   arrival -> ingress buffer ("pre-queue") -> ingress stage
 *     -> redirection table / IOMMU-TLB check
 *     -> PW-queue -> walker pool -> completion
 *          (+ PW-queue revisit, selective auxiliary push, proactive
 *           page-entry delivery, redirection-table update)
 *
 * The ingress stage admits a bounded number of requests per cycle and
 * stalls when the PW-queue (or the TLB's MSHR file, in Fig 19 mode) is
 * full; stalled requests accumulate in the ingress buffer, producing
 * the pre-queue latency that dominates Fig 3.
 */

#ifndef HDPAT_IOMMU_IOMMU_HH
#define HDPAT_IOMMU_IOMMU_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "hdpat/cluster_map.hh"
#include "iommu/iommu_tlb.hh"
#include "iommu/messages.hh"
#include "iommu/redirection_table.hh"
#include "mem/page_table.hh"
#include "mem/page_walk_cache.hh"
#include "noc/network.hh"
#include "obs/backpressure.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"

namespace hdpat
{

class Iommu
{
  public:
    struct Stats
    {
        std::uint64_t requestsReceived = 0;
        std::uint64_t redirectsSent = 0;
        std::uint64_t redirectBounces = 0;
        std::uint64_t staleRedirectsSkipped = 0;
        std::uint64_t tlbHits = 0;
        std::uint64_t mshrMerges = 0;
        std::uint64_t ingressStalls = 0;
        std::uint64_t walksStarted = 0;
        std::uint64_t walksCompleted = 0;
        std::uint64_t revisitCompletions = 0;
        std::uint64_t prefetchedPtes = 0;
        std::uint64_t pushesSent = 0;
        std::uint64_t responsesSent = 0;
        std::uint64_t delegationsSent = 0;
        std::uint64_t delegationReturns = 0;
        /** Walks that found no PTE (page unmapped by tenant churn). */
        std::uint64_t pageFaults = 0;
        std::uint64_t faultsServiced = 0;
        /** Fault-queue-full bounces (retried, never dropped). */
        std::uint64_t faultRetries = 0;
        /** Delegated walks that missed at the home GPM and bounced. */
        std::uint64_t delegatedMisses = 0;

        /** Per served request: time awaiting service initiation. */
        SummaryStat preQueueLatency;
        /** Per served request: time inside the PW-queue. */
        SummaryStat pwQueueLatency;
        /** Page-table walk duration (queueing excluded). */
        SummaryStat walkLatency;

        /** Total buffered requests (pre-queue + PW-queue), per window. */
        TimeSeries bufferDepth{100000};
        std::uint64_t maxBufferDepth = 0;

        /** IOMMU-served translations per window (Fig 13). */
        TimeSeries servedPerWindow{100000};

        /** Optional request trace (tick, VPN) for Figs 6/7/8. */
        bool captureTrace = false;
        std::vector<std::pair<Tick, Vpn>> trace;
    };

    Iommu(Engine &engine, Network &net, GlobalPageTable &pt,
          const SystemConfig &cfg, const TranslationPolicy &pol,
          TileId cpu_tile);

    /** Peer endpoints indexed by tile id (null for inactive tiles). */
    void setPeers(std::vector<PeerEndpoint *> peers);

    /** Cluster map for auxiliary pushes (null when not applicable). */
    void setClusterMap(const ClusterMap *map) { clusterMap_ = map; }

    /** Enable capturing the (tick, VPN) arrival trace. */
    void setCaptureTrace(bool on) { stats_.captureTrace = on; }

    /** Per-request span tracer (null = off). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Conservation auditor (null = off): registers the ingress and
     * PW-queue depths as drain probes checked at finalize().
     */
    void setAuditor(Auditor *auditor);

    /** Host self-profiler for the IOMMU pipeline (null = off). */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Register the IOMMU's bounded structures with the backpressure
     * collector (ingress buffer, PW-queue, walker pool, forwarding
     * contexts, Fig 19 TLB MSHRs). No-cost when never called.
     */
    void setBackpressure(BackpressureCollector &bp);

    /** Register IOMMU metrics under @p prefix (e.g. "iommu."). */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

    /** A translation request arrived at the CPU tile. */
    void receiveRequest(const RemoteRequest &req);

    /** Trans-FW: a delegated walk finished at the home GPM. */
    void receiveDelegatedResult(Vpn vpn);

    /**
     * Trans-FW: a delegated walk missed at the home GPM (the page was
     * unmapped in flight). Releases the forwarding context and routes
     * the request through the fault queue; once the fault handler
     * re-establishes the mapping the walk is re-delegated.
     */
    void receiveDelegatedMiss(const RemoteRequest &req);

    /**
     * Install the not-present-page handler (tenancy). When set, a walk
     * of an unmapped VPN enters the bounded fault queue instead of
     * panicking; after the service delay the handler must re-establish
     * the mapping (System remaps on the page's last home). Must be
     * installed before setBackpressure() for the fault queue to show
     * up in the pressure report.
     */
    void setFaultHandler(std::function<void(Vpn)> handler)
    {
        faultHandler_ = std::move(handler);
    }

    /**
     * Register the tenancy-only counters (faults, retries, delegated
     * misses). Split from registerMetrics so single-tenant metric
     * dumps stay byte-identical.
     */
    void registerTenancyMetrics(MetricRegistry &reg,
                                const std::string &prefix) const;

    /**
     * TLB shootdown of one page at the IOMMU side: drops the
     * redirection-table entry and (Fig 19 mode) the IOMMU TLB entry.
     */
    void shootdown(Vpn vpn);

    /** Current pre-queue + PW-queue occupancy. */
    std::size_t backlog() const
    {
        return ingressQueue_.size() + pwQueue_.size();
    }

    const Stats &stats() const { return stats_; }
    const RedirectionTable *redirectionTable() const
    {
        return rt_ ? &*rt_ : nullptr;
    }
    const IommuTlb *iommuTlb() const { return tlb_ ? &*tlb_ : nullptr; }
    const PageWalkCache &pageWalkCache() const { return pwc_; }

  private:
    struct Pending
    {
        RemoteRequest req;
        Tick arriveTick = 0;
        Tick pwEnqueueTick = 0;
        /** Fig 19 mode: response delivered via MSHR resolution. */
        bool viaMshr = false;
    };

    enum class Admit { Done, Stall };

    void scheduleIngress(Tick when);
    void processIngress();
    Admit admitHead();
    void enqueueWalk(Pending p);
    void tryStartWalks();
    void completeWalk(Pending p, Tick walk_start);
    /** Post-walk completion tail shared by walks and serviced faults. */
    void finishWalk(Pending p, Pte *pte);
    void enqueueFault(Pending p);
    void scheduleFaultService();
    void serviceFault();
    void respond(const RemoteRequest &req, Pfn pfn,
                 TranslationSource source);
    void pushPte(Vpn vpn, Pfn pfn, bool prefetched);
    void recordServed();
    void sampleDepth();

    /** Record a span event for the request's owner (requester tile). */
    void trace(const RemoteRequest &req, SpanEvent ev,
               std::uint64_t arg = 0)
    {
        if (tracer_) [[unlikely]]
            tracer_->record(req.requester, req.vpn, engine_.now(), ev,
                            cpuTile_, arg);
    }

    Engine &engine_;
    Network &net_;
    GlobalPageTable &pt_;
    const SystemConfig &cfg_;
    TranslationPolicy pol_;
    TileId cpuTile_;

    std::vector<PeerEndpoint *> peers_;
    const ClusterMap *clusterMap_ = nullptr;
    Tracer *tracer_ = nullptr;
    Profiler *profiler_ = nullptr;
    std::optional<RedirectionTable> rt_;
    std::optional<IommuTlb> tlb_;

    PageWalkCache pwc_;
    std::deque<Pending> ingressQueue_;
    std::deque<Pending> pwQueue_;
    /** Bounded not-present fault queue (tenancy; serviced serially). */
    std::deque<Pending> faultQueue_;
    std::function<void(Vpn)> faultHandler_;
    bool faultServiceBusy_ = false;
    std::size_t freeWalkers_;
    std::size_t freeForwardContexts_;
    bool ingressScheduled_ = false;

    Resource *bpIngress_ = nullptr;
    Resource *bpPwQueue_ = nullptr;
    Resource *bpWalkers_ = nullptr;
    Resource *bpForward_ = nullptr;
    Resource *bpTlbMshrs_ = nullptr;
    Resource *bpFaultQueue_ = nullptr;

    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_IOMMU_IOMMU_HH
