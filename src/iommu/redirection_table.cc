#include "iommu/redirection_table.hh"

#include "sim/log.hh"

namespace hdpat
{

RedirectionTable::RedirectionTable(std::size_t capacity)
    : capacity_(capacity)
{
    hdpat_fatal_if(capacity == 0, "redirection table needs capacity");
}

std::optional<TileId>
RedirectionTable::lookup(Vpn vpn)
{
    ++stats_.lookups;
    auto it = map_.find(vpn);
    if (it == map_.end())
        return std::nullopt;
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->aux;
}

void
RedirectionTable::insert(Vpn vpn, TileId aux_tile)
{
    ++stats_.inserts;
    auto it = map_.find(vpn);
    if (it != map_.end()) {
        it->second->aux = aux_tile;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        const Entry &victim = lru_.back();
        map_.erase(victim.vpn);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(Entry{vpn, aux_tile});
    map_[vpn] = lru_.begin();
}

void
RedirectionTable::invalidate(Vpn vpn)
{
    auto it = map_.find(vpn);
    if (it == map_.end())
        return;
    lru_.erase(it->second);
    map_.erase(it);
    ++stats_.invalidations;
}

} // namespace hdpat
