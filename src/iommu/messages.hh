/**
 * @file
 * Message types and the peer interface shared between the IOMMU and
 * the GPMs. The Network delivers messages as scheduled callbacks; these
 * structs are the payloads those callbacks carry.
 */

#ifndef HDPAT_IOMMU_MESSAGES_HH
#define HDPAT_IOMMU_MESSAGES_HH

#include <cstdint>

#include "sim/types.hh"

namespace hdpat
{

/**
 * Which mechanism ultimately served a *remote* translation. Mirrors the
 * Fig 16 breakdown (peer caching / redirection / proactive delivery /
 * IOMMU) plus the categories used by the comparison baselines.
 */
enum class TranslationSource : std::uint8_t
{
    PeerCache = 0,     ///< Hit in an auxiliary GPM's cached (demand) PTE.
    Redirect,          ///< Served via an IOMMU redirection-table hit.
    ProactiveDelivery, ///< Hit on a proactively delivered (prefetched) PTE.
    IommuWalk,         ///< Full page-table walk at the IOMMU.
    IommuTlb,          ///< Hit in the Fig-19 conventional IOMMU TLB.
    HomeGmmu,          ///< Trans-FW: walked by the home GPM's GMMU.
    NeighborTlb,       ///< Valkyrie: hit in a neighbour GPM's L2 TLB.
};

constexpr std::size_t kNumTranslationSources = 7;

/** Printable name of a TranslationSource. */
const char *translationSourceName(TranslationSource src);

/** A remote translation request as it travels the wafer. */
struct RemoteRequest
{
    Vpn vpn = 0;
    /** GPM awaiting the PFN. */
    TileId requester = kInvalidTile;
    /** Tick at which the requester issued the remote resolution. */
    Tick issuedAt = 0;
    /**
     * Cleared when a redirected request misses at the auxiliary GPM and
     * bounces back, so the IOMMU does not redirect it a second time.
     */
    bool allowRedirect = true;
};

/**
 * Interface the IOMMU (and peer GPMs) use to deliver messages into a
 * GPM. Implemented by Gpm; methods are invoked by Network callbacks at
 * message-arrival time.
 */
class PeerEndpoint
{
  public:
    virtual ~PeerEndpoint() = default;

    /** An auxiliary PTE pushed by the IOMMU (§IV-F step 5 / §IV-G). */
    virtual void receivePtePush(Vpn vpn, Pfn pfn, bool prefetched) = 0;

    /** A request redirected here by the redirection table (§IV-F). */
    virtual void receiveRedirectedRequest(const RemoteRequest &req) = 0;

    /** The PFN answer for a remote translation this GPM requested. */
    virtual void receiveTranslationResponse(Vpn vpn, Pfn pfn,
                                            TranslationSource source) = 0;

    /** Trans-FW: the IOMMU delegates a page walk to this home GPM. */
    virtual void receiveDelegatedWalk(const RemoteRequest &req) = 0;
};

} // namespace hdpat

#endif // HDPAT_IOMMU_MESSAGES_HH
