#include "gpm/gmmu.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"

namespace hdpat
{

Gmmu::Gmmu(Engine &engine, const GlobalPageTable &pt, TileId self,
           std::size_t walkers, Tick walk_latency,
           std::size_t pwc_entries)
    : engine_(engine), pt_(pt), self_(self), freeWalkers_(walkers),
      walkLatency_(walk_latency),
      pwc_(pwc_entries, 5, walk_latency / 5)
{
    hdpat_fatal_if(walkers == 0, "GMMU needs at least one walker");
}

void
Gmmu::requestWalk(Vpn vpn, WalkCallback cb, TileId trace_owner)
{
    ++stats_.walksRequested;
    queue_.push_back(
        Pending{vpn, std::move(cb), engine_.now(), trace_owner});
    if (bpQueue_) [[unlikely]]
        bpQueue_->arrive(engine_.now());
    tryStart();
}

void
Gmmu::tryStart()
{
    // Batched probe warm-up: prefetch the PWC sets of every walk this
    // round can dispatch (bounded by free walkers) before starting
    // them one by one. Non-architectural, like Tlb::probeMany.
    if (pwc_.enabled()) {
        const std::size_t starts = std::min<std::size_t>(
            static_cast<std::size_t>(freeWalkers_), queue_.size());
        for (std::size_t i = 0; i < starts; ++i)
            pwc_.prefetch(queue_[i].vpn);
    }
    while (freeWalkers_ > 0 && !queue_.empty()) {
        Pending p = std::move(queue_.front());
        queue_.pop_front();
        --freeWalkers_;
        if (bpQueue_) [[unlikely]] {
            bpQueue_->depart(engine_.now());
            bpWalkers_->arrive(engine_.now());
        }
        stats_.queueWait.add(
            static_cast<double>(engine_.now() - p.enqueued));
        if (tracer_ && p.traceOwner != kInvalidTile) {
            tracer_->record(p.traceOwner, p.vpn, engine_.now(),
                            SpanEvent::GmmuWalkStart, self_);
        }
        const Tick latency = pwc_.enabled()
                                 ? pwc_.walkLatency(p.vpn)
                                 : walkLatency_;
        engine_.scheduleIn(latency, [this, p = std::move(p)] {
            ++freeWalkers_;
            if (bpWalkers_) [[unlikely]]
                bpWalkers_->depart(engine_.now());
            ++stats_.walksCompleted;
            const Pte *pte = pt_.translate(p.vpn);
            std::optional<Pfn> result;
            if (pte && pte->home == self_) {
                result = pte->pfn;
                ++stats_.localHits;
                pwc_.fill(p.vpn);
            } else {
                // The local page table only maps locally homed pages:
                // the walk was a cuckoo false positive (or a probe for
                // a page homed elsewhere).
                ++stats_.misses;
            }
            if (tracer_ && p.traceOwner != kInvalidTile) {
                tracer_->record(p.traceOwner, p.vpn, engine_.now(),
                                SpanEvent::GmmuWalkDone, self_,
                                result ? 1 : 0);
            }
            p.cb(p.vpn, result);
            tryStart();
        });
    }
}

void
Gmmu::registerMetrics(MetricRegistry &reg,
                      const std::string &prefix) const
{
    reg.addCounter(prefix + "walks_requested",
                   &stats_.walksRequested);
    reg.addCounter(prefix + "walks_completed",
                   &stats_.walksCompleted);
    reg.addCounter(prefix + "local_hits", &stats_.localHits);
    reg.addCounter(prefix + "misses", &stats_.misses);
    reg.addSummary(prefix + "queue_wait", &stats_.queueWait);
    reg.addGauge(prefix + "queue_depth", [this] {
        return static_cast<double>(queue_.size());
    });
}

} // namespace hdpat
