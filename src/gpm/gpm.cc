#include "gpm/gpm.hh"

#include <utility>

#include "obs/audit.hh"
#include "obs/profiler.hh"
#include "sim/log.hh"

namespace hdpat
{

Gpm::Gpm(TileId tile, Engine &engine, Network &net, GlobalPageTable &pt,
         const SystemConfig &cfg, const TranslationPolicy &pol)
    : tile_(tile), engine_(engine), net_(net), pt_(pt), cfg_(cfg),
      pol_(pol),
      l1Tlb_(cfg.l1Tlb.sets, cfg.l1Tlb.ways),
      l2Tlb_(cfg.l2Tlb.sets, cfg.l2Tlb.ways),
      cuckoo_(cfg.cuckooCapacity, 12,
              0x1234abcdu ^ static_cast<std::uint64_t>(tile)),
      llTlb_(cfg.lastLevelTlb.sets, cfg.lastLevelTlb.ways),
      gmmu_(engine, pt, tile, cfg.gmmuWalkers, cfg.gmmuWalkLatency,
            cfg.gmmuPwcEntriesPerLevel),
      dataCache_(cfg.l2CacheBytes, cfg.l2CacheWays, cfg.cacheLineBytes),
      dram_(cfg.hbmLatency, cfg.hbmBytesPerTick),
      remoteMshr_(cfg.l2Tlb.mshrs),
      issueRate_(static_cast<double>(cfg.issueWidth)),
      issueWindow_(cfg.maxOutstandingOps)
{
    // A cycle's gather can hold at most the window's worth of ops;
    // pre-size so steady-state issue never allocates.
    issueBatch_.reserve(static_cast<std::size_t>(issueWindow_));
    issueVpns_.reserve(static_cast<std::size_t>(issueWindow_));
}

void
Gpm::setIssueParams(double ops_per_cycle, int max_outstanding)
{
    if (ops_per_cycle > 0.0)
        issueRate_ = ops_per_cycle;
    if (max_outstanding > 0) {
        issueWindow_ = max_outstanding;
        issueBatch_.reserve(static_cast<std::size_t>(issueWindow_));
        issueVpns_.reserve(static_cast<std::size_t>(issueWindow_));
    }
}

void
Gpm::connect(Iommu *iommu, const ConcentricLayers *layers,
             const ClusterMap *cluster_map,
             const DistributedGroups *groups,
             const std::vector<Gpm *> *gpms_by_tile)
{
    iommu_ = iommu;
    layers_ = layers;
    clusterMap_ = cluster_map;
    groups_ = groups;
    gpms_ = gpms_by_tile;
}

void
Gpm::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    gmmu_.setTracer(tracer);
}

void
Gpm::setAuditor(Auditor *auditor)
{
    auditor_ = auditor;
    const std::string prefix = "gpm.t" + std::to_string(tile_) + ".";
    const TileId tile = tile_;
    const auto mshr_hook = [auditor, tile](bool allocated) {
        if (allocated)
            auditor->mshrAllocated(tile);
        else
            auditor->mshrFreed(tile);
    };
    remoteMshr_.setAuditHook(mshr_hook);
    localWalkMshr_.setAuditHook(mshr_hook);
    auditor->setTlbOccupancyProbe(
        tile_, [this] { return llTlb_.occupancy(); });
    auditor->addQueueProbe(prefix + "remote_mshr",
                           [this] { return remoteMshr_.occupancy(); });
    auditor->addQueueProbe(
        prefix + "local_walk_mshr",
        [this] { return localWalkMshr_.occupancy(); });
    auditor->addQueueProbe(prefix + "stalled_remote",
                           [this] { return stalledRemote_.size(); });
    auditor->addQueueProbe(prefix + "remote_ctx",
                           [this] { return remoteCtx_.size(); });
    auditor->addQueueProbe(prefix + "gmmu_queue",
                           [this] { return gmmu_.queueDepth(); });
}

void
Gpm::setBackpressure(BackpressureCollector &bp)
{
    const std::string prefix = "gpm.t" + std::to_string(tile_) + ".";
    const auto mshr_hook = [this](Resource *res) {
        return [this, res](MshrFile::PressureEvent ev) {
            switch (ev) {
              case MshrFile::PressureEvent::Alloc:
                res->arrive(engine_.now());
                break;
              case MshrFile::PressureEvent::Free:
                res->depart(engine_.now());
                break;
              case MshrFile::PressureEvent::Reject:
                res->reject();
                break;
            }
        };
    };
    remoteMshr_.setPressureHook(mshr_hook(bp.add(
        prefix + "remote_mshr", ResourceKind::Mshr, cfg_.l2Tlb.mshrs)));
    localWalkMshr_.setPressureHook(mshr_hook(
        bp.add(prefix + "local_walk_mshr", ResourceKind::Mshr, 0)));
    bpStalledRemote_ =
        bp.add(prefix + "stalled_remote", ResourceKind::Queue, 0);
    bpLlTlb_ = bp.add(prefix + "ll_tlb", ResourceKind::Residency,
                      static_cast<std::uint64_t>(cfg_.lastLevelTlb.sets) *
                          cfg_.lastLevelTlb.ways);
    gmmu_.setBackpressure(
        bp.add(prefix + "gmmu.queue", ResourceKind::Queue, 0),
        bp.add(prefix + "gmmu.walkers", ResourceKind::Pool,
               cfg_.gmmuWalkers));
}

void
Gpm::registerMetrics(MetricRegistry &reg,
                     const std::string &prefix) const
{
    reg.addCounter(prefix + "ops_issued", &stats_.opsIssued);
    reg.addCounter(prefix + "ops_completed", &stats_.opsCompleted);
    reg.addCounter(prefix + "l1_tlb_hits", &stats_.l1TlbHits);
    reg.addCounter(prefix + "l2_tlb_hits", &stats_.l2TlbHits);
    reg.addCounter(prefix + "cuckoo_negatives",
                   &stats_.cuckooNegatives);
    reg.addCounter(prefix + "cuckoo_false_positives",
                   &stats_.cuckooFalsePositives);
    reg.addCounter(prefix + "ll_tlb_hits", &stats_.llTlbHits);
    reg.addCounter(prefix + "local_walks", &stats_.localWalks);
    reg.addCounter(prefix + "remote_ops", &stats_.remoteOps);
    reg.addCounter(prefix + "remote_resolutions",
                   &stats_.remoteResolutions);
    reg.addCounter(prefix + "remote_stalls", &stats_.remoteStalls);
    for (std::size_t i = 0; i < kNumTranslationSources; ++i) {
        reg.addCounter(
            prefix + "source." +
                translationSourceName(static_cast<TranslationSource>(i)),
            &stats_.sourceCounts[i]);
    }
    reg.addSummary(prefix + "remote_rtt", &stats_.remoteRtt);
    reg.addCounter(prefix + "probes_received", &stats_.probesReceived);
    reg.addCounter(prefix + "probe_hits", &stats_.probeHits);
    reg.addCounter(prefix + "pushes_received", &stats_.pushesReceived);
    reg.addCounter(prefix + "redirected_received",
                   &stats_.redirectedReceived);
    reg.addCounter(prefix + "redirected_hits", &stats_.redirectedHits);
    reg.addCounter(prefix + "neighbor_probes_received",
                   &stats_.neighborProbesReceived);
    reg.addCounter(prefix + "neighbor_probe_hits",
                   &stats_.neighborProbeHits);
    reg.addCounter(prefix + "delegated_walks", &stats_.delegatedWalks);
    reg.addCounter(prefix + "data_cache_hits", &stats_.dataCacheHits);
    reg.addCounter(prefix + "data_local_accesses",
                   &stats_.dataLocalAccesses);
    reg.addCounter(prefix + "data_remote_accesses",
                   &stats_.dataRemoteAccesses);
    gmmu_.registerMetrics(reg, prefix + "gmmu.");
}

void
Gpm::registerTenancyMetrics(MetricRegistry &reg,
                            const std::string &prefix) const
{
    reg.addCounter(prefix + "stale_installs_blocked",
                   &stats_.staleInstallsBlocked);
    reg.addCounter(prefix + "invalidations_received",
                   &stats_.invalidationsReceived);
}

std::size_t
Gpm::shootdown(Vpn vpn)
{
    std::size_t invalidated = 0;
    invalidated += l1Tlb_.invalidate(vpn).has_value();
    invalidated += l2Tlb_.invalidate(vpn).has_value();
    const auto ll_entry = llTlb_.invalidate(vpn);
    if (ll_entry) {
        ++invalidated;
        if (auditor_) [[unlikely]]
            auditor_->tlbEvicted(tile_);
        if (bpLlTlb_) [[unlikely]]
            bpLlTlb_->depart(engine_.now());
        if (ll_entry->remote)
            cuckoo_.erase(vpn);
    }
    // The permanent filter entry for a locally homed page goes too:
    // the page is being freed from the local page table. lastHomeOf,
    // not homeOf: the async shootdown unmaps before the invalidation
    // reaches this tile, and the filter entry must still come out.
    if (pt_.lastHomeOf(vpn) == tile_)
        cuckoo_.erase(vpn);
    return invalidated;
}

void
Gpm::sweepResidentTranslations(Auditor &auditor) const
{
    const auto check = [this, &auditor](Vpn vpn, Pfn pfn) {
        const Pte *pte = pt_.translate(vpn);
        if (!pte || pte->pfn != pfn)
            auditor.staleResident(tile_, vpn, pfn);
    };
    l1Tlb_.forEachValid(check);
    l2Tlb_.forEachValid(check);
    llTlb_.forEachValid(check);
}

void
Gpm::setWork(std::unique_ptr<AddressStream> stream)
{
    stream_ = std::move(stream);
}

void
Gpm::setOnFinished(std::function<void(TileId)> cb)
{
    onFinished_ = std::move(cb);
}

void
Gpm::seedLocalPages(std::span<const Vpn> vpns)
{
    // The cuckoo filter tracks everything translatable locally; local
    // pages are permanently present (paper §II-B).
    for (Vpn vpn : vpns)
        cuckoo_.insert(vpn);
}

void
Gpm::start()
{
    if (!stream_) {
        streamDone_ = true;
        checkFinished();
        return;
    }
    if (!issueScheduled_) {
        issueScheduled_ = true;
        engine_.scheduleIn(0, [this] {
            issueScheduled_ = false;
            tryIssue();
        });
    }
}

// ---------------------------------------------------------------------
// Issue engine
// ---------------------------------------------------------------------

void
Gpm::tryIssue()
{
    if (streamDone_)
        return;

    const double now = static_cast<double>(engine_.now());
    // Idle slots are not banked: a window-full stall does not earn a
    // catch-up burst once completions arrive.
    if (nextIssueTime_ < now)
        nextIssueTime_ = now;

    // Gather every op whose slot falls within the current cycle, then
    // prefetch the L1 TLB sets they will probe, then issue. The
    // address stream is independent of simulator state and the probe
    // is non-architectural, so splitting gather from issue reorders
    // nothing observable -- it only lets the translate loop below run
    // against warm tag arrays instead of paying a cold miss per op.
    issueBatch_.clear();
    issueVpns_.clear();
    while (outstanding_ < issueWindow_ && nextIssueTime_ < now + 1.0) {
        std::optional<Addr> va = stream_->next();
        if (!va) {
            streamDone_ = true;
            break;
        }
        // Reserve the op's window slot at gather time so an
        // end-of-stream checkFinished() below cannot observe the
        // batched ops as already drained.
        ++outstanding_;
        ++stats_.opsIssued;
        nextIssueTime_ += 1.0 / issueRate_;
        issueBatch_.push_back(*va);
        issueVpns_.push_back(keyOf(*va));
    }
    if (issueVpns_.size() > 1)
        l1Tlb_.probeMany(issueVpns_);
    for (std::size_t i = 0; i < issueBatch_.size(); ++i)
        beginOp(issueBatch_[i], issueVpns_[i]);
    if (streamDone_) {
        checkFinished();
        return;
    }

    // Out of this cycle's issue budget but the window has room:
    // continue when the next slot arrives. (A full window resumes
    // from completions instead.)
    if (outstanding_ < issueWindow_ && !issueScheduled_) {
        issueScheduled_ = true;
        const Tick wake = static_cast<Tick>(nextIssueTime_) + 1;
        engine_.scheduleAt(wake, [this] {
            issueScheduled_ = false;
            tryIssue();
        });
    }
}

void
Gpm::beginOp(Addr va, Vpn key)
{
    // The key is bound here, once, under the ASID active at issue
    // time; every later stage of the op (translation, remote protocol,
    // data access, retire) carries it unchanged, so a context switch
    // mid-flight never re-tags a live request.
    if (tracer_) [[unlikely]]
        tracer_->begin(tile_, key, engine_.now());
    if (auditor_) [[unlikely]]
        auditor_->opIssued(tile_, key, engine_.now());
    translate(va, key);
}

void
Gpm::completeOpAt(Tick when, Vpn vpn)
{
    engine_.scheduleAt(when, [this, vpn] { completeOpNow(vpn); });
}

void
Gpm::completeOpNow(Vpn vpn)
{
    hdpat_panic_if(outstanding_ <= 0, "op completion underflow");
    --outstanding_;
    ++stats_.opsCompleted;
    if (tracer_) [[unlikely]]
        tracer_->end(tile_, vpn, engine_.now());
    if (auditor_) [[unlikely]]
        auditor_->opRetired(tile_, vpn, engine_.now());
    tryIssue();
    checkFinished();
}

void
Gpm::checkFinished()
{
    if (streamDone_ && outstanding_ == 0 && !stats_.finished) {
        stats_.finished = true;
        stats_.finishTick = engine_.now();
        if (onFinished_)
            onFinished_(tile_);
    }
}

// ---------------------------------------------------------------------
// Local translation path (Fig 10(a))
// ---------------------------------------------------------------------

void
Gpm::translate(Addr va, Vpn key)
{
    const ProfScope prof(profiler_, ProfSection::Translate);
    const Vpn vpn = key;
    Tick t = engine_.now() + cfg_.l1Tlb.latency;

    if (l1Tlb_.lookup(vpn)) {
        ++stats_.l1TlbHits;
        trace(vpn, SpanEvent::L1TlbHit);
        dataAccess(va, vpn, t);
        return;
    }

    t += cfg_.l2Tlb.latency;
    if (auto pfn = l2Tlb_.lookup(vpn)) {
        ++stats_.l2TlbHits;
        trace(vpn, SpanEvent::L2TlbHit);
        l1Tlb_.insert(vpn, *pfn);
        dataAccess(va, vpn, t);
        return;
    }

    t += cfg_.cuckooLatency;
    if (!cuckoo_.contains(vpn)) {
        // Negative: guaranteed absent from the last-level TLB and the
        // local page table; go remote immediately.
        ++stats_.cuckooNegatives;
        trace(vpn, SpanEvent::CuckooNegative);
        startRemote(va, vpn, t);
        return;
    }

    t += cfg_.lastLevelTlb.latency;
    if (const TlbEntry *entry = llTlb_.lookupEntry(vpn)) {
        ++stats_.llTlbHits;
        trace(vpn, SpanEvent::LastLevelTlbHit);
        fillLocalHierarchy(vpn, entry->pfn, entry->remote);
        dataAccess(va, vpn, t);
        return;
    }

    // Walk the local page table; a miss there means the cuckoo filter
    // answered a false positive and the request continues remotely
    // (the "doubled latency" case of §II-B).
    engine_.scheduleAt(t, [this, va, vpn] {
        ++stats_.localWalks;
        trace(vpn, SpanEvent::LocalWalkStart);
        const auto outcome = localWalkMshr_.registerMiss(
            vpn, [this, va](Vpn v, Pfn pfn) {
                onLocalWalkDone(va, v,
                                pfn == kInvalidPfn
                                    ? std::nullopt
                                    : std::optional<Pfn>(pfn));
            });
        if (outcome == MshrFile::Outcome::Allocated) {
            gmmu_.requestWalk(
                vpn,
                [this](Vpn v, std::optional<Pfn> p) {
                    localWalkMshr_.resolve(v, p.value_or(kInvalidPfn));
                },
                tile_);
        }
    });
}

void
Gpm::onLocalWalkDone(Addr va, Vpn vpn, std::optional<Pfn> pfn)
{
    if (pfn) {
        trace(vpn, SpanEvent::LocalWalkHit);
        insertLastLevel(vpn, *pfn, /*remote=*/false,
                        /*prefetched=*/false);
        fillLocalHierarchy(vpn, *pfn, /*remote=*/false);
        dataAccess(va, vpn, engine_.now());
        return;
    }
    ++stats_.cuckooFalsePositives;
    trace(vpn, SpanEvent::CuckooFalsePositive);
    startRemote(va, vpn, engine_.now());
}

bool
Gpm::installAllowed(Vpn vpn, Pfn pfn)
{
    // No unmap ever happened: nothing can be stale, and the gate must
    // cost nothing (single-tenant runs stay bitwise identical).
    if (pt_.mutationEpoch() == 0) [[likely]]
        return true;
    const Pte *pte = pt_.translate(vpn);
    if (pte && pte->pfn == pfn)
        return true;
    ++stats_.staleInstallsBlocked;
    return false;
}

void
Gpm::fillLocalHierarchy(Vpn vpn, Pfn pfn, bool remote)
{
    // Every resolution path (local walk, peer probe, IOMMU response,
    // proactive push, delegated walk) funnels through here or through
    // insertLastLevel before the PPN becomes visible, so these two are
    // where the auditor checks it against the reference page walk --
    // and where stale results from walks that raced an unmap are
    // dropped instead of cached.
    if (!installAllowed(vpn, pfn))
        return;
    if (auditor_) [[unlikely]]
        auditor_->pfnResolved(tile_, vpn, pfn, engine_.now());
    l2Tlb_.insert(vpn, pfn, remote);
    l1Tlb_.insert(vpn, pfn, remote);
}

void
Gpm::insertLastLevel(Vpn vpn, Pfn pfn, bool remote, bool prefetched)
{
    if (!installAllowed(vpn, pfn))
        return;
    if (auditor_) [[unlikely]]
        auditor_->pfnResolved(tile_, vpn, pfn, engine_.now());
    if (remote) {
        if (llTlb_.peek(vpn)) {
            // Refresh: the cuckoo filter already tracks this VPN.
            llTlb_.insert(vpn, pfn, true, prefetched);
            return;
        }
        const auto evicted = llTlb_.insert(vpn, pfn, true, prefetched);
        if (auditor_) [[unlikely]] {
            auditor_->tlbFilled(tile_);
            if (evicted)
                auditor_->tlbEvicted(tile_);
        }
        if (bpLlTlb_) [[unlikely]] {
            // Evict-then-fill, so a replacement never reads as a
            // transient occupancy above capacity.
            if (evicted)
                bpLlTlb_->depart(engine_.now());
            bpLlTlb_->arrive(engine_.now());
        }
        cuckoo_.insert(vpn);
        if (evicted && evicted->remote)
            cuckoo_.erase(evicted->vpn);
        return;
    }

    // A refresh of a resident entry neither fills nor evicts; the
    // audited fill count must only grow when a new entry appears.
    // peek() is side-effect-free, so widening the gate to the
    // backpressure observer leaves unobserved runs bitwise identical.
    const bool fresh = (auditor_ || bpLlTlb_) && !llTlb_.peek(vpn);
    const auto evicted = llTlb_.insert(vpn, pfn, false, false);
    if (auditor_) [[unlikely]] {
        if (fresh)
            auditor_->tlbFilled(tile_);
        if (evicted)
            auditor_->tlbEvicted(tile_);
    }
    if (bpLlTlb_) [[unlikely]] {
        if (evicted)
            bpLlTlb_->depart(engine_.now());
        if (fresh)
            bpLlTlb_->arrive(engine_.now());
    }
    // Locally homed pages stay in the cuckoo filter permanently (the
    // local page table still maps them); only cached remote PTEs are
    // removed on eviction.
    if (evicted && evicted->remote)
        cuckoo_.erase(evicted->vpn);
}

// ---------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------

void
Gpm::dataAccess(Addr va, Vpn key, Tick when)
{
    // Run the access at its start time: link and DRAM busy-until state
    // must only ever be advanced at the current tick, or one packet
    // reserved far in the future would stall every later sender.
    engine_.scheduleAt(when, [this, va, key] { dataAccessNow(va, key); });
}

void
Gpm::dataAccessNow(Addr va, Vpn key)
{
    const Tick now = engine_.now();
    const Vpn vpn = key;
    // Tenants see the same VA layout, so cache tags are scrambled by
    // ASID to keep their working sets from aliasing; XOR with zero
    // (ASID 0) is the identity.
    if (dataCache_.access(
            va ^ (static_cast<Addr>(asidOfKey(key)) << 48))) {
        ++stats_.dataCacheHits;
        trace(vpn, SpanEvent::DataAccess, tile_);
        completeOpAt(now + cfg_.dataHitLatency, vpn);
        return;
    }

    // lastHomeOf: an op whose page was unmapped mid-flight still
    // accesses the HBM that held the frame (equals homeOf for mapped
    // pages, so single-tenant behavior is unchanged).
    const TileId home = pt_.lastHomeOf(vpn);
    if (home == tile_ || home == kInvalidTile) {
        ++stats_.dataLocalAccesses;
        trace(vpn, SpanEvent::DataAccess, tile_);
        completeOpAt(dram_.access(now, cfg_.cacheLineBytes), vpn);
        return;
    }

    // Remote zero-copy access at cacheline granularity (§II-A):
    // request header to the home GPM, HBM access there, line back.
    // The return leg is computed in an event at the home side so link
    // state is never reserved at a future timestamp.
    ++stats_.dataRemoteAccesses;
    trace(vpn, SpanEvent::DataAccess, home);
    Gpm *home_gpm = (*gpms_)[static_cast<std::size_t>(home)];
    net_.dataHop(tile_, home, NocMessageBytes::kDataHeader,
                 [this, home, home_gpm, vpn] {
                     const Tick t_mem = home_gpm->dram().access(
                         engine_.now(), cfg_.cacheLineBytes);
                     engine_.scheduleAt(t_mem, [this, home, vpn] {
                         net_.dataHop(home, tile_,
                                      NocMessageBytes::kCacheLine +
                                          NocMessageBytes::kDataHeader,
                                      [this, vpn] { completeOpNow(vpn); });
                     });
                 });
}

} // namespace hdpat
