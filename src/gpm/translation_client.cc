/**
 * @file
 * Gpm remote-translation machinery: the per-policy client protocols
 * (baseline, route-based, concentric, distributed, cluster+rotation,
 * Valkyrie neighbour probing) and the server-side handlers a GPM
 * exposes to its peers and the IOMMU.
 */

#include <algorithm>
#include <utility>

#include "gpm/gpm.hh"
#include "sim/log.hh"

namespace hdpat
{

// ---------------------------------------------------------------------
// Remote client: entry
// ---------------------------------------------------------------------

void
Gpm::startRemote(Addr va, Vpn key, Tick when)
{
    engine_.scheduleAt(when, [this, va, key] {
        ++stats_.remoteOps;
        const Vpn vpn = key;
        const auto outcome = remoteMshr_.registerMiss(
            vpn, [this, va](Vpn v, Pfn) {
                dataAccess(va, v, engine_.now());
            });
        switch (outcome) {
          case MshrFile::Outcome::Allocated:
            ++stats_.remoteResolutions;
            launchRemoteProtocol(vpn);
            break;
          case MshrFile::Outcome::Merged:
            break;
          case MshrFile::Outcome::Full:
            // The paper's MSHR concurrency limit: the op waits for a
            // free entry and retries on the next resolution.
            ++stats_.remoteStalls;
            trace(vpn, SpanEvent::RemoteStalled);
            stalledRemote_.push_back({va, key});
            if (bpStalledRemote_) [[unlikely]]
                bpStalledRemote_->arrive(engine_.now());
            break;
        }
    });
}

void
Gpm::retryStalledRemote()
{
    if (stalledRemote_.empty())
        return;
    std::deque<StalledOp> pending;
    pending.swap(stalledRemote_);
    for (const StalledOp op : pending) {
        // Each stalled op leaves the queue for its retry; a still-full
        // MSHR re-enqueues it below as a fresh arrival.
        if (bpStalledRemote_) [[unlikely]]
            bpStalledRemote_->depart(engine_.now());
        const Addr va = op.va;
        const Vpn vpn = op.key;
        // A just-finished resolution may already cover this op.
        if (auto pfn = l2Tlb_.lookup(vpn)) {
            l1Tlb_.insert(vpn, *pfn, true);
            dataAccess(va, vpn, engine_.now());
            continue;
        }
        const auto outcome = remoteMshr_.registerMiss(
            vpn, [this, va](Vpn v, Pfn) {
                dataAccess(va, v, engine_.now());
            });
        switch (outcome) {
          case MshrFile::Outcome::Allocated:
            ++stats_.remoteResolutions;
            launchRemoteProtocol(vpn);
            break;
          case MshrFile::Outcome::Merged:
            break;
          case MshrFile::Outcome::Full:
            stalledRemote_.push_back(op);
            if (bpStalledRemote_) [[unlikely]]
                bpStalledRemote_->arrive(engine_.now());
            break;
        }
    }
}

void
Gpm::launchRemoteProtocol(Vpn vpn)
{
    trace(vpn, SpanEvent::RemoteStart);
    RemoteCtx ctx;
    ctx.startTick = engine_.now();
    ctx.epoch = ++epochCounter_;

    if (pol_.neighborTlbProbe && neighborTile_ != kInvalidTile) {
        auto [it, inserted] = remoteCtx_.insert_or_assign(vpn, ctx);
        (void)inserted;
        launchNeighborProbe(vpn, it->second);
        return;
    }

    switch (pol_.peerMode) {
      case PeerCachingMode::None: {
          auto [it, ignored] = remoteCtx_.insert_or_assign(vpn, ctx);
          (void)ignored;
          it->second.sentToIommu = true;
          sendToIommu(vpn, ctx.startTick);
          break;
      }
      case PeerCachingMode::ClusterRotation: {
          auto [it, ignored] = remoteCtx_.insert_or_assign(vpn, ctx);
          (void)ignored;
          launchClusterProbes(vpn, it->second);
          break;
      }
      case PeerCachingMode::RouteBased: {
          auto [it, ignored] = remoteCtx_.insert_or_assign(vpn, ctx);
          (void)ignored;
          launchChain(vpn, it->second, buildRouteChain());
          break;
      }
      case PeerCachingMode::Concentric: {
          auto [it, ignored] = remoteCtx_.insert_or_assign(vpn, ctx);
          (void)ignored;
          launchChain(vpn, it->second, buildConcentricChain());
          break;
      }
      case PeerCachingMode::Distributed: {
          auto [it, ignored] = remoteCtx_.insert_or_assign(vpn, ctx);
          (void)ignored;
          std::vector<TileId> chain;
          const TileId peer = groups_->nearestGroupPeer(tile_);
          if (peer != kInvalidTile)
              chain.push_back(peer);
          launchChain(vpn, it->second, std::move(chain));
          break;
      }
    }
}

// ---------------------------------------------------------------------
// Cluster+rotation concurrent probes (§IV-D/E)
// ---------------------------------------------------------------------

void
Gpm::launchClusterProbes(Vpn vpn, RemoteCtx &ctx)
{
    hdpat_panic_if(!clusterMap_, "cluster probes without a map");

    // Requesters probe their own layer and everything inward;
    // peripheral GPMs probe all layers ("requests move inward").
    const int num_layers = clusterMap_->numLayers();
    int top_layer = num_layers - 1;
    if (layers_->isCachingTile(tile_))
        top_layer = layers_->layerOf(tile_);

    std::vector<TileId> targets;
    for (int layer = 0; layer <= top_layer; ++layer) {
        const TileId aux = clusterMap_->auxTileFor(vpn, layer);
        if (aux == tile_)
            continue;
        if (std::find(targets.begin(), targets.end(), aux) ==
            targets.end()) {
            targets.push_back(aux);
        }
    }

    if (targets.empty()) {
        ctx.sentToIommu = true;
        sendToIommu(vpn, ctx.startTick);
        return;
    }

    if (!pol_.concurrentProbes) {
        // Sequential alternative: chain outer -> inner -> IOMMU. The
        // IOMMU's pushes still populate the mapped tiles, so the
        // requester sends no fills of its own.
        std::vector<TileId> chain(targets.rbegin(), targets.rend());
        launchChain(vpn, ctx, std::move(chain),
                    /*fill_on_resolve=*/false);
        return;
    }

    ctx.probesOutstanding = static_cast<int>(targets.size());
    const std::uint64_t epoch = ctx.epoch;
    for (TileId target : targets) {
        Gpm *peer = (*gpms_)[static_cast<std::size_t>(target)];
        const TileId requester = tile_;
        trace(vpn, SpanEvent::ProbeSent, target);
        net_.sendTraced(tile_, target, NocMessageBytes::kProbeRequest,
                        [peer, vpn, requester, epoch] {
                            peer->receiveProbe(vpn, requester, epoch);
                        },
                        tile_, vpn);
    }
}

// ---------------------------------------------------------------------
// Sequential chains (route-based §IV-B, concentric §IV-C, distributed)
// ---------------------------------------------------------------------

void
Gpm::launchChain(Vpn vpn, RemoteCtx &ctx, std::vector<TileId> chain,
                 bool fill_on_resolve)
{
    if (chain.empty()) {
        ctx.sentToIommu = true;
        sendToIommu(vpn, ctx.startTick);
        return;
    }

    ctx.probesOutstanding = 1;
    if (fill_on_resolve)
        ctx.fillTargets = chain;

    ChainProbe probe;
    probe.vpn = vpn;
    probe.requester = tile_;
    probe.epoch = ctx.epoch;
    probe.issuedAt = ctx.startTick;
    const TileId first = chain.front();
    probe.remaining.assign(chain.begin() + 1, chain.end());

    Gpm *peer = (*gpms_)[static_cast<std::size_t>(first)];
    trace(vpn, SpanEvent::ProbeSent, first);
    net_.sendTraced(tile_, first, NocMessageBytes::kProbeRequest,
                    [peer, probe = std::move(probe)] {
                        peer->receiveChainProbe(probe);
                    },
                    tile_, vpn);
}

std::vector<TileId>
Gpm::buildRouteChain() const
{
    const TileId cpu = net_.topology().cpuTile();
    const std::vector<TileId> path = net_.route(tile_, cpu);
    std::vector<TileId> chain;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        if (net_.topology().isGpm(path[i]))
            chain.push_back(path[i]);
    }
    return chain;
}

std::vector<TileId>
Gpm::buildConcentricChain() const
{
    std::vector<TileId> chain;
    const int num_layers = layers_->numLayers();
    if (num_layers == 0)
        return chain;

    int start_layer = num_layers - 1;
    if (layers_->isCachingTile(tile_))
        start_layer = layers_->layerOf(tile_);

    TileId current = tile_;
    for (int layer = start_layer; layer >= 0; --layer) {
        const TileId next =
            nearestInLayerExcluding(layer, current, tile_);
        if (next == kInvalidTile || next == current)
            continue;
        if (std::find(chain.begin(), chain.end(), next) != chain.end())
            continue;
        chain.push_back(next);
        current = next;
    }
    return chain;
}

TileId
Gpm::nearestInLayerExcluding(int layer, TileId from, TileId exclude) const
{
    const auto &tiles = layers_->layerTiles(layer);
    TileId best = kInvalidTile;
    int best_dist = 0;
    for (TileId t : tiles) {
        if (t == exclude)
            continue;
        const int d = net_.topology().hopDistance(from, t);
        if (best == kInvalidTile || d < best_dist ||
            (d == best_dist && t < best)) {
            best = t;
            best_dist = d;
        }
    }
    return best;
}

// ---------------------------------------------------------------------
// Valkyrie neighbour probe
// ---------------------------------------------------------------------

void
Gpm::launchNeighborProbe(Vpn vpn, RemoteCtx &ctx)
{
    ctx.probesOutstanding = 1;
    Gpm *peer = (*gpms_)[static_cast<std::size_t>(neighborTile_)];
    const TileId requester = tile_;
    const std::uint64_t epoch = ctx.epoch;
    trace(vpn, SpanEvent::ProbeSent, neighborTile_);
    net_.sendTraced(tile_, neighborTile_,
                    NocMessageBytes::kProbeRequest,
                    [peer, vpn, requester, epoch] {
                        peer->receiveNeighborProbe(vpn, requester, epoch);
                    },
                    tile_, vpn);
}

// ---------------------------------------------------------------------
// IOMMU interaction + resolution
// ---------------------------------------------------------------------

void
Gpm::sendToIommu(Vpn vpn, Tick issued_at)
{
    RemoteRequest req;
    req.vpn = vpn;
    req.requester = tile_;
    req.issuedAt = issued_at;
    Iommu *iommu = iommu_;
    net_.sendTraced(tile_, net_.topology().cpuTile(),
                    NocMessageBytes::kTranslationRequest,
                    [iommu, req] { iommu->receiveRequest(req); },
                    tile_, vpn);
}

void
Gpm::resolveRemote(Vpn vpn, Pfn pfn, TranslationSource source)
{
    ++stats_.sourceCounts[static_cast<std::size_t>(source)];
    trace(vpn, SpanEvent::Resolved,
          static_cast<std::uint64_t>(source));

    auto it = remoteCtx_.find(vpn);
    if (it != remoteCtx_.end()) {
        stats_.remoteRtt.add(
            static_cast<double>(engine_.now() - it->second.startTick));
        remoteCtx_.erase(it);
    }

    fillLocalHierarchy(vpn, pfn, /*remote=*/true);
    remoteMshr_.resolve(vpn, pfn);
    retryStalledRemote();
}

void
Gpm::receiveProbeReply(const ProbeReply &reply)
{
    auto it = remoteCtx_.find(reply.vpn);
    if (it == remoteCtx_.end() || it->second.epoch != reply.epoch)
        return; // Stale reply from an already-resolved round.

    RemoteCtx &ctx = it->second;
    --ctx.probesOutstanding;
    trace(reply.vpn,
          reply.hit ? SpanEvent::ProbeHit : SpanEvent::ProbeMiss,
          reply.responder);

    if (reply.hit) {
        // Chain modes: push fills into the peers that missed before
        // the responder, so they can serve future requesters (§IV-B/C).
        if (!ctx.fillTargets.empty()) {
            const Vpn vpn = reply.vpn;
            const Pfn pfn = reply.pfn;
            for (TileId t : ctx.fillTargets) {
                if (t == reply.responder)
                    break;
                Gpm *peer = (*gpms_)[static_cast<std::size_t>(t)];
                net_.send(tile_, t, NocMessageBytes::kPtePush,
                          [peer, vpn, pfn] {
                              peer->receivePtePush(vpn, pfn, false);
                          });
            }
        }
        resolveRemote(reply.vpn, reply.pfn, reply.source);
        return;
    }

    if (ctx.probesOutstanding <= 0 && !ctx.sentToIommu) {
        ctx.sentToIommu = true;
        sendToIommu(reply.vpn, ctx.startTick);
    }
}

void
Gpm::receiveTranslationResponse(Vpn vpn, Pfn pfn,
                                TranslationSource source)
{
    auto it = remoteCtx_.find(vpn);
    if (it == remoteCtx_.end()) {
        // Late duplicate (e.g., a peer hit raced an IOMMU response).
        fillLocalHierarchy(vpn, pfn, /*remote=*/true);
        return;
    }

    // Chain modes: when the IOMMU resolved the request, every chained
    // peer missed; push fills to all of them.
    if (!it->second.fillTargets.empty() &&
        source != TranslationSource::PeerCache) {
        for (TileId t : it->second.fillTargets) {
            Gpm *peer = (*gpms_)[static_cast<std::size_t>(t)];
            net_.send(tile_, t, NocMessageBytes::kPtePush,
                      [peer, vpn, pfn] {
                          peer->receivePtePush(vpn, pfn, false);
                      });
        }
    }

    resolveRemote(vpn, pfn, source);
}

// ---------------------------------------------------------------------
// Server side: peer probes
// ---------------------------------------------------------------------

void
Gpm::probeLookup(
    Vpn vpn,
    const std::function<void(Tick, bool, Pfn, bool)> &done,
    TileId trace_owner)
{
    Tick latency = cfg_.cuckooLatency;
    if (!cuckoo_.contains(vpn)) {
        done(latency, false, kInvalidPfn, false);
        return;
    }

    latency += cfg_.lastLevelTlb.latency;
    if (const TlbEntry *entry = llTlb_.lookupEntry(vpn)) {
        done(latency, true, entry->pfn, entry->prefetched);
        return;
    }

    if (pt_.homeOf(vpn) == tile_) {
        // The probed page is homed here: the local page table has it.
        engine_.scheduleIn(latency, [this, vpn, done, trace_owner] {
            gmmu_.requestWalk(
                vpn,
                [this, done](Vpn v, std::optional<Pfn> pfn) {
                    if (pfn) {
                        insertLastLevel(v, *pfn, false, false);
                        done(0, true, *pfn, false);
                    } else {
                        done(0, false, kInvalidPfn, false);
                    }
                },
                trace_owner);
        });
        return;
    }

    // Cuckoo false positive for a remote, uncached page.
    done(latency, false, kInvalidPfn, false);
}

void
Gpm::replyProbe(TileId to, const ProbeReply &reply, Tick extra_latency)
{
    Gpm *peer = (*gpms_)[static_cast<std::size_t>(to)];
    auto do_send = [this, peer, to, reply] {
        net_.sendTraced(tile_, to, NocMessageBytes::kProbeResponse,
                        [peer, reply] { peer->receiveProbeReply(reply); },
                        to, reply.vpn);
    };
    if (extra_latency == 0) {
        do_send();
    } else {
        engine_.scheduleIn(extra_latency, std::move(do_send));
    }
}

void
Gpm::receiveProbe(Vpn vpn, TileId requester, std::uint64_t epoch)
{
    ++stats_.probesReceived;
    probeLookup(
        vpn,
        [this, vpn, requester, epoch](Tick lat, bool hit, Pfn pfn,
                                      bool prefetched) {
            if (hit)
                ++stats_.probeHits;
            ProbeReply reply;
            reply.vpn = vpn;
            reply.epoch = epoch;
            reply.hit = hit;
            reply.pfn = pfn;
            reply.source = prefetched
                               ? TranslationSource::ProactiveDelivery
                               : TranslationSource::PeerCache;
            reply.responder = tile_;
            replyProbe(requester, reply, lat);
        },
        requester);
}

void
Gpm::receiveChainProbe(ChainProbe probe)
{
    ++stats_.probesReceived;
    const Vpn probe_vpn = probe.vpn;
    const TileId probe_owner = probe.requester;
    probeLookup(
        probe_vpn,
        [this, probe = std::move(probe)](Tick lat, bool hit, Pfn pfn,
                                         bool prefetched) mutable {
        // Sequential schemes stop the request at every attempt:
        // store-and-forward plus shared-port arbitration (§IV-B).
        lat += cfg_.chainAttemptOverhead;
        if (hit) {
            ++stats_.probeHits;
            ProbeReply reply;
            reply.vpn = probe.vpn;
            reply.epoch = probe.epoch;
            reply.hit = true;
            reply.pfn = pfn;
            reply.source = prefetched
                               ? TranslationSource::ProactiveDelivery
                               : TranslationSource::PeerCache;
            reply.responder = tile_;
            replyProbe(probe.requester, reply, lat);
            return;
        }

        if (!probe.remaining.empty()) {
            // Forward inward to the next caching candidate.
            const TileId next = probe.remaining.front();
            probe.remaining.erase(probe.remaining.begin());
            probe.visited.push_back(tile_);
            Gpm *peer = (*gpms_)[static_cast<std::size_t>(next)];
            engine_.scheduleIn(lat, [this, next, peer,
                                     probe = std::move(probe)] {
                const TileId owner = probe.requester;
                const Vpn vpn = probe.vpn;
                net_.sendTraced(tile_, next,
                                NocMessageBytes::kProbeRequest,
                                [peer, probe = std::move(probe)] {
                                    peer->receiveChainProbe(probe);
                                },
                                owner, vpn);
            });
            return;
        }

        // Last caching candidate missed: forward to the IOMMU, which
        // responds to the original requester directly.
        RemoteRequest req;
        req.vpn = probe.vpn;
        req.requester = probe.requester;
        req.issuedAt = probe.issuedAt;
        Iommu *iommu = iommu_;
        engine_.scheduleIn(lat, [this, iommu, req] {
            net_.sendTraced(tile_, net_.topology().cpuTile(),
                            NocMessageBytes::kTranslationRequest,
                            [iommu, req] { iommu->receiveRequest(req); },
                            req.requester, req.vpn);
        });
        },
        probe_owner);
}

void
Gpm::receiveNeighborProbe(Vpn vpn, TileId requester, std::uint64_t epoch)
{
    ++stats_.neighborProbesReceived;
    std::optional<Pfn> pfn = l2Tlb_.peek(vpn);
    if (!pfn)
        pfn = llTlb_.peek(vpn);
    if (pfn)
        ++stats_.neighborProbeHits;

    ProbeReply reply;
    reply.vpn = vpn;
    reply.epoch = epoch;
    reply.hit = pfn.has_value();
    reply.pfn = pfn.value_or(kInvalidPfn);
    reply.source = TranslationSource::NeighborTlb;
    reply.responder = tile_;
    replyProbe(requester, reply, cfg_.l2Tlb.latency);
}

// ---------------------------------------------------------------------
// Server side: IOMMU-originated messages
// ---------------------------------------------------------------------

void
Gpm::receivePtePush(Vpn vpn, Pfn pfn, bool prefetched)
{
    ++stats_.pushesReceived;
    insertLastLevel(vpn, pfn, /*remote=*/true, prefetched);
}

void
Gpm::receiveRedirectedRequest(const RemoteRequest &req)
{
    ++stats_.redirectedReceived;
    if (tracer_) [[unlikely]]
        tracer_->record(req.requester, req.vpn, engine_.now(),
                        SpanEvent::RedirectArrive, tile_);
    probeLookup(
        req.vpn,
        [this, req](Tick lat, bool hit, Pfn pfn, bool prefetched) {
        if (hit) {
            ++stats_.redirectedHits;
            if (tracer_) [[unlikely]]
                tracer_->record(req.requester, req.vpn, engine_.now(),
                                SpanEvent::RedirectHit, tile_);
            Gpm *peer = (*gpms_)[static_cast<std::size_t>(req.requester)];
            const Vpn vpn = req.vpn;
            const TranslationSource source =
                prefetched ? TranslationSource::ProactiveDelivery
                           : TranslationSource::Redirect;
            engine_.scheduleIn(lat, [this, peer, req, vpn, pfn, source] {
                net_.sendTraced(tile_, req.requester,
                                NocMessageBytes::kTranslationResponse,
                                [peer, vpn, pfn, source] {
                                    peer->receiveTranslationResponse(
                                        vpn, pfn, source);
                                },
                                req.requester, vpn);
            });
            return;
        }

        // The cached copy was evicted: bounce back to the IOMMU with
        // redirection disabled so it walks this time.
        if (tracer_) [[unlikely]]
            tracer_->record(req.requester, req.vpn, engine_.now(),
                            SpanEvent::RedirectBounce, tile_);
        RemoteRequest bounce = req;
        bounce.allowRedirect = false;
        Iommu *iommu = iommu_;
        engine_.scheduleIn(lat, [this, iommu, bounce] {
            net_.sendTraced(tile_, net_.topology().cpuTile(),
                            NocMessageBytes::kTranslationRequest,
                            [iommu, bounce] {
                                iommu->receiveRequest(bounce);
                            },
                            bounce.requester, bounce.vpn);
        });
        },
        req.requester);
}

void
Gpm::receiveDelegatedWalk(const RemoteRequest &req)
{
    ++stats_.delegatedWalks;
    if (tracer_) [[unlikely]]
        tracer_->record(req.requester, req.vpn, engine_.now(),
                        SpanEvent::DelegatedWalk, tile_);
    gmmu_.requestWalk(
        req.vpn,
        [this, req](Vpn vpn, std::optional<Pfn> pfn) {
            if (!pfn) {
                // The page was unmapped while the delegation was in
                // flight (tenant churn): bounce to the IOMMU, which
                // releases the forwarding context and routes the
                // request through the fault queue.
                Iommu *iommu = iommu_;
                net_.sendTraced(tile_, net_.topology().cpuTile(),
                                NocMessageBytes::kTranslationResponse,
                                [iommu, req] {
                                    iommu->receiveDelegatedMiss(req);
                                },
                                req.requester, vpn);
                return;
            }
            insertLastLevel(vpn, *pfn, /*remote=*/false,
                            /*prefetched=*/false);

            // Short-circuit: reply straight to the requester...
            Gpm *peer =
                (*gpms_)[static_cast<std::size_t>(req.requester)];
            const Pfn value = *pfn;
            net_.sendTraced(tile_, req.requester,
                            NocMessageBytes::kTranslationResponse,
                            [peer, vpn, value] {
                                peer->receiveTranslationResponse(
                                    vpn, value,
                                    TranslationSource::HomeGmmu);
                            },
                            req.requester, vpn);

            // ...and release the IOMMU's forwarding context.
            Iommu *iommu = iommu_;
            net_.send(tile_, net_.topology().cpuTile(),
                      NocMessageBytes::kTranslationResponse,
                      [iommu, vpn] {
                          iommu->receiveDelegatedResult(vpn);
                      });
        },
        req.requester);
}

} // namespace hdpat
