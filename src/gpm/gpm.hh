/**
 * @file
 * A GPU Processing Module: the compute tile of the wafer (Fig 1(b)).
 *
 * Models, per GPM:
 *  - an issue engine aggregating the CUs (issue width + outstanding
 *    memory-operation window);
 *  - the translation hierarchy: L1 TLB -> shared L2 TLB -> cuckoo
 *    filter -> last-level TLB ("GMMU cache") -> GMMU walkers;
 *  - the remote-translation client implementing the active policy
 *    (baseline IOMMU, route-based / concentric / distributed /
 *    cluster+rotation peer caching, Valkyrie neighbour probing);
 *  - the auxiliary-cache server side: peer probes, redirected
 *    requests, proactive PTE pushes, Trans-FW delegated walks;
 *  - the data side: L2 data cache tag array + local HBM, with remote
 *    accesses riding the mesh to the home GPM's HBM.
 */

#ifndef HDPAT_GPM_GPM_HH
#define HDPAT_GPM_GPM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "gpm/gmmu.hh"
#include "hdpat/cluster_map.hh"
#include "hdpat/concentric_layers.hh"
#include "iommu/iommu.hh"
#include "iommu/messages.hh"
#include "mem/cuckoo_filter.hh"
#include "mem/dram_model.hh"
#include "mem/mshr.hh"
#include "mem/set_assoc_cache.hh"
#include "mem/tlb.hh"
#include "noc/network.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"
#include "workloads/address_stream.hh"

namespace hdpat
{

/** A hit/miss reply to a peer-cache or neighbour-TLB probe. */
struct ProbeReply
{
    Vpn vpn = 0;
    /** Matches the requester's per-VPN protocol epoch. */
    std::uint64_t epoch = 0;
    bool hit = false;
    Pfn pfn = kInvalidPfn;
    /** Classification when hit (peer / proactive / neighbour). */
    TranslationSource source = TranslationSource::PeerCache;
    /** Tile that answered (receives no fill; misses upstream do). */
    TileId responder = kInvalidTile;
};

/** A sequential probe travelling a chain of caching GPMs. */
struct ChainProbe
{
    Vpn vpn = 0;
    TileId requester = kInvalidTile;
    std::uint64_t epoch = 0;
    Tick issuedAt = 0;
    /** Tiles probed so far (they missed; candidates for fills). */
    std::vector<TileId> visited;
    /** Tiles still to probe, front first. */
    std::vector<TileId> remaining;
};

class Gpm : public PeerEndpoint
{
  public:
    struct Stats
    {
        // Issue engine.
        std::uint64_t opsIssued = 0;
        std::uint64_t opsCompleted = 0;

        // Local translation hierarchy.
        std::uint64_t l1TlbHits = 0;
        std::uint64_t l2TlbHits = 0;
        std::uint64_t cuckooNegatives = 0;
        std::uint64_t cuckooFalsePositives = 0;
        std::uint64_t llTlbHits = 0;
        std::uint64_t localWalks = 0;

        // Remote translation client.
        std::uint64_t remoteOps = 0;
        std::uint64_t remoteResolutions = 0;
        std::uint64_t remoteStalls = 0;
        std::array<std::uint64_t, kNumTranslationSources> sourceCounts{};
        SummaryStat remoteRtt;

        // Auxiliary server side.
        std::uint64_t probesReceived = 0;
        std::uint64_t probeHits = 0;
        std::uint64_t pushesReceived = 0;
        std::uint64_t redirectedReceived = 0;
        std::uint64_t redirectedHits = 0;
        std::uint64_t neighborProbesReceived = 0;
        std::uint64_t neighborProbeHits = 0;
        std::uint64_t delegatedWalks = 0;

        // Data side.
        std::uint64_t dataCacheHits = 0;
        std::uint64_t dataLocalAccesses = 0;
        std::uint64_t dataRemoteAccesses = 0;

        // Tenancy (all zero in single-tenant runs).
        /** Installs dropped because the PTE changed mid-flight. */
        std::uint64_t staleInstallsBlocked = 0;
        /** Shootdown invalidations delivered to this tile. */
        std::uint64_t invalidationsReceived = 0;

        Tick finishTick = 0;
        bool finished = false;
    };

    Gpm(TileId tile, Engine &engine, Network &net, GlobalPageTable &pt,
        const SystemConfig &cfg, const TranslationPolicy &pol);

    /** Wire up system-level structures (called once by System). */
    void connect(Iommu *iommu, const ConcentricLayers *layers,
                 const ClusterMap *cluster_map,
                 const DistributedGroups *groups,
                 const std::vector<Gpm *> *gpms_by_tile);

    /** Valkyrie: the neighbour GPM whose L2 TLB this GPM probes. */
    void setNeighborTarget(TileId neighbor) { neighborTile_ = neighbor; }

    /**
     * Pre-populate the cuckoo filter with the VPNs homed on this GPM
     * (the local page table always maps them).
     */
    void seedLocalPages(std::span<const Vpn> vpns);

    /** Assign this GPM's slice of the workload. */
    void setWork(std::unique_ptr<AddressStream> stream);

    /**
     * Address space newly issued ops translate under (tenancy). Ops
     * already in flight keep the key they bound at issue time, so a
     * context switch never re-tags live requests. ASID 0 (the default)
     * tags keys to the identity.
     */
    void setActiveAsid(Asid asid) { activeAsid_ = asid; }
    Asid activeAsid() const { return activeAsid_; }

    /**
     * Override the issue engine for the loaded workload.
     *
     * @param ops_per_cycle Aggregate memory-op issue rate (compute
     *        intensity); <= 0 keeps the SystemConfig issue width.
     * @param max_outstanding Outstanding-op window; <= 0 keeps the
     *        SystemConfig default.
     */
    void setIssueParams(double ops_per_cycle, int max_outstanding);

    /** Callback fired once when this GPM drains its work. */
    void setOnFinished(std::function<void(TileId)> cb);

    /** Begin issuing (schedules the first issue event). */
    void start();

    /**
     * TLB shootdown of one page (§II-A: only needed when freeing
     * memory): drops every cached copy from the local hierarchy and
     * keeps the cuckoo filter consistent.
     * @return Number of TLB entries invalidated.
     */
    std::size_t shootdown(Vpn vpn);

    /**
     * Async shootdown protocol: an invalidation packet arrived over
     * the NoC (the controller sends the ack once this returns).
     */
    std::size_t receiveInvalidate(Vpn vpn)
    {
        ++stats_.invalidationsReceived;
        return shootdown(vpn);
    }

    /**
     * End-of-run staleness sweep (tenancy oracle): every translation
     * still resident in this GPM's TLBs must match the page table; an
     * entry that survived its page's shootdown is reported to
     * @p auditor as a violation.
     */
    void sweepResidentTranslations(Auditor &auditor) const;

    /**
     * Per-request span tracer (null = off). Forwarded to the GMMU;
     * sampled issue events open spans, every later stage records
     * against them.
     */
    void setTracer(Tracer *tracer);

    /**
     * Conservation auditor (null = off): audits op issue/retire, MSHR
     * alloc/free, and last-level TLB fill/evict balance, and registers
     * this GPM's queues as end-of-run drain probes.
     */
    void setAuditor(Auditor *auditor);

    /** Host self-profiler for the translation path (null = off). */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Register this GPM's bounded structures with the backpressure
     * collector (remote + local-walk MSHRs, stalled-remote queue,
     * LL-TLB residency, GMMU walk queue + walker pool).
     */
    void setBackpressure(BackpressureCollector &bp);

    /** Register this GPM's metrics under @p prefix (e.g. "gpm.t3."). */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Register the tenancy-only counters. Split from registerMetrics
     * so single-tenant metric dumps stay byte-identical.
     */
    void registerTenancyMetrics(MetricRegistry &reg,
                                const std::string &prefix) const;

    TileId tile() const { return tile_; }
    bool finished() const { return stats_.finished; }
    Tick finishTick() const { return stats_.finishTick; }
    /** Memory ops currently in flight (issued, not yet completed). */
    int outstandingOps() const { return outstanding_; }
    const Stats &stats() const { return stats_; }

    DramModel &dram() { return dram_; }
    const Tlb &l2Tlb() const { return l2Tlb_; }
    const Tlb &lastLevelTlb() const { return llTlb_; }
    const CuckooFilter &cuckooFilter() const { return cuckoo_; }
    const Gmmu &gmmu() const { return gmmu_; }

    // ---- PeerEndpoint (messages from the IOMMU) ----------------------
    void receivePtePush(Vpn vpn, Pfn pfn, bool prefetched) override;
    void receiveRedirectedRequest(const RemoteRequest &req) override;
    void receiveTranslationResponse(Vpn vpn, Pfn pfn,
                                    TranslationSource source) override;
    void receiveDelegatedWalk(const RemoteRequest &req) override;

    // ---- Peer-to-peer handlers ---------------------------------------
    /** Concurrent cluster+rotation probe (§IV-D). */
    void receiveProbe(Vpn vpn, TileId requester, std::uint64_t epoch);
    /** Sequential chain probe (route-based / concentric / distributed). */
    void receiveChainProbe(ChainProbe probe);
    /** Valkyrie neighbour L2-TLB probe. */
    void receiveNeighborProbe(Vpn vpn, TileId requester,
                              std::uint64_t epoch);
    /** Reply to any probe this GPM sent. */
    void receiveProbeReply(const ProbeReply &reply);

  private:
    /** Remote-resolution protocol state for one in-flight VPN. */
    struct RemoteCtx
    {
        Tick startTick = 0;
        std::uint64_t epoch = 0;
        int probesOutstanding = 0;
        bool resolved = false;
        bool sentToIommu = false;
        /** Chain tiles eligible for a fill push on resolution. */
        std::vector<TileId> fillTargets;
    };

    // ---- Issue engine (gpm.cc) ---------------------------------------
    void tryIssue();
    void beginOp(Addr va, Vpn key);
    void completeOpAt(Tick when, Vpn vpn);
    /** The retire body (runs at the completion tick's event). */
    void completeOpNow(Vpn vpn);
    void checkFinished();

    /** Translation key (ASID-tagged VPN) an op issued now binds to. */
    Vpn keyOf(Addr va) const
    {
        return asidKey(activeAsid_, pt_.vpnOf(va));
    }

    /** Record a span event against this GPM's own span for @p vpn. */
    void trace(Vpn vpn, SpanEvent ev, std::uint64_t arg = 0)
    {
        if (tracer_) [[unlikely]]
            tracer_->record(tile_, vpn, engine_.now(), ev, tile_, arg);
    }

    // ---- Local translation path (gpm.cc) -----------------------------
    void translate(Addr va, Vpn key);
    void onLocalWalkDone(Addr va, Vpn vpn, std::optional<Pfn> pfn);
    void fillLocalHierarchy(Vpn vpn, Pfn pfn, bool remote);
    void insertLastLevel(Vpn vpn, Pfn pfn, bool remote, bool prefetched);

    /**
     * Install-time revalidation gate (tenancy): once any page was ever
     * unmapped, a resolution may only be cached if the page table
     * still maps @p vpn to @p pfn -- an in-flight walk that sampled a
     * PTE before an unmap must not re-install it after the shootdown.
     * Free when no unmap ever happened (the single-tenant fast path).
     */
    bool installAllowed(Vpn vpn, Pfn pfn);

    // ---- Data path (gpm.cc) ------------------------------------------
    void dataAccess(Addr va, Vpn key, Tick when);
    void dataAccessNow(Addr va, Vpn key);

    // ---- Remote client (translation_client.cc) -----------------------
    void startRemote(Addr va, Vpn key, Tick when);
    void launchRemoteProtocol(Vpn vpn);
    void launchClusterProbes(Vpn vpn, RemoteCtx &ctx);
    void launchChain(Vpn vpn, RemoteCtx &ctx, std::vector<TileId> chain,
                     bool fill_on_resolve = true);
    void launchNeighborProbe(Vpn vpn, RemoteCtx &ctx);
    void sendToIommu(Vpn vpn, Tick issued_at);
    void resolveRemote(Vpn vpn, Pfn pfn, TranslationSource source);
    void retryStalledRemote();

    /** Chain construction helpers. */
    std::vector<TileId> buildRouteChain() const;
    std::vector<TileId> buildConcentricChain() const;
    TileId nearestInLayerExcluding(int layer, TileId from,
                                   TileId exclude) const;

    /** Probe service shared by receiveProbe/receiveChainProbe. */
    void probeLookup(
        Vpn vpn,
        const std::function<void(Tick extra_latency, bool hit, Pfn pfn,
                                 bool prefetched)> &done,
        TileId trace_owner = kInvalidTile);

    void replyProbe(TileId to, const ProbeReply &reply,
                    Tick extra_latency);

    // ---- Members -------------------------------------------------------
    TileId tile_;
    Engine &engine_;
    Network &net_;
    GlobalPageTable &pt_;
    const SystemConfig &cfg_;
    TranslationPolicy pol_;

    Iommu *iommu_ = nullptr;
    Tracer *tracer_ = nullptr;
    Auditor *auditor_ = nullptr;
    Profiler *profiler_ = nullptr;
    const ConcentricLayers *layers_ = nullptr;
    const ClusterMap *clusterMap_ = nullptr;
    const DistributedGroups *groups_ = nullptr;
    const std::vector<Gpm *> *gpms_ = nullptr;
    TileId neighborTile_ = kInvalidTile;

    // Translation hierarchy.
    Tlb l1Tlb_;
    Tlb l2Tlb_;
    CuckooFilter cuckoo_;
    Tlb llTlb_;
    Gmmu gmmu_;

    // Data side.
    SetAssocCache dataCache_;
    DramModel dram_;

    /** Coalesces concurrent local walks of the same VPN (unbounded). */
    MshrFile localWalkMshr_{0};

    /** An op waiting for a free remote MSHR, with its issue-time key. */
    struct StalledOp
    {
        Addr va = 0;
        Vpn key = 0;
    };

    // Remote client state.
    MshrFile remoteMshr_;
    std::unordered_map<Vpn, RemoteCtx> remoteCtx_;
    std::deque<StalledOp> stalledRemote_;
    std::uint64_t epochCounter_ = 0;

    /** Address space newly issued ops bind to (0 = identity). */
    Asid activeAsid_ = 0;

    // Backpressure resources (null = off); the MSHR files report
    // through their own pressure hooks instead.
    Resource *bpStalledRemote_ = nullptr;
    Resource *bpLlTlb_ = nullptr;

    // Issue engine state.
    std::unique_ptr<AddressStream> stream_;
    bool streamDone_ = false;
    int outstanding_ = 0;
    /** Memory-op issue rate (ops/cycle) and window for this run. */
    double issueRate_;
    int issueWindow_;
    /** Fractional time the next op may issue at. */
    double nextIssueTime_ = 0.0;
    bool issueScheduled_ = false;
    /**
     * Scratch for tryIssue()'s gather phase: the cycle's issuable VAs
     * and their VPNs, batched so the L1 TLB sets can be prefetched
     * (Tlb::probeMany) before the ops translate one by one. Members
     * (not locals) so steady-state issue never allocates.
     */
    std::vector<Addr> issueBatch_;
    std::vector<Vpn> issueVpns_;
    std::function<void(TileId)> onFinished_;

    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_GPM_GPM_HH
