/**
 * @file
 * The per-GPM GMMU: a pool of page-table walkers over the GPM's local
 * page table (Table I: 8 shared walkers, 100 x 5 = 500 cycles). Serves
 * the GPM's own local translations, cuckoo-filter false positives,
 * peer-probe spills, and Trans-FW delegated walks.
 */

#ifndef HDPAT_GPM_GMMU_HH
#define HDPAT_GPM_GMMU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "mem/page_table.hh"
#include "mem/page_walk_cache.hh"
#include "obs/backpressure.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hdpat
{

class Gmmu
{
  public:
    /** Walk result: PFN when the page is homed locally, else nullopt. */
    using WalkCallback = std::function<void(Vpn, std::optional<Pfn>)>;

    struct Stats
    {
        std::uint64_t walksRequested = 0;
        std::uint64_t walksCompleted = 0;
        std::uint64_t localHits = 0;
        std::uint64_t misses = 0;
        SummaryStat queueWait;
    };

    /**
     * @param pwc_entries Page-walk-cache entries per level (0 = off;
     *        when on, walk latency shrinks by 100 cycles per cached
     *        upper level).
     */
    Gmmu(Engine &engine, const GlobalPageTable &pt, TileId self,
         std::size_t walkers, Tick walk_latency,
         std::size_t pwc_entries = 0);

    /**
     * Queue a walk of @p vpn; @p cb fires at completion. When a span
     * is live for (@p trace_owner, vpn) the walk's start/done events
     * are recorded against it.
     */
    void requestWalk(Vpn vpn, WalkCallback cb,
                     TileId trace_owner = kInvalidTile);

    /** Per-request span tracer (null = off). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Backpressure resources (null = off): the walk queue and the
     * walker pool (occupancy = busy walkers).
     */
    void setBackpressure(Resource *queue, Resource *walkers)
    {
        bpQueue_ = queue;
        bpWalkers_ = walkers;
    }

    /** Register GMMU metrics under @p prefix (e.g. "gpm.t3.gmmu."). */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

    std::size_t queueDepth() const { return queue_.size(); }
    const Stats &stats() const { return stats_; }
    const PageWalkCache &pwc() const { return pwc_; }

  private:
    struct Pending
    {
        Vpn vpn;
        WalkCallback cb;
        Tick enqueued;
        TileId traceOwner = kInvalidTile;
    };

    void tryStart();

    Engine &engine_;
    const GlobalPageTable &pt_;
    TileId self_;
    std::size_t freeWalkers_;
    Tick walkLatency_;
    PageWalkCache pwc_;
    Tracer *tracer_ = nullptr;
    Resource *bpQueue_ = nullptr;
    Resource *bpWalkers_ = nullptr;
    std::deque<Pending> queue_;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_GPM_GMMU_HH
