/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef HDPAT_SIM_TYPES_HH
#define HDPAT_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace hdpat
{

/** Simulation time, measured in GPU core cycles (1 GHz in Table I). */
using Tick = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** Virtual page number (virtual address >> page shift). */
using Vpn = std::uint64_t;

/** Physical frame number. */
using Pfn = std::uint64_t;

/** Identifier of a tile (GPM or CPU) on the wafer. */
using TileId = int;

/** Sentinel for "no tick" / "never". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid tile. */
constexpr TileId kInvalidTile = -1;

/** Sentinel for an invalid PFN (page not mapped). */
constexpr Pfn kInvalidPfn = std::numeric_limits<Pfn>::max();

} // namespace hdpat

#endif // HDPAT_SIM_TYPES_HH
