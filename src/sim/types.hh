/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef HDPAT_SIM_TYPES_HH
#define HDPAT_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace hdpat
{

/** Simulation time, measured in GPU core cycles (1 GHz in Table I). */
using Tick = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** Virtual page number (virtual address >> page shift). */
using Vpn = std::uint64_t;

/** Physical frame number. */
using Pfn = std::uint64_t;

/** Identifier of a tile (GPM or CPU) on the wafer. */
using TileId = int;

/** Address-space identifier (tenant) multiplexed onto the wafer. */
using Asid = std::uint32_t;

/**
 * ASID tags live in the upper bits of every VPN-keyed structure's
 * 64-bit key lane, CAM-style: a lookup matches only when both the
 * ASID field and the VPN field match. Raw VPNs stay far below
 * 2^kAsidShift (wafer footprints are tens of GiB), so the fields
 * never collide, and ASID 0 tags to the identity -- a single-tenant
 * run's keys are bit-identical to the untagged VPNs.
 */
constexpr unsigned kAsidShift = 40;

/** Compose the tagged key for (@p asid, @p vpn). */
constexpr Vpn
asidKey(Asid asid, Vpn vpn)
{
    return (static_cast<Vpn>(asid) << kAsidShift) | vpn;
}

/** ASID field of a tagged key. */
constexpr Asid
asidOfKey(Vpn key)
{
    return static_cast<Asid>(key >> kAsidShift);
}

/** Raw VPN field of a tagged key. */
constexpr Vpn
vpnOfKey(Vpn key)
{
    return key & ((Vpn{1} << kAsidShift) - 1);
}

/** Sentinel for "no tick" / "never". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid tile. */
constexpr TileId kInvalidTile = -1;

/** Sentinel for an invalid PFN (page not mapped). */
constexpr Pfn kInvalidPfn = std::numeric_limits<Pfn>::max();

} // namespace hdpat

#endif // HDPAT_SIM_TYPES_HH
