#include "sim/engine.hh"

#include <utility>

// Header-only use (ProfScope): no hdpat_obs link dependency.
#include "obs/profiler.hh"
#include "sim/log.hh"

namespace hdpat
{

Engine::Engine()
{
    // The most recently constructed engine stamps log lines; with one
    // engine per simulated system this is "the" engine in practice.
    setActiveLogEngine(this);
}

Engine::~Engine()
{
    clearActiveLogEngine(this);
}

void
Engine::scheduleAt(Tick when, EventFn fn)
{
    if (domains_) [[unlikely]] {
        hdpat_panic_if(when < domains_->now(),
                       "scheduling into the past: when="
                           << when << " now=" << domains_->now());
        domains_->scheduleAt(when, std::move(fn));
        return;
    }
    hdpat_panic_if(when < now_,
                   "scheduling into the past: when=" << when
                       << " now=" << now_);
    queue_.schedule(when, std::move(fn));
}

bool
Engine::step()
{
    hdpat_panic_if(domains_,
                   "step() on a domain-parallel engine (use run())");
    if (queue_.empty())
        return false;
    Tick when = 0;
    EventFn fn = queue_.pop(when);
    now_ = when;
    ++executed_;
    {
        const ProfScope prof(profiler_, ProfSection::EventDispatch);
        fn();
    }
    return true;
}

void
Engine::run()
{
    if (domains_) [[unlikely]] {
        domains_->run();
        return;
    }
    while (step()) {
    }
}

void
Engine::runUntil(Tick limit)
{
    while (!queue_.empty() && queue_.nextTick() <= limit)
        step();
    if (now_ < limit)
        now_ = limit;
}

void
Engine::reset()
{
    queue_.clear();
    now_ = 0;
    executed_ = 0;
    observersPending_ = 0;
    observersExecuted_ = 0;
}

} // namespace hdpat
