/**
 * @file
 * Single-producer / single-consumer lock-free ring, the handoff
 * channel between a domain worker and the barrier sequencer in the
 * domain-parallel scheduler (sim/domains.hh).
 *
 * One producer thread pushes, one consumer thread pops; no locks, no
 * allocation after construction. The protocol is the classic bounded
 * ring with monotonic head/tail counters: the producer writes the
 * element, then publishes it with a release store of tail; the
 * consumer acquires tail, reads elements, and releases head. Each
 * index is written by exactly one side, so the only synchronization
 * points are the two atomic counters.
 *
 * Capacity is fixed (a power of two). push() returns false when the
 * ring is full instead of blocking: the domain scheduler's producer
 * must never spin on a full ring while the consumer is itself blocked
 * at the window barrier, so on the first refusal it diverts the rest
 * of the window's records to a private spill vector and the consumer
 * drains ring-then-spill, preserving per-producer order.
 */

#ifndef HDPAT_SIM_SPSC_RING_HH
#define HDPAT_SIM_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace hdpat
{

template <typename T>
class SpscRing
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ring elements are copied without construction "
                  "protocol; keep them trivially copyable");

  public:
    explicit SpscRing(std::size_t capacity_pow2)
        : buf_(capacity_pow2), mask_(capacity_pow2 - 1)
    {
        static_assert(alignof(std::atomic<std::size_t>) <= 64, "");
    }

    /** Producer side. False = full (caller spills; never blocks). */
    bool push(const T &v)
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        const std::size_t head =
            head_.load(std::memory_order_acquire);
        if (tail - head > mask_)
            return false;
        buf_[tail & mask_] = v;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. False = empty. */
    bool pop(T &out)
    {
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        const std::size_t tail =
            tail_.load(std::memory_order_acquire);
        if (head == tail)
            return false;
        out = buf_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: drain everything currently published. */
    void drainTo(std::vector<T> &out)
    {
        T v;
        while (pop(v))
            out.push_back(v);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> buf_;
    const std::size_t mask_;
    // Separate cache lines so producer and consumer counters never
    // false-share.
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace hdpat

#endif // HDPAT_SIM_SPSC_RING_HH
