#include "sim/domains.hh"

#include <barrier>
#include <thread>
#include <utility>

// Header-only use (ProfScope): no hdpat_obs link dependency.
#include "obs/profiler.hh"
#include "sim/log.hh"

namespace hdpat
{

thread_local DomainSet::DomainCtx *DomainSet::tlsCtx_ = nullptr;

DomainSet::DomainSet(Config cfg) : cfg_(std::move(cfg))
{
    hdpat_panic_if(cfg_.count < 2,
                   "DomainSet requires >= 2 domains (K=1 is the "
                   "serial path)");
    hdpat_panic_if(cfg_.lookahead == 0,
                   "conservative windows need lookahead >= 1");
    domains_.reserve(cfg_.count);
    for (unsigned d = 0; d < cfg_.count; ++d)
        domains_.push_back(
            std::make_unique<DomainCtx>(d, cfg_.queueImpl));
}

DomainSet::~DomainSet() = default;

Profiler *
DomainSet::workerProfiler()
{
    return tlsCtx_ ? tlsCtx_->profiler : nullptr;
}

void
DomainSet::setWorkerProfiler(unsigned domain, Profiler *profiler)
{
    domains_[domain]->profiler = profiler;
}

Tick
DomainSet::now() const
{
    return tlsCtx_ ? tlsCtx_->now : seqNow_;
}

DomainSet::ScopedTarget::ScopedTarget(DomainSet *set, unsigned domain)
{
    if (!set || onWorker())
        return;
    set_ = set;
    prev_ = set->seqTarget_;
    set->seqTarget_ = domain;
}

DomainSet::ScopedTarget::~ScopedTarget()
{
    if (set_)
        set_->seqTarget_ = prev_;
}

void
DomainSet::bumpPending()
{
    if (++pending_ > pendingHwm_)
        pendingHwm_ = pending_;
}

void
DomainSet::sequencerSchedule(Tick when, EventFn fn, unsigned target)
{
    const std::uint64_t seq = globalSeq_++;
    domains_[target]->queue.schedule(when, std::move(fn), seq);
    bumpPending();
}

void
DomainSet::scheduleAt(Tick when, EventFn fn)
{
    DomainCtx *ctx = tlsCtx_;
    if (!ctx) {
        sequencerSchedule(when, std::move(fn), seqTarget_);
        return;
    }
    if (when < windowEnd_) {
        // Executes before this window's barrier: run live under a
        // provisional tag; the merge assigns the serial seq.
        const std::uint64_t tag = kProvBit | ctx->provCtr++;
        ctx->queue.schedule(when, std::move(fn), tag);
        Record r;
        r.kind = Record::Kind::InWindow;
        r.when = when;
        r.tag = tag;
        logRecord(*ctx, r);
        return;
    }
    // At or beyond the window end: stage for barrier insertion.
    Record r;
    r.kind = Record::Kind::Sched;
    r.when = when;
    r.fnSlot = static_cast<std::uint32_t>(ctx->stagedFns.size());
    ctx->stagedFns.push_back(std::move(fn));
    logRecord(*ctx, r);
}

void
DomainSet::recordSend(TileId src, TileId dst, std::uint32_t bytes,
                      EventFn on_arrive)
{
    DomainCtx &ctx = *tlsCtx_;
    Record r;
    r.kind = Record::Kind::Send;
    r.when = ctx.now;
    r.fnSlot = static_cast<std::uint32_t>(ctx.stagedFns.size());
    r.src = src;
    r.dst = dst;
    r.bytes = bytes;
    ctx.stagedFns.push_back(std::move(on_arrive));
    logRecord(ctx, r);
}

void
DomainSet::recordHop(TileId src, TileId dst, std::uint32_t bytes,
                     EventFn at_arrive)
{
    DomainCtx &ctx = *tlsCtx_;
    Record r;
    r.kind = Record::Kind::Hop;
    r.when = ctx.now;
    r.fnSlot = static_cast<std::uint32_t>(ctx.stagedFns.size());
    r.src = src;
    r.dst = dst;
    r.bytes = bytes;
    ctx.stagedFns.push_back(std::move(at_arrive));
    logRecord(ctx, r);
}

void
DomainSet::addLocalPacket(std::uint64_t bytes)
{
    DomainCtx &ctx = *tlsCtx_;
    ++ctx.localPackets;
    ctx.localBytes += bytes;
}

std::uint64_t
DomainSet::localPackets() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->localPackets;
    return n;
}

std::uint64_t
DomainSet::localBytes() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->localBytes;
    return n;
}

void
DomainSet::logRecord(DomainCtx &ctx, const Record &r)
{
    // Once the ring refuses, stay in the spill for the rest of the
    // window: the consumer reads ring-then-spill, so mixing after a
    // refusal would reorder the log.
    if (!ctx.spilling && ctx.ring.push(r))
        return;
    ctx.spilling = true;
    ctx.spill.push_back(r);
}

void
DomainSet::runWindow(DomainCtx &ctx)
{
    tlsCtx_ = &ctx;
    const Tick window_end = windowEnd_;
    while (ctx.queue.nextTick() < window_end) {
        Tick when = 0;
        std::uint64_t tag = 0;
        EventFn fn = ctx.queue.pop(when, tag);
        ctx.now = when;
        Record r;
        r.kind = Record::Kind::Pop;
        r.when = when;
        r.tag = tag;
        logRecord(ctx, r);
        {
            const ProfScope prof(ctx.profiler,
                                 ProfSection::EventDispatch);
            fn();
        }
    }
    tlsCtx_ = nullptr;
}

std::uint64_t
DomainSet::resolveTag(const DomainCtx &ctx, std::uint64_t tag) const
{
    if (!(tag & kProvBit))
        return tag;
    const auto it = ctx.provSeq.find(tag);
    hdpat_panic_if(it == ctx.provSeq.end(),
                   "unresolved provisional tag in domain merge");
    return it->second;
}

void
DomainSet::advanceWindow()
{
    Tick next = kTickNever;
    for (const auto &d : domains_) {
        const Tick t = d->queue.nextTick();
        if (t < next)
            next = t;
    }
    if (next == kTickNever) {
        done_ = true;
        return;
    }
    windowStart_ = next;
    windowEnd_ = next + cfg_.lookahead;
}

void
DomainSet::mergeWindow()
{
    // Collect each domain's window log: the ring portion first, then
    // the spill, preserving per-domain record order.
    for (auto &dp : domains_) {
        DomainCtx &d = *dp;
        d.log.clear();
        d.ring.drainTo(d.log);
        d.log.insert(d.log.end(), d.spill.begin(), d.spill.end());
        d.spill.clear();
        d.spilling = false;
        d.cursor = 0;
        d.provSeq.clear();
    }

    // K-way merge of the pop groups by (tick, serial seq). Each log is
    // a sorted run of the serial pop order; a head's provisional tag is
    // always resolvable because the schedule that created it was
    // replayed in an earlier group of the same log.
    for (;;) {
        DomainCtx *best = nullptr;
        Tick best_when = 0;
        std::uint64_t best_seq = 0;
        for (auto &dp : domains_) {
            DomainCtx &d = *dp;
            if (d.cursor >= d.log.size())
                continue;
            const Record &head = d.log[d.cursor];
            hdpat_panic_if(head.kind != Record::Kind::Pop,
                           "domain log group does not start with a "
                           "pop record");
            const std::uint64_t seq = resolveTag(d, head.tag);
            if (!best || head.when < best_when ||
                (head.when == best_when && seq < best_seq)) {
                best = &d;
                best_when = head.when;
                best_seq = seq;
            }
        }
        if (!best)
            break;

        DomainCtx &d = *best;
        ++d.cursor; // Consume the Pop record.
        seqNow_ = best_when;
        ++executed_;
        --pending_;

        // Replay the pop's scheduling actions in execution order; this
        // reproduces the serial engine's seq numbering, its
        // pending-count trajectory, and (via the Network replay hooks)
        // the serial link-state evolution.
        while (d.cursor < d.log.size() &&
               d.log[d.cursor].kind != Record::Kind::Pop) {
            const Record &r = d.log[d.cursor++];
            switch (r.kind) {
              case Record::Kind::InWindow:
                d.provSeq.emplace(r.tag, globalSeq_++);
                bumpPending();
                break;
              case Record::Kind::Sched:
                sequencerSchedule(r.when,
                                  std::move(d.stagedFns[r.fnSlot]),
                                  d.idx);
                break;
              case Record::Kind::Send:
                sendReplay_(r.when, r.src, r.dst, r.bytes,
                            std::move(d.stagedFns[r.fnSlot]));
                break;
              case Record::Kind::Hop:
                hopReplay_(r.when, r.src, r.dst, r.bytes,
                           std::move(d.stagedFns[r.fnSlot]));
                break;
              case Record::Kind::Pop:
                break; // Unreachable (loop condition).
            }
        }
    }

    for (auto &dp : domains_)
        dp->stagedFns.clear();

    advanceWindow();
    if (barrierHook_)
        barrierHook_(done_ ? seqNow_ : windowStart_);
}

void
DomainSet::run()
{
    hdpat_panic_if(!sendReplay_ || !hopReplay_,
                   "DomainSet::run without Network replay hooks");
    advanceWindow();
    if (done_)
        return;

    std::barrier bar(static_cast<std::ptrdiff_t>(cfg_.count));
    std::vector<std::thread> workers;
    workers.reserve(cfg_.count - 1);
    for (unsigned d = 1; d < cfg_.count; ++d) {
        workers.emplace_back([this, &bar, d] {
            DomainCtx &ctx = *domains_[d];
            for (;;) {
                runWindow(ctx);
                bar.arrive_and_wait();
                // Sequencer merge runs on the main thread here.
                bar.arrive_and_wait();
                if (done_)
                    return;
            }
        });
    }

    // The main thread doubles as domain 0's worker and, between the
    // two barrier phases, as the sequencer.
    DomainCtx &ctx0 = *domains_[0];
    for (;;) {
        runWindow(ctx0);
        bar.arrive_and_wait();
        mergeWindow();
        bar.arrive_and_wait();
        if (done_)
            break;
    }
    for (std::thread &t : workers)
        t.join();
}

} // namespace hdpat
