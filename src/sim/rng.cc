#include "sim/rng.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace hdpat
{

namespace
{

/** splitmix64 step, used to expand a single seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
    // Guard against the all-zero state, which xoshiro cannot escape.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    hdpat_panic_if(bound == 0, "uniformInt with bound 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    while (true) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    hdpat_panic_if(lo > hi, "uniformRange with lo > hi");
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformDouble() < p;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
{
    hdpat_panic_if(n == 0, "ZipfSampler over an empty domain");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        cdf_[i] = acc;
    }
    const double total = acc;
    for (auto &v : cdf_)
        v /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniformDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace hdpat
