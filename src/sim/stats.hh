/**
 * @file
 * Lightweight statistics primitives used by every simulated component:
 * scalar summaries, power-of-two histograms, and windowed time series.
 *
 * These deliberately avoid any global registry; each component owns its
 * stats struct and the driver aggregates them into a RunResult.
 */

#ifndef HDPAT_SIM_STATS_HH
#define HDPAT_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/**
 * Running summary of a stream of samples: count, sum, min, max, mean,
 * and standard deviation.
 *
 * Variance comes from the sum of squares (E[x^2] - E[x]^2) rather than
 * Welford's recurrence: add() runs on hot paths (one call per link
 * traversal), and the fused multiply-add is far cheaper than Welford's
 * per-sample division. The simulator's sample magnitudes (ticks, queue
 * depths) are far from the cancellation regime where Welford's extra
 * stability would matter, and merge() stays exact (sums just add).
 */
class SummaryStat
{
  public:
    void add(double value);
    void merge(const SummaryStat &other);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance (0 with fewer than two samples). */
    double variance() const;
    /** Population standard deviation (0 with fewer than two samples). */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sumSquares_ = 0.0;
};

/**
 * Histogram with power-of-two buckets.
 *
 * Bucket 0 counts value 0; bucket i (i >= 1) counts values in
 * [2^(i-1), 2^i). This is a good fit for reuse distances and latency
 * distributions that span many orders of magnitude.
 */
class Log2Histogram
{
  public:
    void add(std::uint64_t value, std::uint64_t weight = 1);
    void merge(const Log2Histogram &other);

    std::uint64_t totalCount() const { return total_; }

    /** Number of populated buckets (highest bucket index + 1). */
    std::size_t bucketCount() const { return buckets_.size(); }

    /** Count in bucket @p idx (0 beyond the populated range). */
    std::uint64_t bucket(std::size_t idx) const;

    /** Lower bound of bucket @p idx (0, 1, 2, 4, 8, ...). */
    static std::uint64_t bucketLow(std::size_t idx);

    /** Inclusive upper bound of bucket @p idx. */
    static std::uint64_t bucketHigh(std::size_t idx);

    /** Fraction of samples with value <= @p value (bucket resolution). */
    double fractionAtOrBelow(std::uint64_t value) const;

    /** Approximate quantile (bucket upper bound), q in [0, 1]. */
    std::uint64_t quantile(double q) const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Time series with fixed-width windows over simulated time.
 *
 * Each window records the sum, sample count, and max of values added
 * within it — enough to plot "requests served per window" (Fig 13) and
 * "peak queue depth per window" (Fig 4).
 */
class TimeSeries
{
  public:
    /** @param window_ticks Width of one aggregation window (> 0). */
    explicit TimeSeries(Tick window_ticks = 100000);

    void add(Tick when, double value);

    Tick windowTicks() const { return window_; }
    std::size_t windows() const { return sums_.size(); }

    double windowSum(std::size_t idx) const;
    double windowMax(std::size_t idx) const;
    std::uint64_t windowCount(std::size_t idx) const;
    double windowMean(std::size_t idx) const;

  private:
    Tick window_;
    std::vector<double> sums_;
    std::vector<double> maxima_;
    std::vector<std::uint64_t> counts_;
};

/** Geometric mean of a vector of positive values (1.0 when empty). */
double geomean(const std::vector<double> &values);

} // namespace hdpat

#endif // HDPAT_SIM_STATS_HH
