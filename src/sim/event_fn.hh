/**
 * @file
 * EventFn: the callback type stored in the event queue.
 *
 * A move-only callable with fixed inline storage and *no heap
 * fallback*: constructing an EventFn from a lambda placement-news the
 * capture into the object itself, so scheduling an event never
 * allocates. std::function (the previous storage type) spills any
 * capture larger than its small-buffer (16 bytes on libstdc++) to the
 * heap, which put a malloc/free pair on the hot path of nearly every
 * scheduled event.
 *
 * Oversized captures are a compile error (static_assert in the
 * converting constructor), not a silent heap spill: the capacity is
 * sized for the largest lambda the simulator schedules, and anything
 * bigger should move its payload behind a pointer or shrink.
 */

#ifndef HDPAT_SIM_EVENT_FN_HH
#define HDPAT_SIM_EVENT_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hdpat
{

class EventFn
{
  public:
    /**
     * Inline capture storage in bytes. The largest scheduled capture
     * today is the chain-probe forwarding lambda in
     * translation_client.cc (~112 bytes: this + tile ids + a ChainProbe
     * with two inline std::vectors); 120 leaves a little headroom while
     * keeping sizeof(EventFn) at two cache lines.
     */
    static constexpr std::size_t kCapacity = 120;

    EventFn() = default;
    EventFn(std::nullptr_t) {}

    /** Store @p fn inline. Fails to compile if the capture is too big. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kCapacity,
                      "event callback capture exceeds EventFn::kCapacity; "
                      "shrink the capture (move bulky state behind a "
                      "pointer) or raise the capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event callback");
        // Relocation happens inside noexcept move operations, so a
        // throwing callback move would terminate. That is acceptable:
        // every scheduled capture is pointers, PODs, std::function, or
        // std::vector, whose moves never actually throw. (GCC 12
        // reports closures that capture a std::function by copy as not
        // nothrow-movable, so the strict trait cannot be asserted.)
        static_assert(std::is_move_constructible_v<Fn>,
                      "event callbacks must be movable (the event heap "
                      "relocates them)");
        ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
        ops_ = &kOps<Fn>;
    }

    EventFn(EventFn &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    EventFn &operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            if (ops_)
                ops_->destroy(storage_);
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(storage_, other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn()
    {
        if (ops_)
            ops_->destroy(storage_);
    }

    void operator()() { ops_->invoke(storage_); }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct *dst from *src, then destroy *src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static constexpr Ops kOps{
        [](void *self) { (*static_cast<Fn *>(self))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *self) { static_cast<Fn *>(self)->~Fn(); },
    };

    alignas(std::max_align_t) unsigned char storage_[kCapacity];
    const Ops *ops_ = nullptr;
};

} // namespace hdpat

#endif // HDPAT_SIM_EVENT_FN_HH
