#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/log.hh"

namespace hdpat
{

void
SummaryStat::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    sumSquares_ += value * value;
}

void
SummaryStat::merge(const SummaryStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sumSquares_ += other.sumSquares_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
SummaryStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double m = sum_ / n;
    // Rounding can push E[x^2] - E[x]^2 fractionally negative.
    return std::max(0.0, sumSquares_ / n - m * m);
}

double
SummaryStat::stddev() const
{
    return std::sqrt(variance());
}

void
SummaryStat::reset()
{
    *this = SummaryStat();
}

namespace
{

std::size_t
bucketIndexOf(std::uint64_t value)
{
    if (value == 0)
        return 0;
    return static_cast<std::size_t>(std::bit_width(value));
}

} // namespace

void
Log2Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    const std::size_t idx = bucketIndexOf(value);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1, 0);
    buckets_[idx] += weight;
    total_ += weight;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

std::uint64_t
Log2Histogram::bucket(std::size_t idx) const
{
    return idx < buckets_.size() ? buckets_[idx] : 0;
}

std::uint64_t
Log2Histogram::bucketLow(std::size_t idx)
{
    if (idx == 0)
        return 0;
    return std::uint64_t(1) << (idx - 1);
}

std::uint64_t
Log2Histogram::bucketHigh(std::size_t idx)
{
    if (idx == 0)
        return 0;
    return (std::uint64_t(1) << idx) - 1;
}

double
Log2Histogram::fractionAtOrBelow(std::uint64_t value) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (bucketHigh(i) <= value) {
            acc += buckets_[i];
        } else if (bucketLow(i) <= value) {
            // Partial bucket: assume a uniform spread inside the bucket.
            const double span = static_cast<double>(bucketHigh(i) -
                                                    bucketLow(i) + 1);
            const double covered =
                static_cast<double>(value - bucketLow(i) + 1);
            acc += static_cast<std::uint64_t>(
                std::llround(buckets_[i] * covered / span));
        }
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::uint64_t
Log2Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double acc = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        acc += static_cast<double>(buckets_[i]);
        // Only stop at populated buckets so q=0 reports the first
        // bucket that actually holds samples.
        if (buckets_[i] > 0 && acc >= target)
            return bucketHigh(i);
    }
    return bucketHigh(buckets_.size() - 1);
}

TimeSeries::TimeSeries(Tick window_ticks) : window_(window_ticks)
{
    hdpat_panic_if(window_ == 0, "TimeSeries window must be > 0");
}

void
TimeSeries::add(Tick when, double value)
{
    const std::size_t idx = static_cast<std::size_t>(when / window_);
    if (idx >= sums_.size()) {
        sums_.resize(idx + 1, 0.0);
        maxima_.resize(idx + 1, 0.0);
        counts_.resize(idx + 1, 0);
    }
    sums_[idx] += value;
    maxima_[idx] = counts_[idx] ? std::max(maxima_[idx], value) : value;
    ++counts_[idx];
}

double
TimeSeries::windowSum(std::size_t idx) const
{
    return idx < sums_.size() ? sums_[idx] : 0.0;
}

double
TimeSeries::windowMax(std::size_t idx) const
{
    return idx < maxima_.size() ? maxima_[idx] : 0.0;
}

std::uint64_t
TimeSeries::windowCount(std::size_t idx) const
{
    return idx < counts_.size() ? counts_[idx] : 0;
}

double
TimeSeries::windowMean(std::size_t idx) const
{
    const std::uint64_t n = windowCount(idx);
    return n ? windowSum(idx) / static_cast<double>(n) : 0.0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        hdpat_panic_if(v <= 0.0, "geomean over non-positive value " << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace hdpat
