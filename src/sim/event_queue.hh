/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callbacks scheduled at an absolute tick. Events
 * scheduled for the same tick execute in scheduling order (FIFO), which
 * keeps simulations deterministic for a fixed seed.
 */

#ifndef HDPAT_SIM_EVENT_QUEUE_HH
#define HDPAT_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/types.hh"

namespace hdpat
{

/**
 * A binary min-heap of (tick, sequence) ordered events.
 *
 * The sequence number breaks ties so that same-tick events fire in the
 * order they were scheduled.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when must not be in the past relative to the event currently
     *      executing; scheduling "now" is allowed.
     */
    void schedule(Tick when, EventFn fn);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; kTickNever when empty. */
    Tick nextTick() const;

    /**
     * Pop and return the earliest event.
     *
     * @pre !empty()
     * @param[out] when Receives the event's tick.
     * @return The event callback, moved out of the queue.
     */
    EventFn pop(Tick &when);

    /**
     * Discard all pending events. The same-tick tie-break sequence
     * restarts, but scheduledCount() keeps counting: it reports the
     * lifetime total, which a reset must not rewind.
     */
    void clear();

    /** Grow the heap's backing storage ahead of a known burst. */
    void reserve(std::size_t n) { heap_.reserve(n); }

    /** Total number of events ever scheduled (statistics). */
    std::uint64_t scheduledCount() const { return lifetimeScheduled_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Heap ordering: earliest tick first, then scheduling order. */
    static bool later(const Entry &a, const Entry &b);

    void siftUp(std::size_t idx);
    void siftDown(std::size_t idx);

    std::vector<Entry> heap_;
    /** Tie-break for same-tick FIFO order; restarts on clear(). */
    std::uint64_t nextSeq_ = 0;
    /** Lifetime schedule count; survives clear(). */
    std::uint64_t lifetimeScheduled_ = 0;
};

} // namespace hdpat

#endif // HDPAT_SIM_EVENT_QUEUE_HH
