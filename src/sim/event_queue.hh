/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callbacks scheduled at an absolute tick. Events
 * scheduled for the same tick execute in scheduling order (FIFO), which
 * keeps simulations deterministic for a fixed seed.
 *
 * Two implementations share the EventQueue interface and are provably
 * pop-order identical (the shadow-queue differential tests assert it):
 *
 *  - Calendar (default): a bucketed timing wheel for near-future events
 *    backed by an overflow min-heap for far-future ones. Nearly every
 *    event the simulator schedules uses one of a handful of small fixed
 *    deltas (NoC hop latency, TLB/IOMMU pipeline stages, HBM latency),
 *    so schedule and pop are O(1) appends/removals on a per-tick FIFO
 *    bucket. Callback storage lives in a stable slab of slots reused
 *    through a free list -- the 136-byte EventFn payload is written
 *    once and never moved by the ordering structure, and steady-state
 *    scheduling performs no heap allocation.
 *  - Heap: the original binary min-heap of whole entries, kept as the
 *    differential reference and selectable with HDPAT_EVENTQ=heap.
 *
 * Determinism contract (both implementations): pops come in
 * nondecreasing (tick, seq) order where seq is the schedule order, so
 * same-tick events fire FIFO. The calendar keeps this without merging
 * structures because an overflow event at tick T was necessarily
 * scheduled at an earlier simulated time than any bucket event at T
 * (it was out of the wheel's horizon then), hence always has the
 * smaller seq -- popping overflow-first on tick ties is exact.
 */

#ifndef HDPAT_SIM_EVENT_QUEUE_HH
#define HDPAT_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/types.hh"

namespace hdpat
{

/** Which ordering structure an EventQueue uses. */
enum class EventQueueImpl : std::uint8_t
{
    Calendar, ///< Timing wheel + overflow heap (default).
    Heap,     ///< Legacy binary min-heap (differential reference).
};

/** Printable name ("calendar" / "heap"). */
const char *eventQueueImplName(EventQueueImpl impl);

/**
 * Process default from the HDPAT_EVENTQ environment variable:
 * "heap" selects the legacy min-heap, anything else (or unset) the
 * calendar queue. Read per call so a harness (the fuzzer, the
 * differential tests) can flip it between Engine constructions.
 */
EventQueueImpl defaultEventQueueImpl();

/**
 * A (tick, sequence) ordered queue of events.
 *
 * The sequence number breaks ties so that same-tick events fire in the
 * order they were scheduled.
 */
class EventQueue
{
  public:
    explicit EventQueue(EventQueueImpl impl = defaultEventQueueImpl());
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The ordering structure this instance runs on. */
    EventQueueImpl impl() const { return impl_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when must not be in the past relative to the event currently
     *      executing; scheduling "now" is allowed.
     */
    void schedule(Tick when, EventFn fn);

    /**
     * Schedule with an explicit tie-break tag instead of the internal
     * counter. Externally-injected events (domain-parallel handoffs)
     * carry their serial-equivalent sequence so pop order reproduces
     * the serial interleave for any domain count.
     *
     * Exactness contract: all same-tick insertions into one queue must
     * arrive in increasing tag order over time (the calendar's
     * overflow-first tie-break and bucket FIFO both depend on it; the
     * heap orders by (when, tag) explicitly). The domain scheduler
     * guarantees this: merge-time inserts carry monotonically
     * increasing serial seqs, and in-window provisional tags set the
     * top bit, sorting after every merge-time insert at the same tick.
     */
    void schedule(Tick when, EventFn fn, std::uint64_t tag);

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Tick of the earliest pending event; kTickNever when empty. */
    Tick nextTick() const;

    /**
     * Pop and return the earliest event.
     *
     * @pre !empty()
     * @param[out] when Receives the event's tick.
     * @return The event callback, moved out of the queue.
     */
    EventFn pop(Tick &when);

    /** Pop variant that also reports the popped event's tie-break tag
     *  (the internal counter, or the explicit tag it was scheduled
     *  with). The domain merge uses it to recover serial order. */
    EventFn pop(Tick &when, std::uint64_t &tag);

    /**
     * Discard all pending events. The same-tick tie-break sequence
     * restarts, but scheduledCount() keeps counting: it reports the
     * lifetime total, which a reset must not rewind. The pending
     * high-water mark survives too.
     */
    void clear();

    /**
     * Pre-size the backing storage (callback slab, overflow heap, or
     * legacy heap vector) for @p n simultaneously pending events, so
     * steady-state scheduling below that mark never allocates.
     */
    void reserve(std::size_t n);

    /** Total number of events ever scheduled (statistics). */
    std::uint64_t scheduledCount() const { return lifetimeScheduled_; }

    /** Most events ever pending at once (lifetime; survives clear). */
    std::size_t pendingHighWater() const { return highWater_; }

  private:
    // ---- Calendar tier --------------------------------------------------

    /** Wheel size in single-tick buckets; deltas below this are O(1). */
    static constexpr std::size_t kNumBuckets = 4096;
    static constexpr std::uint64_t kBucketMask = kNumBuckets - 1;
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    /**
     * One pending event. Slots live in a slab indexed by the wheel and
     * the overflow heap; the EventFn is written at schedule and moved
     * out at pop, never relocated in between (slab growth aside).
     */
    struct Slot
    {
        EventFn fn;
        Tick when = 0;
        std::uint64_t seq = 0;
        /** Bucket FIFO chain / free-list link. */
        std::uint32_t next = kNoSlot;
    };

    /** Overflow heap entry: ordering fields only, payload in the slab. */
    struct OverflowRef
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    std::uint32_t allocSlot();
    void growSlab(std::size_t wanted);
    void setBucketBit(std::size_t bucket);
    void clearBucketBit(std::size_t bucket);
    /** First occupied bucket at or circularly after lastPop_. */
    std::size_t nextOccupiedBucket() const;
    void overflowSiftUp(std::size_t idx);
    void overflowSiftDown(std::size_t idx);

    void scheduleCalendar(Tick when, EventFn fn, std::uint64_t seq);
    EventFn popCalendar(Tick &when, std::uint64_t &tag);
    Tick nextTickCalendar() const;
    void clearCalendar();

    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = kNoSlot;
    std::vector<std::uint32_t> bucketHead_;
    std::vector<std::uint32_t> bucketTail_;
    /** One bit per bucket, plus a bit-per-word summary for the scan. */
    std::array<std::uint64_t, kNumBuckets / 64> occupied_{};
    std::uint64_t occupiedSummary_ = 0;
    std::vector<OverflowRef> overflow_;
    std::size_t calendarCount_ = 0;
    /**
     * Tick of the most recent pop: the wheel covers
     * [lastPop_, lastPop_ + kNumBuckets). All pending events are
     * >= lastPop_ (the engine never schedules into the past), so the
     * window maps injectively onto the buckets.
     */
    Tick lastPop_ = 0;

    // ---- Legacy heap tier -----------------------------------------------

    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Heap ordering: earliest tick first, then scheduling order. */
    static bool later(const HeapEntry &a, const HeapEntry &b);

    void heapSiftUp(std::size_t idx);
    void heapSiftDown(std::size_t idx);
    void scheduleHeap(Tick when, EventFn fn, std::uint64_t seq);
    EventFn popHeap(Tick &when, std::uint64_t &tag);

    std::vector<HeapEntry> heap_;

    // ---- Shared ---------------------------------------------------------

    EventQueueImpl impl_;
    std::size_t size_ = 0;
    std::size_t highWater_ = 0;
    /** Tie-break for same-tick FIFO order; restarts on clear(). */
    std::uint64_t nextSeq_ = 0;
    /** Lifetime schedule count; survives clear(). */
    std::uint64_t lifetimeScheduled_ = 0;
};

} // namespace hdpat

#endif // HDPAT_SIM_EVENT_QUEUE_HH
