/**
 * @file
 * The simulation engine: owns the event queue and the current tick.
 *
 * Components hold a reference to the Engine, query now(), and schedule
 * callbacks at relative or absolute times. One Engine corresponds to one
 * simulated system run.
 */

#ifndef HDPAT_SIM_ENGINE_HH
#define HDPAT_SIM_ENGINE_HH

#include <cstdint>

#include "sim/domains.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace hdpat
{

class Profiler;

/**
 * Discrete-event simulation driver.
 *
 * Typical use:
 * @code
 *   Engine engine;
 *   engine.scheduleIn(10, [] { ... });
 *   engine.run();
 * @endcode
 */
class Engine
{
  public:
    /** Registers this engine as the tick source for log lines. */
    Engine();
    /** Unregisters (only if still the active log-tick source). */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time. */
    Tick now() const
    {
        if (domains_) [[unlikely]]
            return domains_->now();
        return now_;
    }

    /** Schedule @p fn at absolute tick @p when (>= now()). */
    void scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn)
    {
        scheduleAt(now() + delay, std::move(fn));
    }

    /**
     * Execute the earliest event.
     *
     * @return false when the queue was empty (nothing ran).
     */
    bool step();

    /** Run until the event queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still execute.
     */
    void runUntil(Tick limit);

    /** Pending event count. */
    std::size_t pendingEvents() const
    {
        if (domains_) [[unlikely]]
            return domains_->pending();
        return queue_.size();
    }

    /** Total events executed so far. */
    std::uint64_t executedEvents() const
    {
        if (domains_) [[unlikely]]
            return domains_->executed();
        return executed_;
    }

    /** Total events ever scheduled (lifetime; survives reset). */
    std::uint64_t scheduledEvents() const
    {
        if (domains_) [[unlikely]]
            return domains_->scheduled();
        return queue_.scheduledCount();
    }

    /** Most events pending at once so far (lifetime high-water mark). */
    std::size_t pendingEventsHighWater() const
    {
        if (domains_) [[unlikely]]
            return domains_->pendingHighWater();
        return queue_.pendingHighWater();
    }

    /**
     * Pre-size the event queue for @p n simultaneously pending events
     * so steady-state scheduling below that mark never allocates.
     * System::loadWorkload calls this with its audited high-water
     * estimate before the first event fires.
     */
    void reserveEvents(std::size_t n) { queue_.reserve(n); }

    /** Ordering structure the queue runs on (HDPAT_EVENTQ). */
    EventQueueImpl queueImpl() const { return queue_.impl(); }

    /**
     * Observer-event bookkeeping. Self-rescheduling observers (the
     * heartbeat, the stall watchdog, the spatial sampler) must not
     * keep the run alive, and with several active at once "another
     * event is pending" stops being evidence of a live workload —
     * the other event may itself be an observer. Observers announce
     * each scheduled self-event, mark it when it fires, and consult
     * hasNonObserverEvents() before rescheduling.
     */
    void noteObserverScheduled() { ++observersPending_; }
    /** First statement of every observer event callback. */
    void noteObserverFired()
    {
        --observersPending_;
        ++observersExecuted_;
    }
    /** True while any pending event belongs to the simulation itself. */
    bool hasNonObserverEvents() const
    {
        return pendingEvents() > observersPending_;
    }
    /** Executed events that were not observer self-events. */
    std::uint64_t nonObserverExecuted() const
    {
        return executedEvents() - observersExecuted_;
    }

    /** Drop all pending events and rewind time to zero. */
    void reset();

    /**
     * Host self-profiler for event dispatch (null = off). Only the
     * profiler's header-inline hot path is used here, so hdpat_sim
     * gains no link dependency on hdpat_obs.
     */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Attach / detach a domain-parallel scheduler (sim/domains.hh).
     * Non-null reroutes now()/scheduleAt()/run() and the event
     * statistics through the DomainSet; null (the default) is the
     * serial path, bitwise identical to the pre-domain engine.
     *
     * @pre Attach only while the serial queue is empty: pre-attach
     *      events would be invisible to the domain queues.
     */
    void setDomains(DomainSet *domains) { domains_ = domains; }
    DomainSet *domains() const { return domains_; }

  private:
    EventQueue queue_;
    Tick now_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t observersPending_ = 0;
    std::uint64_t observersExecuted_ = 0;
    Profiler *profiler_ = nullptr;
    DomainSet *domains_ = nullptr;
};

} // namespace hdpat

#endif // HDPAT_SIM_ENGINE_HH
