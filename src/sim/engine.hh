/**
 * @file
 * The simulation engine: owns the event queue and the current tick.
 *
 * Components hold a reference to the Engine, query now(), and schedule
 * callbacks at relative or absolute times. One Engine corresponds to one
 * simulated system run.
 */

#ifndef HDPAT_SIM_ENGINE_HH
#define HDPAT_SIM_ENGINE_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace hdpat
{

/**
 * Discrete-event simulation driver.
 *
 * Typical use:
 * @code
 *   Engine engine;
 *   engine.scheduleIn(10, [] { ... });
 *   engine.run();
 * @endcode
 */
class Engine
{
  public:
    /** Registers this engine as the tick source for log lines. */
    Engine();
    /** Unregisters (only if still the active log-tick source). */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now()). */
    void scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Execute the earliest event.
     *
     * @return false when the queue was empty (nothing ran).
     */
    bool step();

    /** Run until the event queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still execute.
     */
    void runUntil(Tick limit);

    /** Pending event count. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

    /** Drop all pending events and rewind time to zero. */
    void reset();

  private:
    EventQueue queue_;
    Tick now_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace hdpat

#endif // HDPAT_SIM_ENGINE_HH
