/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Uses xoshiro256** — fast, high quality, and trivially seedable — so
 * every simulation run is reproducible from a single 64-bit seed.
 * Includes a Zipf sampler used by the graph-like workloads (PageRank,
 * SPMV) to produce power-law page popularity.
 */

#ifndef HDPAT_SIM_RNG_HH
#define HDPAT_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace hdpat
{

/** xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf-distributed sampler over {0, ..., n-1}.
 *
 * Rank 0 is the most popular element. Uses the precomputed-CDF method
 * with binary search, so sampling is O(log n) and exact.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of elements (> 0).
     * @param exponent Skew parameter s (>= 0); s=0 degenerates to
     *                 uniform, s~1 matches web/graph popularity.
     */
    ZipfSampler(std::size_t n, double exponent);

    /** Draw one rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace hdpat

#endif // HDPAT_SIM_RNG_HH
