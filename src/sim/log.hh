/**
 * @file
 * Minimal logging and error-exit helpers, in the spirit of gem5's
 * logging.hh: panic() for internal invariant violations, fatal() for
 * user-caused misconfiguration.
 */

#ifndef HDPAT_SIM_LOG_HH
#define HDPAT_SIM_LOG_HH

#include <sstream>
#include <string>

namespace hdpat
{

class Engine;

/** Verbosity levels for runtime diagnostics. */
enum class LogLevel { Quiet = 0, Info = 1, Debug = 2 };

/** Get the process-wide log level (default Quiet; env HDPAT_LOG). */
LogLevel logLevel();

/** Override the process-wide log level. */
void setLogLevel(LogLevel level);

/**
 * Register the engine whose now() stamps log lines with the simulated
 * tick ("[hdpat:info @1234] ..."). Engine registers itself on
 * construction; pass the same pointer to clear on destruction. Lines
 * logged with no active engine carry no tick.
 *
 * The registration is per *thread*: each worker thread running a
 * simulation (see driver/parallel.hh) stamps its log lines with its
 * own engine's tick. The log sink itself is serialized behind a mutex,
 * so concurrent runs' lines never interleave mid-line.
 */
void setActiveLogEngine(const Engine *engine);
void clearActiveLogEngine(const Engine *engine);

namespace detail
{
/** Emit one formatted log line to stderr. */
void emitLog(const char *tag, const std::string &msg);

/** Print message and abort; used for simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print message and exit(1); used for user/config errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
} // namespace detail

} // namespace hdpat

/**
 * Abort on a condition that indicates a simulator bug.
 * Usage: panic_if(x < 0, "x went negative: " << x);
 */
#define hdpat_panic(msg_expr)                                                \
    do {                                                                     \
        std::ostringstream hdpat_oss_;                                       \
        hdpat_oss_ << msg_expr;                                              \
        ::hdpat::detail::panicImpl(__FILE__, __LINE__, hdpat_oss_.str());    \
    } while (0)

#define hdpat_panic_if(cond, msg_expr)                                       \
    do {                                                                     \
        if (cond) [[unlikely]] {                                             \
            hdpat_panic(msg_expr);                                           \
        }                                                                    \
    } while (0)

/** Exit on a condition caused by invalid user configuration. */
#define hdpat_fatal(msg_expr)                                                \
    do {                                                                     \
        std::ostringstream hdpat_oss_;                                       \
        hdpat_oss_ << msg_expr;                                              \
        ::hdpat::detail::fatalImpl(__FILE__, __LINE__, hdpat_oss_.str());    \
    } while (0)

#define hdpat_fatal_if(cond, msg_expr)                                       \
    do {                                                                     \
        if (cond) [[unlikely]] {                                             \
            hdpat_fatal(msg_expr);                                           \
        }                                                                    \
    } while (0)

/** Informational message, shown at LogLevel::Info and above. */
#define hdpat_inform(msg_expr)                                               \
    do {                                                                     \
        if (::hdpat::logLevel() >= ::hdpat::LogLevel::Info) {                \
            std::ostringstream hdpat_oss_;                                   \
            hdpat_oss_ << msg_expr;                                          \
            ::hdpat::detail::emitLog("info", hdpat_oss_.str());              \
        }                                                                    \
    } while (0)

/** Debug trace, shown only at LogLevel::Debug. */
#define hdpat_debug(msg_expr)                                                \
    do {                                                                     \
        if (::hdpat::logLevel() >= ::hdpat::LogLevel::Debug) {               \
            std::ostringstream hdpat_oss_;                                   \
            hdpat_oss_ << msg_expr;                                          \
            ::hdpat::detail::emitLog("debug", hdpat_oss_.str());             \
        }                                                                    \
    } while (0)

#endif // HDPAT_SIM_LOG_HH
