#include "sim/event_queue.hh"

#include <bit>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "sim/log.hh"

namespace hdpat
{

const char *
eventQueueImplName(EventQueueImpl impl)
{
    return impl == EventQueueImpl::Heap ? "heap" : "calendar";
}

EventQueueImpl
defaultEventQueueImpl()
{
    const char *env = std::getenv("HDPAT_EVENTQ");
    if (env && std::string_view(env) == "heap")
        return EventQueueImpl::Heap;
    return EventQueueImpl::Calendar;
}

EventQueue::EventQueue(EventQueueImpl impl) : impl_(impl)
{
    if (impl_ == EventQueueImpl::Calendar) {
        bucketHead_.assign(kNumBuckets, kNoSlot);
        bucketTail_.assign(kNumBuckets, kNoSlot);
    }
}

EventQueue::~EventQueue() = default;

void
EventQueue::schedule(Tick when, EventFn fn)
{
    schedule(when, std::move(fn), nextSeq_++);
}

void
EventQueue::schedule(Tick when, EventFn fn, std::uint64_t tag)
{
    if (impl_ == EventQueueImpl::Calendar)
        scheduleCalendar(when, std::move(fn), tag);
    else
        scheduleHeap(when, std::move(fn), tag);
    ++lifetimeScheduled_;
    ++size_;
    if (size_ > highWater_)
        highWater_ = size_;
}

Tick
EventQueue::nextTick() const
{
    if (size_ == 0)
        return kTickNever;
    if (impl_ == EventQueueImpl::Calendar)
        return nextTickCalendar();
    return heap_.front().when;
}

EventFn
EventQueue::pop(Tick &when)
{
    std::uint64_t tag;
    return pop(when, tag);
}

EventFn
EventQueue::pop(Tick &when, std::uint64_t &tag)
{
    hdpat_panic_if(size_ == 0, "pop() on an empty event queue");
    --size_;
    if (impl_ == EventQueueImpl::Calendar)
        return popCalendar(when, tag);
    return popHeap(when, tag);
}

void
EventQueue::clear()
{
    if (impl_ == EventQueueImpl::Calendar)
        clearCalendar();
    else
        heap_.clear();
    size_ = 0;
    nextSeq_ = 0;
}

void
EventQueue::reserve(std::size_t n)
{
    if (impl_ == EventQueueImpl::Calendar) {
        if (slots_.size() < n)
            growSlab(n);
        overflow_.reserve(n);
    } else {
        heap_.reserve(n);
    }
}

// ---------------------------------------------------------------------
// Calendar tier
// ---------------------------------------------------------------------

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ == kNoSlot) {
        growSlab(slots_.empty() ? 64 : slots_.size() * 2);
    }
    const std::uint32_t s = freeHead_;
    freeHead_ = slots_[s].next;
    return s;
}

void
EventQueue::growSlab(std::size_t wanted)
{
    const std::size_t old = slots_.size();
    hdpat_panic_if(wanted > kNoSlot, "event slab exceeds index range");
    slots_.resize(wanted);
    // Chain the new slots onto the free list, lowest index on top so
    // fresh queues hand out slot 0 first (cache-friendly, and keeps
    // slab growth append-only in steady state).
    for (std::size_t i = wanted; i-- > old;) {
        slots_[i].next = freeHead_;
        freeHead_ = static_cast<std::uint32_t>(i);
    }
}

void
EventQueue::setBucketBit(std::size_t bucket)
{
    occupied_[bucket >> 6] |= std::uint64_t(1) << (bucket & 63);
    occupiedSummary_ |= std::uint64_t(1) << (bucket >> 6);
}

void
EventQueue::clearBucketBit(std::size_t bucket)
{
    occupied_[bucket >> 6] &= ~(std::uint64_t(1) << (bucket & 63));
    if (occupied_[bucket >> 6] == 0)
        occupiedSummary_ &= ~(std::uint64_t(1) << (bucket >> 6));
}

std::size_t
EventQueue::nextOccupiedBucket() const
{
    // Circular first-set-bit scan starting at the wheel's cursor. All
    // pending wheel ticks live in [lastPop_, lastPop_ + kNumBuckets),
    // so the first occupied bucket in circular order from the cursor
    // is the earliest calendar tick.
    const std::size_t start =
        static_cast<std::size_t>(lastPop_ & kBucketMask);
    const std::size_t w = start >> 6;
    const std::uint64_t head =
        occupied_[w] & (~std::uint64_t(0) << (start & 63));
    if (head)
        return (w << 6) | static_cast<std::size_t>(std::countr_zero(head));
    // Words strictly after the cursor's word, then wrap to the lowest
    // set word (whose bits, if it is the cursor's word again, are all
    // below the cursor -- the wrapped top of the window).
    std::uint64_t summary =
        w + 1 < occupied_.size()
            ? occupiedSummary_ & (~std::uint64_t(0) << (w + 1))
            : 0;
    if (!summary)
        summary = occupiedSummary_;
    const std::size_t w2 =
        static_cast<std::size_t>(std::countr_zero(summary));
    return (w2 << 6) |
           static_cast<std::size_t>(std::countr_zero(occupied_[w2]));
}

void
EventQueue::scheduleCalendar(Tick when, EventFn fn, std::uint64_t seq)
{
    hdpat_panic_if(when < lastPop_,
                   "scheduling into the queue's past: when="
                       << when << " last-popped=" << lastPop_);
    const std::uint32_t s = allocSlot();
    Slot &slot = slots_[s];
    slot.fn = std::move(fn);
    slot.when = when;
    slot.seq = seq;
    slot.next = kNoSlot;

    if (when - lastPop_ < kNumBuckets) {
        const std::size_t b =
            static_cast<std::size_t>(when & kBucketMask);
        if (bucketHead_[b] == kNoSlot) {
            bucketHead_[b] = s;
            setBucketBit(b);
        } else {
            slots_[bucketTail_[b]].next = s;
        }
        bucketTail_[b] = s;
        ++calendarCount_;
    } else {
        overflow_.push_back(OverflowRef{when, slot.seq, s});
        overflowSiftUp(overflow_.size() - 1);
    }
}

EventFn
EventQueue::popCalendar(Tick &when, std::uint64_t &tag)
{
    Tick cal_tick = kTickNever;
    std::size_t bucket = 0;
    if (calendarCount_ > 0) {
        bucket = nextOccupiedBucket();
        cal_tick = slots_[bucketHead_[bucket]].when;
    }

    std::uint32_t s;
    if (!overflow_.empty() && overflow_.front().when <= cal_tick) {
        // Tick tie goes to the overflow event: it was scheduled when
        // this tick was beyond the wheel's horizon, i.e. at an earlier
        // simulated time than any same-tick wheel event, so its seq is
        // provably smaller (see the header's determinism contract).
        s = overflow_.front().slot;
        overflow_.front() = overflow_.back();
        overflow_.pop_back();
        if (!overflow_.empty())
            overflowSiftDown(0);
    } else {
        s = bucketHead_[bucket];
        bucketHead_[bucket] = slots_[s].next;
        if (bucketHead_[bucket] == kNoSlot) {
            bucketTail_[bucket] = kNoSlot;
            clearBucketBit(bucket);
        }
        --calendarCount_;
    }

    Slot &slot = slots_[s];
    when = slot.when;
    tag = slot.seq;
    lastPop_ = when;
    EventFn fn = std::move(slot.fn);
    slot.next = freeHead_;
    freeHead_ = s;
    return fn;
}

Tick
EventQueue::nextTickCalendar() const
{
    Tick cal_tick = kTickNever;
    if (calendarCount_ > 0) {
        const std::size_t bucket = nextOccupiedBucket();
        cal_tick = slots_[bucketHead_[bucket]].when;
    }
    if (!overflow_.empty() && overflow_.front().when < cal_tick)
        return overflow_.front().when;
    return cal_tick;
}

void
EventQueue::clearCalendar()
{
    // Destroy every pending callback now (captures may own resources),
    // then return the whole slab to the free list.
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
        for (std::uint32_t s = bucketHead_[b]; s != kNoSlot;
             s = slots_[s].next) {
            slots_[s].fn = EventFn();
        }
        bucketHead_[b] = kNoSlot;
        bucketTail_[b] = kNoSlot;
    }
    for (const OverflowRef &ref : overflow_)
        slots_[ref.slot].fn = EventFn();
    overflow_.clear();
    occupied_.fill(0);
    occupiedSummary_ = 0;
    calendarCount_ = 0;
    lastPop_ = 0;
    freeHead_ = kNoSlot;
    for (std::size_t i = slots_.size(); i-- > 0;) {
        slots_[i].next = freeHead_;
        freeHead_ = static_cast<std::uint32_t>(i);
    }
}

void
EventQueue::overflowSiftUp(std::size_t idx)
{
    while (idx > 0) {
        const std::size_t parent = (idx - 1) / 2;
        const OverflowRef &p = overflow_[parent];
        const OverflowRef &c = overflow_[idx];
        if (p.when < c.when || (p.when == c.when && p.seq < c.seq))
            break;
        std::swap(overflow_[parent], overflow_[idx]);
        idx = parent;
    }
}

void
EventQueue::overflowSiftDown(std::size_t idx)
{
    const std::size_t n = overflow_.size();
    const auto earlier = [this](std::size_t a, std::size_t b) {
        const OverflowRef &x = overflow_[a];
        const OverflowRef &y = overflow_[b];
        return x.when < y.when || (x.when == y.when && x.seq < y.seq);
    };
    while (true) {
        const std::size_t left = 2 * idx + 1;
        const std::size_t right = left + 1;
        std::size_t smallest = idx;
        if (left < n && earlier(left, smallest))
            smallest = left;
        if (right < n && earlier(right, smallest))
            smallest = right;
        if (smallest == idx)
            break;
        std::swap(overflow_[idx], overflow_[smallest]);
        idx = smallest;
    }
}

// ---------------------------------------------------------------------
// Legacy heap tier (the differential reference; code unchanged from
// the original single-implementation queue)
// ---------------------------------------------------------------------

bool
EventQueue::later(const HeapEntry &a, const HeapEntry &b)
{
    if (a.when != b.when)
        return a.when > b.when;
    return a.seq > b.seq;
}

void
EventQueue::scheduleHeap(Tick when, EventFn fn, std::uint64_t seq)
{
    heap_.push_back(HeapEntry{when, seq, std::move(fn)});
    heapSiftUp(heap_.size() - 1);
}

EventFn
EventQueue::popHeap(Tick &when, std::uint64_t &tag)
{
    when = heap_.front().when;
    tag = heap_.front().seq;
    EventFn fn = std::move(heap_.front().fn);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty())
        heapSiftDown(0);
    return fn;
}

void
EventQueue::heapSiftUp(std::size_t idx)
{
    while (idx > 0) {
        const std::size_t parent = (idx - 1) / 2;
        if (!later(heap_[parent], heap_[idx]))
            break;
        std::swap(heap_[parent], heap_[idx]);
        idx = parent;
    }
}

void
EventQueue::heapSiftDown(std::size_t idx)
{
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t left = 2 * idx + 1;
        const std::size_t right = left + 1;
        std::size_t smallest = idx;
        if (left < n && later(heap_[smallest], heap_[left]))
            smallest = left;
        if (right < n && later(heap_[smallest], heap_[right]))
            smallest = right;
        if (smallest == idx)
            break;
        std::swap(heap_[idx], heap_[smallest]);
        idx = smallest;
    }
}

} // namespace hdpat
