#include "sim/event_queue.hh"

#include <utility>

#include "sim/log.hh"

namespace hdpat
{

bool
EventQueue::later(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when > b.when;
    return a.seq > b.seq;
}

void
EventQueue::schedule(Tick when, EventFn fn)
{
    heap_.push_back(Entry{when, nextSeq_++, std::move(fn)});
    ++lifetimeScheduled_;
    siftUp(heap_.size() - 1);
}

Tick
EventQueue::nextTick() const
{
    return heap_.empty() ? kTickNever : heap_.front().when;
}

EventFn
EventQueue::pop(Tick &when)
{
    hdpat_panic_if(heap_.empty(), "pop() on an empty event queue");
    when = heap_.front().when;
    EventFn fn = std::move(heap_.front().fn);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    return fn;
}

void
EventQueue::clear()
{
    heap_.clear();
    nextSeq_ = 0;
}

void
EventQueue::siftUp(std::size_t idx)
{
    while (idx > 0) {
        std::size_t parent = (idx - 1) / 2;
        if (!later(heap_[parent], heap_[idx]))
            break;
        std::swap(heap_[parent], heap_[idx]);
        idx = parent;
    }
}

void
EventQueue::siftDown(std::size_t idx)
{
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t left = 2 * idx + 1;
        std::size_t right = left + 1;
        std::size_t smallest = idx;
        if (left < n && later(heap_[smallest], heap_[left]))
            smallest = left;
        if (right < n && later(heap_[smallest], heap_[right]))
            smallest = right;
        if (smallest == idx)
            break;
        std::swap(heap_[idx], heap_[smallest]);
        idx = smallest;
    }
}

} // namespace hdpat
