/**
 * @file
 * Conservative domain-parallel scheduler for a single simulation.
 *
 * The wafer mesh is partitioned into K contiguous column strips
 * ("domains"). Each domain owns a private EventQueue and runs on its
 * own thread; the run proceeds in synchronous-conservative windows
 * [W, W + lookahead) where lookahead is the minimum cross-domain NoC
 * latency (one link hop). Inside a window every domain executes its
 * own events independently: no event executed at tick t < W+lookahead
 * can cause another domain to act before W+lookahead, because the only
 * cross-domain influence in the model is a NoC packet, and a packet
 * sent at t arrives no earlier than t + lookahead >= W + lookahead.
 * That is the classic null-message bound, applied once per window
 * instead of per channel.
 *
 * Determinism is recovered at the window barrier. Workers do not touch
 * any shared state during a window; instead every scheduling action is
 * recorded in a per-domain log (handed off through a lock-free SPSC
 * ring, sim/spsc_ring.hh) and a single-threaded sequencer replays the
 * logs at the barrier in exact serial order:
 *
 *  - Each pop is logged with its (tick, tag). The K logs are K sorted
 *    runs of the serial pop order, so a K-way merge by (tick, serial
 *    seq) reconstructs the serial interleave exactly.
 *  - Events a worker schedules for later in its own window execute
 *    live, stamped with a *provisional* tag (top bit set, per-domain
 *    counter): provisional tags order after every merge-assigned
 *    serial seq at the same tick, which is serially exact because an
 *    in-window schedule always carries a larger serial seq than any
 *    event scheduled before the window. At the barrier the sequencer
 *    assigns each such event its true serial seq (in merge order, so
 *    the numbering matches what the serial engine would have used);
 *    the provisional tag never escapes the window, since the event's
 *    tick is below the window end and therefore pops before the
 *    barrier.
 *  - Events scheduled at or beyond the window end are staged
 *    (Sched records) and inserted at the barrier with their true
 *    serial seq.
 *  - Cross-tile NoC traffic never runs on workers at all: packets
 *    route through intermediate strips' links, so the shared
 *    link-occupancy walk must interleave serially with every other
 *    send. send() on a worker defers the whole send body as a Send
 *    record; the sequencer replays it -- route walk, conservation
 *    hooks, delivery scheduling -- at the exact serial position.
 *    Same for the data path's raw hops (Hop records). Only
 *    tile-local (src == dst) traffic, which touches no link state,
 *    executes live.
 *
 * The sequencer also replays the serial engine's bookkeeping: the
 * global schedule count (events_scheduled), the pending-event
 * trajectory and its high-water mark, and the executed-event count all
 * come out bitwise identical to the serial run.
 *
 * The class is deliberately noc/driver-agnostic: Network installs the
 * Send/Hop replay hooks, System builds the tile partition and the
 * barrier hook for coordinator-mode observers (heartbeat, watchdog).
 */

#ifndef HDPAT_SIM_DOMAINS_HH
#define HDPAT_SIM_DOMAINS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/spsc_ring.hh"
#include "sim/types.hh"

namespace hdpat
{

class Profiler;

class DomainSet
{
  public:
    struct Config
    {
        /** Number of domains (>= 2; K=1 never constructs a set). */
        unsigned count = 2;
        /** Conservative window length: min cross-domain NoC latency. */
        Tick lookahead = 1;
        /** Tile -> owning domain (contiguous column strips). */
        std::vector<unsigned> domainOfTile;
        /** Event-queue implementation for the per-domain queues. */
        EventQueueImpl queueImpl = defaultEventQueueImpl();
    };

    /**
     * Replay hook for a deferred NoC action: @p when is the serial
     * tick the action ran at, @p fn the staged continuation. Installed
     * by Network; called by the sequencer in exact serial order.
     */
    using ReplayFn = std::function<void(
        Tick when, TileId src, TileId dst, std::uint32_t bytes,
        EventFn fn)>;

    /**
     * Coordinator hook, called once per window barrier after the merge
     * (workers quiescent, so reading simulation state is safe). Drives
     * the external-mode heartbeat and stall watchdog.
     */
    using BarrierHook = std::function<void(Tick window_start)>;

    explicit DomainSet(Config cfg);
    ~DomainSet();

    DomainSet(const DomainSet &) = delete;
    DomainSet &operator=(const DomainSet &) = delete;

    unsigned count() const { return cfg_.count; }
    Tick lookahead() const { return cfg_.lookahead; }
    unsigned domainOf(TileId tile) const
    {
        return cfg_.domainOfTile[static_cast<std::size_t>(tile)];
    }

    /** True on a worker thread inside a window. */
    static bool onWorker() { return tlsCtx_ != nullptr; }
    /** The calling worker's domain profiler (null off-worker/off). */
    static Profiler *workerProfiler();

    // ---- Engine-facing dispatch --------------------------------------
    Tick now() const;
    /** Mode-routing schedule; the Engine has already validated when. */
    void scheduleAt(Tick when, EventFn fn);
    std::size_t pending() const { return pending_; }
    std::uint64_t executed() const { return executed_; }
    std::uint64_t scheduled() const { return globalSeq_; }
    std::size_t pendingHighWater() const { return pendingHwm_; }

    /**
     * Sequencer-mode schedule routing: which domain's queue receives
     * the next sequencer-mode scheduleAt. A no-op on workers (their
     * schedules always land in their own queue), so call sites stay
     * unconditional. A null @p set is also a no-op (serial path).
     */
    class ScopedTarget
    {
      public:
        ScopedTarget(DomainSet *set, unsigned domain);
        ~ScopedTarget();
        ScopedTarget(const ScopedTarget &) = delete;
        ScopedTarget &operator=(const ScopedTarget &) = delete;

      private:
        DomainSet *set_ = nullptr;
        unsigned prev_ = 0;
    };

    // ---- Wiring (setup time) -----------------------------------------
    void setSendReplay(ReplayFn fn) { sendReplay_ = std::move(fn); }
    void setHopReplay(ReplayFn fn) { hopReplay_ = std::move(fn); }
    void setBarrierHook(BarrierHook fn)
    {
        barrierHook_ = std::move(fn);
    }
    void setWorkerProfiler(unsigned domain, Profiler *profiler);

    // ---- Worker-side deferral (called via Network / data path) -------
    /** Defer a full Network::send to the barrier sequencer. */
    void recordSend(TileId src, TileId dst, std::uint32_t bytes,
                    EventFn on_arrive);
    /** Defer a data-plane hop (raw computeArrival + schedule). */
    void recordHop(TileId src, TileId dst, std::uint32_t bytes,
                   EventFn at_arrive);
    /** Tile-local packet accounting delta (src == dst fast path). */
    void addLocalPacket(std::uint64_t bytes);
    /** Folded into Network::Stats after the run (sums commute). */
    std::uint64_t localPackets() const;
    std::uint64_t localBytes() const;

    // ---- The run -----------------------------------------------------
    /** Window loop until every domain queue drains. */
    void run();
    /** Tick of the last executed event (the final "now"). */
    Tick finalNow() const { return seqNow_; }

  private:
    /** One per-domain log entry; PODs only (lives in the SPSC ring). */
    struct Record
    {
        enum class Kind : std::uint8_t
        {
            Pop,      ///< Worker popped (when, tag).
            InWindow, ///< Live in-window schedule under a provisional
                      ///< tag; merge assigns the serial seq.
            Sched,    ///< Staged schedule at/after the window end.
            Send,     ///< Deferred Network::send (full serial body).
            Hop,      ///< Deferred data-plane hop.
        };
        Kind kind;
        Tick when = 0;
        std::uint64_t tag = 0;
        std::uint32_t fnSlot = 0;
        TileId src = 0;
        TileId dst = 0;
        std::uint32_t bytes = 0;
    };

    struct DomainCtx
    {
        explicit DomainCtx(unsigned index, EventQueueImpl impl)
            : idx(index), queue(impl), ring(kRingCapacity)
        {
        }

        unsigned idx;
        EventQueue queue;
        Tick now = 0;
        /** Provisional-tag counter (top bit added on use). */
        std::uint64_t provCtr = 0;
        Profiler *profiler = nullptr;
        /** Worker -> sequencer record channel. */
        SpscRing<Record> ring;
        /** Overflow once the ring refuses (order: ring then spill). */
        std::vector<Record> spill;
        bool spilling = false;
        /** Staged continuations referenced by fnSlot. */
        std::vector<EventFn> stagedFns;
        /** Tile-local packet deltas (src == dst live sends). */
        std::uint64_t localPackets = 0;
        std::uint64_t localBytes = 0;
        // ---- Sequencer-side merge scratch ----------------------------
        std::vector<Record> log;
        std::size_t cursor = 0;
        /** This window's provisional tag -> serial seq. */
        std::unordered_map<std::uint64_t, std::uint64_t> provSeq;
    };

    /** Provisional tags sort after every serial seq at the same tick. */
    static constexpr std::uint64_t kProvBit = std::uint64_t(1) << 63;
    static constexpr std::size_t kRingCapacity = 8192;

    void runWindow(DomainCtx &ctx);
    void logRecord(DomainCtx &ctx, const Record &r);
    /** Drain logs, replay in serial order, advance the window. */
    void mergeWindow();
    void advanceWindow();
    void sequencerSchedule(Tick when, EventFn fn, unsigned target);
    std::uint64_t resolveTag(const DomainCtx &ctx,
                             std::uint64_t tag) const;
    void bumpPending();

    Config cfg_;
    std::vector<std::unique_ptr<DomainCtx>> domains_;
    ReplayFn sendReplay_;
    ReplayFn hopReplay_;
    BarrierHook barrierHook_;
    /** Sequencer-mode schedule destination (ScopedTarget). */
    unsigned seqTarget_ = 0;
    /** Sequencer-mode "now" (setup: 0; merge: replayed pop tick). */
    Tick seqNow_ = 0;
    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
    bool done_ = false;
    /** Serial schedule numbering (== events_scheduled). */
    std::uint64_t globalSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
    std::size_t pendingHwm_ = 0;

    static thread_local DomainCtx *tlsCtx_;
};

} // namespace hdpat

#endif // HDPAT_SIM_DOMAINS_HH
