#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "sim/engine.hh"

namespace hdpat
{

namespace
{

/** Engine whose now() stamps log lines (null = no tick prefix). */
const Engine *g_log_engine = nullptr;

LogLevel
initialLevel()
{
    const char *env = std::getenv("HDPAT_LOG");
    if (!env)
        return LogLevel::Quiet;
    std::string value(env);
    if (value == "debug" || value == "2")
        return LogLevel::Debug;
    if (value == "info" || value == "1")
        return LogLevel::Info;
    return LogLevel::Quiet;
}

LogLevel &
levelStorage()
{
    static LogLevel level = initialLevel();
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage();
}

void
setLogLevel(LogLevel level)
{
    levelStorage() = level;
}

void
setActiveLogEngine(const Engine *engine)
{
    g_log_engine = engine;
}

void
clearActiveLogEngine(const Engine *engine)
{
    if (g_log_engine == engine)
        g_log_engine = nullptr;
}

namespace detail
{

void
emitLog(const char *tag, const std::string &msg)
{
    if (g_log_engine) {
        std::fprintf(stderr, "[hdpat:%s @%llu] %s\n", tag,
                     static_cast<unsigned long long>(
                         g_log_engine->now()),
                     msg.c_str());
        return;
    }
    std::fprintf(stderr, "[hdpat:%s] %s\n", tag, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[hdpat:panic] %s:%d: %s\n", file, line,
                 msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[hdpat:fatal] %s:%d: %s\n", file, line,
                 msg.c_str());
    std::exit(1);
}

} // namespace detail

} // namespace hdpat
