#include "sim/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "sim/engine.hh"

namespace hdpat
{

namespace
{

/**
 * Engine whose now() stamps log lines (null = no tick prefix).
 * thread_local so that each worker thread running its own simulation
 * (driver/parallel.hh) stamps its lines with *its* engine's tick: a
 * process-wide pointer would race and stamp lines with whichever
 * engine registered last on any thread.
 */
thread_local const Engine *t_log_engine = nullptr;

/** Serializes emitLog so concurrent runs' lines never interleave. */
std::mutex g_log_mutex;

LogLevel
initialLevel()
{
    const char *env = std::getenv("HDPAT_LOG");
    if (!env)
        return LogLevel::Quiet;
    std::string value(env);
    if (value == "debug" || value == "2")
        return LogLevel::Debug;
    if (value == "info" || value == "1")
        return LogLevel::Info;
    return LogLevel::Quiet;
}

std::atomic<LogLevel> &
levelStorage()
{
    static std::atomic<LogLevel> level{initialLevel()};
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelStorage().store(level, std::memory_order_relaxed);
}

void
setActiveLogEngine(const Engine *engine)
{
    t_log_engine = engine;
}

void
clearActiveLogEngine(const Engine *engine)
{
    if (t_log_engine == engine)
        t_log_engine = nullptr;
}

namespace detail
{

void
emitLog(const char *tag, const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    if (t_log_engine) {
        std::fprintf(stderr, "[hdpat:%s @%llu] %s\n", tag,
                     static_cast<unsigned long long>(
                         t_log_engine->now()),
                     msg.c_str());
        return;
    }
    std::fprintf(stderr, "[hdpat:%s] %s\n", tag, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[hdpat:panic] %s:%d: %s\n", file, line,
                 msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[hdpat:fatal] %s:%d: %s\n", file, line,
                 msg.c_str());
    std::exit(1);
}

} // namespace detail

} // namespace hdpat
