/**
 * @file
 * Topology of the wafer: a W x H mesh of tiles, one of which hosts the
 * CPU (and its IOMMU) while the remaining active tiles are GPMs
 * (Fig 1(a)). Also provides the small MCM-GPU topology used as the
 * comparison point in Fig 4.
 */

#ifndef HDPAT_NOC_MESH_TOPOLOGY_HH
#define HDPAT_NOC_MESH_TOPOLOGY_HH

#include <vector>

#include "noc/geometry.hh"
#include "sim/types.hh"

namespace hdpat
{

/**
 * Rectangular mesh with an optional inactive-tile mask.
 *
 * Tile ids are y * width + x. Exactly one tile is the CPU; every other
 * *active* tile is a GPM.
 */
class MeshTopology
{
  public:
    /**
     * Full wafer: all W x H tiles active, CPU at meshCenter(W, H) =
     * ((W-1)/2, (H-1)/2), e.g. 7x7 -> 48 GPMs, 7x12 -> 83 GPMs.
     */
    static MeshTopology wafer(int width, int height);

    /**
     * MCM-GPU: a 3x3 grid where only the center (CPU) and its four
     * orthogonal neighbours (4 GPMs) are active — matching the 4-GPM
     * MCM baseline of Fig 4 with single-hop CPU access.
     */
    static MeshTopology mcm4();

    int width() const { return width_; }
    int height() const { return height_; }
    int numTiles() const { return width_ * height_; }

    TileId cpuTile() const { return cpu_; }
    Coord cpuCoord() const { return coordOf(cpu_); }

    /** Active GPM tiles in id order. */
    const std::vector<TileId> &gpmTiles() const { return gpms_; }
    std::size_t numGpms() const { return gpms_.size(); }

    Coord coordOf(TileId tile) const
    {
        return Coord{tile % width_, tile / width_};
    }

    /** Tile at @p c; kInvalidTile when out of bounds or inactive. */
    TileId tileAt(Coord c) const;

    bool isActive(TileId tile) const;
    bool isGpm(TileId tile) const
    {
        return isActive(tile) && tile != cpu_;
    }

    /** XY-routing hop count between two tiles. */
    int hopDistance(TileId a, TileId b) const
    {
        return manhattan(coordOf(a), coordOf(b));
    }

    /** Ring (Chebyshev distance from the CPU) of a tile. */
    int ringOf(TileId tile) const
    {
        return chebyshev(coordOf(tile), cpuCoord());
    }

    /** Largest ring index present on this topology. */
    int maxRing() const;

  private:
    MeshTopology(int width, int height, TileId cpu,
                 std::vector<bool> active);

    int width_;
    int height_;
    TileId cpu_;
    std::vector<bool> active_;
    std::vector<TileId> gpms_;
};

} // namespace hdpat

#endif // HDPAT_NOC_MESH_TOPOLOGY_HH
