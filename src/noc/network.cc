#include "noc/network.hh"

#include <algorithm>
#include <cmath>

#include "obs/audit.hh"
#include "obs/profiler.hh"
#include "obs/spatial.hh"
#include "sim/log.hh"

namespace hdpat
{

Network::Network(Engine &engine, const MeshTopology &topo,
                 NocParams params)
    : engine_(engine), topo_(topo), params_(params)
{
    hdpat_fatal_if(params_.bytesPerTick <= 0.0,
                   "NoC bandwidth must be positive");
    linkFree_.assign(static_cast<std::size_t>(topo_.numTiles()) * 4, 0);
    shards_.resize(1);
}

std::size_t
Network::linkIndex(TileId tile, TileId next) const
{
    const Coord a = topo_.coordOf(tile);
    const Coord b = topo_.coordOf(next);
    unsigned dir;
    if (b.x == a.x + 1 && b.y == a.y) {
        dir = 0; // east
    } else if (b.x == a.x - 1 && b.y == a.y) {
        dir = 1; // west
    } else if (b.y == a.y + 1 && b.x == a.x) {
        dir = 2; // south
    } else if (b.y == a.y - 1 && b.x == a.x) {
        dir = 3; // north
    } else {
        hdpat_panic("non-adjacent link " << tile << " -> " << next);
    }
    return static_cast<std::size_t>(tile) * 4 + dir;
}

std::vector<TileId>
Network::route(TileId src, TileId dst) const
{
    std::vector<TileId> path;
    Coord cur = topo_.coordOf(src);
    const Coord goal = topo_.coordOf(dst);
    path.push_back(src);
    // X first, then Y (dimension-ordered routing).
    while (cur.x != goal.x) {
        cur.x += (goal.x > cur.x) ? 1 : -1;
        path.push_back(cur.y * topo_.width() + cur.x);
    }
    while (cur.y != goal.y) {
        cur.y += (goal.y > cur.y) ? 1 : -1;
        path.push_back(cur.y * topo_.width() + cur.x);
    }
    return path;
}

Tick
Network::computeArrival(Tick now, TileId src, TileId dst,
                        std::size_t bytes)
{
    if (domains_ && DomainSet::onWorker()) [[unlikely]] {
        // Workers may only time tile-local traffic: the XY walk below
        // mutates the shared link-occupancy state, which must advance
        // in serial order (cross-tile sends are deferred to the
        // barrier sequencer before reaching this point). The packet
        // count goes into a per-domain delta; foldDomainStats() sums
        // the deltas into stats_ after the run.
        hdpat_panic_if(src != dst,
                       "cross-tile computeArrival on a domain worker");
        const ProfScope prof(DomainSet::workerProfiler(),
                             ProfSection::NocRouting);
        domains_->addLocalPacket(bytes);
        return now + params_.localLatency;
    }

    const ProfScope prof(profiler_, ProfSection::NocRouting);
    ++stats_.packets;
    stats_.totalBytes += bytes;

    if (src == dst)
        return now + params_.localLatency;

    // Fractional serialization: Table I links are 768 bytes/cycle, so
    // a small control packet occupies a link for well under a cycle.
    const double serialize =
        static_cast<double>(bytes) / params_.bytesPerTick;

    // Walk the XY route in place rather than materializing it: this
    // runs once per packet, and the route() vector allocation shows up
    // in whole-run profiles. Direction codes match linkIndex().
    Coord cur = topo_.coordOf(src);
    const Coord goal = topo_.coordOf(dst);
    TileId tile = src;
    std::uint64_t nhops = 0;
    double t = static_cast<double>(now);
    const auto traverse = [&](unsigned dir, TileId next) {
        const std::size_t link =
            static_cast<std::size_t>(tile) * 4 + dir;
        const double depart = std::max(t, linkFree_[link]);
        stats_.linkWait.add(depart - t);
        if (spatial_) [[unlikely]]
            spatial_->linkTraversed(link, bytes, serialize, depart - t);
        if (!bpLinks_.empty()) [[unlikely]]
            bpLinks_[link]->linkTraversed(serialize, depart - t);
        linkFree_[link] = depart + serialize;
        t = depart + serialize + static_cast<double>(params_.linkLatency);
        tile = next;
        ++nhops;
    };
    // X first, then Y (dimension-ordered routing), as in route().
    while (cur.x != goal.x) {
        const bool east = goal.x > cur.x;
        cur.x += east ? 1 : -1;
        traverse(east ? 0u : 1u, cur.y * topo_.width() + cur.x);
    }
    while (cur.y != goal.y) {
        const bool south = goal.y > cur.y;
        cur.y += south ? 1 : -1;
        traverse(south ? 2u : 3u, cur.y * topo_.width() + cur.x);
    }

    stats_.byteHops += bytes * nhops;
    stats_.totalHops += nhops;
    const Tick arrival = static_cast<Tick>(std::ceil(t));
    stats_.totalLatency += arrival - now;
    return arrival;
}

void
Network::send(TileId src, TileId dst, std::size_t bytes,
              EventFn on_arrive)
{
    if (domains_ && src != dst && DomainSet::onWorker()) [[unlikely]] {
        // Cross-tile: the route may cross any strip's links, so the
        // whole send body must run at its serial position. Arrival is
        // >= now + linkLatency = the window's lookahead, so deferring
        // to the barrier never delays a delivery past its due tick.
        domains_->recordSend(src, dst, static_cast<std::uint32_t>(bytes),
                             std::move(on_arrive));
        return;
    }
    sendAt(engine_.now(), src, dst, bytes, std::move(on_arrive));
}

void
Network::sendAt(Tick now, TileId src, TileId dst, std::size_t bytes,
                EventFn on_arrive)
{
    const Tick arrive = computeArrival(now, src, dst, bytes);
    // Sequencer mode: route the delivery (and its companions) into the
    // destination tile's domain queue. Serial / worker: no-op.
    const DomainSet::ScopedTarget target(
        domains_, domains_ ? domains_->domainOf(dst) : 0);
    if (auditor_) [[unlikely]] {
        auditor_->packetSent(bytes);
        if (fusionActive()) {
            // Fused: the delivered-count runs inside the arrival
            // event, immediately before the callback -- the same
            // adjacency same-tick FIFO gave the two-event form.
            scheduleFused(arrive, bytes, kFuseAudit, dst, kInvalidTile,
                          0, std::move(on_arrive));
            return;
        }
        // Unfused: the delivery count is its own event, scheduled
        // before the arrival callback: same-tick FIFO runs it first,
        // and a dropped or never-scheduled delivery shows up as a
        // sent != delivered imbalance at finalize().
        Auditor *auditor = auditor_;
        engine_.scheduleAt(arrive, [auditor, bytes] {
            auditor->packetDelivered(bytes);
        });
    }
    engine_.scheduleAt(arrive, std::move(on_arrive));
}

void
Network::sendTracedSlow(TileId src, TileId dst, std::size_t bytes,
                        EventFn on_arrive, TileId trace_owner,
                        Vpn trace_vpn)
{
    if (!tracer_->active(trace_owner, trace_vpn)) {
        send(src, dst, bytes, std::move(on_arrive));
        return;
    }
    tracer_->record(trace_owner, trace_vpn, engine_.now(),
                    SpanEvent::NetSend, src,
                    static_cast<std::uint64_t>(dst));
    const Tick arrive = computeArrival(engine_.now(), src, dst, bytes);
    if (fusionActive()) {
        std::uint8_t mode = kFuseTrace;
        if (auditor_) [[unlikely]] {
            auditor_->packetSent(bytes);
            mode |= kFuseAudit;
        }
        scheduleFused(arrive, bytes, mode, dst, trace_owner, trace_vpn,
                      std::move(on_arrive));
        return;
    }
    if (auditor_) [[unlikely]] {
        auditor_->packetSent(bytes);
        Auditor *auditor = auditor_;
        engine_.scheduleAt(arrive, [auditor, bytes] {
            auditor->packetDelivered(bytes);
        });
    }
    // Two same-tick events instead of one wrapping lambda: wrapping
    // would nest an EventFn inside another's inline storage. Same-tick
    // FIFO order guarantees the NetArrive record lands before the
    // delivery callback runs, exactly as the wrapped form did.
    Tracer *tracer = tracer_;
    engine_.scheduleAt(arrive,
                       [tracer, trace_owner, trace_vpn, dst, arrive] {
                           tracer->record(
                               trace_owner, trace_vpn, arrive,
                               SpanEvent::NetArrive, dst,
                               static_cast<std::uint64_t>(dst));
                       });
    engine_.scheduleAt(arrive, std::move(on_arrive));
}

void
Network::scheduleFused(Tick arrive, std::size_t bytes, std::uint8_t mode,
                       TileId dst, TileId trace_owner, Vpn trace_vpn,
                       EventFn on_arrive)
{
    // The destination domain's shard: touched by its owner worker
    // during windows and by the sequencer at barriers, never both at
    // once. Serial runs have exactly one shard.
    const std::uint32_t shard =
        domains_ ? domains_->domainOf(dst) : 0;
    FuseShard &fs = shards_[shard];
    std::uint32_t slot;
    if (fs.freeHead != kNoSlot) {
        slot = fs.freeHead;
        fs.freeHead = fs.slab[slot].nextFree;
    } else {
        // Slab growth is the only allocation on this path; once the
        // in-flight high-water mark is reached, slots recycle through
        // the free list and steady state allocates nothing.
        slot = static_cast<std::uint32_t>(fs.slab.size());
        fs.slab.emplace_back();
    }
    PendingDelivery &p = fs.slab[slot];
    p.fn = std::move(on_arrive);
    p.bytes = bytes;
    p.arrive = arrive;
    p.dst = dst;
    p.traceOwner = trace_owner;
    p.traceVpn = trace_vpn;
    p.mode = mode;
    engine_.scheduleAt(arrive,
                       [this, shard, slot] { deliverFused(shard, slot); });
}

void
Network::deliverFused(std::uint32_t shard, std::uint32_t slot)
{
    // Copy the payload out and release the slot before running any of
    // it: the arrival callback may send further packets, growing or
    // reusing the slab.
    FuseShard &fs = shards_[shard];
    PendingDelivery &p = fs.slab[slot];
    const std::size_t bytes = p.bytes;
    const Tick arrive = p.arrive;
    const TileId dst = p.dst;
    const TileId traceOwner = p.traceOwner;
    const Vpn traceVpn = p.traceVpn;
    const std::uint8_t mode = p.mode;
    EventFn fn = std::move(p.fn);
    p.nextFree = fs.freeHead;
    fs.freeHead = slot;

    // Companion order matches the unfused schedule order: delivered
    // count, then the NetArrive record, then the arrival callback.
    if (mode & kFuseAudit)
        auditor_->packetDelivered(bytes);
    if (mode & kFuseTrace) {
        tracer_->record(traceOwner, traceVpn, arrive,
                        SpanEvent::NetArrive, dst,
                        static_cast<std::uint64_t>(dst));
    }
    fn();
}

void
Network::dataHop(TileId src, TileId dst, std::size_t bytes,
                 EventFn at_arrive)
{
    if (domains_ && src != dst && DomainSet::onWorker()) [[unlikely]] {
        domains_->recordHop(src, dst, static_cast<std::uint32_t>(bytes),
                            std::move(at_arrive));
        return;
    }
    dataHopAt(engine_.now(), src, dst, bytes, std::move(at_arrive));
}

void
Network::dataHopAt(Tick now, TileId src, TileId dst, std::size_t bytes,
                   EventFn at_arrive)
{
    const Tick arrive = computeArrival(now, src, dst, bytes);
    const DomainSet::ScopedTarget target(
        domains_, domains_ ? domains_->domainOf(dst) : 0);
    engine_.scheduleAt(arrive, std::move(at_arrive));
}

void
Network::setDomains(DomainSet *domains)
{
    domains_ = domains;
    // Re-shard the fused slab; any previous slots are free-listed (the
    // attach/detach points bracket the run, when nothing is in flight).
    shards_.clear();
    shards_.resize(domains_ ? domains_->count() : 1);
    if (!domains_)
        return;
    domains_->setSendReplay([this](Tick when, TileId src, TileId dst,
                                   std::uint32_t bytes, EventFn fn) {
        sendAt(when, src, dst, bytes, std::move(fn));
    });
    domains_->setHopReplay([this](Tick when, TileId src, TileId dst,
                                  std::uint32_t bytes, EventFn fn) {
        dataHopAt(when, src, dst, bytes, std::move(fn));
    });
}

void
Network::foldDomainStats()
{
    if (!domains_)
        return;
    // Tile-local packets timed live on workers only bump the packet
    // and byte counts (no hops, no latency accumulation), exactly as
    // the serial src == dst early return does.
    stats_.packets += domains_->localPackets();
    stats_.totalBytes += domains_->localBytes();
}

void
Network::setBackpressure(BackpressureCollector &bp)
{
    // Direction codes match linkIndex(): E=0, W=1, S=2, N=3.
    static constexpr const char *kDirNames[4] = {"e", "w", "s", "n"};
    bpLinks_.resize(linkFree_.size());
    for (std::size_t i = 0; i < bpLinks_.size(); ++i) {
        bpLinks_[i] =
            bp.add("noc.link.t" + std::to_string(i / 4) + "." +
                       kDirNames[i % 4],
                   ResourceKind::Link, 0);
    }
}

void
Network::registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + "packets", &stats_.packets);
    reg.addCounter(prefix + "total_bytes", &stats_.totalBytes);
    reg.addCounter(prefix + "byte_hops", &stats_.byteHops);
    reg.addCounter(prefix + "total_hops", &stats_.totalHops);
    reg.addCounter(prefix + "total_latency", &stats_.totalLatency);
    reg.addSummary(prefix + "link_wait", &stats_.linkWait);
}

} // namespace hdpat
