#include "noc/network.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace hdpat
{

Network::Network(Engine &engine, const MeshTopology &topo,
                 NocParams params)
    : engine_(engine), topo_(topo), params_(params)
{
    hdpat_fatal_if(params_.bytesPerTick <= 0.0,
                   "NoC bandwidth must be positive");
    linkFree_.assign(static_cast<std::size_t>(topo_.numTiles()) * 4, 0);
}

std::size_t
Network::linkIndex(TileId tile, TileId next) const
{
    const Coord a = topo_.coordOf(tile);
    const Coord b = topo_.coordOf(next);
    unsigned dir;
    if (b.x == a.x + 1 && b.y == a.y) {
        dir = 0; // east
    } else if (b.x == a.x - 1 && b.y == a.y) {
        dir = 1; // west
    } else if (b.y == a.y + 1 && b.x == a.x) {
        dir = 2; // south
    } else if (b.y == a.y - 1 && b.x == a.x) {
        dir = 3; // north
    } else {
        hdpat_panic("non-adjacent link " << tile << " -> " << next);
    }
    return static_cast<std::size_t>(tile) * 4 + dir;
}

std::vector<TileId>
Network::route(TileId src, TileId dst) const
{
    std::vector<TileId> path;
    Coord cur = topo_.coordOf(src);
    const Coord goal = topo_.coordOf(dst);
    path.push_back(src);
    // X first, then Y (dimension-ordered routing).
    while (cur.x != goal.x) {
        cur.x += (goal.x > cur.x) ? 1 : -1;
        path.push_back(cur.y * topo_.width() + cur.x);
    }
    while (cur.y != goal.y) {
        cur.y += (goal.y > cur.y) ? 1 : -1;
        path.push_back(cur.y * topo_.width() + cur.x);
    }
    return path;
}

Tick
Network::computeArrival(Tick now, TileId src, TileId dst,
                        std::size_t bytes)
{
    ++stats_.packets;
    stats_.totalBytes += bytes;

    if (src == dst)
        return now + params_.localLatency;

    // Fractional serialization: Table I links are 768 bytes/cycle, so
    // a small control packet occupies a link for well under a cycle.
    const double serialize =
        static_cast<double>(bytes) / params_.bytesPerTick;

    const std::vector<TileId> path = route(src, dst);
    double t = static_cast<double>(now);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const std::size_t link = linkIndex(path[i], path[i + 1]);
        const double depart = std::max(t, linkFree_[link]);
        stats_.linkWait.add(depart - t);
        linkFree_[link] = depart + serialize;
        t = depart + serialize + static_cast<double>(params_.linkLatency);
    }

    const std::uint64_t nhops = path.size() - 1;
    stats_.byteHops += bytes * nhops;
    stats_.totalHops += nhops;
    const Tick arrival = static_cast<Tick>(std::ceil(t));
    stats_.totalLatency += arrival - now;
    return arrival;
}

void
Network::send(TileId src, TileId dst, std::size_t bytes,
              EventFn on_arrive)
{
    const Tick arrive = computeArrival(engine_.now(), src, dst, bytes);
    engine_.scheduleAt(arrive, std::move(on_arrive));
}

} // namespace hdpat
