/**
 * @file
 * Plane geometry helpers for the wafer mesh: coordinates, Manhattan /
 * Chebyshev distance, ring membership and quadrant classification used
 * by the concentric-layer structures (paper §IV-C/D/E).
 */

#ifndef HDPAT_NOC_GEOMETRY_HH
#define HDPAT_NOC_GEOMETRY_HH

#include <cmath>
#include <cstdint>

namespace hdpat
{

/** Integer tile coordinate on the wafer mesh. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &) const = default;
};

/**
 * The IOMMU/CPU tile of a W x H wafer: ((W-1)/2, (H-1)/2).
 *
 * For odd dimensions this is the exact center; for even or
 * rectangular meshes (Fig 22's 7x12, 8x8) it is the upper-left tile
 * of the central 2x2 block — always in-mesh, and the single
 * definition every center-relative structure (mesh topology,
 * concentric layers, cluster map) must share.
 */
Coord meshCenter(int width, int height);

/** |dx| + |dy| — the mesh hop count under XY routing. */
int manhattan(Coord a, Coord b);

/** max(|dx|, |dy|) — ring index relative to a center. */
int chebyshev(Coord a, Coord b);

/**
 * Quadrant of @p c relative to @p center: 0..3 counter-clockwise
 * starting from the +x/+y quadrant. Tiles on an axis are assigned to
 * the quadrant they border counter-clockwise (deterministic):
 * +y axis -> 0, -x axis -> 1, -y axis -> 2, +x axis -> 3. The center
 * itself belongs to quadrant 0 by definition, so ring-0 callers never
 * bias one quadrant's population.
 */
int quadrantOf(Coord c, Coord center);

/**
 * Angle of @p c around @p center in [0, 2*pi), used to order ring
 * tiles for cluster enumeration.
 */
double angleOf(Coord c, Coord center);

} // namespace hdpat

#endif // HDPAT_NOC_GEOMETRY_HH
