/**
 * @file
 * Analytical mesh network with XY (dimension-ordered) routing.
 *
 * Each directed link has a busy-until time: a packet traversing a link
 * serializes (size / bandwidth) after the link frees, then pays the
 * fixed per-link latency (Table I: 768 GB/s, 32 cycles per link). This
 * captures geometry-dependent latency and link contention without
 * per-flit events, and accounts traffic in byte-hops for the overhead
 * numbers in §V-D.
 */

#ifndef HDPAT_NOC_NETWORK_HH
#define HDPAT_NOC_NETWORK_HH

#include <cstdint>
#include <vector>

#include "noc/mesh_topology.hh"
#include "obs/backpressure.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hdpat
{

class Auditor;
class Profiler;
class SpatialCollector;

/** Timing/bandwidth parameters of the interposer mesh. */
struct NocParams
{
    /** Fixed traversal latency per link, in ticks. */
    Tick linkLatency = 32;
    /** Link bandwidth in bytes per tick (768 GB/s at 1 GHz). */
    double bytesPerTick = 768.0;
    /** Latency for a message whose source and destination coincide. */
    Tick localLatency = 1;
};

/** Conventional message sizes on the translation plane, in bytes. */
struct NocMessageBytes
{
    static constexpr std::size_t kTranslationRequest = 32;
    static constexpr std::size_t kTranslationResponse = 32;
    static constexpr std::size_t kProbeRequest = 32;
    static constexpr std::size_t kProbeResponse = 32;
    static constexpr std::size_t kPtePush = 32;
    static constexpr std::size_t kInvalidate = 32;
    static constexpr std::size_t kInvalidateAck = 32;
    static constexpr std::size_t kDataHeader = 16;
    static constexpr std::size_t kCacheLine = 64;
};

/**
 * The mesh interconnect. All inter-tile communication goes through
 * send(), which computes the arrival tick under current link occupancy
 * and schedules the delivery callback.
 */
class Network
{
  public:
    struct Stats
    {
        std::uint64_t packets = 0;
        std::uint64_t totalBytes = 0;
        /** Sum over packets of bytes * links traversed. */
        std::uint64_t byteHops = 0;
        std::uint64_t totalHops = 0;
        /** Accumulated per-packet in-network latency. */
        Tick totalLatency = 0;
        /** Per-link-traversal queueing delay (depart - ready). */
        SummaryStat linkWait;
    };

    Network(Engine &engine, const MeshTopology &topo,
            NocParams params = {});

    /**
     * Send @p bytes from @p src to @p dst; @p on_arrive runs at the
     * computed arrival tick.
     */
    void send(TileId src, TileId dst, std::size_t bytes,
              EventFn on_arrive);

    /**
     * Traced variant: when a span is live for (@p trace_owner,
     * @p trace_vpn), record NetSend at departure and NetArrive at
     * delivery against it. Identical timing to send(); with tracing
     * off the inline null test is the only extra cost.
     */
    void sendTraced(TileId src, TileId dst, std::size_t bytes,
                    EventFn on_arrive, TileId trace_owner,
                    Vpn trace_vpn)
    {
        if (!tracer_) [[likely]] {
            send(src, dst, bytes, std::move(on_arrive));
            return;
        }
        sendTracedSlow(src, dst, bytes, std::move(on_arrive),
                       trace_owner, trace_vpn);
    }

    /** Tracer for translation-plane messages (null = off). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Conservation auditor (null = off). With one attached, send()
     * counts the packet at departure and schedules a same-tick
     * delivery count right before the arrival callback, so lost or
     * duplicated deliveries surface at finalize().
     */
    void setAuditor(Auditor *auditor) { auditor_ = auditor; }

    /** Per-link heatmap collector (null = off). Attaching one forces
     *  unfused (per-companion-event) delivery; see fusionActive(). */
    void setSpatial(SpatialCollector *spatial) { spatial_ = spatial; }

    /**
     * Enable/disable arrival fusion (HDPAT_NOC_FUSE; default on).
     *
     * With fusion on, a packet whose delivery needs observer
     * companions (the auditor's delivered-count, the tracer's
     * NetArrive record) gets ONE scheduled event that performs the
     * companions and the arrival callback back to back, instead of
     * two or three separate same-tick events. The companions are
     * always scheduled consecutively at the same tick, so same-tick
     * FIFO already ran them adjacently -- folding them into one event
     * preserves the exact global execution order and is therefore
     * bitwise-identical in simulated behavior, while cutting
     * engine.events_scheduled by one to two per packet in audited
     * or traced runs.
     */
    void setFusion(bool on) { fuseEnabled_ = on; }

    /**
     * True when deliveries may be fused. Spatial observation forces
     * the pre-fusion event shape so heatmap-bearing runs execute the
     * exact per-companion event sequence older baselines recorded.
     */
    bool fusionActive() const { return fuseEnabled_ && !spatial_; }

    /** Host self-profiler for the routing path (null = off). */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Attach / detach the domain-parallel scheduler. With one
     * attached, send() on a worker thread defers its whole body (route
     * walk, conservation hooks, delivery scheduling) to the barrier
     * sequencer as a Send record -- cross-tile packets route through
     * intermediate strips' links, so the shared link-occupancy state
     * must only ever advance in serial order. Tile-local traffic
     * (src == dst touches no link) stays live on the worker, with its
     * packet counts kept as per-domain deltas. Also installs the
     * sequencer replay hooks and shards the fused-delivery slab per
     * destination domain (worker-owned during windows, sequencer-owned
     * at barriers, so slot reuse is phase-disjoint).
     */
    void setDomains(DomainSet *domains);

    /** Fold the per-domain local-packet deltas into stats() (run end;
     *  pure sums, so the fold is order-independent and exact). */
    void foldDomainStats();

    /**
     * Data-plane hop: schedule @p at_arrive at
     * computeArrival(now, src, dst, bytes). The zero-copy data path
     * uses this instead of send() because raw line movement carries no
     * conservation companions. On a domain worker a cross-tile hop is
     * deferred to the sequencer like a send.
     */
    void dataHop(TileId src, TileId dst, std::size_t bytes,
                 EventFn at_arrive);

    /**
     * Register every directed link as an analytic backpressure
     * resource. Link occupancy is computed at send time in fractional
     * ticks (not observed via time-ordered transitions), so links
     * report busy/wait totals and are exempt from the transition
     * oracle; see obs/backpressure.hh. Does not affect fusion.
     */
    void setBackpressure(BackpressureCollector &bp);

    /** Register NoC metrics under @p prefix (e.g. "noc."). */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Pure timing variant: advance link state and return the arrival
     * tick without scheduling anything.
     */
    Tick computeArrival(Tick now, TileId src, TileId dst,
                        std::size_t bytes);

    /**
     * Enumerate the XY route from @p src to @p dst as a tile sequence
     * (inclusive of both endpoints). Exposed for the route-based
     * caching policy (§IV-B), which probes intermediate GPMs.
     */
    std::vector<TileId> route(TileId src, TileId dst) const;

    int hops(TileId src, TileId dst) const
    {
        return topo_.hopDistance(src, dst);
    }

    const MeshTopology &topology() const { return topo_; }
    const NocParams &params() const { return params_; }
    const Stats &stats() const { return stats_; }

  private:
    /** Directed link leaving @p tile toward @p next. 4 per tile. */
    std::size_t linkIndex(TileId tile, TileId next) const;

    /** Out-of-line body of sendTraced for the tracing-on case. */
    void sendTracedSlow(TileId src, TileId dst, std::size_t bytes,
                        EventFn on_arrive, TileId trace_owner,
                        Vpn trace_vpn);

    /**
     * The full send body at an explicit departure tick: route walk,
     * conservation hooks, delivery scheduling. send() calls this with
     * engine_.now(); the domain sequencer calls it when replaying a
     * worker-deferred Send record at its serial position.
     */
    void sendAt(Tick now, TileId src, TileId dst, std::size_t bytes,
                EventFn on_arrive);

    /** dataHop at an explicit tick (the Hop-record replay path). */
    void dataHopAt(Tick now, TileId src, TileId dst, std::size_t bytes,
                   EventFn at_arrive);

    /** Companion work folded into a fused delivery. */
    static constexpr std::uint8_t kFuseAudit = 1;
    static constexpr std::uint8_t kFuseTrace = 2;

    /**
     * One in-flight fused delivery. The payload lives in a slab slot
     * (free-listed, so steady state never allocates) because the
     * arrival callback is itself an EventFn: capturing it inside the
     * fused event's lambda would nest EventFn storage and overflow
     * the inline capture budget. The scheduled lambda captures only
     * {Network*, slot index}.
     */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
    struct PendingDelivery
    {
        EventFn fn;
        std::size_t bytes = 0;
        Tick arrive = 0;
        TileId dst = kInvalidTile;
        TileId traceOwner = kInvalidTile;
        Vpn traceVpn = 0;
        std::uint8_t mode = 0;
        std::uint32_t nextFree = kNoSlot;
    };

    /**
     * One slab + free list per destination domain (one shard total on
     * the serial path). A shard is touched by its owner worker during
     * windows and by the sequencer at barriers -- phase-disjoint, so
     * slot reuse needs no locking.
     */
    struct FuseShard
    {
        std::vector<PendingDelivery> slab;
        std::uint32_t freeHead = kNoSlot;
    };

    /** Schedule one fused delivery event for @p on_arrive. */
    void scheduleFused(Tick arrive, std::size_t bytes, std::uint8_t mode,
                       TileId dst, TileId trace_owner, Vpn trace_vpn,
                       EventFn on_arrive);
    /** Run a fused delivery: companions, then the arrival callback. */
    void deliverFused(std::uint32_t shard, std::uint32_t slot);

    Engine &engine_;
    const MeshTopology &topo_;
    NocParams params_;
    Tracer *tracer_ = nullptr;
    Auditor *auditor_ = nullptr;
    SpatialCollector *spatial_ = nullptr;
    Profiler *profiler_ = nullptr;
    /** Busy-until time per directed link, in fractional ticks. */
    std::vector<double> linkFree_;
    /** Parallel to linkFree_; empty = backpressure off. */
    std::vector<Resource *> bpLinks_;
    /** Fused-delivery shards (size 1 serial; one per domain with K). */
    std::vector<FuseShard> shards_;
    bool fuseEnabled_ = true;
    DomainSet *domains_ = nullptr;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_NOC_NETWORK_HH
