#include "noc/mesh_topology.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hdpat
{

MeshTopology::MeshTopology(int width, int height, TileId cpu,
                           std::vector<bool> active)
    : width_(width), height_(height), cpu_(cpu),
      active_(std::move(active))
{
    hdpat_fatal_if(width_ <= 0 || height_ <= 0, "empty mesh");
    hdpat_fatal_if(!isActive(cpu_), "CPU tile must be active");
    for (TileId t = 0; t < numTiles(); ++t) {
        if (active_[static_cast<std::size_t>(t)] && t != cpu_)
            gpms_.push_back(t);
    }
    hdpat_fatal_if(gpms_.empty(), "topology has no GPMs");
}

MeshTopology
MeshTopology::wafer(int width, int height)
{
    std::vector<bool> active(static_cast<std::size_t>(width * height),
                             true);
    const Coord center = meshCenter(width, height);
    const TileId cpu = center.y * width + center.x;
    return MeshTopology(width, height, cpu, std::move(active));
}

MeshTopology
MeshTopology::mcm4()
{
    std::vector<bool> active(9, false);
    const TileId cpu = 4; // center of the 3x3 grid
    active[4] = true;
    active[1] = true; // (1, 0)
    active[3] = true; // (0, 1)
    active[5] = true; // (2, 1)
    active[7] = true; // (1, 2)
    return MeshTopology(3, 3, cpu, std::move(active));
}

TileId
MeshTopology::tileAt(Coord c) const
{
    if (c.x < 0 || c.x >= width_ || c.y < 0 || c.y >= height_)
        return kInvalidTile;
    const TileId tile = c.y * width_ + c.x;
    return active_[static_cast<std::size_t>(tile)] ? tile : kInvalidTile;
}

bool
MeshTopology::isActive(TileId tile) const
{
    return tile >= 0 && tile < numTiles() &&
           active_[static_cast<std::size_t>(tile)];
}

int
MeshTopology::maxRing() const
{
    int max_ring = 0;
    for (TileId gpm : gpms_)
        max_ring = std::max(max_ring, ringOf(gpm));
    return max_ring;
}

} // namespace hdpat
