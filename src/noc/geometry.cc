#include "noc/geometry.hh"

#include <algorithm>

namespace hdpat
{

Coord
meshCenter(int width, int height)
{
    return Coord{(width - 1) / 2, (height - 1) / 2};
}

int
manhattan(Coord a, Coord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

int
chebyshev(Coord a, Coord b)
{
    return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

int
quadrantOf(Coord c, Coord center)
{
    const int dx = c.x - center.x;
    const int dy = c.y - center.y;
    if (dx == 0 && dy == 0)
        return 0; // the center belongs to quadrant 0 by definition
    if (dx >= 0 && dy > 0)
        return 0;
    if (dx < 0 && dy >= 0)
        return 1;
    if (dx <= 0 && dy < 0)
        return 2;
    return 3; // dx > 0 && dy <= 0
}

double
angleOf(Coord c, Coord center)
{
    const double dx = static_cast<double>(c.x - center.x);
    const double dy = static_cast<double>(c.y - center.y);
    double angle = std::atan2(dy, dx);
    if (angle < 0.0)
        angle += 2.0 * M_PI;
    return angle;
}

} // namespace hdpat
