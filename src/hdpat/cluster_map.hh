/**
 * @file
 * Clustering + rotation map (paper §IV-D/E, Fig 11).
 *
 * Within each concentric layer a PTE lives on exactly one GPM:
 *
 *   ID_cluster = VPN mod N_c                      (Eq. 1)
 *   ID_local   = floor(VPN / N_c) mod N_g         (Eq. 2)
 *
 * where N_c is the number of (quadrant-based) clusters and N_g the
 * GPMs per cluster in that layer. The rotation mechanism offsets the
 * enumeration start of alternate layers by 180 degrees so that every
 * requester has a nearby caching candidate in some layer.
 *
 * Also provides the symmetric two-group assignment used by the
 * straightforward distributed-caching baseline (§V-A).
 */

#ifndef HDPAT_HDPAT_CLUSTER_MAP_HH
#define HDPAT_HDPAT_CLUSTER_MAP_HH

#include <vector>

#include "hdpat/concentric_layers.hh"
#include "noc/mesh_topology.hh"
#include "sim/types.hh"

namespace hdpat
{

class ClusterMap
{
  public:
    /**
     * @param layers Concentric layer structure.
     * @param num_clusters N_c; the paper uses quadrant clustering (4).
     * @param rotate Enable the 180-degree rotation of alternate layers.
     */
    ClusterMap(const ConcentricLayers &layers, int num_clusters = 4,
               bool rotate = true);

    /** The single candidate caching GPM for @p vpn in @p layer. */
    TileId auxTileFor(Vpn vpn, int layer) const;

    /** Candidate GPMs for @p vpn across all layers (inner first). */
    std::vector<TileId> auxTilesFor(Vpn vpn) const;

    int numLayers() const { return layers_.numLayers(); }
    int numClusters() const { return numClusters_; }
    bool rotationEnabled() const { return rotate_; }

    const ConcentricLayers &layers() const { return layers_; }

  private:
    const ConcentricLayers &layers_;
    int numClusters_;
    bool rotate_;
    /**
     * Per layer: the angle-ordered tile list, rotated by half a ring
     * for odd layers when rotation is enabled, then chunked into
     * clusters. clusterStart_[layer][c] is the offset of cluster c.
     */
    std::vector<std::vector<TileId>> ordered_;
    std::vector<std::vector<std::size_t>> clusterStart_;
};

/**
 * The straightforward distributed-caching baseline (§V-A): the caching
 * GPMs (same tiles as the concentric setup) are split into two equal
 * groups placed symmetrically on the two sides of the CPU; a requester
 * probes the nearest peer within its own group, then goes straight to
 * the IOMMU.
 */
class DistributedGroups
{
  public:
    explicit DistributedGroups(const ConcentricLayers &layers);

    /** Group (0 or 1) of any tile: side of the CPU column. */
    int groupOf(TileId tile) const;

    /**
     * Nearest caching peer of @p from within its own group (never
     * @p from itself). Returns kInvalidTile if the group has no other
     * caching member.
     */
    TileId nearestGroupPeer(TileId from) const;

    const std::vector<TileId> &groupTiles(int group) const;

  private:
    const MeshTopology &topo_;
    std::vector<TileId> groups_[2];
};

} // namespace hdpat

#endif // HDPAT_HDPAT_CLUSTER_MAP_HH
