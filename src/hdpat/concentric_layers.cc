#include "hdpat/concentric_layers.hh"

#include <algorithm>

#include "noc/geometry.hh"
#include "sim/log.hh"

namespace hdpat
{

ConcentricLayers::ConcentricLayers(const MeshTopology &topo,
                                   int num_layers)
    : topo_(topo)
{
    hdpat_fatal_if(num_layers < 0, "negative layer count");
    layerOf_.assign(static_cast<std::size_t>(topo_.numTiles()), -1);

    // Rings are centered on the CPU tile, which MeshTopology places at
    // meshCenter(). Assert the shared definition so a future off-center
    // topology can't silently skew the angular ordering.
    const Coord center = meshCenter(topo_.width(), topo_.height());
    hdpat_fatal_if(!(center == topo_.cpuCoord()),
                   "concentric layers require the CPU at meshCenter()");
    for (int ring = 1; ring <= num_layers; ++ring) {
        std::vector<TileId> tiles;
        for (TileId gpm : topo_.gpmTiles()) {
            if (topo_.ringOf(gpm) == ring)
                tiles.push_back(gpm);
        }
        if (tiles.empty())
            continue; // Ring clipped away entirely (tiny meshes).
        std::sort(tiles.begin(), tiles.end(),
                  [&](TileId a, TileId b) {
                      const double aa = angleOf(topo_.coordOf(a), center);
                      const double ab = angleOf(topo_.coordOf(b), center);
                      if (aa != ab)
                          return aa < ab;
                      return a < b;
                  });
        const int layer = static_cast<int>(layers_.size());
        for (TileId t : tiles)
            layerOf_[static_cast<std::size_t>(t)] = layer;
        layers_.push_back(std::move(tiles));
    }
}

const std::vector<TileId> &
ConcentricLayers::layerTiles(int layer) const
{
    hdpat_panic_if(layer < 0 || layer >= numLayers(),
                   "layer " << layer << " out of range");
    return layers_[static_cast<std::size_t>(layer)];
}

int
ConcentricLayers::layerOf(TileId tile) const
{
    if (tile < 0 || tile >= topo_.numTiles())
        return -1;
    return layerOf_[static_cast<std::size_t>(tile)];
}

TileId
ConcentricLayers::nearestInLayer(int layer, TileId from) const
{
    const auto &tiles = layerTiles(layer);
    TileId best = tiles.front();
    int best_dist = topo_.hopDistance(from, best);
    for (TileId t : tiles) {
        const int d = topo_.hopDistance(from, t);
        if (d < best_dist || (d == best_dist && t < best)) {
            best = t;
            best_dist = d;
        }
    }
    return best;
}

} // namespace hdpat
