/**
 * @file
 * Concentric caching layers (paper §IV-C).
 *
 * GPMs are organised into rings by Chebyshev distance from the central
 * CPU tile. With C caching layers, rings 1..C act as translation
 * caches; layer index 0 is the innermost ring. The paper's default for
 * a 7x7 wafer is C=2 ("one step away from the border"), leaving the
 * outermost ring as pure requesters.
 */

#ifndef HDPAT_HDPAT_CONCENTRIC_LAYERS_HH
#define HDPAT_HDPAT_CONCENTRIC_LAYERS_HH

#include <vector>

#include "noc/mesh_topology.hh"
#include "sim/types.hh"

namespace hdpat
{

class ConcentricLayers
{
  public:
    /**
     * @param topo The wafer topology.
     * @param num_layers Requested layer count C; clamped to the rings
     *                   actually present (a ring with no GPM is
     *                   skipped).
     */
    ConcentricLayers(const MeshTopology &topo, int num_layers);

    /** Actual number of caching layers built (<= requested C). */
    int numLayers() const { return static_cast<int>(layers_.size()); }

    /**
     * Tiles of caching layer @p layer, ordered counter-clockwise by
     * angle around the CPU (stable enumeration used by ClusterMap).
     * Layer 0 is the innermost ring.
     */
    const std::vector<TileId> &layerTiles(int layer) const;

    /** Layer index of @p tile, or -1 when it is not a caching tile. */
    int layerOf(TileId tile) const;

    /** True when @p tile caches translations for peers. */
    bool isCachingTile(TileId tile) const { return layerOf(tile) >= 0; }

    /**
     * The tile of layer @p layer closest (hop count) to @p from; ties
     * break toward the lowest tile id for determinism.
     */
    TileId nearestInLayer(int layer, TileId from) const;

    const MeshTopology &topology() const { return topo_; }

  private:
    const MeshTopology &topo_;
    std::vector<std::vector<TileId>> layers_;
    std::vector<int> layerOf_; ///< Indexed by tile id; -1 = none.
};

} // namespace hdpat

#endif // HDPAT_HDPAT_CONCENTRIC_LAYERS_HH
