#include "hdpat/cluster_map.hh"

#include <algorithm>

#include "noc/geometry.hh"
#include "sim/log.hh"

namespace hdpat
{

ClusterMap::ClusterMap(const ConcentricLayers &layers, int num_clusters,
                       bool rotate)
    : layers_(layers), numClusters_(num_clusters), rotate_(rotate)
{
    hdpat_fatal_if(num_clusters <= 0, "need at least one cluster");

    for (int layer = 0; layer < layers_.numLayers(); ++layer) {
        std::vector<TileId> tiles = layers_.layerTiles(layer);

        // Rotation: alternate layers begin their enumeration 180
        // degrees around the ring, so cached copies of the same VPN
        // in adjacent layers sit on opposite sides of the wafer.
        if (rotate_ && (layer % 2) == 1) {
            const std::size_t half = tiles.size() / 2;
            std::rotate(tiles.begin(), tiles.begin() + half, tiles.end());
        }

        // Chunk the ring into N_c contiguous clusters, as evenly as
        // possible (clipped rings on rectangular wafers may not divide
        // exactly by four).
        const std::size_t n = tiles.size();
        const std::size_t clusters =
            std::min<std::size_t>(numClusters_, n);
        std::vector<std::size_t> starts;
        std::size_t offset = 0;
        for (std::size_t c = 0; c < clusters; ++c) {
            starts.push_back(offset);
            offset += n / clusters + (c < n % clusters ? 1 : 0);
        }
        starts.push_back(n); // sentinel end

        ordered_.push_back(std::move(tiles));
        clusterStart_.push_back(std::move(starts));
    }
}

TileId
ClusterMap::auxTileFor(Vpn vpn, int layer) const
{
    hdpat_panic_if(layer < 0 || layer >= numLayers(),
                   "aux layer " << layer << " out of range");
    const auto &tiles = ordered_[static_cast<std::size_t>(layer)];
    const auto &starts = clusterStart_[static_cast<std::size_t>(layer)];
    const std::size_t clusters = starts.size() - 1;

    const std::size_t cluster =
        static_cast<std::size_t>(vpn % clusters);               // Eq. 1
    const std::size_t group_size = starts[cluster + 1] - starts[cluster];
    const std::size_t local = static_cast<std::size_t>(
        (vpn / clusters) % group_size);                         // Eq. 2
    return tiles[starts[cluster] + local];
}

std::vector<TileId>
ClusterMap::auxTilesFor(Vpn vpn) const
{
    std::vector<TileId> out;
    out.reserve(static_cast<std::size_t>(numLayers()));
    for (int layer = 0; layer < numLayers(); ++layer)
        out.push_back(auxTileFor(vpn, layer));
    return out;
}

DistributedGroups::DistributedGroups(const ConcentricLayers &layers)
    : topo_(layers.topology())
{
    for (int layer = 0; layer < layers.numLayers(); ++layer) {
        for (TileId t : layers.layerTiles(layer))
            groups_[groupOf(t)].push_back(t);
    }
    hdpat_fatal_if(groups_[0].empty() && groups_[1].empty(),
                   "distributed groups need caching tiles");
}

int
DistributedGroups::groupOf(TileId tile) const
{
    const Coord c = topo_.coordOf(tile);
    // Same center definition as MeshTopology::wafer / ConcentricLayers.
    const Coord center = meshCenter(topo_.width(), topo_.height());
    if (c.x != center.x)
        return c.x < center.x ? 0 : 1;
    // Tiles on the CPU column split by vertical side.
    return c.y < center.y ? 0 : 1;
}

TileId
DistributedGroups::nearestGroupPeer(TileId from) const
{
    const auto &group = groups_[groupOf(from)];
    TileId best = kInvalidTile;
    int best_dist = 0;
    for (TileId t : group) {
        if (t == from)
            continue;
        const int d = topo_.hopDistance(from, t);
        if (best == kInvalidTile || d < best_dist ||
            (d == best_dist && t < best)) {
            best = t;
            best_dist = d;
        }
    }
    return best;
}

const std::vector<TileId> &
DistributedGroups::groupTiles(int group) const
{
    hdpat_panic_if(group != 0 && group != 1, "group must be 0 or 1");
    return groups_[group];
}

} // namespace hdpat
