#include "mem/tlb.hh"

#include "sim/log.hh"

namespace hdpat
{

Tlb::Tlb(std::size_t num_sets, std::size_t num_ways)
    : numSets_(num_sets), numWays_(num_ways)
{
    hdpat_fatal_if(num_sets == 0 || num_ways == 0,
                   "TLB requires at least one set and one way");
    const std::size_t n = numSets_ * numWays_;
    // Tag/payload/LRU lanes stay uninitialized (guarded by the valid
    // bit); only the flag lane is zeroed, so constructing a TLB costs
    // one short memset instead of touching every entry.
    vpns_.reset(new Vpn[n]);
    pfns_.reset(new Pfn[n]);
    lru_.reset(new std::uint64_t[n]);
    flags_.reset(new std::uint8_t[n]());
}

std::size_t
Tlb::setIndex(Vpn vpn) const
{
    // Mix bits so strided VPN streams do not all land in one set.
    std::uint64_t x = vpn;
    x ^= x >> 17;
    x *= 0xed5ad4bbull;
    return static_cast<std::size_t>(x % numSets_);
}

std::size_t
Tlb::findSlot(Vpn vpn) const
{
    const std::size_t base = setIndex(vpn) * numWays_;
    // First-match scan over the dense tag/flag lanes. At most one
    // valid way holds the VPN (insert refreshes in place), so exiting
    // on the hit is exact -- and measurably faster than a predicated
    // full-set scan for the wide (32-way) Table I configurations.
    for (std::size_t w = 0; w < numWays_; ++w) {
        const std::size_t i = base + w;
        if ((flags_[i] & kValid) && vpns_[i] == vpn)
            return i;
    }
    return kNone;
}

TlbEntry
Tlb::entryAt(std::size_t i) const
{
    TlbEntry e;
    e.vpn = vpns_[i];
    e.pfn = pfns_[i];
    e.remote = (flags_[i] & kRemote) != 0;
    e.prefetched = (flags_[i] & kPrefetched) != 0;
    e.valid = (flags_[i] & kValid) != 0;
    e.lruStamp = lru_[i];
    return e;
}

std::optional<Pfn>
Tlb::lookup(Vpn vpn)
{
    ++stats_.lookups;
    const std::size_t i = findSlot(vpn);
    if (i == kNone)
        return std::nullopt;
    ++stats_.hits;
    lru_[i] = ++lruClock_;
    return pfns_[i];
}

const TlbEntry *
Tlb::lookupEntry(Vpn vpn)
{
    ++stats_.lookups;
    const std::size_t i = findSlot(vpn);
    if (i == kNone)
        return nullptr;
    ++stats_.hits;
    lru_[i] = ++lruClock_;
    scratch_ = entryAt(i);
    return &scratch_;
}

std::optional<Pfn>
Tlb::peek(Vpn vpn) const
{
    const std::size_t i = findSlot(vpn);
    if (i == kNone)
        return std::nullopt;
    return pfns_[i];
}

std::uint64_t
Tlb::probeMany(std::span<const Vpn> vpns) const
{
    // Pass 1: prefetch every probed set so pass 2 scans warm lines.
    for (const Vpn vpn : vpns)
        prefetchSet(vpn);
    // Pass 2: sequential tag scans, no LRU / stats side effects.
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < vpns.size(); ++i) {
        if (findSlot(vpns[i]) != kNone && i < 64)
            hits |= std::uint64_t{1} << i;
    }
    return hits;
}

std::optional<TlbEntry>
Tlb::insert(Vpn vpn, Pfn pfn, bool remote, bool prefetched)
{
    ++stats_.inserts;
    const std::uint8_t newFlags =
        kValid | (remote ? kRemote : 0) | (prefetched ? kPrefetched : 0);
    if (const std::size_t i = findSlot(vpn); i != kNone) {
        pfns_[i] = pfn;
        flags_[i] = newFlags;
        lru_[i] = ++lruClock_;
        return std::nullopt;
    }

    // Victim: the first invalid way, else the strictly-least-recently
    // used way (ties keep the lowest way, as the AoS scan did).
    const std::size_t base = setIndex(vpn) * numWays_;
    std::size_t victim = kNone;
    for (std::size_t w = 0; w < numWays_; ++w) {
        const std::size_t i = base + w;
        if (!(flags_[i] & kValid)) {
            victim = i;
            break;
        }
        if (victim == kNone || lru_[i] < lru_[victim])
            victim = i;
    }

    std::optional<TlbEntry> evicted;
    if (flags_[victim] & kValid) {
        evicted = entryAt(victim);
        ++stats_.evictions;
    } else {
        ++occupancy_;
    }
    vpns_[victim] = vpn;
    pfns_[victim] = pfn;
    flags_[victim] = newFlags;
    lru_[victim] = ++lruClock_;
    return evicted;
}

std::optional<TlbEntry>
Tlb::invalidate(Vpn vpn)
{
    const std::size_t i = findSlot(vpn);
    if (i == kNone)
        return std::nullopt;
    TlbEntry copy = entryAt(i);
    flags_[i] = 0;
    --occupancy_;
    return copy;
}

void
Tlb::flush()
{
    const std::size_t n = numSets_ * numWays_;
    for (std::size_t i = 0; i < n; ++i)
        flags_[i] = 0;
    occupancy_ = 0;
}

} // namespace hdpat
