#include "mem/tlb.hh"

#include "sim/log.hh"

namespace hdpat
{

Tlb::Tlb(std::size_t num_sets, std::size_t num_ways)
    : numSets_(num_sets), numWays_(num_ways)
{
    hdpat_fatal_if(num_sets == 0 || num_ways == 0,
                   "TLB requires at least one set and one way");
    entries_.resize(numSets_ * numWays_);
}

std::size_t
Tlb::setIndex(Vpn vpn) const
{
    // Mix bits so strided VPN streams do not all land in one set.
    std::uint64_t x = vpn;
    x ^= x >> 17;
    x *= 0xed5ad4bbull;
    return static_cast<std::size_t>(x % numSets_);
}

TlbEntry *
Tlb::find(Vpn vpn)
{
    const std::size_t base = setIndex(vpn) * numWays_;
    for (std::size_t w = 0; w < numWays_; ++w) {
        TlbEntry &entry = entries_[base + w];
        if (entry.valid && entry.vpn == vpn)
            return &entry;
    }
    return nullptr;
}

const TlbEntry *
Tlb::find(Vpn vpn) const
{
    return const_cast<Tlb *>(this)->find(vpn);
}

std::optional<Pfn>
Tlb::lookup(Vpn vpn)
{
    if (const TlbEntry *entry = lookupEntry(vpn))
        return entry->pfn;
    return std::nullopt;
}

const TlbEntry *
Tlb::lookupEntry(Vpn vpn)
{
    ++stats_.lookups;
    if (TlbEntry *entry = find(vpn)) {
        ++stats_.hits;
        entry->lruStamp = ++lruClock_;
        return entry;
    }
    return nullptr;
}

std::optional<Pfn>
Tlb::peek(Vpn vpn) const
{
    if (const TlbEntry *entry = find(vpn))
        return entry->pfn;
    return std::nullopt;
}

std::optional<TlbEntry>
Tlb::insert(Vpn vpn, Pfn pfn, bool remote, bool prefetched)
{
    ++stats_.inserts;
    if (TlbEntry *entry = find(vpn)) {
        entry->pfn = pfn;
        entry->remote = remote;
        entry->prefetched = prefetched;
        entry->lruStamp = ++lruClock_;
        return std::nullopt;
    }

    const std::size_t base = setIndex(vpn) * numWays_;
    TlbEntry *victim = nullptr;
    for (std::size_t w = 0; w < numWays_; ++w) {
        TlbEntry &entry = entries_[base + w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (!victim || entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }

    std::optional<TlbEntry> evicted;
    if (victim->valid) {
        evicted = *victim;
        ++stats_.evictions;
    } else {
        ++occupancy_;
    }
    victim->vpn = vpn;
    victim->pfn = pfn;
    victim->remote = remote;
    victim->prefetched = prefetched;
    victim->valid = true;
    victim->lruStamp = ++lruClock_;
    return evicted;
}

std::optional<TlbEntry>
Tlb::invalidate(Vpn vpn)
{
    if (TlbEntry *entry = find(vpn)) {
        TlbEntry copy = *entry;
        entry->valid = false;
        --occupancy_;
        return copy;
    }
    return std::nullopt;
}

void
Tlb::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
    occupancy_ = 0;
}

} // namespace hdpat
