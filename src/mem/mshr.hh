/**
 * @file
 * A generic Miss Status Holding Register file.
 *
 * Coalesces concurrent misses to the same VPN: the first miss allocates
 * an entry and triggers the fill; later misses append their callbacks.
 * A full MSHR file blocks further misses — exactly the concurrency
 * limiter the paper contrasts against the redirection table (§IV-F,
 * Fig 19).
 */

#ifndef HDPAT_MEM_MSHR_HH
#define HDPAT_MEM_MSHR_HH

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/** Callback invoked when a miss resolves: (vpn, pfn). */
using MshrCallback = std::function<void(Vpn, Pfn)>;

class MshrFile
{
  public:
    /** Result of trying to register a miss. */
    enum class Outcome
    {
        Allocated, ///< New entry created; the caller must start the fill.
        Merged,    ///< Coalesced into an in-flight miss; no new fill.
        Full       ///< No free entry; the request must stall/retry.
    };

    struct Stats
    {
        std::uint64_t allocations = 0;
        std::uint64_t merges = 0;
        std::uint64_t fullRejections = 0;
    };

    /**
     * Conservation-audit hook: called with true on every entry
     * allocation and false on every entry free. Null (the default)
     * costs one pointer test per transition; the Gpm/IOMMU bind their
     * tile into it so the Auditor can balance alloc/free per tile
     * without this header depending on obs/.
     */
    using AuditHook = std::function<void(bool allocated)>;

    /** Occupancy transition reported to the backpressure hook. */
    enum class PressureEvent
    {
        Alloc, ///< A new entry was allocated (occupancy +1).
        Free,  ///< An entry was resolved and freed (occupancy -1).
        Reject ///< A miss bounced off a full table (no transition).
    };

    /**
     * Backpressure hook: same null-by-default shape as AuditHook, so
     * this header stays free of obs/ dependencies. Merged misses are
     * deliberately silent -- they occupy no entry, which is exactly
     * why a global stage==resource Little's-law check cannot hold and
     * the backpressure oracle is per-resource (see obs/backpressure.hh).
     */
    using PressureHook = std::function<void(PressureEvent)>;

    /** @param capacity 0 means unlimited. */
    explicit MshrFile(std::size_t capacity) : capacity_(capacity) {}

    void setAuditHook(AuditHook hook) { auditHook_ = std::move(hook); }

    void setPressureHook(PressureHook hook)
    {
        pressureHook_ = std::move(hook);
    }

    /** Register a miss for @p vpn; @p cb fires when it resolves. */
    Outcome registerMiss(Vpn vpn, MshrCallback cb)
    {
        auto it = entries_.find(vpn);
        if (it != entries_.end()) {
            it->second.push_back(std::move(cb));
            ++stats_.merges;
            return Outcome::Merged;
        }
        if (capacity_ != 0 && entries_.size() >= capacity_) {
            ++stats_.fullRejections;
            if (pressureHook_) [[unlikely]]
                pressureHook_(PressureEvent::Reject);
            return Outcome::Full;
        }
        entries_[vpn].push_back(std::move(cb));
        ++stats_.allocations;
        if (auditHook_) [[unlikely]]
            auditHook_(true);
        if (pressureHook_) [[unlikely]]
            pressureHook_(PressureEvent::Alloc);
        return Outcome::Allocated;
    }

    /** True if a miss for @p vpn is already in flight. */
    bool inFlight(Vpn vpn) const { return entries_.count(vpn) != 0; }

    /**
     * Resolve the miss for @p vpn: frees the entry and fires every
     * waiting callback (in registration order).
     */
    void resolve(Vpn vpn, Pfn pfn)
    {
        auto it = entries_.find(vpn);
        if (it == entries_.end())
            return;
        // Move out first: callbacks may re-enter the MSHR file.
        std::vector<MshrCallback> waiters = std::move(it->second);
        entries_.erase(it);
        if (auditHook_) [[unlikely]]
            auditHook_(false);
        if (pressureHook_) [[unlikely]]
            pressureHook_(PressureEvent::Free);
        for (auto &cb : waiters)
            cb(vpn, pfn);
    }

    std::size_t occupancy() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const
    {
        return capacity_ != 0 && entries_.size() >= capacity_;
    }

    const Stats &stats() const { return stats_; }

  private:
    std::size_t capacity_;
    std::unordered_map<Vpn, std::vector<MshrCallback>> entries_;
    Stats stats_;
    AuditHook auditHook_;
    PressureHook pressureHook_;
};

} // namespace hdpat

#endif // HDPAT_MEM_MSHR_HH
