/**
 * @file
 * A real cuckoo filter (Fan et al., CoNEXT'14), as used between the
 * L2 TLB and the last-level TLB in each GPM (paper §II-B).
 *
 * The filter answers "might this VPN be translatable locally?" with no
 * false negatives and a small, organic false-positive rate. Supports
 * insertion and deletion so the GPM can remove evicted cached PTEs.
 */

#ifndef HDPAT_MEM_CUCKOO_FILTER_HH
#define HDPAT_MEM_CUCKOO_FILTER_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace hdpat
{

/**
 * Bucketed cuckoo filter with 4-slot buckets and partial-key cuckoo
 * hashing. Fingerprints are 12 bits by default (stored in uint16).
 */
class CuckooFilter
{
  public:
    /** Statistics kept by the filter. */
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t positives = 0;
        std::uint64_t inserts = 0;
        std::uint64_t insertFailures = 0;
        std::uint64_t deletes = 0;
    };

    /**
     * @param capacity Number of items the filter should hold; the
     *                 bucket array is sized for ~95% max load, never
     *                 fewer than two buckets (capacity 0 is a legal
     *                 degenerate 8-slot filter).
     * @param fingerprint_bits Fingerprint width (1..16).
     * @param seed Hash seed (determinism).
     */
    explicit CuckooFilter(std::size_t capacity,
                          unsigned fingerprint_bits = 12,
                          std::uint64_t seed = 0x5bd1e995u);

    /**
     * Insert @p vpn.
     * @return false if the filter is too full (after max relocations).
     *         A failed insert leaves the table exactly unchanged: the
     *         relocation chain is unwound, so no previously accepted
     *         item is ever displaced (which would be a silent false
     *         negative). Callers treat failure as "must not rely on
     *         the filter" and track it via stats.
     */
    bool insert(Vpn vpn);

    /** Remove one copy of @p vpn. @return true if a copy was found. */
    bool erase(Vpn vpn);

    /** Membership query (may return false positives). */
    bool contains(Vpn vpn) const;

    /** Current number of stored fingerprints. */
    std::size_t size() const { return count_; }

    /** Total slots (4 per bucket). */
    std::size_t slotCount() const { return table_.size(); }

    /** Load factor in [0, 1]. */
    double loadFactor() const
    {
        return static_cast<double>(count_) /
               static_cast<double>(table_.size());
    }

    const Stats &stats() const { return stats_; }
    Stats &stats() { return stats_; }

    static constexpr unsigned kSlotsPerBucket = 4;
    static constexpr unsigned kMaxKicks = 500;

  private:
    using Fingerprint = std::uint16_t;

    std::uint64_t hash(std::uint64_t x) const;
    Fingerprint fingerprintOf(Vpn vpn) const;
    std::size_t indexOf(Vpn vpn) const;
    std::size_t altIndex(std::size_t idx, Fingerprint fp) const;

    bool bucketInsert(std::size_t bucket, Fingerprint fp);
    bool bucketErase(std::size_t bucket, Fingerprint fp);
    bool bucketContains(std::size_t bucket, Fingerprint fp) const;

    std::size_t numBuckets_;
    unsigned fpBits_;
    std::uint64_t seed_;
    /** Flat table: bucket b occupies slots [4b, 4b+4). 0 = empty. */
    std::vector<Fingerprint> table_;
    std::size_t count_ = 0;
    mutable Stats stats_;
    Rng kickRng_;
};

} // namespace hdpat

#endif // HDPAT_MEM_CUCKOO_FILTER_HH
