/**
 * @file
 * Set-associative TLB with LRU replacement (Table I structures: L1
 * vector/scalar/instruction TLBs, the shared L2 TLB, the last-level
 * TLB / GMMU cache, and the conventional IOMMU-side TLB of Fig 19).
 *
 * Storage is structure-of-arrays: tags, payloads, LRU stamps, and
 * flags live in separate contiguous arrays so a set probe reads only
 * the tag/flag lanes (one or two cache lines for the common 4-8 way
 * configurations) instead of striding over 32-byte entry structs.
 * Only the flag array is zero-initialized at construction; tag and
 * payload lanes are first-touched on use, which keeps building the
 * thousands of TLBs of a wafer-scale sweep off the host profile.
 */

#ifndef HDPAT_MEM_TLB_HH
#define HDPAT_MEM_TLB_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "sim/types.hh"

namespace hdpat
{

/** One translation held by a TLB (materialized view of the arrays). */
struct TlbEntry
{
    Vpn vpn = 0;
    Pfn pfn = kInvalidPfn;
    /**
     * True when this entry caches a translation for a page homed on a
     * *different* GPM (a "remote PTE" in HDPAT peer caching). Used so
     * evictions know whether to update the cuckoo filter.
     */
    bool remote = false;
    /**
     * True when the entry arrived via proactive page-entry delivery
     * (§IV-G) rather than a demand fill; used to classify peer hits
     * into the Fig 16 "proactive delivery" bucket.
     */
    bool prefetched = false;
    bool valid = false;
    /** Monotonic LRU stamp; larger = more recently used. */
    std::uint64_t lruStamp = 0;
};

/**
 * A set-associative, LRU-replacement TLB.
 *
 * Timing is modeled by the owning component (the TLB itself is a pure
 * state container), matching how the paper separates structure from
 * latency (Table I lists per-level latencies).
 */
class Tlb
{
  public:
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t evictions = 0;
        std::uint64_t inserts = 0;
    };

    /**
     * @param num_sets Number of sets (>= 1).
     * @param num_ways Associativity (>= 1).
     */
    Tlb(std::size_t num_sets, std::size_t num_ways);

    /** Look up @p vpn; updates LRU on hit. */
    std::optional<Pfn> lookup(Vpn vpn);

    /**
     * Like lookup() but exposes the full entry (nullptr on miss). The
     * pointer refers to a scratch view materialized from the arrays;
     * it is invalidated by the next hitting lookupEntry() call.
     */
    const TlbEntry *lookupEntry(Vpn vpn);

    /** Look up without disturbing replacement state. */
    std::optional<Pfn> peek(Vpn vpn) const;

    /**
     * Batched non-architectural probe: software-prefetches every
     * probed set's tag/flag lanes, then scans them sequentially.
     * Touches neither LRU state nor stats, so interleaving it with
     * the architectural lookup stream cannot change simulated
     * behavior -- admission paths use it to warm the host cache for
     * a whole cycle's worth of VPNs before probing them one by one.
     *
     * @return Bitmask with bit i set when vpns[i] is present (at most
     *         the first 64 VPNs are reported; extras are prefetched
     *         and scanned but not reported).
     */
    std::uint64_t probeMany(std::span<const Vpn> vpns) const;

    /** Prefetch the tag/flag lanes of @p vpn's set (no side effects). */
    void prefetchSet(Vpn vpn) const
    {
        const std::size_t base = setIndex(vpn) * numWays_;
        __builtin_prefetch(&vpns_[base]);
        __builtin_prefetch(&flags_[base]);
    }

    /**
     * Insert (or refresh) a translation.
     *
     * @return The entry evicted to make room, if any. The caller uses
     *         this to keep auxiliary structures (cuckoo filter) in sync.
     */
    std::optional<TlbEntry> insert(Vpn vpn, Pfn pfn, bool remote = false,
                                   bool prefetched = false);

    /** Invalidate @p vpn. @return the invalidated entry, if present. */
    std::optional<TlbEntry> invalidate(Vpn vpn);

    /** Drop everything. */
    void flush();

    /**
     * Visit every resident entry as (vpn, pfn), in slot order, with no
     * LRU or stats side effects. The end-of-run staleness sweep uses
     * this to check that nothing resident contradicts the page table.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        const std::size_t slots = numSets_ * numWays_;
        for (std::size_t i = 0; i < slots; ++i)
            if (flags_[i] & kValid)
                fn(vpns_[i], pfns_[i]);
    }

    std::size_t numSets() const { return numSets_; }
    std::size_t numWays() const { return numWays_; }
    std::size_t capacity() const { return numSets_ * numWays_; }

    /** Number of valid entries currently stored. */
    std::size_t occupancy() const { return occupancy_; }

    double hitRate() const
    {
        return stats_.lookups
                   ? static_cast<double>(stats_.hits) / stats_.lookups
                   : 0.0;
    }

    const Stats &stats() const { return stats_; }

  private:
    /** Flag lane bits. */
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kRemote = 2;
    static constexpr std::uint8_t kPrefetched = 4;

    static constexpr std::size_t kNone = ~std::size_t{0};

    std::size_t setIndex(Vpn vpn) const;
    /** Slot index of @p vpn, or kNone. */
    std::size_t findSlot(Vpn vpn) const;
    /** Materialize slot @p i into a TlbEntry view. */
    TlbEntry entryAt(std::size_t i) const;

    std::size_t numSets_;
    std::size_t numWays_;
    /**
     * SoA lanes, flat: set s occupies [s*ways, (s+1)*ways). Only
     * flags_ is zeroed at construction; the other lanes are
     * guarded by the valid bit and first-touched on insert.
     */
    std::unique_ptr<Vpn[]> vpns_;
    std::unique_ptr<Pfn[]> pfns_;
    std::unique_ptr<std::uint64_t[]> lru_;
    std::unique_ptr<std::uint8_t[]> flags_;
    std::uint64_t lruClock_ = 0;
    std::size_t occupancy_ = 0;
    Stats stats_;
    /** Backing storage for the lookupEntry() view. */
    TlbEntry scratch_;
};

} // namespace hdpat

#endif // HDPAT_MEM_TLB_HH
