/**
 * @file
 * Set-associative TLB with LRU replacement (Table I structures: L1
 * vector/scalar/instruction TLBs, the shared L2 TLB, the last-level
 * TLB / GMMU cache, and the conventional IOMMU-side TLB of Fig 19).
 */

#ifndef HDPAT_MEM_TLB_HH
#define HDPAT_MEM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/** One translation held by a TLB. */
struct TlbEntry
{
    Vpn vpn = 0;
    Pfn pfn = kInvalidPfn;
    /**
     * True when this entry caches a translation for a page homed on a
     * *different* GPM (a "remote PTE" in HDPAT peer caching). Used so
     * evictions know whether to update the cuckoo filter.
     */
    bool remote = false;
    /**
     * True when the entry arrived via proactive page-entry delivery
     * (§IV-G) rather than a demand fill; used to classify peer hits
     * into the Fig 16 "proactive delivery" bucket.
     */
    bool prefetched = false;
    bool valid = false;
    /** Monotonic LRU stamp; larger = more recently used. */
    std::uint64_t lruStamp = 0;
};

/**
 * A set-associative, LRU-replacement TLB.
 *
 * Timing is modeled by the owning component (the TLB itself is a pure
 * state container), matching how the paper separates structure from
 * latency (Table I lists per-level latencies).
 */
class Tlb
{
  public:
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t evictions = 0;
        std::uint64_t inserts = 0;
    };

    /**
     * @param num_sets Number of sets (>= 1).
     * @param num_ways Associativity (>= 1).
     */
    Tlb(std::size_t num_sets, std::size_t num_ways);

    /** Look up @p vpn; updates LRU on hit. */
    std::optional<Pfn> lookup(Vpn vpn);

    /** Like lookup() but exposes the full entry (nullptr on miss). */
    const TlbEntry *lookupEntry(Vpn vpn);

    /** Look up without disturbing replacement state. */
    std::optional<Pfn> peek(Vpn vpn) const;

    /**
     * Insert (or refresh) a translation.
     *
     * @return The entry evicted to make room, if any. The caller uses
     *         this to keep auxiliary structures (cuckoo filter) in sync.
     */
    std::optional<TlbEntry> insert(Vpn vpn, Pfn pfn, bool remote = false,
                                   bool prefetched = false);

    /** Invalidate @p vpn. @return the invalidated entry, if present. */
    std::optional<TlbEntry> invalidate(Vpn vpn);

    /** Drop everything. */
    void flush();

    std::size_t numSets() const { return numSets_; }
    std::size_t numWays() const { return numWays_; }
    std::size_t capacity() const { return numSets_ * numWays_; }

    /** Number of valid entries currently stored. */
    std::size_t occupancy() const { return occupancy_; }

    double hitRate() const
    {
        return stats_.lookups
                   ? static_cast<double>(stats_.hits) / stats_.lookups
                   : 0.0;
    }

    const Stats &stats() const { return stats_; }

  private:
    std::size_t setIndex(Vpn vpn) const;
    TlbEntry *find(Vpn vpn);
    const TlbEntry *find(Vpn vpn) const;

    std::size_t numSets_;
    std::size_t numWays_;
    std::vector<TlbEntry> entries_; ///< Flat: set s at [s*ways, ...).
    std::uint64_t lruClock_ = 0;
    std::size_t occupancy_ = 0;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_MEM_TLB_HH
