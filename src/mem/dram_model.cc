#include "mem/dram_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace hdpat
{

DramModel::DramModel(Tick latency, double bytes_per_tick)
    : latency_(latency), bytesPerTick_(bytes_per_tick)
{
    hdpat_fatal_if(bytes_per_tick <= 0.0, "DRAM bandwidth must be > 0");
}

Tick
DramModel::access(Tick now, std::size_t bytes)
{
    ++stats_.accesses;
    stats_.bytes += bytes;

    // Fractional serialization: an HBM stack at 1.23 TB/s moves a
    // cache line in a small fraction of a core cycle.
    const double serialize =
        static_cast<double>(bytes) / bytesPerTick_;
    const double start = std::max(static_cast<double>(now), nextFree_);
    nextFree_ = start + serialize;
    stats_.busyTicks += static_cast<Tick>(serialize) + 1;
    return static_cast<Tick>(std::ceil(start + serialize)) + latency_;
}

} // namespace hdpat
