#include "mem/page_table.hh"

#include "sim/log.hh"

namespace hdpat
{

GlobalPageTable::GlobalPageTable(unsigned page_shift)
    : pageShift_(page_shift)
{
    hdpat_fatal_if(page_shift < 10 || page_shift > 30,
                   "unreasonable page shift " << page_shift);
}

BufferHandle
GlobalPageTable::allocate(std::size_t bytes, std::span<const TileId> homes)
{
    hdpat_fatal_if(homes.empty(), "allocate() with no home GPMs");
    hdpat_fatal_if(bytes == 0, "allocate() of zero bytes");

    const std::size_t pages = (bytes + pageBytes() - 1) / pageBytes();
    BufferHandle handle;
    handle.baseVa = baseOf(nextVpn_);
    handle.numPages = pages;
    handle.pageBytes = pageBytes();

    // Contiguous equal blocks per home; remainder spills round-robin
    // into the earliest homes, mirroring an even driver-side split.
    const std::size_t per_home = pages / homes.size();
    const std::size_t remainder = pages % homes.size();
    std::size_t page = 0;
    for (std::size_t h = 0; h < homes.size(); ++h) {
        std::size_t block = per_home + (h < remainder ? 1 : 0);
        for (std::size_t i = 0; i < block; ++i, ++page) {
            const Vpn vpn = nextVpn_ + page;
            Pte pte;
            pte.home = homes[h];
            pte.pfn = nextPfn_[homes[h]]++;
            table_.emplace(vpn, pte);
            ++homeCounts_[homes[h]];
        }
    }
    nextVpn_ += pages;
    return handle;
}

bool
GlobalPageTable::unmap(Vpn vpn)
{
    auto it = table_.find(vpn);
    if (it == table_.end())
        return false;
    auto home_it = homeCounts_.find(it->second.home);
    if (home_it != homeCounts_.end() && home_it->second > 0)
        --home_it->second;
    table_.erase(it);
    return true;
}

const Pte *
GlobalPageTable::translate(Vpn vpn) const
{
    auto it = table_.find(vpn);
    return it == table_.end() ? nullptr : &it->second;
}

Pte *
GlobalPageTable::translateMutable(Vpn vpn)
{
    auto it = table_.find(vpn);
    return it == table_.end() ? nullptr : &it->second;
}

TileId
GlobalPageTable::homeOf(Vpn vpn) const
{
    const Pte *pte = translate(vpn);
    return pte ? pte->home : kInvalidTile;
}

std::size_t
GlobalPageTable::pagesHomedOn(TileId tile) const
{
    auto it = homeCounts_.find(tile);
    return it == homeCounts_.end() ? 0 : it->second;
}

void
GlobalPageTable::forEachPage(
    const std::function<void(Vpn, const Pte &)> &fn) const
{
    for (const auto &[vpn, pte] : table_)
        fn(vpn, pte);
}

} // namespace hdpat
