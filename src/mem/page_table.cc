#include "mem/page_table.hh"

#include "sim/log.hh"

namespace hdpat
{

GlobalPageTable::GlobalPageTable(unsigned page_shift)
    : pageShift_(page_shift)
{
    hdpat_fatal_if(page_shift < 10 || page_shift > 30,
                   "unreasonable page shift " << page_shift);
}

BufferHandle
GlobalPageTable::allocate(std::size_t bytes, std::span<const TileId> homes)
{
    hdpat_fatal_if(homes.empty(), "allocate() with no home GPMs");
    hdpat_fatal_if(bytes == 0, "allocate() of zero bytes");

    const std::size_t pages = (bytes + pageBytes() - 1) / pageBytes();
    // Each ASID bump-allocates its own VPN range from the same base, so
    // every tenant's buffers land at identical VAs; only the tagged key
    // differs. ASID 0 keeps using the original cursor member.
    Vpn &cursor = activeAsid_ == 0
                      ? nextVpn_
                      : asidCursors_.try_emplace(activeAsid_, Vpn{0x100})
                            .first->second;
    BufferHandle handle;
    handle.baseVa = baseOf(cursor);
    handle.numPages = pages;
    handle.pageBytes = pageBytes();
    hdpat_fatal_if(cursor + pages >= (Vpn{1} << kAsidShift),
                   "VPN range overflows the ASID tag field");

    // Contiguous equal blocks per home; remainder spills round-robin
    // into the earliest homes, mirroring an even driver-side split.
    const std::size_t per_home = pages / homes.size();
    const std::size_t remainder = pages % homes.size();
    std::size_t page = 0;
    for (std::size_t h = 0; h < homes.size(); ++h) {
        const TileId home = homes[h];
        growHomeLanes(home);
        const std::size_t lane = static_cast<std::size_t>(home);
        std::size_t block = per_home + (h < remainder ? 1 : 0);
        for (std::size_t i = 0; i < block; ++i, ++page) {
            const Vpn vpn = asidKey(activeAsid_, cursor + page);
            Pte pte;
            pte.home = home;
            pte.pfn = nextPfn_[lane]++;
            table_.emplace(vpn, pte);
        }
        homeCounts_[lane] += block;
    }
    cursor += pages;
    return handle;
}

void
GlobalPageTable::growHomeLanes(TileId tile)
{
    hdpat_fatal_if(tile < 0, "negative home tile " << tile);
    const std::size_t need = static_cast<std::size_t>(tile) + 1;
    if (homeCounts_.size() < need) {
        homeCounts_.resize(need, 0);
        nextPfn_.resize(need, 0);
    }
}

bool
GlobalPageTable::unmap(Vpn vpn)
{
    auto it = table_.find(vpn);
    if (it == table_.end())
        return false;
    const std::size_t lane = static_cast<std::size_t>(it->second.home);
    if (lane < homeCounts_.size() && homeCounts_[lane] > 0)
        --homeCounts_[lane];
    lastHome_[vpn] = it->second.home;
    ++mutationEpoch_;
    table_.erase(it);
    return true;
}

const Pte *
GlobalPageTable::remap(Vpn vpn)
{
    if (table_.count(vpn))
        return nullptr;
    const auto last = lastHome_.find(vpn);
    if (last == lastHome_.end())
        return nullptr;
    // Same home, fresh PFN: the per-home PFN lane only ever bumps, so
    // the remapped page's PFN is distinct from every PFN the key ever
    // had -- stale cached translations can be detected by comparison.
    const TileId home = last->second;
    growHomeLanes(home);
    const std::size_t lane = static_cast<std::size_t>(home);
    Pte pte;
    pte.home = home;
    pte.pfn = nextPfn_[lane]++;
    ++homeCounts_[lane];
    return &table_.emplace(vpn, pte).first->second;
}

TileId
GlobalPageTable::lastHomeOf(Vpn vpn) const
{
    const Pte *pte = translate(vpn);
    if (pte)
        return pte->home;
    const auto it = lastHome_.find(vpn);
    return it == lastHome_.end() ? kInvalidTile : it->second;
}

const Pte *
GlobalPageTable::translate(Vpn vpn) const
{
    auto it = table_.find(vpn);
    return it == table_.end() ? nullptr : &it->second;
}

Pte *
GlobalPageTable::translateMutable(Vpn vpn)
{
    auto it = table_.find(vpn);
    return it == table_.end() ? nullptr : &it->second;
}

TileId
GlobalPageTable::homeOf(Vpn vpn) const
{
    const Pte *pte = translate(vpn);
    return pte ? pte->home : kInvalidTile;
}

std::size_t
GlobalPageTable::pagesHomedOn(TileId tile) const
{
    const std::size_t lane = static_cast<std::size_t>(tile);
    return lane < homeCounts_.size() ? homeCounts_[lane] : 0;
}

void
GlobalPageTable::forEachPage(
    const std::function<void(Vpn, const Pte &)> &fn) const
{
    for (const auto &[vpn, pte] : table_)
        fn(vpn, pte);
}

} // namespace hdpat
