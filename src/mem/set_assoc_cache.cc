#include "mem/set_assoc_cache.hh"

#include <bit>

#include "sim/log.hh"

namespace hdpat
{

SetAssocCache::SetAssocCache(std::size_t size_bytes, std::size_t num_ways,
                             std::size_t line_bytes)
    : numWays_(num_ways), lineBytes_(line_bytes)
{
    hdpat_fatal_if(line_bytes == 0 || (line_bytes & (line_bytes - 1)),
                   "cache line size must be a power of two");
    hdpat_fatal_if(num_ways == 0, "cache needs at least one way");
    lineShift_ = static_cast<unsigned>(std::bit_width(line_bytes) - 1);
    const std::size_t total_lines = size_bytes / line_bytes;
    numSets_ = total_lines / num_ways;
    hdpat_fatal_if(numSets_ == 0,
                   "cache too small: " << size_bytes << " bytes");
    lines_.resize(numSets_ * numWays_);
}

std::size_t
SetAssocCache::setIndex(Addr line_addr) const
{
    std::uint64_t x = line_addr;
    x ^= x >> 15;
    x *= 0x2545f4914f6cdd1dull;
    return static_cast<std::size_t>(x % numSets_);
}

bool
SetAssocCache::access(Addr addr)
{
    ++stats_.accesses;
    const Addr line_addr = addr >> lineShift_;
    const std::size_t base = setIndex(line_addr) * numWays_;

    Line *victim = nullptr;
    for (std::size_t w = 0; w < numWays_; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == line_addr) {
            ++stats_.hits;
            line.lruStamp = ++lruClock_;
            return true;
        }
        if (!line.valid) {
            if (!victim || victim->valid)
                victim = &line;
        } else if (!victim || (victim->valid &&
                               line.lruStamp < victim->lruStamp)) {
            victim = &line;
        }
    }

    victim->tag = line_addr;
    victim->valid = true;
    victim->lruStamp = ++lruClock_;
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr line_addr = addr >> lineShift_;
    const std::size_t base =
        const_cast<SetAssocCache *>(this)->setIndex(line_addr) * numWays_;
    for (std::size_t w = 0; w < numWays_; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == line_addr)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

} // namespace hdpat
