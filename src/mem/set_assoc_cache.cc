#include "mem/set_assoc_cache.hh"

#include <bit>
#include <cstring>

#include "sim/log.hh"

namespace hdpat
{

SetAssocCache::SetAssocCache(std::size_t size_bytes, std::size_t num_ways,
                             std::size_t line_bytes)
    : numWays_(num_ways), lineBytes_(line_bytes)
{
    hdpat_fatal_if(line_bytes == 0 || (line_bytes & (line_bytes - 1)),
                   "cache line size must be a power of two");
    hdpat_fatal_if(num_ways == 0, "cache needs at least one way");
    lineShift_ = static_cast<unsigned>(std::bit_width(line_bytes) - 1);
    const std::size_t total_lines = size_bytes / line_bytes;
    numSets_ = total_lines / num_ways;
    hdpat_fatal_if(numSets_ == 0,
                   "cache too small: " << size_bytes << " bytes");
    const std::size_t n = numSets_ * numWays_;
    tags_.reset(new Addr[n]);
    lru_.reset(new std::uint64_t[n]);
    valid_.reset(new std::uint8_t[n]());
}

std::size_t
SetAssocCache::setIndex(Addr line_addr) const
{
    std::uint64_t x = line_addr;
    x ^= x >> 15;
    x *= 0x2545f4914f6cdd1dull;
    return static_cast<std::size_t>(x % numSets_);
}

bool
SetAssocCache::access(Addr addr)
{
    ++stats_.accesses;
    const Addr line_addr = addr >> lineShift_;
    const std::size_t base = setIndex(line_addr) * numWays_;

    // First-match hit scan over the dense tag/valid lanes; a line
    // appears in at most one way, so the early exit is exact.
    std::size_t hit = ~std::size_t{0};
    for (std::size_t w = 0; w < numWays_; ++w) {
        const std::size_t i = base + w;
        if (valid_[i] && tags_[i] == line_addr) {
            hit = i;
            break;
        }
    }
    if (hit != ~std::size_t{0}) {
        ++stats_.hits;
        lru_[hit] = ++lruClock_;
        return true;
    }

    // Victim: the first invalid way, else the strictly-least-recently
    // used way (ties keep the lowest way, matching the AoS scan).
    std::size_t victim = ~std::size_t{0};
    for (std::size_t w = 0; w < numWays_; ++w) {
        const std::size_t i = base + w;
        if (!valid_[i]) {
            victim = i;
            break;
        }
        if (victim == ~std::size_t{0} || lru_[i] < lru_[victim])
            victim = i;
    }

    tags_[victim] = line_addr;
    valid_[victim] = 1;
    lru_[victim] = ++lruClock_;
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr line_addr = addr >> lineShift_;
    const std::size_t base = setIndex(line_addr) * numWays_;
    for (std::size_t w = 0; w < numWays_; ++w) {
        const std::size_t i = base + w;
        if (valid_[i] && tags_[i] == line_addr)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    std::memset(valid_.get(), 0, numSets_ * numWays_);
}

} // namespace hdpat
