#include "mem/cuckoo_filter.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "sim/log.hh"

namespace hdpat
{

namespace
{

/** Round up to the next power of two (minimum 1). */
std::size_t
nextPow2(std::size_t x)
{
    if (x <= 1)
        return 1;
    return std::size_t(1) << std::bit_width(x - 1);
}

// SWAR helpers over one 4-slot bucket: the four 16-bit fingerprints
// are exactly one 64-bit word, so membership / first-empty / first-
// match resolve with word ops instead of a slot loop.
constexpr std::uint64_t kLaneLsb = 0x0001000100010001ull;
constexpr std::uint64_t kLaneMsb = 0x8000800080008000ull;

std::uint64_t
loadBucket(const std::uint16_t *slots)
{
    std::uint64_t word;
    std::memcpy(&word, slots, sizeof(word));
    return word;
}

/**
 * MSB-per-lane mask of the 16-bit lanes of @p word that are zero.
 * Borrow propagation can set spurious bits only in lanes *above* the
 * lowest zero lane, so existence tests and lowest-lane extraction are
 * both exact.
 */
std::uint64_t
zeroLanes(std::uint64_t word)
{
    return (word - kLaneLsb) & ~word & kLaneMsb;
}

/** Lane index (0..3) of the lowest set MSB in a zeroLanes() mask. */
unsigned
lowestLane(std::uint64_t mask)
{
    return static_cast<unsigned>(std::countr_zero(mask)) / 16;
}

} // namespace

static_assert(CuckooFilter::kSlotsPerBucket == 4 &&
                  sizeof(std::uint16_t) * 4 == sizeof(std::uint64_t),
              "SWAR bucket ops assume a 4 x 16-bit = 64-bit bucket");

CuckooFilter::CuckooFilter(std::size_t capacity, unsigned fingerprint_bits,
                           std::uint64_t seed)
    : fpBits_(fingerprint_bits), seed_(seed), kickRng_(seed ^ 0xc0ffee)
{
    hdpat_fatal_if(fingerprint_bits == 0 || fingerprint_bits > 16,
                   "cuckoo fingerprint bits must be in [1, 16]");
    // Size for ~95% load: buckets = capacity / (4 * 0.95), power of two.
    const std::size_t wanted =
        static_cast<std::size_t>(static_cast<double>(capacity) /
                                 (kSlotsPerBucket * 0.95)) + 1;
    // Never fewer than two buckets: with a single bucket the alternate
    // index always equals the primary (x ^ h masked by 0 is 0), so the
    // two-choice invariant of partial-key cuckoo hashing breaks and
    // every relocation kick is futile. Only capacities <= 3 are
    // affected; any capacity >= 4 already sizes to >= 2 buckets.
    numBuckets_ = std::max<std::size_t>(2, nextPow2(wanted));
    table_.assign(numBuckets_ * kSlotsPerBucket, 0);
}

std::uint64_t
CuckooFilter::hash(std::uint64_t x) const
{
    // 64-bit mix (murmur3 finalizer) keyed by the seed.
    x ^= seed_;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

CuckooFilter::Fingerprint
CuckooFilter::fingerprintOf(Vpn vpn) const
{
    // 64-bit mask so the shift is safe for any fpBits_ in [1, 16]
    // (same mask value as the old 32-bit expression at every legal
    // width, so stored fingerprints are unchanged).
    const std::uint64_t h = hash(vpn * 0x9e3779b97f4a7c15ull + 1);
    Fingerprint fp = static_cast<Fingerprint>(
        h & ((std::uint64_t{1} << fpBits_) - 1));
    // Fingerprint 0 means "empty slot"; remap to 1. Two of the 2^bits
    // hash values now produce fingerprint 1, so *its* collision rate
    // doubles while every other fingerprint keeps the nominal rate --
    // negligible at the default 12 bits, and at 1 bit it simply means
    // every stored entry is fingerprint 1. The mapping is deliberately
    // kept bit-identical to the original; benchmark outputs depend on
    // the exact filter contents.
    return fp == 0 ? 1 : fp;
}

std::size_t
CuckooFilter::indexOf(Vpn vpn) const
{
    return static_cast<std::size_t>(hash(vpn)) & (numBuckets_ - 1);
}

std::size_t
CuckooFilter::altIndex(std::size_t idx, Fingerprint fp) const
{
    return (idx ^ static_cast<std::size_t>(hash(fp))) & (numBuckets_ - 1);
}

bool
CuckooFilter::bucketInsert(std::size_t bucket, Fingerprint fp)
{
    Fingerprint *slots = table_.data() + bucket * kSlotsPerBucket;
    const std::uint64_t empties = zeroLanes(loadBucket(slots));
    if (!empties)
        return false;
    // Lowest empty lane first: identical slot choice to the old
    // ascending scan, so table contents stay bit-for-bit the same.
    slots[lowestLane(empties)] = fp;
    return true;
}

bool
CuckooFilter::bucketErase(std::size_t bucket, Fingerprint fp)
{
    Fingerprint *slots = table_.data() + bucket * kSlotsPerBucket;
    const std::uint64_t matches = zeroLanes(
        loadBucket(slots) ^ (kLaneLsb * fp));
    if (!matches)
        return false;
    slots[lowestLane(matches)] = 0;
    return true;
}

bool
CuckooFilter::bucketContains(std::size_t bucket, Fingerprint fp) const
{
    const Fingerprint *slots = table_.data() + bucket * kSlotsPerBucket;
    return zeroLanes(loadBucket(slots) ^ (kLaneLsb * fp)) != 0;
}

bool
CuckooFilter::insert(Vpn vpn)
{
    ++stats_.inserts;
    Fingerprint fp = fingerprintOf(vpn);
    std::size_t i1 = indexOf(vpn);
    std::size_t i2 = altIndex(i1, fp);
    if (bucketInsert(i1, fp) || bucketInsert(i2, fp)) {
        ++count_;
        return true;
    }
    // Relocate: kick random victims between the two candidate buckets.
    // The kick path is recorded so a failed insert can be unwound: the
    // old behavior of dropping the final homeless victim silently
    // removed an item the filter had accepted (a false negative), left
    // the requested key stored even though insert() reported failure,
    // and let a later erase() of that key delete another entry's
    // duplicate fingerprint. Unwinding touches no RNG, so successful
    // inserts and the kick sequence stay bit-identical.
    std::size_t kickIdx[kMaxKicks];
    std::uint8_t kickSlot[kMaxKicks];
    std::size_t idx = kickRng_.chance(0.5) ? i1 : i2;
    for (unsigned kick = 0; kick < kMaxKicks; ++kick) {
        const unsigned victim =
            static_cast<unsigned>(kickRng_.uniformInt(kSlotsPerBucket));
        auto &slot = table_[idx * kSlotsPerBucket + victim];
        kickIdx[kick] = idx;
        kickSlot[kick] = static_cast<std::uint8_t>(victim);
        std::swap(fp, slot);
        idx = altIndex(idx, fp);
        if (bucketInsert(idx, fp)) {
            ++count_;
            return true;
        }
    }
    // Undo every displacement in reverse: the table ends exactly as it
    // was before the call, so failure means "not inserted", never
    // "someone else evicted".
    for (unsigned kick = kMaxKicks; kick-- > 0;) {
        auto &slot =
            table_[kickIdx[kick] * kSlotsPerBucket + kickSlot[kick]];
        std::swap(fp, slot);
    }
    ++stats_.insertFailures;
    return false;
}

bool
CuckooFilter::erase(Vpn vpn)
{
    const Fingerprint fp = fingerprintOf(vpn);
    const std::size_t i1 = indexOf(vpn);
    const std::size_t i2 = altIndex(i1, fp);
    if (bucketErase(i1, fp) || bucketErase(i2, fp)) {
        ++stats_.deletes;
        --count_;
        return true;
    }
    return false;
}

bool
CuckooFilter::contains(Vpn vpn) const
{
    ++stats_.lookups;
    const Fingerprint fp = fingerprintOf(vpn);
    const std::size_t i1 = indexOf(vpn);
    const std::size_t i2 = altIndex(i1, fp);
    const bool hit = bucketContains(i1, fp) || bucketContains(i2, fp);
    if (hit)
        ++stats_.positives;
    return hit;
}

} // namespace hdpat
