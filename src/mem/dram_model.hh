/**
 * @file
 * Analytical HBM stack model: fixed access latency plus a bandwidth
 * constraint enforced through a channel busy-until time (Table I:
 * 8 GB @ 1.23 TB/s per GPM).
 */

#ifndef HDPAT_MEM_DRAM_MODEL_HH
#define HDPAT_MEM_DRAM_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace hdpat
{

class DramModel
{
  public:
    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t bytes = 0;
        Tick busyTicks = 0;
    };

    /**
     * @param latency Fixed access latency in ticks.
     * @param bytes_per_tick Sustained bandwidth (bytes per cycle).
     */
    DramModel(Tick latency, double bytes_per_tick);

    /**
     * Issue an access of @p bytes at time @p now.
     * @return Absolute completion tick (serialization + fixed latency).
     */
    Tick access(Tick now, std::size_t bytes);

    Tick latency() const { return latency_; }
    const Stats &stats() const { return stats_; }

  private:
    Tick latency_;
    double bytesPerTick_;
    /** Channel busy-until time, in fractional ticks. */
    double nextFree_ = 0.0;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_MEM_DRAM_MODEL_HH
