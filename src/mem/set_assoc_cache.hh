/**
 * @file
 * Tag-only set-associative cache used to model each GPM's data cache
 * (the unified L2 of Fig 1(b)); it decides whether a memory operation
 * pays HBM / remote-NoC cost after translation.
 *
 * Storage is structure-of-arrays (tag / valid / LRU lanes): a probe
 * reads only the tag and valid lanes, and construction zeroes only
 * the one-byte valid lane. The latter matters far more than it looks:
 * a wafer sweep constructs one multi-megabyte data cache per tile per
 * run, while a short run touches only a few hundred of its lines --
 * value-initializing every 24-byte line struct was the single largest
 * entry in the host profile before this layout.
 */

#ifndef HDPAT_MEM_SET_ASSOC_CACHE_HH
#define HDPAT_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <memory>

#include "sim/types.hh"

namespace hdpat
{

/**
 * LRU set-associative tag array keyed by cache-line address.
 * access() combines lookup and fill (allocate-on-miss).
 */
class SetAssocCache
{
  public:
    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
    };

    /**
     * @param size_bytes Total capacity.
     * @param num_ways Associativity.
     * @param line_bytes Cache line size (power of two).
     */
    SetAssocCache(std::size_t size_bytes, std::size_t num_ways,
                  std::size_t line_bytes = 64);

    /** Access @p addr: @return true on hit; fills on miss. */
    bool access(Addr addr);

    /** Probe without filling or touching LRU. */
    bool contains(Addr addr) const;

    void flush();

    std::size_t numSets() const { return numSets_; }
    std::size_t numWays() const { return numWays_; }
    std::size_t lineBytes() const { return lineBytes_; }

    double hitRate() const
    {
        return stats_.accesses
                   ? static_cast<double>(stats_.hits) / stats_.accesses
                   : 0.0;
    }

    const Stats &stats() const { return stats_; }

  private:
    std::size_t setIndex(Addr line_addr) const;

    std::size_t numSets_;
    std::size_t numWays_;
    std::size_t lineBytes_;
    unsigned lineShift_;
    /**
     * SoA lanes, flat: set s occupies [s*ways, (s+1)*ways). Only
     * valid_ is zeroed at construction; tags_/lru_ are guarded by the
     * valid bit and first-touched on fill.
     */
    std::unique_ptr<Addr[]> tags_;
    std::unique_ptr<std::uint64_t[]> lru_;
    std::unique_ptr<std::uint8_t[]> valid_;
    std::uint64_t lruClock_ = 0;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_MEM_SET_ASSOC_CACHE_HH
