/**
 * @file
 * Tag-only set-associative cache used to model each GPM's data cache
 * (the unified L2 of Fig 1(b)); it decides whether a memory operation
 * pays HBM / remote-NoC cost after translation.
 */

#ifndef HDPAT_MEM_SET_ASSOC_CACHE_HH
#define HDPAT_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/**
 * LRU set-associative tag array keyed by cache-line address.
 * access() combines lookup and fill (allocate-on-miss).
 */
class SetAssocCache
{
  public:
    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
    };

    /**
     * @param size_bytes Total capacity.
     * @param num_ways Associativity.
     * @param line_bytes Cache line size (power of two).
     */
    SetAssocCache(std::size_t size_bytes, std::size_t num_ways,
                  std::size_t line_bytes = 64);

    /** Access @p addr: @return true on hit; fills on miss. */
    bool access(Addr addr);

    /** Probe without filling or touching LRU. */
    bool contains(Addr addr) const;

    void flush();

    std::size_t numSets() const { return numSets_; }
    std::size_t numWays() const { return numWays_; }
    std::size_t lineBytes() const { return lineBytes_; }

    double hitRate() const
    {
        return stats_.accesses
                   ? static_cast<double>(stats_.hits) / stats_.accesses
                   : 0.0;
    }

    const Stats &stats() const { return stats_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr line_addr) const;

    std::size_t numSets_;
    std::size_t numWays_;
    std::size_t lineBytes_;
    unsigned lineShift_;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_MEM_SET_ASSOC_CACHE_HH
