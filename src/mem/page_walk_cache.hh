/**
 * @file
 * Page-walk cache (PWC): caches upper-level page-table entries so a
 * walker can skip already-resolved levels.
 *
 * The paper models every walk as a flat 100 x 5 = 500 cycles; a PWC is
 * the standard hardware optimization on top (an extension explored by
 * the `abl_pwc` bench). The model: a radix walk touches 5 levels; the
 * PWC is looked up for the deepest cached prefix of the VPN, and the
 * walk pays 100 cycles per remaining level. Completing a walk installs
 * all intermediate levels.
 */

#ifndef HDPAT_MEM_PAGE_WALK_CACHE_HH
#define HDPAT_MEM_PAGE_WALK_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/tlb.hh"
#include "sim/types.hh"

namespace hdpat
{

class PageWalkCache
{
  public:
    struct Stats
    {
        std::uint64_t walksServed = 0;
        std::uint64_t levelsSkipped = 0;
    };

    /**
     * @param entries_per_level Capacity of each level's cache
     *                          (4-way set associative); 0 disables.
     * @param levels Radix levels in a full walk (paper: 5).
     * @param level_latency Cycles per level (paper: 100).
     * @param bits_per_level VPN bits consumed per level (x86-style 9).
     */
    PageWalkCache(std::size_t entries_per_level, unsigned levels = 5,
                  Tick level_latency = 100, unsigned bits_per_level = 9);

    bool enabled() const { return !caches_.empty(); }
    unsigned levels() const { return levels_; }

    /**
     * Latency of walking @p vpn given the current cache contents:
     * (levels - skippable) * level_latency. The leaf level always
     * walks (the PWC holds non-leaf entries only).
     */
    Tick walkLatency(Vpn vpn);

    /**
     * Prefetch every level's set for @p vpn ahead of walkLatency()
     * (no architectural side effects). The walk queue calls this for
     * the walks a dispatch round is about to start, so the per-level
     * scans run against warm tag arrays.
     */
    void prefetch(Vpn vpn) const
    {
        for (unsigned level = 1; level < levels_ && !caches_.empty();
             ++level)
            caches_[level - 1].prefetchSet(prefixOf(vpn, level));
    }

    /** Install the intermediate levels after a completed walk. */
    void fill(Vpn vpn);

    /**
     * Shootdown support: drop every cached level on @p vpn's walk path
     * (INVLPG-style conservative paging-structure-cache invalidation).
     * @return number of entries dropped.
     */
    std::size_t invalidate(Vpn vpn);

    const Stats &stats() const { return stats_; }

  private:
    /** Tag for level @p level (0 = root): the VPN prefix above it. */
    Vpn prefixOf(Vpn vpn, unsigned level) const;

    unsigned levels_;
    Tick levelLatency_;
    unsigned bitsPerLevel_;
    /** One tag store per non-leaf level below the root. */
    std::vector<Tlb> caches_;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_MEM_PAGE_WALK_CACHE_HH
