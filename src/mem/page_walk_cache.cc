#include "mem/page_walk_cache.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hdpat
{

PageWalkCache::PageWalkCache(std::size_t entries_per_level,
                             unsigned levels, Tick level_latency,
                             unsigned bits_per_level)
    : levels_(levels), levelLatency_(level_latency),
      bitsPerLevel_(bits_per_level)
{
    hdpat_fatal_if(levels < 2, "a walk needs at least two levels");
    if (entries_per_level == 0)
        return; // Disabled.
    // One cache per skippable level: levels 1..levels-1 (the root
    // pointer is architectural state; the leaf PTE is never cached
    // here -- that is the TLB's job).
    const std::size_t sets =
        std::max<std::size_t>(1, entries_per_level / 4);
    for (unsigned level = 1; level < levels_; ++level)
        caches_.emplace_back(sets, 4);
}

Vpn
PageWalkCache::prefixOf(Vpn vpn, unsigned level) const
{
    // A cached level-L entry is the pointer to the level-(L+1) table,
    // identified by the VPN bits above the lower (levels - L) levels;
    // the deepest cacheable entry (L = levels-1) is the leaf-table
    // pointer, keyed by vpn >> bits. Mix in the level so prefixes
    // from different levels do not alias in the shared tag space.
    const unsigned shift = (levels_ - level) * bitsPerLevel_;
    return ((vpn >> shift) << 4) | level;
}

Tick
PageWalkCache::walkLatency(Vpn vpn)
{
    ++stats_.walksServed;
    if (!enabled())
        return static_cast<Tick>(levels_) * levelLatency_;

    // Find the deepest cached level; every level above it is skipped.
    unsigned skipped = 0;
    for (unsigned level = levels_ - 1; level >= 1; --level) {
        if (caches_[level - 1].lookup(prefixOf(vpn, level))) {
            skipped = level;
            break;
        }
    }
    stats_.levelsSkipped += skipped;
    return static_cast<Tick>(levels_ - skipped) * levelLatency_;
}

void
PageWalkCache::fill(Vpn vpn)
{
    if (!enabled())
        return;
    for (unsigned level = 1; level < levels_; ++level)
        caches_[level - 1].insert(prefixOf(vpn, level), 0);
}

std::size_t
PageWalkCache::invalidate(Vpn vpn)
{
    std::size_t dropped = 0;
    for (unsigned level = 1; level < levels_ && !caches_.empty();
         ++level)
        dropped += caches_[level - 1]
                       .invalidate(prefixOf(vpn, level))
                       .has_value();
    return dropped;
}

} // namespace hdpat
