/**
 * @file
 * The global page table (held by the CPU/IOMMU) and the block-contiguous
 * buffer partitioning the paper's driver model uses (§II-A: a 480-page
 * allocation on 48 GPMs puts pages 1-10 on GPM 1, 11-20 on GPM 2, ...).
 *
 * Each GPM's "local page table" is the subset of this table homed on
 * that GPM; the GMMU walks it, and the IOMMU walks the whole table.
 */

#ifndef HDPAT_MEM_PAGE_TABLE_HH
#define HDPAT_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/** One page-table entry. */
struct Pte
{
    Pfn pfn = kInvalidPfn;
    /** GPM whose HBM holds the physical page. */
    TileId home = kInvalidTile;
    /**
     * Translation access counter, tracked in otherwise-unused PTE bits
     * (paper §IV-F) and used by the IOMMU's selective auxiliary push.
     */
    std::uint32_t accessCount = 0;
};

/** A virtual buffer returned by GlobalPageTable::allocate(). */
struct BufferHandle
{
    Addr baseVa = 0;
    std::size_t numPages = 0;
    std::size_t pageBytes = 0;

    Addr endVa() const { return baseVa + numPages * pageBytes; }
};

/**
 * Global page table plus the buffer allocator that populates it.
 */
class GlobalPageTable
{
  public:
    /** @param page_shift log2(page size); 12 -> 4 KiB. */
    explicit GlobalPageTable(unsigned page_shift = 12);

    unsigned pageShift() const { return pageShift_; }
    std::size_t pageBytes() const { return std::size_t(1) << pageShift_; }

    Vpn vpnOf(Addr va) const { return va >> pageShift_; }
    Addr baseOf(Vpn vpn) const { return Addr(vpn) << pageShift_; }

    /**
     * Allocate a buffer of @p bytes, split across @p homes in contiguous
     * equal blocks (the last home absorbs the remainder). Mappings are
     * keyed under the active ASID (asidKey); the returned buffer's VAs
     * are raw (untagged), and each ASID's VPN cursor starts at the same
     * base, so every tenant sees an identical VA layout.
     */
    BufferHandle allocate(std::size_t bytes, std::span<const TileId> homes);

    /**
     * Select the address space subsequent allocate() calls populate.
     * ASID 0 (the default) tags keys to the identity, so single-tenant
     * tables are bit-identical to untagged ones.
     */
    void setActiveAsid(Asid asid) { activeAsid_ = asid; }
    Asid activeAsid() const { return activeAsid_; }

    /**
     * Remove a mapping (memory free). The caller is responsible for
     * shooting down cached copies (System::shootdown does both). Bumps
     * the mutation epoch and records the page's home so remap() can
     * re-establish the mapping on the same HBM.
     * @return true when the VPN was mapped.
     */
    bool unmap(Vpn vpn);

    /**
     * Re-establish a mapping removed by unmap(), on the same home GPM
     * with a fresh PFN (per-home PFNs are bump-allocated and never
     * reused, so a stale cached PFN can always be told apart from the
     * post-remap one -- PFN comparison is generation comparison).
     * @return the new PTE, or nullptr when @p vpn was never unmapped
     *         or is currently mapped.
     */
    const Pte *remap(Vpn vpn);

    /**
     * Home of @p vpn when mapped, else the home it had before its last
     * unmap (kInvalidTile when never mapped). Invalidation handlers use
     * this: the async shootdown unmaps first, so by the time a holder
     * tile processes the invalidation homeOf() already answers
     * kInvalidTile.
     */
    TileId lastHomeOf(Vpn vpn) const;

    /**
     * Count of unmap() calls ever. Zero means no mapping was ever
     * retired, so install paths can skip revalidation entirely -- the
     * single-tenant fast path.
     */
    std::uint64_t mutationEpoch() const { return mutationEpoch_; }

    /** Look up a mapping; nullptr when the VPN is unmapped. */
    const Pte *translate(Vpn vpn) const;

    /** Mutable access (IOMMU bumps accessCount). */
    Pte *translateMutable(Vpn vpn);

    /** Home GPM of a VPN, or kInvalidTile when unmapped. */
    TileId homeOf(Vpn vpn) const;

    /** Total mapped pages. */
    std::size_t size() const { return table_.size(); }

    /** Number of pages homed on @p tile. */
    std::size_t pagesHomedOn(TileId tile) const;

    /** Visit every mapping (unordered). */
    void forEachPage(const std::function<void(Vpn, const Pte &)> &fn) const;

  private:
    /** Grow the per-home lanes to cover @p tile. */
    void growHomeLanes(TileId tile);

    unsigned pageShift_;
    /**
     * VPN -> PTE. Deliberately kept an unordered_map even though VPNs
     * are bump-allocated: forEachPage() iterates it, and that order
     * seeds the per-home cuckoo filters at workload load -- changing
     * the container would reorder those inserts and perturb filter
     * contents (and thus simulated timing) for no modeled reason.
     */
    std::unordered_map<Vpn, Pte> table_;
    /** Next unallocated VPN (bump allocator, starts above null page). */
    Vpn nextVpn_ = 0x100;
    /** ASID tagged into newly allocated keys (0 = identity). */
    Asid activeAsid_ = 0;
    /** Per-ASID VPN cursors for ASIDs > 0 (each starts at 0x100). */
    std::unordered_map<Asid, Vpn> asidCursors_;
    /** Home GPM of every unmapped key, for remap() and invalidation. */
    std::unordered_map<Vpn, TileId> lastHome_;
    /** Count of unmaps ever (0 = install gates may be skipped). */
    std::uint64_t mutationEpoch_ = 0;
    /**
     * Per-home lanes indexed by TileId (tiles are small dense ids):
     * pages homed there, and the next free PFN. allocate() bumps both
     * once per page, which made the old per-page unordered_map probes
     * a fixture of the host profile.
     */
    std::vector<std::size_t> homeCounts_;
    std::vector<Pfn> nextPfn_;
};

} // namespace hdpat

#endif // HDPAT_MEM_PAGE_TABLE_HH
