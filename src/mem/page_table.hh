/**
 * @file
 * The global page table (held by the CPU/IOMMU) and the block-contiguous
 * buffer partitioning the paper's driver model uses (§II-A: a 480-page
 * allocation on 48 GPMs puts pages 1-10 on GPM 1, 11-20 on GPM 2, ...).
 *
 * Each GPM's "local page table" is the subset of this table homed on
 * that GPM; the GMMU walks it, and the IOMMU walks the whole table.
 */

#ifndef HDPAT_MEM_PAGE_TABLE_HH
#define HDPAT_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace hdpat
{

/** One page-table entry. */
struct Pte
{
    Pfn pfn = kInvalidPfn;
    /** GPM whose HBM holds the physical page. */
    TileId home = kInvalidTile;
    /**
     * Translation access counter, tracked in otherwise-unused PTE bits
     * (paper §IV-F) and used by the IOMMU's selective auxiliary push.
     */
    std::uint32_t accessCount = 0;
};

/** A virtual buffer returned by GlobalPageTable::allocate(). */
struct BufferHandle
{
    Addr baseVa = 0;
    std::size_t numPages = 0;
    std::size_t pageBytes = 0;

    Addr endVa() const { return baseVa + numPages * pageBytes; }
};

/**
 * Global page table plus the buffer allocator that populates it.
 */
class GlobalPageTable
{
  public:
    /** @param page_shift log2(page size); 12 -> 4 KiB. */
    explicit GlobalPageTable(unsigned page_shift = 12);

    unsigned pageShift() const { return pageShift_; }
    std::size_t pageBytes() const { return std::size_t(1) << pageShift_; }

    Vpn vpnOf(Addr va) const { return va >> pageShift_; }
    Addr baseOf(Vpn vpn) const { return Addr(vpn) << pageShift_; }

    /**
     * Allocate a buffer of @p bytes, split across @p homes in contiguous
     * equal blocks (the last home absorbs the remainder).
     */
    BufferHandle allocate(std::size_t bytes, std::span<const TileId> homes);

    /**
     * Remove a mapping (memory free). The caller is responsible for
     * shooting down cached copies (System::shootdown does both).
     * @return true when the VPN was mapped.
     */
    bool unmap(Vpn vpn);

    /** Look up a mapping; nullptr when the VPN is unmapped. */
    const Pte *translate(Vpn vpn) const;

    /** Mutable access (IOMMU bumps accessCount). */
    Pte *translateMutable(Vpn vpn);

    /** Home GPM of a VPN, or kInvalidTile when unmapped. */
    TileId homeOf(Vpn vpn) const;

    /** Total mapped pages. */
    std::size_t size() const { return table_.size(); }

    /** Number of pages homed on @p tile. */
    std::size_t pagesHomedOn(TileId tile) const;

    /** Visit every mapping (unordered). */
    void forEachPage(const std::function<void(Vpn, const Pte &)> &fn) const;

  private:
    unsigned pageShift_;
    std::unordered_map<Vpn, Pte> table_;
    std::unordered_map<TileId, std::size_t> homeCounts_;
    /** Next unallocated VPN (bump allocator, starts above null page). */
    Vpn nextVpn_ = 0x100;
    /** Per-home next free PFN. */
    std::unordered_map<TileId, Pfn> nextPfn_;
};

} // namespace hdpat

#endif // HDPAT_MEM_PAGE_TABLE_HH
