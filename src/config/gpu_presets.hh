/**
 * @file
 * Named registries of configuration presets used by the sensitivity
 * benches: GPU generations (Fig 21) and page sizes (Fig 20).
 */

#ifndef HDPAT_CONFIG_GPU_PRESETS_HH
#define HDPAT_CONFIG_GPU_PRESETS_HH

#include <string>
#include <vector>

#include "config/system_config.hh"

namespace hdpat
{

/** The GPU-generation sweep of Fig 21, in paper order. */
std::vector<SystemConfig> gpuGenerationConfigs();

/** Page-size sweep of Fig 20 (shift, label). */
struct PageSizePoint
{
    unsigned pageShift;
    std::string label;
};
std::vector<PageSizePoint> pageSizeSweep();

/** Look up a preset by its name ("MI100", "H200", ...). */
SystemConfig configByName(const std::string &name);

} // namespace hdpat

#endif // HDPAT_CONFIG_GPU_PRESETS_HH
