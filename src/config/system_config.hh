/**
 * @file
 * SystemConfig: every hardware parameter of the simulated wafer-scale
 * GPU, mirroring Table I of the paper, plus knobs for the sensitivity
 * studies (page size, wafer dimensions, GPU generation).
 */

#ifndef HDPAT_CONFIG_SYSTEM_CONFIG_HH
#define HDPAT_CONFIG_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "noc/network.hh"
#include "sim/types.hh"

namespace hdpat
{

/** Structural + timing parameters of one TLB level. */
struct TlbLevelParams
{
    std::size_t sets = 1;
    std::size_t ways = 32;
    std::size_t mshrs = 4;
    Tick latency = 4;

    std::size_t entries() const { return sets * ways; }
};

/** Which wafer/package the system is built on. */
enum class TopologyKind
{
    Wafer, ///< width x height mesh with CPU at the center tile
    Mcm4,  ///< 4-GPM MCM package (Fig 4's comparison point)
};

/**
 * Full system configuration (Table I defaults).
 *
 * All latencies are in core cycles at 1 GHz.
 */
struct SystemConfig
{
    std::string name = "MI100-7x7";

    // ---- Topology ----------------------------------------------------
    TopologyKind topology = TopologyKind::Wafer;
    int meshWidth = 7;
    int meshHeight = 7;

    // ---- Per-GPM compute ----------------------------------------------
    int cusPerGpm = 32;
    /** Memory operations a GPM may issue per cycle (aggregate of CUs). */
    int issueWidth = 4;
    /** Outstanding memory operations per GPM (latency-hiding window). */
    int maxOutstandingOps = 512;
    /**
     * Relative memory-op throughput of this GPM generation vs the
     * MI100 baseline; scales every workload's issue rate and window
     * (more/faster CUs issue memory operations faster, which is what
     * makes the larger H100/H200 configs more translation-bound in
     * Fig 21).
     */
    double computeScale = 1.0;

    // ---- Virtual memory ----------------------------------------------
    unsigned pageShift = 12; ///< 4 KiB pages by default.

    // ---- GPM translation hierarchy (Table I) ---------------------------
    TlbLevelParams l1Tlb{1, 32, 4, 4};
    TlbLevelParams l2Tlb{64, 32, 32, 32};
    /** "GMMU Cache": the last-level TLB probed by peers. */
    TlbLevelParams lastLevelTlb{64, 16, 0, 10};
    Tick cuckooLatency = 2;
    std::size_t cuckooCapacity = 1u << 17;
    /**
     * Extra per-attempt cost when a translation request stops at an
     * intermediate GPM in the sequential route-based / concentric
     * schemes: store-and-forward of the request plus arbitration for
     * the shared filter/TLB ports (local translations have priority,
     * §V-A). This is the "repeated translation attempts" penalty of
     * §IV-B.
     */
    Tick chainAttemptOverhead = 24;
    std::size_t gmmuWalkers = 8;
    Tick gmmuWalkLatency = 500; ///< 100 cycles x 5 levels.
    /**
     * Page-walk-cache entries per level at the GMMU (0 = off, the
     * paper's flat-latency model). An extension explored by abl_pwc.
     */
    std::size_t gmmuPwcEntriesPerLevel = 0;

    // ---- IOMMU (Table I) ----------------------------------------------
    std::size_t iommuWalkers = 16;
    Tick iommuWalkLatency = 500;
    /** Page-walk-cache entries per level at the IOMMU (0 = off). */
    std::size_t iommuPwcEntriesPerLevel = 0;
    /** Ingress buffer ("IOMMU buffer", Fig 4 uses 4096). */
    std::size_t iommuBufferCapacity = 4096;
    /** Internal PW-queue feeding the walkers. */
    std::size_t iommuPwQueueCapacity = 64;
    /** Requests the ingress stage can process per cycle. */
    int iommuIngressPerCycle = 2;
    Tick iommuIngressLatency = 4;
    std::size_t redirectionTableEntries = 1024;
    /** Equal-area conventional TLB for the Fig 19 comparison. */
    std::size_t iommuTlbEntries = 512;
    /**
     * MSHRs of the Fig 19 TLB. MSHRs are wide CAM entries, so the
     * equal-area budget only affords a file smaller than the walker
     * pool -- which is precisely the concurrency limitation §IV-F
     * holds against a conventional TLB (a full file stalls ingress
     * and strangles walk parallelism).
     */
    std::size_t iommuTlbMshrs = 8;
    /** Forwarding contexts for Trans-FW-style walk delegation. */
    std::size_t iommuForwardContexts = 64;
    /**
     * Bounded not-present fault queue (tenancy churn). Modeled after
     * the RISC-V IOMMU fault/event queue: capacity bounds outstanding
     * unserviced faults; a full queue bounces to a timed retry.
     */
    std::size_t iommuFaultQueueCapacity = 64;
    /** Driver-side service time per not-present fault (remap cost). */
    Tick iommuFaultServiceTicks = 5000;

    // ---- Data side ------------------------------------------------------
    std::size_t l2CacheBytes = 4u << 20;
    std::size_t l2CacheWays = 16;
    std::size_t cacheLineBytes = 64;
    Tick dataHitLatency = 20;
    Tick hbmLatency = 120;
    double hbmBytesPerTick = 1230.0; ///< 1.23 TB/s at 1 GHz.

    // ---- Interconnect (Table I) ----------------------------------------
    NocParams noc{};

    // ---- Derived helpers -------------------------------------------------
    std::size_t pageBytes() const { return std::size_t(1) << pageShift; }

    /** GPM count for this topology. */
    std::size_t numGpms() const;

    /**
     * Structured validation: one message per violated invariant, each
     * naming the offending field. Empty means the config is buildable
     * and runnable; the fuzzer treats any divergence between this
     * predicate and actual run outcome as a bug (either a missing
     * check here or an over-strict one).
     */
    std::vector<std::string> validationErrors() const;

    /**
     * Fatal wrapper around validationErrors(): exits (status 1)
     * listing every violation. Kept for call sites that want
     * fail-fast semantics.
     */
    void validate() const;

    // ---- Presets (GPU generations, §V-E Fig 21) -------------------------
    static SystemConfig mi100();
    static SystemConfig mi200();
    static SystemConfig mi300();
    static SystemConfig h100();
    static SystemConfig h200();

    /** Baseline MI100 wafer but with a 7x12 mesh (Fig 22). */
    static SystemConfig mi100Wafer7x12();

    /** The 4-GPM MCM comparison system (Fig 4). */
    static SystemConfig mcm4();
};

} // namespace hdpat

#endif // HDPAT_CONFIG_SYSTEM_CONFIG_HH
