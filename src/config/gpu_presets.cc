#include "config/gpu_presets.hh"

#include "sim/log.hh"

namespace hdpat
{

std::vector<SystemConfig>
gpuGenerationConfigs()
{
    return {SystemConfig::mi100(), SystemConfig::mi200(),
            SystemConfig::mi300(), SystemConfig::h100(),
            SystemConfig::h200()};
}

std::vector<PageSizePoint>
pageSizeSweep()
{
    return {{12, "4KB"}, {14, "16KB"}, {16, "64KB"}, {21, "2MB"}};
}

SystemConfig
configByName(const std::string &name)
{
    if (name == "MI100")
        return SystemConfig::mi100();
    if (name == "MI200")
        return SystemConfig::mi200();
    if (name == "MI300")
        return SystemConfig::mi300();
    if (name == "H100")
        return SystemConfig::h100();
    if (name == "H200")
        return SystemConfig::h200();
    if (name == "MI100-7x12")
        return SystemConfig::mi100Wafer7x12();
    if (name == "MCM4")
        return SystemConfig::mcm4();
    hdpat_fatal("unknown configuration preset: " << name);
}

} // namespace hdpat
