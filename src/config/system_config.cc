#include "config/system_config.hh"

#include <sstream>

#include "sim/log.hh"

namespace hdpat
{

std::size_t
SystemConfig::numGpms() const
{
    if (topology == TopologyKind::Mcm4)
        return 4;
    return static_cast<std::size_t>(meshWidth) * meshHeight - 1;
}

std::vector<std::string>
SystemConfig::validationErrors() const
{
    std::vector<std::string> errors;
    const auto bad = [&errors](const auto &...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back(oss.str());
    };

    // ---- Topology -----------------------------------------------------
    if (meshWidth < 1)
        bad("meshWidth must be >= 1 (got ", meshWidth, ")");
    if (meshHeight < 1)
        bad("meshHeight must be >= 1 (got ", meshHeight, ")");
    if (topology == TopologyKind::Wafer && meshWidth >= 1 &&
        meshHeight >= 1 && meshWidth * meshHeight < 2) {
        bad("meshWidth x meshHeight = ", meshWidth, "x", meshHeight,
            " leaves no GPM tiles (the single tile hosts the CPU)");
    }

    // ---- Compute ------------------------------------------------------
    if (issueWidth < 1)
        bad("issueWidth must be >= 1 (got ", issueWidth, ")");
    if (maxOutstandingOps < 1)
        bad("maxOutstandingOps must be >= 1 (got ", maxOutstandingOps,
            ")");
    if (!(computeScale > 0.0))
        bad("computeScale must be positive (got ", computeScale, ")");

    // ---- Virtual memory ----------------------------------------------
    if (pageShift < 12 || pageShift > 30) {
        bad("pageShift ", pageShift,
            " outside the supported page-size range [12, 30]");
    }

    // ---- TLB hierarchy ------------------------------------------------
    const auto checkLevel = [&](const char *field,
                                const TlbLevelParams &lvl) {
        if (lvl.sets == 0)
            bad(field, ".sets must be >= 1");
        if (lvl.ways == 0)
            bad(field, ".ways must be >= 1");
    };
    checkLevel("l1Tlb", l1Tlb);
    checkLevel("l2Tlb", l2Tlb);
    checkLevel("lastLevelTlb", lastLevelTlb);
    // l2Tlb.mshrs bounds the remote-miss MSHR file; 0 would silently
    // mean "unlimited" (MshrFile convention), which is never what a
    // Table-I-style config intends. lastLevelTlb.mshrs == 0 stays
    // legal: the LL TLB is filled by peers/pushes, not via MSHRs.
    if (l2Tlb.mshrs == 0)
        bad("l2Tlb.mshrs must be >= 1 (0 would disable the bound)");

    // ---- Walkers and IOMMU pipeline ------------------------------------
    if (gmmuWalkers == 0)
        bad("gmmuWalkers: each GMMU needs at least one page walker");
    if (iommuWalkers == 0)
        bad("iommuWalkers: the IOMMU needs at least one page walker");
    if (iommuPwQueueCapacity == 0)
        bad("iommuPwQueueCapacity: the PW-queue cannot be empty");
    if (iommuIngressPerCycle < 1)
        bad("iommuIngressPerCycle must be >= 1 (got ",
            iommuIngressPerCycle, ")");
    if (iommuTlbMshrs == 0)
        bad("iommuTlbMshrs must be >= 1 (0 would disable the bound)");

    // ---- Bandwidth models ----------------------------------------------
    if (!(noc.bytesPerTick > 0.0))
        bad("noc.bytesPerTick must be positive (got ", noc.bytesPerTick,
            ")");
    if (!(hbmBytesPerTick > 0.0))
        bad("hbmBytesPerTick must be positive (got ", hbmBytesPerTick,
            ")");

    return errors;
}

void
SystemConfig::validate() const
{
    const std::vector<std::string> errors = validationErrors();
    if (errors.empty())
        return;
    std::ostringstream oss;
    oss << "invalid SystemConfig \"" << name << "\":";
    for (const std::string &e : errors)
        oss << "\n  - " << e;
    hdpat_fatal(oss.str());
}

SystemConfig
SystemConfig::mi100()
{
    return SystemConfig{}; // Table I defaults are the MI100-derived GPM.
}

SystemConfig
SystemConfig::mi200()
{
    SystemConfig c;
    c.name = "MI200-7x7";
    c.computeScale = 0.95;
    c.l2CacheBytes = 8u << 20;
    c.hbmBytesPerTick = 1640.0; // HBM2e, 1.6 TB/s
    c.hbmLatency = 115;
    return c;
}

SystemConfig
SystemConfig::mi300()
{
    SystemConfig c;
    c.name = "MI300-7x7";
    c.computeScale = 1.1;
    c.cusPerGpm = 38;
    c.issueWidth = 5;
    c.l2CacheBytes = 16u << 20;
    c.hbmBytesPerTick = 2650.0; // HBM3
    c.hbmLatency = 110;
    return c;
}

SystemConfig
SystemConfig::h100()
{
    SystemConfig c;
    c.name = "H100-7x7";
    // A GPM that is one quarter of an H100 has far more memory-level
    // parallelism (256 KB L1 per CU, 50 MB L2) than the MI100 slice.
    c.computeScale = 2.8;
    // "256KB L1 per CU and 50MB L2" -- model the jump as a much larger
    // data cache per GPM (50 MB / 4 GPM-quarters) and HBM2e bandwidth.
    c.l2CacheBytes = 12u << 20;
    c.l2CacheWays = 24;
    c.hbmBytesPerTick = 2000.0;
    c.hbmLatency = 115;
    c.maxOutstandingOps = 768;
    return c;
}

SystemConfig
SystemConfig::h200()
{
    SystemConfig c = h100();
    c.name = "H200-7x7";
    c.computeScale = 2.6;
    c.hbmBytesPerTick = 4800.0; // HBM3e
    c.hbmLatency = 105;
    return c;
}

SystemConfig
SystemConfig::mi100Wafer7x12()
{
    SystemConfig c;
    c.name = "MI100-7x12";
    c.meshWidth = 12;
    c.meshHeight = 7;
    return c;
}

SystemConfig
SystemConfig::mcm4()
{
    SystemConfig c;
    c.name = "MI100-MCM4";
    c.topology = TopologyKind::Mcm4;
    c.meshWidth = 3;
    c.meshHeight = 3;
    return c;
}

} // namespace hdpat
