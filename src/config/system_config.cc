#include "config/system_config.hh"

#include "sim/log.hh"

namespace hdpat
{

std::size_t
SystemConfig::numGpms() const
{
    if (topology == TopologyKind::Mcm4)
        return 4;
    return static_cast<std::size_t>(meshWidth) * meshHeight - 1;
}

void
SystemConfig::validate() const
{
    hdpat_fatal_if(meshWidth <= 0 || meshHeight <= 0, "empty mesh");
    hdpat_fatal_if(pageShift < 10 || pageShift > 30,
                   "unreasonable page shift " << pageShift);
    hdpat_fatal_if(issueWidth <= 0, "issue width must be positive");
    hdpat_fatal_if(maxOutstandingOps <= 0,
                   "outstanding window must be positive");
    hdpat_fatal_if(iommuWalkers == 0, "IOMMU needs at least one walker");
    hdpat_fatal_if(gmmuWalkers == 0, "GMMU needs at least one walker");
    hdpat_fatal_if(iommuPwQueueCapacity == 0, "PW-queue cannot be empty");
    hdpat_fatal_if(iommuIngressPerCycle <= 0,
                   "IOMMU ingress rate must be positive");
}

SystemConfig
SystemConfig::mi100()
{
    return SystemConfig{}; // Table I defaults are the MI100-derived GPM.
}

SystemConfig
SystemConfig::mi200()
{
    SystemConfig c;
    c.name = "MI200-7x7";
    c.computeScale = 0.95;
    c.l2CacheBytes = 8u << 20;
    c.hbmBytesPerTick = 1640.0; // HBM2e, 1.6 TB/s
    c.hbmLatency = 115;
    return c;
}

SystemConfig
SystemConfig::mi300()
{
    SystemConfig c;
    c.name = "MI300-7x7";
    c.computeScale = 1.1;
    c.cusPerGpm = 38;
    c.issueWidth = 5;
    c.l2CacheBytes = 16u << 20;
    c.hbmBytesPerTick = 2650.0; // HBM3
    c.hbmLatency = 110;
    return c;
}

SystemConfig
SystemConfig::h100()
{
    SystemConfig c;
    c.name = "H100-7x7";
    // A GPM that is one quarter of an H100 has far more memory-level
    // parallelism (256 KB L1 per CU, 50 MB L2) than the MI100 slice.
    c.computeScale = 2.8;
    // "256KB L1 per CU and 50MB L2" -- model the jump as a much larger
    // data cache per GPM (50 MB / 4 GPM-quarters) and HBM2e bandwidth.
    c.l2CacheBytes = 12u << 20;
    c.l2CacheWays = 24;
    c.hbmBytesPerTick = 2000.0;
    c.hbmLatency = 115;
    c.maxOutstandingOps = 768;
    return c;
}

SystemConfig
SystemConfig::h200()
{
    SystemConfig c = h100();
    c.name = "H200-7x7";
    c.computeScale = 2.6;
    c.hbmBytesPerTick = 4800.0; // HBM3e
    c.hbmLatency = 105;
    return c;
}

SystemConfig
SystemConfig::mi100Wafer7x12()
{
    SystemConfig c;
    c.name = "MI100-7x12";
    c.meshWidth = 12;
    c.meshHeight = 7;
    return c;
}

SystemConfig
SystemConfig::mcm4()
{
    SystemConfig c;
    c.name = "MI100-MCM4";
    c.topology = TopologyKind::Mcm4;
    c.meshWidth = 3;
    c.meshHeight = 3;
    return c;
}

} // namespace hdpat
