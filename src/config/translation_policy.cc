#include "config/translation_policy.hh"

namespace hdpat
{

TranslationPolicy
TranslationPolicy::baseline()
{
    TranslationPolicy p;
    p.name = "baseline";
    return p;
}

TranslationPolicy
TranslationPolicy::hdpat()
{
    TranslationPolicy p;
    p.name = "hdpat";
    p.peerMode = PeerCachingMode::ClusterRotation;
    p.redirectionTable = true;
    p.prefetch = true;
    p.prefetchDegree = 4;
    p.pwQueueRevisit = true;
    return p;
}

TranslationPolicy
TranslationPolicy::routeCaching()
{
    TranslationPolicy p;
    p.name = "route-based";
    p.peerMode = PeerCachingMode::RouteBased;
    return p;
}

TranslationPolicy
TranslationPolicy::concentricCaching()
{
    TranslationPolicy p;
    p.name = "concentric";
    p.peerMode = PeerCachingMode::Concentric;
    return p;
}

TranslationPolicy
TranslationPolicy::distributedCaching()
{
    TranslationPolicy p;
    p.name = "distributed";
    p.peerMode = PeerCachingMode::Distributed;
    return p;
}

TranslationPolicy
TranslationPolicy::clusterRotation()
{
    TranslationPolicy p;
    p.name = "cluster+rotation";
    p.peerMode = PeerCachingMode::ClusterRotation;
    return p;
}

TranslationPolicy
TranslationPolicy::withRedirection()
{
    TranslationPolicy p = clusterRotation();
    p.name = "redirection";
    p.redirectionTable = true;
    return p;
}

TranslationPolicy
TranslationPolicy::withPrefetch()
{
    TranslationPolicy p = clusterRotation();
    p.name = "prefetch";
    p.prefetch = true;
    return p;
}

TranslationPolicy
TranslationPolicy::transFw()
{
    TranslationPolicy p;
    p.name = "trans-fw";
    p.walkMode = IommuWalkMode::ForwardToHome;
    return p;
}

TranslationPolicy
TranslationPolicy::valkyrie()
{
    TranslationPolicy p;
    p.name = "valkyrie";
    p.neighborTlbProbe = true;
    return p;
}

TranslationPolicy
TranslationPolicy::barre()
{
    TranslationPolicy p;
    p.name = "barre";
    p.pwQueueRevisit = true;
    return p;
}

TranslationPolicy
TranslationPolicy::hdpatWithIommuTlb()
{
    TranslationPolicy p = hdpat();
    p.name = "hdpat-iommu-tlb";
    p.redirectionTable = false;
    p.iommuTlbInsteadOfRt = true;
    return p;
}

} // namespace hdpat
