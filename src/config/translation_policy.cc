#include "config/translation_policy.hh"

#include <sstream>

namespace hdpat
{

std::vector<std::string>
TranslationPolicy::validationErrors() const
{
    std::vector<std::string> errors;
    const auto bad = [&errors](const auto &...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back(oss.str());
    };

    // System always builds the concentric/cluster structures from
    // these knobs (even for policies that never probe them), so they
    // must be sane regardless of peerMode. Fuzz-found: C = 0 leaves
    // the distributed groups without caching tiles and aborts system
    // construction.
    if (concentricLayers < 1)
        bad("concentricLayers must be >= 1 (got ", concentricLayers,
            ")");
    if (numClusters < 1)
        bad("numClusters must be >= 1 (got ", numClusters, ")");
    if (prefetchDegree < 1)
        bad("prefetchDegree must be >= 1 (got ", prefetchDegree, ")");

    // The enums may arrive as casts of untrusted integers (fuzz cases,
    // future config files); an unnamed enumerator would silently fall
    // through every switch.
    const int pm = static_cast<int>(peerMode);
    if (pm < 0 || pm > static_cast<int>(PeerCachingMode::ClusterRotation))
        bad("peerMode ", pm, " is not a PeerCachingMode (0..",
            static_cast<int>(PeerCachingMode::ClusterRotation), ")");
    const int wm = static_cast<int>(walkMode);
    if (wm < 0 || wm > static_cast<int>(IommuWalkMode::ForwardToHome))
        bad("walkMode ", wm, " is not an IommuWalkMode (0..",
            static_cast<int>(IommuWalkMode::ForwardToHome), ")");
    return errors;
}

TranslationPolicy
TranslationPolicy::baseline()
{
    TranslationPolicy p;
    p.name = "baseline";
    return p;
}

TranslationPolicy
TranslationPolicy::hdpat()
{
    TranslationPolicy p;
    p.name = "hdpat";
    p.peerMode = PeerCachingMode::ClusterRotation;
    p.redirectionTable = true;
    p.prefetch = true;
    p.prefetchDegree = 4;
    p.pwQueueRevisit = true;
    return p;
}

TranslationPolicy
TranslationPolicy::routeCaching()
{
    TranslationPolicy p;
    p.name = "route-based";
    p.peerMode = PeerCachingMode::RouteBased;
    return p;
}

TranslationPolicy
TranslationPolicy::concentricCaching()
{
    TranslationPolicy p;
    p.name = "concentric";
    p.peerMode = PeerCachingMode::Concentric;
    return p;
}

TranslationPolicy
TranslationPolicy::distributedCaching()
{
    TranslationPolicy p;
    p.name = "distributed";
    p.peerMode = PeerCachingMode::Distributed;
    return p;
}

TranslationPolicy
TranslationPolicy::clusterRotation()
{
    TranslationPolicy p;
    p.name = "cluster+rotation";
    p.peerMode = PeerCachingMode::ClusterRotation;
    return p;
}

TranslationPolicy
TranslationPolicy::withRedirection()
{
    TranslationPolicy p = clusterRotation();
    p.name = "redirection";
    p.redirectionTable = true;
    return p;
}

TranslationPolicy
TranslationPolicy::withPrefetch()
{
    TranslationPolicy p = clusterRotation();
    p.name = "prefetch";
    p.prefetch = true;
    return p;
}

TranslationPolicy
TranslationPolicy::transFw()
{
    TranslationPolicy p;
    p.name = "trans-fw";
    p.walkMode = IommuWalkMode::ForwardToHome;
    return p;
}

TranslationPolicy
TranslationPolicy::valkyrie()
{
    TranslationPolicy p;
    p.name = "valkyrie";
    p.neighborTlbProbe = true;
    return p;
}

TranslationPolicy
TranslationPolicy::barre()
{
    TranslationPolicy p;
    p.name = "barre";
    p.pwQueueRevisit = true;
    return p;
}

TranslationPolicy
TranslationPolicy::hdpatWithIommuTlb()
{
    TranslationPolicy p = hdpat();
    p.name = "hdpat-iommu-tlb";
    p.redirectionTable = false;
    p.iommuTlbInsteadOfRt = true;
    return p;
}

} // namespace hdpat
