/**
 * @file
 * Translation policy: which remote-translation mechanism a simulated
 * system uses. Covers the naive baseline, every HDPAT ablation step
 * (§IV-B..G, Fig 15), and the three state-of-the-art comparison points
 * (Trans-FW, Valkyrie, Barre; §V-A "Baselines").
 */

#ifndef HDPAT_CONFIG_TRANSLATION_POLICY_HH
#define HDPAT_CONFIG_TRANSLATION_POLICY_HH

#include <string>
#include <vector>

namespace hdpat
{

/** How remote translations may be served before reaching the IOMMU. */
enum class PeerCachingMode
{
    /** No peer caching: all remote translations go to the IOMMU. */
    None,
    /** §IV-B: probe every GPM on the XY route toward the CPU. */
    RouteBased,
    /**
     * §IV-C: one sequential attempt per concentric layer (nearest tile
     * in each layer), any GPM may cache any PTE.
     */
    Concentric,
    /**
     * §V-A: two symmetric groups; probe the nearest same-group peer
     * once, then go to the IOMMU.
     */
    Distributed,
    /**
     * §IV-D/E: clustering (Eq. 1-2) + rotation; concurrent probes to
     * the single candidate GPM per layer.
     */
    ClusterRotation,
};

/** How the IOMMU resolves walks it cannot redirect. */
enum class IommuWalkMode
{
    /** Walk locally with the IOMMU's own walker pool (default). */
    Local,
    /**
     * Trans-FW style: delegate the walk to the home GPM's GMMU; the
     * IOMMU holds a forwarding context until the reply returns.
     */
    ForwardToHome,
};

/** Full policy description. */
struct TranslationPolicy
{
    std::string name = "baseline";

    PeerCachingMode peerMode = PeerCachingMode::None;

    /** IOMMU-side redirection table (§IV-F). */
    bool redirectionTable = false;

    /**
     * Replace the redirection table with a conventional, MSHR-limited
     * TLB of equal area (Fig 19 sensitivity).
     */
    bool iommuTlbInsteadOfRt = false;

    /** Proactive page-entry delivery (§IV-G). */
    bool prefetch = false;

    /** Contiguous PTEs resolved per walk when prefetching (paper: 4). */
    int prefetchDegree = 4;

    /**
     * Revisit the PW-queue after each walk and complete identical
     * pending requests (§IV-F step 6; also Barre's core mechanism).
     */
    bool pwQueueRevisit = false;

    /** Valkyrie-style probe of the nearest neighbour's L2 TLB. */
    bool neighborTlbProbe = false;

    /** Trans-FW-style walk delegation. */
    IommuWalkMode walkMode = IommuWalkMode::Local;

    /**
     * Minimum PTE access count before the IOMMU pushes a demand
     * translation to auxiliary GPMs (§IV-F "selective" push).
     */
    unsigned auxPushThreshold = 2;

    /** Number of concentric caching layers C (§IV-C; default 2). */
    int concentricLayers = 2;

    /** Quadrant cluster count N_c (§IV-D; the paper uses 4). */
    int numClusters = 4;

    /** 180-degree rotation of alternate layers (§IV-E). */
    bool rotation = true;

    /**
     * Dispatch cluster+rotation probes to all layers concurrently
     * (§IV-D: "requests are sent concurrently to all concentric
     * layers"). When false, probes chain sequentially inward --
     * the design alternative this repo's DESIGN.md calls out.
     */
    bool concurrentProbes = true;

    /** True when any peer caching structure is active. */
    bool usesPeerCaching() const
    {
        return peerMode != PeerCachingMode::None;
    }

    /**
     * Structured validation: one message per violated invariant, each
     * naming the offending field. Empty means the policy is runnable
     * on any valid SystemConfig.
     */
    std::vector<std::string> validationErrors() const;

    // ---- Presets ---------------------------------------------------

    /** Naive: every non-local translation walks at the IOMMU. */
    static TranslationPolicy baseline();

    /** Full HDPAT: cluster+rotation, RT, prefetch, queue revisit. */
    static TranslationPolicy hdpat();

    /** Ablation: route-based caching only (§IV-B). */
    static TranslationPolicy routeCaching();

    /** Ablation: concentric caching only (§IV-C). */
    static TranslationPolicy concentricCaching();

    /** Ablation: straightforward distributed caching (§V-A). */
    static TranslationPolicy distributedCaching();

    /** Ablation: clustering + rotation, no RT/prefetch (§IV-D/E). */
    static TranslationPolicy clusterRotation();

    /** Ablation: cluster+rotation plus the redirection table. */
    static TranslationPolicy withRedirection();

    /** Ablation: cluster+rotation plus proactive delivery. */
    static TranslationPolicy withPrefetch();

    /** Comparison: Trans-FW (remote walk forwarding). */
    static TranslationPolicy transFw();

    /** Comparison: Valkyrie (inter-TLB locality via neighbour probe). */
    static TranslationPolicy valkyrie();

    /** Comparison: Barre (PW-queue translation coalescing). */
    static TranslationPolicy barre();

    /** Fig 19: HDPAT with an IOMMU TLB replacing the RT. */
    static TranslationPolicy hdpatWithIommuTlb();
};

} // namespace hdpat

#endif // HDPAT_CONFIG_TRANSLATION_POLICY_HH
