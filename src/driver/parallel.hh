/**
 * @file
 * Parallel experiment execution: run a batch of independent RunSpecs
 * on a persistent worker-thread pool.
 *
 * Every figure/table sweep is a grid of isolated simulations (configs
 * x policies x workloads), so the whole grid runs embarrassingly
 * parallel. Each run owns its engine, RNG, metric registry, and
 * tracer; the only process-wide state a run touches is the log sink
 * (mutex-serialized) and the per-thread log-tick registration, so
 * parallel results are bitwise-identical to serial execution and are
 * returned in spec order.
 *
 * Parallelism resolution, strongest first:
 *   1. the explicit `jobs` argument to runMany(),
 *   2. setDefaultJobs() (the --jobs CLI flag in benches and hdpat_cli),
 *   3. the HDPAT_JOBS environment variable,
 *   4. std::thread::hardware_concurrency().
 *
 * When a batch has more than one spec, each run's metrics-JSON and
 * Chrome-trace output paths get a "-<run_index>" suffix before the
 * extension ("m.json" -> "m-3.json"), so sweeps never clobber a shared
 * HDPAT_METRICS_JSON / HDPAT_TRACE_OUT destination. The suffix is
 * applied in serial mode too, so jobs=1 and jobs=N produce identical
 * file sets. Single-spec batches keep their paths untouched.
 */

#ifndef HDPAT_DRIVER_PARALLEL_HH
#define HDPAT_DRIVER_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "driver/run_result.hh"
#include "driver/runner.hh"

namespace hdpat
{

/**
 * Worker threads used when runMany() is called with jobs == 0: the
 * setDefaultJobs() override if set, else HDPAT_JOBS, else
 * hardware_concurrency() (minimum 1).
 */
unsigned defaultJobs();

/**
 * Process-wide override of defaultJobs(); 0 clears the override and
 * returns to HDPAT_JOBS / hardware_concurrency resolution.
 */
void setDefaultJobs(unsigned jobs);

/**
 * "path" with "-<index>" spliced in before the extension of the last
 * path component: ("out.json", 2) -> "out-2.json"; ("dir/out", 2) ->
 * "dir/out-2".
 */
std::string withRunIndexSuffix(const std::string &path,
                               std::size_t index);

/**
 * A persistent pool of worker threads. Threads are spawned on first
 * use and reused across parallelFor calls, so a bench issuing dozens
 * of sweeps pays thread-creation cost once.
 */
class WorkerPool
{
  public:
    /** The process-wide pool (grows on demand, never shrinks). */
    static WorkerPool &shared();

    WorkerPool();
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run body(0) ... body(n - 1) with at most @p max_parallel calls
     * in flight, blocking until all complete. Indices are claimed from
     * an atomic counter, so assignment order is nondeterministic --
     * the body must write results by index, never append.
     *
     * Not reentrant: a body must not call parallelFor on the same
     * pool.
     */
    void parallelFor(std::size_t n, unsigned max_parallel,
                     const std::function<void(std::size_t)> &body);

    /** Threads currently alive (for introspection/tests). */
    unsigned threadCount() const;

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * Run every spec and return the results in spec order, bitwise
 * identical to calling runOnce(spec) in a serial loop.
 *
 * @param jobs Worker threads to use; 0 = defaultJobs(). Clamped to
 *             the batch size; 1 runs inline with no threads.
 */
std::vector<RunResult> runMany(std::vector<RunSpec> specs,
                               unsigned jobs = 0);

/**
 * The batch's host self-profiles merged into one snapshot (empty when
 * no run was profiled). Worker assignment does not matter: per-section
 * totals are sums over runs.
 */
ProfileSnapshot mergedProfile(const std::vector<RunResult> &results);

} // namespace hdpat

#endif // HDPAT_DRIVER_PARALLEL_HH
