/**
 * @file
 * Column-aligned plain-text table output for the bench harnesses, so
 * every figure prints readable rows/series matching the paper.
 */

#ifndef HDPAT_DRIVER_TABLE_PRINTER_HH
#define HDPAT_DRIVER_TABLE_PRINTER_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace hdpat
{

class TablePrinter
{
  public:
    /** @param header Column titles. */
    explicit TablePrinter(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with padded columns and a separator under the header. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits (e.g. fmt(1.5732, 2) -> "1.57"). */
std::string fmt(double value, int decimals = 2);

/** Format a fraction as a percentage string ("42.1%"). */
std::string fmtPct(double fraction, int decimals = 1);

} // namespace hdpat

#endif // HDPAT_DRIVER_TABLE_PRINTER_HH
