/**
 * @file
 * Machine-readable result export: RunResult rows as CSV, and the IOMMU
 * request trace as CSV, for plotting/analysis outside the simulator.
 */

#ifndef HDPAT_DRIVER_REPORT_HH
#define HDPAT_DRIVER_REPORT_HH

#include <iosfwd>
#include <vector>

#include "driver/run_result.hh"
#include "driver/trace_analysis.hh"

namespace hdpat
{

/**
 * Write one CSV row per RunResult, with a header line. Columns:
 * workload, policy, config, cycles, ops, remote_ops,
 * remote_resolutions, peer_cache, redirection, proactive, iommu_walk,
 * iommu_tlb, home_gmmu, neighbor_tlb, offloaded_frac, rtt_mean,
 * iommu_walks, noc_packets, noc_byte_hops.
 */
void writeRunCsv(std::ostream &os, const std::vector<RunResult> &runs);

/** Write the (tick, vpn) IOMMU trace as CSV with a header line. */
void writeTraceCsv(std::ostream &os, const IommuTrace &trace);

} // namespace hdpat

#endif // HDPAT_DRIVER_REPORT_HH
