#include "driver/experiment.hh"

#include "sim/log.hh"
#include "workloads/suite.hh"

namespace hdpat
{

std::vector<RunResult>
runSuite(const SystemConfig &cfg, const TranslationPolicy &pol,
         std::size_t ops_per_gpm,
         const std::vector<std::string> &workloads, std::uint64_t seed)
{
    const std::vector<std::string> &names =
        workloads.empty() ? workloadAbbrs() : workloads;

    std::vector<RunResult> results;
    results.reserve(names.size());
    for (const std::string &name : names) {
        RunSpec spec;
        spec.config = cfg;
        spec.policy = pol;
        spec.workload = name;
        spec.opsPerGpm = ops_per_gpm;
        spec.seed = seed;
        results.push_back(runOnce(spec));
    }
    return results;
}

std::vector<double>
speedups(const std::vector<RunResult> &base,
         const std::vector<RunResult> &variant)
{
    hdpat_panic_if(base.size() != variant.size(),
                   "speedups over mismatched sweeps");
    std::vector<double> out;
    out.reserve(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        hdpat_panic_if(base[i].workload != variant[i].workload,
                       "speedups over misaligned workloads");
        out.push_back(speedupOver(base[i], variant[i]));
    }
    return out;
}

double
geomeanSpeedup(const std::vector<RunResult> &base,
               const std::vector<RunResult> &variant)
{
    return geomean(speedups(base, variant));
}

} // namespace hdpat
