#include "driver/experiment.hh"

#include <iterator>

#include "sim/log.hh"
#include "workloads/suite.hh"

namespace hdpat
{

std::vector<RunSpec>
suiteSpecs(const SystemConfig &cfg, const TranslationPolicy &pol,
           std::size_t ops_per_gpm,
           const std::vector<std::string> &workloads,
           std::uint64_t seed)
{
    const std::vector<std::string> &names =
        workloads.empty() ? workloadAbbrs() : workloads;

    std::vector<RunSpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names) {
        RunSpec spec;
        spec.config = cfg;
        spec.policy = pol;
        spec.workload = name;
        spec.opsPerGpm = ops_per_gpm;
        spec.seed = seed;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<RunResult>
runSuite(const SystemConfig &cfg, const TranslationPolicy &pol,
         std::size_t ops_per_gpm,
         const std::vector<std::string> &workloads, std::uint64_t seed)
{
    return runMany(suiteSpecs(cfg, pol, ops_per_gpm, workloads, seed));
}

std::vector<std::vector<RunResult>>
runSuiteGrid(
    const std::vector<std::pair<SystemConfig, TranslationPolicy>>
        &combos,
    std::size_t ops_per_gpm, const std::vector<std::string> &workloads,
    std::uint64_t seed)
{
    std::vector<RunSpec> grid;
    for (const auto &[cfg, pol] : combos) {
        auto specs = suiteSpecs(cfg, pol, ops_per_gpm, workloads, seed);
        grid.insert(grid.end(), std::make_move_iterator(specs.begin()),
                    std::make_move_iterator(specs.end()));
    }
    std::vector<RunResult> flat = runMany(std::move(grid));

    const std::size_t per_combo = combos.empty()
                                      ? 0
                                      : flat.size() / combos.size();
    std::vector<std::vector<RunResult>> results;
    results.reserve(combos.size());
    for (std::size_t c = 0; c < combos.size(); ++c) {
        results.emplace_back(
            std::make_move_iterator(flat.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        c * per_combo)),
            std::make_move_iterator(flat.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        (c + 1) * per_combo)));
    }
    return results;
}

std::vector<double>
speedups(const std::vector<RunResult> &base,
         const std::vector<RunResult> &variant)
{
    hdpat_panic_if(base.size() != variant.size(),
                   "speedups over mismatched sweeps");
    std::vector<double> out;
    out.reserve(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        hdpat_panic_if(base[i].workload != variant[i].workload,
                       "speedups over misaligned workloads");
        out.push_back(speedupOver(base[i], variant[i]));
    }
    return out;
}

double
geomeanSpeedup(const std::vector<RunResult> &base,
               const std::vector<RunResult> &variant)
{
    return geomean(speedups(base, variant));
}

} // namespace hdpat
