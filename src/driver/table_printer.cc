#include "driver/table_printer.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/log.hh"

namespace hdpat
{

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    hdpat_fatal_if(header_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

} // namespace hdpat
