#include "driver/area_model.hh"

namespace hdpat
{

SramEstimate
estimateSram(std::size_t entries, std::size_t bits_per_entry,
             const AreaModelParams &params)
{
    const double bits = static_cast<double>(entries) *
                        static_cast<double>(bits_per_entry);
    SramEstimate estimate;
    estimate.areaMm2 = bits * params.mm2PerBit;
    estimate.powerW = bits * params.wattsPerBit;
    return estimate;
}

} // namespace hdpat
