/**
 * @file
 * System: builds and wires a complete simulated wafer-scale GPU --
 * topology, network, page table, concentric layers, cluster map,
 * IOMMU, and one Gpm per tile -- loads a workload, runs the event loop
 * to completion, and collects a RunResult.
 *
 * This is the primary entry point of the library's public API:
 *
 * @code
 *   SystemConfig cfg = SystemConfig::mi100();
 *   TranslationPolicy pol = TranslationPolicy::hdpat();
 *   System sys(cfg, pol);
 *   auto wl = makeWorkload("SPMV");
 *   sys.loadWorkload(*wl, 20000, 42);
 *   RunResult r = sys.run();
 * @endcode
 */

#ifndef HDPAT_DRIVER_SYSTEM_HH
#define HDPAT_DRIVER_SYSTEM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "driver/run_result.hh"
#include "driver/tenancy.hh"
#include "gpm/gpm.hh"
#include "hdpat/cluster_map.hh"
#include "hdpat/concentric_layers.hh"
#include "iommu/iommu.hh"
#include "mem/page_table.hh"
#include "noc/mesh_topology.hh"
#include "noc/network.hh"
#include "obs/audit.hh"
#include "obs/backpressure.hh"
#include "obs/heartbeat.hh"
#include "obs/latency.hh"
#include "obs/profiler.hh"
#include "obs/registry.hh"
#include "obs/spatial.hh"
#include "obs/trace.hh"
#include "obs/watchdog.hh"
#include "sim/engine.hh"
#include "workloads/stream_cache.hh"
#include "workloads/workload.hh"

namespace hdpat
{

class System
{
  public:
    System(const SystemConfig &cfg, const TranslationPolicy &pol);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Allocate @p workload's buffers and hand each GPM its stream.
     *
     * @param ops_per_gpm Memory operations each GPM executes.
     * @param seed RNG seed (per-GPM seeds are derived from it).
     */
    void loadWorkload(Workload &workload, std::size_t ops_per_gpm,
                      std::uint64_t seed);

    /**
     * Same, but replay @p streams (a memoized table from the
     * WorkloadStreamCache) instead of generating addresses. The system
     * takes a shared const view -- the table outlives the run and is
     * safely shared with concurrent runs of the same key. @p workload
     * still performs the buffer allocation (page-table state, homes).
     */
    void loadWorkload(Workload &workload, std::size_t ops_per_gpm,
                      std::uint64_t seed,
                      std::shared_ptr<const StreamTable> streams);

    /** Record the (tick, VPN) stream arriving at the IOMMU. */
    void setCaptureIommuTrace(bool on) { iommu_->setCaptureTrace(on); }

    /**
     * Enable end-to-end span tracing: 1 in @p sample_n issued ops is
     * followed across the wafer; records land in a ring of
     * @p capacity entries. Call before run().
     */
    void enableTracing(std::size_t capacity = 1u << 20,
                       std::uint64_t sample_n = 1);

    /**
     * Enable latency attribution: every sampled translation's span is
     * decomposed into per-stage durations (obs/latency.hh), with an
     * exact-quantile reservoir and the slowest-@p top_k spans kept
     * for the critical-path report. Rides the span tracer: when
     * enableTracing was already called, the tracer's sampling governs
     * and @p sample_n is ignored; otherwise a ring-less tracer is
     * created with @p sample_n (1 = exact mode). Call before run().
     */
    void enableLatency(std::uint64_t sample_n = 1,
                       std::size_t top_k = 8);

    /**
     * Log a progress heartbeat every @p interval simulated ticks while
     * run() executes (at LogLevel::Info).
     */
    void enableHeartbeat(Tick interval);

    /**
     * Enable the conservation auditor: every issued translation must
     * retire exactly once, NoC sends must balance deliveries, MSHR
     * allocations must balance frees, and LL-TLB fills must balance
     * evictions plus residency. run() finalizes the audit and panics
     * with a structured diagnostic on any violation. Call before run().
     */
    void enableAudit();

    /**
     * Enable/disable NoC delivery fusion (default on; the
     * HDPAT_NOC_FUSE=0 kill switch routes here). Spatial observation
     * still forces unfused delivery regardless of this setting.
     */
    void setNocFusion(bool on) { net_.setFusion(on); }

    /**
     * Enable the stall watchdog: if the engine keeps executing events
     * for @p interval simulated ticks without a single memop retiring,
     * abort with the auditor-style diagnostic (stuck spans, per-tile
     * in-flight counts, deepest queues). Call before run().
     */
    void enableWatchdog(Tick interval);

    /**
     * Enable spatial heatmap collection: per-link NoC traffic totals
     * plus per-tile outstanding-op / GMMU-queue time series sampled
     * every @p sample_interval ticks into @p window -tick buckets.
     * Call before run().
     */
    void enableSpatial(Tick window, Tick sample_interval);

    /**
     * Enable the host self-profiler: wall-clock totals per host-side
     * subsystem (event dispatch, translation, NoC routing, IOMMU
     * pipeline, workload generation, export). Call before run().
     */
    void enableProfiler();

    /**
     * Enable backpressure accounting: every bounded structure (walk
     * queues, MSHR tables, walker pools, LL-TLB residency, NoC links)
     * registers as a named resource with tick-weighted occupancy
     * integrals, peaks, and time-at-capacity, cross-checked by the
     * Little's-law oracle (obs/backpressure.hh). @p window > 0 also
     * keeps per-window histories for pressure-over-time plots. Call
     * before run(); bitwise-invisible when not called.
     */
    void enableBackpressure(Tick window = 0);

    /**
     * Enable multi-tenancy: the tenant scheduler (context switches +
     * page churn), the IOMMU's not-present fault handler (remap on the
     * page's last home), and the tenancy-only metrics. Must be called
     * before loadWorkload (per-ASID allocation) and before
     * enableBackpressure (the fault queue registers only once a fault
     * handler exists). Bitwise-invisible when never called.
     */
    void enableTenancy(const TenancySpec &spec);

    /**
     * Shard the run across @p count spatial domains (contiguous column
     * strips of the mesh), each simulated on its own thread under
     * conservative windows of one NoC link latency (sim/domains.hh).
     * The result is bitwise identical to the serial run: the barrier
     * sequencer replays all cross-domain work in exact serial order.
     * 1 (the default) is the serial path. Requests are clamped to the
     * mesh width; features that observe the global event interleave
     * mid-run (span tracing, latency attribution, spatial sampling,
     * multi-tenancy) force a fallback to serial with a notice, as does
     * a zero-latency NoC (no conservative lookahead). Call before
     * run(). HDPAT_DOMAINS routes here via the runner.
     */
    void setDomains(unsigned count) { requestedDomains_ = count; }

    /** The domain count the last/next run actually uses. */
    unsigned effectiveDomains() const;

    /** Run to completion and gather statistics. */
    RunResult run();

    /**
     * Free one page: broadcast a TLB shootdown to every GPM and the
     * IOMMU, then unmap the PTE. The paper (§II-A) treats shootdowns
     * as rare (memory free only) with negligible timing impact, so
     * this is modeled as a state operation.
     * @return Total cached copies invalidated across the wafer.
     */
    std::size_t shootdown(Vpn vpn);

    /**
     * Asynchronous shootdown (tenancy churn): unmap the PTE and the
     * IOMMU-side state now, then send an invalidation packet to every
     * GPM tile; each tile drops its cached copies on delivery and acks
     * back over the NoC. The auditor's shootdown ledger demands
     * exactly one ack per tile per round.
     * @return false when @p vpn is unmapped or a round is already open.
     */
    bool shootdownAsync(Vpn vpn);

    /** True while an async shootdown round for @p vpn awaits acks. */
    bool shootdownInProgress(Vpn vpn) const
    {
        return openShootdowns_.count(vpn) != 0;
    }

    // ---- Component access (tests, examples) ----------------------------
    Engine &engine() { return engine_; }
    Network &network() { return net_; }
    const MeshTopology &topology() const { return topo_; }
    GlobalPageTable &pageTable() { return pt_; }
    Iommu &iommu() { return *iommu_; }
    const ConcentricLayers &layers() const { return layers_; }
    const ClusterMap &clusterMap() const { return clusterMap_; }
    std::size_t numGpms() const { return gpms_.size(); }
    Gpm &gpm(std::size_t index) { return *gpms_[index]; }
    Gpm *gpmAtTile(TileId tile)
    {
        return gpmByTile_[static_cast<std::size_t>(tile)];
    }
    const SystemConfig &config() const { return cfg_; }
    const TranslationPolicy &policy() const { return pol_; }

    /** Every metric this system can report, in registration order. */
    const MetricRegistry &metrics() const { return registry_; }
    /** The span tracer (null unless enableTracing was called). */
    const Tracer *tracer() const { return tracer_.get(); }
    /** Latency collector (null unless enableLatency was called). */
    const LatencyCollector *latency() const { return latency_.get(); }
    /** The conservation auditor (null unless enableAudit was called). */
    const Auditor *auditor() const { return auditor_.get(); }
    /** The stall watchdog (null unless enableWatchdog was called). */
    const Watchdog *watchdog() const { return watchdog_.get(); }
    /** Spatial collector (null unless enableSpatial was called). */
    const SpatialCollector *spatial() const { return spatial_.get(); }
    /** Host self-profiler (null unless enableProfiler was called). */
    const Profiler *profiler() const { return profiler_.get(); }
    /** Backpressure collector (null unless enableBackpressure). */
    const BackpressureCollector *backpressure() const
    {
        return backpressure_.get();
    }
    /** Mutable form: callers time their own sections (e.g. export). */
    Profiler *profiler() { return profiler_.get(); }
    /** Tenant scheduler (null unless enableTenancy was called). */
    const TenantScheduler *tenancy() const { return tenancy_.get(); }

  private:
    /**
     * Validate cfg + pol (fail fast with field-named errors, before
     * any member construction can crash on a degenerate value), then
     * build the mesh. Runs first in the member-init order because
     * topo_ is the first complex member.
     */
    static MeshTopology buildTopology(const SystemConfig &cfg,
                                      const TranslationPolicy &pol);

    /** Register every component's metrics (called once from ctor). */
    void registerMetrics();

    /** Build + attach the DomainSet and rewire observers (run()). */
    void setupDomainParallel(unsigned count);

    SystemConfig cfg_;
    TranslationPolicy pol_;

    Engine engine_;
    MeshTopology topo_;
    Network net_;
    GlobalPageTable pt_;
    ConcentricLayers layers_;
    ClusterMap clusterMap_;
    DistributedGroups groups_;
    std::unique_ptr<Iommu> iommu_;
    std::vector<std::unique_ptr<Gpm>> gpms_;
    std::vector<Gpm *> gpmByTile_;
    MetricRegistry registry_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<LatencyCollector> latency_;
    std::unique_ptr<Heartbeat> heartbeat_;
    std::unique_ptr<Auditor> auditor_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<SpatialCollector> spatial_;
    std::unique_ptr<SpatialSampler> spatialSampler_;
    std::unique_ptr<Profiler> profiler_;
    std::unique_ptr<BackpressureCollector> backpressure_;
    std::unique_ptr<TenantScheduler> tenancy_;
    TenancySpec tenancySpec_;
    /** Requested domain-parallel shard count (1 = serial). */
    unsigned requestedDomains_ = 1;
    /**
     * The attached domain scheduler (null on serial runs). Stays
     * attached after run() so post-run reads -- final tick, event
     * counts, registry exports -- keep resolving through it.
     */
    std::unique_ptr<DomainSet> domainSet_;
    /** Per-domain worker profilers, absorbed into profiler_ at run end. */
    std::vector<Profiler> domainProfilers_;
    /** Open async shootdown rounds: key -> outstanding acks. */
    std::unordered_map<Vpn, std::size_t> openShootdowns_;
    std::string workloadName_ = "(none)";
    bool loaded_ = false;
};

} // namespace hdpat

#endif // HDPAT_DRIVER_SYSTEM_HH
