/**
 * @file
 * Offline analysis of the IOMMU's (tick, VPN) request trace, producing
 * the characterisation data behind observations O3 and O4:
 *  - per-page translation-count distribution (Fig 6),
 *  - reuse-distance distribution between repeats (Fig 7),
 *  - spatial proximity of consecutive requests (Fig 8).
 */

#ifndef HDPAT_DRIVER_TRACE_ANALYSIS_HH
#define HDPAT_DRIVER_TRACE_ANALYSIS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace hdpat
{

using IommuTrace = std::vector<std::pair<Tick, Vpn>>;

/** Fig 6 buckets: how many pages were translated N times. */
struct TranslationCountBuckets
{
    std::uint64_t once = 0;
    std::uint64_t twice = 0;
    std::uint64_t threeToTen = 0;
    std::uint64_t elevenToHundred = 0;
    std::uint64_t moreThanHundred = 0;

    std::uint64_t totalPages() const
    {
        return once + twice + threeToTen + elevenToHundred +
               moreThanHundred;
    }
    double fraction(std::uint64_t bucket_count) const
    {
        const std::uint64_t total = totalPages();
        return total ? static_cast<double>(bucket_count) / total : 0.0;
    }
};

TranslationCountBuckets analyzeTranslationCounts(const IommuTrace &trace);

/**
 * Fig 7: for every repeated translation, the number of intervening
 * requests since the previous translation of the same VPN.
 */
Log2Histogram analyzeReuseDistance(const IommuTrace &trace);

/**
 * Fig 8: fraction of consecutive request pairs whose VPN distance is
 * within each threshold of @p distances (e.g. {1, 2, 4, 8}).
 */
std::vector<double>
spatialLocalityFractions(const IommuTrace &trace,
                         const std::vector<std::uint64_t> &distances);

} // namespace hdpat

#endif // HDPAT_DRIVER_TRACE_ANALYSIS_HH
