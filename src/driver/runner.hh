/**
 * @file
 * Runner: one-call experiment execution for benches and examples.
 * Centralises op-count scaling (HDPAT_BENCH_SCALE) and seeds, so every
 * figure harness runs the same way.
 */

#ifndef HDPAT_DRIVER_RUNNER_HH
#define HDPAT_DRIVER_RUNNER_HH

#include <cstdint>
#include <string>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "driver/run_result.hh"
#include "driver/tenancy.hh"

namespace hdpat
{

/**
 * Observability outputs for one run. Defaults come from the
 * environment (see obsOptionsFromEnv), so every bench and example
 * honours HDPAT_METRICS_JSON / HDPAT_TRACE_OUT / HDPAT_TRACE_SAMPLE /
 * HDPAT_HEARTBEAT without per-harness wiring.
 */
struct ObsOptions
{
    /** Write the metrics-registry JSON dump here ("" = off). */
    std::string metricsJsonPath;
    /** Write the Chrome-trace span export here ("" = off). */
    std::string traceOutPath;
    /** Trace 1 in N issued ops (only used when tracing is on). */
    std::uint64_t traceSampleN = 64;
    /** Span ring-buffer capacity in records. */
    std::size_t traceCapacity = 1u << 20;
    /**
     * Heartbeat period in ticks: -1 = auto (on at LogLevel::Info and
     * above), 0 = off, >0 = explicit interval.
     */
    std::int64_t heartbeatInterval = -1;
    /** Run the conservation auditor (HDPAT_AUDIT). */
    bool audit = false;
    /** Stall-watchdog interval in ticks, 0 = off (HDPAT_WATCHDOG). */
    std::int64_t watchdogInterval = 0;
    /**
     * Spatial heatmap window in ticks, 0 = off (HDPAT_SPATIAL).
     * Implied at the default window when spatialCsvPath is set.
     */
    std::int64_t spatialWindow = 0;
    /** Write the spatial heatmap CSV here ("" = off). */
    std::string spatialCsvPath;
    /** Run the host self-profiler (HDPAT_PROFILE). */
    bool profile = false;
    /** Latency attribution (HDPAT_LATENCY): per-stage anatomy. */
    bool latency = false;
    /** Attribute 1 in N sampled translations (1 = exact mode). */
    std::uint64_t latencySampleN = 1;
    /** Slowest spans kept for the critical-path report. */
    std::size_t latencyTopK = 8;
    /** Write the critical-path report here ("" = off; implies on). */
    std::string latencyReportPath;
    /**
     * Fuse NoC delivery companion events into the arrival event
     * (HDPAT_NOC_FUSE; default on, set to 0 to force the pre-fusion
     * per-companion event shape). Spatial observation overrides this
     * to off regardless.
     */
    bool nocFuse = true;
    /**
     * Domain-parallel shard count for the single run (HDPAT_DOMAINS;
     * default 1 = serial). K > 1 simulates the wafer as K column-strip
     * domains on K threads with bitwise-identical results; see
     * System::setDomains for the automatic fallbacks.
     */
    unsigned domains = 1;
    /** Backpressure accounting (HDPAT_BACKPRESSURE). */
    bool backpressure = false;
    /**
     * Backpressure window in ticks (HDPAT_BACKPRESSURE_WINDOW); 0 =
     * totals only, no per-window occupancy arrays.
     */
    std::int64_t backpressureWindow = 0;
    /** Write the bottleneck report here ("" = off; implies on). */
    std::string backpressureReportPath;

    bool any() const
    {
        return !metricsJsonPath.empty() || !traceOutPath.empty() ||
               !spatialCsvPath.empty() || !latencyReportPath.empty() ||
               !backpressureReportPath.empty();
    }

    /** Latency attribution on, via the flag or the report path. */
    bool latencyEnabled() const
    {
        return latency || !latencyReportPath.empty();
    }

    /** Backpressure on, via the flag or the report path. */
    bool backpressureEnabled() const
    {
        return backpressure || !backpressureReportPath.empty();
    }

    /** Spatial collection window, applying the CSV-implies default. */
    std::int64_t effectiveSpatialWindow() const;
};

/** ObsOptions populated from HDPAT_* environment variables. */
ObsOptions obsOptionsFromEnv();

/**
 * TenancySpec populated from the environment: HDPAT_TENANTS (address
 * spaces), HDPAT_SWITCH_RATE / HDPAT_CHURN_RATE (Poisson arrivals per
 * million ticks), HDPAT_TENANCY_SEED. All unset = single-tenant, and
 * runOnce skips enableTenancy entirely -- bitwise-identical runs.
 */
TenancySpec tenancySpecFromEnv();

/** Complete description of one simulation run. */
struct RunSpec
{
    SystemConfig config;
    TranslationPolicy policy;
    std::string workload = "SPMV";

    /** Memory ops per GPM; 0 = defaultOpsPerGpm(). */
    std::size_t opsPerGpm = 0;
    std::uint64_t seed = 0x5eed;
    double footprintScale = 1.0;
    bool captureIommuTrace = false;
    ObsOptions obs = obsOptionsFromEnv();
    /** Multi-tenant knobs (default from env; single-tenant if unset). */
    TenancySpec tenancy = tenancySpecFromEnv();
};

/**
 * Structured validation of a whole run description: the config's and
 * policy's own errors plus cross-field constraints (e.g. the workload
 * abbreviation must exist, footprintScale must be positive). Empty
 * means runOnce(spec) is expected to complete; the fuzzer treats any
 * divergence as a bug.
 */
std::vector<std::string> validationErrors(const RunSpec &spec);

/**
 * Build the system, load the workload, run, return the result.
 * Fails fast (exit 1) with the full validationErrors() list when the
 * spec is invalid, instead of crashing mid-construction.
 */
RunResult runOnce(const RunSpec &spec);

/**
 * Global op-count multiplier from the HDPAT_BENCH_SCALE environment
 * variable (default 1.0). Benches multiply their default op counts by
 * this, so `HDPAT_BENCH_SCALE=4 ./fig14_overall` runs 4x longer.
 */
double benchScale();

/** Default per-GPM op count (base 12000, scaled by benchScale()). */
std::size_t defaultOpsPerGpm();

} // namespace hdpat

#endif // HDPAT_DRIVER_RUNNER_HH
