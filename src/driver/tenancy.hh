/**
 * @file
 * Driver-side multi-tenancy: the tenant scheduler that multiplexes N
 * address spaces onto the wafer.
 *
 * Two Poisson processes drive it (both deterministic, seeded):
 *
 *  - context switches: the wafer-wide active ASID changes; newly
 *    issued ops bind to the new address space while in-flight ops keep
 *    the key they issued under;
 *  - page churn: a mapped page of some tenant is unmapped and its
 *    cached translations shot down across the wafer (the async
 *    invalidate/ack protocol in System::shootdownAsync). The next
 *    touch of that page faults at the IOMMU and the driver remaps it.
 *
 * Scheduler events are engine observers: they never keep the run
 * alive, and both processes stop rescheduling once the workload's own
 * events drain.
 */

#ifndef HDPAT_DRIVER_TENANCY_HH
#define HDPAT_DRIVER_TENANCY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace hdpat
{

class System;

/** Tenancy knobs (all zero/one = single-tenant, bitwise-identical). */
struct TenancySpec
{
    /** Address spaces multiplexed onto the wafer (1 = single-tenant). */
    std::uint32_t asidCount = 1;
    /**
     * Mean context-switch arrivals per million ticks (Poisson; 0 =
     * never switch). Integer so fuzz corpora serialize exactly.
     */
    std::uint64_t switchRatePerMTicks = 0;
    /** Mean page unmap+shootdown arrivals per million ticks. */
    std::uint64_t churnRatePerMTicks = 0;
    /** Seed of the scheduler's own RNG (independent of workloads). */
    std::uint64_t seed = 0x7e4a47;

    /** True when any knob leaves the single-tenant default. */
    bool enabled() const
    {
        return asidCount > 1 || switchRatePerMTicks > 0 ||
               churnRatePerMTicks > 0;
    }

    /** One message per violated invariant (empty = valid). */
    std::vector<std::string> validationErrors() const;
};

class TenantScheduler
{
  public:
    struct Stats
    {
        std::uint64_t contextSwitches = 0;
        std::uint64_t pagesChurned = 0;
        /** Churn draws that found the candidate unmapped/in-round. */
        std::uint64_t churnSkips = 0;
        /** Shootdowns whose redirection table named a holder tile. */
        std::uint64_t shootdownsDirected = 0;
        /** Shootdowns with no RT entry (pure broadcast). */
        std::uint64_t shootdownsBroadcast = 0;
    };

    TenantScheduler(System &sys, const TenancySpec &spec);

    /**
     * Snapshot churn candidates from the page table and schedule the
     * first switch/churn arrivals. System::run() calls this after the
     * GPMs start, so the observer accounting sees a live workload.
     */
    void start();

    /** Register scheduler counters under @p prefix ("tenancy."). */
    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const;

    const Stats &stats() const { return stats_; }
    Asid activeAsid() const { return active_; }
    const TenancySpec &spec() const { return spec_; }

  private:
    /** Next Poisson inter-arrival gap for @p rate arrivals/Mtick. */
    Tick poissonGap(std::uint64_t rate_per_mticks);
    void scheduleSwitch();
    void scheduleChurn();
    void fireSwitch();
    void fireChurn();

    System &sys_;
    TenancySpec spec_;
    Rng rng_;
    Asid active_ = 0;
    /** Every key ever mapped, sorted (deterministic churn draws). */
    std::vector<Vpn> candidates_;
    Stats stats_;
};

} // namespace hdpat

#endif // HDPAT_DRIVER_TENANCY_HH
