/**
 * @file
 * RunResult: everything a bench or example needs from one simulated
 * run -- end-to-end time, per-GPM finish ticks, the Fig 16 breakdown,
 * IOMMU pipeline statistics, and NoC traffic totals.
 */

#ifndef HDPAT_DRIVER_RUN_RESULT_HH
#define HDPAT_DRIVER_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "iommu/iommu.hh"
#include "noc/network.hh"
#include "obs/backpressure.hh"
#include "obs/latency.hh"
#include "obs/profiler.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hdpat
{

struct RunResult
{
    std::string workload;
    std::string policy;
    std::string config;

    /** End-to-end execution time (latest GPM finish). */
    Tick totalTicks = 0;

    /** (tile, finish tick) per GPM, in tile order. */
    std::vector<std::pair<TileId, Tick>> gpmFinish;

    // ---- Aggregated GPM-side statistics -------------------------------
    std::uint64_t opsTotal = 0;
    std::uint64_t l1TlbHits = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t llTlbHits = 0;
    std::uint64_t localWalks = 0;
    std::uint64_t cuckooFalsePositives = 0;
    std::uint64_t remoteOps = 0;
    std::uint64_t remoteResolutions = 0;
    std::array<std::uint64_t, kNumTranslationSources> sourceCounts{};
    SummaryStat remoteRtt;
    std::uint64_t probesSentTotal = 0;
    std::uint64_t probesReceivedTotal = 0;
    std::uint64_t probeHitsTotal = 0;
    std::uint64_t pushesReceivedTotal = 0;

    // ---- Conservation-audit digest (zero unless auditing was on) ------
    /** Translations issued / retired as counted by the auditor. */
    std::uint64_t auditIssued = 0;
    std::uint64_t auditRetired = 0;
    /** PPNs checked against the reference page walk (all must match). */
    std::uint64_t auditPfnChecks = 0;
    /**
     * Order-independent digest of per-(tile, VPN) retire counts. Equal
     * specs must produce equal hashes under any runMany ordering or
     * job count — the fuzzer's conservation differential.
     */
    std::uint64_t auditRetireCensusHash = 0;

    // ---- Tenancy (all zero unless enableTenancy was called) -----------
    std::uint64_t contextSwitches = 0;
    std::uint64_t pagesChurned = 0;
    std::uint64_t shootdownRounds = 0;
    std::uint64_t shootdownRoundsClosed = 0;
    std::uint64_t invalidationAcks = 0;
    std::uint64_t staleInstallsBlocked = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t faultsServiced = 0;

    // ---- Component snapshots -------------------------------------------
    Iommu::Stats iommu;
    Network::Stats noc;

    /** Host self-profile (empty unless profiling was enabled). */
    ProfileSnapshot profile;

    /** Latency anatomy (empty unless latency attribution was on). */
    LatencySnapshot latency;

    /** Backpressure anatomy (empty unless enableBackpressure). */
    BackpressureSnapshot backpressure;

    // ---- Helpers ---------------------------------------------------------
    /** Total remote translations resolved (sum of sourceCounts). */
    std::uint64_t remoteServed() const;

    /** Fraction of remote translations served by @p source. */
    double sourceFraction(TranslationSource source) const;

    /**
     * Fraction of remote translations served *without* an IOMMU walk
     * (the paper's "offloaded 42.1%" metric).
     */
    double offloadedFraction() const;

    /** Earliest and latest GPM finish (Fig 5 imbalance). */
    Tick minGpmFinish() const;
    Tick maxGpmFinish() const;
};

/** base.totalTicks / x.totalTicks, i.e. >1 means x is faster. */
double speedupOver(const RunResult &base, const RunResult &x);

} // namespace hdpat

#endif // HDPAT_DRIVER_RUN_RESULT_HH
