#include "driver/run_result.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hdpat
{

std::uint64_t
RunResult::remoteServed() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : sourceCounts)
        total += c;
    return total;
}

double
RunResult::sourceFraction(TranslationSource source) const
{
    const std::uint64_t total = remoteServed();
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               sourceCounts[static_cast<std::size_t>(source)]) /
           static_cast<double>(total);
}

double
RunResult::offloadedFraction() const
{
    const std::uint64_t total = remoteServed();
    if (total == 0)
        return 0.0;
    const std::uint64_t iommu_served =
        sourceCounts[static_cast<std::size_t>(
            TranslationSource::IommuWalk)] +
        sourceCounts[static_cast<std::size_t>(
            TranslationSource::IommuTlb)];
    return 1.0 - static_cast<double>(iommu_served) /
                     static_cast<double>(total);
}

Tick
RunResult::minGpmFinish() const
{
    Tick best = kTickNever;
    for (const auto &[tile, tick] : gpmFinish)
        best = std::min(best, tick);
    return best == kTickNever ? 0 : best;
}

Tick
RunResult::maxGpmFinish() const
{
    Tick worst = 0;
    for (const auto &[tile, tick] : gpmFinish)
        worst = std::max(worst, tick);
    return worst;
}

double
speedupOver(const RunResult &base, const RunResult &x)
{
    hdpat_panic_if(x.totalTicks == 0, "speedup over a zero-tick run");
    return static_cast<double>(base.totalTicks) /
           static_cast<double>(x.totalTicks);
}

} // namespace hdpat
