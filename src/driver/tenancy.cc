#include "driver/tenancy.hh"

#include <algorithm>
#include <cmath>

#include "driver/system.hh"
#include "sim/log.hh"

namespace hdpat
{

std::vector<std::string>
TenancySpec::validationErrors() const
{
    std::vector<std::string> errors;
    if (asidCount == 0)
        errors.push_back("tenancy.asidCount must be >= 1");
    if (asidCount > (1u << 16)) {
        errors.push_back(
            "tenancy.asidCount must fit the ASID tag (<= 65536)");
    }
    if (asidCount == 1 && switchRatePerMTicks > 0) {
        errors.push_back("tenancy.switchRatePerMTicks needs "
                         "asidCount > 1 to switch between");
    }
    return errors;
}

TenantScheduler::TenantScheduler(System &sys, const TenancySpec &spec)
    : sys_(sys), spec_(spec), rng_(spec.seed)
{
}

void
TenantScheduler::start()
{
    // Snapshot the post-load page table; sorting decouples churn draws
    // from hash-map iteration order.
    candidates_.clear();
    sys_.pageTable().forEachPage(
        [this](Vpn vpn, const Pte &) { candidates_.push_back(vpn); });
    std::sort(candidates_.begin(), candidates_.end());

    if (spec_.switchRatePerMTicks > 0 && spec_.asidCount > 1)
        scheduleSwitch();
    if (spec_.churnRatePerMTicks > 0 && !candidates_.empty())
        scheduleChurn();
}

Tick
TenantScheduler::poissonGap(std::uint64_t rate_per_mticks)
{
    // Inverse-CDF exponential draw. uniformDouble() is in [0, 1), so
    // log(1 - u) is finite; the mean gap is 1e6 / rate ticks.
    const double mean =
        1.0e6 / static_cast<double>(rate_per_mticks);
    const double gap = -std::log(1.0 - rng_.uniformDouble()) * mean;
    return std::max<Tick>(1, static_cast<Tick>(gap));
}

void
TenantScheduler::scheduleSwitch()
{
    sys_.engine().noteObserverScheduled();
    sys_.engine().scheduleIn(poissonGap(spec_.switchRatePerMTicks),
                             [this] { fireSwitch(); });
}

void
TenantScheduler::scheduleChurn()
{
    sys_.engine().noteObserverScheduled();
    sys_.engine().scheduleIn(poissonGap(spec_.churnRatePerMTicks),
                             [this] { fireChurn(); });
}

void
TenantScheduler::fireSwitch()
{
    sys_.engine().noteObserverFired();
    if (!sys_.engine().hasNonObserverEvents())
        return; // The workload drained; do not keep the run alive.

    // Uniform draw over the *other* tenants: a switch always changes
    // the address space.
    Asid next = static_cast<Asid>(
        rng_.uniformInt(spec_.asidCount - 1));
    if (next >= active_)
        ++next;
    active_ = next;
    ++stats_.contextSwitches;

    sys_.pageTable().setActiveAsid(active_);
    for (std::size_t i = 0; i < sys_.numGpms(); ++i)
        sys_.gpm(i).setActiveAsid(active_);

    scheduleSwitch();
}

void
TenantScheduler::fireChurn()
{
    sys_.engine().noteObserverFired();
    if (!sys_.engine().hasNonObserverEvents())
        return;

    // Bounded retry: a draw can land on a page that is currently
    // unmapped (awaiting its fault-driven remap) or mid-shootdown.
    constexpr int kMaxDraws = 4;
    for (int attempt = 0; attempt < kMaxDraws; ++attempt) {
        const Vpn key = candidates_[static_cast<std::size_t>(
            rng_.uniformInt(candidates_.size()))];
        if (!sys_.pageTable().translate(key) ||
            sys_.shootdownInProgress(key)) {
            ++stats_.churnSkips;
            continue;
        }
        const RedirectionTable *rt =
            sys_.iommu().redirectionTable();
        if (rt && rt->peek(key) != kInvalidTile)
            ++stats_.shootdownsDirected;
        else
            ++stats_.shootdownsBroadcast;
        const bool issued = sys_.shootdownAsync(key);
        hdpat_panic_if(!issued,
                       "churn shootdown refused for mapped key 0x"
                           << std::hex << key);
        ++stats_.pagesChurned;
        break;
    }

    scheduleChurn();
}

void
TenantScheduler::registerMetrics(MetricRegistry &reg,
                                 const std::string &prefix) const
{
    reg.addCounter(prefix + "context_switches",
                   &stats_.contextSwitches);
    reg.addCounter(prefix + "pages_churned", &stats_.pagesChurned);
    reg.addCounter(prefix + "churn_skips", &stats_.churnSkips);
    reg.addCounter(prefix + "shootdowns_directed",
                   &stats_.shootdownsDirected);
    reg.addCounter(prefix + "shootdowns_broadcast",
                   &stats_.shootdownsBroadcast);
}

} // namespace hdpat
