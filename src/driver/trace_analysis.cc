#include "driver/trace_analysis.hh"

#include <unordered_map>

namespace hdpat
{

TranslationCountBuckets
analyzeTranslationCounts(const IommuTrace &trace)
{
    std::unordered_map<Vpn, std::uint64_t> counts;
    for (const auto &[tick, vpn] : trace)
        ++counts[vpn];

    TranslationCountBuckets buckets;
    for (const auto &[vpn, count] : counts) {
        if (count == 1)
            ++buckets.once;
        else if (count == 2)
            ++buckets.twice;
        else if (count <= 10)
            ++buckets.threeToTen;
        else if (count <= 100)
            ++buckets.elevenToHundred;
        else
            ++buckets.moreThanHundred;
    }
    return buckets;
}

Log2Histogram
analyzeReuseDistance(const IommuTrace &trace)
{
    Log2Histogram histogram;
    std::unordered_map<Vpn, std::uint64_t> last_seen;
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        const Vpn vpn = trace[i].second;
        auto it = last_seen.find(vpn);
        if (it != last_seen.end())
            histogram.add(i - it->second);
        last_seen[vpn] = i;
    }
    return histogram;
}

std::vector<double>
spatialLocalityFractions(const IommuTrace &trace,
                         const std::vector<std::uint64_t> &distances)
{
    std::vector<std::uint64_t> counts(distances.size(), 0);
    std::uint64_t pairs = 0;
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const Vpn a = trace[i].second;
        const Vpn b = trace[i + 1].second;
        const std::uint64_t dist = a > b ? a - b : b - a;
        ++pairs;
        for (std::size_t d = 0; d < distances.size(); ++d) {
            if (dist <= distances[d])
                ++counts[d];
        }
    }

    std::vector<double> fractions(distances.size(), 0.0);
    if (pairs == 0)
        return fractions;
    for (std::size_t d = 0; d < distances.size(); ++d)
        fractions[d] = static_cast<double>(counts[d]) / pairs;
    return fractions;
}

} // namespace hdpat
