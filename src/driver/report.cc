#include "driver/report.hh"

#include <ostream>

namespace hdpat
{

void
writeRunCsv(std::ostream &os, const std::vector<RunResult> &runs)
{
    os << "workload,policy,config,cycles,ops,remote_ops,"
          "remote_resolutions,peer_cache,redirection,proactive,"
          "iommu_walk,iommu_tlb,home_gmmu,neighbor_tlb,"
          "offloaded_frac,rtt_mean,iommu_walks,noc_packets,"
          "noc_byte_hops\n";
    for (const RunResult &r : runs) {
        os << r.workload << ',' << r.policy << ',' << r.config << ','
           << r.totalTicks << ',' << r.opsTotal << ',' << r.remoteOps
           << ',' << r.remoteResolutions;
        for (std::size_t i = 0; i < kNumTranslationSources; ++i)
            os << ',' << r.sourceCounts[i];
        os << ',' << r.offloadedFraction() << ',' << r.remoteRtt.mean()
           << ',' << r.iommu.walksCompleted << ',' << r.noc.packets
           << ',' << r.noc.byteHops << '\n';
    }
}

void
writeTraceCsv(std::ostream &os, const IommuTrace &trace)
{
    os << "tick,vpn\n";
    for (const auto &[tick, vpn] : trace)
        os << tick << ',' << vpn << '\n';
}

} // namespace hdpat
