#include "driver/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/log.hh"

namespace hdpat
{

namespace
{

/** setDefaultJobs() override; 0 = none. */
std::atomic<unsigned> g_jobs_override{0};

unsigned
jobsFromEnvironment()
{
    if (const char *env = std::getenv("HDPAT_JOBS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

unsigned
defaultJobs()
{
    const unsigned override = g_jobs_override.load();
    return override > 0 ? override : jobsFromEnvironment();
}

void
setDefaultJobs(unsigned jobs)
{
    g_jobs_override.store(jobs);
}

std::string
withRunIndexSuffix(const std::string &path, std::size_t index)
{
    const std::string suffix = "-" + std::to_string(index);
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    // Only a dot inside the last path component marks an extension.
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash) ||
        dot == (slash == std::string::npos ? 0 : slash + 1)) {
        return path + suffix;
    }
    return path.substr(0, dot) + suffix + path.substr(dot);
}

// ---------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------

struct WorkerPool::Impl
{
    std::mutex mutex;
    std::condition_variable wake;
    std::deque<std::function<void()>> tasks;
    std::vector<std::thread> threads;
    bool stopping = false;

    void workerLoop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        while (true) {
            wake.wait(lock,
                      [this] { return stopping || !tasks.empty(); });
            if (stopping && tasks.empty())
                return;
            std::function<void()> task = std::move(tasks.front());
            tasks.pop_front();
            lock.unlock();
            task();
            lock.lock();
        }
    }

    /** Grow to at least @p n threads. Caller must not hold the mutex. */
    void ensureThreads(unsigned n)
    {
        const std::lock_guard<std::mutex> lock(mutex);
        while (threads.size() < n)
            threads.emplace_back([this] { workerLoop(); });
    }

    void submit(std::function<void()> task)
    {
        {
            const std::lock_guard<std::mutex> lock(mutex);
            tasks.push_back(std::move(task));
        }
        wake.notify_one();
    }
};

WorkerPool &
WorkerPool::shared()
{
    static WorkerPool pool;
    return pool;
}

WorkerPool::WorkerPool() : impl_(new Impl) {}

WorkerPool::~WorkerPool()
{
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->wake.notify_all();
    for (std::thread &t : impl_->threads)
        t.join();
    delete impl_;
}

unsigned
WorkerPool::threadCount() const
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    return static_cast<unsigned>(impl_->threads.size());
}

void
WorkerPool::parallelFor(std::size_t n, unsigned max_parallel,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (max_parallel < 1)
        max_parallel = 1;
    const unsigned drains = static_cast<unsigned>(
        std::min<std::size_t>(max_parallel, n));
    impl_->ensureThreads(drains);

    // Each drain task pulls indices from a shared counter until the
    // range is exhausted; `drains` of them bound the real parallelism.
    struct Batch
    {
        std::atomic<std::size_t> next{0};
        std::atomic<unsigned> remaining;
        std::mutex doneMutex;
        std::condition_variable done;
        std::exception_ptr error;
        std::mutex errorMutex;
    };
    Batch batch;
    batch.remaining = drains;

    auto drain = [&batch, &body, n] {
        for (std::size_t i = batch.next.fetch_add(1); i < n;
             i = batch.next.fetch_add(1)) {
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(
                    batch.errorMutex);
                if (!batch.error)
                    batch.error = std::current_exception();
            }
        }
        if (batch.remaining.fetch_sub(1) == 1) {
            const std::lock_guard<std::mutex> lock(batch.doneMutex);
            batch.done.notify_all();
        }
    };
    for (unsigned d = 0; d < drains; ++d)
        impl_->submit(drain);

    std::unique_lock<std::mutex> lock(batch.doneMutex);
    batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
    if (batch.error)
        std::rethrow_exception(batch.error);
}

// ---------------------------------------------------------------------
// runMany
// ---------------------------------------------------------------------

namespace
{

/**
 * Suffix per-run observability outputs so a sweep sharing one
 * HDPAT_METRICS_JSON / HDPAT_TRACE_OUT destination fans out to one
 * file per run instead of overwriting. Applied for any multi-spec
 * batch (serial included) so jobs=1 and jobs=N name identical files.
 */
void
suffixObsPaths(std::vector<RunSpec> &specs)
{
    if (specs.size() < 2)
        return;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ObsOptions &obs = specs[i].obs;
        if (!obs.metricsJsonPath.empty())
            obs.metricsJsonPath =
                withRunIndexSuffix(obs.metricsJsonPath, i);
        if (!obs.traceOutPath.empty())
            obs.traceOutPath = withRunIndexSuffix(obs.traceOutPath, i);
        if (!obs.spatialCsvPath.empty())
            obs.spatialCsvPath =
                withRunIndexSuffix(obs.spatialCsvPath, i);
        if (!obs.latencyReportPath.empty())
            obs.latencyReportPath =
                withRunIndexSuffix(obs.latencyReportPath, i);
        if (!obs.backpressureReportPath.empty())
            obs.backpressureReportPath =
                withRunIndexSuffix(obs.backpressureReportPath, i);
    }
}

} // namespace

std::vector<RunResult>
runMany(std::vector<RunSpec> specs, unsigned jobs)
{
    suffixObsPaths(specs);

    std::vector<RunResult> results(specs.size());
    const unsigned effective = static_cast<unsigned>(
        std::min<std::size_t>(jobs > 0 ? jobs : defaultJobs(),
                              specs.size()));
    if (effective <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = runOnce(specs[i]);
        return results;
    }

    hdpat_debug("runMany: " << specs.size() << " runs on " << effective
                            << " workers");
    WorkerPool::shared().parallelFor(
        specs.size(), effective,
        [&](std::size_t i) { results[i] = runOnce(specs[i]); });
    return results;
}

ProfileSnapshot
mergedProfile(const std::vector<RunResult> &results)
{
    ProfileSnapshot merged;
    for (const RunResult &r : results)
        merged.merge(r.profile);
    return merged;
}

} // namespace hdpat
