/**
 * @file
 * Experiment helpers shared by the per-figure bench harnesses: run the
 * whole 14-benchmark suite under a policy, compute per-workload
 * speedups against a baseline sweep, and geometric means.
 */

#ifndef HDPAT_DRIVER_EXPERIMENT_HH
#define HDPAT_DRIVER_EXPERIMENT_HH

#include <string>
#include <vector>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "driver/run_result.hh"
#include "driver/runner.hh"

namespace hdpat
{

/**
 * Run every workload in @p workloads (default: the full Table II
 * suite) under one config/policy. Results are in workload order.
 */
std::vector<RunResult>
runSuite(const SystemConfig &cfg, const TranslationPolicy &pol,
         std::size_t ops_per_gpm = 0,
         const std::vector<std::string> &workloads = {},
         std::uint64_t seed = 0x5eed);

/**
 * Per-workload speedups of @p variant over @p base (same workload
 * order required).
 */
std::vector<double> speedups(const std::vector<RunResult> &base,
                             const std::vector<RunResult> &variant);

/** Geometric-mean speedup of @p variant over @p base. */
double geomeanSpeedup(const std::vector<RunResult> &base,
                      const std::vector<RunResult> &variant);

} // namespace hdpat

#endif // HDPAT_DRIVER_EXPERIMENT_HH
