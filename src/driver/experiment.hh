/**
 * @file
 * Experiment helpers shared by the per-figure bench harnesses: run the
 * whole 14-benchmark suite under a policy, compute per-workload
 * speedups against a baseline sweep, and geometric means.
 */

#ifndef HDPAT_DRIVER_EXPERIMENT_HH
#define HDPAT_DRIVER_EXPERIMENT_HH

#include <string>
#include <utility>
#include <vector>

#include "config/system_config.hh"
#include "config/translation_policy.hh"
#include "driver/parallel.hh"
#include "driver/run_result.hh"
#include "driver/runner.hh"

namespace hdpat
{

/**
 * The RunSpecs runSuite would execute, in workload order (default:
 * the full Table II suite). Exposed so harnesses can concatenate
 * several suites into one runMany() grid.
 */
std::vector<RunSpec>
suiteSpecs(const SystemConfig &cfg, const TranslationPolicy &pol,
           std::size_t ops_per_gpm = 0,
           const std::vector<std::string> &workloads = {},
           std::uint64_t seed = 0x5eed);

/**
 * Run every workload in @p workloads (default: the full Table II
 * suite) under one config/policy. Results are in workload order.
 * Runs on the worker pool (HDPAT_JOBS / --jobs); results are
 * identical to serial execution.
 */
std::vector<RunResult>
runSuite(const SystemConfig &cfg, const TranslationPolicy &pol,
         std::size_t ops_per_gpm = 0,
         const std::vector<std::string> &workloads = {},
         std::uint64_t seed = 0x5eed);

/**
 * Run one suite per (config, policy) combination as a single parallel
 * grid: all combos' workloads execute on the worker pool together, so
 * an entire figure sweep saturates the cores instead of one suite at
 * a time. Result [c][w] is combo c's workload w.
 */
std::vector<std::vector<RunResult>>
runSuiteGrid(
    const std::vector<std::pair<SystemConfig, TranslationPolicy>>
        &combos,
    std::size_t ops_per_gpm = 0,
    const std::vector<std::string> &workloads = {},
    std::uint64_t seed = 0x5eed);

/**
 * Per-workload speedups of @p variant over @p base (same workload
 * order required).
 */
std::vector<double> speedups(const std::vector<RunResult> &base,
                             const std::vector<RunResult> &variant);

/** Geometric-mean speedup of @p variant over @p base. */
double geomeanSpeedup(const std::vector<RunResult> &base,
                      const std::vector<RunResult> &variant);

} // namespace hdpat

#endif // HDPAT_DRIVER_EXPERIMENT_HH
