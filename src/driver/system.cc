#include "driver/system.hh"

#include <chrono>
#include <span>
#include <unordered_map>

#include "sim/log.hh"

namespace hdpat
{

MeshTopology
System::buildTopology(const SystemConfig &cfg,
                      const TranslationPolicy &pol)
{
    cfg.validate();
    const std::vector<std::string> pol_errors = pol.validationErrors();
    if (!pol_errors.empty()) {
        std::string msg = "invalid TranslationPolicy \"" + pol.name +
                          "\":";
        for (const std::string &e : pol_errors)
            msg += "\n  - " + e;
        hdpat_fatal(msg);
    }
    if (cfg.topology == TopologyKind::Mcm4)
        return MeshTopology::mcm4();
    return MeshTopology::wafer(cfg.meshWidth, cfg.meshHeight);
}

System::System(const SystemConfig &cfg, const TranslationPolicy &pol)
    : cfg_(cfg), pol_(pol), topo_(buildTopology(cfg, pol)),
      net_(engine_, topo_, cfg.noc), pt_(cfg.pageShift),
      layers_(topo_, pol.concentricLayers),
      clusterMap_(layers_, pol.numClusters, pol.rotation),
      groups_(layers_)
{
    hdpat_fatal_if(pol_.usesPeerCaching() && layers_.numLayers() == 0,
                   "policy '" << pol_.name
                              << "' needs concentric caching layers");

    iommu_ = std::make_unique<Iommu>(engine_, net_, pt_, cfg_, pol_,
                                     topo_.cpuTile());

    gpmByTile_.assign(static_cast<std::size_t>(topo_.numTiles()),
                      nullptr);
    for (TileId tile : topo_.gpmTiles()) {
        auto gpm = std::make_unique<Gpm>(tile, engine_, net_, pt_, cfg_,
                                         pol_);
        gpmByTile_[static_cast<std::size_t>(tile)] = gpm.get();
        gpms_.push_back(std::move(gpm));
    }

    std::vector<PeerEndpoint *> peers(
        static_cast<std::size_t>(topo_.numTiles()), nullptr);
    for (auto &gpm : gpms_)
        peers[static_cast<std::size_t>(gpm->tile())] = gpm.get();
    iommu_->setPeers(std::move(peers));
    iommu_->setClusterMap(&clusterMap_);

    for (auto &gpm : gpms_) {
        gpm->connect(iommu_.get(), &layers_, &clusterMap_, &groups_,
                     &gpmByTile_);
        if (pol_.neighborTlbProbe) {
            // Valkyrie: probe the nearest GPM (an orthogonal mesh
            // neighbour when one exists).
            const Coord c = topo_.coordOf(gpm->tile());
            TileId best = kInvalidTile;
            int best_dist = 0;
            for (TileId other : topo_.gpmTiles()) {
                if (other == gpm->tile())
                    continue;
                const int d = topo_.hopDistance(gpm->tile(), other);
                if (best == kInvalidTile || d < best_dist ||
                    (d == best_dist && other < best)) {
                    best = other;
                    best_dist = d;
                }
            }
            (void)c;
            gpm->setNeighborTarget(best);
        }
    }

    registerMetrics();
}

void
System::registerMetrics()
{
    // Per-component metrics under stable hierarchical prefixes.
    for (auto &gpm : gpms_) {
        gpm->registerMetrics(registry_,
                             "gpm.t" + std::to_string(gpm->tile()) +
                                 ".");
    }
    iommu_->registerMetrics(registry_, "iommu.");
    net_.registerMetrics(registry_, "noc.");

    // Wafer-wide aggregates over all GPMs; these are what RunResult
    // and the reports consume.
    const auto sum = [this](std::uint64_t Gpm::Stats::*field) {
        return MetricRegistry::CounterFn([this, field] {
            std::uint64_t total = 0;
            for (const auto &g : gpms_)
                total += g->stats().*field;
            return total;
        });
    };
    registry_.addCounter("gpm.ops_issued", sum(&Gpm::Stats::opsIssued));
    registry_.addCounter("gpm.ops_completed",
                         sum(&Gpm::Stats::opsCompleted));
    registry_.addCounter("gpm.l1_tlb_hits", sum(&Gpm::Stats::l1TlbHits));
    registry_.addCounter("gpm.l2_tlb_hits", sum(&Gpm::Stats::l2TlbHits));
    registry_.addCounter("gpm.ll_tlb_hits", sum(&Gpm::Stats::llTlbHits));
    registry_.addCounter("gpm.local_walks", sum(&Gpm::Stats::localWalks));
    registry_.addCounter("gpm.cuckoo_negatives",
                         sum(&Gpm::Stats::cuckooNegatives));
    registry_.addCounter("gpm.cuckoo_false_positives",
                         sum(&Gpm::Stats::cuckooFalsePositives));
    registry_.addCounter("gpm.remote_ops", sum(&Gpm::Stats::remoteOps));
    registry_.addCounter("gpm.remote_resolutions",
                         sum(&Gpm::Stats::remoteResolutions));
    registry_.addCounter("gpm.remote_stalls",
                         sum(&Gpm::Stats::remoteStalls));
    registry_.addCounter("gpm.probes_received",
                         sum(&Gpm::Stats::probesReceived));
    registry_.addCounter("gpm.probe_hits", sum(&Gpm::Stats::probeHits));
    registry_.addCounter("gpm.pushes_received",
                         sum(&Gpm::Stats::pushesReceived));
    for (std::size_t i = 0; i < kNumTranslationSources; ++i) {
        registry_.addCounter(
            std::string("translation.source.") +
                translationSourceName(static_cast<TranslationSource>(i)),
            MetricRegistry::CounterFn([this, i] {
                std::uint64_t total = 0;
                for (const auto &g : gpms_)
                    total += g->stats().sourceCounts[i];
                return total;
            }));
    }
    registry_.addSummary(
        "gpm.remote_rtt", MetricRegistry::SummaryFn([this] {
            SummaryStat merged;
            for (const auto &g : gpms_)
                merged.merge(g->stats().remoteRtt);
            return merged;
        }));

    // Event-engine load: lifetime schedule count and the most events
    // pending at once. The high-water gauge is what sizes
    // EventQueue::reserve() in loadWorkload -- exporting it makes the
    // estimate auditable from any metrics JSON.
    registry_.addCounter("engine.events_scheduled",
                         MetricRegistry::CounterFn([this] {
                             return engine_.scheduledEvents();
                         }));
    registry_.addGauge("engine.pending_events_hwm",
                       MetricRegistry::GaugeFn([this] {
                           return static_cast<double>(
                               engine_.pendingEventsHighWater());
                       }));
}

void
System::enableTracing(std::size_t capacity, std::uint64_t sample_n)
{
    tracer_ = std::make_unique<Tracer>(capacity, sample_n);
    net_.setTracer(tracer_.get());
    iommu_->setTracer(tracer_.get());
    for (auto &gpm : gpms_)
        gpm->setTracer(tracer_.get());
}

void
System::enableLatency(std::uint64_t sample_n, std::size_t top_k)
{
    if (!tracer_) {
        // Ring capacity 1: the collector consumes the record stream
        // through the sink, so the ring itself is never exported and
        // can stay minimal.
        enableTracing(1, sample_n);
    }
    latency_ =
        std::make_unique<LatencyCollector>(tracer_->sampleN(), top_k);
    tracer_->setSink(latency_.get());
}

void
System::enableHeartbeat(Tick interval)
{
    // The status lambda carries its own windowed-retire state so the
    // line shows throughput over the last beat, not just cumulative
    // progress: a mid-run stall reads as "retired +0 (0/s)" beats
    // before the watchdog would fire.
    heartbeat_ = std::make_unique<Heartbeat>(
        engine_, interval,
        [this, last_retired = std::uint64_t{0},
         last_wall = std::chrono::steady_clock::now()]() mutable {
            int in_flight = 0;
            std::uint64_t retired = 0;
            for (const auto &g : gpms_) {
                in_flight += g->outstandingOps();
                retired += g->stats().opsCompleted;
            }
            const auto wall = std::chrono::steady_clock::now();
            const double wall_s =
                std::chrono::duration<double>(wall - last_wall).count();
            const std::uint64_t delta = retired - last_retired;
            const std::uint64_t per_s =
                wall_s > 0.0 ? static_cast<std::uint64_t>(
                                   static_cast<double>(delta) / wall_s)
                             : 0;
            last_retired = retired;
            last_wall = wall;
            return "in-flight=" + std::to_string(in_flight) +
                   " iommu-backlog=" +
                   std::to_string(iommu_->backlog()) + " retired=" +
                   std::to_string(retired) + " (+" +
                   std::to_string(delta) + ", " +
                   std::to_string(per_s) + "/s wall)";
        });
}

void
System::enableAudit()
{
    auditor_ = std::make_unique<Auditor>();
    // Reference oracle: a direct walk of the global page table. Every
    // PPN any policy path installs must agree with it; nullopt (page
    // unmapped, e.g. by a shootdown) abstains.
    auditor_->setReferenceTranslator(
        [this](Vpn vpn) -> std::optional<Pfn> {
            const Pte *pte = pt_.translate(vpn);
            if (!pte)
                return std::nullopt;
            return pte->pfn;
        });
    net_.setAuditor(auditor_.get());
    iommu_->setAuditor(auditor_.get());
    for (auto &gpm : gpms_)
        gpm->setAuditor(auditor_.get());
}

void
System::enableWatchdog(Tick interval)
{
    watchdog_ = std::make_unique<Watchdog>(
        engine_, interval,
        [this] {
            std::uint64_t retired = 0;
            for (const auto &g : gpms_)
                retired += g->stats().opsCompleted;
            return retired;
        },
        [this]() -> std::string {
            if (auditor_)
                return auditor_->diagnostic();
            // No auditor attached: fall back to live queue depths.
            std::string dump = "in-flight per tile:";
            for (const auto &g : gpms_)
                dump += " t" + std::to_string(g->tile()) + "=" +
                        std::to_string(g->outstandingOps());
            dump += "\niommu backlog: " +
                    std::to_string(iommu_->backlog());
            return dump;
        });
}

void
System::enableSpatial(Tick window, Tick sample_interval)
{
    spatial_ = std::make_unique<SpatialCollector>(
        static_cast<std::size_t>(topo_.numTiles()), window);
    spatial_->setMesh(topo_.width(), topo_.height(), topo_.cpuTile());
    net_.setSpatial(spatial_.get());
    spatialSampler_ = std::make_unique<SpatialSampler>(
        engine_, sample_interval, [this](Tick now) {
            for (const auto &g : gpms_) {
                spatial_->sampleTile(
                    g->tile(), now,
                    static_cast<double>(g->outstandingOps()),
                    static_cast<double>(g->gmmu().queueDepth()));
            }
            spatial_->sampleIommu(
                now, static_cast<double>(iommu_->backlog()));
        });
}

void
System::enableProfiler()
{
    profiler_ = std::make_unique<Profiler>();
    engine_.setProfiler(profiler_.get());
    net_.setProfiler(profiler_.get());
    iommu_->setProfiler(profiler_.get());
    for (auto &gpm : gpms_)
        gpm->setProfiler(profiler_.get());
}

void
System::enableTenancy(const TenancySpec &spec)
{
    hdpat_fatal_if(loaded_,
                   "System::enableTenancy after loadWorkload: per-ASID "
                   "allocation needs the spec first");
    const std::vector<std::string> errors = spec.validationErrors();
    if (!errors.empty()) {
        std::string msg = "invalid TenancySpec:";
        for (const std::string &e : errors)
            msg += "\n  - " + e;
        hdpat_fatal(msg);
    }
    tenancySpec_ = spec;
    tenancy_ = std::make_unique<TenantScheduler>(*this, spec);

    // Not-present fault handler: the driver re-establishes the mapping
    // on the page's last home with a fresh PFN, and restores the home
    // GPM's permanent filter entry (a state operation, like the
    // original seeding -- the fault service delay models the cost).
    iommu_->setFaultHandler([this](Vpn vpn) {
        if (pt_.translate(vpn))
            return; // An earlier fault already re-established it.
        const Pte *pte = pt_.remap(vpn);
        hdpat_panic_if(!pte, "IOMMU fault for never-mapped key 0x"
                                 << std::hex << vpn);
        Gpm *home = gpmByTile_[static_cast<std::size_t>(pte->home)];
        if (home)
            home->seedLocalPages(std::span<const Vpn>(&vpn, 1));
    });

    // Tenancy-only counters, appended after the single-tenant set so
    // pre-existing dumps keep their exact key order.
    tenancy_->registerMetrics(registry_, "tenancy.");
    iommu_->registerTenancyMetrics(registry_, "iommu.");
    for (auto &gpm : gpms_) {
        gpm->registerTenancyMetrics(
            registry_, "gpm.t" + std::to_string(gpm->tile()) + ".");
    }
    const auto sum = [this](std::uint64_t Gpm::Stats::*field) {
        return MetricRegistry::CounterFn([this, field] {
            std::uint64_t total = 0;
            for (const auto &g : gpms_)
                total += g->stats().*field;
            return total;
        });
    };
    registry_.addCounter("gpm.stale_installs_blocked",
                         sum(&Gpm::Stats::staleInstallsBlocked));
    registry_.addCounter("gpm.invalidations_received",
                         sum(&Gpm::Stats::invalidationsReceived));
}

void
System::enableBackpressure(Tick window)
{
    backpressure_ = std::make_unique<BackpressureCollector>(window);
    net_.setBackpressure(*backpressure_);
    iommu_->setBackpressure(*backpressure_);
    for (auto &gpm : gpms_)
        gpm->setBackpressure(*backpressure_);
}

void
System::loadWorkload(Workload &workload, std::size_t ops_per_gpm,
                     std::uint64_t seed)
{
    loadWorkload(workload, ops_per_gpm, seed, nullptr);
}

void
System::loadWorkload(Workload &workload, std::size_t ops_per_gpm,
                     std::uint64_t seed,
                     std::shared_ptr<const StreamTable> streams)
{
    const ProfScope prof(profiler_.get(), ProfSection::WorkloadGen);
    hdpat_fatal_if(loaded_, "System::loadWorkload called twice");
    hdpat_fatal_if(streams && streams->numGpms() != gpms_.size(),
                   "stream table built for "
                       << streams->numGpms() << " GPMs, system has "
                       << gpms_.size());
    loaded_ = true;
    workloadName_ = workload.info().abbr;

    // One identical allocation per tenant: every ASID's VPN cursor
    // starts at the same base, so the VA layout (and therefore the
    // address streams below) is shared across tenants, and only the
    // ASID tag in the key differs. ASID 0 is the identity.
    const std::uint32_t asids =
        tenancySpec_.asidCount > 0 ? tenancySpec_.asidCount : 1;
    for (std::uint32_t asid = 0; asid < asids; ++asid) {
        pt_.setActiveAsid(static_cast<Asid>(asid));
        workload.allocate(pt_, topo_.gpmTiles());
    }
    pt_.setActiveAsid(0);

    // Seed each GPM's cuckoo filter with its local pages (one pass
    // over the page table, bucketed by home).
    std::unordered_map<TileId, std::vector<Vpn>> by_home;
    pt_.forEachPage([&by_home](Vpn vpn, const Pte &pte) {
        by_home[pte.home].push_back(vpn);
    });
    for (auto &gpm : gpms_) {
        auto it = by_home.find(gpm->tile());
        if (it != by_home.end())
            gpm->seedLocalPages(it->second);
    }

    const double rate = workload.info().opsPerCycle * cfg_.computeScale;
    const int window = static_cast<int>(workload.info().maxOutstanding *
                                        cfg_.computeScale);
    for (std::size_t i = 0; i < gpms_.size(); ++i) {
        if (streams) {
            gpms_[i]->setWork(
                std::make_unique<ReplayStream>(streams, i));
        } else {
            gpms_[i]->setWork(workload.streamFor(i, gpms_.size(),
                                                 ops_per_gpm, seed));
        }
        gpms_[i]->setIssueParams(rate, window);
    }

    // Pre-size the event queue for the audited steady state: each GPM
    // keeps up to its outstanding window in flight plus an issue
    // self-event, and every in-flight op contributes at most one
    // pending event (hop, pipeline stage, or completion) at a time.
    // The observers (heartbeat, watchdog, sampler) and IOMMU batching
    // ride in the slack. Suite-wide, the recorded
    // engine.pending_events_hwm gauge stays below this estimate, so
    // steady-state scheduling never allocates.
    const std::size_t per_gpm =
        static_cast<std::size_t>(std::max(window, 1)) + 2;
    engine_.reserveEvents(gpms_.size() * per_gpm + 64);
}

std::size_t
System::shootdown(Vpn vpn)
{
    std::size_t invalidated = 0;
    for (auto &gpm : gpms_)
        invalidated += gpm->shootdown(vpn);
    iommu_->shootdown(vpn);
    pt_.unmap(vpn);
    return invalidated;
}

bool
System::shootdownAsync(Vpn vpn)
{
    if (openShootdowns_.count(vpn) || !pt_.translate(vpn))
        return false;

    // Unmap first: from this tick no walk can observe the old PTE, so
    // the install gates reject every stale in-flight result while the
    // invalidations fan out. The IOMMU-side structures (redirection
    // table, Fig 19 TLB, page-walk caches) drop synchronously -- they
    // live on the CPU tile issuing the shootdown.
    pt_.unmap(vpn);
    iommu_->shootdown(vpn);

    // Cached copies can live on any tile (chain fills, proactive
    // pushes, neighbour probes), so correctness requires the full
    // broadcast; the redirection table at most names the one holder
    // the IOMMU knows about (the directed/broadcast split is counted
    // by the tenant scheduler).
    openShootdowns_[vpn] = gpms_.size();
    if (auditor_) {
        auditor_->shootdownIssued(vpn, gpms_.size(), engine_.now());
    }
    const TileId cpu = topo_.cpuTile();
    for (auto &g : gpms_) {
        Gpm *gpm = g.get();
        const TileId target = gpm->tile();
        net_.send(cpu, target, NocMessageBytes::kInvalidate,
                  [this, gpm, target, cpu, vpn] {
                      gpm->receiveInvalidate(vpn);
                      net_.send(
                          target, cpu, NocMessageBytes::kInvalidateAck,
                          [this, vpn, target] {
                              if (auditor_) {
                                  auditor_->invalidationAcked(
                                      vpn, target, engine_.now());
                              }
                              const auto it = openShootdowns_.find(vpn);
                              hdpat_panic_if(it == openShootdowns_.end(),
                                             "stray shootdown ack");
                              if (--it->second == 0)
                                  openShootdowns_.erase(it);
                          });
                  });
    }
    return true;
}

unsigned
System::effectiveDomains() const
{
    unsigned k = requestedDomains_;
    if (k <= 1)
        return 1;
    if (tracer_ || latency_ || spatial_ || spatialSampler_ ||
        tenancy_) {
        hdpat_inform(
            "domain parallelism disabled: span tracing, latency "
            "attribution, spatial sampling, and multi-tenancy observe "
            "the global event interleave mid-run; running serial");
        return 1;
    }
    if (cfg_.noc.linkLatency < 1) {
        hdpat_inform("domain parallelism disabled: zero NoC link "
                     "latency leaves no conservative lookahead; "
                     "running serial");
        return 1;
    }
    const unsigned width = static_cast<unsigned>(topo_.width());
    if (k > width) {
        hdpat_inform("domain count " << k << " clamped to the mesh "
                                     << "width " << width);
        k = width;
    }
    return k;
}

void
System::setupDomainParallel(unsigned count)
{
    DomainSet::Config dcfg;
    dcfg.count = count;
    // Lookahead = the minimum cross-tile NoC delay: any packet sent at
    // t arrives at t + linkLatency or later, so inside a window no
    // domain can influence another (the null-message bound).
    dcfg.lookahead = cfg_.noc.linkLatency;
    dcfg.queueImpl = engine_.queueImpl();
    const unsigned width = static_cast<unsigned>(topo_.width());
    dcfg.domainOfTile.resize(
        static_cast<std::size_t>(topo_.numTiles()));
    for (TileId t = 0; t < topo_.numTiles(); ++t) {
        // Contiguous column strips: min(K-1, x*K/width) is surjective
        // onto [0, K) for K <= width, so every domain owns work.
        const unsigned x = static_cast<unsigned>(topo_.coordOf(t).x);
        dcfg.domainOfTile[static_cast<std::size_t>(t)] =
            std::min(count - 1, x * count / width);
    }
    domainSet_ = std::make_unique<DomainSet>(std::move(dcfg));
    net_.setDomains(domainSet_.get());
    engine_.setDomains(domainSet_.get());

    // Auditor hooks now fire from worker threads; the counters are
    // commutative and per-(tile, VPN) order is preserved (a tile's ops
    // all run on its domain thread), so the verdict is unchanged.
    if (auditor_)
        auditor_->setConcurrent(true);

    // Each worker profiles into a private instance (absorbed into the
    // main profiler after the run); the main profiler keeps the
    // sequencer's share and the wall clock.
    if (profiler_) {
        domainProfilers_ = std::vector<Profiler>(count);
        for (unsigned d = 0; d < count; ++d)
            domainSet_->setWorkerProfiler(d, &domainProfilers_[d]);
        for (auto &gpm : gpms_) {
            gpm->setProfiler(
                &domainProfilers_[domainSet_->domainOf(gpm->tile())]);
        }
        iommu_->setProfiler(
            &domainProfilers_[domainSet_->domainOf(topo_.cpuTile())]);
    }

    // Heartbeat and watchdog run in coordinator mode off the window
    // barrier: they read global aggregates with the workers quiescent,
    // schedule no engine events, and never mistake one domain waiting
    // at its window horizon for a stalled run.
    domainSet_->setBarrierHook([this](Tick window_start) {
        if (heartbeat_)
            heartbeat_->beatExternal(window_start);
        if (watchdog_)
            watchdog_->checkExternal(window_start);
    });

    hdpat_inform("domain-parallel run: " << count
                                         << " column-strip domains, "
                                         << "lookahead "
                                         << cfg_.noc.linkLatency
                                         << " ticks");
}

RunResult
System::run()
{
    hdpat_fatal_if(!loaded_, "System::run without a workload");

    const unsigned k = effectiveDomains();
    if (k > 1)
        setupDomainParallel(k);
    DomainSet *ds = domainSet_.get();

    for (auto &gpm : gpms_) {
        // Route each GPM's bootstrap event into its own domain queue
        // (no-op on serial runs).
        const DomainSet::ScopedTarget target(
            ds, ds ? ds->domainOf(gpm->tile()) : 0);
        gpm->start();
    }
    if (tenancy_)
        tenancy_->start();
    if (heartbeat_)
        ds ? heartbeat_->startExternal() : heartbeat_->start();
    if (watchdog_)
        ds ? watchdog_->startExternal() : watchdog_->start();
    if (spatialSampler_)
        spatialSampler_->start();

    const auto wall_start = std::chrono::steady_clock::now();
    engine_.run();
    if (profiler_) {
        profiler_->addWall(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count()));
    }

    if (heartbeat_)
        heartbeat_->stop();
    if (watchdog_)
        watchdog_->stop();
    if (spatialSampler_)
        spatialSampler_->stop();

    if (ds) {
        // Fold the workers' tile-local packet deltas into the NoC
        // stats (pure sums) and their profiler sections into the main
        // profile before anything reads either.
        net_.foldDomainStats();
        if (profiler_) {
            for (const Profiler &p : domainProfilers_)
                profiler_->absorb(p);
        }
    }

    RunResult result;
    result.workload = workloadName_;
    result.policy = pol_.name;
    result.config = cfg_.name;

    for (auto &gpm : gpms_) {
        const Gpm::Stats &s = gpm->stats();
        hdpat_panic_if(!s.finished,
                       "GPM " << gpm->tile()
                              << " did not finish (deadlock?)");
        result.gpmFinish.emplace_back(gpm->tile(), s.finishTick);
        result.totalTicks = std::max(result.totalTicks, s.finishTick);
    }

    if (auditor_ && pt_.mutationEpoch() > 0) {
        // Staleness-oracle sweep: after the run drains, no TLB on the
        // wafer may still hold a translation the page table disavows
        // (the install gates + shootdown protocol must have caught
        // every stale copy). Free in single-tenant runs (epoch 0).
        for (auto &gpm : gpms_)
            gpm->sweepResidentTranslations(*auditor_);
        if (const IommuTlb *tlb = iommu_->iommuTlb()) {
            tlb->tlb().forEachValid([this](Vpn vpn, Pfn pfn) {
                const Pte *pte = pt_.translate(vpn);
                if (!pte || pte->pfn != pfn)
                    auditor_->staleResident(topo_.cpuTile(), vpn, pfn);
            });
        }
    }

    if (auditor_) {
        const Auditor::Report report = auditor_->finalize();
        if (!report.ok) {
            std::string msg = "conservation audit failed:";
            for (const std::string &v : report.violations)
                msg += "\n  " + v;
            msg += "\n" + report.diagnostic;
            hdpat_panic(msg);
        }
        result.auditIssued = auditor_->issued();
        result.auditRetired = auditor_->retired();
        result.auditPfnChecks = auditor_->pfnChecks();
        result.auditRetireCensusHash = auditor_->retireCensusHash();
    }

    if (spatial_) {
        // Per-tile summary so Fig 5 regenerates from the export alone.
        for (const auto &gpm : gpms_) {
            const Coord c = topo_.coordOf(gpm->tile());
            SpatialCollector::TileSummary summary;
            summary.x = c.x;
            summary.y = c.y;
            summary.ring = topo_.ringOf(gpm->tile());
            summary.isGpm = true;
            summary.finishTick = gpm->stats().finishTick;
            const SummaryStat &rtt = gpm->stats().remoteRtt;
            summary.rttCount = rtt.count();
            summary.rttMean = rtt.count() ? rtt.mean() : 0.0;
            spatial_->setTileSummary(gpm->tile(), summary);
        }
        const Coord cpu = topo_.coordOf(topo_.cpuTile());
        SpatialCollector::TileSummary summary;
        summary.x = cpu.x;
        summary.y = cpu.y;
        summary.ring = 0;
        summary.isCpu = true;
        spatial_->setTileSummary(topo_.cpuTile(), summary);
    }

    if (profiler_)
        result.profile = profiler_->snapshot();

    if (latency_)
        result.latency = latency_->snapshot();

    if (backpressure_) {
        // Snapshot at the engine's final tick: the last GPM finish can
        // precede trailing drain events (walk completions, deliveries)
        // whose transitions the integrals must cover.
        result.backpressure = backpressure_->snapshot(engine_.now());
    }

    // Aggregated GPM-side statistics come from the metric registry's
    // wafer-wide entries, so RunResult and every exporter read the
    // same snapshot.
    result.opsTotal = registry_.counterValue("gpm.ops_completed");
    result.l1TlbHits = registry_.counterValue("gpm.l1_tlb_hits");
    result.l2TlbHits = registry_.counterValue("gpm.l2_tlb_hits");
    result.llTlbHits = registry_.counterValue("gpm.ll_tlb_hits");
    result.localWalks = registry_.counterValue("gpm.local_walks");
    result.cuckooFalsePositives =
        registry_.counterValue("gpm.cuckoo_false_positives");
    result.remoteOps = registry_.counterValue("gpm.remote_ops");
    result.remoteResolutions =
        registry_.counterValue("gpm.remote_resolutions");
    for (std::size_t i = 0; i < kNumTranslationSources; ++i) {
        result.sourceCounts[i] = registry_.counterValue(
            std::string("translation.source.") +
            translationSourceName(static_cast<TranslationSource>(i)));
    }
    result.remoteRtt = registry_.summaryValue("gpm.remote_rtt");
    result.probesReceivedTotal =
        registry_.counterValue("gpm.probes_received");
    result.probeHitsTotal = registry_.counterValue("gpm.probe_hits");
    result.pushesReceivedTotal =
        registry_.counterValue("gpm.pushes_received");

    if (tenancy_) {
        result.contextSwitches = tenancy_->stats().contextSwitches;
        result.pagesChurned = tenancy_->stats().pagesChurned;
        result.staleInstallsBlocked =
            registry_.counterValue("gpm.stale_installs_blocked");
        result.pageFaults = iommu_->stats().pageFaults;
        result.faultsServiced = iommu_->stats().faultsServiced;
        if (auditor_) {
            result.shootdownRounds = auditor_->shootdownRounds();
            result.shootdownRoundsClosed =
                auditor_->shootdownRoundsClosed();
            result.invalidationAcks = auditor_->invalidationAcks();
        }
    }

    result.iommu = iommu_->stats();
    result.noc = net_.stats();
    return result;
}

} // namespace hdpat
