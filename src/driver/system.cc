#include "driver/system.hh"

#include <unordered_map>

#include "sim/log.hh"

namespace hdpat
{

MeshTopology
System::buildTopology(const SystemConfig &cfg)
{
    if (cfg.topology == TopologyKind::Mcm4)
        return MeshTopology::mcm4();
    return MeshTopology::wafer(cfg.meshWidth, cfg.meshHeight);
}

System::System(const SystemConfig &cfg, const TranslationPolicy &pol)
    : cfg_(cfg), pol_(pol), topo_(buildTopology(cfg)),
      net_(engine_, topo_, cfg.noc), pt_(cfg.pageShift),
      layers_(topo_, pol.concentricLayers),
      clusterMap_(layers_, pol.numClusters, pol.rotation),
      groups_(layers_)
{
    cfg_.validate();
    hdpat_fatal_if(pol_.usesPeerCaching() && layers_.numLayers() == 0,
                   "policy '" << pol_.name
                              << "' needs concentric caching layers");

    iommu_ = std::make_unique<Iommu>(engine_, net_, pt_, cfg_, pol_,
                                     topo_.cpuTile());

    gpmByTile_.assign(static_cast<std::size_t>(topo_.numTiles()),
                      nullptr);
    for (TileId tile : topo_.gpmTiles()) {
        auto gpm = std::make_unique<Gpm>(tile, engine_, net_, pt_, cfg_,
                                         pol_);
        gpmByTile_[static_cast<std::size_t>(tile)] = gpm.get();
        gpms_.push_back(std::move(gpm));
    }

    std::vector<PeerEndpoint *> peers(
        static_cast<std::size_t>(topo_.numTiles()), nullptr);
    for (auto &gpm : gpms_)
        peers[static_cast<std::size_t>(gpm->tile())] = gpm.get();
    iommu_->setPeers(std::move(peers));
    iommu_->setClusterMap(&clusterMap_);

    for (auto &gpm : gpms_) {
        gpm->connect(iommu_.get(), &layers_, &clusterMap_, &groups_,
                     &gpmByTile_);
        if (pol_.neighborTlbProbe) {
            // Valkyrie: probe the nearest GPM (an orthogonal mesh
            // neighbour when one exists).
            const Coord c = topo_.coordOf(gpm->tile());
            TileId best = kInvalidTile;
            int best_dist = 0;
            for (TileId other : topo_.gpmTiles()) {
                if (other == gpm->tile())
                    continue;
                const int d = topo_.hopDistance(gpm->tile(), other);
                if (best == kInvalidTile || d < best_dist ||
                    (d == best_dist && other < best)) {
                    best = other;
                    best_dist = d;
                }
            }
            (void)c;
            gpm->setNeighborTarget(best);
        }
    }
}

void
System::loadWorkload(Workload &workload, std::size_t ops_per_gpm,
                     std::uint64_t seed)
{
    hdpat_fatal_if(loaded_, "System::loadWorkload called twice");
    loaded_ = true;
    workloadName_ = workload.info().abbr;

    workload.allocate(pt_, topo_.gpmTiles());

    // Seed each GPM's cuckoo filter with its local pages (one pass
    // over the page table, bucketed by home).
    std::unordered_map<TileId, std::vector<Vpn>> by_home;
    pt_.forEachPage([&by_home](Vpn vpn, const Pte &pte) {
        by_home[pte.home].push_back(vpn);
    });
    for (auto &gpm : gpms_) {
        auto it = by_home.find(gpm->tile());
        if (it != by_home.end())
            gpm->seedLocalPages(it->second);
    }

    for (std::size_t i = 0; i < gpms_.size(); ++i) {
        gpms_[i]->setWork(workload.streamFor(i, gpms_.size(),
                                             ops_per_gpm, seed));
        const double rate =
            workload.info().opsPerCycle * cfg_.computeScale;
        const int window = static_cast<int>(
            workload.info().maxOutstanding * cfg_.computeScale);
        gpms_[i]->setIssueParams(rate, window);
    }
}

std::size_t
System::shootdown(Vpn vpn)
{
    std::size_t invalidated = 0;
    for (auto &gpm : gpms_)
        invalidated += gpm->shootdown(vpn);
    iommu_->shootdown(vpn);
    pt_.unmap(vpn);
    return invalidated;
}

RunResult
System::run()
{
    hdpat_fatal_if(!loaded_, "System::run without a workload");

    for (auto &gpm : gpms_)
        gpm->start();
    engine_.run();

    RunResult result;
    result.workload = workloadName_;
    result.policy = pol_.name;
    result.config = cfg_.name;

    for (auto &gpm : gpms_) {
        const Gpm::Stats &s = gpm->stats();
        hdpat_panic_if(!s.finished,
                       "GPM " << gpm->tile()
                              << " did not finish (deadlock?)");
        result.gpmFinish.emplace_back(gpm->tile(), s.finishTick);
        result.totalTicks = std::max(result.totalTicks, s.finishTick);

        result.opsTotal += s.opsCompleted;
        result.l1TlbHits += s.l1TlbHits;
        result.l2TlbHits += s.l2TlbHits;
        result.llTlbHits += s.llTlbHits;
        result.localWalks += s.localWalks;
        result.cuckooFalsePositives += s.cuckooFalsePositives;
        result.remoteOps += s.remoteOps;
        result.remoteResolutions += s.remoteResolutions;
        for (std::size_t i = 0; i < kNumTranslationSources; ++i)
            result.sourceCounts[i] += s.sourceCounts[i];
        result.remoteRtt.merge(s.remoteRtt);
        result.probesReceivedTotal += s.probesReceived;
        result.probeHitsTotal += s.probeHits;
        result.pushesReceivedTotal += s.pushesReceived;
    }

    result.iommu = iommu_->stats();
    result.noc = net_.stats();
    return result;
}

} // namespace hdpat
