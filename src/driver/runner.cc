#include "driver/runner.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/system.hh"
#include "obs/exporters.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace hdpat
{

namespace
{

/** Heartbeat period when HDPAT_HEARTBEAT asks for "auto". */
constexpr Tick kAutoHeartbeatInterval = 2'000'000;

/** Spatial window when HDPAT_SPATIAL_CSV implies collection. */
constexpr std::int64_t kDefaultSpatialWindow = 100'000;

/** Accept "N" or "1/N"; anything unparsable keeps @p fallback. */
std::uint64_t
parseSampleSpec(const char *text, std::uint64_t fallback)
{
    if (!text || !*text)
        return fallback;
    std::string s(text);
    const auto slash = s.find('/');
    if (slash != std::string::npos)
        s = s.substr(slash + 1);
    const long long v = std::atoll(s.c_str());
    return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

/** Boolean env flag: set and not "" / "0" means on. */
bool
envFlag(const char *name)
{
    const char *env = std::getenv(name);
    return env && *env && std::string(env) != "0";
}

} // namespace

ObsOptions
obsOptionsFromEnv()
{
    ObsOptions obs;
    if (const char *env = std::getenv("HDPAT_METRICS_JSON"))
        obs.metricsJsonPath = env;
    if (const char *env = std::getenv("HDPAT_TRACE_OUT"))
        obs.traceOutPath = env;
    obs.traceSampleN = parseSampleSpec(
        std::getenv("HDPAT_TRACE_SAMPLE"), obs.traceSampleN);
    if (const char *env = std::getenv("HDPAT_HEARTBEAT"))
        obs.heartbeatInterval = std::atoll(env);
    obs.audit = envFlag("HDPAT_AUDIT");
    if (const char *env = std::getenv("HDPAT_NOC_FUSE");
        env && *env && std::string(env) == "0")
        obs.nocFuse = false;
    if (const char *env = std::getenv("HDPAT_DOMAINS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            obs.domains = static_cast<unsigned>(v);
    }
    if (const char *env = std::getenv("HDPAT_WATCHDOG"))
        obs.watchdogInterval = std::atoll(env);
    if (const char *env = std::getenv("HDPAT_SPATIAL"))
        obs.spatialWindow = std::atoll(env);
    if (const char *env = std::getenv("HDPAT_SPATIAL_CSV"))
        obs.spatialCsvPath = env;
    obs.profile = envFlag("HDPAT_PROFILE");
    obs.latency = envFlag("HDPAT_LATENCY");
    obs.latencySampleN = parseSampleSpec(
        std::getenv("HDPAT_LATENCY_SAMPLE"), obs.latencySampleN);
    if (const char *env = std::getenv("HDPAT_LATENCY_TOPK")) {
        const long long v = std::atoll(env);
        if (v > 0)
            obs.latencyTopK = static_cast<std::size_t>(v);
    }
    if (const char *env = std::getenv("HDPAT_LATENCY_REPORT"))
        obs.latencyReportPath = env;
    obs.backpressure = envFlag("HDPAT_BACKPRESSURE");
    if (const char *env = std::getenv("HDPAT_BACKPRESSURE_WINDOW"))
        obs.backpressureWindow = std::atoll(env);
    if (const char *env = std::getenv("HDPAT_BACKPRESSURE_REPORT"))
        obs.backpressureReportPath = env;
    return obs;
}

TenancySpec
tenancySpecFromEnv()
{
    TenancySpec tenancy;
    if (const char *env = std::getenv("HDPAT_TENANTS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            tenancy.asidCount = static_cast<std::uint32_t>(v);
    }
    if (const char *env = std::getenv("HDPAT_SWITCH_RATE")) {
        const long long v = std::atoll(env);
        if (v > 0)
            tenancy.switchRatePerMTicks =
                static_cast<std::uint64_t>(v);
    }
    if (const char *env = std::getenv("HDPAT_CHURN_RATE")) {
        const long long v = std::atoll(env);
        if (v > 0)
            tenancy.churnRatePerMTicks = static_cast<std::uint64_t>(v);
    }
    if (const char *env = std::getenv("HDPAT_TENANCY_SEED")) {
        const long long v = std::atoll(env);
        if (v > 0)
            tenancy.seed = static_cast<std::uint64_t>(v);
    }
    return tenancy;
}

std::int64_t
ObsOptions::effectiveSpatialWindow() const
{
    if (spatialWindow > 0)
        return spatialWindow;
    return spatialCsvPath.empty() ? 0 : kDefaultSpatialWindow;
}

double
benchScale()
{
    static const double scale = [] {
        const char *env = std::getenv("HDPAT_BENCH_SCALE");
        if (!env)
            return 1.0;
        const double v = std::atof(env);
        return v > 0.0 ? v : 1.0;
    }();
    return scale;
}

std::size_t
defaultOpsPerGpm()
{
    return static_cast<std::size_t>(12000.0 * benchScale());
}

std::vector<std::string>
validationErrors(const RunSpec &spec)
{
    std::vector<std::string> errors = spec.config.validationErrors();
    for (std::string &e : spec.policy.validationErrors())
        errors.push_back(std::move(e));

    const auto abbrs = workloadAbbrs();
    if (std::find(abbrs.begin(), abbrs.end(), spec.workload) ==
        abbrs.end()) {
        errors.push_back("workload '" + spec.workload +
                         "' is not in the Table II suite");
    }
    if (!(spec.footprintScale > 0.0)) {
        std::ostringstream oss;
        oss << "footprintScale must be positive (got "
            << spec.footprintScale << ")";
        errors.push_back(oss.str());
    }
    for (std::string &e : spec.tenancy.validationErrors())
        errors.push_back(std::move(e));
    return errors;
}

RunResult
runOnce(const RunSpec &spec)
{
    if (const std::vector<std::string> errors = validationErrors(spec);
        !errors.empty()) {
        std::string msg = "invalid RunSpec (config \"" +
                          spec.config.name + "\", policy \"" +
                          spec.policy.name + "\"):";
        for (const std::string &e : errors)
            msg += "\n  - " + e;
        hdpat_fatal(msg);
    }

    System system(spec.config, spec.policy);
    if (spec.captureIommuTrace)
        system.setCaptureIommuTrace(true);
    system.setNocFusion(spec.obs.nocFuse);
    system.setDomains(spec.obs.domains);
    // Before enableBackpressure (the IOMMU fault queue only registers
    // as a Resource once a fault handler exists) and before
    // loadWorkload (per-ASID allocation).
    if (spec.tenancy.enabled())
        system.enableTenancy(spec.tenancy);

    if (!spec.obs.traceOutPath.empty())
        system.enableTracing(spec.obs.traceCapacity,
                             spec.obs.traceSampleN);
    // After tracing: when both are on, latency rides the trace ring's
    // sampling so the Chrome trace and the anatomy agree on spans.
    if (spec.obs.latencyEnabled())
        system.enableLatency(spec.obs.latencySampleN,
                             spec.obs.latencyTopK);
    if (spec.obs.heartbeatInterval > 0) {
        system.enableHeartbeat(
            static_cast<Tick>(spec.obs.heartbeatInterval));
    } else if (spec.obs.heartbeatInterval < 0 &&
               logLevel() >= LogLevel::Info) {
        system.enableHeartbeat(kAutoHeartbeatInterval);
    }
    if (spec.obs.audit)
        system.enableAudit();
    if (spec.obs.watchdogInterval > 0)
        system.enableWatchdog(
            static_cast<Tick>(spec.obs.watchdogInterval));
    if (const std::int64_t window = spec.obs.effectiveSpatialWindow();
        window > 0) {
        // Four samples per window keep the windowed means meaningful
        // without making the sampler a hot event.
        system.enableSpatial(static_cast<Tick>(window),
                             std::max<Tick>(1, window / 4));
    }
    if (spec.obs.backpressureEnabled()) {
        system.enableBackpressure(
            spec.obs.backpressureWindow > 0
                ? static_cast<Tick>(spec.obs.backpressureWindow)
                : 0);
    }
    // Before loadWorkload so the workload_gen section is captured.
    if (spec.obs.profile)
        system.enableProfiler();

    auto workload = makeWorkload(spec.workload, spec.footprintScale);
    const std::size_t ops =
        spec.opsPerGpm ? spec.opsPerGpm : defaultOpsPerGpm();
    // Sweeps re-run the same key against many policies/configs; the
    // shared cache generates each stream once and replays it. Timed
    // under workload_gen so the profile keeps charging generation
    // (cold) or replay setup (warm) to the same section.
    std::shared_ptr<const StreamTable> streams;
    if (streamCacheEnabled()) {
        const ProfScope prof(system.profiler(),
                             ProfSection::WorkloadGen);
        streams = WorkloadStreamCache::shared().get(
            StreamKey{spec.workload, spec.footprintScale, ops,
                      spec.seed, system.numGpms(),
                      spec.config.pageShift,
                      spec.tenancy.asidCount});
    }
    system.loadWorkload(*workload, ops, spec.seed, std::move(streams));
    RunResult result = system.run();

    if (!spec.obs.spatialCsvPath.empty()) {
        const ProfScope prof(system.profiler(), ProfSection::Export);
        std::ofstream out(spec.obs.spatialCsvPath);
        hdpat_fatal_if(!out, "cannot open spatial CSV path '"
                                 << spec.obs.spatialCsvPath << "'");
        writeSpatialCsv(out, *system.spatial());
        hdpat_inform("wrote spatial CSV to "
                     << spec.obs.spatialCsvPath);
    }
    if (!spec.obs.traceOutPath.empty()) {
        const ProfScope prof(system.profiler(), ProfSection::Export);
        std::ofstream out(spec.obs.traceOutPath);
        hdpat_fatal_if(!out, "cannot open trace path '"
                                 << spec.obs.traceOutPath << "'");
        writeChromeTrace(out, *system.tracer());
        hdpat_inform("wrote Chrome trace ("
                     << system.tracer()->spansCompleted()
                     << " complete spans) to " << spec.obs.traceOutPath);
    }
    if (!spec.obs.latencyReportPath.empty()) {
        const ProfScope prof(system.profiler(), ProfSection::Export);
        std::ofstream out(spec.obs.latencyReportPath);
        hdpat_fatal_if(!out, "cannot open latency report path '"
                                 << spec.obs.latencyReportPath << "'");
        out << criticalPathReport(result.latency);
        hdpat_inform("wrote critical-path report ("
                     << result.latency.slowest.size() << " spans) to "
                     << spec.obs.latencyReportPath);
    }
    if (!spec.obs.backpressureReportPath.empty()) {
        const ProfScope prof(system.profiler(), ProfSection::Export);
        std::ofstream out(spec.obs.backpressureReportPath);
        hdpat_fatal_if(!out,
                       "cannot open backpressure report path '"
                           << spec.obs.backpressureReportPath << "'");
        out << bottleneckReport(result.backpressure);
        hdpat_inform("wrote bottleneck report ("
                     << result.backpressure.resources.size()
                     << " resources) to "
                     << spec.obs.backpressureReportPath);
    }
    // The metrics JSON goes last so its "profile" section includes the
    // other exports' wall-clock in the export section.
    if (!spec.obs.metricsJsonPath.empty()) {
        ProfileSnapshot prof_snap;
        if (system.profiler())
            prof_snap = system.profiler()->snapshot();
        const ProfScope prof(system.profiler(), ProfSection::Export);
        std::ofstream out(spec.obs.metricsJsonPath);
        hdpat_fatal_if(!out, "cannot open metrics JSON path '"
                                 << spec.obs.metricsJsonPath << "'");
        RunMetadata meta;
        meta.workload = result.workload;
        meta.policy = result.policy;
        meta.config = result.config;
        meta.seed = spec.seed;
        meta.totalTicks = result.totalTicks;
        writeMetricsJson(out, system.metrics(), meta, system.spatial(),
                         prof_snap.empty() ? nullptr : &prof_snap,
                         system.latency() ? &result.latency : nullptr,
                         system.backpressure() ? &result.backpressure
                                               : nullptr);
        hdpat_inform("wrote metrics JSON to "
                     << spec.obs.metricsJsonPath);
    }
    // Re-snapshot so callers (and BENCH_*.json baselines) see the
    // export section too.
    if (system.profiler())
        result.profile = system.profiler()->snapshot();
    return result;
}

} // namespace hdpat
