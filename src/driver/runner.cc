#include "driver/runner.hh"

#include <cstdlib>

#include "driver/system.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace hdpat
{

double
benchScale()
{
    static const double scale = [] {
        const char *env = std::getenv("HDPAT_BENCH_SCALE");
        if (!env)
            return 1.0;
        const double v = std::atof(env);
        return v > 0.0 ? v : 1.0;
    }();
    return scale;
}

std::size_t
defaultOpsPerGpm()
{
    return static_cast<std::size_t>(12000.0 * benchScale());
}

RunResult
runOnce(const RunSpec &spec)
{
    System system(spec.config, spec.policy);
    if (spec.captureIommuTrace)
        system.setCaptureIommuTrace(true);

    auto workload = makeWorkload(spec.workload, spec.footprintScale);
    const std::size_t ops =
        spec.opsPerGpm ? spec.opsPerGpm : defaultOpsPerGpm();
    system.loadWorkload(*workload, ops, spec.seed);
    return system.run();
}

} // namespace hdpat
