#include "driver/runner.hh"

#include <cstdlib>
#include <fstream>
#include <string>

#include "driver/system.hh"
#include "obs/exporters.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace hdpat
{

namespace
{

/** Heartbeat period when HDPAT_HEARTBEAT asks for "auto". */
constexpr Tick kAutoHeartbeatInterval = 2'000'000;

/** Accept "N" or "1/N"; anything unparsable keeps @p fallback. */
std::uint64_t
parseSampleSpec(const char *text, std::uint64_t fallback)
{
    if (!text || !*text)
        return fallback;
    std::string s(text);
    const auto slash = s.find('/');
    if (slash != std::string::npos)
        s = s.substr(slash + 1);
    const long long v = std::atoll(s.c_str());
    return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

} // namespace

ObsOptions
obsOptionsFromEnv()
{
    ObsOptions obs;
    if (const char *env = std::getenv("HDPAT_METRICS_JSON"))
        obs.metricsJsonPath = env;
    if (const char *env = std::getenv("HDPAT_TRACE_OUT"))
        obs.traceOutPath = env;
    obs.traceSampleN = parseSampleSpec(
        std::getenv("HDPAT_TRACE_SAMPLE"), obs.traceSampleN);
    if (const char *env = std::getenv("HDPAT_HEARTBEAT"))
        obs.heartbeatInterval = std::atoll(env);
    return obs;
}

double
benchScale()
{
    static const double scale = [] {
        const char *env = std::getenv("HDPAT_BENCH_SCALE");
        if (!env)
            return 1.0;
        const double v = std::atof(env);
        return v > 0.0 ? v : 1.0;
    }();
    return scale;
}

std::size_t
defaultOpsPerGpm()
{
    return static_cast<std::size_t>(12000.0 * benchScale());
}

RunResult
runOnce(const RunSpec &spec)
{
    System system(spec.config, spec.policy);
    if (spec.captureIommuTrace)
        system.setCaptureIommuTrace(true);

    if (!spec.obs.traceOutPath.empty())
        system.enableTracing(spec.obs.traceCapacity,
                             spec.obs.traceSampleN);
    if (spec.obs.heartbeatInterval > 0) {
        system.enableHeartbeat(
            static_cast<Tick>(spec.obs.heartbeatInterval));
    } else if (spec.obs.heartbeatInterval < 0 &&
               logLevel() >= LogLevel::Info) {
        system.enableHeartbeat(kAutoHeartbeatInterval);
    }

    auto workload = makeWorkload(spec.workload, spec.footprintScale);
    const std::size_t ops =
        spec.opsPerGpm ? spec.opsPerGpm : defaultOpsPerGpm();
    system.loadWorkload(*workload, ops, spec.seed);
    RunResult result = system.run();

    if (!spec.obs.metricsJsonPath.empty()) {
        std::ofstream out(spec.obs.metricsJsonPath);
        hdpat_fatal_if(!out, "cannot open metrics JSON path '"
                                 << spec.obs.metricsJsonPath << "'");
        RunMetadata meta;
        meta.workload = result.workload;
        meta.policy = result.policy;
        meta.config = result.config;
        meta.seed = spec.seed;
        meta.totalTicks = result.totalTicks;
        writeMetricsJson(out, system.metrics(), meta);
        hdpat_inform("wrote metrics JSON to "
                     << spec.obs.metricsJsonPath);
    }
    if (!spec.obs.traceOutPath.empty()) {
        std::ofstream out(spec.obs.traceOutPath);
        hdpat_fatal_if(!out, "cannot open trace path '"
                                 << spec.obs.traceOutPath << "'");
        writeChromeTrace(out, *system.tracer());
        hdpat_inform("wrote Chrome trace ("
                     << system.tracer()->spansCompleted()
                     << " complete spans) to " << spec.obs.traceOutPath);
    }
    return result;
}

} // namespace hdpat
