/**
 * @file
 * Analytical area/power model for the IOMMU-side structures (§V-F).
 *
 * The paper reports OpenRoad 7 nm synthesis results for the 1024-entry
 * redirection table (0.034 mm^2, 0.16 W). We substitute an analytical
 * SRAM model whose per-bit constants are calibrated to that published
 * point, then use it to size the equal-area TLB comparison (Fig 19)
 * and the CPU-die overhead percentages.
 */

#ifndef HDPAT_DRIVER_AREA_MODEL_HH
#define HDPAT_DRIVER_AREA_MODEL_HH

#include <cstddef>

namespace hdpat
{

/** Area/power estimate for one SRAM-based lookup structure. */
struct SramEstimate
{
    double areaMm2 = 0.0;
    double powerW = 0.0;
};

/** Calibrated 7 nm constants. */
struct AreaModelParams
{
    /** mm^2 per storage bit, including peripheral overhead. */
    double mm2PerBit = 0.034 / (1024.0 * 60.0);
    /** Watts per storage bit at the IOMMU's access rate. */
    double wattsPerBit = 0.16 / (1024.0 * 60.0);
};

/**
 * Bits in one redirection-table entry: process ID (16) + VPN tag (36)
 * + auxiliary GPM id (8). No PFN, no permissions metadata (§IV-F).
 */
constexpr std::size_t kRedirectionEntryBits = 60;

/**
 * Bits in a conventional IOMMU TLB entry: PID + VPN tag + PFN (36) +
 * permissions/state (12) + MSHR amortisation -- roughly twice the RT
 * entry, which is why equal area holds half the entries (Fig 19).
 */
constexpr std::size_t kTlbEntryBits = 120;

/** Estimate a structure of @p entries x @p bits_per_entry. */
SramEstimate estimateSram(std::size_t entries,
                          std::size_t bits_per_entry,
                          const AreaModelParams &params = {});

/** Reference CPU die (AMD Ryzen 9 7900X): area and TDP. */
constexpr double kCpuDieAreaMm2 = 141.2;
constexpr double kCpuTdpW = 170.0;

} // namespace hdpat

#endif // HDPAT_DRIVER_AREA_MODEL_HH
