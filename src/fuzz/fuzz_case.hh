/**
 * @file
 * FuzzCase: one point in the config × policy × workload space the
 * fuzzer explores. Serialisable to the key=value `.fuzzcase` corpus
 * format, convertible to a RunSpec, and printable as a paste-ready
 * C++ literal for bug reports.
 */

#ifndef HDPAT_FUZZ_FUZZ_CASE_HH
#define HDPAT_FUZZ_FUZZ_CASE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "driver/runner.hh"

namespace hdpat
{

/**
 * Every knob the fuzzer turns, with the Table I / paper defaults.
 * Keep the field list in sync with forEachNumericField() in
 * fuzz_case.cc -- that single table drives serialise, parse, the
 * C++-literal printer, and the shrinker.
 */
struct FuzzCase
{
    // ---- Topology / SystemConfig ------------------------------------
    std::int64_t meshWidth = 7;
    std::int64_t meshHeight = 7;
    std::int64_t pageShift = 12;
    std::int64_t issueWidth = 4;
    std::int64_t maxOutstandingOps = 512;
    std::int64_t l1Sets = 1, l1Ways = 32, l1Mshrs = 4;
    std::int64_t l2Sets = 64, l2Ways = 32, l2Mshrs = 32;
    std::int64_t llSets = 64, llWays = 16, llMshrs = 0;
    std::int64_t cuckooCapacity = 1 << 17;
    std::int64_t gmmuWalkers = 8;
    std::int64_t iommuWalkers = 16;
    std::int64_t iommuPwQueueCapacity = 64;
    std::int64_t iommuIngressPerCycle = 2;
    std::int64_t iommuTlbMshrs = 8;

    // ---- TranslationPolicy ------------------------------------------
    /** PeerCachingMode as an integer (0..4); out-of-range is a bug
     *  the parser rejects, not a run the harness starts. */
    std::int64_t peerMode = 0;
    std::int64_t redirectionTable = 0;
    std::int64_t iommuTlbInsteadOfRt = 0;
    std::int64_t prefetch = 0;
    std::int64_t prefetchDegree = 4;
    std::int64_t pwQueueRevisit = 0;
    std::int64_t neighborTlbProbe = 0;
    /** IommuWalkMode as an integer (0..1). */
    std::int64_t walkMode = 0;
    std::int64_t concentricLayers = 2;
    std::int64_t numClusters = 4;
    std::int64_t rotation = 1;
    std::int64_t concurrentProbes = 1;

    // ---- Workload ----------------------------------------------------
    std::string workload = "SPMV";
    std::int64_t opsPerGpm = 200;
    std::int64_t seed = 0x5eed;

    // ---- Harness -----------------------------------------------------
    /** Run the case under the legacy heap event queue (HDPAT_EVENTQ)
     *  instead of the calendar queue, so the differential oracles
     *  cover both orderings of the same simulation. */
    std::int64_t heapEventQueue = 0;

    /** Run the case with NoC delivery fusion on (the default shipping
     *  configuration) or off (the per-companion-event shape). The
     *  harness additionally re-runs every case with the flag flipped
     *  and requires identical counts, so both values of this field
     *  still cross-check fused against per-hop delivery. */
    std::int64_t nocFuse = 1;

    /** Domain-parallel shard count for the case's runs (1 = serial,
     *  the corpus-compatible default). The harness re-runs the case
     *  with the count flipped (serial <-> sharded) and requires
     *  identical counts and census, so either starting value
     *  cross-checks the conservative-parallel scheduler against the
     *  serial engine. */
    std::int64_t domains = 1;

    // ---- Tenancy -----------------------------------------------------
    /** Address spaces multiplexed onto the wafer (1 = single-tenant,
     *  which keeps the case bitwise identical to the pre-tenancy
     *  simulator). */
    std::int64_t asidCount = 1;
    /** Poisson context-switch arrivals per million ticks (0 = never). */
    std::int64_t switchRatePerMTicks = 0;
    /** Poisson page unmap+shootdown arrivals per million ticks. */
    std::int64_t churnRatePerMTicks = 0;

    /** Build the RunSpec this case describes (audit left off; the
     *  harness decides observability). */
    RunSpec toSpec() const;

    /** key=value lines, one field per line, fixed order. */
    std::string serialize() const;

    /** Paste-ready C++ that reconstructs the case (only fields that
     *  differ from the defaults are emitted). */
    std::string toCppLiteral() const;

    bool operator==(const FuzzCase &other) const;
};

/** Numeric field names, in serialisation order (for the shrinker). */
const std::vector<std::string> &fuzzCaseFieldNames();

/** Pointer to the named numeric field, nullptr when unknown. */
std::int64_t *fuzzCaseField(FuzzCase &c, const std::string &name);

/** Value of the named numeric field (0 when unknown). */
std::int64_t fuzzCaseFieldValue(const FuzzCase &c,
                                const std::string &name);

/**
 * Parse the serialize() format. Unknown keys, malformed numbers, and
 * duplicate keys are errors: a corpus file that drifts from the field
 * table should fail loudly, not half-apply.
 * @param error Set to a one-line reason on failure.
 */
std::optional<FuzzCase> parseFuzzCase(const std::string &text,
                                      std::string *error = nullptr);

/** Load and parse one `.fuzzcase` file. */
std::optional<FuzzCase> loadFuzzCase(const std::string &path,
                                     std::string *error = nullptr);

} // namespace hdpat

#endif // HDPAT_FUZZ_FUZZ_CASE_HH
