/**
 * @file
 * Greedy fixed-point shrinking of a failing FuzzCase: repeatedly try
 * to move fields back to their defaults (then toward 1 / half the
 * value), keeping a change only when the case still fails with the
 * same outcome kind. The result is the minimal reproducer that goes
 * into the regression corpus.
 */

#ifndef HDPAT_FUZZ_SHRINKER_HH
#define HDPAT_FUZZ_SHRINKER_HH

#include <cstddef>
#include <functional>

#include "fuzz/fuzz_case.hh"

namespace hdpat
{

/**
 * @param c The failing case.
 * @param stillFails Re-runs a candidate and reports whether it fails
 *        the same way (same FuzzOutcome::Kind). Called once per
 *        candidate; budget the timeout accordingly.
 * @param steps Out (optional): number of accepted simplifications.
 * @return The simplified case (== c when nothing could be removed).
 */
FuzzCase shrinkFuzzCase(FuzzCase c,
                        const std::function<bool(const FuzzCase &)>
                            &stillFails,
                        std::size_t *steps = nullptr);

} // namespace hdpat

#endif // HDPAT_FUZZ_SHRINKER_HH
