#include "fuzz/fuzz_case.hh"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace hdpat
{

namespace
{

/**
 * The single field table: every numeric knob by name, in the order it
 * serialises. serialize(), parseFuzzCase(), toCppLiteral(), and the
 * shrinker all walk this list, so adding a field here is the whole
 * change.
 */
template <typename Case, typename F>
void
forEachNumericField(Case &c, F &&f)
{
    f("meshWidth", c.meshWidth);
    f("meshHeight", c.meshHeight);
    f("pageShift", c.pageShift);
    f("issueWidth", c.issueWidth);
    f("maxOutstandingOps", c.maxOutstandingOps);
    f("l1Sets", c.l1Sets);
    f("l1Ways", c.l1Ways);
    f("l1Mshrs", c.l1Mshrs);
    f("l2Sets", c.l2Sets);
    f("l2Ways", c.l2Ways);
    f("l2Mshrs", c.l2Mshrs);
    f("llSets", c.llSets);
    f("llWays", c.llWays);
    f("llMshrs", c.llMshrs);
    f("cuckooCapacity", c.cuckooCapacity);
    f("gmmuWalkers", c.gmmuWalkers);
    f("iommuWalkers", c.iommuWalkers);
    f("iommuPwQueueCapacity", c.iommuPwQueueCapacity);
    f("iommuIngressPerCycle", c.iommuIngressPerCycle);
    f("iommuTlbMshrs", c.iommuTlbMshrs);
    f("peerMode", c.peerMode);
    f("redirectionTable", c.redirectionTable);
    f("iommuTlbInsteadOfRt", c.iommuTlbInsteadOfRt);
    f("prefetch", c.prefetch);
    f("prefetchDegree", c.prefetchDegree);
    f("pwQueueRevisit", c.pwQueueRevisit);
    f("neighborTlbProbe", c.neighborTlbProbe);
    f("walkMode", c.walkMode);
    f("concentricLayers", c.concentricLayers);
    f("numClusters", c.numClusters);
    f("rotation", c.rotation);
    f("concurrentProbes", c.concurrentProbes);
    f("opsPerGpm", c.opsPerGpm);
    f("seed", c.seed);
    f("heapEventQueue", c.heapEventQueue);
    f("nocFuse", c.nocFuse);
    // Tenancy fields come last: corpus files predating them parse
    // unchanged (absent keys keep the single-tenant defaults).
    f("asidCount", c.asidCount);
    f("switchRatePerMTicks", c.switchRatePerMTicks);
    f("churnRatePerMTicks", c.churnRatePerMTicks);
    // Appended after tenancy for the same corpus-compatibility reason
    // (absent key = serial run, the pre-domain behaviour).
    f("domains", c.domains);
}

/** Negative sampled values target signed config fields; for unsigned
 *  destinations clamp to 0 (the degenerate value validation rejects)
 *  instead of letting the cast wrap to a huge allocation. */
std::size_t
toSize(std::int64_t v)
{
    return v < 0 ? 0 : static_cast<std::size_t>(v);
}

} // namespace

const std::vector<std::string> &
fuzzCaseFieldNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        FuzzCase c;
        forEachNumericField(c,
                            [&out](const char *name, std::int64_t &) {
                                out.emplace_back(name);
                            });
        return out;
    }();
    return names;
}

std::int64_t *
fuzzCaseField(FuzzCase &c, const std::string &name)
{
    std::int64_t *found = nullptr;
    forEachNumericField(c,
                        [&](const char *fname, std::int64_t &field) {
                            if (name == fname)
                                found = &field;
                        });
    return found;
}

std::int64_t
fuzzCaseFieldValue(const FuzzCase &c, const std::string &name)
{
    std::int64_t found = 0;
    forEachNumericField(c, [&](const char *fname, std::int64_t field) {
        if (name == fname)
            found = field;
    });
    return found;
}

RunSpec
FuzzCase::toSpec() const
{
    SystemConfig cfg = SystemConfig::mi100();
    cfg.name = "fuzz";
    cfg.meshWidth = static_cast<int>(meshWidth);
    cfg.meshHeight = static_cast<int>(meshHeight);
    cfg.pageShift = static_cast<unsigned>(toSize(pageShift));
    cfg.issueWidth = static_cast<int>(issueWidth);
    cfg.maxOutstandingOps = static_cast<int>(maxOutstandingOps);
    cfg.l1Tlb.sets = toSize(l1Sets);
    cfg.l1Tlb.ways = toSize(l1Ways);
    cfg.l1Tlb.mshrs = toSize(l1Mshrs);
    cfg.l2Tlb.sets = toSize(l2Sets);
    cfg.l2Tlb.ways = toSize(l2Ways);
    cfg.l2Tlb.mshrs = toSize(l2Mshrs);
    cfg.lastLevelTlb.sets = toSize(llSets);
    cfg.lastLevelTlb.ways = toSize(llWays);
    cfg.lastLevelTlb.mshrs = toSize(llMshrs);
    cfg.cuckooCapacity = toSize(cuckooCapacity);
    cfg.gmmuWalkers = toSize(gmmuWalkers);
    cfg.iommuWalkers = toSize(iommuWalkers);
    cfg.iommuPwQueueCapacity = toSize(iommuPwQueueCapacity);
    cfg.iommuIngressPerCycle = static_cast<int>(iommuIngressPerCycle);
    cfg.iommuTlbMshrs = toSize(iommuTlbMshrs);

    TranslationPolicy pol;
    pol.name = "fuzz-policy";
    pol.peerMode = static_cast<PeerCachingMode>(peerMode);
    pol.redirectionTable = redirectionTable != 0;
    pol.iommuTlbInsteadOfRt = iommuTlbInsteadOfRt != 0;
    pol.prefetch = prefetch != 0;
    pol.prefetchDegree = static_cast<int>(prefetchDegree);
    pol.pwQueueRevisit = pwQueueRevisit != 0;
    pol.neighborTlbProbe = neighborTlbProbe != 0;
    pol.walkMode = static_cast<IommuWalkMode>(walkMode);
    pol.concentricLayers = static_cast<int>(concentricLayers);
    pol.numClusters = static_cast<int>(numClusters);
    pol.rotation = rotation != 0;
    pol.concurrentProbes = concurrentProbes != 0;

    RunSpec spec;
    spec.config = cfg;
    spec.policy = pol;
    spec.workload = workload;
    spec.opsPerGpm = toSize(opsPerGpm);
    spec.seed = static_cast<std::uint64_t>(seed);
    // Reproducibility: the case fully determines the run. Ignore the
    // HDPAT_* environment and keep the run quiet; the harness turns
    // on exactly the observability it needs.
    spec.obs = ObsOptions{};
    spec.obs.heartbeatInterval = 0;
    spec.obs.nocFuse = nocFuse != 0;
    // Negative or zero counts mean "serial"; System::effectiveDomains
    // clamps oversized counts to the mesh width.
    spec.obs.domains =
        domains < 1 ? 1u : static_cast<unsigned>(domains);
    spec.tenancy = TenancySpec{};
    spec.tenancy.asidCount = static_cast<std::uint32_t>(toSize(asidCount));
    spec.tenancy.switchRatePerMTicks =
        static_cast<std::uint64_t>(toSize(switchRatePerMTicks));
    spec.tenancy.churnRatePerMTicks =
        static_cast<std::uint64_t>(toSize(churnRatePerMTicks));
    return spec;
}

std::string
FuzzCase::serialize() const
{
    std::ostringstream os;
    forEachNumericField(*this, [&os](const char *name, std::int64_t v) {
        os << name << "=" << v << "\n";
    });
    os << "workload=" << workload << "\n";
    return os.str();
}

std::string
FuzzCase::toCppLiteral() const
{
    const FuzzCase defaults;
    std::ostringstream os;
    os << "FuzzCase c;\n";
    forEachNumericField(*this, [&](const char *name, std::int64_t v) {
        std::int64_t def = 0;
        forEachNumericField(defaults,
                            [&](const char *dname, std::int64_t dv) {
                                if (std::string(dname) == name)
                                    def = dv;
                            });
        if (v != def)
            os << "c." << name << " = " << v << ";\n";
    });
    if (workload != defaults.workload)
        os << "c.workload = \"" << workload << "\";\n";
    return os.str();
}

bool
FuzzCase::operator==(const FuzzCase &other) const
{
    return serialize() == other.serialize();
}

std::optional<FuzzCase>
parseFuzzCase(const std::string &text, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };

    std::map<std::string, std::string> kv;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Trim trailing CR (corpus files may be checked out with CRLF).
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail("line " + std::to_string(lineno) +
                        ": expected key=value, got \"" + line + "\"");
        const std::string key = line.substr(0, eq);
        if (kv.count(key))
            return fail("duplicate key \"" + key + "\"");
        kv[key] = line.substr(eq + 1);
    }

    FuzzCase c;
    std::string bad;
    forEachNumericField(c, [&](const char *name, std::int64_t &field) {
        const auto it = kv.find(name);
        if (it == kv.end())
            return; // Absent keys keep the default.
        const std::string &value = it->second;
        char *end = nullptr;
        const long long parsed = std::strtoll(value.c_str(), &end, 0);
        if (end == value.c_str() || *end != '\0') {
            if (bad.empty())
                bad = std::string("key \"") + name +
                      "\" has a non-numeric value \"" + value + "\"";
            return;
        }
        field = parsed;
        kv.erase(it);
    });
    if (!bad.empty())
        return fail(bad);

    if (const auto it = kv.find("workload"); it != kv.end()) {
        c.workload = it->second;
        kv.erase(it);
    }
    if (!kv.empty())
        return fail("unknown key \"" + kv.begin()->first +
                    "\" (field table and corpus out of sync?)");
    return c;
}

std::optional<FuzzCase>
loadFuzzCase(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in.good()) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseFuzzCase(buf.str(), error);
}

} // namespace hdpat
