#include "fuzz/shrinker.hh"

#include <vector>

namespace hdpat
{

FuzzCase
shrinkFuzzCase(FuzzCase c,
               const std::function<bool(const FuzzCase &)> &stillFails,
               std::size_t *steps)
{
    const FuzzCase defaults;
    std::size_t accepted = 0;

    const auto tryCandidate = [&](FuzzCase candidate) {
        if (candidate == c)
            return false;
        if (!stillFails(candidate))
            return false;
        c = candidate;
        ++accepted;
        return true;
    };

    bool progressed = true;
    while (progressed) {
        progressed = false;

        // Workload back to the default first: it is the coarsest knob
        // and removing it exonerates the access pattern entirely.
        if (c.workload != defaults.workload) {
            FuzzCase candidate = c;
            candidate.workload = defaults.workload;
            progressed |= tryCandidate(candidate);
        }

        for (const std::string &name : fuzzCaseFieldNames()) {
            const std::int64_t current = fuzzCaseFieldValue(c, name);
            const std::int64_t def = fuzzCaseFieldValue(defaults, name);
            if (current == def)
                continue;

            // Candidates from most to least simplifying: the default,
            // the unit value, then binary search toward the default.
            std::vector<std::int64_t> candidates{def};
            if (current != 1 && def != 1)
                candidates.push_back(1);
            const std::int64_t mid = def + (current - def) / 2;
            if (mid != current && mid != def)
                candidates.push_back(mid);

            for (const std::int64_t value : candidates) {
                FuzzCase candidate = c;
                *fuzzCaseField(candidate, name) = value;
                if (tryCandidate(candidate)) {
                    progressed = true;
                    break;
                }
            }
        }
    }

    if (steps)
        *steps = accepted;
    return c;
}

} // namespace hdpat
