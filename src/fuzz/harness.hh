/**
 * @file
 * Fork-isolated execution of one FuzzCase with eight oracles:
 *
 * 1. Validity prediction: validationErrors(spec) empty must mean the
 *    run completes; non-empty must mean it fail-fasts. Divergence in
 *    either direction is a finding.
 * 2. Conservation + PPN reference: the run executes under the
 *    auditor (with the page-table reference translator installed) and
 *    the stall watchdog; any violation panics the child.
 * 3. runMany differential: the same batch executed serially, and
 *    reordered on multiple workers, must agree on translation counts,
 *    page-walk counts, and the per-(tile, VPN) retire-census digest.
 * 4. NoC fusion differential: fused and per-hop delivery are the same
 *    schedule, so every count (totalTicks included) must match with
 *    the flag flipped.
 * 5. Latency attribution: re-running with per-stage attribution on
 *    (hash-sampled) must leave every count unchanged, and each
 *    sampled span's stage durations must sum to its end-to-end
 *    latency (conservation by construction, checked anyway).
 * 6. Backpressure + Little's law: re-running with saturation
 *    accounting on must leave every count unchanged, and the
 *    dual-path occupancy-integral identity (obs/backpressure.hh)
 *    must hold for every registered resource.
 * 7. Tenancy staleness: multi-tenant cases (asidCount/switchRate/
 *    churnRate sampled per case) run under the staleness oracle the
 *    audited run carries -- install-time revalidation, exactly-once
 *    shootdown acks, and the end-of-run stale-resident sweep all
 *    panic the child on violation -- plus the harness's own
 *    conservation checks: rounds opened == rounds closed and IOMMU
 *    faults enqueued == faults serviced.
 * 8. Domain-parallel differential: the audited case re-runs with the
 *    shard count flipped (serial <-> K=2, or whatever the case
 *    sampled), and every count -- totalTicks and the retire-census
 *    hash included -- must match, proving the conservative-parallel
 *    scheduler replays the exact serial interleave.
 *
 * The child is a fresh fork per case, so a crash, fatal, hang, or
 * abort in the simulator cannot take the fuzzer down with it.
 */

#ifndef HDPAT_FUZZ_HARNESS_HH
#define HDPAT_FUZZ_HARNESS_HH

#include <string>

#include "fuzz/fuzz_case.hh"

namespace hdpat
{

/** What one isolated case execution produced. */
struct FuzzOutcome
{
    /** Failure taxonomy; the shrinker preserves the kind. */
    enum class Kind
    {
        Pass,            ///< All oracles held.
        UnexpectedFatal, ///< Predicted valid, but the run fataled.
        UnexpectedClean, ///< Predicted invalid, but the run completed.
        OracleViolation, ///< Audit/PPN/differential oracle failed.
        Crash,           ///< Abort or signal (simulator panic).
        Hang,            ///< Exceeded the per-case timeout.
    };

    Kind kind = Kind::Pass;
    /** One-paragraph reason, including the child's stderr tail. */
    std::string reason;

    bool ok() const { return kind == Kind::Pass; }
};

const char *fuzzOutcomeKindName(FuzzOutcome::Kind kind);

/**
 * Run @p c in a forked child and judge it against all oracles.
 * @param timeout_seconds Wall-clock budget for the child (covers the
 *        audited run plus the differential re-runs).
 */
FuzzOutcome runFuzzCase(const FuzzCase &c, unsigned timeout_seconds = 60);

} // namespace hdpat

#endif // HDPAT_FUZZ_HARNESS_HH
