/**
 * @file
 * Seeded random sampling over the FuzzCase space: mesh shapes from
 * 1x1 to 12x12 (odd, even, and rectangular), page shifts 12..21 with
 * occasional out-of-range probes, deliberately degenerate TLB
 * geometry (sets/ways/mshrs down to 0 and 1), every peer-caching
 * mode, and the full Table II workload suite.
 *
 * The sampler intentionally produces *invalid* cases at a known rate:
 * the harness checks the validity predicate in both directions, so a
 * config that validates clean but crashes -- or validates dirty but
 * runs fine -- is a finding either way.
 */

#ifndef HDPAT_FUZZ_SAMPLER_HH
#define HDPAT_FUZZ_SAMPLER_HH

#include "fuzz/fuzz_case.hh"
#include "sim/rng.hh"

namespace hdpat
{

/** Draw one case. Deterministic given the Rng state. */
FuzzCase sampleFuzzCase(Rng &rng);

} // namespace hdpat

#endif // HDPAT_FUZZ_SAMPLER_HH
