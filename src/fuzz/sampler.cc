#include "fuzz/sampler.hh"

#include <initializer_list>

#include "workloads/suite.hh"

namespace hdpat
{

namespace
{

/** Pick one value from a short menu, uniformly. */
std::int64_t
pick(Rng &rng, std::initializer_list<std::int64_t> menu)
{
    const std::uint64_t i = rng.uniformInt(menu.size());
    return *(menu.begin() + i);
}

} // namespace

FuzzCase
sampleFuzzCase(Rng &rng)
{
    FuzzCase c;

    // Mesh: the full 1x1..12x12 grid, so odd (7x7), even (8x8), and
    // rectangular (7x12) centers -- and the invalid single tile --
    // all come up.
    c.meshWidth = static_cast<std::int64_t>(rng.uniformRange(1, 12));
    c.meshHeight = static_cast<std::int64_t>(rng.uniformRange(1, 12));

    // Page shift: mostly the supported 12..21 band, with a 10% probe
    // of the surrounding range to exercise both validation bounds.
    c.pageShift = rng.chance(0.1)
                      ? static_cast<std::int64_t>(rng.uniformRange(8, 34))
                      : static_cast<std::int64_t>(rng.uniformRange(12, 21));

    c.issueWidth = pick(rng, {0, 1, 1, 2, 4, 4, 8});
    c.maxOutstandingOps = pick(rng, {0, 1, 4, 64, 512, 512});

    // TLB geometry down to the degenerate corners. Zeroes are
    // (predictably) invalid; 1-set/1-way/1-mshr are the interesting
    // legal extremes.
    c.l1Sets = pick(rng, {0, 1, 1, 2, 4});
    c.l1Ways = pick(rng, {0, 1, 2, 8, 32, 32});
    c.l1Mshrs = pick(rng, {0, 1, 2, 4, 4});
    c.l2Sets = pick(rng, {0, 1, 2, 16, 64, 64});
    c.l2Ways = pick(rng, {0, 1, 2, 8, 32, 32});
    c.l2Mshrs = pick(rng, {0, 1, 2, 8, 32, 32});
    c.llSets = pick(rng, {0, 1, 2, 16, 64, 64});
    c.llWays = pick(rng, {0, 1, 2, 8, 16, 16});
    // llMshrs = 0 is the Table I default (peer fills bypass MSHRs).
    c.llMshrs = pick(rng, {0, 0, 1, 4, 16});
    c.cuckooCapacity = pick(rng, {0, 1, 4, 64, 1024, 1 << 17, 1 << 17});

    c.gmmuWalkers = pick(rng, {0, 1, 2, 8, 8});
    c.iommuWalkers = pick(rng, {0, 1, 2, 16, 16});
    c.iommuPwQueueCapacity = pick(rng, {0, 1, 4, 64, 64});
    c.iommuIngressPerCycle = pick(rng, {0, 1, 2, 2, 4});
    c.iommuTlbMshrs = pick(rng, {0, 1, 8, 8});

    // Policy: every peer mode, plus a rare out-of-range enum value
    // that must be caught by validation rather than fall through
    // every switch.
    c.peerMode = rng.chance(0.02)
                     ? 5
                     : static_cast<std::int64_t>(rng.uniformInt(5));
    c.redirectionTable = rng.chance(0.5);
    c.iommuTlbInsteadOfRt = rng.chance(0.25);
    c.prefetch = rng.chance(0.5);
    c.prefetchDegree = pick(rng, {0, 1, 2, 4, 4, 8});
    c.pwQueueRevisit = rng.chance(0.5);
    c.neighborTlbProbe = rng.chance(0.25);
    c.walkMode = rng.chance(0.2) ? 1 : 0;
    c.concentricLayers = pick(rng, {0, 1, 2, 2, 3, 6});
    c.numClusters = pick(rng, {0, 1, 2, 4, 4, 8});
    c.rotation = rng.chance(0.5);
    c.concurrentProbes = rng.chance(0.5);

    // Workload: the Table II suite, with a 3% bogus abbreviation to
    // keep the workload-name check honest.
    const auto &abbrs = workloadAbbrs();
    c.workload = rng.chance(0.03)
                     ? "BOGUS"
                     : abbrs[rng.uniformInt(abbrs.size())];

    // Short runs: the oracles care about correctness, not steady
    // state, and the differential re-runs every case three times.
    c.opsPerGpm = static_cast<std::int64_t>(rng.uniformRange(60, 320));
    c.seed = static_cast<std::int64_t>(rng.next() & 0x7fffffffffffffffull);

    // Half the cases run on the legacy heap event queue, so the
    // retire-census and runMany differentials exercise both queue
    // implementations across the whole sampled config space.
    c.heapEventQueue = rng.chance(0.5);

    // And half run with NoC delivery fusion off, so the whole sampled
    // space exercises the per-companion-event delivery shape too (the
    // harness flips the flag again for the fusion differential, so
    // either starting value cross-checks both shapes).
    c.nocFuse = rng.chance(0.5);

    // Domain parallelism: mostly serial (the corpus-compatible
    // default), with a sharded minority so the whole sampled config
    // space -- degenerate meshes included -- exercises the
    // conservative-parallel scheduler. Oversized counts probe the
    // clamp-to-width fallback.
    c.domains = pick(rng, {1, 1, 1, 2, 2, 4, 16});

    // Tenancy: mostly single-tenant (the identity-preserving default)
    // with a multi-tenant minority that exercises context switches,
    // churn shootdowns, and the staleness oracle. A rare 0 probes the
    // asidCount validation bound.
    c.asidCount = pick(rng, {0, 1, 1, 1, 2, 2, 3, 4});
    if (c.asidCount > 1) {
        c.switchRatePerMTicks = pick(rng, {0, 50, 200, 1000});
        c.churnRatePerMTicks = pick(rng, {0, 20, 100, 500});
    } else {
        // Churn without multiple tenants is legal: one tenant's pages
        // still get unmapped and shot down.
        c.churnRatePerMTicks = pick(rng, {0, 0, 0, 100});
    }

    return c;
}

} // namespace hdpat
