#include "fuzz/harness.hh"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "driver/parallel.hh"
#include "driver/runner.hh"

namespace hdpat
{

namespace
{

/** Child exit code for an oracle violation (distinct from the
 *  hdpat_fatal convention of 1). */
constexpr int kOracleExit = 77;

/** Ticks of zero forward progress before the watchdog panics. Far
 *  above anything a legal short run needs, so it only fires on a
 *  genuine stall; wall-clock hangs are caught by alarm(). */
constexpr std::int64_t kWatchdogTicks = 50'000'000;

/**
 * Compare the count-conservation surface of two results. Timing
 * equality (totalTicks) is deliberately included: runOnce is
 * documented deterministic, so any drift across orderings is a
 * scheduling bug, not noise.
 */
bool
sameCounts(const RunResult &a, const RunResult &b, const char *what,
           std::string *why)
{
    const auto differ = [&](const char *field, std::uint64_t x,
                            std::uint64_t y) {
        if (x == y)
            return false;
        std::ostringstream os;
        os << what << ": " << field << " " << x << " != " << y;
        *why = os.str();
        return true;
    };
    return !(differ("totalTicks", a.totalTicks, b.totalTicks) ||
             differ("opsTotal", a.opsTotal, b.opsTotal) ||
             differ("localWalks", a.localWalks, b.localWalks) ||
             differ("iommu.walksStarted", a.iommu.walksStarted,
                    b.iommu.walksStarted) ||
             differ("iommu.walksCompleted", a.iommu.walksCompleted,
                    b.iommu.walksCompleted) ||
             differ("noc.packets", a.noc.packets, b.noc.packets) ||
             differ("auditIssued", a.auditIssued, b.auditIssued) ||
             differ("auditRetired", a.auditRetired, b.auditRetired) ||
             differ("auditPfnChecks", a.auditPfnChecks,
                    b.auditPfnChecks) ||
             differ("auditRetireCensusHash", a.auditRetireCensusHash,
                    b.auditRetireCensusHash));
}

/**
 * The child's whole life. Exits 0 on pass, 1 via hdpat_fatal when the
 * spec is invalid, kOracleExit on a differential violation; audit
 * violations panic (abort) inside System::run.
 */
[[noreturn]] void
childRun(const RunSpec &spec, bool heap_event_queue)
{
    // The event-queue choice is process-wide (every Engine in this
    // child reads HDPAT_EVENTQ at construction), so the three oracle
    // runs below all use the selected implementation -- and their
    // counts must match the corpus and census expectations that were
    // recorded under the other one.
    setenv("HDPAT_EVENTQ", heap_event_queue ? "heap" : "calendar", 1);

    // Oracle 2: one audited, watchdogged run. The auditor carries the
    // PPN reference translator, so every installed translation is
    // checked against the page table no matter which policy path
    // resolved it.
    RunSpec audited = spec;
    audited.obs.audit = true;
    audited.obs.watchdogInterval = kWatchdogTicks;
    const RunResult single = runOnce(audited);

    // Oracle 3: the same case inside runMany batches -- reordered and
    // on different worker counts -- must conserve every count. The
    // sibling spec only differs in seed so the batch is heterogeneous.
    RunSpec sibling = audited;
    sibling.seed ^= 0x517cc1b727220a95ull;
    const std::vector<RunResult> serial = runMany({audited, sibling}, 1);
    const std::vector<RunResult> threaded =
        runMany({sibling, audited}, 3);
    std::string why;
    if (serial.size() != 2 || threaded.size() != 2) {
        std::fprintf(stderr, "differential: runMany dropped results\n");
        _exit(kOracleExit);
    }
    if (!sameCounts(single, serial[0], "runOnce vs runMany[jobs=1]",
                    &why) ||
        !sameCounts(serial[0], threaded[1],
                    "jobs=1 vs reordered jobs=3 (case)", &why) ||
        !sameCounts(serial[1], threaded[0],
                    "jobs=1 vs reordered jobs=3 (sibling)", &why)) {
        std::fprintf(stderr, "differential mismatch: %s\n",
                     why.c_str());
        _exit(kOracleExit);
    }

    // Oracle 4: NoC delivery fusion must be a pure scheduling
    // transform. Re-run the audited case with the fusion flag flipped:
    // every simulated count -- including totalTicks and the retire
    // census hash -- must match, whichever shape the case sampled.
    RunSpec flipped = audited;
    flipped.obs.nocFuse = !audited.obs.nocFuse;
    const RunResult refused = runOnce(flipped);
    if (!sameCounts(single, refused, "fused vs per-hop delivery",
                    &why)) {
        std::fprintf(stderr, "differential mismatch: %s\n",
                     why.c_str());
        _exit(kOracleExit);
    }

    // Oracle 5: latency attribution must be a pure observer. A run
    // with per-stage attribution on (sampled, to exercise the hash
    // path) must conserve every count, and every sampled span's stage
    // durations must sum to its end-to-end latency.
    RunSpec attributed = audited;
    attributed.obs.latency = true;
    attributed.obs.latencySampleN = 3;
    const RunResult traced = runOnce(attributed);
    if (!sameCounts(single, traced, "plain vs latency-attributed",
                    &why)) {
        std::fprintf(stderr, "differential mismatch: %s\n",
                     why.c_str());
        _exit(kOracleExit);
    }
    if (traced.latency.conservationViolations != 0) {
        std::fprintf(stderr,
                     "latency conservation: %llu of %llu spans have "
                     "stage sums != end-to-end\n",
                     static_cast<unsigned long long>(
                         traced.latency.conservationViolations),
                     static_cast<unsigned long long>(
                         traced.latency.spans));
        _exit(kOracleExit);
    }

    // Oracle 6: backpressure accounting must be a pure observer, and
    // the Little's-law identity must hold for every registered
    // resource -- the incrementally accumulated occupancy integral
    // and the timestamp-sum derivation disagree the moment any
    // component misses or double-counts a transition.
    RunSpec pressured = audited;
    pressured.obs.backpressure = true;
    const RunResult observed = runOnce(pressured);
    if (!sameCounts(single, observed, "plain vs backpressure-observed",
                    &why)) {
        std::fprintf(stderr, "differential mismatch: %s\n",
                     why.c_str());
        _exit(kOracleExit);
    }
    if (observed.backpressure.littleViolations != 0) {
        std::fprintf(stderr,
                     "Little's-law identity: %llu of %zu resources "
                     "have mismatched occupancy integrals\n",
                     static_cast<unsigned long long>(
                         observed.backpressure.littleViolations),
                     observed.backpressure.resources.size());
        _exit(kOracleExit);
    }

    // Oracle 7: tenancy staleness. The audited run (oracle 2) already
    // carries the heavy machinery -- installs are revalidated against
    // the page table, the auditor's shootdown ledger demands
    // exactly-once acks, and the end-of-run sweep panics on any cached
    // translation that survived its shootdown. What remains checkable
    // here is the round and fault conservation: every shootdown round
    // opened must have closed, and every not-present fault enqueued
    // must have been serviced (an op blocked on a fault cannot retire,
    // so a finished run implies a drained fault queue).
    if (single.shootdownRounds != single.shootdownRoundsClosed) {
        std::fprintf(stderr,
                     "staleness oracle: %llu shootdown rounds issued "
                     "but %llu closed\n",
                     static_cast<unsigned long long>(
                         single.shootdownRounds),
                     static_cast<unsigned long long>(
                         single.shootdownRoundsClosed));
        _exit(kOracleExit);
    }
    if (single.pageFaults != single.faultsServiced) {
        std::fprintf(stderr,
                     "staleness oracle: %llu IOMMU faults enqueued "
                     "but %llu serviced\n",
                     static_cast<unsigned long long>(single.pageFaults),
                     static_cast<unsigned long long>(
                         single.faultsServiced));
        _exit(kOracleExit);
    }

    // Oracle 8: domain-parallel simulation must be invisible. Re-run
    // the audited case with the shard count flipped (serial cases run
    // sharded, sharded cases run serial): every count -- totalTicks,
    // the retire-census hash, the lot -- must match, so the
    // conservative scheduler's merge order is provably the serial
    // interleave across the whole sampled config space.
    RunSpec resharded = audited;
    resharded.obs.domains = audited.obs.domains > 1 ? 1u : 2u;
    const RunResult reshardedResult = runOnce(resharded);
    if (!sameCounts(single, reshardedResult,
                    "serial vs domain-sharded", &why)) {
        std::fprintf(stderr, "differential mismatch: %s\n",
                     why.c_str());
        _exit(kOracleExit);
    }
    _exit(0);
}

/** Drain @p fd to a string (the child's stderr). */
std::string
drainPipe(int fd)
{
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = read(fd, buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return out;
    }
}

/** Last few lines of the child's stderr, for the failure reason. */
std::string
tailOf(const std::string &text, std::size_t max_bytes = 1200)
{
    if (text.size() <= max_bytes)
        return text;
    return "..." + text.substr(text.size() - max_bytes);
}

} // namespace

const char *
fuzzOutcomeKindName(FuzzOutcome::Kind kind)
{
    switch (kind) {
      case FuzzOutcome::Kind::Pass:
        return "pass";
      case FuzzOutcome::Kind::UnexpectedFatal:
        return "unexpected-fatal";
      case FuzzOutcome::Kind::UnexpectedClean:
        return "unexpected-clean";
      case FuzzOutcome::Kind::OracleViolation:
        return "oracle-violation";
      case FuzzOutcome::Kind::Crash:
        return "crash";
      case FuzzOutcome::Kind::Hang:
        return "hang";
    }
    return "unknown";
}

FuzzOutcome
runFuzzCase(const FuzzCase &c, unsigned timeout_seconds)
{
    const RunSpec spec = c.toSpec();
    const bool predictedValid = validationErrors(spec).empty();

    int fds[2];
    if (pipe(fds) != 0)
        return {FuzzOutcome::Kind::Crash, "pipe() failed in harness"};

    const pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        return {FuzzOutcome::Kind::Crash, "fork() failed in harness"};
    }
    if (pid == 0) {
        // Child: stderr (fatal/panic text) goes to the parent's pipe,
        // stdout is noise. SIGALRM's default action terminates the
        // process, which the parent reads as a hang.
        close(fds[0]);
        dup2(fds[1], STDERR_FILENO);
        const int devnull = open("/dev/null", O_WRONLY);
        if (devnull >= 0)
            dup2(devnull, STDOUT_FILENO);
        alarm(timeout_seconds);
        childRun(spec, c.heapEventQueue != 0);
    }

    close(fds[1]);
    // Drain before waiting, or a chatty child blocks on a full pipe.
    const std::string childErr = drainPipe(fds[0]);
    close(fds[0]);
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    FuzzOutcome outcome;
    const std::string tail = tailOf(childErr);
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        if (sig == SIGALRM) {
            outcome.kind = FuzzOutcome::Kind::Hang;
            outcome.reason = "no completion within " +
                             std::to_string(timeout_seconds) +
                             "s\n" + tail;
        } else {
            outcome.kind = FuzzOutcome::Kind::Crash;
            outcome.reason =
                "terminated by signal " + std::to_string(sig) +
                (sig == SIGABRT ? " (abort -- simulator panic?)" : "") +
                "\n" + tail;
        }
        return outcome;
    }

    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code == 0) {
        if (predictedValid)
            return outcome; // Pass.
        outcome.kind = FuzzOutcome::Kind::UnexpectedClean;
        outcome.reason =
            "validationErrors() predicted failure but the run "
            "completed cleanly; first predicted error: " +
            validationErrors(spec).front();
        return outcome;
    }
    if (code == 1) {
        if (!predictedValid)
            return outcome; // Fail-fast as predicted: pass.
        outcome.kind = FuzzOutcome::Kind::UnexpectedFatal;
        outcome.reason =
            "validationErrors() predicted success but the run "
            "fataled:\n" + tail;
        return outcome;
    }
    if (code == kOracleExit) {
        outcome.kind = FuzzOutcome::Kind::OracleViolation;
        outcome.reason = tail;
        return outcome;
    }
    outcome.kind = FuzzOutcome::Kind::Crash;
    outcome.reason =
        "unexpected exit code " + std::to_string(code) + "\n" + tail;
    return outcome;
}

} // namespace hdpat
