/**
 * @file
 * The interface between workloads and the GPM engine: a lazy stream of
 * virtual byte addresses, one per memory operation. Streams are
 * deterministic for a fixed seed and finite (next() eventually returns
 * nullopt, at which point the GPM drains and finishes).
 */

#ifndef HDPAT_WORKLOADS_ADDRESS_STREAM_HH
#define HDPAT_WORKLOADS_ADDRESS_STREAM_HH

#include <optional>

#include "sim/types.hh"

namespace hdpat
{

class AddressStream
{
  public:
    virtual ~AddressStream() = default;

    /** The next address to access, or nullopt when the work is done. */
    virtual std::optional<Addr> next() = 0;
};

} // namespace hdpat

#endif // HDPAT_WORKLOADS_ADDRESS_STREAM_HH
